file(REMOVE_RECURSE
  "CMakeFiles/wg_sim.dir/gpu.cc.o"
  "CMakeFiles/wg_sim.dir/gpu.cc.o.d"
  "CMakeFiles/wg_sim.dir/result.cc.o"
  "CMakeFiles/wg_sim.dir/result.cc.o.d"
  "CMakeFiles/wg_sim.dir/sm.cc.o"
  "CMakeFiles/wg_sim.dir/sm.cc.o.d"
  "libwg_sim.a"
  "libwg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
