file(REMOVE_RECURSE
  "libwg_sim.a"
)
