# Empty dependencies file for wg_sim.
# This may be replaced when dependencies are built.
