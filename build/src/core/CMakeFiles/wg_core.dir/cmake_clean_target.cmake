file(REMOVE_RECURSE
  "libwg_core.a"
)
