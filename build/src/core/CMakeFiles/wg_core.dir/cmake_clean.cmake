file(REMOVE_RECURSE
  "CMakeFiles/wg_core.dir/experiment.cc.o"
  "CMakeFiles/wg_core.dir/experiment.cc.o.d"
  "CMakeFiles/wg_core.dir/presets.cc.o"
  "CMakeFiles/wg_core.dir/presets.cc.o.d"
  "libwg_core.a"
  "libwg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
