# Empty dependencies file for wg_core.
# This may be replaced when dependencies are built.
