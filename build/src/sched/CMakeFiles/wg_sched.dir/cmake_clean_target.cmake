file(REMOVE_RECURSE
  "libwg_sched.a"
)
