file(REMOVE_RECURSE
  "CMakeFiles/wg_sched.dir/gates.cc.o"
  "CMakeFiles/wg_sched.dir/gates.cc.o.d"
  "CMakeFiles/wg_sched.dir/gto.cc.o"
  "CMakeFiles/wg_sched.dir/gto.cc.o.d"
  "CMakeFiles/wg_sched.dir/scoreboard.cc.o"
  "CMakeFiles/wg_sched.dir/scoreboard.cc.o.d"
  "CMakeFiles/wg_sched.dir/twolevel.cc.o"
  "CMakeFiles/wg_sched.dir/twolevel.cc.o.d"
  "libwg_sched.a"
  "libwg_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
