# Empty compiler generated dependencies file for wg_sched.
# This may be replaced when dependencies are built.
