
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/gates.cc" "src/sched/CMakeFiles/wg_sched.dir/gates.cc.o" "gcc" "src/sched/CMakeFiles/wg_sched.dir/gates.cc.o.d"
  "/root/repo/src/sched/gto.cc" "src/sched/CMakeFiles/wg_sched.dir/gto.cc.o" "gcc" "src/sched/CMakeFiles/wg_sched.dir/gto.cc.o.d"
  "/root/repo/src/sched/scoreboard.cc" "src/sched/CMakeFiles/wg_sched.dir/scoreboard.cc.o" "gcc" "src/sched/CMakeFiles/wg_sched.dir/scoreboard.cc.o.d"
  "/root/repo/src/sched/twolevel.cc" "src/sched/CMakeFiles/wg_sched.dir/twolevel.cc.o" "gcc" "src/sched/CMakeFiles/wg_sched.dir/twolevel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/wg_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
