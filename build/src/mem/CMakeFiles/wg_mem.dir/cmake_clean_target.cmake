file(REMOVE_RECURSE
  "libwg_mem.a"
)
