# Empty compiler generated dependencies file for wg_mem.
# This may be replaced when dependencies are built.
