file(REMOVE_RECURSE
  "CMakeFiles/wg_mem.dir/memsys.cc.o"
  "CMakeFiles/wg_mem.dir/memsys.cc.o.d"
  "libwg_mem.a"
  "libwg_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
