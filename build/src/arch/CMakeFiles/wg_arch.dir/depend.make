# Empty dependencies file for wg_arch.
# This may be replaced when dependencies are built.
