file(REMOVE_RECURSE
  "CMakeFiles/wg_arch.dir/instr.cc.o"
  "CMakeFiles/wg_arch.dir/instr.cc.o.d"
  "CMakeFiles/wg_arch.dir/program.cc.o"
  "CMakeFiles/wg_arch.dir/program.cc.o.d"
  "libwg_arch.a"
  "libwg_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
