file(REMOVE_RECURSE
  "libwg_arch.a"
)
