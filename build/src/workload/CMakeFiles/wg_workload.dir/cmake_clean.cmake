file(REMOVE_RECURSE
  "CMakeFiles/wg_workload.dir/generator.cc.o"
  "CMakeFiles/wg_workload.dir/generator.cc.o.d"
  "CMakeFiles/wg_workload.dir/profile.cc.o"
  "CMakeFiles/wg_workload.dir/profile.cc.o.d"
  "CMakeFiles/wg_workload.dir/synthetic.cc.o"
  "CMakeFiles/wg_workload.dir/synthetic.cc.o.d"
  "libwg_workload.a"
  "libwg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
