# Empty dependencies file for wg_workload.
# This may be replaced when dependencies are built.
