file(REMOVE_RECURSE
  "libwg_workload.a"
)
