file(REMOVE_RECURSE
  "CMakeFiles/wg_exec.dir/unit.cc.o"
  "CMakeFiles/wg_exec.dir/unit.cc.o.d"
  "libwg_exec.a"
  "libwg_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
