# Empty dependencies file for wg_exec.
# This may be replaced when dependencies are built.
