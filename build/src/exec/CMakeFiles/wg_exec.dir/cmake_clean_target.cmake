file(REMOVE_RECURSE
  "libwg_exec.a"
)
