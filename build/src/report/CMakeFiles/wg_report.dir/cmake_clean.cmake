file(REMOVE_RECURSE
  "CMakeFiles/wg_report.dir/export.cc.o"
  "CMakeFiles/wg_report.dir/export.cc.o.d"
  "libwg_report.a"
  "libwg_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
