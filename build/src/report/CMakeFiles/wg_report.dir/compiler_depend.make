# Empty compiler generated dependencies file for wg_report.
# This may be replaced when dependencies are built.
