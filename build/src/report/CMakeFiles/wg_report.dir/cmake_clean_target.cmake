file(REMOVE_RECURSE
  "libwg_report.a"
)
