file(REMOVE_RECURSE
  "libwg_common.a"
)
