file(REMOVE_RECURSE
  "CMakeFiles/wg_common.dir/args.cc.o"
  "CMakeFiles/wg_common.dir/args.cc.o.d"
  "CMakeFiles/wg_common.dir/histogram.cc.o"
  "CMakeFiles/wg_common.dir/histogram.cc.o.d"
  "CMakeFiles/wg_common.dir/logging.cc.o"
  "CMakeFiles/wg_common.dir/logging.cc.o.d"
  "CMakeFiles/wg_common.dir/mathutil.cc.o"
  "CMakeFiles/wg_common.dir/mathutil.cc.o.d"
  "CMakeFiles/wg_common.dir/rng.cc.o"
  "CMakeFiles/wg_common.dir/rng.cc.o.d"
  "CMakeFiles/wg_common.dir/stats.cc.o"
  "CMakeFiles/wg_common.dir/stats.cc.o.d"
  "CMakeFiles/wg_common.dir/table.cc.o"
  "CMakeFiles/wg_common.dir/table.cc.o.d"
  "libwg_common.a"
  "libwg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
