# Empty dependencies file for wg_common.
# This may be replaced when dependencies are built.
