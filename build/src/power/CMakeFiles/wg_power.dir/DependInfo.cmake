
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/area.cc" "src/power/CMakeFiles/wg_power.dir/area.cc.o" "gcc" "src/power/CMakeFiles/wg_power.dir/area.cc.o.d"
  "/root/repo/src/power/energymodel.cc" "src/power/CMakeFiles/wg_power.dir/energymodel.cc.o" "gcc" "src/power/CMakeFiles/wg_power.dir/energymodel.cc.o.d"
  "/root/repo/src/power/oracle.cc" "src/power/CMakeFiles/wg_power.dir/oracle.cc.o" "gcc" "src/power/CMakeFiles/wg_power.dir/oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pg/CMakeFiles/wg_pg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/wg_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/wg_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
