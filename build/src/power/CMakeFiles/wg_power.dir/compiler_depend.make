# Empty compiler generated dependencies file for wg_power.
# This may be replaced when dependencies are built.
