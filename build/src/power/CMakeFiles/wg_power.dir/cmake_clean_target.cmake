file(REMOVE_RECURSE
  "libwg_power.a"
)
