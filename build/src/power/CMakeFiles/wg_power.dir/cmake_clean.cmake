file(REMOVE_RECURSE
  "CMakeFiles/wg_power.dir/area.cc.o"
  "CMakeFiles/wg_power.dir/area.cc.o.d"
  "CMakeFiles/wg_power.dir/energymodel.cc.o"
  "CMakeFiles/wg_power.dir/energymodel.cc.o.d"
  "CMakeFiles/wg_power.dir/oracle.cc.o"
  "CMakeFiles/wg_power.dir/oracle.cc.o.d"
  "libwg_power.a"
  "libwg_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
