# Empty dependencies file for wg_pg.
# This may be replaced when dependencies are built.
