file(REMOVE_RECURSE
  "CMakeFiles/wg_pg.dir/adaptive.cc.o"
  "CMakeFiles/wg_pg.dir/adaptive.cc.o.d"
  "CMakeFiles/wg_pg.dir/controller.cc.o"
  "CMakeFiles/wg_pg.dir/controller.cc.o.d"
  "CMakeFiles/wg_pg.dir/domain.cc.o"
  "CMakeFiles/wg_pg.dir/domain.cc.o.d"
  "libwg_pg.a"
  "libwg_pg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wg_pg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
