file(REMOVE_RECURSE
  "libwg_pg.a"
)
