file(REMOVE_RECURSE
  "CMakeFiles/wgsim.dir/wgsim.cc.o"
  "CMakeFiles/wgsim.dir/wgsim.cc.o.d"
  "wgsim"
  "wgsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
