# Empty dependencies file for wgsim.
# This may be replaced when dependencies are built.
