# Empty dependencies file for gto_test.
# This may be replaced when dependencies are built.
