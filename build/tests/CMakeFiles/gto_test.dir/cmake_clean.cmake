file(REMOVE_RECURSE
  "CMakeFiles/gto_test.dir/gto_test.cc.o"
  "CMakeFiles/gto_test.dir/gto_test.cc.o.d"
  "gto_test"
  "gto_test.pdb"
  "gto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
