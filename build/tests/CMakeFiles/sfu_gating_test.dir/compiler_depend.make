# Empty compiler generated dependencies file for sfu_gating_test.
# This may be replaced when dependencies are built.
