file(REMOVE_RECURSE
  "CMakeFiles/sfu_gating_test.dir/sfu_gating_test.cc.o"
  "CMakeFiles/sfu_gating_test.dir/sfu_gating_test.cc.o.d"
  "sfu_gating_test"
  "sfu_gating_test.pdb"
  "sfu_gating_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfu_gating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
