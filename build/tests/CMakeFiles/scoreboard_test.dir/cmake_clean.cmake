file(REMOVE_RECURSE
  "CMakeFiles/scoreboard_test.dir/scoreboard_test.cc.o"
  "CMakeFiles/scoreboard_test.dir/scoreboard_test.cc.o.d"
  "scoreboard_test"
  "scoreboard_test.pdb"
  "scoreboard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoreboard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
