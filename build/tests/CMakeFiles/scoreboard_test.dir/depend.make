# Empty dependencies file for scoreboard_test.
# This may be replaced when dependencies are built.
