# Empty dependencies file for sm_test.
# This may be replaced when dependencies are built.
