file(REMOVE_RECURSE
  "CMakeFiles/pg_controller_test.dir/pg_controller_test.cc.o"
  "CMakeFiles/pg_controller_test.dir/pg_controller_test.cc.o.d"
  "pg_controller_test"
  "pg_controller_test.pdb"
  "pg_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
