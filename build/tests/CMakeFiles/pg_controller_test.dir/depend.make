# Empty dependencies file for pg_controller_test.
# This may be replaced when dependencies are built.
