# Empty dependencies file for exec_unit_test.
# This may be replaced when dependencies are built.
