file(REMOVE_RECURSE
  "CMakeFiles/pg_adaptive_test.dir/pg_adaptive_test.cc.o"
  "CMakeFiles/pg_adaptive_test.dir/pg_adaptive_test.cc.o.d"
  "pg_adaptive_test"
  "pg_adaptive_test.pdb"
  "pg_adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
