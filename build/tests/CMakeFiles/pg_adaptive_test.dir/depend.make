# Empty dependencies file for pg_adaptive_test.
# This may be replaced when dependencies are built.
