
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/oracle_test.cc" "tests/CMakeFiles/oracle_test.dir/oracle_test.cc.o" "gcc" "tests/CMakeFiles/oracle_test.dir/oracle_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/wg_report.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/wg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/wg_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/wg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wg_power.dir/DependInfo.cmake"
  "/root/repo/build/src/pg/CMakeFiles/wg_pg.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/wg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/wg_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
