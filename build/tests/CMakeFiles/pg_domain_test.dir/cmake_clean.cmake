file(REMOVE_RECURSE
  "CMakeFiles/pg_domain_test.dir/pg_domain_test.cc.o"
  "CMakeFiles/pg_domain_test.dir/pg_domain_test.cc.o.d"
  "pg_domain_test"
  "pg_domain_test.pdb"
  "pg_domain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_domain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
