# Empty compiler generated dependencies file for pg_domain_test.
# This may be replaced when dependencies are built.
