file(REMOVE_RECURSE
  "CMakeFiles/suite_smoke_test.dir/suite_smoke_test.cc.o"
  "CMakeFiles/suite_smoke_test.dir/suite_smoke_test.cc.o.d"
  "suite_smoke_test"
  "suite_smoke_test.pdb"
  "suite_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
