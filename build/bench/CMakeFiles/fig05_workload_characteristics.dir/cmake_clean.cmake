file(REMOVE_RECURSE
  "CMakeFiles/fig05_workload_characteristics.dir/fig05_workload_characteristics.cc.o"
  "CMakeFiles/fig05_workload_characteristics.dir/fig05_workload_characteristics.cc.o.d"
  "fig05_workload_characteristics"
  "fig05_workload_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_workload_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
