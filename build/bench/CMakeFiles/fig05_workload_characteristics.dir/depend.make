# Empty dependencies file for fig05_workload_characteristics.
# This may be replaced when dependencies are built.
