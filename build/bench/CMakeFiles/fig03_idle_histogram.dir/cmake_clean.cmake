file(REMOVE_RECURSE
  "CMakeFiles/fig03_idle_histogram.dir/fig03_idle_histogram.cc.o"
  "CMakeFiles/fig03_idle_histogram.dir/fig03_idle_histogram.cc.o.d"
  "fig03_idle_histogram"
  "fig03_idle_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_idle_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
