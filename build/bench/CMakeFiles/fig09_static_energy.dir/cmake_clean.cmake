file(REMOVE_RECURSE
  "CMakeFiles/fig09_static_energy.dir/fig09_static_energy.cc.o"
  "CMakeFiles/fig09_static_energy.dir/fig09_static_energy.cc.o.d"
  "fig09_static_energy"
  "fig09_static_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_static_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
