# Empty dependencies file for fig08_gating_opportunity.
# This may be replaced when dependencies are built.
