file(REMOVE_RECURSE
  "CMakeFiles/fig08_gating_opportunity.dir/fig08_gating_opportunity.cc.o"
  "CMakeFiles/fig08_gating_opportunity.dir/fig08_gating_opportunity.cc.o.d"
  "fig08_gating_opportunity"
  "fig08_gating_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_gating_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
