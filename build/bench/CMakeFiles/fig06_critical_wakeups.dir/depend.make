# Empty dependencies file for fig06_critical_wakeups.
# This may be replaced when dependencies are built.
