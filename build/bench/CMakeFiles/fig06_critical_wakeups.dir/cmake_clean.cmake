file(REMOVE_RECURSE
  "CMakeFiles/fig06_critical_wakeups.dir/fig06_critical_wakeups.cc.o"
  "CMakeFiles/fig06_critical_wakeups.dir/fig06_critical_wakeups.cc.o.d"
  "fig06_critical_wakeups"
  "fig06_critical_wakeups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_critical_wakeups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
