# Empty dependencies file for tab_onchip_power.
# This may be replaced when dependencies are built.
