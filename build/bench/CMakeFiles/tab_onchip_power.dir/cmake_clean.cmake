file(REMOVE_RECURSE
  "CMakeFiles/tab_onchip_power.dir/tab_onchip_power.cc.o"
  "CMakeFiles/tab_onchip_power.dir/tab_onchip_power.cc.o.d"
  "tab_onchip_power"
  "tab_onchip_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_onchip_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
