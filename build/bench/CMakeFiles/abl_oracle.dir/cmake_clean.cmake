file(REMOVE_RECURSE
  "CMakeFiles/abl_oracle.dir/abl_oracle.cc.o"
  "CMakeFiles/abl_oracle.dir/abl_oracle.cc.o.d"
  "abl_oracle"
  "abl_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
