file(REMOVE_RECURSE
  "CMakeFiles/fig01b_power_breakdown.dir/fig01b_power_breakdown.cc.o"
  "CMakeFiles/fig01b_power_breakdown.dir/fig01b_power_breakdown.cc.o.d"
  "fig01b_power_breakdown"
  "fig01b_power_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01b_power_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
