# Empty compiler generated dependencies file for fig01b_power_breakdown.
# This may be replaced when dependencies are built.
