# Empty dependencies file for abl_sfu_gating.
# This may be replaced when dependencies are built.
