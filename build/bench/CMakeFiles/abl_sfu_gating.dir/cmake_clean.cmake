file(REMOVE_RECURSE
  "CMakeFiles/abl_sfu_gating.dir/abl_sfu_gating.cc.o"
  "CMakeFiles/abl_sfu_gating.dir/abl_sfu_gating.cc.o.d"
  "abl_sfu_gating"
  "abl_sfu_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sfu_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
