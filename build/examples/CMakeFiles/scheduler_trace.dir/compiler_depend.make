# Empty compiler generated dependencies file for scheduler_trace.
# This may be replaced when dependencies are built.
