file(REMOVE_RECURSE
  "CMakeFiles/scheduler_trace.dir/scheduler_trace.cpp.o"
  "CMakeFiles/scheduler_trace.dir/scheduler_trace.cpp.o.d"
  "scheduler_trace"
  "scheduler_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
