/**
 * @file
 * google-benchmark microbenchmarks: simulator throughput per subsystem.
 * These guard against performance regressions in the hot simulation
 * loop (the figure harnesses run hundreds of full simulations).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/threadpool.hh"
#include "core/warped_gates.hh"
#include "trace/recorder.hh"

namespace {

using namespace wg;

/** Full-SM simulation throughput (cycles/second) for hotspot. */
void
BM_SmHotspot(benchmark::State& state)
{
    Technique tech = static_cast<Technique>(state.range(0));
    GpuConfig config = makeConfig(tech);
    ProgramGenerator gen(1);
    auto programs = gen.generateSm(findBenchmark("hotspot"), 0);

    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Sm sm(config.sm, programs, 42);
        const SmStats& s = sm.run();
        cycles += s.cycles;
        benchmark::DoNotOptimize(s.issuedTotal);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

/**
 * Event-trace overhead: the identical hotspot SM simulation with
 * tracing off (null recorder — the shipping default) and with every
 * event recorded. Reports both times and the recording overhead, and
 * fails if the tracing-OFF path comes out measurably slower than the
 * fully-recording path: the disabled path is a single predictable
 * branch per would-be event, so "off slower than on" by more than the
 * 2% tolerance means the null-check stopped folding away and the
 * zero-cost-when-disabled contract has regressed.
 */
void
BM_TraceOverheadHotspot(benchmark::State& state)
{
    GpuConfig config = makeConfig(Technique::WarpedGates);
    ProgramGenerator gen(1);
    auto programs = gen.generateSm(findBenchmark("hotspot"), 0);

    auto run_once = [&](trace::Recorder* rec) {
        // Bench wall-clock timing. wglint:allow(D1)
        auto t0 = std::chrono::steady_clock::now();
        Sm sm(config.sm, programs, 42, rec);
        const SmStats& s = sm.run();
        benchmark::DoNotOptimize(s.issuedTotal);
        return std::chrono::duration<double>(
                   // wglint:allow(D1): bench wall-clock timing
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    constexpr int kReps = 5;
    double best_off = 1e9;
    double best_on = 1e9;
    std::uint64_t events = 0;
    for (auto _ : state) {
        // Interleave the two modes, keep the best of each: minimum-of-N
        // is robust against scheduling noise on shared CI runners.
        for (int rep = 0; rep < kReps; ++rep) {
            best_off = std::min(best_off, run_once(nullptr));
            trace::Recorder rec(0, std::size_t{1} << 22);
            best_on = std::min(best_on, run_once(&rec));
            events = rec.size() + rec.overwritten();
        }
    }

    state.counters["off_ms"] = best_off * 1e3;
    state.counters["on_ms"] = best_on * 1e3;
    state.counters["overhead_pct"] = (best_on / best_off - 1.0) * 100.0;
    state.counters["events"] = static_cast<double>(events);

    if (best_off > best_on * 1.02) {
        state.SkipWithError(
            "tracing-off path is >2% slower than full recording: the "
            "disabled-trace branch has regressed");
    }
}

/** Program-generation throughput. */
void
BM_GenerateProgram(benchmark::State& state)
{
    ProgramGenerator gen(7);
    const BenchmarkProfile& profile = findBenchmark("srad");
    std::uint64_t salt = 0;
    for (auto _ : state) {
        Program p = gen.generate(profile, salt++);
        benchmark::DoNotOptimize(p.size());
    }
}

/** Power-gating domain state-machine throughput. */
void
BM_PgDomainTick(benchmark::State& state)
{
    PgParams params;
    params.policy = PgPolicy::CoordinatedBlackout;
    PgDomain domain(params);
    Cycle now = 0;
    for (auto _ : state) {
        // Alternate short busy runs and long idles to exercise every
        // state transition.
        bool busy = (now / 7) % 5 == 0;
        if (!busy && (now % 41) == 0)
            domain.requestWakeup(now);
        domain.tick(now, busy && domain.canExecute(), 5, false, 1);
        ++now;
    }
    benchmark::DoNotOptimize(domain.stats().gatingEvents);
}

// ---- sweep mode: serial vs pooled figure-sweep wall clock ----
//
// The figure harnesses (Figs. 8-11) run the full (suite x technique)
// cross product through ExperimentRunner. These two benchmarks measure
// that sweep end-to-end, cold-cache, with and without the shared
// thread pool, and verify the pooled results stay bit-identical to
// the serial path. On an N-core host the pooled sweep should approach
// N-fold speedup (>= 2x on 4 cores).

const std::vector<Technique> kSweepTechs = {
    Technique::Baseline,
    Technique::ConvPG,
    Technique::WarpedGates,
};

ExperimentOptions
sweepOpts()
{
    ExperimentOptions opts;
    opts.numSms = 4;
    return opts;
}

/** Order-independent content fingerprint of one simulation result. */
std::uint64_t
fingerprint(const SimResult& r)
{
    auto mix = [](std::uint64_t h, std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        return h;
    };
    auto dbl = [](double d) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, sizeof(bits));
        return bits;
    };
    std::uint64_t h = r.cycles;
    h = mix(h, r.totalSmCycles);
    h = mix(h, r.aggregate.issuedTotal);
    for (Cycle c : r.smCycles)
        h = mix(h, c);
    h = mix(h, dbl(r.intEnergy.total()));
    h = mix(h, dbl(r.fpEnergy.total()));
    h = mix(h, r.intIdleHist.sum());
    h = mix(h, r.fpIdleHist.sum());
    return h;
}

std::uint64_t
sweepFingerprint(const std::vector<const SimResult*>& results)
{
    std::uint64_t h = 0;
    for (const SimResult* r : results)
        h = h * 1099511628211ULL + fingerprint(*r);
    return h;
}

/** One cold-cache sweep; pool=nullptr is the serial reference. */
std::uint64_t
runSweep(ThreadPool* pool)
{
    ExperimentRunner runner(sweepOpts(), pool);
    return sweepFingerprint(runner.runAll({benchmarkNames(), kSweepTechs}));
}

void
BM_SuiteSweepSerial(benchmark::State& state)
{
    std::uint64_t fp = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(fp = runSweep(nullptr));
    state.counters["sims"] = static_cast<double>(
        benchmarkNames().size() * kSweepTechs.size());
}

void
BM_SuiteSweepPooled(benchmark::State& state)
{
    // Bit-identity gate: the pooled sweep must reproduce the serial
    // sweep exactly (aggregation merges in SM order; per-SM seeds do
    // not depend on scheduling).
    static const std::uint64_t serial_fp = runSweep(nullptr);
    std::uint64_t fp = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fp = runSweep(&ThreadPool::global()));
        if (fp != serial_fp) {
            state.SkipWithError(
                "pooled sweep diverged from the serial path");
            return;
        }
    }
    state.counters["sims"] = static_cast<double>(
        benchmarkNames().size() * kSweepTechs.size());
    state.counters["threads"] =
        static_cast<double>(ThreadPool::global().size());
}

// ---- event-horizon fast-forward: speedup + bit-identity gate ----
//
// The fast-forward engine (SmConfig::fastForward, on by default) jumps
// the clock over provably-dead spans. These benchmarks run the same
// full-GPU simulation with the engine on and off, serially, and report
// the wall-clock speedup; the two results must fingerprint identically
// or the run fails. CI archives ff_speedup and gates on its ratio, so
// a regression in either the engine's coverage or its overhead shows
// up as a number, not an anecdote.

/**
 * One FF-on/FF-off pair on @p bench. Minimum-of-N per mode, modes
 * interleaved, for robustness on shared runners.
 */
void
runFastForwardBench(benchmark::State& state, const char* bench)
{
    GpuConfig config = makeConfig(Technique::WarpedGates);
    config.numSms = 2;
    const BenchmarkProfile& profile = findBenchmark(bench);

    // Generate the workload once, outside the timed region: the metric
    // is simulated-cycles/sec, and program generation is setup both
    // modes share, not simulation.
    ProgramGenerator wgen(config.seed);
    std::vector<std::vector<Program>> per_sm;
    for (unsigned s = 0; s < config.numSms; ++s)
        per_sm.push_back(wgen.generateSm(profile, s));

    auto run_once = [&](bool ff, std::uint64_t* fp) {
        GpuConfig c = config;
        c.sm.fastForward = ff;
        Gpu gpu(c);
        // Bench wall-clock timing. wglint:allow(D1)
        auto t0 = std::chrono::steady_clock::now();
        SimResult r = gpu.runPrograms(per_sm, nullptr);
        double dt = std::chrono::duration<double>(
                        // wglint:allow(D1): bench wall-clock timing
                        std::chrono::steady_clock::now() - t0)
                        .count();
        *fp = fingerprint(r);
        return dt;
    };

    constexpr int kReps = 3;
    double best_off = 1e9;
    double best_on = 1e9;
    std::uint64_t fp_off = 0;
    std::uint64_t fp_on = 0;
    for (auto _ : state) {
        for (int rep = 0; rep < kReps; ++rep) {
            best_off = std::min(best_off, run_once(false, &fp_off));
            best_on = std::min(best_on, run_once(true, &fp_on));
            if (fp_on != fp_off) {
                state.SkipWithError(
                    "fast-forward result diverged from the "
                    "cycle-stepped reference");
                return;
            }
        }
    }

    // Fraction of simulated cycles the engine skipped, from one direct
    // SM run (the diagnostic lives on Sm, not in the stats registry).
    ProgramGenerator gen(1);
    Sm sm(config.sm, gen.generateSm(profile, 0), 42);
    const SmStats& s = sm.run();
    double skipped_pct =
        s.cycles > 0
            ? 100.0 * static_cast<double>(sm.ffSkippedCycles()) /
                  static_cast<double>(s.cycles)
            : 0.0;

    state.counters["off_ms"] = best_off * 1e3;
    state.counters["on_ms"] = best_on * 1e3;
    state.counters["ff_speedup"] = best_off / best_on;
    state.counters["skipped_pct"] = skipped_pct;
}

void
BM_FastForwardHotspot(benchmark::State& state)
{
    runFastForwardBench(state, "hotspot");
}

/**
 * bfs is the suite's memory-bound profile (55% miss ratio, 31% loads,
 * graph traversal): long MSHR-limited stalls are exactly the spans the
 * event horizon skips.
 */
void
BM_FastForwardBfs(benchmark::State& state)
{
    runFastForwardBench(state, "bfs");
}

/** Scoreboard hot path. */
void
BM_Scoreboard(benchmark::State& state)
{
    Scoreboard sb(48);
    Instruction instr = makeInt(3, 1, 2);
    for (auto _ : state) {
        for (WarpId w = 0; w < 48; ++w) {
            if (sb.ready(w, instr)) {
                sb.markIssued(w, instr);
                sb.complete(w, instr.dest);
            }
        }
        benchmark::DoNotOptimize(sb.clean(0));
    }
}

/**
 * Console reporter that additionally captures every run's adjusted
 * real time and counters, so main() can derive the machine-readable
 * BENCH summary (cycles/sec per technique, trace-overhead ratio, pool
 * speedup) without re-running anything.
 */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    struct Entry
    {
        double realMs = 0.0;
        std::map<std::string, double> counters;
    };

    std::map<std::string, Entry> captured;

    void
    ReportRuns(const std::vector<Run>& runs) override
    {
        for (const Run& run : runs) {
            if (run.error_occurred)
                continue;
            Entry e;
            e.realMs = run.GetAdjustedRealTime();
            for (const auto& kv : run.counters)
                e.counters[kv.first] = kv.second.value;
            captured[run.benchmark_name()] = e;
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

/** First captured entry whose name starts with @p prefix, or null. */
const CaptureReporter::Entry*
findRun(const CaptureReporter& rep, const std::string& prefix)
{
    for (const auto& [name, entry] : rep.captured)
        if (name.compare(0, prefix.size(), prefix) == 0)
            return &entry;
    return nullptr;
}

// ---- merge with the existing BENCH json ----
//
// A filtered run (`--benchmark_filter=BM_SmHotspot`) measures only one
// section. Emitting just that section used to clobber the committed
// baseline's other sections with nothing — the regression gate then
// compared against a file missing its fastforward block. The emitter
// therefore rewrites EVERY section on every run: fresh numbers where
// this run measured them, values carried forward from the existing
// file (with a console warning) where it did not.

/**
 * Extract the brace-balanced `{...}` value of `"key":` from @p text,
 * starting at @p from. Good enough for the fixed wg-bench-v1 schema
 * (no strings containing braces); not a general JSON parser.
 */
std::string
extractObject(const std::string& text, const std::string& key,
              std::size_t from = 0)
{
    std::size_t k = text.find("\"" + key + "\"", from);
    if (k == std::string::npos)
        return {};
    std::size_t open = text.find('{', k);
    if (open == std::string::npos)
        return {};
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '{')
            ++depth;
        else if (text[i] == '}' && --depth == 0)
            return text.substr(open, i - open + 1);
    }
    return {};
}

/** Extract the scalar token after `"key":` within @p obj. */
std::string
extractScalar(const std::string& obj, const std::string& key)
{
    std::size_t k = obj.find("\"" + key + "\"");
    if (k == std::string::npos)
        return {};
    std::size_t colon = obj.find(':', k);
    if (colon == std::string::npos)
        return {};
    std::size_t begin = obj.find_first_not_of(" \t\n", colon + 1);
    std::size_t end = obj.find_first_of(",}\n", begin);
    if (begin == std::string::npos || end == std::string::npos)
        return {};
    while (end > begin && std::isspace(
                              static_cast<unsigned char>(obj[end - 1])))
        --end;
    return obj.substr(begin, end - begin);
}

/**
 * Derive the BENCH summary JSON, merging against @p existing (the
 * current file's contents, empty when absent). Sections this run did
 * not measure are carried forward; each carry is reported in
 * @p carried so main() can warn that the numbers are not fresh.
 */
std::string
benchSummaryJson(const CaptureReporter& rep, const std::string& existing,
                 std::vector<std::string>& carried)
{
    std::ostringstream os;
    os.precision(10);
    os << "{\n  \"schema\": \"wg-bench-v1\",\n"
       << "  \"benchmark\": \"micro_sim_throughput\"";

    // sm_cycles_per_sec: merged per technique.
    const std::string old_cps = extractObject(existing,
                                              "sm_cycles_per_sec");
    bool have_cps = false;
    std::ostringstream cps;
    for (Technique t : {Technique::Baseline, Technique::ConvPG,
                        Technique::WarpedGates}) {
        const char* name = techniqueName(t);
        std::string value;
        const auto* e = findRun(
            rep, "BM_SmHotspot/" +
                     std::to_string(static_cast<int>(t)));
        if (e && e->counters.count("cycles/s")) {
            std::ostringstream v;
            v.precision(10);
            v << e->counters.at("cycles/s");
            value = v.str();
        } else if (!(value = extractScalar(old_cps, name)).empty()) {
            carried.push_back(std::string("sm_cycles_per_sec.") + name);
        }
        if (value.empty())
            continue;
        if (have_cps)
            cps << ",\n";
        cps << "    \"" << name << "\": " << value;
        have_cps = true;
    }
    if (have_cps)
        os << ",\n  \"sm_cycles_per_sec\": {\n" << cps.str() << "\n  }";

    // trace: fresh or carried wholesale.
    if (const auto* e = findRun(rep, "BM_TraceOverheadHotspot")) {
        os << ",\n  \"trace\": {\"off_ms\": "
           << e->counters.at("off_ms")
           << ", \"on_ms\": " << e->counters.at("on_ms")
           << ", \"overhead_pct\": " << e->counters.at("overhead_pct")
           << ", \"events\": " << e->counters.at("events") << "}";
    } else if (std::string old_trace = extractObject(existing, "trace");
               !old_trace.empty()) {
        os << ",\n  \"trace\": " << old_trace;
        carried.push_back("trace");
    }

    // fastforward: merged per profile.
    const std::string old_ff = extractObject(existing, "fastforward");
    bool have_ff = false;
    std::ostringstream ff;
    for (const char* bench : {"Hotspot", "Bfs"}) {
        const char* key = bench[0] == 'H' ? "hotspot" : "bfs";
        std::string value;
        const auto* e = findRun(rep, std::string("BM_FastForward") + bench);
        if (e) {
            std::ostringstream v;
            v.precision(10);
            v << "{\"off_ms\": " << e->counters.at("off_ms")
              << ", \"on_ms\": " << e->counters.at("on_ms")
              << ", \"ff_speedup\": " << e->counters.at("ff_speedup")
              << ", \"skipped_pct\": " << e->counters.at("skipped_pct")
              << "}";
            value = v.str();
        } else if (!(value = extractObject(old_ff, key)).empty()) {
            carried.push_back(std::string("fastforward.") + key);
        }
        if (value.empty())
            continue;
        if (have_ff)
            ff << ",\n";
        ff << "    \"" << key << "\": " << value;
        have_ff = true;
    }
    if (have_ff)
        os << ",\n  \"fastforward\": {\n" << ff.str() << "\n  }";

    // sweep: fresh or carried wholesale.
    const auto* serial = findRun(rep, "BM_SuiteSweepSerial");
    const auto* pooled = findRun(rep, "BM_SuiteSweepPooled");
    if (serial && pooled) {
        os << ",\n  \"sweep\": {\"serial_ms\": " << serial->realMs
           << ", \"pooled_ms\": " << pooled->realMs
           << ", \"pool_speedup\": "
           << (pooled->realMs > 0.0 ? serial->realMs / pooled->realMs
                                    : 0.0)
           << ", \"sims\": " << serial->counters.at("sims")
           << ", \"threads\": " << pooled->counters.at("threads")
           << "}";
    } else if (std::string old_sweep = extractObject(existing, "sweep");
               !old_sweep.empty()) {
        os << ",\n  \"sweep\": " << old_sweep;
        carried.push_back("sweep");
    }
    os << "\n}\n";
    return os.str();
}

} // namespace

BENCHMARK(BM_SmHotspot)
    ->Arg(static_cast<int>(Technique::Baseline))
    ->Arg(static_cast<int>(Technique::ConvPG))
    ->Arg(static_cast<int>(Technique::WarpedGates))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceOverheadHotspot)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK(BM_GenerateProgram);
BENCHMARK(BM_FastForwardHotspot)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK(BM_FastForwardBfs)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK(BM_SuiteSweepSerial)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK(BM_SuiteSweepPooled)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK(BM_PgDomainTick);
BENCHMARK(BM_Scoreboard);

/**
 * Custom main: standard google-benchmark flags plus
 * `--bench-json=PATH` (default BENCH_micro_sim_throughput.json, empty
 * disables) for the machine-readable summary CI archives.
 */
int
main(int argc, char** argv)
{
    std::string json_path = "BENCH_micro_sim_throughput.json";
    std::vector<char*> passthrough;
    passthrough.reserve(static_cast<std::size_t>(argc));
    const std::string kFlag = "--bench-json=";
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.compare(0, kFlag.size(), kFlag) == 0)
            json_path = arg.substr(kFlag.size());
        else
            passthrough.push_back(argv[i]);
    }
    int pass_argc = static_cast<int>(passthrough.size());

    benchmark::Initialize(&pass_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               passthrough.data()))
        return 1;

    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    if (!json_path.empty()) {
        std::string existing;
        if (std::ifstream in(json_path); in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            existing = buf.str();
        }

        std::vector<std::string> carried;
        const std::string summary =
            benchSummaryJson(reporter, existing, carried);

        // Write-then-rename: a crash or full disk mid-write must never
        // leave a truncated baseline behind for the regression gate.
        const std::string tmp_path = json_path + ".tmp";
        {
            std::ofstream out(tmp_path);
            if (!out || !(out << summary) || !out.flush()) {
                std::cerr << "cannot write '" << tmp_path << "'\n";
                return 1;
            }
        }
        if (std::rename(tmp_path.c_str(), json_path.c_str()) != 0) {
            std::cerr << "cannot rename '" << tmp_path << "' to '"
                      << json_path << "'\n";
            return 1;
        }
        for (const std::string& section : carried) {
            std::cerr << "warning: section \"" << section
                      << "\" was not measured in this run; carried "
                         "forward from the existing file\n";
        }
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
