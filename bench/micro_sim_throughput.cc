/**
 * @file
 * google-benchmark microbenchmarks: simulator throughput per subsystem.
 * These guard against performance regressions in the hot simulation
 * loop (the figure harnesses run hundreds of full simulations).
 */

#include <benchmark/benchmark.h>

#include "core/warped_gates.hh"

namespace {

using namespace wg;

/** Full-SM simulation throughput (cycles/second) for hotspot. */
void
BM_SmHotspot(benchmark::State& state)
{
    Technique tech = static_cast<Technique>(state.range(0));
    GpuConfig config = makeConfig(tech);
    ProgramGenerator gen(1);
    auto programs = gen.generateSm(findBenchmark("hotspot"), 0);

    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Sm sm(config.sm, programs, 42);
        const SmStats& s = sm.run();
        cycles += s.cycles;
        benchmark::DoNotOptimize(s.issuedTotal);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

/** Program-generation throughput. */
void
BM_GenerateProgram(benchmark::State& state)
{
    ProgramGenerator gen(7);
    const BenchmarkProfile& profile = findBenchmark("srad");
    std::uint64_t salt = 0;
    for (auto _ : state) {
        Program p = gen.generate(profile, salt++);
        benchmark::DoNotOptimize(p.size());
    }
}

/** Power-gating domain state-machine throughput. */
void
BM_PgDomainTick(benchmark::State& state)
{
    PgParams params;
    params.policy = PgPolicy::CoordinatedBlackout;
    PgDomain domain(params);
    Cycle now = 0;
    for (auto _ : state) {
        // Alternate short busy runs and long idles to exercise every
        // state transition.
        bool busy = (now / 7) % 5 == 0;
        if (!busy && (now % 41) == 0)
            domain.requestWakeup(now);
        domain.tick(now, busy && domain.canExecute(), 5, false, 1);
        ++now;
    }
    benchmark::DoNotOptimize(domain.stats().gatingEvents);
}

/** Scoreboard hot path. */
void
BM_Scoreboard(benchmark::State& state)
{
    Scoreboard sb(48);
    Instruction instr = makeInt(3, 1, 2);
    for (auto _ : state) {
        for (WarpId w = 0; w < 48; ++w) {
            if (sb.ready(w, instr)) {
                sb.markIssued(w, instr);
                sb.complete(w, instr.dest);
            }
        }
        benchmark::DoNotOptimize(sb.clean(0));
    }
}

} // namespace

BENCHMARK(BM_SmHotspot)
    ->Arg(static_cast<int>(Technique::Baseline))
    ->Arg(static_cast<int>(Technique::ConvPG))
    ->Arg(static_cast<int>(Technique::WarpedGates))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GenerateProgram);
BENCHMARK(BM_PgDomainTick);
BENCHMARK(BM_Scoreboard);

BENCHMARK_MAIN();
