/**
 * @file
 * Reproduces Fig. 9: static energy savings of the integer (9a) and
 * floating-point (9b) units under ConvPG, GATES, Naive Blackout,
 * Coordinated Blackout and Warped Gates, normalised to a no-gating
 * baseline. Savings account for power-gating overhead, exactly as in
 * the paper. FP results exclude integer-only benchmarks.
 *
 * Paper reference values (suite averages): ConvPG 20.1% / 31.4%,
 * GATES 21.5% / 35.2%, Naive 27.8% / 41.1%, Coordinated 31.5% / 45.6%,
 * Warped Gates 31.6% / 46.5% (INT / FP).
 */

#include <iostream>
#include <vector>

#include "core/warped_gates.hh"

namespace {

const std::vector<wg::Technique> kTechs = {
    wg::Technique::ConvPG,
    wg::Technique::Gates,
    wg::Technique::NaiveBlackout,
    wg::Technique::CoordinatedBlackout,
    wg::Technique::WarpedGates,
};

void
report(wg::ExperimentRunner& runner, wg::UnitClass uc, const char* title,
       const std::vector<std::string>& benches)
{
    using namespace wg;
    Table table(title);
    std::vector<std::string> head = {"benchmark"};
    for (Technique t : kTechs)
        head.push_back(techniqueName(t));
    table.header(head);

    std::vector<std::vector<double>> per_tech(kTechs.size());
    for (const std::string& name : benches) {
        std::vector<std::string> row = {name};
        for (std::size_t i = 0; i < kTechs.size(); ++i) {
            const SimResult& r = runner.run(name, kTechs[i]);
            double savings = r.energy(uc).staticSavingsRatio();
            per_tech[i].push_back(savings);
            row.push_back(Table::pct(savings));
        }
        table.row(row);
    }

    std::vector<std::string> avg = {"average"};
    for (const auto& xs : per_tech)
        avg.push_back(Table::pct(mean(xs)));
    table.row(avg);
    table.print();
}

} // namespace

int
main()
{
    using namespace wg;
    ExperimentRunner runner;

    // Schedule the whole (suite x technique) sweep on the thread pool
    // up front; the report loops below then read from the cache.
    runner.prefetch({benchmarkNames(), kTechs});

    report(runner, UnitClass::Int,
           "Fig. 9a: INT static energy savings (paper avg: ConvPG 20.1%, "
           "GATES 21.5%, Naive 27.8%, Coord 31.5%, Warped 31.6%)",
           benchmarkNames());

    report(runner, UnitClass::Fp,
           "Fig. 9b: FP static energy savings, FP benchmarks only "
           "(paper avg: ConvPG 31.4%, GATES 35.2%, Naive 41.1%, "
           "Coord 45.6%, Warped 46.5%)",
           ExperimentRunner::fpBenchmarks());
    return 0;
}
