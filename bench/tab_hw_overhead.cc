/**
 * @file
 * Reproduces Section 7.5: hardware overhead of the added counters.
 *
 * Paper reference: counters occupy 1210.8 um2 of a 48.1 mm2 SM
 * (0.003% area) and draw 1.55 mW dynamic / 12.1 uW leakage against the
 * SM's 1.92 W dynamic / 1.61 W leakage (0.08% / 0.0007%).
 */

#include <iostream>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;
    AreaModel model;

    Table inventory("Section 7.5: added storage inventory (per SM)");
    inventory.header({"structure", "mechanism", "bits", "count",
                      "total bits"});
    for (const CounterSpec& s : model.inventory()) {
        inventory.row({s.name, s.mechanism, std::to_string(s.bits),
                       std::to_string(s.count),
                       std::to_string(s.bits * s.count)});
    }
    inventory.print();

    HardwareOverhead hw = model.compute();
    Table totals("Section 7.5: totals vs SM budget (paper: 1210.8 um2 = "
                 "0.003% area, 0.08% dynamic, 0.0007% leakage)");
    totals.header({"quantity", "counters", "SM", "fraction"});
    totals.row({"area (um2)", Table::num(hw.areaUm2, 1),
                Table::num(AreaModel::kSmAreaUm2, 0),
                Table::pct(hw.areaFraction, 4)});
    totals.row({"dynamic power (W)", Table::num(hw.dynamicW, 6),
                Table::num(AreaModel::kSmDynamicW, 2),
                Table::pct(hw.dynamicFraction, 3)});
    totals.row({"leakage power (W)", Table::num(hw.leakageW, 8),
                Table::num(AreaModel::kSmLeakageW, 2),
                Table::pct(hw.leakageFraction, 5)});
    totals.print();
    return 0;
}
