/**
 * @file
 * Reproduces Fig. 10: performance impact of the power-gating
 * techniques, normalised to the no-gating baseline (1.0 = no slowdown;
 * lower = slower, matching the paper's "normalized performance" axis).
 *
 * Paper reference (geomean): ConvPG and GATES ~0.99, Naive Blackout
 * ~0.95 (worst), Coordinated Blackout ~0.98, Warped Gates ~0.99.
 */

#include <vector>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;

    const std::vector<Technique> techs = {
        Technique::ConvPG, Technique::Gates, Technique::NaiveBlackout,
        Technique::CoordinatedBlackout, Technique::WarpedGates};

    ExperimentRunner runner;

    // Batch-schedule baseline + techniques for the full suite; the
    // table loop below only hits the warm cache.
    std::vector<Technique> all_techs(techs.begin(), techs.end());
    all_techs.insert(all_techs.begin(), Technique::Baseline);
    runner.prefetch({benchmarkNames(), all_techs});

    Table table("Fig. 10: normalized performance (paper geomean: ConvPG "
                "0.99, GATES 0.99, Naive 0.95, Coord 0.98, Warped 0.99)");
    std::vector<std::string> head = {"benchmark"};
    for (Technique t : techs)
        head.push_back(techniqueName(t));
    table.header(head);

    std::vector<std::vector<double>> per_tech(techs.size());
    for (const std::string& name : benchmarkNames()) {
        const SimResult& base = runner.run(name, Technique::Baseline);
        std::vector<std::string> row = {name};
        for (std::size_t i = 0; i < techs.size(); ++i) {
            const SimResult& r = runner.run(name, techs[i]);
            double perf = 1.0 / normalizedRuntime(r, base);
            per_tech[i].push_back(perf);
            row.push_back(Table::num(perf, 3));
        }
        table.row(row);
    }

    std::vector<std::string> gm = {"geomean"};
    for (const auto& xs : per_tech)
        gm.push_back(Table::num(geomean(xs), 3));
    table.row(gm);
    table.print();
    return 0;
}
