/**
 * @file
 * Reproduces the Section 7.3 roll-up: total on-chip power savings
 * implied by the measured static-energy savings.
 *
 * Paper reference: execution units are 16.38% of on-chip leakage;
 * assuming leakage is 33% (resp. 50%) of total on-chip power and
 * 30-45% exec-unit static savings, total savings are 1.62-2.43%
 * (resp. 2.46-3.69%).
 */

#include <algorithm>
#include <vector>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;
    ExperimentRunner runner;
    PowerConstants pc;

    // Measured suite-average savings under Warped Gates.
    std::vector<double> ints, fps;
    const auto fp_set = ExperimentRunner::fpBenchmarks();
    for (const std::string& name : benchmarkNames()) {
        const SimResult& r = runner.run(name, Technique::WarpedGates);
        ints.push_back(r.intEnergy.staticSavingsRatio());
        if (std::find(fp_set.begin(), fp_set.end(), name) != fp_set.end())
            fps.push_back(r.fpEnergy.staticSavingsRatio());
    }
    double int_savings = mean(ints);
    double fp_savings = mean(fps);

    // Exec-unit leakage share of chip leakage (paper: 16.38%).
    double exec_leak = 0.00557 + 4.40;
    double exec_share = exec_leak / pc.chipLeakage;

    // Leakage-weighted savings across INT and FP (FP dominates).
    double weighted = (0.00557 * int_savings + 4.40 * fp_savings) /
                      exec_leak;

    Table table("Section 7.3: estimated total on-chip power savings "
                "(paper: 1.62-2.43% at 33% leakage share, 2.46-3.69% at "
                "50%)");
    table.header({"quantity", "value"});
    table.row({"avg INT static savings (Warped Gates)",
               Table::pct(int_savings)});
    table.row({"avg FP static savings (Warped Gates)",
               Table::pct(fp_savings)});
    table.row({"exec units / chip leakage", Table::pct(exec_share, 2)});
    table.row({"leakage-weighted exec savings", Table::pct(weighted)});
    for (double leak_share : {0.33, 0.50}) {
        double total = leak_share * exec_share * weighted;
        table.row({"total on-chip savings @ leakage=" +
                       Table::pct(leak_share, 0),
                   Table::pct(total, 2)});
    }
    table.print();
    return 0;
}
