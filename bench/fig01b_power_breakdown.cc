/**
 * @file
 * Reproduces Fig. 1b: execution-unit energy breakdown (dynamic /
 * power-gating overhead / static), suite-averaged, for the baseline
 * (no gating) and conventional power gating.
 *
 * Paper reference: baseline INT ~50% static, FP ~90% static; under
 * conventional gating the INT split is ~50% dynamic / 11% overhead /
 * 31% static (of the original total), FP ~10% / 29% / 61%.
 */

#include <vector>

#include "core/warped_gates.hh"

namespace {

struct Split
{
    double dynamic = 0.0;
    double overhead = 0.0;
    double still = 0.0; // static energy actually consumed
};

/** Suite-average energy split for @p uc, normalised to the no-gating
 *  total energy of the same benchmark. */
Split
averageSplit(wg::ExperimentRunner& runner, wg::Technique tech,
             wg::UnitClass uc, const std::vector<std::string>& benches)
{
    using namespace wg;
    Split acc;
    int n = 0;
    for (const std::string& name : benches) {
        const SimResult& base = runner.run(name, Technique::Baseline);
        const SimResult& r = runner.run(name, tech);
        const UnitEnergy& be = base.energy(uc);
        const UnitEnergy& e = r.energy(uc);
        double total = be.total();
        if (total <= 0.0)
            continue;
        acc.dynamic += e.dynamicE / total;
        acc.overhead += e.overheadE / total;
        acc.still += e.staticE / total;
        ++n;
    }
    if (n > 0) {
        acc.dynamic /= n;
        acc.overhead /= n;
        acc.still /= n;
    }
    return acc;
}

} // namespace

int
main()
{
    using namespace wg;
    ExperimentRunner runner;

    Table table("Fig. 1b: execution-unit energy breakdown, suite average "
                "(fractions of the no-gating total energy)");
    table.header({"configuration", "unit", "dynamic", "overhead",
                  "static", "total"});

    const auto all = benchmarkNames();
    const auto fp = ExperimentRunner::fpBenchmarks();

    struct RowSpec
    {
        const char* label;
        Technique tech;
        UnitClass uc;
        const std::vector<std::string>* benches;
    };
    const RowSpec rows[] = {
        {"Baseline", Technique::Baseline, UnitClass::Int, &all},
        {"Baseline", Technique::Baseline, UnitClass::Fp, &fp},
        {"Conventional PG", Technique::ConvPG, UnitClass::Int, &all},
        {"Conventional PG", Technique::ConvPG, UnitClass::Fp, &fp},
    };

    for (const RowSpec& spec : rows) {
        Split s = averageSplit(runner, spec.tech, spec.uc, *spec.benches);
        table.row({spec.label, unitClassName(spec.uc),
                   Table::pct(s.dynamic), Table::pct(s.overhead),
                   Table::pct(s.still),
                   Table::pct(s.dynamic + s.overhead + s.still)});
    }
    table.print();
    return 0;
}
