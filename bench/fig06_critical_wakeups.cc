/**
 * @file
 * Reproduces Fig. 6: correlation between critical wakeups per 1000
 * cycles and performance loss under Blackout, across static idle-detect
 * values 0..10. The Pearson coefficient per benchmark is printed next
 * to its name, as in the paper's legend.
 *
 * Paper reference: 11 benchmarks with r > 0.9; kmeans, MUM, lavaMD,
 * mri, WP and sgemm show low correlation because Blackout costs them
 * no performance to begin with.
 */

#include <vector>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;
    ExperimentRunner runner;

    Table table("Fig. 6: critical wakeups per 1k cycles vs normalized "
                "runtime under Blackout, idle-detect swept 0..10");
    table.header({"benchmark", "pearson r", "cw/1k @ID=0", "runtime@0",
                  "cw/1k @ID=5", "runtime@5", "cw/1k @ID=10",
                  "runtime@10"});

    for (const std::string& name : benchmarkNames()) {
        const SimResult& base = runner.run(name, Technique::Baseline);

        std::vector<double> criticals, runtimes;
        std::array<double, 3> cw_probe = {0, 0, 0};
        std::array<double, 3> rt_probe = {0, 0, 0};
        for (Cycle id = 0; id <= 10; ++id) {
            ExperimentOptions opts = runner.options();
            opts.idleDetect = id;
            const SimResult& r = runner.run(
                name, Technique::CoordinatedBlackout, std::optional(opts));
            double cw = r.criticalWakeupsPer1k(UnitClass::Int) +
                        r.criticalWakeupsPer1k(UnitClass::Fp);
            double rt = normalizedRuntime(r, base);
            criticals.push_back(cw);
            runtimes.push_back(rt);
            if (id == 0) {
                cw_probe[0] = cw;
                rt_probe[0] = rt;
            } else if (id == 5) {
                cw_probe[1] = cw;
                rt_probe[1] = rt;
            } else if (id == 10) {
                cw_probe[2] = cw;
                rt_probe[2] = rt;
            }
        }

        double r = pearson(criticals, runtimes);
        table.row({name, Table::num(r, 2), Table::num(cw_probe[0], 1),
                   Table::num(rt_probe[0], 3), Table::num(cw_probe[1], 1),
                   Table::num(rt_probe[1], 3), Table::num(cw_probe[2], 1),
                   Table::num(rt_probe[2], 3)});
    }
    table.print();
    return 0;
}
