/**
 * @file
 * Extension study: SFU power gating. The paper (Section 3) scopes SFUs
 * out of its evaluation, arguing SFU instructions are rare enough that
 * conventional gating recovers most SFU leakage; this harness measures
 * exactly that claim on the SFU-using benchmarks of the suite.
 */

#include <vector>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;
    ExperimentOptions opts;
    opts.numSms = 4;

    Table table("SFU conventional power gating (extension; paper "
                "Section 3 claim: conventional PG suffices for SFUs)");
    table.header({"benchmark", "sfu share", "sfu static savings",
                  "sfu wakeups", "runtime vs no-sfu-gating"});

    for (const std::string& name : benchmarkNames()) {
        const BenchmarkProfile& profile = findBenchmark(name);
        if (profile.fracSfu < 0.005)
            continue;

        GpuConfig off = makeConfig(Technique::WarpedGates, opts);
        GpuConfig on = off;
        on.sm.pg.gateSfu = true;

        Gpu gpu_off(off), gpu_on(on);
        SimResult r_off = gpu_off.run(profile);
        SimResult r_on = gpu_on.run(profile);

        double share =
            static_cast<double>(r_on.aggregate.sfuIssues) /
            static_cast<double>(r_on.aggregate.issuedTotal);
        table.row({name, Table::pct(share),
                   Table::pct(r_on.sfuEnergy.staticSavingsRatio()),
                   std::to_string(r_on.aggregate.sfuCluster.pg.wakeups),
                   Table::num(static_cast<double>(r_on.cycles) /
                                  static_cast<double>(r_off.cycles),
                              3)});
    }
    table.print();
    return 0;
}
