/**
 * @file
 * Reproduces Fig. 5: GPGPU workload characteristics.
 *   (a) instruction mix per benchmark (FP / INT / SFU / LDST shares)
 *   (b) maximum and average active-warps-set size at runtime
 *
 * Both are measured from the baseline (two-level scheduler, no power
 * gating) simulation, exactly as the paper characterises its suite.
 */

#include <iostream>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;

    ExperimentOptions opts;
    ExperimentRunner runner(opts);

    Table mix("Fig. 5a: instruction mix (dynamic shares)");
    mix.header({"benchmark", "INT", "FP", "SFU", "LDST"});

    Table warps("Fig. 5b: runtime active-warps-set size");
    warps.header({"benchmark", "max", "average"});

    for (const std::string& name : benchmarkNames()) {
        const SimResult& r = runner.run(name, Technique::Baseline);
        const SmStats& a = r.aggregate;
        double total = static_cast<double>(a.issuedTotal);
        auto share = [&](UnitClass uc) {
            return total == 0.0
                       ? 0.0
                       : a.issuedByClass[static_cast<std::size_t>(uc)] /
                             total;
        };
        mix.row({name, Table::pct(share(UnitClass::Int)),
                 Table::pct(share(UnitClass::Fp)),
                 Table::pct(share(UnitClass::Sfu)),
                 Table::pct(share(UnitClass::Ldst))});
        warps.row({name, std::to_string(a.activeSizeMax),
                   Table::num(a.avgActiveWarps(), 1)});
    }

    mix.print();
    warps.print();
    return 0;
}
