/**
 * @file
 * Reproduces Fig. 3: the idle-period length distribution of the
 * integer unit for hotspot, under
 *   (a) the two-level scheduler with conventional power gating,
 *   (b) GATES (with conventional gating),
 *   (c) GATES + Blackout power gating,
 * partitioned into the three regions the paper shades: lengths within
 * the idle-detect window (wasted), within (idle-detect,
 * idle-detect+BET] (net energy loss for conventional gating), and
 * beyond idle-detect+BET (net savings).
 *
 * Paper reference (hotspot): (a) 83.4 / 10.1 / 6.5,
 * (b) 59.0 / 22.1 / 18.9, (c) 54.3 / 0.0 / 45.7 (percent).
 */

#include <iostream>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;
    ExperimentRunner runner;
    const auto& opts = runner.options();

    struct Spec
    {
        const char* label;
        Technique tech;
        const char* paper;
    };
    const Spec specs[] = {
        {"(a) conventional PG", Technique::ConvPG, "83.4/10.1/6.5"},
        {"(b) GATES", Technique::Gates, "59.0/22.1/18.9"},
        {"(c) GATES+Blackout", Technique::NaiveBlackout, "54.3/0.0/45.7"},
    };

    Table table("Fig. 3: hotspot INT idle-period length distribution "
                "(idle-detect 5, BET 14)");
    table.header({"configuration", "<=idle-detect", "mid (net loss)",
                  ">ID+BET (win)", "periods", "mean len",
                  "paper (for reference)"});

    for (const Spec& s : specs) {
        const SimResult& r = runner.run("hotspot", s.tech);
        auto regions =
            r.idleRegions(UnitClass::Int, opts.idleDetect, opts.breakEven);
        table.row({s.label, Table::pct(regions[0]), Table::pct(regions[1]),
                   Table::pct(regions[2]),
                   std::to_string(r.idleHist(UnitClass::Int).total()),
                   Table::num(r.idleHist(UnitClass::Int).mean(), 1),
                   s.paper});
    }
    table.print();

    // Also print the raw per-length frequencies (the paper's x-axis is
    // 0..25 cycles) for the conventional-PG case.
    const SimResult& conv = runner.run("hotspot", Technique::ConvPG);
    const Histogram& h = conv.idleHist(UnitClass::Int);
    Table freq("Fig. 3a raw frequencies: idle-period length vs fraction");
    freq.header({"length", "fraction"});
    for (std::uint64_t b = 1; b <= 25; ++b) {
        freq.row({std::to_string(b),
                  Table::pct(h.total() ? double(h.bin(b)) / h.total()
                                       : 0.0)});
    }
    freq.row({">25", Table::pct(h.total() ? h.fractionAbove(25) : 0.0)});
    freq.print();
    return 0;
}
