/**
 * @file
 * Reproduces Fig. 11: sensitivity of conventional power gating and
 * Warped Gates to (a) the break-even time {9, 14, 19} and (b) the
 * wakeup delay {3, 6, 9}. Reports suite-average INT and FP static
 * energy savings and geomean normalized performance.
 *
 * Paper reference: at BET 19, ConvPG saves only 17% INT vs 33% for
 * Warped Gates; at wakeup delay 9, ConvPG saves 6%/10% (INT/FP) with
 * ~10% performance loss while Warped Gates sustains 33%/48% at ~3%.
 */

#include <algorithm>
#include <vector>

#include "core/warped_gates.hh"

namespace {

struct Row
{
    double int_savings = 0.0;
    double fp_savings = 0.0;
    double perf = 1.0;
};

Row
sweepPoint(wg::ExperimentRunner& runner, wg::Technique tech,
           const wg::ExperimentOptions& opts)
{
    using namespace wg;
    std::vector<double> ints, fps, perfs;
    const auto fp_set = ExperimentRunner::fpBenchmarks();
    for (const std::string& name : benchmarkNames()) {
        const SimResult& base = runner.run(name, Technique::Baseline);
        const SimResult& r = runner.run(name, tech, std::optional(opts));
        ints.push_back(r.intEnergy.staticSavingsRatio());
        if (std::find(fp_set.begin(), fp_set.end(), name) != fp_set.end())
            fps.push_back(r.fpEnergy.staticSavingsRatio());
        perfs.push_back(1.0 / normalizedRuntime(r, base));
    }
    Row row;
    row.int_savings = mean(ints);
    row.fp_savings = mean(fps);
    row.perf = geomean(perfs);
    return row;
}

} // namespace

int
main()
{
    using namespace wg;
    ExperimentRunner runner;

    // Batch-schedule every sweep point (plus the shared baselines) on
    // the thread pool before reporting; sweepPoint then reads the warm
    // cache.
    runner.prefetch({benchmarkNames(), {Technique::Baseline}});
    for (Cycle bet : {Cycle(9), Cycle(14), Cycle(19)}) {
        ExperimentOptions opts = runner.options();
        opts.breakEven = bet;
        runner.prefetch({benchmarkNames(),
                         {Technique::ConvPG, Technique::WarpedGates},
                         opts});
    }
    for (Cycle wake : {Cycle(3), Cycle(6), Cycle(9)}) {
        ExperimentOptions opts = runner.options();
        opts.wakeupDelay = wake;
        runner.prefetch({benchmarkNames(),
                         {Technique::ConvPG, Technique::WarpedGates},
                         opts});
    }

    {
        Table table("Fig. 11a: sensitivity to break-even time (paper: "
                    "ConvPG INT drops to 17% at BET 19; Warped holds "
                    "~33%)");
        table.header({"BET", "technique", "int savings", "fp savings",
                      "perf (geomean)"});
        for (Cycle bet : {Cycle(9), Cycle(14), Cycle(19)}) {
            for (Technique t :
                 {Technique::ConvPG, Technique::WarpedGates}) {
                ExperimentOptions opts = runner.options();
                opts.breakEven = bet;
                Row row = sweepPoint(runner, t, opts);
                table.row({std::to_string(bet), techniqueName(t),
                           Table::pct(row.int_savings),
                           Table::pct(row.fp_savings),
                           Table::num(row.perf, 3)});
            }
        }
        table.print();
    }

    {
        Table table("Fig. 11b: sensitivity to wakeup delay (paper: at 9 "
                    "cycles ConvPG saves 6%/10% at ~0.90 perf; Warped "
                    "sustains 33%/48% at ~0.97)");
        table.header({"wakeup", "technique", "int savings", "fp savings",
                      "perf (geomean)"});
        for (Cycle wake : {Cycle(3), Cycle(6), Cycle(9)}) {
            for (Technique t :
                 {Technique::ConvPG, Technique::WarpedGates}) {
                ExperimentOptions opts = runner.options();
                opts.wakeupDelay = wake;
                Row row = sweepPoint(runner, t, opts);
                table.row({std::to_string(wake), techniqueName(t),
                           Table::pct(row.int_savings),
                           Table::pct(row.fp_savings),
                           Table::num(row.perf, 3)});
            }
        }
        table.print();
    }
    return 0;
}
