/**
 * @file
 * Oracle headroom study (extension, not a paper figure): how close each
 * technique comes to an oracle gating controller that knows every idle
 * period's length in advance (gates instantly, only when profitable).
 * The oracle bound is computed from each run's own measured idle-period
 * histogram, so scheduler effects (GATES lengthening periods) raise the
 * bound too.
 */

#include <vector>

#include "core/warped_gates.hh"
#include "power/oracle.hh"

int
main()
{
    using namespace wg;
    ExperimentRunner runner;
    const Cycle bet = runner.options().breakEven;

    Table table("Oracle headroom, INT units: technique savings vs the "
                "oracle bound on the same execution");
    table.header({"benchmark", "ConvPG", "oracle(ConvPG)", "WarpedGates",
                  "oracle(Warped)", "warped/oracle"});

    std::vector<double> closeness;
    for (const std::string& name : benchmarkNames()) {
        const SimResult& conv = runner.run(name, Technique::ConvPG);
        const SimResult& warped = runner.run(name, Technique::WarpedGates);

        auto bound = [&](const SimResult& r) {
            return oracleStaticSavings(r.idleHist(UnitClass::Int), bet,
                                       2 * r.totalSmCycles);
        };
        double conv_s = conv.intEnergy.staticSavingsRatio();
        double conv_o = bound(conv);
        double warp_s = warped.intEnergy.staticSavingsRatio();
        double warp_o = bound(warped);
        double ratio = warp_o > 0 ? warp_s / warp_o : 0.0;
        closeness.push_back(ratio);

        table.row({name, Table::pct(conv_s), Table::pct(conv_o),
                   Table::pct(warp_s), Table::pct(warp_o),
                   Table::num(ratio, 2)});
    }
    std::vector<std::string> avg = {"mean", "", "", "", "",
                                    Table::num(mean(closeness), 2)};
    table.row(avg);
    table.print();
    return 0;
}
