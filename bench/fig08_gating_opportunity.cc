/**
 * @file
 * Reproduces Fig. 8: how the proposed techniques increase power-gating
 * opportunity for the integer units.
 *   (a) fraction of idle cycles, normalised to the two-level baseline
 *   (b) (compensated - uncompensated) cycles as a share of execution
 *       cycles (negative bars = more uncompensated than compensated)
 *   (c) wakeup count normalised to conventional power gating
 *
 * Paper reference: (a) GATES ~1.03x, Coordinated Blackout ~1.10x;
 * (b) geomean 20.9% ConvPG, 22.6% GATES, 33.5% Warped Gates;
 * (c) Coordinated Blackout 0.74x, Warped Gates 0.54x.
 */

#include <vector>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;
    ExperimentRunner runner;
    const UnitClass uc = UnitClass::Int;

    // ---- (a) normalised fraction of idle cycles ----
    {
        const std::vector<Technique> techs = {
            Technique::Gates, Technique::CoordinatedBlackout,
            Technique::WarpedGates};
        Table table("Fig. 8a: INT idle-cycle fraction normalised to the "
                    "two-level baseline (paper: GATES ~1.03, Coord "
                    "Blackout ~1.10)");
        table.header({"benchmark", "GATES", "CoordBlackout",
                      "WarpedGates"});
        std::vector<std::vector<double>> acc(techs.size());
        for (const std::string& name : benchmarkNames()) {
            const SimResult& base = runner.run(name, Technique::Baseline);
            double base_frac = base.idleFraction(uc);
            std::vector<std::string> row = {name};
            for (std::size_t i = 0; i < techs.size(); ++i) {
                const SimResult& r = runner.run(name, techs[i]);
                double v = base_frac > 0.0
                               ? r.idleFraction(uc) / base_frac
                               : 0.0;
                acc[i].push_back(v);
                row.push_back(Table::num(v, 3));
            }
            table.row(row);
        }
        std::vector<std::string> gm = {"geomean"};
        for (const auto& xs : acc)
            gm.push_back(Table::num(geomean(xs), 3));
        table.row(gm);
        table.print();
    }

    // ---- (b) compensated-minus-uncompensated cycle share ----
    {
        const std::vector<Technique> techs = {Technique::ConvPG,
                                              Technique::Gates,
                                              Technique::WarpedGates};
        Table table("Fig. 8b: INT net compensated cycles / execution "
                    "cycles (paper geomean: ConvPG 20.9%, GATES 22.6%, "
                    "Warped Gates 33.5%)");
        table.header({"benchmark", "ConvPG", "GATES", "WarpedGates"});
        std::vector<std::vector<double>> acc(techs.size());
        for (const std::string& name : benchmarkNames()) {
            std::vector<std::string> row = {name};
            for (std::size_t i = 0; i < techs.size(); ++i) {
                const SimResult& r = runner.run(name, techs[i]);
                double v = r.compensatedNetFraction(uc);
                acc[i].push_back(v);
                row.push_back(Table::pct(v));
            }
            table.row(row);
        }
        std::vector<std::string> gm = {"mean"};
        for (const auto& xs : acc)
            gm.push_back(Table::pct(mean(xs)));
        table.row(gm);
        table.print();
    }

    // ---- (c) wakeups normalised to conventional gating ----
    {
        const std::vector<Technique> techs = {
            Technique::Gates, Technique::CoordinatedBlackout,
            Technique::WarpedGates};
        Table table("Fig. 8c: INT wakeups normalised to ConvPG (paper: "
                    "Coord Blackout 0.74, Warped Gates 0.54)");
        table.header({"benchmark", "GATES", "CoordBlackout",
                      "WarpedGates"});
        std::vector<std::vector<double>> acc(techs.size());
        for (const std::string& name : benchmarkNames()) {
            const SimResult& conv = runner.run(name, Technique::ConvPG);
            double base = static_cast<double>(conv.wakeups(uc));
            std::vector<std::string> row = {name};
            for (std::size_t i = 0; i < techs.size(); ++i) {
                const SimResult& r = runner.run(name, techs[i]);
                double v = base > 0.0 ? r.wakeups(uc) / base : 0.0;
                acc[i].push_back(v);
                row.push_back(Table::num(v, 3));
            }
            table.row(row);
        }
        std::vector<std::string> gm = {"geomean"};
        for (const auto& xs : acc)
            gm.push_back(Table::num(geomean(xs), 3));
        table.row(gm);
        table.print();
    }
    return 0;
}
