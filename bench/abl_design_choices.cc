/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out. Not a paper
 * figure — this quantifies how much each modelling/mechanism decision
 * matters, on three representative benchmarks (hotspot: the paper's
 * running example; sgemm: FP compute; NN: few warps, blackout
 * sensitive).
 *
 * Ablations:
 *   A1  GATES priority switch on blackout (Section 5) on/off
 *   A2  GATES maximum priority-hold threshold (Section 4)
 *   A3  two-level active-set capacity
 *   A4  DRAM return batching (batched vs uniform trickle at equal
 *       bandwidth) — a workload-model choice that shapes idle droughts
 *   A5  CTA program sharing (correlated vs independent warp programs)
 */

#include <vector>

#include "core/warped_gates.hh"

namespace {

const char* kBenches[] = {"hotspot", "sgemm", "NN"};

/** Run one configuration, return (int savings, norm runtime). */
std::pair<double, double>
measure(const wg::GpuConfig& config, const std::string& bench,
        wg::Cycle base_cycles)
{
    using namespace wg;
    Gpu gpu(config);
    SimResult r = gpu.run(findBenchmark(bench));
    double perf = base_cycles > 0 ? static_cast<double>(r.cycles) /
                                        static_cast<double>(base_cycles)
                                  : 0.0;
    return {r.intEnergy.staticSavingsRatio(), perf};
}

wg::Cycle
baseline(const std::string& bench, const wg::ExperimentOptions& opts)
{
    using namespace wg;
    Gpu gpu(makeConfig(Technique::Baseline, opts));
    return gpu.run(findBenchmark(bench)).cycles;
}

} // namespace

int
main()
{
    using namespace wg;
    ExperimentOptions opts;
    opts.numSms = 4;

    std::map<std::string, Cycle> base;
    for (const char* b : kBenches)
        base[b] = baseline(b, opts);

    {
        Table table("A1: GATES priority switch on blackout "
                    "(WarpedGates; int savings / runtime)");
        table.header({"benchmark", "switch on", "switch off"});
        for (const char* b : kBenches) {
            GpuConfig on = makeConfig(Technique::WarpedGates, opts);
            GpuConfig off = on;
            off.sm.gates.switchOnBlackout = false;
            auto [s1, p1] = measure(on, b, base[b]);
            auto [s2, p2] = measure(off, b, base[b]);
            table.row({b,
                       Table::pct(s1) + " / " + Table::num(p1, 3),
                       Table::pct(s2) + " / " + Table::num(p2, 3)});
        }
        table.print();
    }

    {
        Table table("A2: GATES max priority hold (WarpedGates)");
        table.header({"benchmark", "unbounded", "hold 500", "hold 100"});
        for (const char* b : kBenches) {
            std::vector<std::string> row = {b};
            for (Cycle hold : {Cycle(0), Cycle(500), Cycle(100)}) {
                GpuConfig cfg = makeConfig(Technique::WarpedGates, opts);
                cfg.sm.gates.maxPriorityHold = hold;
                auto [s, p] = measure(cfg, b, base[b]);
                row.push_back(Table::pct(s) + " / " + Table::num(p, 3));
            }
            table.row(row);
        }
        table.print();
    }

    {
        Table table("A3: active-set capacity (WarpedGates)");
        table.header({"benchmark", "8", "16", "32"});
        for (const char* b : kBenches) {
            std::vector<std::string> row = {b};
            for (unsigned cap : {8u, 16u, 32u}) {
                GpuConfig cfg = makeConfig(Technique::WarpedGates, opts);
                cfg.sm.activeSetCapacity = cap;
                auto [s, p] = measure(cfg, b, base[b]);
                row.push_back(Table::pct(s) + " / " + Table::num(p, 3));
            }
            table.row(row);
        }
        table.print();
    }

    {
        Table table("A4: DRAM return batching at equal bandwidth "
                    "(ConvPG int savings; batching creates the long "
                    "droughts gating needs)");
        table.header({"benchmark", "4 per 96 (batched)",
                      "1 per 24 (trickle)"});
        for (const char* b : kBenches) {
            GpuConfig batched = makeConfig(Technique::ConvPG, opts);
            GpuConfig trickle = batched;
            trickle.sm.mem.serviceBatchSize = 1;
            trickle.sm.mem.serviceBatchPeriod = 24;
            auto [s1, p1] = measure(batched, b, base[b]);
            auto [s2, p2] = measure(trickle, b, base[b]);
            (void)p1;
            (void)p2;
            table.row({b, Table::pct(s1), Table::pct(s2)});
        }
        table.print();
    }

    {
        Table table("A5: CTA program sharing (WarpedGates int savings; "
                    "correlated warps stall together)");
        table.header({"benchmark", "shared (cta=16)",
                      "independent (cta=1)"});
        for (const char* b : kBenches) {
            GpuConfig cfg = makeConfig(Technique::WarpedGates, opts);
            BenchmarkProfile shared = findBenchmark(b);
            BenchmarkProfile indep = shared;
            indep.ctaWarps = 1;
            Gpu gpu(cfg);
            SimResult rs = gpu.run(shared);
            SimResult ri = gpu.run(indep);
            table.row({b,
                       Table::pct(rs.intEnergy.staticSavingsRatio()),
                       Table::pct(ri.intEnergy.staticSavingsRatio())});
        }
        table.print();
    }
    return 0;
}
