#!/usr/bin/env bash
# End-to-end serving smoke for CI.
#
# Starts wgservd on an ephemeral loopback port, submits the hotspot /
# WarpedGates sweep through wgctl, and holds the serving path to the
# offline contract:
#
#   1. wgctl's stdout is byte-identical to the offline wgsim run;
#   2. the streamed metrics registry matches the committed baseline
#      (ci/metrics-baseline-hotspot.jsonl) at wgreport --tol 0;
#   3. the streamed registry matches a fresh offline --metrics export
#      at --tol 0;
#   4. `wgctl watch` of a live job re-exports the streamed epoch frames
#      byte-identical (cmp AND wgreport --tol 0) to the offline
#      `wgsim --metrics` export of the same cell;
#   5. the daemon's structured event log records the job life cycle;
#   6. drain finishes in-flight work, then the daemon exits 0.
#
# Usage: ci/serve_e2e.sh [build-dir]   (run from the repo root)
set -euo pipefail

BUILD=${1:-build}
BASELINE=ci/metrics-baseline-hotspot.jsonl
# The baseline was recorded at --sms 4 (see ci.yml's wgsim smoke).
SWEEP_ARGS=(--bench hotspot --technique WarpedGates --sms 4)
STEP_TIMEOUT=300

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "serve_e2e: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$WORK/daemon.log" >&2 || true
    exit 1
}

echo "serve_e2e: starting wgservd on an ephemeral port"
"$BUILD/tools/wgservd" --port 0 --sms 4 \
    --log-file "$WORK/events.jsonl" --log-level debug \
    >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

# The startup line's format is stable on purpose; parse the bound port.
PORT=""
for _ in $(seq 1 100); do
    PORT=$(sed -n \
        's/^wgservd: listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
        "$WORK/daemon.log")
    [ -n "$PORT" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on startup"
    sleep 0.1
done
[ -n "$PORT" ] || fail "no listening line after 10s"
echo "serve_e2e: daemon up on port $PORT (pid $DAEMON_PID)"

echo "serve_e2e: submitting hotspot sweep via wgctl"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" submit --port "$PORT" \
    "${SWEEP_ARGS[@]}" --wait --metrics "$WORK/served.jsonl" \
    >"$WORK/served.txt" \
    || fail "wgctl submit --wait"

echo "serve_e2e: running the identical sweep offline"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgsim" "${SWEEP_ARGS[@]}" \
    --metrics "$WORK/offline.jsonl" >"$WORK/offline.txt" \
    || fail "offline wgsim"

echo "serve_e2e: gate 1 — served stdout is byte-identical to offline"
cmp "$WORK/served.txt" "$WORK/offline.txt" \
    || fail "served summary differs from offline wgsim (diff: $(
        diff "$WORK/offline.txt" "$WORK/served.txt" | head -20))"

echo "serve_e2e: gate 2 — served registry vs committed baseline, tol 0"
"$BUILD/tools/wgreport" --tol 0 "$BASELINE" "$WORK/served.jsonl" \
    || fail "served metrics drifted from $BASELINE"

echo "serve_e2e: gate 3 — served registry vs fresh offline export, tol 0"
"$BUILD/tools/wgreport" --tol 0 "$WORK/offline.jsonl" \
    "$WORK/served.jsonl" \
    || fail "served metrics differ from offline --metrics export"

echo "serve_e2e: gate 4 — live watch is byte-identical to offline"
# A distinct cell (different technique) so the submission cannot dedup
# onto the finished WarpedGates job: the watch rides the live stream.
WATCH_ARGS=(--bench hotspot --technique GATES --sms 4)
WATCH_ID=$(timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" submit \
    --port "$PORT" "${WATCH_ARGS[@]}") \
    || fail "wgctl submit (watch job)"
echo "serve_e2e: watching job $WATCH_ID live"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" watch --port "$PORT" \
    --id "$WATCH_ID" --metrics "$WORK/watch_live.jsonl" \
    >"$WORK/watch.txt" \
    || fail "wgctl watch (output: $(cat "$WORK/watch.txt"))"
grep -q "^$WATCH_ID done" "$WORK/watch.txt" \
    || fail "watch output missing terminal 'done' line"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgsim" "${WATCH_ARGS[@]}" \
    --metrics "$WORK/watch_offline.jsonl" >/dev/null \
    || fail "offline wgsim (watch reference)"
cmp "$WORK/watch_live.jsonl" "$WORK/watch_offline.jsonl" \
    || fail "streamed epoch series is not byte-identical to offline (diff: $(
        diff "$WORK/watch_offline.jsonl" "$WORK/watch_live.jsonl" \
        | head -10))"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgreport" --tol 0 \
    "$WORK/watch_offline.jsonl" "$WORK/watch_live.jsonl" \
    || fail "streamed final registry drifted from offline at tol 0"

echo "serve_e2e: gate 5 — event log recorded the job life cycle"
[ -s "$WORK/events.jsonl" ] || fail "--log-file produced no events"
for event in jobSubmitted jobStarted jobFinished subscribed; do
    grep -q "\"event\":\"$event\"" "$WORK/events.jsonl" \
        || fail "event log missing '$event' (log: $(
            head -20 "$WORK/events.jsonl"))"
done

echo "serve_e2e: gate 6 — drain shuts the daemon down cleanly"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" drain --port "$PORT" \
    || fail "wgctl drain"
DAEMON_RC=0
wait "$DAEMON_PID" || DAEMON_RC=$?
DAEMON_PID=""
[ "$DAEMON_RC" -eq 0 ] || fail "daemon exited $DAEMON_RC after drain"
grep -q "drained, exiting" "$WORK/daemon.log" \
    || fail "daemon log missing drain acknowledgement"

echo "serve_e2e: PASS"
