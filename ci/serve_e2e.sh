#!/usr/bin/env bash
# End-to-end serving smoke for CI.
#
# Starts wgservd on an ephemeral loopback port, submits the hotspot /
# WarpedGates sweep through wgctl, and holds the serving path to the
# offline contract:
#
#   1. wgctl's stdout is byte-identical to the offline wgsim run;
#   2. the streamed metrics registry matches the committed baseline
#      (ci/metrics-baseline-hotspot.jsonl) at wgreport --tol 0;
#   3. the streamed registry matches a fresh offline --metrics export
#      at --tol 0;
#   4. drain finishes in-flight work, then the daemon exits 0.
#
# Usage: ci/serve_e2e.sh [build-dir]   (run from the repo root)
set -euo pipefail

BUILD=${1:-build}
BASELINE=ci/metrics-baseline-hotspot.jsonl
# The baseline was recorded at --sms 4 (see ci.yml's wgsim smoke).
SWEEP_ARGS=(--bench hotspot --technique WarpedGates --sms 4)
STEP_TIMEOUT=300

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "serve_e2e: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$WORK/daemon.log" >&2 || true
    exit 1
}

echo "serve_e2e: starting wgservd on an ephemeral port"
"$BUILD/tools/wgservd" --port 0 --sms 4 >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!

# The startup line's format is stable on purpose; parse the bound port.
PORT=""
for _ in $(seq 1 100); do
    PORT=$(sed -n \
        's/^wgservd: listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
        "$WORK/daemon.log")
    [ -n "$PORT" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on startup"
    sleep 0.1
done
[ -n "$PORT" ] || fail "no listening line after 10s"
echo "serve_e2e: daemon up on port $PORT (pid $DAEMON_PID)"

echo "serve_e2e: submitting hotspot sweep via wgctl"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" submit --port "$PORT" \
    "${SWEEP_ARGS[@]}" --wait --metrics "$WORK/served.jsonl" \
    >"$WORK/served.txt" \
    || fail "wgctl submit --wait"

echo "serve_e2e: running the identical sweep offline"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgsim" "${SWEEP_ARGS[@]}" \
    --metrics "$WORK/offline.jsonl" >"$WORK/offline.txt" \
    || fail "offline wgsim"

echo "serve_e2e: gate 1 — served stdout is byte-identical to offline"
cmp "$WORK/served.txt" "$WORK/offline.txt" \
    || fail "served summary differs from offline wgsim (diff: $(
        diff "$WORK/offline.txt" "$WORK/served.txt" | head -20))"

echo "serve_e2e: gate 2 — served registry vs committed baseline, tol 0"
"$BUILD/tools/wgreport" --tol 0 "$BASELINE" "$WORK/served.jsonl" \
    || fail "served metrics drifted from $BASELINE"

echo "serve_e2e: gate 3 — served registry vs fresh offline export, tol 0"
"$BUILD/tools/wgreport" --tol 0 "$WORK/offline.jsonl" \
    "$WORK/served.jsonl" \
    || fail "served metrics differ from offline --metrics export"

echo "serve_e2e: gate 4 — drain shuts the daemon down cleanly"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" drain --port "$PORT" \
    || fail "wgctl drain"
DAEMON_RC=0
wait "$DAEMON_PID" || DAEMON_RC=$?
DAEMON_PID=""
[ "$DAEMON_RC" -eq 0 ] || fail "daemon exited $DAEMON_RC after drain"
grep -q "drained, exiting" "$WORK/daemon.log" \
    || fail "daemon log missing drain acknowledgement"

echo "serve_e2e: PASS"
