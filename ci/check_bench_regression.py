#!/usr/bin/env python3
"""Gate BENCH_micro_sim_throughput.json against the committed baseline.

Compares only machine-independent *ratio* metrics, so the gate is
robust across runner hardware generations:

  fastforward.<profile>.ff_speedup   (event-horizon speedup, off/on)
  sm_cycles_per_sec.<tech> / sm_cycles_per_sec.Baseline
                                     (per-technique throughput relative
                                      to Baseline on the same host)

Absolute times (off_ms/on_ms) and cycles/sec vary with the host and are
reported but never gated. Exits non-zero when any gated ratio drops
more than --max-drop (default 10%) below the baseline, or when a
section present in the baseline is missing from the new run.
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("current", help="freshly measured JSON")
    ap.add_argument("--max-drop", type=float, default=0.10,
                    help="max fractional drop allowed (default 0.10)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    failures = []
    base_ff = base.get("fastforward", {})
    cur_ff = cur.get("fastforward", {})
    for profile, metrics in sorted(base_ff.items()):
        want = metrics.get("ff_speedup")
        if want is None:
            continue
        got_section = cur_ff.get(profile)
        if got_section is None:
            failures.append(
                f"fastforward.{profile}: missing from current run")
            continue
        got = got_section.get("ff_speedup")
        floor = want * (1.0 - args.max_drop)
        status = "OK" if got >= floor else "FAIL"
        print(f"fastforward.{profile}.ff_speedup: baseline {want:.3f} "
              f"current {got:.3f} floor {floor:.3f} [{status}]")
        if got < floor:
            failures.append(
                f"fastforward.{profile}.ff_speedup regressed: "
                f"{got:.3f} < {floor:.3f} ({want:.3f} - {args.max_drop:.0%})")

    if not base_ff:
        failures.append("baseline has no fastforward section to gate on")

    # Technique-relative throughput: <tech>/Baseline cancels the host
    # speed, leaving only the simulator's per-technique overhead. A drop
    # means a technique's hot path (scheduler, pg controller) got
    # disproportionately slower.
    base_cps = base.get("sm_cycles_per_sec", {})
    cur_cps = cur.get("sm_cycles_per_sec", {})
    base_ref = base_cps.get("Baseline")
    cur_ref = cur_cps.get("Baseline")
    if base_ref and not cur_ref:
        failures.append("sm_cycles_per_sec.Baseline: missing from "
                        "current run")
    for tech in sorted(base_cps):
        if tech == "Baseline" or not base_ref or not cur_ref:
            continue
        want = base_cps[tech] / base_ref
        got_abs = cur_cps.get(tech)
        if got_abs is None:
            failures.append(
                f"sm_cycles_per_sec.{tech}: missing from current run")
            continue
        got = got_abs / cur_ref
        floor = want * (1.0 - args.max_drop)
        status = "OK" if got >= floor else "FAIL"
        print(f"sm_cycles_per_sec.{tech}/Baseline: baseline {want:.3f} "
              f"current {got:.3f} floor {floor:.3f} [{status}]")
        if got < floor:
            failures.append(
                f"sm_cycles_per_sec.{tech}/Baseline regressed: "
                f"{got:.3f} < {floor:.3f} ({want:.3f} - {args.max_drop:.0%})")

    for msg in failures:
        print(f"REGRESSION: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
