#!/usr/bin/env bash
# End-to-end checkpoint/resume smoke for CI.
#
# Holds the DESIGN.md §17 contract: a run split at a checkpoint and
# resumed — in a different process, even with a different fast-forward
# setting — is byte-identical to the uninterrupted run.
#
#   1. wgsim --checkpoint-at/--resume: split CSV equals unsplit CSV;
#   2. the split run's --metrics and --trace files equal the unsplit
#      run's byte for byte (cmp AND wgreport --tol 0);
#   3. fast-forward asymmetry: an FF-on capture resumed with
#      --no-fastforward still matches;
#   4. snapshot documents are stable: checkpointing the resumed state
#      at the same cycle reproduces the snapshot bytes;
#   5. corrupt / version-bumped / truncated snapshots are rejected
#      with exit 2 (never a crash);
#   6. daemon jobs survive: wgctl checkpoint on one wgservd, wgctl
#      submit --resume on a second — the resumed job's output is
#      byte-identical and every checkpointed cell is served from the
#      seeded cache.
#
# Usage: ci/checkpoint_e2e.sh [build-dir]   (run from the repo root)
set -euo pipefail

BUILD=${1:-build}
RUN_ARGS=(--bench hotspot --technique WarpedGates --sms 4 --quiet)
# An epoch boundary well inside the run (epochLength default is 1000).
CUT=2000
STEP_TIMEOUT=300

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
        wait "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "checkpoint_e2e: FAIL: $*" >&2
    if [ -f "$WORK/daemon.log" ]; then
        echo "--- daemon log ---" >&2
        cat "$WORK/daemon.log" >&2 || true
    fi
    exit 1
}

start_daemon() {
    local log=$1
    "$BUILD/tools/wgservd" --port 0 --sms 4 \
        --log-file "$WORK/$log" --log-level debug \
        >"$WORK/daemon.log" 2>&1 &
    DAEMON_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
        PORT=$(sed -n \
            's/^wgservd: listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
            "$WORK/daemon.log")
        [ -n "$PORT" ] && break
        kill -0 "$DAEMON_PID" 2>/dev/null \
            || fail "daemon died on startup"
        sleep 0.1
    done
    [ -n "$PORT" ] || fail "no listening line after 10s"
}

stop_daemon() {
    timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" drain --port "$PORT" \
        || fail "wgctl drain"
    wait "$DAEMON_PID" || fail "daemon exited non-zero after drain"
    DAEMON_PID=""
}

echo "checkpoint_e2e: reference: one uninterrupted observed run"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgsim" "${RUN_ARGS[@]}" \
    --csv "$WORK/whole.csv" --metrics "$WORK/whole.jsonl" \
    --trace "$WORK/whole.trace" \
    || fail "uninterrupted wgsim run"

echo "checkpoint_e2e: gate 1 — capture at cycle $CUT, resume, compare"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgsim" "${RUN_ARGS[@]}" \
    --checkpoint-at "$CUT" --checkpoint "$WORK/run.ckpt.json" \
    --metrics "$WORK/split.jsonl" --trace "$WORK/split.trace" \
    || fail "wgsim --checkpoint-at"
[ -s "$WORK/run.ckpt.json" ] || fail "checkpoint file is empty"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgsim" --quiet \
    --resume "$WORK/run.ckpt.json" --csv "$WORK/split.csv" \
    --metrics "$WORK/split.jsonl" --trace "$WORK/split.trace" \
    || fail "wgsim --resume"
cmp "$WORK/whole.csv" "$WORK/split.csv" \
    || fail "split CSV differs from unsplit (diff: $(
        diff "$WORK/whole.csv" "$WORK/split.csv" | head -10))"

echo "checkpoint_e2e: gate 2 — metrics and trace files byte-identical"
cmp "$WORK/whole.jsonl" "$WORK/split.jsonl" \
    || fail "split metrics file is not byte-identical"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgreport" --tol 0 \
    "$WORK/whole.jsonl" "$WORK/split.jsonl" \
    || fail "split metrics registry drifted at tol 0"
cmp "$WORK/whole.trace" "$WORK/split.trace" \
    || fail "split trace is not byte-identical"

echo "checkpoint_e2e: gate 3 — FF-on capture resumed with FF off"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgsim" "${RUN_ARGS[@]}" \
    --checkpoint-at "$CUT" --checkpoint "$WORK/plain.ckpt.json" \
    || fail "wgsim --checkpoint-at (unobserved)"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgsim" --quiet \
    --no-fastforward --resume "$WORK/plain.ckpt.json" \
    --csv "$WORK/ffoff.csv" \
    || fail "wgsim --resume --no-fastforward"
cmp "$WORK/whole.csv" "$WORK/ffoff.csv" \
    || fail "FF-off resume of an FF-on capture diverged"

echo "checkpoint_e2e: gate 4 — re-checkpointing reproduces the bytes"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgsim" --quiet \
    --resume "$WORK/plain.ckpt.json" --checkpoint-at "$CUT" \
    --checkpoint "$WORK/again.ckpt.json" \
    || fail "wgsim --resume --checkpoint-at (re-checkpoint)"
cmp "$WORK/plain.ckpt.json" "$WORK/again.ckpt.json" \
    || fail "re-checkpoint at the same cycle changed the snapshot bytes"

echo "checkpoint_e2e: gate 5 — malformed snapshots are rejected (exit 2)"
expect_reject() {
    local what=$1 file=$2
    local rc=0
    "$BUILD/tools/wgsim" --quiet --resume "$file" \
        >/dev/null 2>"$WORK/reject.err" || rc=$?
    [ "$rc" -eq 2 ] \
        || fail "$what: expected exit 2, got $rc ($(cat "$WORK/reject.err"))"
    [ -s "$WORK/reject.err" ] || fail "$what: no error message"
}
head -c 512 "$WORK/plain.ckpt.json" >"$WORK/truncated.ckpt.json"
expect_reject "truncated snapshot" "$WORK/truncated.ckpt.json"
sed 's/"wire":2/"wire":9/' "$WORK/plain.ckpt.json" \
    >"$WORK/future.ckpt.json"
expect_reject "future schema version" "$WORK/future.ckpt.json"
sed 's/"technique":"WarpedGates"/"technique":"WarpedGoats"/' \
    "$WORK/plain.ckpt.json" >"$WORK/corrupt.ckpt.json"
expect_reject "corrupt technique" "$WORK/corrupt.ckpt.json"
expect_reject "missing file" "$WORK/does-not-exist.json"

echo "checkpoint_e2e: gate 6 — daemon job checkpoint/resume"
start_daemon events_first.jsonl
echo "checkpoint_e2e: first daemon up on port $PORT"
SWEEP=(--bench hotspot,bfs --technique Baseline,WarpedGates --sms 4)
# First submit returns the id for the checkpoint; the same-sweep
# resubmission dedups onto the running job and waits for the results.
JOB=$(timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" submit \
    --port "$PORT" "${SWEEP[@]}") \
    || fail "wgctl submit (first daemon)"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" submit --port "$PORT" \
    "${SWEEP[@]}" --wait --quiet --csv "$WORK/job_first.csv" \
    || fail "wgctl submit --wait (first daemon)"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" checkpoint --port "$PORT" \
    --id "$JOB" --out "$WORK/job.ckpt.json" \
    || fail "wgctl checkpoint"
grep -q '"type":"jobSnapshot"' "$WORK/job.ckpt.json" \
    || fail "job snapshot missing its envelope"
stop_daemon

start_daemon events_second.jsonl
echo "checkpoint_e2e: second daemon up on port $PORT"
timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" submit --port "$PORT" \
    --resume "$WORK/job.ckpt.json" --wait --quiet \
    --csv "$WORK/job_resumed.csv" \
    || fail "wgctl submit --resume"
cmp "$WORK/job_first.csv" "$WORK/job_resumed.csv" \
    || fail "resumed job results differ (diff: $(
        diff "$WORK/job_first.csv" "$WORK/job_resumed.csv" | head -10))"
grep -q '"event":"cellsSeeded"' "$WORK/events_second.jsonl" \
    || fail "second daemon never seeded the checkpointed cells"
STATS=$(timeout "$STEP_TIMEOUT" "$BUILD/tools/wgctl" stats \
    --port "$PORT") || fail "wgctl stats"
echo "$STATS" | grep -E 'serve\.cache\.misses +0\b' >/dev/null \
    || fail "resume recomputed cells instead of using the seeded cache ($STATS)"
stop_daemon

echo "checkpoint_e2e: PASS"
