/**
 * @file
 * Reproduces the paper's Fig. 4 illustration as a cycle-by-cycle trace:
 * twelve single-instruction warps (INT1 INT2 FP1 INT3 FP2 INT4 INT5
 * INT6 INT7 FP3 FP4 INT8) scheduled at issue width 1, once with the
 * type-agnostic two-level scheduler and once with GATES. The printed
 * pipeline occupancy shows GATES coalescing the FP work into one burst,
 * turning scattered bubbles into one long gateable idle period.
 */

#include <iostream>
#include <string>

#include "core/warped_gates.hh"

namespace {

void
trace(wg::SchedulerPolicy policy)
{
    using namespace wg;

    SmConfig cfg;
    cfg.pg.policy = PgPolicy::None;
    cfg.scheduler = policy;
    cfg.issueWidth = 1;

    Sm sm(cfg, fig4Warps(), 1);

    std::cout << "--- " << schedulerPolicyName(policy)
              << " scheduler ---\n";
    std::cout << "cycle  INT0 INT1 FP0  FP1\n";
    while (!sm.done() && sm.now() < 40) {
        sm.step();
        auto mark = [](const ExecUnit& u) {
            return u.busy() ? "##" : "..";
        };
        std::cout << "  " << (sm.now() - 1 < 10 ? " " : "")
                  << sm.now() - 1 << "    " << mark(sm.intCluster(0))
                  << "   " << mark(sm.intCluster(1)) << "   "
                  << mark(sm.fpCluster(0)) << "   "
                  << mark(sm.fpCluster(1)) << "\n";
    }

    const SmStats& s = sm.stats();
    std::cout << "total cycles: " << s.cycles << ", FP idle periods: "
              << s.clusters[1][0].idleHist.total() +
                     s.clusters[1][1].idleHist.total()
              << ", INT idle periods: "
              << s.clusters[0][0].idleHist.total() +
                     s.clusters[0][1].idleHist.total()
              << "\n\n";
}

} // namespace

int
main()
{
    std::cout << "Fig. 4: effect of the warp scheduler on idle cycles\n"
              << "(12 warps: INT INT FP INT FP INT INT INT INT FP FP "
                 "INT; one issue per cycle)\n\n";
    trace(wg::SchedulerPolicy::TwoLevel);
    trace(wg::SchedulerPolicy::Gates);
    std::cout << "GATES issues every INT instruction before the first "
                 "FP instruction,\ncreating one long FP idle period "
                 "instead of scattered bubbles.\n";
    return 0;
}
