/**
 * @file
 * Quickstart: run the hotspot workload under every technique and print
 * static-energy savings and performance — the headline comparison of
 * the paper in a dozen lines of API use.
 */

#include <iostream>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;

    ExperimentOptions opts;
    opts.numSms = 4; // keep the quickstart snappy

    ExperimentRunner runner(opts);
    const SimResult& base = runner.run("hotspot", Technique::Baseline);

    Table table("hotspot: static energy savings and performance");
    table.header({"technique", "int savings", "fp savings",
                  "norm. runtime", "int wakeups", "fp wakeups"});

    for (Technique t : allTechniques()) {
        const SimResult& r = runner.run("hotspot", t);
        table.row({
            techniqueName(t),
            Table::pct(r.intEnergy.staticSavingsRatio()),
            Table::pct(r.fpEnergy.staticSavingsRatio()),
            Table::num(normalizedRuntime(r, base), 3),
            std::to_string(r.wakeups(UnitClass::Int)),
            std::to_string(r.wakeups(UnitClass::Fp)),
        });
    }
    table.print();

    const SimResult& warped = runner.run("hotspot", Technique::WarpedGates);
    std::cout << "Warped Gates saved "
              << Table::pct(warped.intEnergy.staticSavingsRatio())
              << " of INT and "
              << Table::pct(warped.fpEnergy.staticSavingsRatio())
              << " of FP static energy at "
              << Table::num(normalizedRuntime(warped, base), 3)
              << "x baseline runtime." << std::endl;
    return 0;
}
