/**
 * @file
 * Diagnostic: per-benchmark microarchitectural characterisation under a
 * chosen technique. Prints utilisation, active-warp occupancy, idle
 * period regions and gating behaviour — the numbers one needs to sanity
 * check a workload model against the paper's Figures 3 and 5.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/warped_gates.hh"

int
main(int argc, char** argv)
{
    using namespace wg;

    std::string bench = argc > 1 ? argv[1] : "hotspot";
    Technique tech = Technique::ConvPG;
    if (argc > 2) {
        std::string t = argv[2];
        for (Technique cand : allTechniques())
            if (t == techniqueName(cand))
                tech = cand;
    }

    ExperimentOptions opts;
    opts.numSms = 4;
    ExperimentRunner runner(opts);
    const SimResult& r = runner.run(bench, tech);
    const SimResult& base = runner.run(bench, Technique::Baseline);

    const SmStats& a = r.aggregate;
    double sm_cycles = static_cast<double>(r.totalSmCycles);

    std::cout << "benchmark " << bench << " under " << techniqueName(tech)
              << "\n";
    std::cout << "  cycles (max SM)        " << r.cycles << "\n";
    std::cout << "  norm. runtime          "
              << Table::num(normalizedRuntime(r, base), 4) << "\n";
    std::cout << "  IPC                    " << Table::num(r.ipc(), 3)
              << "\n";
    std::cout << "  avg/max active warps   "
              << Table::num(a.avgActiveWarps(), 1) << " / "
              << a.activeSizeMax << "\n";
    std::cout << "  issued INT/FP/SFU/LDST ";
    for (std::size_t c = 0; c < kNumUnitClasses; ++c)
        std::cout << a.issuedByClass[c] << (c + 1 < kNumUnitClasses ? "/"
                                                                    : "\n");
    std::cout << "  mem hit/miss/store     " << a.memHits << "/"
              << a.memMisses << "/" << a.memStores << " (rejects "
              << a.mshrRejects << ")\n";

    for (UnitClass uc : {UnitClass::Int, UnitClass::Fp}) {
        PgDomainStats s = r.typeStats(uc);
        double cc = 2.0 * sm_cycles;
        auto regions = r.idleRegions(uc, opts.idleDetect, opts.breakEven);
        std::cout << "  [" << unitClassName(uc) << "] busy "
                  << Table::pct(s.busyCycles / cc) << "  idleOn "
                  << Table::pct(s.idleOnCycles / cc) << "  gated "
                  << Table::pct(s.gatedCycles() / cc) << " (comp "
                  << Table::pct(s.compCycles / cc) << ")  wakeups "
                  << s.wakeups << " (uncomp " << s.uncompWakeups
                  << ", critical " << s.criticalWakeups << ")\n";
        std::cout << "        idle periods: <=ID "
                  << Table::pct(regions[0]) << "  mid "
                  << Table::pct(regions[1]) << "  >ID+BET "
                  << Table::pct(regions[2]) << "  (count "
                  << r.idleHist(uc).total() << ", mean "
                  << Table::num(r.idleHist(uc).mean(), 1) << ")\n";
        std::cout << "        static savings "
                  << Table::pct(r.energy(uc).staticSavingsRatio()) << "\n";
    }
    return 0;
}
