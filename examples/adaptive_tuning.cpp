/**
 * @file
 * Demonstrates the Adaptive idle detect mechanism (paper Section 5.1):
 * sweeps static idle-detect values on a blackout-sensitive workload and
 * shows how the adaptive controller finds a good operating point at
 * runtime, trading a little gating aggressiveness for performance.
 */

#include <iostream>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;

    const std::string bench = "NN"; // few warps: blackout-sensitive
    ExperimentOptions opts;
    opts.numSms = 4;
    ExperimentRunner runner(opts);

    const SimResult& base = runner.run(bench, Technique::Baseline);

    Table sweep("static idle-detect sweep on " + bench +
                " (Coordinated Blackout, no adaptation)");
    sweep.header({"idle-detect", "runtime", "int savings",
                  "critical wakeups/1k"});
    for (Cycle id : {Cycle(0), Cycle(2), Cycle(5), Cycle(8), Cycle(10)}) {
        ExperimentOptions point = opts;
        point.idleDetect = id;
        const SimResult& r = runner.run(
            bench, Technique::CoordinatedBlackout, std::optional(point));
        sweep.row({std::to_string(id),
                   Table::num(normalizedRuntime(r, base), 4),
                   Table::pct(r.intEnergy.staticSavingsRatio()),
                   Table::num(r.criticalWakeupsPer1k(UnitClass::Int) +
                                  r.criticalWakeupsPer1k(UnitClass::Fp),
                              1)});
    }
    sweep.print();

    const SimResult& warped = runner.run(bench, Technique::WarpedGates);
    Table adaptive("adaptive idle detect on " + bench + " (Warped Gates)");
    adaptive.header({"quantity", "value"});
    adaptive.row({"runtime",
                  Table::num(normalizedRuntime(warped, base), 4)});
    adaptive.row({"int savings",
                  Table::pct(warped.intEnergy.staticSavingsRatio())});
    adaptive.row({"final INT idle-detect",
                  std::to_string(warped.aggregate.finalIdleDetect[0])});
    adaptive.row({"final FP idle-detect",
                  std::to_string(warped.aggregate.finalIdleDetect[1])});
    adaptive.row({"window increments",
                  std::to_string(warped.aggregate.adaptIncrements[0] +
                                 warped.aggregate.adaptIncrements[1])});
    adaptive.row({"window decrements",
                  std::to_string(warped.aggregate.adaptDecrements[0] +
                                 warped.aggregate.adaptDecrements[1])});
    adaptive.print();

    std::cout << "The regulator raises the window only when critical\n"
                 "wakeups exceed the threshold, so it tracks the best\n"
                 "static point without an offline sweep." << std::endl;
    return 0;
}
