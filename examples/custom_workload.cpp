/**
 * @file
 * Shows how to study a kernel that is not part of the paper's suite:
 * define a BenchmarkProfile for it, build a GPU configuration by hand,
 * and sweep the gating policies. The example models an FP-heavy
 * molecular-dynamics-style kernel with bursty tile loads.
 */

#include <iostream>

#include "core/warped_gates.hh"

int
main()
{
    using namespace wg;

    // 1. Describe the kernel.
    BenchmarkProfile kernel;
    kernel.name = "my-md-kernel";
    kernel.fracInt = 0.25;
    kernel.fracFp = 0.55;
    kernel.fracSfu = 0.05;  // rsqrt in the force loop
    kernel.fracLdst = 0.15;
    kernel.residentWarps = 32;
    kernel.ctaWarps = 8;
    kernel.memMissRatio = 0.2;
    kernel.loadBurstMax = 6;    // wide tile loads
    kernel.phaseLen = 200;      // address-setup vs force phases
    kernel.phaseBias = 3.0;
    kernel.kernelLength = 2000;

    // 2. Sweep the techniques on a hand-built GPU config.
    ExperimentOptions opts;
    opts.numSms = 4;

    Table table("custom kernel: gating policies compared");
    table.header({"technique", "int savings", "fp savings", "runtime",
                  "int gatings", "critical wakeups"});

    Cycle baseline_cycles = 0;
    for (Technique t : allTechniques()) {
        Gpu gpu(makeConfig(t, opts));
        SimResult r = gpu.run(kernel);
        if (t == Technique::Baseline)
            baseline_cycles = r.cycles;
        PgDomainStats s = r.typeStats(UnitClass::Int);
        table.row({techniqueName(t),
                   Table::pct(r.intEnergy.staticSavingsRatio()),
                   Table::pct(r.fpEnergy.staticSavingsRatio()),
                   Table::num(static_cast<double>(r.cycles) /
                                  static_cast<double>(baseline_cycles),
                              3),
                   std::to_string(s.gatingEvents),
                   std::to_string(s.criticalWakeups +
                                  r.typeStats(UnitClass::Fp)
                                      .criticalWakeups)});
    }
    table.print();

    // 3. Drill into one configuration: custom PG parameters.
    GpuConfig aggressive = makeConfig(Technique::WarpedGates, opts);
    aggressive.sm.pg.breakEven = 24;   // pessimistic switch sizing
    aggressive.sm.pg.wakeupDelay = 6;
    Gpu gpu(aggressive);
    SimResult r = gpu.run(kernel);
    std::cout << "With BET=24 and wakeup=6, Warped Gates still saves "
              << Table::pct(r.fpEnergy.staticSavingsRatio())
              << " of FP static energy on this kernel." << std::endl;
    return 0;
}
