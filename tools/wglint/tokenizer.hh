/**
 * @file
 * wglint tokenizer: a lightweight C++ lexer (no libclang) producing
 * the token stream every rule operates on, plus the comment-derived
 * suppression metadata (`wglint:allow(RULE)`).
 *
 * Recovery contract: a non-raw string or char literal missing its
 * closing quote terminates at the end of its line instead of
 * swallowing the rest of the file — a malformed literal must not mask
 * violations on later lines (pinned by the malformed-source corpus in
 * tests/wglint_fixtures/malformed/). Raw strings are the one
 * exception: their delimiter is the only legal terminator, so an
 * unterminated raw string legitimately runs to end of file.
 */

#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace wglint {

enum class TokKind { Ident, Number, String, CharLit, Punct };

struct Token
{
    TokKind kind;
    std::string text;
    int line = 0;
};

/** Scan state for one file: tokens plus comment-derived metadata. */
struct FileScan
{
    std::string path;       ///< display path (as passed / walked)
    std::vector<Token> tokens;
    /** line -> rules allowed on that line (and the line below it). */
    std::map<int, std::set<std::string>> allows;
    bool pragmaOnce = false;
    bool isHeader = false;
};

/**
 * Tokenize one file. Preprocessor lines are consumed whole (honouring
 * backslash continuations) and only mined for `#pragma once`; comments
 * are mined for suppression markers. @return false when unreadable.
 */
bool tokenize(const std::filesystem::path& file,
              const std::string& display, FileScan& scan);

/** True when `rule` is suppressed at `line` (marker there or above). */
bool suppressed(const FileScan& scan, const std::string& rule,
                int line);

/**
 * @p i points at the opening token; @return index one past the
 * matching close (or tokens.size() when unbalanced).
 */
std::size_t skipBalanced(const std::vector<Token>& t, std::size_t i,
                         const std::string& open,
                         const std::string& close);

/** Collect identifier tokens in the token range [open, end). */
std::set<std::string> bodyIdents(const std::vector<Token>& t,
                                 std::size_t open, std::size_t end);

} // namespace wglint
