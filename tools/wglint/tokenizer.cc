#include "tokenizer.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace wglint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Record `wglint:allow(A,B)` markers found in a comment. */
void
parseAllows(const std::string& comment, int line, FileScan& scan)
{
    const std::string marker = "wglint:allow(";
    std::size_t pos = 0;
    while ((pos = comment.find(marker, pos)) != std::string::npos) {
        pos += marker.size();
        std::size_t end = comment.find(')', pos);
        if (end == std::string::npos)
            return;
        std::string inside = comment.substr(pos, end - pos);
        std::string rule;
        std::istringstream ss(inside);
        while (std::getline(ss, rule, ',')) {
            std::size_t b = rule.find_first_not_of(" \t");
            std::size_t e = rule.find_last_not_of(" \t");
            if (b != std::string::npos)
                scan.allows[line].insert(rule.substr(b, e - b + 1));
        }
        pos = end;
    }
}

} // namespace

bool
tokenize(const fs::path& file, const std::string& display,
         FileScan& scan)
{
    std::ifstream in(file, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string src = buf.str();

    scan.path = display;
    const std::string ext = file.extension().string();
    scan.isHeader = ext == ".hh" || ext == ".h" || ext == ".hpp";

    std::size_t i = 0;
    const std::size_t n = src.size();
    int line = 1;
    bool atLineStart = true;

    auto advance = [&](std::size_t k) {
        for (std::size_t j = 0; j < k && i < n; ++j, ++i)
            if (src[i] == '\n') {
                ++line;
                atLineStart = true;
            }
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            advance(1);
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor directive: consume the logical line.
        if (c == '#' && atLineStart) {
            std::size_t start = i;
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    advance(2);
                    continue;
                }
                if (src[i] == '\n')
                    break;
                ++i;
            }
            std::string directive = src.substr(start, i - start);
            // Normalise interior whitespace for the pragma check.
            std::string squashed;
            for (char d : directive)
                if (!std::isspace(static_cast<unsigned char>(d)))
                    squashed += d;
            if (squashed == "#pragmaonce")
                scan.pragmaOnce = true;
            continue;
        }
        atLineStart = false;
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t start = i;
            int startLine = line;
            while (i < n && src[i] != '\n')
                ++i;
            parseAllows(src.substr(start, i - start), startLine, scan);
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t start = i;
            int startLine = line;
            advance(2);
            while (i < n &&
                   !(src[i] == '*' && i + 1 < n && src[i + 1] == '/'))
                advance(1);
            advance(2);
            parseAllows(src.substr(start, i - start), startLine, scan);
            continue;
        }
        // Raw string literal, with optional encoding prefix (R"...",
        // LR"...", uR"...", UR"...", u8R"..."), custom delims included.
        // An unterminated raw string runs to EOF by design: the
        // delimiter is its only legal terminator.
        std::size_t rawR = std::string::npos;
        if (c == 'R')
            rawR = i;
        else if ((c == 'L' || c == 'u' || c == 'U') && i + 1 < n &&
                 src[i + 1] == 'R')
            rawR = i + 1;
        else if (c == 'u' && i + 2 < n && src[i + 1] == '8' &&
                 src[i + 2] == 'R')
            rawR = i + 2;
        if (rawR != std::string::npos && rawR + 1 < n &&
            src[rawR + 1] == '"') {
            std::size_t d0 = rawR + 2;
            std::size_t paren = src.find('(', d0);
            if (paren != std::string::npos) {
                std::string delim = ")";
                delim.append(src, d0, paren - d0);
                delim.push_back('"');
                std::size_t close = src.find(delim, paren + 1);
                std::size_t end = close == std::string::npos
                                      ? n
                                      : close + delim.size();
                int startLine = line;
                std::string text = src.substr(i, end - i);
                advance(end - i);
                scan.tokens.push_back(
                    {TokKind::String, text, startLine});
                continue;
            }
        }
        // String / char literal. An unescaped newline before the
        // closing quote means the literal is malformed (the program
        // would not compile); stop the token at the line break so the
        // rest of the file still gets scanned — a typo must not mask
        // every violation below it. The newline itself is left for
        // the main loop, keeping line accounting in one place.
        if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t start = i;
            int startLine = line;
            advance(1);
            while (i < n && src[i] != quote) {
                if (src[i] == '\n')
                    break;
                if (src[i] == '\\')
                    advance(1);
                advance(1);
            }
            if (i < n && src[i] == quote)
                advance(1);
            scan.tokens.push_back(
                {quote == '"' ? TokKind::String : TokKind::CharLit,
                 src.substr(start, i - start), startLine});
            continue;
        }
        // Identifier / keyword.
        if (identStart(c)) {
            std::size_t start = i;
            while (i < n && identChar(src[i]))
                ++i;
            scan.tokens.push_back(
                {TokKind::Ident, src.substr(start, i - start), line});
            continue;
        }
        // Number.
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            while (i < n && (identChar(src[i]) || src[i] == '.' ||
                             src[i] == '\''))
                ++i;
            scan.tokens.push_back(
                {TokKind::Number, src.substr(start, i - start), line});
            continue;
        }
        // Punctuation; keep '::' and '->' fused, the rules use them.
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            scan.tokens.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            scan.tokens.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        scan.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return true;
}

bool
suppressed(const FileScan& scan, const std::string& rule, int line)
{
    for (int l : {line, line - 1}) {
        auto it = scan.allows.find(l);
        if (it != scan.allows.end() && it->second.count(rule))
            return true;
    }
    return false;
}

std::size_t
skipBalanced(const std::vector<Token>& t, std::size_t i,
             const std::string& open, const std::string& close)
{
    int depth = 0;
    const std::size_t n = t.size();
    for (; i < n; ++i) {
        if (t[i].kind != TokKind::Punct)
            continue;
        if (t[i].text == open)
            ++depth;
        else if (t[i].text == close && --depth == 0)
            return i + 1;
    }
    return n;
}

std::set<std::string>
bodyIdents(const std::vector<Token>& t, std::size_t open,
           std::size_t end)
{
    std::set<std::string> out;
    for (std::size_t i = open; i < end; ++i)
        if (t[i].kind == TokKind::Ident)
            out.insert(t[i].text);
    return out;
}

} // namespace wglint
