#include "index.hh"

#include <algorithm>

namespace wglint {

namespace {

// ---------------------------------------------------------------------
// Catalogues
// ---------------------------------------------------------------------

/**
 * The registry catalogue: which merge/registry function must mention
 * every field of which struct. SimResult has no merge (results are
 * never summed); Histogram-typed fields are exempt from the registry
 * side (StatSet holds scalars; distributions export separately) but
 * still must be merged.
 */
const std::vector<D3Entry> kD3Catalogue = {
    {"PgDomainStats", "merge", true, "appendPgDomainStats"},
    {"ClusterStats", "merge", true, "appendClusterStats"},
    {"SmStats", "mergeSmStats", false, "appendSmStats"},
    {"SimResult", "", false, "toStatSet"},
};

/**
 * D5 catalogue: the snapshotted state structs and the free-function
 * codec pair (serve/snapshot.cc) that must mention every field. The
 * struct and codec live in different files; the cross-file index
 * resolves both sides.
 */
const std::vector<D5Entry> kD5Catalogue = {
    {"RngState", "rngStateToJson", "rngStateFromJson"},
    {"WarpSlotState", "warpSlotStateToJson", "warpSlotStateFromJson"},
    {"SchedulerState", "schedulerStateToJson", "schedulerStateFromJson"},
    {"Completion", "completionToJson", "completionFromJson"},
    {"ExecUnitState", "execUnitStateToJson", "execUnitStateFromJson"},
    {"MemSystemState", "memSystemStateToJson", "memSystemStateFromJson"},
    {"PgDomainState", "pgDomainStateToJson", "pgDomainStateFromJson"},
    {"AdaptiveState", "adaptiveStateToJson", "adaptiveStateFromJson"},
    {"PgControllerState", "pgControllerStateToJson",
     "pgControllerStateFromJson"},
    {"EpochCounters", "epochCountersToJson", "epochCountersFromJson"},
    {"EpochSample", "epochSampleToJson", "epochSampleFromJson"},
    {"SamplerState", "samplerStateToJson", "samplerStateFromJson"},
    {"Event", "traceEventToJson", "traceEventFromJson"},
    {"SmSnapshot", "smSnapshotToJson", "smSnapshotFromJson"},
    {"GpuSnapshot", "gpuSnapshotToJson", "gpuSnapshotFromJson"},
    {"SnapshotIdentity", "snapshotIdentityToJson",
     "snapshotIdentityFromJson"},
};

bool
isCataloguedStruct(const std::string& name)
{
    for (const D3Entry& e : kD3Catalogue)
        if (name == e.structName)
            return true;
    for (const D5Entry& e : kD5Catalogue)
        if (name == e.structName)
            return true;
    return false;
}

bool
isWgAttribute(const Token& tok)
{
    return tok.kind == TokKind::Ident &&
           tok.text.rfind("WG_", 0) == 0;
}

// ---------------------------------------------------------------------
// Catalogued-struct body parsing (D3/D5)
// ---------------------------------------------------------------------

/**
 * Parse one struct body (tokens between `{` at `open` and its match)
 * into fields and inline-method bodies. Heuristic, but exact for the
 * declaration style this tree uses. WG_* attribute groups
 * (WG_GUARDED_BY(mu_) and friends) are skipped so an annotated field
 * still records its declarator name, not the attribute argument.
 */
void
parseStructBody(const FileScan& scan, std::size_t open,
                std::size_t end, StructInfo& info)
{
    const std::vector<Token>& t = scan.tokens;
    std::size_t i = open + 1;
    while (i + 1 < end) {
        const Token& tok = t[i];
        // Access specifiers: `public:` etc.
        if (tok.kind == TokKind::Ident && i + 1 < end &&
            t[i + 1].kind == TokKind::Punct && t[i + 1].text == ":" &&
            (tok.text == "public" || tok.text == "private" ||
             tok.text == "protected")) {
            i += 2;
            continue;
        }
        if (tok.kind == TokKind::Punct && tok.text == ";") {
            ++i;
            continue;
        }
        // Nested type / alias / friend: skip the whole statement.
        if (tok.kind == TokKind::Ident &&
            (tok.text == "struct" || tok.text == "class" ||
             tok.text == "enum" || tok.text == "union" ||
             tok.text == "using" || tok.text == "typedef" ||
             tok.text == "friend" || tok.text == "static")) {
            while (i < end && !(t[i].kind == TokKind::Punct &&
                                t[i].text == ";")) {
                if (t[i].kind == TokKind::Punct && t[i].text == "{")
                    i = skipBalanced(t, i, "{", "}") - 1;
                ++i;
            }
            ++i;
            continue;
        }
        // Statement: walk to its end, deciding field vs function.
        std::size_t stmtBegin = i;
        std::string fnName;
        bool isFunction = false;
        while (i < end) {
            const Token& cur = t[i];
            if (cur.kind == TokKind::Punct && cur.text == "(" &&
                !isFunction) {
                // A WG_* attribute group is not a function shape.
                if (i > stmtBegin && isWgAttribute(t[i - 1])) {
                    i = skipBalanced(t, i, "(", ")");
                    continue;
                }
                // Function (or constructor): name is the preceding
                // identifier (operator overloads don't occur here).
                if (i > stmtBegin &&
                    t[i - 1].kind == TokKind::Ident)
                    fnName = t[i - 1].text;
                isFunction = true;
                i = skipBalanced(t, i, "(", ")");
                continue;
            }
            if (cur.kind == TokKind::Punct && cur.text == "{") {
                std::size_t close = skipBalanced(t, i, "{", "}");
                if (isFunction) {
                    if (!fnName.empty()) {
                        std::set<std::string> ids =
                            bodyIdents(t, i, close);
                        info.methods[fnName].insert(ids.begin(),
                                                    ids.end());
                    }
                    i = close;
                    // Inline bodies need no trailing ';'.
                    if (i < end && t[i].kind == TokKind::Punct &&
                        t[i].text == ";")
                        ++i;
                    break;
                }
                i = close; // brace initializer: part of the field
                continue;
            }
            if (cur.kind == TokKind::Punct && cur.text == ";") {
                ++i;
                break;
            }
            ++i;
        }
        if (isFunction)
            continue;
        // Field statement. It may declare several comma-separated
        // fields (`std::uint64_t a = 0, b = 0;`), so split on
        // top-level commas and record one field per declarator; the
        // shared type tokens come from the first declarator. Within a
        // declarator the field name is the identifier right before
        // `=`, `{`, `[` or `;` — attribute groups skipped.
        std::vector<std::string> typeTokens;
        bool firstDeclarator = true;
        auto emitField = [&](std::size_t b, std::size_t e) {
            FieldInfo field;
            std::vector<std::string> before;
            for (std::size_t j = b; j < e; ++j) {
                const Token& cur = t[j];
                if (isWgAttribute(cur) && j + 1 < e &&
                    t[j + 1].kind == TokKind::Punct &&
                    t[j + 1].text == "(") {
                    j = skipBalanced(t, j + 1, "(", ")") - 1;
                    continue;
                }
                if (cur.kind == TokKind::Punct &&
                    (cur.text == "=" || cur.text == "{" ||
                     cur.text == "[" || cur.text == ";"))
                    break;
                if (cur.kind == TokKind::Ident) {
                    field.name = cur.text;
                    field.line = cur.line;
                }
                before.push_back(cur.text);
            }
            if (field.name.empty())
                return;
            if (firstDeclarator) {
                firstDeclarator = false;
                if (!before.empty())
                    before.pop_back(); // drop the name; rest = type
                typeTokens = before;
            }
            field.typeTokens = typeTokens;
            field.file = scan.path;
            field.suppressed = suppressed(scan, "D3", field.line);
            field.suppressedD5 = suppressed(scan, "D5", field.line);
            info.fields.push_back(field);
        };
        // Top-level = outside (), [], {} and the type's template
        // argument list. Angle depth is clamped at zero so comparison
        // operators in initializers cannot push it negative.
        int parens = 0, brackets = 0, braces = 0, angles = 0;
        std::size_t segBegin = stmtBegin;
        for (std::size_t j = stmtBegin; j < i; ++j) {
            const Token& cur = t[j];
            if (cur.kind != TokKind::Punct)
                continue;
            if (cur.text == "(")
                ++parens;
            else if (cur.text == ")")
                parens = std::max(0, parens - 1);
            else if (cur.text == "[")
                ++brackets;
            else if (cur.text == "]")
                brackets = std::max(0, brackets - 1);
            else if (cur.text == "{")
                ++braces;
            else if (cur.text == "}")
                braces = std::max(0, braces - 1);
            else if (cur.text == "<")
                ++angles;
            else if (cur.text == ">")
                angles = std::max(0, angles - 1);
            else if (cur.text == "," && parens == 0 &&
                     brackets == 0 && braces == 0 && angles == 0) {
                emitField(segBegin, j);
                segBegin = j + 1;
            }
        }
        emitField(segBegin, i);
    }
}

// ---------------------------------------------------------------------
// Class bodies: lock-discipline facts + inline method definitions
// ---------------------------------------------------------------------

/**
 * Walk one class body for C1/C2 facts: WG_GUARDED_BY fields,
 * WG_REQUIRES method names (declarations suffice — a header contract
 * covers the out-of-line definition elsewhere), and inline method
 * definitions, which become FunctionDefs qualified by the class.
 */
void
indexClassBody(const FileScan& scan, const std::string& className,
               std::size_t open, std::size_t end, FileIndex& index)
{
    const std::vector<Token>& t = scan.tokens;
    ClassInfo& cls = index.classes[className];
    std::size_t i = open + 1;
    while (i + 1 < end) {
        const Token& tok = t[i];
        if (tok.kind == TokKind::Ident && i + 1 < end &&
            t[i + 1].kind == TokKind::Punct && t[i + 1].text == ":" &&
            (tok.text == "public" || tok.text == "private" ||
             tok.text == "protected")) {
            i += 2;
            continue;
        }
        if (tok.kind == TokKind::Punct && tok.text == ";") {
            ++i;
            continue;
        }
        // Nested class/struct definition: recurse under its own name.
        if (tok.kind == TokKind::Ident &&
            (tok.text == "struct" || tok.text == "class") &&
            i + 1 < end && t[i + 1].kind == TokKind::Ident) {
            std::size_t j = i + 2;
            while (j < end && !(t[j].kind == TokKind::Punct &&
                                (t[j].text == "{" || t[j].text == ";")))
                ++j;
            if (j < end && t[j].text == "{") {
                std::size_t close = skipBalanced(t, j, "{", "}");
                indexClassBody(scan, t[i + 1].text, j, close - 1,
                               index);
                i = close;
                continue;
            }
            i = j + 1;
            continue;
        }
        // Alias / friend / enum / static member: skip the statement.
        if (tok.kind == TokKind::Ident &&
            (tok.text == "enum" || tok.text == "union" ||
             tok.text == "using" || tok.text == "typedef" ||
             tok.text == "friend" || tok.text == "static")) {
            while (i < end && !(t[i].kind == TokKind::Punct &&
                                t[i].text == ";")) {
                if (t[i].kind == TokKind::Punct && t[i].text == "{")
                    i = skipBalanced(t, i, "{", "}") - 1;
                ++i;
            }
            ++i;
            continue;
        }
        // One member statement: field declaration, method
        // declaration, or inline method definition.
        std::size_t stmtBegin = i;
        std::string fnName;
        bool isFunction = false;
        bool requiresLock = false;
        bool sawAssign = false;
        bool tilde = false;
        while (i < end) {
            const Token& cur = t[i];
            if (cur.kind == TokKind::Ident &&
                cur.text == "WG_REQUIRES")
                requiresLock = true;
            if (cur.kind == TokKind::Punct && cur.text == "=" &&
                !isFunction)
                sawAssign = true;
            // WG_* attribute groups are transparent wherever they
            // appear in the statement (a field's type may contain
            // parentheses — std::function<void()> — so this must not
            // depend on the function-shape state below). For
            // WG_GUARDED_BY the declarator name is the ident right
            // before the attribute.
            if (cur.kind == TokKind::Punct && cur.text == "(" &&
                i > stmtBegin && isWgAttribute(t[i - 1])) {
                if (t[i - 1].text == "WG_GUARDED_BY" &&
                    i >= 2 + stmtBegin &&
                    t[i - 2].kind == TokKind::Ident)
                    cls.guardedFields.insert(t[i - 2].text);
                i = skipBalanced(t, i, "(", ")");
                continue;
            }
            if (cur.kind == TokKind::Punct && cur.text == "(" &&
                !isFunction && !sawAssign) {
                if (i > stmtBegin && t[i - 1].kind == TokKind::Ident) {
                    fnName = t[i - 1].text;
                    if (i >= 2 + stmtBegin &&
                        t[i - 2].kind == TokKind::Punct &&
                        t[i - 2].text == "~")
                        tilde = true;
                }
                isFunction = true;
                i = skipBalanced(t, i, "(", ")");
                continue;
            }
            if (cur.kind == TokKind::Punct && cur.text == "{") {
                std::size_t close = skipBalanced(t, i, "{", "}");
                if (isFunction) {
                    if (!fnName.empty() &&
                        fnName.rfind("WG_", 0) != 0) {
                        FunctionDef def;
                        def.name = fnName;
                        def.qualifier = className;
                        def.line = cur.line;
                        def.requiresLock = requiresLock;
                        def.isCtorDtor =
                            tilde || fnName == className;
                        def.bodyBegin = i;
                        def.bodyEnd = close;
                        index.defs.push_back(def);
                        if (requiresLock)
                            cls.requiresFns.insert(fnName);
                    }
                    i = close;
                    if (i < end && t[i].kind == TokKind::Punct &&
                        t[i].text == ";")
                        ++i;
                    break;
                }
                i = close; // brace initializer
                continue;
            }
            if (cur.kind == TokKind::Punct && cur.text == ";") {
                if (isFunction && requiresLock && !fnName.empty())
                    cls.requiresFns.insert(fnName);
                ++i;
                break;
            }
            ++i;
        }
    }
}

// ---------------------------------------------------------------------
// Namespace-scope walk
// ---------------------------------------------------------------------

void
indexScopes(const FileScan& scan, std::size_t begin, std::size_t end,
            FileIndex& index)
{
    const std::vector<Token>& t = scan.tokens;
    std::size_t i = begin;
    while (i < end) {
        const Token& tok = t[i];
        if (tok.kind == TokKind::Ident && tok.text == "namespace") {
            // `namespace a::b {` or anonymous: find the brace.
            std::size_t j = i + 1;
            while (j < end && !(t[j].kind == TokKind::Punct &&
                                (t[j].text == "{" || t[j].text == ";")))
                ++j;
            if (j < end && t[j].text == "{") {
                std::size_t close = skipBalanced(t, j, "{", "}");
                indexScopes(scan, j + 1, close - 1, index);
                i = close;
                continue;
            }
            i = j + 1;
            continue;
        }
        if (tok.kind == TokKind::Ident &&
            (tok.text == "struct" || tok.text == "class") &&
            i + 1 < end && t[i + 1].kind == TokKind::Ident) {
            // Skip attributes between keyword and name, with or
            // without arguments (`class WG_CAPABILITY("mutex") Mutex`,
            // `class WG_SCOPED_CAPABILITY MutexLock`).
            std::size_t nameAt = i + 1;
            while (nameAt < end && isWgAttribute(t[nameAt])) {
                ++nameAt;
                if (nameAt < end &&
                    t[nameAt].kind == TokKind::Punct &&
                    t[nameAt].text == "(")
                    nameAt = skipBalanced(t, nameAt, "(", ")");
            }
            if (nameAt >= end || t[nameAt].kind != TokKind::Ident) {
                i = nameAt;
                continue;
            }
            const std::string name = t[nameAt].text;
            // Find the body brace (skipping base-clause tokens) or a
            // `;`/`(`/ident meaning forward-decl or parameter use.
            std::size_t j = nameAt + 1;
            while (j < end && !(t[j].kind == TokKind::Punct &&
                                (t[j].text == "{" || t[j].text == ";" ||
                                 t[j].text == "(" || t[j].text == ")" ||
                                 t[j].text == ",")))
                ++j;
            if (j < end && t[j].text == "{") {
                std::size_t close = skipBalanced(t, j, "{", "}");
                if (isCataloguedStruct(name)) {
                    StructInfo& info = index.structs[name];
                    if (!info.seen) {
                        info.seen = true;
                        info.file = scan.path;
                        info.line = tok.line;
                        parseStructBody(scan, j, close - 1, info);
                    }
                }
                indexClassBody(scan, name, j, close - 1, index);
                i = close;
                continue;
            }
            i = j;
            continue;
        }
        // Function definition: ident `(` ... `)` [specifiers] `{`.
        if (tok.kind == TokKind::Punct && tok.text == "(" && i > 0 &&
            t[i - 1].kind == TokKind::Ident &&
            !isWgAttribute(t[i - 1])) {
            std::string fn = t[i - 1].text;
            std::string qualifier;
            bool tilde = false;
            std::size_t qualAt = i - 2;
            if (i >= 2 && t[i - 2].kind == TokKind::Punct &&
                t[i - 2].text == "~") {
                tilde = true;
                qualAt = i - 3;
            }
            if (qualAt >= 1 && qualAt < t.size() &&
                t[qualAt].kind == TokKind::Punct &&
                t[qualAt].text == "::" &&
                t[qualAt - 1].kind == TokKind::Ident)
                qualifier = t[qualAt - 1].text;
            std::size_t afterParens = skipBalanced(t, i, "(", ")");
            // Scan past trailing specifiers — idents, each optionally
            // carrying a parenthesised argument group (const,
            // noexcept(...), WG_REQUIRES(mu_)) — to `{`, `;` or
            // something that rules out a definition.
            std::size_t j = afterParens;
            bool requiresLock = false;
            while (j < end && t[j].kind == TokKind::Ident) {
                if (t[j].text == "WG_REQUIRES")
                    requiresLock = true;
                ++j;
                if (j < end && t[j].kind == TokKind::Punct &&
                    t[j].text == "(")
                    j = skipBalanced(t, j, "(", ")");
            }
            if (j < end && t[j].kind == TokKind::Punct &&
                t[j].text == "{") {
                std::size_t close = skipBalanced(t, j, "{", "}");
                std::set<std::string> ids = bodyIdents(t, j, close);
                if (!qualifier.empty() &&
                    isCataloguedStruct(qualifier)) {
                    StructInfo& info = index.structs[qualifier];
                    info.methods[fn].insert(ids.begin(), ids.end());
                } else {
                    index.functions[fn].insert(ids.begin(), ids.end());
                }
                FunctionDef def;
                def.name = fn;
                def.qualifier = qualifier;
                def.line = t[i - 1].line;
                def.requiresLock = requiresLock;
                def.isCtorDtor = tilde || fn == qualifier;
                def.bodyBegin = j;
                def.bodyEnd = close;
                index.defs.push_back(def);
                if (requiresLock && !qualifier.empty())
                    index.classes[qualifier].requiresFns.insert(fn);
                i = close;
                continue;
            }
            i = afterParens;
            continue;
        }
        ++i;
    }
}

// ---------------------------------------------------------------------
// Mutex-typed names (C1)
// ---------------------------------------------------------------------

const std::set<std::string>&
mutexFamily()
{
    static const std::set<std::string> kSet = {
        "mutex",        "recursive_mutex",    "timed_mutex",
        "shared_mutex", "shared_timed_mutex", "Mutex",
    };
    return kSet;
}

/**
 * Collect every name declared with a mutex-family type — fields,
 * globals, locals and parameters alike. A flat whole-file scan is
 * deliberately scope-blind: C1 only needs the set of names that
 * plausibly denote a mutex, and a false name in the set costs nothing
 * unless `.lock()` is called on it.
 */
void
collectMutexNames(const FileScan& scan, std::set<std::string>& out)
{
    const std::vector<Token>& t = scan.tokens;
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (t[i].kind != TokKind::Ident ||
            !mutexFamily().count(t[i].text))
            continue;
        std::size_t j = i + 1;
        // `shared_lock<std::shared_mutex>`-style template args on the
        // family type itself.
        if (j < n && t[j].kind == TokKind::Punct && t[j].text == "<") {
            int depth = 0;
            for (; j < n; ++j) {
                if (t[j].kind != TokKind::Punct)
                    continue;
                if (t[j].text == "<")
                    ++depth;
                else if (t[j].text == ">" && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        while (j < n && t[j].kind == TokKind::Punct &&
               (t[j].text == "&" || t[j].text == "*"))
            ++j;
        // Declarator name; a following '(' means a function returning
        // the type, not a variable.
        if (j < n && t[j].kind == TokKind::Ident &&
            !(j + 1 < n && t[j + 1].kind == TokKind::Punct &&
              t[j + 1].text == "("))
            out.insert(t[j].text);
    }
}

} // namespace

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

const std::vector<D3Entry>&
d3Catalogue()
{
    return kD3Catalogue;
}

const std::vector<D5Entry>&
d5Catalogue()
{
    return kD5Catalogue;
}

void
indexFile(const FileScan& scan, FileIndex& out)
{
    indexScopes(scan, 0, scan.tokens.size(), out);
    collectMutexNames(scan, out.mutexNames);
}

void
Index::merge(FileIndex&& fi, std::size_t scanIdx)
{
    for (auto& [name, si] : fi.structs) {
        StructInfo& dst = structs[name];
        if (!dst.seen && si.seen) {
            dst.seen = true;
            dst.file = si.file;
            dst.line = si.line;
            dst.fields = std::move(si.fields);
        }
        for (auto& [fn, ids] : si.methods)
            dst.methods[fn].insert(ids.begin(), ids.end());
    }
    for (auto& [fn, ids] : fi.functions)
        functions[fn].insert(ids.begin(), ids.end());
    for (auto& [name, ci] : fi.classes) {
        ClassInfo& dst = classes[name];
        dst.guardedFields.insert(ci.guardedFields.begin(),
                                 ci.guardedFields.end());
        dst.requiresFns.insert(ci.requiresFns.begin(),
                               ci.requiresFns.end());
    }
    for (FunctionDef& d : fi.defs) {
        d.scanIdx = scanIdx;
        defs.push_back(std::move(d));
    }
    mutexNames.insert(fi.mutexNames.begin(), fi.mutexNames.end());
}

} // namespace wglint
