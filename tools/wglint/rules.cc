#include "rules.hh"

#include <filesystem>

namespace fs = std::filesystem;

namespace wglint {

namespace {

// ---------------------------------------------------------------------
// D1: nondeterminism sources
// ---------------------------------------------------------------------

/** Identifiers banned on sight (wall clocks, entropy sources). */
const std::set<std::string>&
bannedIdents()
{
    static const std::set<std::string> kSet = {
        "random_device",
        "system_clock",
        "steady_clock",
        "high_resolution_clock",
    };
    return kSet;
}

/** Banned when used as a free-function call. */
const std::set<std::string>&
bannedFreeCalls()
{
    static const std::set<std::string> kSet = {
        "time",   "clock",    "rand",     "srand",
        "usleep", "nanosleep", "gettimeofday", "getrandom",
    };
    return kSet;
}

/** Banned as a call regardless of qualification (thread sleeps). */
const std::set<std::string>&
bannedAnyCalls()
{
    static const std::set<std::string> kSet = {"sleep_for",
                                               "sleep_until"};
    return kSet;
}

/**
 * The serving layer (src/serve/) legitimately needs socket deadlines:
 * monotonic clocks and poll-retry sleeps bound wire I/O, and never
 * feed simulation state — which is the property D1 protects. Only the
 * timeout subset is exempt there; wall clocks (`system_clock`, `time`)
 * and entropy (`rand`, `random_device`) stay banned everywhere.
 */
bool
serveTimeoutExempt(const std::string& path, const std::string& name)
{
    static const std::set<std::string> kTimeoutIdents = {
        "steady_clock", "sleep_for", "sleep_until"};
    if (!kTimeoutIdents.count(name))
        return false;
    return path.find("serve/") != std::string::npos;
}

/** The sanctioned wall-clock wrapper is exempt from D1 wholesale. */
bool
phaseTimerFile(const FileScan& scan)
{
    return fs::path(scan.path).filename() == "phase_timer.hh";
}

struct D1Hit
{
    std::string name;
    int line = 0;
};

/**
 * Raw banned-use sites in a token range, shape-filtered (member calls
 * and declarations excluded) but NOT yet filtered for suppression or
 * path exemptions — callers apply those, because the interprocedural
 * pass needs to see sanctioned sites as non-sources rather than not
 * see them at all.
 */
std::vector<D1Hit>
d1Hits(const FileScan& scan, std::size_t begin, std::size_t end)
{
    std::vector<D1Hit> hits;
    const std::vector<Token>& t = scan.tokens;
    for (std::size_t i = begin; i < end; ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string& name = t[i].text;
        bool hit = false;
        if (bannedIdents().count(name)) {
            hit = true;
        } else if (i + 1 < end && t[i + 1].kind == TokKind::Punct &&
                   t[i + 1].text == "(") {
            if (bannedAnyCalls().count(name)) {
                hit = true;
            } else if (bannedFreeCalls().count(name)) {
                // Skip member calls (`x.time(...)`) and declarations
                // (`Scope time(...)`): flag only free-call shapes. A
                // preceding keyword (`return time(...)`) is still a
                // free call, not a declaration.
                static const std::set<std::string> kCallKeywords = {
                    "return", "co_return", "co_yield", "co_await",
                    "throw",  "case",      "else",     "do",
                };
                bool memberOrDecl = false;
                if (i > 0) {
                    const Token& p = t[i - 1];
                    if ((p.kind == TokKind::Ident &&
                         !kCallKeywords.count(p.text)) ||
                        (p.kind == TokKind::Punct &&
                         (p.text == "." || p.text == "->" ||
                          p.text == "&" || p.text == "*" ||
                          p.text == ">")))
                        memberOrDecl = true;
                }
                hit = !memberOrDecl;
            }
        }
        if (hit)
            hits.push_back({name, t[i].line});
    }
    return hits;
}

void
checkD1(const FileScan& scan, std::vector<Violation>& out)
{
    if (phaseTimerFile(scan))
        return;
    for (const D1Hit& h :
         d1Hits(scan, 0, scan.tokens.size())) {
        if (serveTimeoutExempt(scan.path, h.name))
            continue;
        if (suppressed(scan, "D1", h.line))
            continue;
        out.push_back({"D1", scan.path, h.line,
                       "nondeterminism source '" + h.name +
                           "' outside the profiling allowlist",
                       ruleHint("D1")});
    }
}

// ---------------------------------------------------------------------
// D2: unordered-container iteration in result-affecting code
// ---------------------------------------------------------------------

/** Paths whose output feeds "bit-identical" artifacts. */
bool
resultAffecting(const std::string& path)
{
    static const char* kMarkers[] = {"stats",  "metrics", "report",
                                     "trace",  "export",  "sink",
                                     "tools"};
    for (const char* m : kMarkers)
        if (path.find(m) != std::string::npos)
            return true;
    return false;
}

const std::set<std::string>&
unorderedTypes()
{
    static const std::set<std::string> kSet = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    return kSet;
}

void
checkD2(const FileScan& scan, std::vector<Violation>& out)
{
    if (!resultAffecting(scan.path))
        return;
    const std::vector<Token>& t = scan.tokens;

    // Pass 1: names of variables declared with an unordered type.
    std::set<std::string> vars;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            !unorderedTypes().count(t[i].text))
            continue;
        // Skip the template argument list, tracking angle depth (the
        // tree never uses shift operators inside stat-path template
        // args, so plain counting is exact here).
        std::size_t j = i + 1;
        if (j < t.size() && t[j].kind == TokKind::Punct &&
            t[j].text == "<") {
            int depth = 0;
            for (; j < t.size(); ++j) {
                if (t[j].kind != TokKind::Punct)
                    continue;
                if (t[j].text == "<")
                    ++depth;
                else if (t[j].text == ">" && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        while (j < t.size() && t[j].kind == TokKind::Punct &&
               (t[j].text == "&" || t[j].text == "*"))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Ident)
            vars.insert(t[j].text);
    }
    if (vars.empty())
        return;

    // Pass 2: range-for over a tracked variable, or .begin()-family.
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind == TokKind::Ident && t[i].text == "for" &&
            i + 1 < t.size() && t[i + 1].text == "(") {
            std::size_t close = skipBalanced(t, i + 1, "(", ")");
            // Find the top-level ':' inside the for-parens.
            int depth = 0;
            for (std::size_t j = i + 2; j + 1 < close; ++j) {
                if (t[j].kind == TokKind::Punct) {
                    if (t[j].text == "(")
                        ++depth;
                    else if (t[j].text == ")")
                        --depth;
                    else if (t[j].text == ":" && depth == 0) {
                        for (std::size_t k = j + 1; k + 1 < close;
                             ++k) {
                            if (t[k].kind == TokKind::Ident &&
                                vars.count(t[k].text) &&
                                !suppressed(scan, "D2", t[k].line)) {
                                out.push_back(
                                    {"D2", scan.path, t[k].line,
                                     "iteration over unordered "
                                     "container '" +
                                         t[k].text +
                                         "' in result-affecting code",
                                     ruleHint("D2")});
                                break;
                            }
                        }
                        break;
                    }
                }
            }
            continue;
        }
        if (t[i].kind == TokKind::Ident && vars.count(t[i].text) &&
            i + 2 < t.size() && t[i + 1].kind == TokKind::Punct &&
            t[i + 1].text == "." && t[i + 2].kind == TokKind::Ident) {
            const std::string& m = t[i + 2].text;
            if ((m == "begin" || m == "cbegin" || m == "rbegin" ||
                 m == "end" || m == "cend" || m == "rend") &&
                !suppressed(scan, "D2", t[i].line))
                out.push_back({"D2", scan.path, t[i].line,
                               "iterator over unordered container '" +
                                   t[i].text +
                                   "' in result-affecting code",
                               ruleHint("D2")});
        }
    }
}

// ---------------------------------------------------------------------
// D4: metric-name literals must not contain '_'
// ---------------------------------------------------------------------

const std::set<std::string>&
statSetAccessors()
{
    static const std::set<std::string> kSet = {
        "set", "incr", "get", "has", "sumPrefix", "mergePrefixed"};
    return kSet;
}

/**
 * Keys of `\"key\":` patterns embedded in a string literal's source
 * text — the hand-built JSON of the wire format (stream frames, the
 * event log), where a snake_case key would leak into the protocol.
 */
std::vector<std::string>
embeddedWireKeys(const std::string& lit)
{
    std::vector<std::string> keys;
    std::size_t i = 0;
    for (;;) {
        std::size_t open = lit.find("\\\"", i);
        if (open == std::string::npos)
            break;
        std::size_t close = lit.find("\\\"", open + 2);
        if (close == std::string::npos)
            break;
        if (close + 2 < lit.size() && lit[close + 2] == ':') {
            keys.push_back(lit.substr(open + 2, close - open - 2));
            i = close + 3;
        } else {
            i = open + 2;
        }
    }
    return keys;
}

/**
 * The embedded-key check applies where camelCase wire formats are
 * built by hand: the serving layer (frames, event log) and the
 * metrics exporters (wgmetrics jsonl). The offline report JSON
 * (report/export.cc) is a distinct, historically snake_case schema.
 */
bool
wireKeyScoped(const std::string& path)
{
    return path.find("serve/") != std::string::npos ||
           path.find("metrics/") != std::string::npos;
}

void
checkD4(const FileScan& scan, std::vector<Violation>& out)
{
    const std::vector<Token>& t = scan.tokens;
    // Embedded wire keys: every string literal in scoped files, no
    // call context required — a key is a key wherever it is built.
    if (wireKeyScoped(scan.path)) {
        for (const Token& tok : t) {
            if (tok.kind != TokKind::String)
                continue;
            for (const std::string& key : embeddedWireKeys(tok.text)) {
                if (key.find('_') != std::string::npos &&
                    !suppressed(scan, "D4", tok.line))
                    out.push_back({"D4", scan.path, tok.line,
                                   "embedded wire key \"" + key +
                                       "\" contains '_'",
                                   ruleHint("D4")});
            }
        }
    }
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokKind::Punct ||
            (t[i].text != "." && t[i].text != "->"))
            continue;
        if (t[i + 1].kind != TokKind::Ident ||
            !statSetAccessors().count(t[i + 1].text))
            continue;
        if (t[i + 2].kind != TokKind::Punct || t[i + 2].text != "(")
            continue;
        // Scan the first argument expression only.
        std::size_t close = skipBalanced(t, i + 2, "(", ")");
        int depth = 0;
        for (std::size_t j = i + 3; j + 1 < close; ++j) {
            if (t[j].kind == TokKind::Punct) {
                if (t[j].text == "(")
                    ++depth;
                else if (t[j].text == ")")
                    --depth;
                else if (t[j].text == "," && depth == 0)
                    break;
            }
            if (t[j].kind == TokKind::String &&
                t[j].text.find('_') != std::string::npos &&
                !suppressed(scan, "D4", t[j].line))
                out.push_back({"D4", scan.path, t[j].line,
                               "metric name literal " + t[j].text +
                                   " contains '_'",
                               ruleHint("D4")});
        }
    }
}

// ---------------------------------------------------------------------
// H1: header hygiene
// ---------------------------------------------------------------------

void
checkH1(const FileScan& scan, std::vector<Violation>& out)
{
    if (!scan.isHeader)
        return;
    if (!scan.pragmaOnce && !suppressed(scan, "H1", 1))
        out.push_back({"H1", scan.path, 1,
                       "header is missing '#pragma once'",
                       ruleHint("H1")});
    const std::vector<Token>& t = scan.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind == TokKind::Ident && t[i].text == "using" &&
            t[i + 1].kind == TokKind::Ident &&
            t[i + 1].text == "namespace" &&
            !suppressed(scan, "H1", t[i].line))
            out.push_back({"H1", scan.path, t[i].line,
                           "'using namespace' in a header",
                           ruleHint("H1")});
    }
}

// ---------------------------------------------------------------------
// D3 / D5: registration and codec drift over the merged index
// ---------------------------------------------------------------------

bool
isHistogramField(const FieldInfo& f)
{
    for (const std::string& t : f.typeTokens)
        if (t == "Histogram")
            return true;
    return false;
}

void
checkD3(const Index& index, std::vector<Violation>& out)
{
    for (const D3Entry& entry : d3Catalogue()) {
        auto sit = index.structs.find(entry.structName);
        if (sit == index.structs.end() || !sit->second.seen)
            continue;
        const StructInfo& info = sit->second;

        const std::set<std::string>* mergeBody = nullptr;
        if (entry.mergeFn[0] != '\0') {
            if (entry.mergeIsMember) {
                auto mit = info.methods.find(entry.mergeFn);
                if (mit != info.methods.end())
                    mergeBody = &mit->second;
            } else {
                auto fit = index.functions.find(entry.mergeFn);
                if (fit != index.functions.end())
                    mergeBody = &fit->second;
            }
        }
        const std::set<std::string>* registryBody = nullptr;
        {
            auto fit = index.functions.find(entry.registryFn);
            if (fit != index.functions.end())
                registryBody = &fit->second;
        }

        for (const FieldInfo& f : info.fields) {
            if (f.suppressed)
                continue;
            if (mergeBody && !mergeBody->count(f.name))
                out.push_back(
                    {"D3", f.file, f.line,
                     std::string(entry.structName) + "::" + f.name +
                         " is not merged in " + entry.mergeFn + "()",
                     ruleHint("D3")});
            if (registryBody && !isHistogramField(f) &&
                !registryBody->count(f.name))
                out.push_back(
                    {"D3", f.file, f.line,
                     std::string(entry.structName) + "::" + f.name +
                         " is not registered in " + entry.registryFn +
                         "()",
                     ruleHint("D3")});
        }
    }
}

void
checkD5(const Index& index, std::vector<Violation>& out)
{
    for (const D5Entry& entry : d5Catalogue()) {
        auto sit = index.structs.find(entry.structName);
        if (sit == index.structs.end() || !sit->second.seen)
            continue;
        const StructInfo& info = sit->second;

        // Both codec halves must exist before field-level checks make
        // sense; a missing codec shows up as every field drifting,
        // which is noise. Report the absent function once instead.
        const std::set<std::string>* toJson = nullptr;
        const std::set<std::string>* fromJson = nullptr;
        if (auto fit = index.functions.find(entry.toJsonFn);
            fit != index.functions.end())
            toJson = &fit->second;
        if (auto fit = index.functions.find(entry.fromJsonFn);
            fit != index.functions.end())
            fromJson = &fit->second;
        if (toJson == nullptr || fromJson == nullptr) {
            out.push_back(
                {"D5", info.file, info.line,
                 std::string(entry.structName) +
                     " has no codec function " +
                     (toJson == nullptr ? entry.toJsonFn
                                        : entry.fromJsonFn) +
                     "()",
                 ruleHint("D5")});
            continue;
        }

        for (const FieldInfo& f : info.fields) {
            if (f.suppressedD5)
                continue;
            if (!toJson->count(f.name))
                out.push_back(
                    {"D5", f.file, f.line,
                     std::string(entry.structName) + "::" + f.name +
                         " is not serialized in " + entry.toJsonFn +
                         "()",
                     ruleHint("D5")});
            if (!fromJson->count(f.name))
                out.push_back(
                    {"D5", f.file, f.line,
                     std::string(entry.structName) + "::" + f.name +
                         " is not restored in " + entry.fromJsonFn +
                         "()",
                     ruleHint("D5")});
        }
    }
}

// ---------------------------------------------------------------------
// Body semantics: calls, guarded-ness, writes, taint sources
// ---------------------------------------------------------------------

struct CallSite
{
    std::string callee;
    int line = 0;
    bool allowD1 = false; ///< wglint:allow(D1) at the call site
};

struct WriteSite
{
    std::string name;
    int line = 0;
    bool allowC2 = false;
};

struct TaintSite
{
    std::string ident;
    int line = 0;
    bool sanctioned = false; ///< suppressed or path-exempt
};

struct BodySemantics
{
    bool hasGuard = false; ///< body declares a RAII lock guard
    std::vector<CallSite> calls;
    std::vector<WriteSite> writes;
    std::vector<TaintSite> taints;
};

const std::set<std::string>&
raiiGuardTypes()
{
    static const std::set<std::string> kSet = {
        "MutexLock", "lock_guard", "unique_lock", "scoped_lock",
        "shared_lock"};
    return kSet;
}

bool
fieldLikeName(const std::string& s)
{
    return s.size() > 1 && s.back() == '_';
}

/**
 * One pass over a function body: RAII guards, call edges (free-call
 * shapes only — member calls through a receiver are not edges, the
 * receiver owns its own discipline), direct nondeterminism sources,
 * and direct writes to '_'-suffixed names (assignment, compound
 * assignment, ++/--; mutating METHOD calls are deliberately out of
 * scope — see DESIGN.md §18).
 */
BodySemantics
analyzeBody(const FileScan& scan, const FunctionDef& def)
{
    BodySemantics sem;
    const std::vector<Token>& t = scan.tokens;
    const std::size_t b = def.bodyBegin;
    const std::size_t e =
        def.bodyEnd < t.size() ? def.bodyEnd : t.size();

    for (const D1Hit& h : d1Hits(scan, b, e)) {
        TaintSite site;
        site.ident = h.name;
        site.line = h.line;
        site.sanctioned = phaseTimerFile(scan) ||
                          serveTimeoutExempt(scan.path, h.name) ||
                          suppressed(scan, "D1", h.line);
        sem.taints.push_back(site);
    }

    static const std::set<std::string> kCallKeywords = {
        "return", "co_return", "co_yield", "co_await",
        "throw",  "case",      "else",     "do",
    };
    static const std::set<std::string> kCompoundOps = {
        "+", "-", "*", "/", "%", "&", "|", "^"};

    for (std::size_t i = b; i < e; ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string& name = t[i].text;
        if (raiiGuardTypes().count(name))
            sem.hasGuard = true;

        const Token* prev = i > b ? &t[i - 1] : nullptr;
        bool memberAccess =
            prev != nullptr && prev->kind == TokKind::Punct &&
            (prev->text == "." || prev->text == "->");

        // Call edge: free-call shape (same filter as D1's free-call
        // matcher: a preceding non-keyword ident means a declaration,
        // a preceding '.'/'->' a member call).
        if (i + 1 < e && t[i + 1].kind == TokKind::Punct &&
            t[i + 1].text == "(") {
            bool memberOrDecl =
                prev != nullptr &&
                ((prev->kind == TokKind::Ident &&
                  !kCallKeywords.count(prev->text)) ||
                 (prev->kind == TokKind::Punct &&
                  (prev->text == "." || prev->text == "->" ||
                   prev->text == "&" || prev->text == "*" ||
                   prev->text == ">")));
            if (!memberOrDecl) {
                CallSite call;
                call.callee = name;
                call.line = t[i].line;
                call.allowD1 = suppressed(scan, "D1", t[i].line);
                sem.calls.push_back(call);
            }
        }

        // Direct writes to '_'-suffixed (field-convention) names.
        if (!fieldLikeName(name) || memberAccess)
            continue;
        bool write = false;
        if (i + 2 < e && t[i + 1].kind == TokKind::Punct) {
            const std::string& p1 = t[i + 1].text;
            const std::string& p2 = t[i + 2].text;
            if (p1 == "=" && p2 != "=")
                write = true; // name = ...
            else if (kCompoundOps.count(p1) && p2 == "=" &&
                     !(i + 3 < e && t[i + 3].text == "="))
                write = true; // name += ... (not name <op>==)
            else if ((p1 == "+" && p2 == "+") ||
                     (p1 == "-" && p2 == "-"))
                write = true; // name++
        }
        if (!write && i >= b + 2 && t[i - 1].kind == TokKind::Punct &&
            t[i - 2].kind == TokKind::Punct &&
            ((t[i - 1].text == "+" && t[i - 2].text == "+") ||
             (t[i - 1].text == "-" && t[i - 2].text == "-")) &&
            !(i + 1 < e && t[i + 1].kind == TokKind::Punct &&
              (t[i + 1].text == "." || t[i + 1].text == "->")))
            write = true; // ++name (but not ++name->member)
        if (write) {
            WriteSite w;
            w.name = name;
            w.line = t[i].line;
            w.allowC2 = suppressed(scan, "C2", t[i].line);
            sem.writes.push_back(w);
        }
    }
    return sem;
}

// ---------------------------------------------------------------------
// Interprocedural D1: cross-TU nondeterminism taint
// ---------------------------------------------------------------------

void
checkD1Interprocedural(const std::vector<FileScan>& scans,
                       const Index& index,
                       const std::vector<BodySemantics>& sems,
                       std::vector<Violation>& out)
{
    // Seed: a function name is tainted by every banned ident its
    // definitions use directly WITHOUT a suppression/exemption. The
    // map value is the next hop toward the source ("" = direct use),
    // which reconstructs the chain for the message.
    std::map<std::string, std::map<std::string, std::string>> taint;
    for (std::size_t d = 0; d < index.defs.size(); ++d)
        for (const TaintSite& site : sems[d].taints)
            if (!site.sanctioned)
                taint[index.defs[d].name].emplace(site.ident, "");

    // Propagate to a fixed point over the call graph. Deterministic:
    // defs are in sorted-path merge order and taint maps are ordered,
    // so the first next-hop recorded for a (function, source) pair is
    // the same on every run regardless of scan parallelism.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t d = 0; d < index.defs.size(); ++d) {
            const FunctionDef& def = index.defs[d];
            const FileScan& scan = scans[def.scanIdx];
            if (phaseTimerFile(scan))
                continue;
            for (const CallSite& call : sems[d].calls) {
                if (call.allowD1)
                    continue;
                auto tit = taint.find(call.callee);
                if (tit == taint.end())
                    continue;
                for (const auto& [banned, via] : tit->second) {
                    (void)via;
                    if (serveTimeoutExempt(scan.path, banned))
                        continue;
                    auto& mine = taint[def.name];
                    if (mine.emplace(banned, call.callee).second)
                        changed = true;
                }
            }
        }
    }

    // Report every unsuppressed call site that reaches a source.
    for (std::size_t d = 0; d < index.defs.size(); ++d) {
        const FunctionDef& def = index.defs[d];
        const FileScan& scan = scans[def.scanIdx];
        if (phaseTimerFile(scan))
            continue;
        for (const CallSite& call : sems[d].calls) {
            if (call.allowD1)
                continue;
            auto tit = taint.find(call.callee);
            if (tit == taint.end())
                continue;
            for (const auto& [banned, via] : tit->second) {
                (void)via;
                if (serveTimeoutExempt(scan.path, banned))
                    continue;
                // Reconstruct callee -> ... -> source.
                std::string chain = call.callee;
                std::set<std::string> visited = {call.callee};
                std::string cur = call.callee;
                for (;;) {
                    auto cit = taint.find(cur);
                    if (cit == taint.end())
                        break;
                    auto nit = cit->second.find(banned);
                    if (nit == cit->second.end() ||
                        nit->second.empty())
                        break;
                    if (!visited.insert(nit->second).second)
                        break; // recursion cycle
                    chain += " -> " + nit->second;
                    cur = nit->second;
                }
                out.push_back(
                    {"D1", scan.path, call.line,
                     "call to '" + call.callee +
                         "' reaches nondeterminism source '" + banned +
                         "' (" + chain + " -> " + banned + ")",
                     ruleHint("D1")});
            }
        }
    }
}

// ---------------------------------------------------------------------
// C1: raw mutex lock()/unlock() outside the RAII wrappers
// ---------------------------------------------------------------------

void
checkC1(const std::vector<FileScan>& scans, const Index& index,
        std::vector<Violation>& out)
{
    for (const FileScan& scan : scans) {
        // The annotated wrappers are the one sanctioned home for raw
        // lock()/unlock() — that is their whole job.
        if (fs::path(scan.path).filename() == "thread_annotations.hh")
            continue;
        const std::vector<Token>& t = scan.tokens;
        for (std::size_t i = 0; i + 3 < t.size(); ++i) {
            if (t[i].kind != TokKind::Ident ||
                !index.mutexNames.count(t[i].text))
                continue;
            if (t[i + 1].kind != TokKind::Punct ||
                (t[i + 1].text != "." && t[i + 1].text != "->"))
                continue;
            if (t[i + 2].kind != TokKind::Ident ||
                (t[i + 2].text != "lock" &&
                 t[i + 2].text != "unlock"))
                continue;
            if (t[i + 3].kind != TokKind::Punct ||
                t[i + 3].text != "(")
                continue;
            if (suppressed(scan, "C1", t[i].line))
                continue;
            out.push_back(
                {"C1", scan.path, t[i].line,
                 "raw " + t[i + 2].text + "() on mutex '" +
                     t[i].text + "' outside a RAII guard",
                 ruleHint("C1")});
        }
    }
}

// ---------------------------------------------------------------------
// C2: cross-TU unlocked writes to lock-guarded fields
// ---------------------------------------------------------------------

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

void
checkC2(const std::vector<FileScan>& scans, const Index& index,
        const std::vector<BodySemantics>& sems,
        std::vector<Violation>& out)
{
    // Group method definitions (inline and out-of-line, across every
    // TU) by their class.
    std::map<std::string, std::vector<std::size_t>> byClass;
    for (std::size_t d = 0; d < index.defs.size(); ++d)
        if (!index.defs[d].qualifier.empty())
            byClass[index.defs[d].qualifier].push_back(d);

    static const ClassInfo kNoInfo;
    for (const auto& [className, defIdxs] : byClass) {
        auto cit = index.classes.find(className);
        const ClassInfo& info =
            cit == index.classes.end() ? kNoInfo : cit->second;

        // Candidate fields: annotated WG_GUARDED_BY, plus any
        // '_'-suffixed name some method writes under a RAII guard —
        // evidence the class treats it as lock-protected.
        std::set<std::string> candidates = info.guardedFields;
        for (std::size_t d : defIdxs)
            if (sems[d].hasGuard && !index.defs[d].isCtorDtor)
                for (const WriteSite& w : sems[d].writes)
                    candidates.insert(w.name);
        if (candidates.empty())
            continue;

        for (std::size_t d : defIdxs) {
            const FunctionDef& def = index.defs[d];
            const BodySemantics& sem = sems[d];
            // Sanctioned unlocked writers: constructors/destructors
            // (the object is not shared yet / any more), methods that
            // guard, and methods whose contract says the caller holds
            // the lock (WG_REQUIRES anywhere, or the *Locked naming
            // convention).
            if (sem.hasGuard || def.isCtorDtor ||
                def.requiresLock ||
                endsWith(def.name, "Locked") ||
                info.requiresFns.count(def.name))
                continue;
            const FileScan& scan = scans[def.scanIdx];
            for (const WriteSite& w : sem.writes) {
                if (!candidates.count(w.name) || w.allowC2)
                    continue;
                out.push_back(
                    {"C2", scan.path, w.line,
                     "unlocked write to '" + w.name + "' of " +
                         className +
                         ", which is lock-guarded elsewhere",
                     ruleHint("C2")});
            }
        }
    }
}

} // namespace

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

void
checkFile(const FileScan& scan, std::vector<Violation>& out)
{
    checkD1(scan, out);
    checkD2(scan, out);
    checkD4(scan, out);
    checkH1(scan, out);
}

void
checkTree(const std::vector<FileScan>& scans, const Index& index,
          bool interprocedural, std::vector<Violation>& out)
{
    checkD3(index, out);
    checkD5(index, out);

    std::vector<BodySemantics> sems;
    sems.reserve(index.defs.size());
    for (const FunctionDef& def : index.defs)
        sems.push_back(analyzeBody(scans[def.scanIdx], def));

    if (interprocedural)
        checkD1Interprocedural(scans, index, sems, out);
    checkC1(scans, index, out);
    checkC2(scans, index, sems, out);
}

} // namespace wglint
