/**
 * @file
 * wglint — project-specific static analysis for the warped-gates tree.
 *
 * A lightweight C++ tokenizer plus a recursive scanner (no libclang)
 * that walks src/, tools/ and bench/ and enforces the contracts every
 * PR so far has relied on but only checked at runtime:
 *
 *   D1  no nondeterminism sources (wall clocks, rand, sleeps) outside
 *       the profiling allowlist — "bit-identical" output must not
 *       depend on the host. The check is interprocedural: a call that
 *       transitively reaches an unsuppressed source through any chain
 *       of helpers (across translation units) is flagged at the call
 *       site, with the chain spelled out. `--no-interprocedural`
 *       restores the direct-sites-only v1 behaviour.
 *   D2  no iteration over unordered containers in result-affecting
 *       code (stats, metrics, report, trace sinks, exporters, tools) —
 *       hash order leaks straight into files CI diffs byte-for-byte.
 *   D3  stats-registration drift — every field of the catalogued stats
 *       structs (PgDomainStats, ClusterStats, SmStats, SimResult) must
 *       appear in the matching merge() and registry (toStatSet-side)
 *       function. This is the static twin of the PR 3
 *       PgDomainStats::merge drift bug.
 *   D4  metric names passed to StatSet accessors contain no '_', so
 *       the Prometheus '.' -> '_' exposition mapping stays bijective;
 *       likewise JSON keys embedded in string literals (hand-built
 *       wire frames, the event log) stay camelCase.
 *   D5  snapshot-field drift — every field of the checkpointed state
 *       structs (RngState, SchedulerState, SmSnapshot, ...) must
 *       appear in both halves of its serve/snapshot codec
 *       (xToJson/xFromJson); a field added to the struct but not the
 *       codec would silently break resume bit-identity.
 *   C1  no raw `.lock()`/`.unlock()` on mutex-typed names outside the
 *       annotated RAII wrappers (common/thread_annotations.hh) — the
 *       static twin of the thread-safety annotation rollout.
 *   C2  lock-discipline drift across TUs: a field the class guards in
 *       one place (WG_GUARDED_BY, or writes under a RAII guard) must
 *       not be written elsewhere without the lock, a WG_REQUIRES /
 *       *Locked caller-holds-it contract, or a suppression.
 *   H1  header hygiene: every header carries `#pragma once` and no
 *       `using namespace` at header scope.
 *
 * Suppression: `// wglint:allow(RULE)` (comma-separated rules) on the
 * violating line or the line directly above it. Files named
 * `phase_timer.hh` (the sanctioned wall-clock wrapper) are exempt from
 * D1 wholesale. Files under a `serve/` directory get a scoped D1
 * exemption for the socket-timeout subset only (`steady_clock`,
 * `sleep_for`, `sleep_until`): wire deadlines never feed simulation
 * state. Wall clocks and entropy stay banned there too.
 *
 * Parallelism: files are tokenized, per-file-checked and per-file-
 * indexed concurrently on the shared wg::ThreadPool (`--jobs=N`;
 * `--jobs=1` forces the serial reference path, the default uses the
 * hardware-sized global pool). The per-file results are merged in
 * sorted-path order and the cross-TU rules run serially afterwards,
 * so the report is byte-identical at every job count — the
 * determinism contract this tree demands of its own tools.
 *
 * Output: --format=text (default, `file:line: [RULE] message`) or
 * --format=jsonl (one JSON object per violation, CI artifact
 * friendly). Exit status: 0 clean, 1 violations, 2 usage/IO error.
 *
 * The linter must itself pass its own rules (it is scanned as part of
 * tools/), which is why it uses std::map/std::set throughout and never
 * touches a clock.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "common/threadpool.hh"

#include "index.hh"
#include "report.hh"
#include "rules.hh"
#include "tokenizer.hh"

namespace fs = std::filesystem;

namespace {

bool
scannableExtension(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" ||
           ext == ".h" || ext == ".hpp";
}

/** Collect files under the given paths in sorted (stable) order. */
std::vector<fs::path>
collectFiles(const std::vector<std::string>& roots, bool& ok)
{
    std::vector<fs::path> files;
    ok = true;
    for (const std::string& r : roots) {
        fs::path p(r);
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (fs::recursive_directory_iterator it(p, ec), end;
                 it != end; it.increment(ec)) {
                if (ec)
                    break;
                if (it->is_regular_file(ec) &&
                    scannableExtension(it->path()))
                    files.push_back(it->path());
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            std::cerr << "wglint: no such file or directory: " << r
                      << "\n";
            ok = false;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

/** Everything derived from one file, independent of every other. */
struct ScanResult
{
    wglint::FileScan scan;
    wglint::FileIndex index;
    std::vector<wglint::Violation> violations;
    bool ok = false;
};

ScanResult
scanOne(const fs::path& file)
{
    ScanResult r;
    r.ok = wglint::tokenize(file, file.generic_string(), r.scan);
    if (!r.ok)
        return r;
    wglint::checkFile(r.scan, r.violations);
    wglint::indexFile(r.scan, r.index);
    return r;
}

int
usage()
{
    std::cerr << "usage: wglint [--format=text|jsonl] [--jobs=N] "
                 "[--no-interprocedural] [--list-rules] path...\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string format = "text";
    std::vector<std::string> roots;
    unsigned jobs = 0; // 0 = hardware-sized shared pool
    bool jobsGiven = false;
    bool interprocedural = true;
    for (int a = 1; a < argc; ++a) {
        std::string arg = argv[a];
        if (arg == "--list-rules") {
            wglint::printRules(std::cout);
            return 0;
        }
        if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "jsonl")
                return usage();
            continue;
        }
        if (arg.rfind("--jobs=", 0) == 0) {
            const std::string value = arg.substr(7);
            if (value.empty())
                return usage();
            for (char c : value)
                if (!std::isdigit(static_cast<unsigned char>(c)))
                    return usage();
            jobs = static_cast<unsigned>(std::stoul(value));
            jobsGiven = true;
            continue;
        }
        if (arg == "--no-interprocedural") {
            interprocedural = false;
            continue;
        }
        if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0)
            return usage();
        roots.push_back(arg);
    }
    if (roots.empty())
        return usage();

    bool ok = true;
    std::vector<fs::path> files = collectFiles(roots, ok);
    if (!ok)
        return 2;

    // Per-file phase: tokenize + local rules + local index, one task
    // per file into a pre-sized slot (no cross-task state). --jobs=1
    // is the serial reference the parallel path must match byte for
    // byte; an explicit --jobs=N gets a dedicated pool of that size,
    // the default shares the hardware-sized global pool.
    std::vector<ScanResult> results(files.size());
    if (jobsGiven && jobs == 1) {
        for (std::size_t i = 0; i < files.size(); ++i)
            results[i] = scanOne(files[i]);
    } else {
        wg::ThreadPool local(jobsGiven ? jobs : 0);
        wg::ThreadPool& pool =
            jobsGiven ? local : wg::ThreadPool::global();
        std::vector<std::future<void>> futs;
        futs.reserve(files.size());
        for (std::size_t i = 0; i < files.size(); ++i)
            futs.push_back(pool.submit([&results, &files, i] {
                results[i] = scanOne(files[i]);
            }));
        for (auto& f : futs)
            pool.wait(f);
    }

    // Serial phase, in sorted-path order: IO errors first (matching
    // the serial scanner's first-failure exit), then the deterministic
    // merge that cross-TU rules run on.
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (!results[i].ok) {
            std::cerr << "wglint: cannot read " << files[i] << "\n";
            return 2;
        }
    }
    std::vector<wglint::Violation> violations;
    std::vector<wglint::FileScan> scans;
    scans.reserve(results.size());
    wglint::Index index;
    for (std::size_t i = 0; i < results.size(); ++i) {
        violations.insert(violations.end(),
                          results[i].violations.begin(),
                          results[i].violations.end());
        index.merge(std::move(results[i].index), i);
        scans.push_back(std::move(results[i].scan));
    }
    wglint::checkTree(scans, index, interprocedural, violations);

    std::sort(violations.begin(), violations.end(),
              wglint::violationLess);
    wglint::printReport(std::cout, violations, files.size(), format);
    return violations.empty() ? 0 : 1;
}
