/**
 * @file
 * wglint reporting: the Violation record, the deterministic sort
 * order every output format relies on, per-rule fix hints, and the
 * text / jsonl emitters. Output is byte-stable: violations are sorted
 * by (file, line, rule, message) regardless of scan order, which is
 * what lets the parallel scanner promise byte-identical reports.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wglint {

struct Violation
{
    std::string rule;
    std::string file;
    int line = 0;
    std::string message;
    std::string hint;
};

bool violationLess(const Violation& a, const Violation& b);

/** One-line fix hint per rule, shown in both output formats. */
std::string ruleHint(const std::string& rule);

/** Minimal JSON string escaping (control bytes become \\u00XX). */
std::string jsonEscape(const std::string& s);

/**
 * Emit sorted violations in `format` ("text" or "jsonl") followed by
 * the text-format summary line ("wglint: clean (...)" / "FAILED").
 */
void printReport(std::ostream& out,
                 const std::vector<Violation>& violations,
                 std::size_t fileCount, const std::string& format);

/** `--list-rules`: one line per rule plus the suppression syntax. */
void printRules(std::ostream& out);

} // namespace wglint
