/**
 * @file
 * wglint rules, split by the data they need:
 *
 * checkFile — the per-file rules (D1 direct sites, D2, D4, H1). They
 * read exactly one FileScan, so the driver may run them from worker
 * threads, one file per task, with no shared state.
 *
 * checkTree — the whole-tree rules (D3, D5, C1, C2 and the
 * interprocedural extension of D1). They run once, serially, after
 * every per-file index has been merged in sorted-path order, so their
 * output is deterministic and independent of scan parallelism.
 *
 * Interprocedural D1: a function whose body uses a banned source
 * without a suppression taints its name; taint propagates caller-ward
 * over the cross-TU call graph, and every call site that reaches a
 * tainted function is flagged with the full chain. Suppressing the
 * direct site (or a call site) stops propagation through it — the
 * suppression is a reviewed claim that the value does not affect
 * results, and that claim covers callers too. The serve/ timeout
 * exemption is re-applied per caller, so a serve/ helper's
 * steady_clock never taints serve/ callers but stays visible if code
 * outside serve/ ever calls in.
 */

#pragma once

#include <vector>

#include "index.hh"
#include "report.hh"
#include "tokenizer.hh"

namespace wglint {

/** Per-file rules: D1 (direct sites), D2, D4, H1. Thread-safe. */
void checkFile(const FileScan& scan, std::vector<Violation>& out);

/**
 * Whole-tree rules over the merged index: D3, D5, C1, C2 and — unless
 * `interprocedural` is false (`--no-interprocedural`, the v1 D1
 * behaviour) — cross-function D1 taint. `scans` must be the vector
 * the FunctionDef::scanIdx values refer to.
 */
void checkTree(const std::vector<FileScan>& scans, const Index& index,
               bool interprocedural, std::vector<Violation>& out);

} // namespace wglint
