/**
 * @file
 * wglint cross-TU index. One FileIndex is built per file (safe to do
 * in parallel, it only reads that file's tokens); the driver then
 * merges them into a single Index in sorted-path order, so the merged
 * view is deterministic and identical between serial and parallel
 * scans. The index powers every cross-file rule:
 *
 *   - D3/D5: catalogued stats/snapshot structs, their fields, and the
 *     bodies of merge/registry/codec functions.
 *   - D1 (interprocedural): every function definition with its body
 *     token range, so the rules layer can build a call graph and
 *     propagate nondeterminism taint across translation units.
 *   - C1: every name declared with a mutex-family type, anywhere.
 *   - C2: per-class lock discipline — WG_GUARDED_BY fields and
 *     WG_REQUIRES-annotated method names (declarations count, so a
 *     header contract covers the out-of-line definition in another
 *     file).
 */

#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tokenizer.hh"

namespace wglint {

// ---------------------------------------------------------------------
// D3/D5: catalogued structs
// ---------------------------------------------------------------------

struct FieldInfo
{
    std::string name;
    int line = 0;
    std::string file;
    std::vector<std::string> typeTokens;
    bool suppressed = false;   ///< wglint:allow(D3) on the field
    bool suppressedD5 = false; ///< wglint:allow(D5) on the field
};

struct StructInfo
{
    std::string file;
    int line = 0;
    std::vector<FieldInfo> fields;
    /** inline method name -> identifiers appearing in its body. */
    std::map<std::string, std::set<std::string>> methods;
    bool seen = false;
};

struct D3Entry
{
    const char* structName;
    const char* mergeFn;   ///< "" = struct has no merge contract
    bool mergeIsMember;    ///< true: inline member; false: free fn
    const char* registryFn;
};

struct D5Entry
{
    const char* structName;
    const char* toJsonFn;
    const char* fromJsonFn;
};

extern const std::vector<D3Entry>& d3Catalogue();
extern const std::vector<D5Entry>& d5Catalogue();

// ---------------------------------------------------------------------
// Concurrency + call-graph facts
// ---------------------------------------------------------------------

/**
 * One function definition (free, out-of-line member, or inline member)
 * with its body token range. Semantic passes (taint sources, call
 * edges, guarded writes) re-read the range from the owning FileScan —
 * the index stores only structure, which keeps per-file indexing
 * independent of every other file.
 */
struct FunctionDef
{
    std::string name;      ///< unqualified name
    std::string qualifier; ///< enclosing/qualifying class, "" = free
    int line = 0;
    bool requiresLock = false; ///< WG_REQUIRES(...) on the definition
    bool isCtorDtor = false;
    std::size_t scanIdx = 0;   ///< into the driver's FileScan vector
    std::size_t bodyBegin = 0; ///< token index of the body '{'
    std::size_t bodyEnd = 0;   ///< one past the matching '}'
};

/** Per-class lock-discipline facts (merged across TUs by name). */
struct ClassInfo
{
    std::set<std::string> guardedFields; ///< WG_GUARDED_BY(...) fields
    std::set<std::string> requiresFns;   ///< WG_REQUIRES(...) methods
};

/** Everything indexed from ONE file; built independently per file. */
struct FileIndex
{
    std::map<std::string, StructInfo> structs;
    /** free (or out-of-line qualified) function name -> body idents. */
    std::map<std::string, std::set<std::string>> functions;
    std::map<std::string, ClassInfo> classes;
    std::vector<FunctionDef> defs; ///< scanIdx unset until merge
    std::set<std::string> mutexNames;
};

/** The merged, whole-tree view. */
struct Index
{
    std::map<std::string, StructInfo> structs;
    std::map<std::string, std::set<std::string>> functions;
    std::map<std::string, ClassInfo> classes;
    std::vector<FunctionDef> defs;
    std::set<std::string> mutexNames;

    /**
     * Fold one file's facts in. MUST be called in sorted-path order:
     * struct identity is first-definition-wins, and the defs vector
     * order seeds every deterministic tie-break downstream.
     */
    void merge(FileIndex&& fi, std::size_t scanIdx);
};

/** Build the per-file index from a tokenized scan. */
void indexFile(const FileScan& scan, FileIndex& out);

} // namespace wglint
