#include "report.hh"

#include <ostream>

namespace wglint {

bool
violationLess(const Violation& a, const Violation& b)
{
    if (a.file != b.file)
        return a.file < b.file;
    if (a.line != b.line)
        return a.line < b.line;
    if (a.rule != b.rule)
        return a.rule < b.rule;
    return a.message < b.message;
}

std::string
ruleHint(const std::string& rule)
{
    if (rule == "D1")
        return "route timing through metrics/phase_timer.hh or add "
               "'// wglint:allow(D1)' with a rationale";
    if (rule == "D2")
        return "use std::map/std::set (ordered) or copy keys into a "
               "sorted vector before iterating";
    if (rule == "D3")
        return "add the field to the merge() and registry functions, "
               "or annotate the field with '// wglint:allow(D3)'";
    if (rule == "D4")
        return "registry names are '.'-separated and wire keys are "
               "camelCase; keep '_' out so the Prometheus '.'->'_' "
               "mapping stays bijective";
    if (rule == "D5")
        return "serialize the field in both codec halves "
               "(xToJson/xFromJson in serve/snapshot.cc), or annotate "
               "it with '// wglint:allow(D5)' if it is derived state "
               "that restore() recomputes";
    if (rule == "H1")
        return "add '#pragma once' as the first directive and keep "
               "'using namespace' out of headers";
    if (rule == "C1")
        return "hold the mutex through a RAII guard (wg::MutexLock, "
               "std::lock_guard) instead of raw lock()/unlock() "
               "calls, or add '// wglint:allow(C1)' with a rationale";
    if (rule == "C2")
        return "take the class's lock (RAII guard) before writing the "
               "field, mark the method WG_REQUIRES(mu) / name it "
               "*Locked if a caller already holds it, or add "
               "'// wglint:allow(C2)' for single-threaded phases";
    return "";
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            // Any remaining control byte (stray \f, raw bytes < 0x20
            // leaking out of scanned source) must be \u-escaped or
            // the jsonl record is invalid JSON.
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* kHex = "0123456789abcdef";
                out += "\\u00";
                out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
                out += kHex[static_cast<unsigned char>(c) & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
printReport(std::ostream& out,
            const std::vector<Violation>& violations,
            std::size_t fileCount, const std::string& format)
{
    for (const Violation& v : violations) {
        if (format == "jsonl") {
            out << "{\"rule\":\"" << jsonEscape(v.rule)
                << "\",\"file\":\"" << jsonEscape(v.file)
                << "\",\"line\":" << v.line << ",\"message\":\""
                << jsonEscape(v.message) << "\",\"hint\":\""
                << jsonEscape(v.hint) << "\"}\n";
        } else {
            out << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n    hint: " << v.hint << "\n";
        }
    }
    if (format == "text") {
        out << (violations.empty() ? "wglint: clean ("
                                   : "wglint: FAILED (")
            << fileCount << " files, " << violations.size()
            << " violation" << (violations.size() == 1 ? "" : "s")
            << ")\n";
    }
}

void
printRules(std::ostream& out)
{
    out << "D1  no nondeterminism sources (clocks, rand, sleeps) "
           "outside phase_timer.hh / suppressed profiling sites; "
           "serve/ may use monotonic socket timeouts "
           "(steady_clock, sleep_for, sleep_until) only; calls that "
           "transitively reach a source are flagged too\n"
        << "D2  no unordered_map/unordered_set iteration in "
           "result-affecting code (stats, metrics, report, trace, "
           "export, sinks, tools)\n"
        << "D3  every field of PgDomainStats/ClusterStats/SmStats/"
           "SimResult appears in its merge() and registry function\n"
        << "D4  metric-name literals passed to StatSet accessors and "
           "JSON keys embedded in string literals (wire frames, "
           "event log) contain no '_'\n"
        << "D5  every field of the snapshotted state structs "
           "(RngState, SchedulerState, SmSnapshot, ...) appears in "
           "both halves of its serve/snapshot codec "
           "(xToJson/xFromJson)\n"
        << "C1  no raw mutex lock()/unlock() calls outside the "
           "annotated RAII wrappers (common/thread_annotations.hh)\n"
        << "C2  a field guarded by a lock in one place (WG_GUARDED_BY "
           "or writes under a RAII guard) is not written elsewhere "
           "without the lock, a WG_REQUIRES/*Locked contract, or a "
           "suppression\n"
        << "H1  headers carry '#pragma once' and no 'using "
           "namespace'\n"
        << "Suppress with '// wglint:allow(RULE)' on the violating "
           "line or the line above.\n";
}

} // namespace wglint
