/**
 * @file
 * wglint — project-specific static analysis for the warped-gates tree.
 *
 * A lightweight C++ tokenizer plus a recursive scanner (no libclang)
 * that walks src/, tools/ and bench/ and enforces the contracts every
 * PR so far has relied on but only checked at runtime:
 *
 *   D1  no nondeterminism sources (wall clocks, rand, sleeps) outside
 *       the profiling allowlist — "bit-identical" output must not
 *       depend on the host.
 *   D2  no iteration over unordered containers in result-affecting
 *       code (stats, metrics, report, trace sinks, exporters, tools) —
 *       hash order leaks straight into files CI diffs byte-for-byte.
 *   D3  stats-registration drift — every field of the catalogued stats
 *       structs (PgDomainStats, ClusterStats, SmStats, SimResult) must
 *       appear in the matching merge() and registry (toStatSet-side)
 *       function. This is the static twin of the PR 3
 *       PgDomainStats::merge drift bug.
 *   D4  metric names passed to StatSet accessors contain no '_', so
 *       the Prometheus '.' -> '_' exposition mapping stays bijective;
 *       likewise JSON keys embedded in string literals (hand-built
 *       wire frames, the event log) stay camelCase.
 *   D5  snapshot-field drift — every field of the checkpointed state
 *       structs (RngState, SchedulerState, SmSnapshot, ...) must
 *       appear in both halves of its serve/snapshot codec
 *       (xToJson/xFromJson); a field added to the struct but not the
 *       codec would silently break resume bit-identity.
 *   H1  header hygiene: every header carries `#pragma once` and no
 *       `using namespace` at header scope.
 *
 * Suppression: `// wglint:allow(RULE)` (comma-separated rules) on the
 * violating line or the line directly above it. Files named
 * `phase_timer.hh` (the sanctioned wall-clock wrapper) are exempt from
 * D1 wholesale. Files under a `serve/` directory get a scoped D1
 * exemption for the socket-timeout subset only (`steady_clock`,
 * `sleep_for`, `sleep_until`): wire deadlines never feed simulation
 * state. Wall clocks and entropy stay banned there too.
 *
 * Output: --format=text (default, `file:line: [RULE] message`) or
 * --format=jsonl (one JSON object per violation, CI artifact
 * friendly). Exit status: 0 clean, 1 violations, 2 usage/IO error.
 *
 * The linter must itself pass its own rules (it is scanned as part of
 * tools/), which is why it uses std::map/std::set throughout and never
 * touches a clock.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------

struct Violation
{
    std::string rule;
    std::string file;
    int line = 0;
    std::string message;
    std::string hint;
};

bool
violationLess(const Violation& a, const Violation& b)
{
    if (a.file != b.file)
        return a.file < b.file;
    if (a.line != b.line)
        return a.line < b.line;
    if (a.rule != b.rule)
        return a.rule < b.rule;
    return a.message < b.message;
}

/** One-line fix hint per rule, shown in both output formats. */
std::string
ruleHint(const std::string& rule)
{
    if (rule == "D1")
        return "route timing through metrics/phase_timer.hh or add "
               "'// wglint:allow(D1)' with a rationale";
    if (rule == "D2")
        return "use std::map/std::set (ordered) or copy keys into a "
               "sorted vector before iterating";
    if (rule == "D3")
        return "add the field to the merge() and registry functions, "
               "or annotate the field with '// wglint:allow(D3)'";
    if (rule == "D4")
        return "registry names are '.'-separated and wire keys are "
               "camelCase; keep '_' out so the Prometheus '.'->'_' "
               "mapping stays bijective";
    if (rule == "D5")
        return "serialize the field in both codec halves "
               "(xToJson/xFromJson in serve/snapshot.cc), or annotate "
               "it with '// wglint:allow(D5)' if it is derived state "
               "that restore() recomputes";
    if (rule == "H1")
        return "add '#pragma once' as the first directive and keep "
               "'using namespace' out of headers";
    return "";
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

enum class TokKind { Ident, Number, String, CharLit, Punct };

struct Token
{
    TokKind kind;
    std::string text;
    int line = 0;
};

/** Scan state for one file: tokens plus comment-derived metadata. */
struct FileScan
{
    std::string path;       ///< display path (as passed / walked)
    std::vector<Token> tokens;
    /** line -> rules allowed on that line (and the line below it). */
    std::map<int, std::set<std::string>> allows;
    bool pragmaOnce = false;
    bool isHeader = false;
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Record `wglint:allow(A,B)` markers found in a comment. */
void
parseAllows(const std::string& comment, int line, FileScan& scan)
{
    const std::string marker = "wglint:allow(";
    std::size_t pos = 0;
    while ((pos = comment.find(marker, pos)) != std::string::npos) {
        pos += marker.size();
        std::size_t end = comment.find(')', pos);
        if (end == std::string::npos)
            return;
        std::string inside = comment.substr(pos, end - pos);
        std::string rule;
        std::istringstream ss(inside);
        while (std::getline(ss, rule, ',')) {
            std::size_t b = rule.find_first_not_of(" \t");
            std::size_t e = rule.find_last_not_of(" \t");
            if (b != std::string::npos)
                scan.allows[line].insert(rule.substr(b, e - b + 1));
        }
        pos = end;
    }
}

/**
 * Tokenize one file. Preprocessor lines are consumed whole (honouring
 * backslash continuations) and only mined for `#pragma once`; comments
 * are mined for suppression markers.
 */
bool
tokenize(const fs::path& file, const std::string& display,
         FileScan& scan)
{
    std::ifstream in(file, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string src = buf.str();

    scan.path = display;
    const std::string ext = file.extension().string();
    scan.isHeader = ext == ".hh" || ext == ".h" || ext == ".hpp";

    std::size_t i = 0;
    const std::size_t n = src.size();
    int line = 1;
    bool atLineStart = true;

    auto advance = [&](std::size_t k) {
        for (std::size_t j = 0; j < k && i < n; ++j, ++i)
            if (src[i] == '\n') {
                ++line;
                atLineStart = true;
            }
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            advance(1);
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor directive: consume the logical line.
        if (c == '#' && atLineStart) {
            std::size_t start = i;
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    advance(2);
                    continue;
                }
                if (src[i] == '\n')
                    break;
                ++i;
            }
            std::string directive = src.substr(start, i - start);
            // Normalise interior whitespace for the pragma check.
            std::string squashed;
            for (char d : directive)
                if (!std::isspace(static_cast<unsigned char>(d)))
                    squashed += d;
            if (squashed == "#pragmaonce")
                scan.pragmaOnce = true;
            continue;
        }
        atLineStart = false;
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t start = i;
            int startLine = line;
            while (i < n && src[i] != '\n')
                ++i;
            parseAllows(src.substr(start, i - start), startLine, scan);
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t start = i;
            int startLine = line;
            advance(2);
            while (i < n &&
                   !(src[i] == '*' && i + 1 < n && src[i + 1] == '/'))
                advance(1);
            advance(2);
            parseAllows(src.substr(start, i - start), startLine, scan);
            continue;
        }
        // Raw string literal, with optional encoding prefix (R"...",
        // LR"...", uR"...", UR"...", u8R"..."), custom delims included.
        std::size_t rawR = std::string::npos;
        if (c == 'R')
            rawR = i;
        else if ((c == 'L' || c == 'u' || c == 'U') && i + 1 < n &&
                 src[i + 1] == 'R')
            rawR = i + 1;
        else if (c == 'u' && i + 2 < n && src[i + 1] == '8' &&
                 src[i + 2] == 'R')
            rawR = i + 2;
        if (rawR != std::string::npos && rawR + 1 < n &&
            src[rawR + 1] == '"') {
            std::size_t d0 = rawR + 2;
            std::size_t paren = src.find('(', d0);
            if (paren != std::string::npos) {
                std::string delim =
                    ")" + src.substr(d0, paren - d0) + "\"";
                std::size_t close = src.find(delim, paren + 1);
                std::size_t end = close == std::string::npos
                                      ? n
                                      : close + delim.size();
                int startLine = line;
                std::string text = src.substr(i, end - i);
                advance(end - i);
                scan.tokens.push_back(
                    {TokKind::String, text, startLine});
                continue;
            }
        }
        // String / char literal.
        if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t start = i;
            int startLine = line;
            advance(1);
            while (i < n && src[i] != quote) {
                if (src[i] == '\\')
                    advance(1);
                advance(1);
            }
            advance(1);
            scan.tokens.push_back(
                {quote == '"' ? TokKind::String : TokKind::CharLit,
                 src.substr(start, i - start), startLine});
            continue;
        }
        // Identifier / keyword.
        if (identStart(c)) {
            std::size_t start = i;
            while (i < n && identChar(src[i]))
                ++i;
            scan.tokens.push_back(
                {TokKind::Ident, src.substr(start, i - start), line});
            continue;
        }
        // Number.
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            while (i < n && (identChar(src[i]) || src[i] == '.' ||
                             src[i] == '\''))
                ++i;
            scan.tokens.push_back(
                {TokKind::Number, src.substr(start, i - start), line});
            continue;
        }
        // Punctuation; keep '::' and '->' fused, the rules use them.
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            scan.tokens.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            scan.tokens.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        scan.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return true;
}

/** True when `rule` is suppressed at `line` (marker there or above). */
bool
suppressed(const FileScan& scan, const std::string& rule, int line)
{
    for (int l : {line, line - 1}) {
        auto it = scan.allows.find(l);
        if (it != scan.allows.end() && it->second.count(rule))
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// D3 cross-file index: stats structs and merge/registry bodies
// ---------------------------------------------------------------------

struct FieldInfo
{
    std::string name;
    int line = 0;
    std::string file;
    std::vector<std::string> typeTokens;
    bool suppressed = false;   ///< wglint:allow(D3) on the field
    bool suppressedD5 = false; ///< wglint:allow(D5) on the field
};

struct StructInfo
{
    std::string file;
    int line = 0;
    std::vector<FieldInfo> fields;
    /** inline method name -> identifiers appearing in its body. */
    std::map<std::string, std::set<std::string>> methods;
    bool seen = false;
};

struct D3Entry
{
    const char* structName;
    const char* mergeFn;   ///< "" = struct has no merge contract
    bool mergeIsMember;    ///< true: inline member; false: free fn
    const char* registryFn;
};

/**
 * The registry catalogue: which merge/registry function must mention
 * every field of which struct. SimResult has no merge (results are
 * never summed); Histogram-typed fields are exempt from the registry
 * side (StatSet holds scalars; distributions export separately) but
 * still must be merged.
 */
const D3Entry kD3Catalogue[] = {
    {"PgDomainStats", "merge", true, "appendPgDomainStats"},
    {"ClusterStats", "merge", true, "appendClusterStats"},
    {"SmStats", "mergeSmStats", false, "appendSmStats"},
    {"SimResult", "", false, "toStatSet"},
};

/**
 * D5 catalogue: the snapshotted state structs and the free-function
 * codec pair (serve/snapshot.cc) that must mention every field. The
 * struct and codec live in different files; the same cross-file index
 * D3 uses resolves both sides.
 */
struct D5Entry
{
    const char* structName;
    const char* toJsonFn;
    const char* fromJsonFn;
};

const D5Entry kD5Catalogue[] = {
    {"RngState", "rngStateToJson", "rngStateFromJson"},
    {"WarpSlotState", "warpSlotStateToJson", "warpSlotStateFromJson"},
    {"SchedulerState", "schedulerStateToJson", "schedulerStateFromJson"},
    {"Completion", "completionToJson", "completionFromJson"},
    {"ExecUnitState", "execUnitStateToJson", "execUnitStateFromJson"},
    {"MemSystemState", "memSystemStateToJson", "memSystemStateFromJson"},
    {"PgDomainState", "pgDomainStateToJson", "pgDomainStateFromJson"},
    {"AdaptiveState", "adaptiveStateToJson", "adaptiveStateFromJson"},
    {"PgControllerState", "pgControllerStateToJson",
     "pgControllerStateFromJson"},
    {"EpochCounters", "epochCountersToJson", "epochCountersFromJson"},
    {"EpochSample", "epochSampleToJson", "epochSampleFromJson"},
    {"SamplerState", "samplerStateToJson", "samplerStateFromJson"},
    {"Event", "traceEventToJson", "traceEventFromJson"},
    {"SmSnapshot", "smSnapshotToJson", "smSnapshotFromJson"},
    {"GpuSnapshot", "gpuSnapshotToJson", "gpuSnapshotFromJson"},
    {"SnapshotIdentity", "snapshotIdentityToJson",
     "snapshotIdentityFromJson"},
};

struct D3Index
{
    std::map<std::string, StructInfo> structs;
    /** free (or out-of-line qualified) function name -> body idents. */
    std::map<std::string, std::set<std::string>> functions;
};

bool
isCataloguedStruct(const std::string& name)
{
    for (const D3Entry& e : kD3Catalogue)
        if (name == e.structName)
            return true;
    for (const D5Entry& e : kD5Catalogue)
        if (name == e.structName)
            return true;
    return false;
}

std::size_t
skipBalanced(const std::vector<Token>& t, std::size_t i,
             const std::string& open, const std::string& close)
{
    // i points at the opening token; returns index one past the match.
    int depth = 0;
    const std::size_t n = t.size();
    for (; i < n; ++i) {
        if (t[i].kind != TokKind::Punct)
            continue;
        if (t[i].text == open)
            ++depth;
        else if (t[i].text == close && --depth == 0)
            return i + 1;
    }
    return n;
}

/** Collect identifier tokens in a brace-balanced body. */
std::set<std::string>
bodyIdents(const std::vector<Token>& t, std::size_t open,
           std::size_t end)
{
    std::set<std::string> out;
    for (std::size_t i = open; i < end; ++i)
        if (t[i].kind == TokKind::Ident)
            out.insert(t[i].text);
    return out;
}

/**
 * Parse one struct body (tokens between `{` at `open` and its match)
 * into fields and inline-method bodies. Heuristic, but exact for the
 * declaration style this tree uses.
 */
void
parseStructBody(const FileScan& scan, std::size_t open,
                std::size_t end, StructInfo& info)
{
    const std::vector<Token>& t = scan.tokens;
    std::size_t i = open + 1;
    while (i + 1 < end) {
        const Token& tok = t[i];
        // Access specifiers: `public:` etc.
        if (tok.kind == TokKind::Ident && i + 1 < end &&
            t[i + 1].kind == TokKind::Punct && t[i + 1].text == ":" &&
            (tok.text == "public" || tok.text == "private" ||
             tok.text == "protected")) {
            i += 2;
            continue;
        }
        if (tok.kind == TokKind::Punct && tok.text == ";") {
            ++i;
            continue;
        }
        // Nested type / alias / friend: skip the whole statement.
        if (tok.kind == TokKind::Ident &&
            (tok.text == "struct" || tok.text == "class" ||
             tok.text == "enum" || tok.text == "union" ||
             tok.text == "using" || tok.text == "typedef" ||
             tok.text == "friend" || tok.text == "static")) {
            while (i < end && !(t[i].kind == TokKind::Punct &&
                                t[i].text == ";")) {
                if (t[i].kind == TokKind::Punct && t[i].text == "{")
                    i = skipBalanced(t, i, "{", "}") - 1;
                ++i;
            }
            ++i;
            continue;
        }
        // Statement: walk to its end, deciding field vs function.
        std::size_t stmtBegin = i;
        std::string fnName;
        bool isFunction = false;
        while (i < end) {
            const Token& cur = t[i];
            if (cur.kind == TokKind::Punct && cur.text == "(" &&
                !isFunction) {
                // Function (or constructor): name is the preceding
                // identifier (operator overloads don't occur here).
                if (i > stmtBegin &&
                    t[i - 1].kind == TokKind::Ident)
                    fnName = t[i - 1].text;
                isFunction = true;
                i = skipBalanced(t, i, "(", ")");
                continue;
            }
            if (cur.kind == TokKind::Punct && cur.text == "{") {
                std::size_t close = skipBalanced(t, i, "{", "}");
                if (isFunction) {
                    if (!fnName.empty()) {
                        std::set<std::string> ids =
                            bodyIdents(t, i, close);
                        info.methods[fnName].insert(ids.begin(),
                                                    ids.end());
                    }
                    i = close;
                    // Inline bodies need no trailing ';'.
                    if (i < end && t[i].kind == TokKind::Punct &&
                        t[i].text == ";")
                        ++i;
                    break;
                }
                i = close; // brace initializer: part of the field
                continue;
            }
            if (cur.kind == TokKind::Punct && cur.text == ";") {
                ++i;
                break;
            }
            ++i;
        }
        if (isFunction)
            continue;
        // Field statement. It may declare several comma-separated
        // fields (`std::uint64_t a = 0, b = 0;`), so split on
        // top-level commas and record one field per declarator; the
        // shared type tokens come from the first declarator. Within a
        // declarator the field name is the identifier right before
        // `=`, `{`, `[` or `;`.
        std::vector<std::string> typeTokens;
        bool firstDeclarator = true;
        auto emitField = [&](std::size_t b, std::size_t e) {
            FieldInfo field;
            std::vector<std::string> before;
            for (std::size_t j = b; j < e; ++j) {
                const Token& cur = t[j];
                if (cur.kind == TokKind::Punct &&
                    (cur.text == "=" || cur.text == "{" ||
                     cur.text == "[" || cur.text == ";"))
                    break;
                if (cur.kind == TokKind::Ident) {
                    field.name = cur.text;
                    field.line = cur.line;
                }
                before.push_back(cur.text);
            }
            if (field.name.empty())
                return;
            if (firstDeclarator) {
                firstDeclarator = false;
                if (!before.empty())
                    before.pop_back(); // drop the name; rest = type
                typeTokens = before;
            }
            field.typeTokens = typeTokens;
            field.file = scan.path;
            field.suppressed = suppressed(scan, "D3", field.line);
            field.suppressedD5 = suppressed(scan, "D5", field.line);
            info.fields.push_back(field);
        };
        // Top-level = outside (), [], {} and the type's template
        // argument list. Angle depth is clamped at zero so comparison
        // operators in initializers cannot push it negative.
        int parens = 0, brackets = 0, braces = 0, angles = 0;
        std::size_t segBegin = stmtBegin;
        for (std::size_t j = stmtBegin; j < i; ++j) {
            const Token& cur = t[j];
            if (cur.kind != TokKind::Punct)
                continue;
            if (cur.text == "(")
                ++parens;
            else if (cur.text == ")")
                parens = std::max(0, parens - 1);
            else if (cur.text == "[")
                ++brackets;
            else if (cur.text == "]")
                brackets = std::max(0, brackets - 1);
            else if (cur.text == "{")
                ++braces;
            else if (cur.text == "}")
                braces = std::max(0, braces - 1);
            else if (cur.text == "<")
                ++angles;
            else if (cur.text == ">")
                angles = std::max(0, angles - 1);
            else if (cur.text == "," && parens == 0 &&
                     brackets == 0 && braces == 0 && angles == 0) {
                emitField(segBegin, j);
                segBegin = j + 1;
            }
        }
        emitField(segBegin, i);
    }
}

/**
 * Walk a token range at namespace scope: collect catalogued struct
 * definitions and the bodies of (possibly class-qualified) function
 * definitions.
 */
void
indexScopes(const FileScan& scan, std::size_t begin, std::size_t end,
            D3Index& index)
{
    const std::vector<Token>& t = scan.tokens;
    std::size_t i = begin;
    while (i < end) {
        const Token& tok = t[i];
        if (tok.kind == TokKind::Ident && tok.text == "namespace") {
            // `namespace a::b {` or anonymous: find the brace.
            std::size_t j = i + 1;
            while (j < end && !(t[j].kind == TokKind::Punct &&
                                (t[j].text == "{" || t[j].text == ";")))
                ++j;
            if (j < end && t[j].text == "{") {
                std::size_t close = skipBalanced(t, j, "{", "}");
                indexScopes(scan, j + 1, close - 1, index);
                i = close;
                continue;
            }
            i = j + 1;
            continue;
        }
        if (tok.kind == TokKind::Ident &&
            (tok.text == "struct" || tok.text == "class") &&
            i + 1 < end && t[i + 1].kind == TokKind::Ident) {
            const std::string name = t[i + 1].text;
            // Find the body brace (skipping base-clause tokens) or a
            // `;`/`(`/ident meaning forward-decl or parameter use.
            std::size_t j = i + 2;
            while (j < end && !(t[j].kind == TokKind::Punct &&
                                (t[j].text == "{" || t[j].text == ";" ||
                                 t[j].text == "(" || t[j].text == ")" ||
                                 t[j].text == ",")))
                ++j;
            if (j < end && t[j].text == "{") {
                std::size_t close = skipBalanced(t, j, "{", "}");
                if (isCataloguedStruct(name)) {
                    StructInfo& info = index.structs[name];
                    if (!info.seen) {
                        info.seen = true;
                        info.file = scan.path;
                        info.line = tok.line;
                        parseStructBody(scan, j, close - 1, info);
                    }
                } else {
                    // Still index inline methods of other classes so
                    // out-of-line catalogue functions hiding inside
                    // them are not misattributed; recurse for nested
                    // namespaces is irrelevant here.
                }
                i = close;
                continue;
            }
            i = j;
            continue;
        }
        // Function definition: ident `(` ... `)` [stuff] `{`.
        if (tok.kind == TokKind::Punct && tok.text == "(" && i > 0 &&
            t[i - 1].kind == TokKind::Ident) {
            std::string fn = t[i - 1].text;
            std::string qualifier;
            if (i >= 3 && t[i - 2].kind == TokKind::Punct &&
                t[i - 2].text == "::" &&
                t[i - 3].kind == TokKind::Ident)
                qualifier = t[i - 3].text;
            std::size_t afterParens = skipBalanced(t, i, "(", ")");
            // Scan past trailing specifiers to `{`, `;` or something
            // that rules out a definition.
            std::size_t j = afterParens;
            while (j < end && t[j].kind == TokKind::Ident)
                ++j;
            if (j < end && t[j].kind == TokKind::Punct &&
                t[j].text == "{") {
                std::size_t close = skipBalanced(t, j, "{", "}");
                std::set<std::string> ids = bodyIdents(t, j, close);
                if (!qualifier.empty() &&
                    isCataloguedStruct(qualifier)) {
                    StructInfo& info = index.structs[qualifier];
                    info.methods[fn].insert(ids.begin(), ids.end());
                } else {
                    index.functions[fn].insert(ids.begin(), ids.end());
                }
                i = close;
                continue;
            }
            i = afterParens;
            continue;
        }
        ++i;
    }
}

bool
isHistogramField(const FieldInfo& f)
{
    for (const std::string& t : f.typeTokens)
        if (t == "Histogram")
            return true;
    return false;
}

void
checkD3(const D3Index& index, std::vector<Violation>& out)
{
    for (const D3Entry& entry : kD3Catalogue) {
        auto sit = index.structs.find(entry.structName);
        if (sit == index.structs.end() || !sit->second.seen)
            continue;
        const StructInfo& info = sit->second;

        const std::set<std::string>* mergeBody = nullptr;
        if (entry.mergeFn[0] != '\0') {
            if (entry.mergeIsMember) {
                auto mit = info.methods.find(entry.mergeFn);
                if (mit != info.methods.end())
                    mergeBody = &mit->second;
            } else {
                auto fit = index.functions.find(entry.mergeFn);
                if (fit != index.functions.end())
                    mergeBody = &fit->second;
            }
        }
        const std::set<std::string>* registryBody = nullptr;
        {
            auto fit = index.functions.find(entry.registryFn);
            if (fit != index.functions.end())
                registryBody = &fit->second;
        }

        for (const FieldInfo& f : info.fields) {
            if (f.suppressed)
                continue;
            if (mergeBody && !mergeBody->count(f.name))
                out.push_back(
                    {"D3", f.file, f.line,
                     std::string(entry.structName) + "::" + f.name +
                         " is not merged in " + entry.mergeFn + "()",
                     ruleHint("D3")});
            if (registryBody && !isHistogramField(f) &&
                !registryBody->count(f.name))
                out.push_back(
                    {"D3", f.file, f.line,
                     std::string(entry.structName) + "::" + f.name +
                         " is not registered in " + entry.registryFn +
                         "()",
                     ruleHint("D3")});
        }
    }
}

void
checkD5(const D3Index& index, std::vector<Violation>& out)
{
    for (const D5Entry& entry : kD5Catalogue) {
        auto sit = index.structs.find(entry.structName);
        if (sit == index.structs.end() || !sit->second.seen)
            continue;
        const StructInfo& info = sit->second;

        // Both codec halves must exist before field-level checks make
        // sense; a missing codec shows up as every field drifting,
        // which is noise. Report the absent function once instead.
        const std::set<std::string>* toJson = nullptr;
        const std::set<std::string>* fromJson = nullptr;
        if (auto fit = index.functions.find(entry.toJsonFn);
            fit != index.functions.end())
            toJson = &fit->second;
        if (auto fit = index.functions.find(entry.fromJsonFn);
            fit != index.functions.end())
            fromJson = &fit->second;
        if (toJson == nullptr || fromJson == nullptr) {
            out.push_back(
                {"D5", info.file, info.line,
                 std::string(entry.structName) +
                     " has no codec function " +
                     (toJson == nullptr ? entry.toJsonFn
                                        : entry.fromJsonFn) +
                     "()",
                 ruleHint("D5")});
            continue;
        }

        for (const FieldInfo& f : info.fields) {
            if (f.suppressedD5)
                continue;
            if (!toJson->count(f.name))
                out.push_back(
                    {"D5", f.file, f.line,
                     std::string(entry.structName) + "::" + f.name +
                         " is not serialized in " + entry.toJsonFn +
                         "()",
                     ruleHint("D5")});
            if (!fromJson->count(f.name))
                out.push_back(
                    {"D5", f.file, f.line,
                     std::string(entry.structName) + "::" + f.name +
                         " is not restored in " + entry.fromJsonFn +
                         "()",
                     ruleHint("D5")});
        }
    }
}

// ---------------------------------------------------------------------
// D1: nondeterminism sources
// ---------------------------------------------------------------------

/** Identifiers banned on sight (wall clocks, entropy sources). */
const std::set<std::string>&
bannedIdents()
{
    static const std::set<std::string> kSet = {
        "random_device",
        "system_clock",
        "steady_clock",
        "high_resolution_clock",
    };
    return kSet;
}

/** Banned when used as a free-function call. */
const std::set<std::string>&
bannedFreeCalls()
{
    static const std::set<std::string> kSet = {
        "time",   "clock",    "rand",     "srand",
        "usleep", "nanosleep", "gettimeofday", "getrandom",
    };
    return kSet;
}

/** Banned as a call regardless of qualification (thread sleeps). */
const std::set<std::string>&
bannedAnyCalls()
{
    static const std::set<std::string> kSet = {"sleep_for",
                                               "sleep_until"};
    return kSet;
}

/**
 * The serving layer (src/serve/) legitimately needs socket deadlines:
 * monotonic clocks and poll-retry sleeps bound wire I/O, and never
 * feed simulation state — which is the property D1 protects. Only the
 * timeout subset is exempt there; wall clocks (`system_clock`, `time`)
 * and entropy (`rand`, `random_device`) stay banned everywhere.
 */
bool
serveTimeoutExempt(const std::string& path, const std::string& name)
{
    static const std::set<std::string> kTimeoutIdents = {
        "steady_clock", "sleep_for", "sleep_until"};
    if (!kTimeoutIdents.count(name))
        return false;
    return path.find("serve/") != std::string::npos;
}

void
checkD1(const FileScan& scan, std::vector<Violation>& out)
{
    if (fs::path(scan.path).filename() == "phase_timer.hh")
        return; // the sanctioned wall-clock wrapper
    const std::vector<Token>& t = scan.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string& name = t[i].text;
        bool hit = false;
        if (bannedIdents().count(name)) {
            hit = true;
        } else if (i + 1 < t.size() &&
                   t[i + 1].kind == TokKind::Punct &&
                   t[i + 1].text == "(") {
            if (bannedAnyCalls().count(name)) {
                hit = true;
            } else if (bannedFreeCalls().count(name)) {
                // Skip member calls (`x.time(...)`) and declarations
                // (`Scope time(...)`): flag only free-call shapes. A
                // preceding keyword (`return time(...)`) is still a
                // free call, not a declaration.
                static const std::set<std::string> kCallKeywords = {
                    "return", "co_return", "co_yield", "co_await",
                    "throw",  "case",      "else",     "do",
                };
                bool memberOrDecl = false;
                if (i > 0) {
                    const Token& p = t[i - 1];
                    if ((p.kind == TokKind::Ident &&
                         !kCallKeywords.count(p.text)) ||
                        (p.kind == TokKind::Punct &&
                         (p.text == "." || p.text == "->" ||
                          p.text == "&" || p.text == "*" ||
                          p.text == ">")))
                        memberOrDecl = true;
                }
                hit = !memberOrDecl;
            }
        }
        if (hit && serveTimeoutExempt(scan.path, name))
            hit = false;
        if (hit && !suppressed(scan, "D1", t[i].line))
            out.push_back({"D1", scan.path, t[i].line,
                           "nondeterminism source '" + name +
                               "' outside the profiling allowlist",
                           ruleHint("D1")});
    }
}

// ---------------------------------------------------------------------
// D2: unordered-container iteration in result-affecting code
// ---------------------------------------------------------------------

/** Paths whose output feeds "bit-identical" artifacts. */
bool
resultAffecting(const std::string& path)
{
    static const char* kMarkers[] = {"stats",  "metrics", "report",
                                     "trace",  "export",  "sink",
                                     "tools"};
    for (const char* m : kMarkers)
        if (path.find(m) != std::string::npos)
            return true;
    return false;
}

const std::set<std::string>&
unorderedTypes()
{
    static const std::set<std::string> kSet = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    return kSet;
}

void
checkD2(const FileScan& scan, std::vector<Violation>& out)
{
    if (!resultAffecting(scan.path))
        return;
    const std::vector<Token>& t = scan.tokens;

    // Pass 1: names of variables declared with an unordered type.
    std::set<std::string> vars;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident ||
            !unorderedTypes().count(t[i].text))
            continue;
        // Skip the template argument list, tracking angle depth (the
        // tree never uses shift operators inside stat-path template
        // args, so plain counting is exact here).
        std::size_t j = i + 1;
        if (j < t.size() && t[j].kind == TokKind::Punct &&
            t[j].text == "<") {
            int depth = 0;
            for (; j < t.size(); ++j) {
                if (t[j].kind != TokKind::Punct)
                    continue;
                if (t[j].text == "<")
                    ++depth;
                else if (t[j].text == ">" && --depth == 0) {
                    ++j;
                    break;
                }
            }
        }
        while (j < t.size() && t[j].kind == TokKind::Punct &&
               (t[j].text == "&" || t[j].text == "*"))
            ++j;
        if (j < t.size() && t[j].kind == TokKind::Ident)
            vars.insert(t[j].text);
    }
    if (vars.empty())
        return;

    // Pass 2: range-for over a tracked variable, or .begin()-family.
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind == TokKind::Ident && t[i].text == "for" &&
            i + 1 < t.size() && t[i + 1].text == "(") {
            std::size_t close = skipBalanced(t, i + 1, "(", ")");
            // Find the top-level ':' inside the for-parens.
            int depth = 0;
            for (std::size_t j = i + 2; j + 1 < close; ++j) {
                if (t[j].kind == TokKind::Punct) {
                    if (t[j].text == "(")
                        ++depth;
                    else if (t[j].text == ")")
                        --depth;
                    else if (t[j].text == ":" && depth == 0) {
                        for (std::size_t k = j + 1; k + 1 < close;
                             ++k) {
                            if (t[k].kind == TokKind::Ident &&
                                vars.count(t[k].text) &&
                                !suppressed(scan, "D2", t[k].line)) {
                                out.push_back(
                                    {"D2", scan.path, t[k].line,
                                     "iteration over unordered "
                                     "container '" +
                                         t[k].text +
                                         "' in result-affecting code",
                                     ruleHint("D2")});
                                break;
                            }
                        }
                        break;
                    }
                }
            }
            continue;
        }
        if (t[i].kind == TokKind::Ident && vars.count(t[i].text) &&
            i + 2 < t.size() && t[i + 1].kind == TokKind::Punct &&
            t[i + 1].text == "." && t[i + 2].kind == TokKind::Ident) {
            const std::string& m = t[i + 2].text;
            if ((m == "begin" || m == "cbegin" || m == "rbegin" ||
                 m == "end" || m == "cend" || m == "rend") &&
                !suppressed(scan, "D2", t[i].line))
                out.push_back({"D2", scan.path, t[i].line,
                               "iterator over unordered container '" +
                                   t[i].text +
                                   "' in result-affecting code",
                               ruleHint("D2")});
        }
    }
}

// ---------------------------------------------------------------------
// D4: metric-name literals must not contain '_'
// ---------------------------------------------------------------------

const std::set<std::string>&
statSetAccessors()
{
    static const std::set<std::string> kSet = {
        "set", "incr", "get", "has", "sumPrefix", "mergePrefixed"};
    return kSet;
}

/**
 * Keys of `\"key\":` patterns embedded in a string literal's source
 * text — the hand-built JSON of the wire format (stream frames, the
 * event log), where a snake_case key would leak into the protocol.
 */
std::vector<std::string>
embeddedWireKeys(const std::string& lit)
{
    std::vector<std::string> keys;
    std::size_t i = 0;
    for (;;) {
        std::size_t open = lit.find("\\\"", i);
        if (open == std::string::npos)
            break;
        std::size_t close = lit.find("\\\"", open + 2);
        if (close == std::string::npos)
            break;
        if (close + 2 < lit.size() && lit[close + 2] == ':') {
            keys.push_back(lit.substr(open + 2, close - open - 2));
            i = close + 3;
        } else {
            i = open + 2;
        }
    }
    return keys;
}

/**
 * The embedded-key check applies where camelCase wire formats are
 * built by hand: the serving layer (frames, event log) and the
 * metrics exporters (wgmetrics jsonl). The offline report JSON
 * (report/export.cc) is a distinct, historically snake_case schema.
 */
bool
wireKeyScoped(const std::string& path)
{
    return path.find("serve/") != std::string::npos ||
           path.find("metrics/") != std::string::npos;
}

void
checkD4(const FileScan& scan, std::vector<Violation>& out)
{
    const std::vector<Token>& t = scan.tokens;
    // Embedded wire keys: every string literal in scoped files, no
    // call context required — a key is a key wherever it is built.
    if (wireKeyScoped(scan.path)) {
        for (const Token& tok : t) {
            if (tok.kind != TokKind::String)
                continue;
            for (const std::string& key : embeddedWireKeys(tok.text)) {
                if (key.find('_') != std::string::npos &&
                    !suppressed(scan, "D4", tok.line))
                    out.push_back({"D4", scan.path, tok.line,
                                   "embedded wire key \"" + key +
                                       "\" contains '_'",
                                   ruleHint("D4")});
            }
        }
    }
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokKind::Punct ||
            (t[i].text != "." && t[i].text != "->"))
            continue;
        if (t[i + 1].kind != TokKind::Ident ||
            !statSetAccessors().count(t[i + 1].text))
            continue;
        if (t[i + 2].kind != TokKind::Punct || t[i + 2].text != "(")
            continue;
        // Scan the first argument expression only.
        std::size_t close = skipBalanced(t, i + 2, "(", ")");
        int depth = 0;
        for (std::size_t j = i + 3; j + 1 < close; ++j) {
            if (t[j].kind == TokKind::Punct) {
                if (t[j].text == "(")
                    ++depth;
                else if (t[j].text == ")")
                    --depth;
                else if (t[j].text == "," && depth == 0)
                    break;
            }
            if (t[j].kind == TokKind::String &&
                t[j].text.find('_') != std::string::npos &&
                !suppressed(scan, "D4", t[j].line))
                out.push_back({"D4", scan.path, t[j].line,
                               "metric name literal " + t[j].text +
                                   " contains '_'",
                               ruleHint("D4")});
        }
    }
}

// ---------------------------------------------------------------------
// H1: header hygiene
// ---------------------------------------------------------------------

void
checkH1(const FileScan& scan, std::vector<Violation>& out)
{
    if (!scan.isHeader)
        return;
    if (!scan.pragmaOnce && !suppressed(scan, "H1", 1))
        out.push_back({"H1", scan.path, 1,
                       "header is missing '#pragma once'",
                       ruleHint("H1")});
    const std::vector<Token>& t = scan.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind == TokKind::Ident && t[i].text == "using" &&
            t[i + 1].kind == TokKind::Ident &&
            t[i + 1].text == "namespace" &&
            !suppressed(scan, "H1", t[i].line))
            out.push_back({"H1", scan.path, t[i].line,
                           "'using namespace' in a header",
                           ruleHint("H1")});
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

bool
scannableExtension(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" ||
           ext == ".h" || ext == ".hpp";
}

/** Collect files under the given paths in sorted (stable) order. */
std::vector<fs::path>
collectFiles(const std::vector<std::string>& roots, bool& ok)
{
    std::vector<fs::path> files;
    ok = true;
    for (const std::string& r : roots) {
        fs::path p(r);
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (fs::recursive_directory_iterator it(p, ec), end;
                 it != end; it.increment(ec)) {
                if (ec)
                    break;
                if (it->is_regular_file(ec) &&
                    scannableExtension(it->path()))
                    files.push_back(it->path());
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            std::cerr << "wglint: no such file or directory: " << r
                      << "\n";
            ok = false;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            // Any remaining control byte (stray \f, raw bytes < 0x20
            // leaking out of scanned source) must be \u-escaped or
            // the jsonl record is invalid JSON.
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* kHex = "0123456789abcdef";
                out += "\\u00";
                out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
                out += kHex[static_cast<unsigned char>(c) & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
printRules()
{
    std::cout
        << "D1  no nondeterminism sources (clocks, rand, sleeps) "
           "outside phase_timer.hh / suppressed profiling sites; "
           "serve/ may use monotonic socket timeouts "
           "(steady_clock, sleep_for, sleep_until) only\n"
        << "D2  no unordered_map/unordered_set iteration in "
           "result-affecting code (stats, metrics, report, trace, "
           "export, sinks, tools)\n"
        << "D3  every field of PgDomainStats/ClusterStats/SmStats/"
           "SimResult appears in its merge() and registry function\n"
        << "D4  metric-name literals passed to StatSet accessors and "
           "JSON keys embedded in string literals (wire frames, "
           "event log) contain no '_'\n"
        << "D5  every field of the snapshotted state structs "
           "(RngState, SchedulerState, SmSnapshot, ...) appears in "
           "both halves of its serve/snapshot codec "
           "(xToJson/xFromJson)\n"
        << "H1  headers carry '#pragma once' and no 'using "
           "namespace'\n"
        << "Suppress with '// wglint:allow(RULE)' on the violating "
           "line or the line above.\n";
}

int
usage()
{
    std::cerr << "usage: wglint [--format=text|jsonl] [--list-rules] "
                 "path...\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string format = "text";
    std::vector<std::string> roots;
    for (int a = 1; a < argc; ++a) {
        std::string arg = argv[a];
        if (arg == "--list-rules") {
            printRules();
            return 0;
        }
        if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "jsonl")
                return usage();
            continue;
        }
        if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0)
            return usage();
        roots.push_back(arg);
    }
    if (roots.empty())
        return usage();

    bool ok = true;
    std::vector<fs::path> files = collectFiles(roots, ok);
    if (!ok)
        return 2;

    std::vector<Violation> violations;
    D3Index index;
    for (const fs::path& file : files) {
        FileScan scan;
        if (!tokenize(file, file.generic_string(), scan)) {
            std::cerr << "wglint: cannot read " << file << "\n";
            return 2;
        }
        checkD1(scan, violations);
        checkD2(scan, violations);
        checkD4(scan, violations);
        checkH1(scan, violations);
        indexScopes(scan, 0, scan.tokens.size(), index);
    }
    checkD3(index, violations);
    checkD5(index, violations);

    std::sort(violations.begin(), violations.end(), violationLess);

    for (const Violation& v : violations) {
        if (format == "jsonl") {
            std::cout << "{\"rule\":\"" << jsonEscape(v.rule)
                      << "\",\"file\":\"" << jsonEscape(v.file)
                      << "\",\"line\":" << v.line << ",\"message\":\""
                      << jsonEscape(v.message) << "\",\"hint\":\""
                      << jsonEscape(v.hint) << "\"}\n";
        } else {
            std::cout << v.file << ":" << v.line << ": [" << v.rule
                      << "] " << v.message << "\n    hint: " << v.hint
                      << "\n";
        }
    }
    if (format == "text") {
        std::cout << (violations.empty() ? "wglint: clean ("
                                         : "wglint: FAILED (")
                  << files.size() << " files, " << violations.size()
                  << " violation" << (violations.size() == 1 ? "" : "s")
                  << ")\n";
    }
    return violations.empty() ? 0 : 1;
}
