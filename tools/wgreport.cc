/**
 * @file
 * wgreport — offline comparison of two simulation metric files.
 *
 * Accepts any mix of wgmetrics files (jsonl/csv/prom, as written by
 * `wgsim --metrics`) and wgsim --json result documents; the format is
 * auto-detected per file. Prints a per-metric delta table and exits
 * non-zero when any metric moved beyond tolerance, so CI can gate on
 * perf/energy trajectory:
 *
 *   wgreport baseline.jsonl fresh.jsonl                # exact match
 *   wgreport baseline.jsonl fresh.jsonl --tol 1e-6     # FP headroom
 *   wgreport a.prom b.prom --tol-metric gpu.ipc=0.02
 *
 * Exit codes: 0 within tolerance, 1 regression(s), 2 usage error.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "metrics/compare.hh"
#include "metrics/loader.hh"

namespace {

using namespace wg;

/**
 * Parse `name=reltol[,name=reltol...]` into per-metric overrides.
 * @return false on malformed input.
 */
bool
parsePerMetric(const std::string& spec,
               std::map<std::string, double>& out)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            return false;
        try {
            out[item.substr(0, eq)] = std::stod(item.substr(eq + 1));
        } catch (...) {
            return false;
        }
        pos = comma + 1;
    }
    return true;
}

/** The whole command line, declaratively (drives parsing and --help). */
constexpr FlagSpec kFlags[] = {
    {"tol", FlagKind::Double, "0",
     "global relative tolerance (0 = exact match)"},
    {"abs-tol", FlagKind::Double, "1e-12",
     "absolute delta floor that never flags"},
    {"tol-metric", FlagKind::String, "",
     "per-metric overrides: name=reltol[,name=reltol...]"},
    {"all", FlagKind::Bool, "", "list unchanged metrics too"},
    {"profile", FlagKind::Bool, "",
     "compare profile.* wall-clock metrics as well (excluded by "
     "default: never reproducible)"},
    {"quiet", FlagKind::Bool, "", "suppress the table; exit status only"},
};

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("wgreport",
                   "compare two wgsim metric/result files "
                   "(usage: wgreport BASE TEST [flags])",
                   kFlags);
    if (!args.parse(argc, argv))
        return args.helpRequested() ? 0 : 2;

    if (args.positional().size() != 2) {
        std::fprintf(stderr,
                     "wgreport: expected exactly two files "
                     "(BASE TEST), got %zu\n%s",
                     args.positional().size(), args.usage().c_str());
        return 2;
    }

    metrics::CompareOptions opts;
    opts.relTol = args.getDouble("tol");
    opts.absTol = args.getDouble("abs-tol");
    if (args.given("tol-metric") &&
        !parsePerMetric(args.getString("tol-metric"), opts.perMetric)) {
        std::fprintf(stderr, "wgreport: malformed --tol-metric '%s'\n",
                     args.getString("tol-metric").c_str());
        return 2;
    }
    if (args.getBool("profile"))
        opts.ignorePrefixes.clear();

    const std::string& base_path = args.positional()[0];
    const std::string& test_path = args.positional()[1];
    StatSet base = metrics::loadStatSet(base_path);
    StatSet test = metrics::loadStatSet(test_path);

    metrics::CompareReport report =
        metrics::compareStatSets(base, test, opts);

    if (!args.getBool("quiet")) {
        renderComparison(report, base_path, test_path,
                         args.getBool("all"))
            .print();
        std::cout << report.compared << " metrics compared, "
                  << report.changed << " changed, "
                  << report.regressions << " beyond tolerance\n";
    }
    return report.regressions == 0 ? 0 : 1;
}
