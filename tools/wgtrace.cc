/**
 * @file
 * wgtrace — offline inspector/checker for wgsim JSONL event traces.
 *
 * Replays a trace produced with `wgsim --trace=<file>`
 * (`--trace-format=jsonl`, the default) and
 *   - prints a per-kind event summary, and
 *   - with --check, verifies the gating invariants the Warped Gates
 *     claims rest on: a gated unit never issues, a blackout holds at
 *     least break-even cycles, coordinated blackout never gates the
 *     second cluster of a type against waiting warps, and the adaptive
 *     idle-detect window follows its fast-increase/slow-decrease
 *     schedule inside [min, max].
 *
 * Exit codes: 0 = clean, 1 = invariant violations found, 2 = usage or
 * parse errors.
 *
 * Examples:
 *   wgsim --bench hotspot --technique WarpedGates --trace=t.jsonl
 *   wgtrace --check t.jsonl
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "arch/instr.hh"
#include "common/args.hh"
#include "trace/check.hh"
#include "trace/sink.hh"

namespace {

using namespace wg;

/**
 * Pull the raw token after `"key":` out of a flat single-level JSON
 * object (the only shape the JSONL sink emits). Quoted values are
 * returned without their quotes. @return false when the key is absent.
 */
bool
findRaw(const std::string& line, const std::string& key, std::string& out)
{
    const std::string needle = "\"" + key + "\":";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    if (pos >= line.size())
        return false;
    if (line[pos] == '"') {
        std::size_t end = line.find('"', pos + 1);
        if (end == std::string::npos)
            return false;
        out = line.substr(pos + 1, end - pos - 1);
        return true;
    }
    std::size_t end = line.find_first_of(",}", pos);
    if (end == std::string::npos)
        return false;
    out = line.substr(pos, end - pos);
    return true;
}

bool
findU64(const std::string& line, const std::string& key, std::uint64_t& out)
{
    std::string raw;
    if (!findRaw(line, key, raw))
        return false;
    try {
        out = std::stoull(raw);
    } catch (...) {
        return false;
    }
    return true;
}

bool
parseUnitClass(const std::string& name, std::uint8_t& out)
{
    for (unsigned u = 0; u < kNumUnitClasses; ++u) {
        if (name == unitClassName(static_cast<UnitClass>(u))) {
            out = static_cast<std::uint8_t>(u);
            return true;
        }
    }
    return false;
}

/** WarpLoc spellings the sink emits (values match wg::WarpLoc). */
int
parseWarpLoc(const std::string& name)
{
    const char* names[] = {"active", "pending", "waiting", "finished"};
    for (int i = 0; i < 4; ++i)
        if (name == names[i])
            return i;
    return -1;
}

bool
parseMeta(const std::string& line, trace::Meta& meta)
{
    std::string s;
    std::uint64_t v = 0;
    if (findU64(line, "version", v))
        meta.version = static_cast<std::uint32_t>(v);
    if (!findRaw(line, "policy", meta.policy))
        return false;
    if (!findRaw(line, "scheduler", meta.scheduler))
        return false;
    if (findU64(line, "sms", v))
        meta.numSms = static_cast<std::uint32_t>(v);
    if (findU64(line, "idleDetect", v))
        meta.idleDetect = v;
    if (findU64(line, "breakEven", v))
        meta.breakEven = v;
    if (findU64(line, "wakeupDelay", v))
        meta.wakeupDelay = v;
    if (findRaw(line, "adaptive", s))
        meta.adaptive = s == "true";
    if (findU64(line, "idleDetectMin", v))
        meta.idleDetectMin = v;
    if (findU64(line, "idleDetectMax", v))
        meta.idleDetectMax = v;
    if (findU64(line, "epochLength", v))
        meta.epochLength = v;
    if (findU64(line, "criticalThreshold", v))
        meta.criticalThreshold = static_cast<std::uint32_t>(v);
    if (findU64(line, "decrementEpochs", v))
        meta.decrementEpochs = static_cast<std::uint32_t>(v);
    if (findRaw(line, "gateSfu", s))
        meta.gateSfu = s == "true";
    return true;
}

/**
 * Reassemble a JSONL line into (sm, Event). @return false on a
 * malformed line (diagnostic printed by the caller).
 */
bool
parseEventLine(const std::string& line, SmId& sm, trace::Event& e)
{
    std::uint64_t v = 0;
    std::string s;
    if (!findU64(line, "sm", v))
        return false;
    sm = static_cast<SmId>(v);
    if (!findU64(line, "cycle", v) || !findRaw(line, "kind", s))
        return false;
    e = trace::Event{};
    e.cycle = v;
    if (!trace::parseEventKind(s.c_str(), e.kind))
        return false;

    if (findRaw(line, "unit", s) && !parseUnitClass(s, e.unit))
        return false;
    if (findU64(line, "cluster", v))
        e.cluster = static_cast<std::uint8_t>(v);

    switch (e.kind) {
      case trace::EventKind::Gate: {
        trace::GateReason reason;
        if (!findRaw(line, "reason", s) ||
            !trace::parseGateReason(s.c_str(), reason))
            return false;
        e.arg = static_cast<std::uint8_t>(reason);
        if (findU64(line, "actv", v))
            e.value = static_cast<std::uint32_t>(v);
        break;
      }
      case trace::EventKind::Wakeup: {
        trace::WakeReason reason;
        if (!findRaw(line, "reason", s) ||
            !trace::parseWakeReason(s.c_str(), reason))
            return false;
        e.arg = static_cast<std::uint8_t>(reason);
        break;
      }
      case trace::EventKind::BetExpire:
        if (findU64(line, "held", v))
            e.value = static_cast<std::uint32_t>(v);
        break;
      case trace::EventKind::EpochUpdate:
        if (!findU64(line, "criticals", v))
            return false;
        e.arg = static_cast<std::uint8_t>(v);
        if (!findU64(line, "window", v))
            return false;
        e.value = static_cast<std::uint32_t>(v);
        break;
      case trace::EventKind::WarpMigrate: {
        if (!findRaw(line, "loc", s))
            return false;
        int loc = parseWarpLoc(s);
        if (loc < 0)
            return false;
        e.arg = static_cast<std::uint8_t>(loc);
        if (findU64(line, "warp", v))
            e.value = static_cast<std::uint32_t>(v);
        break;
      }
      case trace::EventKind::Issue:
      case trace::EventKind::GreedySwitch:
        if (findU64(line, "warp", v))
            e.value = static_cast<std::uint32_t>(v);
        break;
      case trace::EventKind::UnitBusy:
        if (findU64(line, "idleRun", v))
            e.value = static_cast<std::uint32_t>(v);
        break;
      case trace::EventKind::MshrFill:
      case trace::EventKind::MshrDrain:
        if (findU64(line, "outstanding", v))
            e.value = static_cast<std::uint32_t>(v);
        break;
      default:
        break;
    }
    return true;
}

/** The whole command line, declaratively (drives parsing and --help). */
constexpr FlagSpec kFlags[] = {
    {"check", FlagKind::Bool, "", "verify the gating invariants"},
    {"quiet", FlagKind::Bool, "", "suppress the event summary"},
    {"max-report", FlagKind::Int, "20",
     "print at most this many violations (0 = all)"},
};

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("wgtrace",
                   "offline wgsim trace inspector and invariant checker; "
                   "reads the JSONL format (wgtrace <trace.jsonl>)",
                   kFlags);
    if (!args.parse(argc, argv))
        return args.helpRequested() ? 0 : 2;
    if (args.positional().size() != 1) {
        std::fprintf(stderr, "usage: wgtrace [--check] <trace.jsonl>\n");
        return 2;
    }

    const std::string& path = args.positional()[0];
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "wgtrace: cannot open '%s'\n", path.c_str());
        return 2;
    }

    std::string line;
    if (!std::getline(in, line)) {
        std::fprintf(stderr, "wgtrace: '%s' is empty\n", path.c_str());
        return 2;
    }
    trace::Meta meta;
    if (!parseMeta(line, meta)) {
        std::fprintf(stderr,
                     "wgtrace: '%s' does not start with a meta line (is "
                     "this a JSONL trace?)\n",
                     path.c_str());
        return 2;
    }

    trace::InvariantChecker checker(meta);
    std::uint64_t line_no = 1;
    std::uint64_t bad_lines = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::uint64_t lost = 0;
        SmId sm = 0;
        std::uint64_t sm_raw = 0;
        if (findU64(line, "truncated", lost) &&
            findU64(line, "sm", sm_raw)) {
            checker.noteTruncated(static_cast<SmId>(sm_raw), lost);
            continue;
        }
        trace::Event e;
        if (!parseEventLine(line, sm, e)) {
            if (++bad_lines <= 5)
                std::fprintf(stderr, "wgtrace: %s:%llu: malformed line\n",
                             path.c_str(),
                             static_cast<unsigned long long>(line_no));
            continue;
        }
        checker.feed(sm, e);
    }
    if (bad_lines > 0) {
        std::fprintf(stderr, "wgtrace: %llu malformed line(s)\n",
                     static_cast<unsigned long long>(bad_lines));
        return 2;
    }

    if (!args.getBool("quiet")) {
        std::cout << path << ": " << checker.eventCount() << " events, "
                  << meta.numSms << " SMs, policy " << meta.policy
                  << ", scheduler " << meta.scheduler << "\n";
        for (std::size_t k = 0; k < trace::kNumEventKinds; ++k) {
            auto kind = static_cast<trace::EventKind>(k);
            std::uint64_t n = checker.eventCount(kind);
            if (n > 0)
                std::cout << "  " << trace::eventKindName(kind) << ": "
                          << n << "\n";
        }
        for (const std::string& w : checker.warnings())
            std::cout << "  warning: " << w << "\n";
    }

    if (!args.getBool("check"))
        return 0;

    const auto& violations = checker.violations();
    if (violations.empty()) {
        if (!args.getBool("quiet"))
            std::cout << "check: all gating invariants hold\n";
        return 0;
    }
    std::uint64_t limit =
        static_cast<std::uint64_t>(args.getInt("max-report"));
    std::uint64_t shown = 0;
    for (const trace::Violation& v : violations) {
        if (limit > 0 && shown++ >= limit) {
            std::cout << "... and " << violations.size() - limit
                      << " more\n";
            break;
        }
        std::cout << "VIOLATION: " << v.toString() << "\n";
    }
    std::cout << "check: " << violations.size()
              << " invariant violation(s)\n";
    return 1;
}
