/**
 * @file
 * wgsim — command-line driver for the warped-gates simulator.
 *
 * Examples:
 *   wgsim --bench hotspot --technique WarpedGates
 *   wgsim --bench all --technique ConvPG --csv results.csv
 *   wgsim --bench sgemm --scheduler gates --pg coordinated-blackout \
 *         --idle-detect 8 --bet 19 --wakeup 6 --adaptive --json out.json
 *   wgsim --bench hotspot --trace=trace.jsonl --trace-format=jsonl
 *   wgsim --bench hotspot --metrics=run.jsonl --metrics-format=jsonl
 *   wgsim --list
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/args.hh"
#include "core/warped_gates.hh"
#include "metrics/exporters.hh"
#include "metrics/registry.hh"
#include "report/export.hh"
#include "serve/snapshot.hh"
#include "sim/session.hh"
#include "trace/sink.hh"

namespace {

using namespace wg;

/** Resolve a --technique name; exits on garbage. */
bool
findTechnique(const std::string& name, Technique& out)
{
    for (Technique t : allTechniques()) {
        if (name == techniqueName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

bool
findScheduler(const std::string& name, SchedulerPolicy& out)
{
    for (SchedulerPolicy p : {SchedulerPolicy::TwoLevel,
                              SchedulerPolicy::Gates,
                              SchedulerPolicy::Gto}) {
        if (name == schedulerPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

bool
findPolicy(const std::string& name, PgPolicy& out)
{
    for (PgPolicy p : {PgPolicy::None, PgPolicy::Conventional,
                       PgPolicy::NaiveBlackout,
                       PgPolicy::CoordinatedBlackout}) {
        if (name == pgPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

/** The whole command line, declaratively (drives parsing and --help). */
constexpr FlagSpec kFlags[] = {
    {"bench", FlagKind::String, "hotspot",
     "benchmark name, or 'all' for the full suite"},
    {"technique", FlagKind::String, "WarpedGates",
     "preset: Baseline|ConvPG|GATES|NaiveBlackout|CoordBlackout|"
     "WarpedGates"},
    {"scheduler", FlagKind::String, "",
     "override scheduler: two-level|gates|gto"},
    {"pg", FlagKind::String, "",
     "override gating policy: none|conventional|naive-blackout|"
     "coordinated-blackout"},
    {"adaptive", FlagKind::Bool, "",
     "override: enable adaptive idle detect"},
    {"gate-sfu", FlagKind::Bool, "", "extension: gate the SFU block too"},
    {"idle-detect", FlagKind::Int, "5", "idle-detect window (cycles)"},
    {"bet", FlagKind::Int, "14", "break-even time (cycles)"},
    {"wakeup", FlagKind::Int, "3", "wakeup delay (cycles)"},
    {"sms", FlagKind::Int, "6", "number of SMs to simulate"},
    {"seed", FlagKind::Int, "1", "experiment seed"},
    {"no-fastforward", FlagKind::Bool, "",
     "disable the event-horizon fast-forward and step every cycle "
     "(bit-identical results, slower; for cross-checking)"},
    {"csv", FlagKind::String, "", "append CSV rows to this file"},
    {"json", FlagKind::String, "", "write a JSON report to this file"},
    {"list", FlagKind::Bool, "", "list the benchmark suite and exit"},
    {"quiet", FlagKind::Bool, "", "suppress the human-readable summary"},
    {"serial", FlagKind::Bool, "",
     "run simulations serially instead of on the shared thread pool "
     "(results are identical)"},
    {"trace", FlagKind::String, "",
     "record a cycle-level event trace to this file (single benchmark "
     "only)"},
    {"trace-format", FlagKind::String, "jsonl",
     "trace serialisation: chrome|jsonl|csv"},
    {"trace-sm", FlagKind::Int, "-1",
     "record only this SM id (-1 = every SM)"},
    {"metrics", FlagKind::String, "",
     "write epoch time-series + final metric registry to this file "
     "(single benchmark only)"},
    {"metrics-format", FlagKind::String, "jsonl",
     "metrics serialisation: csv|jsonl|prom"},
    {"profile", FlagKind::Bool, "",
     "self-profile: include wall-clock phase timers and pool stats "
     "(profile.*) in the metrics registry"},
    {"checkpoint-at", FlagKind::Int, "0",
     "pause at this cycle (epoch boundaries by convention) and write "
     "the snapshot named by --checkpoint (single benchmark only)"},
    {"checkpoint", FlagKind::String, "",
     "snapshot file to write at --checkpoint-at"},
    {"resume", FlagKind::String, "",
     "resume a run from this snapshot file; the snapshot pins the "
     "benchmark/technique/options, so identity flags are ignored — "
     "re-specify --trace/--metrics exactly as on the captured run"},
};

/** Slurp @p path; @return false when the file cannot be read. */
bool
readFile(const std::string& path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("wgsim",
                   "Warped Gates simulator driver (MICRO'13 repro)",
                   kFlags);
    if (!args.parse(argc, argv))
        return args.helpRequested() ? 0 : 2;

    // --profile wall clock; opt-in, excluded from byte-identity.
    const auto wall_start = std::chrono::steady_clock::now(); // wglint:allow(D1)

    if (args.getBool("list")) {
        Table table("benchmark suite (paper Section 7.1)");
        table.header({"name", "INT", "FP", "SFU", "LDST", "warps"});
        for (const auto& p : benchmarkSuite()) {
            table.row({p.name, Table::pct(p.fracInt, 0),
                       Table::pct(p.fracFp, 0), Table::pct(p.fracSfu, 0),
                       Table::pct(p.fracLdst, 0),
                       std::to_string(p.residentWarps)});
        }
        table.print();
        return 0;
    }

    Technique tech = Technique::Baseline;
    if (!findTechnique(args.getString("technique"), tech)) {
        std::fprintf(stderr, "unknown technique '%s'\n",
                     args.getString("technique").c_str());
        return 2;
    }

    ExperimentOptions opts;
    opts.numSms = static_cast<unsigned>(args.getInt("sms"));
    opts.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    opts.idleDetect = static_cast<Cycle>(args.getInt("idle-detect"));
    opts.breakEven = static_cast<Cycle>(args.getInt("bet"));
    opts.wakeupDelay = static_cast<Cycle>(args.getInt("wakeup"));

    // The run's identity: the (bench, technique, options) cell plus the
    // config overrides. A written checkpoint records exactly this block
    // so a later `--resume` can rebuild the same config and workload.
    serve::wire::SnapshotIdentity ident;
    ident.bench = args.getString("bench");
    ident.technique = tech;
    ident.options = opts;
    if (args.given("scheduler")) {
        SchedulerPolicy p;
        if (!findScheduler(args.getString("scheduler"), p)) {
            std::fprintf(stderr, "unknown scheduler '%s'\n",
                         args.getString("scheduler").c_str());
            return 2;
        }
        ident.schedulerOverride = args.getString("scheduler");
    }
    if (args.given("pg")) {
        PgPolicy p;
        if (!findPolicy(args.getString("pg"), p)) {
            std::fprintf(stderr, "unknown pg policy '%s'\n",
                         args.getString("pg").c_str());
            return 2;
        }
        ident.pgOverride = args.getString("pg");
    }
    ident.adaptiveOverride = args.getBool("adaptive");
    ident.gateSfuOverride = args.getBool("gate-sfu");

    const bool resuming = args.given("resume");
    const Cycle checkpoint_at =
        args.getInt("checkpoint-at") > 0
            ? static_cast<Cycle>(args.getInt("checkpoint-at"))
            : 0;
    const bool checkpointing =
        args.given("checkpoint") || args.given("checkpoint-at");
    if (checkpointing &&
        (!args.given("checkpoint") || checkpoint_at == 0)) {
        std::fprintf(stderr,
                     "wgsim: --checkpoint and a positive "
                     "--checkpoint-at must be given together\n");
        return 2;
    }

    // On resume the snapshot document is authoritative for the run's
    // identity; only observer flags (--trace/--metrics) and
    // --no-fastforward (unobservable in results) still apply.
    GpuSnapshot resume_snap;
    if (resuming) {
        const std::string path = args.getString("resume");
        std::string text;
        if (!readFile(path, text)) {
            std::fprintf(stderr, "wgsim: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        serve::Json doc;
        std::string error;
        if (!serve::Json::parse(text, doc, error,
                                serve::wire::snapshotJsonLimits()) ||
            !serve::wire::parseSnapshotDoc(doc, ident, resume_snap,
                                           error)) {
            std::fprintf(stderr, "wgsim: %s: %s\n", path.c_str(),
                         error.c_str());
            return 2;
        }
        bool known_bench = false;
        for (const std::string& b : benchmarkNames())
            known_bench = known_bench || b == ident.bench;
        if (!known_bench) {
            std::fprintf(stderr, "wgsim: %s: unknown benchmark '%s'\n",
                         path.c_str(), ident.bench.c_str());
            return 2;
        }
    }

    GpuConfig config;
    {
        std::string error;
        if (!serve::wire::snapshotConfig(ident, config, error)) {
            std::fprintf(stderr, "wgsim: %s\n", error.c_str());
            return 2;
        }
    }
    if (args.getBool("no-fastforward"))
        config.sm.fastForward = false;

    std::vector<std::string> benches;
    if (!resuming && args.getString("bench") == "all")
        benches = benchmarkNames();
    else
        benches.push_back(ident.bench);
    if ((checkpointing || resuming) && benches.size() != 1) {
        std::fprintf(stderr,
                     "--checkpoint/--resume work on one benchmark per "
                     "run; pick a single --bench\n");
        return 2;
    }

    trace::SinkFormat trace_format = trace::SinkFormat::Jsonl;
    if (!trace::parseSinkFormat(args.getString("trace-format"),
                                trace_format)) {
        std::fprintf(stderr, "unknown trace format '%s'\n",
                     args.getString("trace-format").c_str());
        return 2;
    }
    const bool tracing = args.given("trace");
    if (tracing && benches.size() != 1) {
        std::fprintf(stderr,
                     "--trace records one benchmark per file; pick a "
                     "single --bench\n");
        return 2;
    }
    trace::RecorderConfig trace_config;
    trace_config.smFilter = args.getInt("trace-sm");
    trace::Collector collector(trace_config);

    metrics::MetricsFormat metrics_format = metrics::MetricsFormat::Jsonl;
    if (!metrics::parseMetricsFormat(args.getString("metrics-format"),
                                     metrics_format)) {
        std::fprintf(stderr, "unknown metrics format '%s'\n",
                     args.getString("metrics-format").c_str());
        return 2;
    }
    const bool metering = args.given("metrics");
    const bool profiling = args.getBool("profile");
    if ((metering || profiling) && benches.size() != 1) {
        std::fprintf(stderr,
                     "--metrics/--profile record one benchmark per "
                     "run; pick a single --bench\n");
        return 2;
    }
    metrics::Collector mcollector;
    metrics::Collector* mets =
        (metering || profiling) ? &mcollector : nullptr;

    std::ostringstream csv;
    csv << csvHeader() << "\n";

    // Schedule every benchmark's simulation on the shared pool (each
    // one additionally fans its per-SM jobs into the same pool), then
    // report in suite order. --serial keeps everything on this thread;
    // either way the results are bit-identical.
    ThreadPool* pool =
        args.getBool("serial") ? nullptr : &ThreadPool::global();
    std::vector<SimResult> results;
    results.reserve(benches.size());
    trace::Collector* coll = tracing ? &collector : nullptr;
    if (checkpointing || resuming) {
        // Single-benchmark resumable path: open (or restore) a
        // SimSession, optionally pause at the checkpoint cycle and
        // write the snapshot instead of finishing.
        const BenchmarkProfile& profile = findBenchmark(benches[0]);
        std::unique_ptr<SimSession> session;
        if (resuming) {
            std::string error;
            session = SimSession::restore(resume_snap, profile, config,
                                          pool, coll, mets, &error);
            if (session == nullptr) {
                std::fprintf(stderr, "wgsim: %s: %s\n",
                             args.getString("resume").c_str(),
                             error.c_str());
                return 2;
            }
        } else {
            session = std::make_unique<SimSession>(
                SimSession::open(profile, config, pool, coll, mets));
        }
        if (checkpointing) {
            session->runUntil(checkpoint_at);
            if (!session->done()) {
                const std::string out = args.getString("checkpoint");
                writeFile(out, serve::wire::snapshotDoc(
                                   ident, session->snapshot())
                                       .dump() +
                                   "\n");
                inform("wrote ", out, " (checkpoint at cycle ",
                       checkpoint_at, ")");
                return 0;
            }
            inform("benchmark drained before cycle ", checkpoint_at,
                   "; no checkpoint written, finishing normally");
        }
        results.push_back(session->result());
    } else if (pool == nullptr) {
        Gpu gpu(config);
        for (const std::string& bench : benches)
            results.push_back(
                gpu.run(findBenchmark(bench), nullptr, coll, mets));
    } else {
        Gpu gpu(config);
        std::vector<std::future<SimResult>> futures;
        futures.reserve(benches.size());
        for (const std::string& bench : benches) {
            const BenchmarkProfile& profile = findBenchmark(bench);
            futures.push_back(
                pool->submit([&gpu, &profile, pool, coll, mets] {
                    return gpu.run(profile, pool, coll, mets);
                }));
        }
        results = pool->waitAll(futures);
    }

    std::string json;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const std::string& bench = benches[i];
        const SimResult& r = results[i];
        if (!args.getBool("quiet"))
            printSummary(std::cout, bench, r);
        csv << toCsvRow(bench, r) << "\n";
        json = toJson(bench, r); // JSON export keeps the last result
    }

    {
        metrics::PhaseTimers::Scope timer(
            profiling ? &mcollector.profile : nullptr, "export");
        if (args.given("csv")) {
            writeFile(args.getString("csv"), csv.str());
            inform("wrote ", args.getString("csv"));
        }
        if (args.given("json") && !json.empty()) {
            writeFile(args.getString("json"), json);
            inform("wrote ", args.getString("json"));
        }
        if (tracing) {
            trace::writeTraceFile(args.getString("trace"), collector,
                                  trace_format);
            inform("wrote ", args.getString("trace"), " (",
                   collector.totalEvents(), " events, ",
                   collector.totalOverwritten(), " lost to wrap)");
        }
    }

    if (metering || profiling) {
        StatSet registry = metrics::toStatSet(results[0]);
        const double elapsed =
            std::chrono::duration<double>(
                // wglint:allow(D1): profiling wall clock (opt-in)
                std::chrono::steady_clock::now() - wall_start)
                .count();
        PoolStats pool_stats = ThreadPool::global().stats();
        if (profiling) {
            // Wall-clock self-profiling is opt-in: these values differ
            // between otherwise-identical runs, so including them by
            // default would break the metrics files' byte-identity.
            mcollector.profile.publish(registry);
            const unsigned threads = ThreadPool::global().size();
            registry.set("profile.elapsedSeconds", elapsed);
            registry.set("profile.pool.threads", threads);
            registry.set("profile.pool.tasksExecuted",
                         static_cast<double>(pool_stats.tasksExecuted));
            registry.set("profile.pool.busySeconds",
                         pool_stats.busySeconds);
            registry.set("profile.pool.utilization",
                         elapsed > 0.0 ? pool_stats.busySeconds /
                                             (elapsed * threads)
                                       : 0.0);
        }
        if (metering) {
            metrics::writeMetricsFile(args.getString("metrics"),
                                      &mcollector, registry,
                                      metrics_format);
            inform("wrote ", args.getString("metrics"), " (",
                   mcollector.totalSamples(), " epoch samples, ",
                   registry.entries().size(), " metrics)");
        }
        if (profiling && !args.getBool("quiet")) {
            Table table("self-profile (wall-clock)");
            table.header({"phase", "seconds"});
            for (const auto& [phase, secs] :
                 mcollector.profile.seconds())
                table.row({phase, Table::num(secs, 3)});
            table.row({"total elapsed", Table::num(elapsed, 3)});
            table.row({"pool busy (all tasks)",
                       Table::num(pool_stats.busySeconds, 3)});
            table.print();
        }
    }
    return 0;
}
