/**
 * @file
 * wgctl — client for the wgservd daemon.
 *
 * Usage: wgctl <command> --port N [flags]
 *
 *   submit   submit a sweep; with --wait, block and print the results
 *            exactly as `wgsim` would print them offline
 *   status   show one job (--id) or every job
 *   watch    stream a job live: per-cell epoch frames, progress with
 *            ETA, and the terminal result; --metrics re-exports the
 *            streamed bytes as a wgmetrics jsonl file (single-cell
 *            jobs) that is byte-identical to `wgsim --metrics`
 *   result   fetch and print a finished job's results
 *   checkpoint  snapshot a job (any state): its sweep plus every
 *            completed cell, as a document `submit --resume` replays —
 *            on this daemon or another one
 *   cancel   cancel a queued or running job
 *   stats    print the daemon's serve.* gauges
 *   drain    ask the daemon to finish everything and shut down
 *
 * Examples:
 *   wgctl submit --port 7421 --bench hotspot --technique WarpedGates \
 *         --wait
 *   wgctl submit --port 7421 --bench all --technique Baseline,GATES
 *   wgctl watch --port 7421 --id j1 --metrics live.jsonl
 *   wgctl checkpoint --port 7421 --id j1 --out job.ckpt.json
 *   wgctl submit --port 7422 --resume job.ckpt.json --wait
 *   wgctl status --port 7421
 *   wgctl drain --port 7421
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "metrics/exporters.hh"
#include "metrics/registry.hh"
#include "report/export.hh"
#include "serve/client.hh"

namespace {

using namespace wg;

constexpr FlagSpec kFlags[] = {
    {"port", FlagKind::Int, "7421", "daemon port on loopback"},
    {"bench", FlagKind::String, "hotspot",
     "comma-separated benchmarks, or 'all' for the full suite"},
    {"technique", FlagKind::String, "WarpedGates",
     "comma-separated presets, or 'all': Baseline|ConvPG|GATES|"
     "NaiveBlackout|CoordBlackout|WarpedGates"},
    {"id", FlagKind::String, "",
     "job id (status/watch/result/cancel)"},
    {"priority", FlagKind::Int, "0", "submit priority (higher first)"},
    {"sms", FlagKind::Int, "6", "number of SMs to simulate"},
    {"seed", FlagKind::Int, "1", "experiment seed"},
    {"idle-detect", FlagKind::Int, "5", "idle-detect window (cycles)"},
    {"bet", FlagKind::Int, "14", "break-even time (cycles)"},
    {"wakeup", FlagKind::Int, "3", "wakeup delay (cycles)"},
    {"wait", FlagKind::Bool, "",
     "submit: wait for completion and print the results"},
    {"timeout-sec", FlagKind::Int, "600",
     "deadline for --wait / drain / slow responses"},
    {"quiet", FlagKind::Bool, "", "suppress the human-readable summary"},
    {"csv", FlagKind::String, "", "append CSV rows to this file"},
    {"json", FlagKind::String, "", "write a JSON report to this file"},
    {"metrics", FlagKind::String, "",
     "write the final metric registry (jsonl) to this file "
     "(single-cell results only; wgreport-comparable)"},
    {"out", FlagKind::String, "",
     "checkpoint: write the job snapshot to this file (default "
     "stdout)"},
    {"resume", FlagKind::String, "",
     "submit: resubmit a job snapshot file (from `wgctl checkpoint`); "
     "its completed cells seed the daemon's cache so only unfinished "
     "cells recompute"},
};

/** Slurp @p path; @return false when the file cannot be read. */
bool
readFile(const std::string& path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

std::vector<std::string>
splitCommas(const std::string& s)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream is(s);
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

bool
buildSpec(const ArgParser& args, SweepSpec& spec)
{
    std::vector<std::string> benches;
    if (args.getString("bench") == "all")
        benches = benchmarkNames();
    else
        benches = splitCommas(args.getString("bench"));

    std::vector<Technique> techniques;
    if (args.getString("technique") == "all") {
        techniques = allTechniques();
    } else {
        for (const std::string& name :
             splitCommas(args.getString("technique"))) {
            Technique t;
            if (!serve::wire::parseTechnique(name, t)) {
                std::fprintf(stderr, "wgctl: unknown technique '%s'\n",
                             name.c_str());
                return false;
            }
            techniques.push_back(t);
        }
    }

    // Options ride along explicitly so the daemon's own defaults can
    // never change what this command line means.
    ExperimentOptions opts;
    opts.numSms = static_cast<unsigned>(args.getInt("sms"));
    opts.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    opts.idleDetect = static_cast<Cycle>(args.getInt("idle-detect"));
    opts.breakEven = static_cast<Cycle>(args.getInt("bet"));
    opts.wakeupDelay = static_cast<Cycle>(args.getInt("wakeup"));

    spec = SweepSpec(std::move(benches), std::move(techniques), opts);
    return true;
}

/**
 * Print/export fetched cells exactly as wgsim does for an offline run
 * of the same sweep: per-cell summary, CSV rows, JSON of the last
 * cell, metrics registry of the only cell.
 */
int
emitCells(const ArgParser& args,
          const std::vector<serve::wire::ResultCell>& cells)
{
    std::ostringstream csv;
    csv << csvHeader() << "\n";
    std::string json;
    for (const serve::wire::ResultCell& cell : cells) {
        if (!args.getBool("quiet"))
            printSummary(std::cout, cell.bench, cell.result);
        csv << toCsvRow(cell.bench, cell.result) << "\n";
        json = toJson(cell.bench, cell.result);
    }
    if (args.given("csv")) {
        writeFile(args.getString("csv"), csv.str());
        inform("wrote ", args.getString("csv"));
    }
    if (args.given("json") && !json.empty()) {
        writeFile(args.getString("json"), json);
        inform("wrote ", args.getString("json"));
    }
    if (args.given("metrics")) {
        if (cells.size() != 1) {
            std::fprintf(stderr,
                         "wgctl: --metrics exports one cell per file; "
                         "this job has %zu\n",
                         cells.size());
            return 1;
        }
        StatSet registry = metrics::toStatSet(cells[0].result);
        metrics::writeMetricsFile(args.getString("metrics"), nullptr,
                                  registry,
                                  metrics::MetricsFormat::Jsonl);
        inform("wrote ", args.getString("metrics"), " (",
               registry.entries().size(), " metrics)");
    }
    return 0;
}

void
printStatusTable(const std::vector<serve::JobStatus>& jobs)
{
    Table table("jobs");
    table.header({"id", "state", "prio", "cells", "submit#", "start#",
                  "error"});
    for (const serve::JobStatus& s : jobs) {
        table.row({s.id, serve::jobStateName(s.state),
                   std::to_string(s.priority),
                   std::to_string(s.completedCells) + "/" +
                       std::to_string(s.totalCells),
                   std::to_string(s.submitSeq),
                   std::to_string(s.startSeq), s.error});
    }
    table.print();
}

int
fail(const std::string& error)
{
    std::fprintf(stderr, "wgctl: %s\n", error.c_str());
    return 1;
}

/**
 * Stream one job live until its terminal result frame. With --metrics,
 * the meta/epoch/final `data` bytes are concatenated into a wgmetrics
 * jsonl file that is byte-identical to an offline `wgsim --metrics`
 * export of the same cell (single-cell jobs only — the jsonl format
 * holds exactly one series).
 */
int
watchJob(const ArgParser& args, serve::Client& client, int timeoutMs)
{
    if (!args.given("id"))
        return fail("watch requires --id");
    const std::string id = args.getString("id");
    const bool quiet = args.getBool("quiet");
    std::string error;
    if (!client.subscribe(id, error))
        return fail(error);
    std::string jsonl;
    std::size_t maxCell = 0;
    std::size_t epochFrames = 0;
    serve::Frame frame;
    for (;;) {
        if (!client.nextFrame(frame, timeoutMs, error))
            return fail(error);
        switch (frame.kind) {
          case serve::FrameKind::Meta:
            maxCell = std::max(maxCell, frame.cell);
            if (!quiet)
                std::printf("%s cell %zu: %s/%s\n", id.c_str(),
                            frame.cell, frame.bench.c_str(),
                            frame.technique.c_str());
            jsonl += frame.data;
            jsonl += '\n';
            break;
          case serve::FrameKind::Epoch:
            ++epochFrames;
            jsonl += frame.data;
            jsonl += '\n';
            break;
          case serve::FrameKind::Final:
            jsonl += frame.data;
            jsonl += '\n';
            break;
          case serve::FrameKind::Progress:
            if (!quiet) {
                if (frame.etaMs >= 0.0)
                    std::printf("%s %zu/%zu cells (eta %.0f ms)\n",
                                id.c_str(), frame.completedCells,
                                frame.totalCells, frame.etaMs);
                else
                    std::printf("%s %zu/%zu cells\n", id.c_str(),
                                frame.completedCells,
                                frame.totalCells);
            }
            break;
          case serve::FrameKind::Result: {
            if (!quiet)
                std::printf("%s %s (%zu epoch frames, %llu dropped)\n",
                            id.c_str(), frame.state.c_str(),
                            epochFrames,
                            static_cast<unsigned long long>(
                                frame.droppedFrames));
            const bool done = frame.state == "done";
            if (!done && !frame.error.empty())
                std::fprintf(stderr, "wgctl: %s\n",
                             frame.error.c_str());
            if (args.given("metrics")) {
                if (!done)
                    return fail("job " + id + " finished as " +
                                frame.state +
                                "; not writing --metrics");
                if (maxCell != 0)
                    return fail(
                        "--metrics exports one cell per file; job " +
                        id + " streamed " +
                        std::to_string(maxCell + 1) + " cells");
                if (frame.droppedFrames != 0)
                    return fail(
                        "stream dropped " +
                        std::to_string(frame.droppedFrames) +
                        " frames; --metrics export would be "
                        "incomplete");
                writeFile(args.getString("metrics"), jsonl);
                inform("wrote ", args.getString("metrics"), " (",
                       epochFrames, " epoch lines)");
            }
            return done ? 0 : 1;
          }
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("wgctl",
                   "client for the wgservd simulation daemon", kFlags);
    if (!args.parse(argc, argv))
        return args.helpRequested() ? 0 : 2;
    if (args.positional().size() != 1) {
        std::fprintf(stderr,
                     "usage: wgctl "
                     "submit|status|watch|result|checkpoint|cancel|"
                     "stats|drain [flags]\n%s",
                     args.usage().c_str());
        return 2;
    }
    const std::string command = args.positional()[0];
    const int timeout_ms =
        static_cast<int>(args.getInt("timeout-sec")) * 1000;

    serve::Client client;
    std::string error;
    if (!client.connect(
            static_cast<std::uint16_t>(args.getInt("port")), 2000,
            error))
        return fail("cannot reach wgservd on port " +
                    std::to_string(args.getInt("port")) + ": " + error);
    client.setRequestTimeout(timeout_ms);

    if (command == "submit") {
        std::string id;
        bool deduped = false;
        if (args.given("resume")) {
            std::string text;
            if (!readFile(args.getString("resume"), text))
                return fail("cannot read " + args.getString("resume"));
            serve::Json doc;
            std::uint64_t seeded = 0;
            if (!serve::Json::parse(text, doc, error))
                return fail(args.getString("resume") + ": " + error);
            if (!client.submitSnapshot(
                    doc, static_cast<unsigned>(args.getInt("priority")),
                    id, deduped, seeded, error))
                return fail(args.getString("resume") + ": " + error);
            if (!args.getBool("quiet"))
                inform("seeded ", seeded, " completed cells from ",
                       args.getString("resume"));
        } else {
            SweepSpec spec({}, {});
            if (!buildSpec(args, spec))
                return 2;
            if (!client.submit(
                    spec, static_cast<unsigned>(args.getInt("priority")),
                    id, deduped, error))
                return fail(error);
        }
        if (!args.getBool("wait")) {
            std::printf("%s%s\n", id.c_str(),
                        deduped ? " (deduped)" : "");
            return 0;
        }
        serve::JobStatus status;
        if (!client.waitForJob(id, 100, timeout_ms, status, error))
            return fail(error);
        if (status.state != serve::JobState::Done)
            return fail("job " + id + " finished as " +
                        serve::jobStateName(status.state) +
                        (status.error.empty() ? "" : ": " + status.error));
        std::vector<serve::wire::ResultCell> cells;
        if (!client.results(id, cells, error))
            return fail(error);
        return emitCells(args, cells);
    }
    if (command == "status") {
        if (args.given("id")) {
            serve::JobStatus status;
            if (!client.status(args.getString("id"), status, error))
                return fail(error);
            printStatusTable({status});
            return 0;
        }
        std::vector<serve::JobStatus> jobs;
        if (!client.listJobs(jobs, error))
            return fail(error);
        printStatusTable(jobs);
        return 0;
    }
    if (command == "watch")
        return watchJob(args, client, timeout_ms);
    if (command == "result") {
        if (!args.given("id"))
            return fail("result requires --id");
        std::vector<serve::wire::ResultCell> cells;
        if (!client.results(args.getString("id"), cells, error))
            return fail(error);
        return emitCells(args, cells);
    }
    if (command == "checkpoint") {
        if (!args.given("id"))
            return fail("checkpoint requires --id");
        serve::Json snapshot;
        if (!client.checkpoint(args.getString("id"), snapshot, error))
            return fail(error);
        const std::string text = snapshot.dump() + "\n";
        if (args.given("out")) {
            writeFile(args.getString("out"), text);
            inform("wrote ", args.getString("out"));
        } else {
            std::fputs(text.c_str(), stdout);
        }
        return 0;
    }
    if (command == "cancel") {
        if (!args.given("id"))
            return fail("cancel requires --id");
        if (!client.cancel(args.getString("id"), error))
            return fail(error);
        std::printf("cancelled %s\n", args.getString("id").c_str());
        return 0;
    }
    if (command == "stats") {
        std::map<std::string, double> stats;
        if (!client.stats(stats, error))
            return fail(error);
        Table table("wgservd gauges");
        table.header({"stat", "value"});
        for (const auto& [name, value] : stats)
            table.row({name, metrics::formatMetricValue(value)});
        table.print();
        return 0;
    }
    if (command == "drain") {
        if (!client.drain(timeout_ms, error))
            return fail(error);
        std::printf("drained\n");
        return 0;
    }
    std::fprintf(stderr, "wgctl: unknown command '%s'\n",
                 command.c_str());
    return 2;
}
