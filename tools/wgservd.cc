/**
 * @file
 * wgservd — simulation-as-a-service daemon.
 *
 * Serves the line-delimited JSON protocol (and, on the same port,
 * OpenMetrics scrapes for any HTTP GET) on loopback. Jobs run through
 * the shared ExperimentRunner cache on the process thread pool, so
 * concurrent sweeps dedup both whole jobs (admission) and individual
 * cells (single-flight cache).
 *
 * Examples:
 *   wgservd --port 7421
 *   wgservd --port 0                # pick a free port, printed on stdout
 *   wgservd --cache-entries 64 --queue-capacity 512
 *
 * SIGTERM/SIGINT drain gracefully: stop admitting, finish every queued
 * and running job, then exit (DESIGN.md §15).
 */

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include "common/args.hh"
#include "common/logging.hh"
#include "core/experiment.hh"
#include "serve/server.hh"

namespace {

using namespace wg;

constexpr FlagSpec kFlags[] = {
    {"port", FlagKind::Int, "7421",
     "loopback TCP port (0 = pick a free one; printed on stdout)"},
    {"queue-capacity", FlagKind::Int, "256",
     "max queued jobs before submissions are rejected"},
    {"max-concurrent", FlagKind::Int, "2",
     "jobs dispatched concurrently (each fans per-SM work into the "
     "pool)"},
    {"priorities", FlagKind::Int, "4",
     "number of priority levels (valid priorities: 0..n-1)"},
    {"cache-entries", FlagKind::Int, "0",
     "result-cache entry cap (0 = unlimited)"},
    {"cache-mb", FlagKind::Int, "0",
     "result-cache size cap in MiB (0 = unlimited)"},
    {"sms", FlagKind::Int, "6",
     "default SMs per simulation (jobs may override)"},
    {"seed", FlagKind::Int, "1", "default experiment seed"},
    {"idle-detect", FlagKind::Int, "5",
     "default idle-detect window (cycles)"},
    {"bet", FlagKind::Int, "14", "default break-even time (cycles)"},
    {"wakeup", FlagKind::Int, "3", "default wakeup delay (cycles)"},
    {"serial", FlagKind::Bool, "",
     "run simulations serially instead of on the shared thread pool "
     "(results are identical)"},
    {"log-file", FlagKind::String, "",
     "append structured jsonl events (submits, dispatches, "
     "completions) to this file"},
    {"log-level", FlagKind::String, "info",
     "event-log threshold: debug|info|warn|error"},
};

/**
 * SIGTERM/SIGINT self-pipe: the handler only write()s one byte (the
 * single async-signal-safe thing to do); the server's poll loop owns
 * the actual drain.
 */
volatile sig_atomic_t g_wake_fd = -1;

void
onSignal(int)
{
    if (g_wake_fd >= 0) {
        char byte = 't';
        (void)!::write(g_wake_fd, &byte, 1);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("wgservd",
                   "Warped Gates simulation daemon (JSON-over-TCP + "
                   "OpenMetrics)",
                   kFlags);
    if (!args.parse(argc, argv))
        return args.helpRequested() ? 0 : 2;

    ExperimentOptions opts;
    opts.numSms = static_cast<unsigned>(args.getInt("sms"));
    opts.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    opts.idleDetect = static_cast<Cycle>(args.getInt("idle-detect"));
    opts.breakEven = static_cast<Cycle>(args.getInt("bet"));
    opts.wakeupDelay = static_cast<Cycle>(args.getInt("wakeup"));

    ThreadPool* pool =
        args.getBool("serial") ? nullptr : &ThreadPool::global();
    ExperimentRunner runner(opts, pool);
    CacheLimits limits;
    limits.maxEntries =
        static_cast<std::size_t>(args.getInt("cache-entries"));
    limits.maxBytes =
        static_cast<std::size_t>(args.getInt("cache-mb")) << 20;
    runner.setCacheLimits(limits);

    serve::ServerConfig config;
    config.port = static_cast<std::uint16_t>(args.getInt("port"));
    config.jobs.queueCapacity =
        static_cast<std::size_t>(args.getInt("queue-capacity"));
    config.jobs.maxConcurrentJobs =
        static_cast<unsigned>(args.getInt("max-concurrent"));
    config.jobs.numPriorities =
        static_cast<unsigned>(args.getInt("priorities"));

    serve::EventLog events;
    if (args.given("log-file")) {
        serve::EventLog::Options logOpts;
        if (!serve::EventLog::parseLevel(args.getString("log-level"),
                                         logOpts.level)) {
            std::fprintf(stderr,
                         "wgservd: unknown --log-level '%s' "
                         "(debug|info|warn|error)\n",
                         args.getString("log-level").c_str());
            return 2;
        }
        std::string logError;
        if (!events.open(args.getString("log-file"), logOpts,
                         logError)) {
            std::fprintf(stderr, "wgservd: %s\n", logError.c_str());
            return 1;
        }
        config.jobs.events = &events;
        // Tee the process logger (warn/inform) into the event log so
        // operational noise lands in one structured place.
        setLogHook([&events](LogLevel level, const std::string& msg) {
            serve::EventLog::Level mapped =
                serve::EventLog::Level::Info;
            if (level == LogLevel::Warn)
                mapped = serve::EventLog::Level::Warn;
            else if (level != LogLevel::Inform)
                mapped = serve::EventLog::Level::Error;
            events.log(mapped, "log", {{"message", msg}});
        });
    }

    serve::Server server(runner, config);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "wgservd: %s\n", error.c_str());
        return 1;
    }

    int sigpipe[2];
    if (::pipe(sigpipe) != 0) {
        std::fprintf(stderr, "wgservd: pipe failed\n");
        return 1;
    }
    g_wake_fd = sigpipe[1];
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    // Scripts parse this line for the port; keep the format stable.
    std::printf("wgservd: listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    if (!server.serve(sigpipe[0], error)) {
        std::fprintf(stderr, "wgservd: %s\n", error.c_str());
        return 1;
    }

    // Jobs are drained; now quiesce the pool itself so no nested task
    // is mid-flight when the process exits.
    if (pool != nullptr)
        pool->drain();
    inform("wgservd: drained, exiting");
    setLogHook({}); // the hook references `events`; detach before exit
    return 0;
}
