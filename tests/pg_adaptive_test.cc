/**
 * @file
 * Unit tests for the adaptive idle-detect regulator (Section 5.1).
 */

#include <gtest/gtest.h>

#include "pg/adaptive.hh"

namespace wg {
namespace {

PgParams
params(Cycle init = 5, Cycle min = 5, Cycle max = 10,
       std::uint32_t threshold = 5, std::uint32_t decr_epochs = 4)
{
    PgParams p;
    p.idleDetect = init;
    p.idleDetectMin = min;
    p.idleDetectMax = max;
    p.criticalThreshold = threshold;
    p.decrementEpochs = decr_epochs;
    return p;
}

TEST(Adaptive, StartsAtConfiguredValue)
{
    AdaptiveIdleDetect a(params(7));
    EXPECT_EQ(a.value(), 7u);
}

TEST(Adaptive, InitClampedIntoBounds)
{
    AdaptiveIdleDetect low(params(1));
    EXPECT_EQ(low.value(), 5u);
    AdaptiveIdleDetect high(params(20));
    EXPECT_EQ(high.value(), 10u);
}

TEST(Adaptive, IncrementsWhenOverThreshold)
{
    AdaptiveIdleDetect a(params());
    a.endEpoch(6);
    EXPECT_EQ(a.value(), 6u);
    EXPECT_EQ(a.increments(), 1u);
}

TEST(Adaptive, ExactlyThresholdDoesNotIncrement)
{
    AdaptiveIdleDetect a(params());
    a.endEpoch(5);
    EXPECT_EQ(a.value(), 5u) << "paper: *more than* five per epoch";
}

TEST(Adaptive, BoundedAtMax)
{
    AdaptiveIdleDetect a(params());
    for (int i = 0; i < 20; ++i)
        a.endEpoch(100);
    EXPECT_EQ(a.value(), 10u);
    EXPECT_EQ(a.increments(), 5u) << "saturated increments don't count";
}

TEST(Adaptive, DecrementsOnlyAfterQuietRun)
{
    AdaptiveIdleDetect a(params());
    a.endEpoch(10); // -> 6
    a.endEpoch(0);
    a.endEpoch(0);
    a.endEpoch(0);
    EXPECT_EQ(a.value(), 6u) << "three quiet epochs are not enough";
    a.endEpoch(0);
    EXPECT_EQ(a.value(), 5u) << "fourth quiet epoch decrements";
    EXPECT_EQ(a.decrements(), 1u);
}

TEST(Adaptive, NoisyEpochResetsQuietRun)
{
    AdaptiveIdleDetect a(params());
    a.endEpoch(10); // -> 6
    a.endEpoch(0);
    a.endEpoch(0);
    a.endEpoch(0);
    a.endEpoch(10); // -> 7, quiet run reset
    a.endEpoch(0);
    a.endEpoch(0);
    a.endEpoch(0);
    EXPECT_EQ(a.value(), 7u);
    a.endEpoch(0);
    EXPECT_EQ(a.value(), 6u);
}

TEST(Adaptive, BoundedAtMin)
{
    AdaptiveIdleDetect a(params());
    for (int i = 0; i < 40; ++i)
        a.endEpoch(0);
    EXPECT_EQ(a.value(), 5u);
    EXPECT_EQ(a.decrements(), 0u) << "already at the lower bound";
}

TEST(Adaptive, ReactsFastRecoversSlowly)
{
    // The paper's design goal: one bad epoch raises the window, but it
    // takes decrementEpochs quiet ones to win each step back.
    AdaptiveIdleDetect a(params());
    a.endEpoch(50);
    a.endEpoch(50);
    a.endEpoch(50);
    EXPECT_EQ(a.value(), 8u);
    int epochs_to_recover = 0;
    while (a.value() > 5 && epochs_to_recover < 100) {
        a.endEpoch(0);
        ++epochs_to_recover;
    }
    EXPECT_EQ(epochs_to_recover, 12) << "3 steps x 4 quiet epochs";
}

TEST(AdaptiveDeath, InvertedBoundsAreFatal)
{
    EXPECT_EXIT(AdaptiveIdleDetect(params(5, 10, 5)),
                ::testing::ExitedWithCode(1), "idleDetectMin");
}

/** Property: the value never leaves [min, max] under random inputs. */
class AdaptiveBounds
    : public ::testing::TestWithParam<std::pair<Cycle, Cycle>>
{
};

TEST_P(AdaptiveBounds, ValueStaysBounded)
{
    auto [min, max] = GetParam();
    PgParams p = params(min, min, max);
    AdaptiveIdleDetect a(p);
    std::uint32_t pattern[] = {0, 9, 3, 100, 0, 0, 0, 0, 0, 7};
    for (int round = 0; round < 30; ++round) {
        a.endEpoch(pattern[round % 10]);
        EXPECT_GE(a.value(), min);
        EXPECT_LE(a.value(), max);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, AdaptiveBounds,
    ::testing::Values(std::make_pair<Cycle, Cycle>(5, 10),
                      std::make_pair<Cycle, Cycle>(0, 3),
                      std::make_pair<Cycle, Cycle>(7, 7),
                      std::make_pair<Cycle, Cycle>(1, 20)));

} // namespace
} // namespace wg
