// Golden-fixture tests for the wglint static analyzer. Each rule has a
// violating, a clean, and a suppressed fixture under
// tests/wglint_fixtures/; the linter binary is invoked as a subprocess
// (the same way CI runs it) so exit codes and the jsonl wire format
// are covered, not just the checker internals. D3 fixtures are linted
// one file at a time: the cross-file struct/function index would
// otherwise merge the clean fixture's registrations into the violating
// fixture's catalogue entries and mask the drift.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace
{

struct LintRun
{
    int exitCode = -1;
    std::string output;
};

LintRun
runWglint(const std::string& args)
{
    const std::string cmd =
        std::string(WGLINT_BINARY) + " " + args + " 2>&1";
    LintRun run;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return run;
    std::array<char, 4096> buf{};
    std::size_t n = 0;
    while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0)
        run.output.append(buf.data(), n);
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        run.exitCode = WEXITSTATUS(status);
    return run;
}

std::string
fixture(const std::string& name)
{
    return std::string(WGLINT_FIXTURE_DIR) + "/" + name;
}

/** Count jsonl records attributed to the given rule. */
int
countRule(const std::string& output, const std::string& rule)
{
    const std::string needle = "\"rule\":\"" + rule + "\"";
    int count = 0;
    for (std::size_t pos = output.find(needle);
         pos != std::string::npos;
         pos = output.find(needle, pos + needle.size()))
        ++count;
    return count;
}

int
totalRecords(const std::string& output)
{
    return countRule(output, "D1") + countRule(output, "D2") +
           countRule(output, "D3") + countRule(output, "D4") +
           countRule(output, "D5") + countRule(output, "H1");
}

LintRun
lintFixture(const std::string& name)
{
    return runWglint("--format=jsonl " + fixture(name));
}

} // namespace

TEST(Wglint, D1ViolationFires)
{
    auto run = lintFixture("d1_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D1"), 4) << run.output;
    // `return time(nullptr)` is a free call despite the preceding
    // keyword token.
    EXPECT_NE(run.output.find("'time'"), std::string::npos)
        << run.output;
    EXPECT_EQ(totalRecords(run.output), countRule(run.output, "D1"))
        << run.output;
}

TEST(Wglint, D1CleanIsSilent)
{
    auto run = lintFixture("d1_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D1SuppressionHonored)
{
    auto run = lintFixture("d1_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D1ServeTimeoutSubsetIsExemptUnderServeDir)
{
    // serve/ gets monotonic socket timeouts (steady_clock, sleep_for,
    // sleep_until) without per-line suppressions.
    auto run = lintFixture("serve/d1_scoped_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D1WallClocksStillFireUnderServeDir)
{
    // The scoped exemption is the timeout subset only: wall clocks and
    // entropy under serve/ are violations like anywhere else.
    auto run = lintFixture("serve/d1_scoped_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D1"), 3) << run.output;
    EXPECT_NE(run.output.find("'system_clock'"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("'rand'"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("'random_device'"), std::string::npos)
        << run.output;
}

TEST(Wglint, D1TimeoutIdentsStillFireOutsideServeDir)
{
    // The same idents the serve/ scope exempts are violations in a
    // file that is not under a serve/ directory (d1_violation.cc
    // already covers steady_clock/sleep shapes at top level).
    auto run = lintFixture("d1_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_GE(countRule(run.output, "D1"), 1) << run.output;
}

TEST(Wglint, D2ViolationFires)
{
    auto run = lintFixture("metrics/d2_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_GE(countRule(run.output, "D2"), 2) << run.output;
    EXPECT_EQ(totalRecords(run.output), countRule(run.output, "D2"))
        << run.output;
}

TEST(Wglint, D2CleanIsSilent)
{
    auto run = lintFixture("metrics/d2_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D2SuppressionHonored)
{
    auto run = lintFixture("metrics/d2_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D3ViolationFiresOnBothCataloguePaths)
{
    auto run = lintFixture("d3_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D3"), 3) << run.output;
    // Drift on the registry side, on the merge side, and in the
    // second declarator of a multi-declarator field line.
    EXPECT_NE(run.output.find("appendSmStats"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("merge"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("SmStats::replays"), std::string::npos)
        << run.output;
}

TEST(Wglint, D3CleanIsSilent)
{
    auto run = lintFixture("d3_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D3SuppressionHonored)
{
    auto run = lintFixture("d3_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D4ViolationFires)
{
    auto run = lintFixture("d4_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D4"), 2) << run.output;
}

TEST(Wglint, D4CleanIsSilent)
{
    auto run = lintFixture("d4_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D4SuppressionHonored)
{
    auto run = lintFixture("d4_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D4WireKeyViolationFires)
{
    auto run = lintFixture("serve/d4_wire_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D4"), 2) << run.output;
    EXPECT_NE(run.output.find("job_id"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("dropped_frames"), std::string::npos)
        << run.output;
}

TEST(Wglint, D4WireKeyCleanIsSilent)
{
    auto run = lintFixture("serve/d4_wire_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D4WireKeySuppressionHonored)
{
    auto run = lintFixture("serve/d4_wire_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, H1ViolationFires)
{
    auto run = lintFixture("h1_violation.hh");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "H1"), 2) << run.output;
}

TEST(Wglint, H1CleanIsSilent)
{
    auto run = lintFixture("h1_clean.hh");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, H1SuppressionHonored)
{
    auto run = lintFixture("h1_suppressed.hh");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D5ViolationFires)
{
    // Like D3, D5 fixtures are linted one file at a time so the
    // cross-file index cannot merge the clean fixture's codec bodies
    // into the violating fixture's catalogue entries.
    auto run = lintFixture("d5_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D5"), 4) << run.output;
    // One drift per direction per field: inc lost on restore,
    // liveWarps lost on serialize, done (a second declarator) lost
    // both ways.
    EXPECT_NE(run.output.find(
                  "RngState::inc is not restored in rngStateFromJson"),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("SmSnapshot::liveWarps is not serialized "
                              "in smSnapshotToJson"),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("SmSnapshot::done"), std::string::npos)
        << run.output;
    EXPECT_EQ(totalRecords(run.output), countRule(run.output, "D5"))
        << run.output;
}

TEST(Wglint, D5CleanIsSilent)
{
    auto run = lintFixture("d5_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D5SuppressionHonored)
{
    auto run = lintFixture("d5_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, WholeFixtureTreeFindsEveryRule)
{
    auto run = runWglint("--format=jsonl " +
                         std::string(WGLINT_FIXTURE_DIR));
    EXPECT_EQ(run.exitCode, 1) << run.output;
    // D3/D5 are absent on purpose: linting the whole fixture tree
    // merges each rule's clean codec/registry bodies into the same
    // cross-file index as its violating fixture, masking the drift —
    // which is exactly why those fixtures are linted one at a time.
    for (const char* rule : {"D1", "D2", "D4", "H1"})
        EXPECT_GE(countRule(run.output, rule), 1)
            << rule << "\n" << run.output;
}

TEST(Wglint, JsonlRecordsCarryFixHints)
{
    auto run = lintFixture("d1_violation.cc");
    EXPECT_NE(run.output.find("\"hint\":\""), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("\"line\":"), std::string::npos)
        << run.output;
}

TEST(Wglint, TextFormatPrintsSummary)
{
    auto clean = runWglint("--format=text " + fixture("d1_clean.cc"));
    EXPECT_EQ(clean.exitCode, 0) << clean.output;
    EXPECT_NE(clean.output.find("wglint: clean"), std::string::npos)
        << clean.output;

    auto bad = runWglint("--format=text " + fixture("d1_violation.cc"));
    EXPECT_EQ(bad.exitCode, 1) << bad.output;
    EXPECT_NE(bad.output.find("wglint: FAILED"), std::string::npos)
        << bad.output;
    EXPECT_NE(bad.output.find("hint:"), std::string::npos)
        << bad.output;
}

TEST(Wglint, MissingPathIsUsageError)
{
    auto run = runWglint(fixture("no_such_file.cc"));
    EXPECT_EQ(run.exitCode, 2) << run.output;
}

TEST(Wglint, ListRulesNamesEveryRule)
{
    auto run = runWglint("--list-rules");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    for (const char* rule : {"D1", "D2", "D3", "D4", "D5", "H1"})
        EXPECT_NE(run.output.find(rule), std::string::npos)
            << rule << "\n" << run.output;
}
