// Golden-fixture tests for the wglint static analyzer. Each rule has a
// violating, a clean, and a suppressed fixture under
// tests/wglint_fixtures/; the linter binary is invoked as a subprocess
// (the same way CI runs it) so exit codes and the jsonl wire format
// are covered, not just the checker internals. D3 fixtures are linted
// one file at a time: the cross-file struct/function index would
// otherwise merge the clean fixture's registrations into the violating
// fixture's catalogue entries and mask the drift.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace
{

struct LintRun
{
    int exitCode = -1;
    std::string output;
};

LintRun
runWglint(const std::string& args)
{
    const std::string cmd =
        std::string(WGLINT_BINARY) + " " + args + " 2>&1";
    LintRun run;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return run;
    std::array<char, 4096> buf{};
    std::size_t n = 0;
    while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0)
        run.output.append(buf.data(), n);
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        run.exitCode = WEXITSTATUS(status);
    return run;
}

std::string
fixture(const std::string& name)
{
    return std::string(WGLINT_FIXTURE_DIR) + "/" + name;
}

/** Count jsonl records attributed to the given rule. */
int
countRule(const std::string& output, const std::string& rule)
{
    const std::string needle = "\"rule\":\"" + rule + "\"";
    int count = 0;
    for (std::size_t pos = output.find(needle);
         pos != std::string::npos;
         pos = output.find(needle, pos + needle.size()))
        ++count;
    return count;
}

int
totalRecords(const std::string& output)
{
    return countRule(output, "D1") + countRule(output, "D2") +
           countRule(output, "D3") + countRule(output, "D4") +
           countRule(output, "D5") + countRule(output, "C1") +
           countRule(output, "C2") + countRule(output, "H1");
}

LintRun
lintFixture(const std::string& name)
{
    return runWglint("--format=jsonl " + fixture(name));
}

} // namespace

TEST(Wglint, D1ViolationFires)
{
    auto run = lintFixture("d1_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D1"), 4) << run.output;
    // `return time(nullptr)` is a free call despite the preceding
    // keyword token.
    EXPECT_NE(run.output.find("'time'"), std::string::npos)
        << run.output;
    EXPECT_EQ(totalRecords(run.output), countRule(run.output, "D1"))
        << run.output;
}

TEST(Wglint, D1CleanIsSilent)
{
    auto run = lintFixture("d1_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D1SuppressionHonored)
{
    auto run = lintFixture("d1_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D1ServeTimeoutSubsetIsExemptUnderServeDir)
{
    // serve/ gets monotonic socket timeouts (steady_clock, sleep_for,
    // sleep_until) without per-line suppressions.
    auto run = lintFixture("serve/d1_scoped_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D1WallClocksStillFireUnderServeDir)
{
    // The scoped exemption is the timeout subset only: wall clocks and
    // entropy under serve/ are violations like anywhere else.
    auto run = lintFixture("serve/d1_scoped_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D1"), 3) << run.output;
    EXPECT_NE(run.output.find("'system_clock'"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("'rand'"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("'random_device'"), std::string::npos)
        << run.output;
}

TEST(Wglint, D1TimeoutIdentsStillFireOutsideServeDir)
{
    // The same idents the serve/ scope exempts are violations in a
    // file that is not under a serve/ directory (d1_violation.cc
    // already covers steady_clock/sleep shapes at top level).
    auto run = lintFixture("d1_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_GE(countRule(run.output, "D1"), 1) << run.output;
}

TEST(Wglint, D2ViolationFires)
{
    auto run = lintFixture("metrics/d2_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_GE(countRule(run.output, "D2"), 2) << run.output;
    EXPECT_EQ(totalRecords(run.output), countRule(run.output, "D2"))
        << run.output;
}

TEST(Wglint, D2CleanIsSilent)
{
    auto run = lintFixture("metrics/d2_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D2SuppressionHonored)
{
    auto run = lintFixture("metrics/d2_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D3ViolationFiresOnBothCataloguePaths)
{
    auto run = lintFixture("d3_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D3"), 3) << run.output;
    // Drift on the registry side, on the merge side, and in the
    // second declarator of a multi-declarator field line.
    EXPECT_NE(run.output.find("appendSmStats"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("merge"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("SmStats::replays"), std::string::npos)
        << run.output;
}

TEST(Wglint, D3CleanIsSilent)
{
    auto run = lintFixture("d3_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D3SuppressionHonored)
{
    auto run = lintFixture("d3_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D4ViolationFires)
{
    auto run = lintFixture("d4_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D4"), 2) << run.output;
}

TEST(Wglint, D4CleanIsSilent)
{
    auto run = lintFixture("d4_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D4SuppressionHonored)
{
    auto run = lintFixture("d4_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D4WireKeyViolationFires)
{
    auto run = lintFixture("serve/d4_wire_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D4"), 2) << run.output;
    EXPECT_NE(run.output.find("job_id"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("dropped_frames"), std::string::npos)
        << run.output;
}

TEST(Wglint, D4WireKeyCleanIsSilent)
{
    auto run = lintFixture("serve/d4_wire_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D4WireKeySuppressionHonored)
{
    auto run = lintFixture("serve/d4_wire_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, H1ViolationFires)
{
    auto run = lintFixture("h1_violation.hh");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "H1"), 2) << run.output;
}

TEST(Wglint, H1CleanIsSilent)
{
    auto run = lintFixture("h1_clean.hh");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, H1SuppressionHonored)
{
    auto run = lintFixture("h1_suppressed.hh");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D5ViolationFires)
{
    // Like D3, D5 fixtures are linted one file at a time so the
    // cross-file index cannot merge the clean fixture's codec bodies
    // into the violating fixture's catalogue entries.
    auto run = lintFixture("d5_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D5"), 4) << run.output;
    // One drift per direction per field: inc lost on restore,
    // liveWarps lost on serialize, done (a second declarator) lost
    // both ways.
    EXPECT_NE(run.output.find(
                  "RngState::inc is not restored in rngStateFromJson"),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("SmSnapshot::liveWarps is not serialized "
                              "in smSnapshotToJson"),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("SmSnapshot::done"), std::string::npos)
        << run.output;
    EXPECT_EQ(totalRecords(run.output), countRule(run.output, "D5"))
        << run.output;
}

TEST(Wglint, D5CleanIsSilent)
{
    auto run = lintFixture("d5_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, D5SuppressionHonored)
{
    auto run = lintFixture("d5_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, WholeFixtureTreeFindsEveryRule)
{
    auto run = runWglint("--format=jsonl " +
                         std::string(WGLINT_FIXTURE_DIR));
    EXPECT_EQ(run.exitCode, 1) << run.output;
    // D5 is absent on purpose: linting the whole fixture tree merges
    // the clean codec bodies into the same cross-file index as the
    // violating fixture, masking the drift — which is exactly why the
    // D3/D5 fixtures are linted one at a time. (One D3 survives the
    // merge: PgDomainStats' member-merge drift has no clean twin.)
    for (const char* rule : {"D1", "D2", "D4", "C1", "C2", "H1"})
        EXPECT_GE(countRule(run.output, rule), 1)
            << rule << "\n" << run.output;
}

TEST(Wglint, JsonlRecordsCarryFixHints)
{
    auto run = lintFixture("d1_violation.cc");
    EXPECT_NE(run.output.find("\"hint\":\""), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("\"line\":"), std::string::npos)
        << run.output;
}

TEST(Wglint, TextFormatPrintsSummary)
{
    auto clean = runWglint("--format=text " + fixture("d1_clean.cc"));
    EXPECT_EQ(clean.exitCode, 0) << clean.output;
    EXPECT_NE(clean.output.find("wglint: clean"), std::string::npos)
        << clean.output;

    auto bad = runWglint("--format=text " + fixture("d1_violation.cc"));
    EXPECT_EQ(bad.exitCode, 1) << bad.output;
    EXPECT_NE(bad.output.find("wglint: FAILED"), std::string::npos)
        << bad.output;
    EXPECT_NE(bad.output.find("hint:"), std::string::npos)
        << bad.output;
}

TEST(Wglint, MissingPathIsUsageError)
{
    auto run = runWglint(fixture("no_such_file.cc"));
    EXPECT_EQ(run.exitCode, 2) << run.output;
}

TEST(Wglint, ListRulesNamesEveryRule)
{
    auto run = runWglint("--list-rules");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    for (const char* rule : {"D1", "D2", "D3", "D4", "D5", "C1", "C2",
                             "H1"})
        EXPECT_NE(run.output.find(rule), std::string::npos)
            << rule << "\n" << run.output;
}

// ---------------------------------------------------------------------
// Interprocedural D1: taint crossing function and TU boundaries
// ---------------------------------------------------------------------

TEST(Wglint, XfnInterproceduralD1FlagsCrossFileCaller)
{
    // xfn_caller.cc has no banned identifier anywhere; only the taint
    // chain through xfn_helper.cc can implicate it.
    auto run = runWglint("--format=jsonl " +
                         fixture("xfn/xfn_helper.cc") + " " +
                         fixture("xfn/xfn_caller.cc"));
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D1"), 3) << run.output;
    EXPECT_NE(run.output.find("xfn_caller.cc"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find(
                  "xfnMiddleHop -> xfnEntropyHelper -> rand"),
              std::string::npos)
        << run.output;
}

TEST(Wglint, XfnV1ModeProvablyMissesCrossFunctionTaint)
{
    // The same pair under --no-interprocedural (the per-file v1
    // behaviour) sees only the direct rand() site: the cross-file
    // caller is provably invisible to a per-file scan.
    auto run = runWglint("--no-interprocedural --format=jsonl " +
                         fixture("xfn/xfn_helper.cc") + " " +
                         fixture("xfn/xfn_caller.cc"));
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D1"), 1) << run.output;
    EXPECT_EQ(run.output.find("xfn_caller.cc"), std::string::npos)
        << run.output;
}

TEST(Wglint, XfnSuppressedCallSiteStopsPropagation)
{
    auto run = runWglint("--format=jsonl " +
                         fixture("xfn/xfn_helper.cc") + " " +
                         fixture("xfn/xfn_suppressed.cc"));
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D1"), 2) << run.output;
    EXPECT_EQ(run.output.find("xfn_suppressed.cc"), std::string::npos)
        << run.output;
}

TEST(Wglint, XfnSanctionedSourceDoesNotTaint)
{
    // Suppressing the direct site sanctions the helper; callers in
    // other translation units inherit the reviewed claim.
    auto run = runWglint("--format=jsonl " +
                         fixture("xfn/xfn_sanctioned_helper.cc") + " " +
                         fixture("xfn/xfn_sanctioned_caller.cc"));
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

// ---------------------------------------------------------------------
// C1: raw mutex lock()/unlock() outside RAII wrappers
// ---------------------------------------------------------------------

TEST(Wglint, C1ViolationFires)
{
    auto run = lintFixture("c1_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "C1"), 2) << run.output;
    EXPECT_NE(run.output.find("raw lock() on mutex 'c1v_mu_'"),
              std::string::npos)
        << run.output;
    EXPECT_EQ(totalRecords(run.output), countRule(run.output, "C1"))
        << run.output;
}

TEST(Wglint, C1CleanIsSilent)
{
    auto run = lintFixture("c1_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, C1SuppressionHonored)
{
    auto run = lintFixture("c1_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

// ---------------------------------------------------------------------
// C2: cross-TU lock-discipline drift
// ---------------------------------------------------------------------

TEST(Wglint, C2CrossFileViolationFires)
{
    auto run = lintFixture("c2");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "C2"), 2) << run.output;
    EXPECT_NE(run.output.find("c2_racy.cc"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("unlocked write to 'c2_hits_'"),
              std::string::npos)
        << run.output;
}

TEST(Wglint, C2PerFileLintingMasksCrossFileDrift)
{
    // The racy writer alone is clean — the guarded sibling TU is out
    // of view. This is the drift only the merged index can see, and
    // the reason the C2 fixtures are linted as a directory above.
    auto run = lintFixture("c2/c2_racy.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, C2AnnotatedFieldViolationFires)
{
    // WG_GUARDED_BY alone (no guarded write anywhere) makes the field
    // a candidate.
    auto run = lintFixture("c2/c2_annotated_violation.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "C2"), 1) << run.output;
    EXPECT_NE(run.output.find("'ar_count_'"), std::string::npos)
        << run.output;
}

TEST(Wglint, C2SuppressionHonored)
{
    auto run = lintFixture("c2/c2_suppressed.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Wglint, C2CleanIsSilent)
{
    // Exercises the *Locked caller-holds-the-lock exemption.
    auto run = lintFixture("c2/c2_clean.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

// ---------------------------------------------------------------------
// Tokenizer hardening: malformed sources must not derail the scan
// ---------------------------------------------------------------------

TEST(Wglint, MalformedStringLiteralRecoversAtLineEnd)
{
    // The unterminated literal must not swallow the rest of the file:
    // the rand() below it is still reported.
    auto run = lintFixture("malformed/unterminated_string.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D1"), 1) << run.output;
}

TEST(Wglint, MalformedCharLiteralRecoversAtLineEnd)
{
    auto run = lintFixture("malformed/unterminated_char.cc");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_EQ(countRule(run.output, "D1"), 1) << run.output;
}

TEST(Wglint, UnterminatedRawStringSwallowsTailByDesign)
{
    // Raw strings legitimately span lines; with no closing delimiter
    // the rest of the file is literal text, not code.
    auto run = lintFixture("malformed/unterminated_raw.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

// ---------------------------------------------------------------------
// Parallel scan determinism
// ---------------------------------------------------------------------

TEST(Wglint, ParallelScanMatchesSerialByteForByte)
{
    const std::string tree = std::string(WGLINT_FIXTURE_DIR);
    auto serialText = runWglint("--jobs=1 " + tree);
    auto parallelText = runWglint("--jobs=4 " + tree);
    EXPECT_EQ(serialText.exitCode, parallelText.exitCode);
    EXPECT_EQ(serialText.output, parallelText.output);

    auto serialJson = runWglint("--jobs=1 --format=jsonl " + tree);
    auto parallelJson = runWglint("--jobs=4 --format=jsonl " + tree);
    EXPECT_EQ(serialJson.exitCode, parallelJson.exitCode);
    EXPECT_EQ(serialJson.output, parallelJson.output);
}

TEST(Wglint, BadJobsValueIsUsageError)
{
    EXPECT_EQ(runWglint("--jobs=abc " + fixture("d1_clean.cc")).exitCode,
              2);
    EXPECT_EQ(runWglint("--jobs= " + fixture("d1_clean.cc")).exitCode,
              2);
}
