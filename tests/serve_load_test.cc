/**
 * @file
 * Job-manager load test (tier 2 — not part of the default ctest run;
 * invoke with `ctest -C tier2` or run the binary directly, ideally on
 * a TSan build: cmake --preset tsan).
 *
 * 1000 jobs are submitted from 8 threads across 4 priorities with
 * heavy dedup (50 unique specs), while dispatch is paused; then the
 * queue is released and the test asserts the three load invariants:
 *
 *   1. jobs START in strict FIFO-within-priority order (startSeq is
 *      exactly the sort by priority desc, submitSeq asc);
 *   2. dedup is fully accounted: unique + deduped == 1000 submissions,
 *      and every duplicate submission resolved to the unique job's id;
 *   3. no results are lost or duplicated: every unique job is Done
 *      with exactly its own cells, and the runner computed each
 *      distinct cell exactly once (single-flight).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "serve/jobs.hh"
#include "serve/wire.hh"

namespace {

using namespace wg;

constexpr std::size_t kSubmissions = 1000;
constexpr std::size_t kUniqueSpecs = 50;
constexpr unsigned kPriorities = 4;
constexpr std::size_t kThreads = 8;

/** Unique spec #i: one bench, one technique, a distinct seed. */
SweepSpec
specFor(std::size_t i)
{
    ExperimentOptions opts;
    opts.numSms = 1;
    opts.seed = 1 + i;
    return SweepSpec({"hotspot"}, {Technique::Gates}, opts);
}

/** Fixed priority per spec, so dedup never promotes (deterministic). */
unsigned
priorityFor(std::size_t spec_index)
{
    return static_cast<unsigned>(spec_index) % kPriorities;
}

TEST(ServeLoad, ThousandJobsFourPrioritiesHeavyDedup)
{
    ExperimentRunner runner(ExperimentOptions{},
                            &ThreadPool::global());
    serve::JobConfig config;
    config.queueCapacity = kSubmissions + 1;
    config.maxConcurrentJobs = 4;
    config.numPriorities = kPriorities;
    serve::JobManager manager(runner, config);
    manager.pauseDispatch();

    // Submission #k maps to spec k % kUniqueSpecs; 8 threads submit
    // concurrently against the paused dispatcher.
    std::mutex mu;
    std::map<std::size_t, std::set<std::string>> ids_by_spec;
    std::atomic<std::size_t> ok_count{0};
    std::atomic<std::size_t> dedup_count{0};
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (std::size_t k = t; k < kSubmissions; k += kThreads) {
                const std::size_t spec_index = k % kUniqueSpecs;
                auto outcome = manager.submit(
                    specFor(spec_index), priorityFor(spec_index));
                ASSERT_TRUE(outcome.ok) << outcome.error;
                ++ok_count;
                if (outcome.deduped)
                    ++dedup_count;
                std::lock_guard<std::mutex> lock(mu);
                ids_by_spec[spec_index].insert(outcome.id);
            }
        });
    }
    for (std::thread& t : submitters)
        t.join();

    // Invariant 2a: every submission succeeded; duplicates all
    // resolved to one id per unique spec.
    EXPECT_EQ(ok_count.load(), kSubmissions);
    EXPECT_EQ(dedup_count.load(), kSubmissions - kUniqueSpecs);
    ASSERT_EQ(ids_by_spec.size(), kUniqueSpecs);
    std::set<std::string> unique_ids;
    for (const auto& [spec_index, ids] : ids_by_spec) {
        EXPECT_EQ(ids.size(), 1u)
            << "spec " << spec_index << " got multiple job ids";
        unique_ids.insert(*ids.begin());
    }
    EXPECT_EQ(unique_ids.size(), kUniqueSpecs);

    StatSet gauges;
    manager.publishStats(gauges);
    EXPECT_EQ(gauges.get("serve.jobs.submitted"),
              double(kUniqueSpecs));
    EXPECT_EQ(gauges.get("serve.jobs.deduped"),
              double(kSubmissions - kUniqueSpecs));
    EXPECT_EQ(gauges.get("serve.jobs.rejected"), 0.0);
    EXPECT_EQ(gauges.get("serve.jobs.queued"), double(kUniqueSpecs));

    // Release the queue and let everything finish.
    manager.resumeDispatch();
    manager.drain();

    // Invariant 1: dispatch order is exactly the (priority desc,
    // submitSeq asc) sort of the queued jobs.
    std::vector<serve::JobStatus> jobs = manager.listJobs();
    ASSERT_EQ(jobs.size(), kUniqueSpecs);
    std::vector<serve::JobStatus> by_start = jobs;
    std::sort(by_start.begin(), by_start.end(),
              [](const serve::JobStatus& a, const serve::JobStatus& b) {
                  return a.startSeq < b.startSeq;
              });
    for (std::size_t i = 0; i + 1 < by_start.size(); ++i) {
        const serve::JobStatus& a = by_start[i];
        const serve::JobStatus& b = by_start[i + 1];
        EXPECT_TRUE(a.priority > b.priority ||
                    (a.priority == b.priority &&
                     a.submitSeq < b.submitSeq))
            << "dispatch inversion: (prio " << a.priority << ", sub "
            << a.submitSeq << ") started before (prio " << b.priority
            << ", sub " << b.submitSeq << ")";
    }

    // Invariant 3: every job finished with exactly its own result,
    // none lost, none duplicated.
    for (const serve::JobStatus& s : jobs) {
        EXPECT_EQ(s.state, serve::JobState::Done) << s.id;
        EXPECT_EQ(s.completedCells, 1u) << s.id;
        std::vector<serve::JobCell> cells;
        ExperimentOptions opts_used;
        std::string error;
        ASSERT_TRUE(
            manager.results(s.id, cells, opts_used, error))
            << error;
        ASSERT_EQ(cells.size(), 1u);
        EXPECT_EQ(cells[0].bench, "hotspot");
        ASSERT_NE(cells[0].result, nullptr);
        EXPECT_EQ(cells[0].result->config.numSms, 1u);
    }

    // Single-flight accounting: each distinct cell simulated once.
    CacheStats cache = runner.cacheStats();
    EXPECT_EQ(cache.misses, kUniqueSpecs);
    EXPECT_EQ(cache.evictions, 0u);

    gauges.clear();
    manager.publishStats(gauges);
    EXPECT_EQ(gauges.get("serve.jobs.completed"),
              double(kUniqueSpecs));
    EXPECT_EQ(gauges.get("serve.jobs.failed"), 0.0);
    EXPECT_EQ(gauges.get("serve.jobs.cancelled"), 0.0);
    EXPECT_EQ(gauges.get("serve.cells.completed"),
              double(kUniqueSpecs));
    EXPECT_EQ(gauges.get("serve.jobs.queued"), 0.0);
    EXPECT_EQ(gauges.get("serve.jobs.running"), 0.0);
}

/**
 * Concurrent watchers under load (the TSan target for the streaming
 * path): several subscribers per job, some subscribing before dispatch
 * and some mid-run or after completion (the replay path), all racing
 * the publisher. Every watcher must observe the identical
 * meta/epoch/final byte stream, a terminal result frame, and zero
 * drops (the default queue cap is far above one job's frame count);
 * the manager must never stall on any of them.
 */
TEST(ServeLoad, ConcurrentWatchersSeeIdenticalCompleteStreams)
{
    constexpr std::size_t kJobs = 12;
    constexpr std::size_t kWatchersPerJob = 4;

    ExperimentRunner runner(ExperimentOptions{},
                            &ThreadPool::global());
    serve::JobConfig config;
    config.queueCapacity = kJobs + 1;
    config.maxConcurrentJobs = 4;
    serve::JobManager manager(runner, config);
    manager.pauseDispatch();

    std::vector<std::string> ids;
    for (std::size_t j = 0; j < kJobs; ++j) {
        auto outcome = manager.submit(specFor(100 + j), 0);
        ASSERT_TRUE(outcome.ok) << outcome.error;
        ids.push_back(outcome.id);
    }

    // streams[j][w]: watcher w's concatenated meta/epoch/final frames.
    std::vector<std::vector<std::string>> streams(
        kJobs, std::vector<std::string>(kWatchersPerJob));
    std::vector<std::thread> watchers;
    for (std::size_t j = 0; j < kJobs; ++j) {
        for (std::size_t w = 0; w < kWatchersPerJob; ++w) {
            watchers.emplace_back([&, j, w] {
                // Odd watchers subscribe late: mid-run or after the
                // job finished, exercising the replay path against
                // live publication.
                if (w % 2 == 1)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5 * w));
                std::string error;
                std::shared_ptr<serve::Subscription> sub =
                    manager.subscribe(ids[j], error);
                ASSERT_NE(sub, nullptr) << error;

                std::string bytes;
                std::string last;
                std::string frame;
                while (!manager.subscriptionDone(*sub)) {
                    while (manager.nextFrame(*sub, frame)) {
                        last = frame;
                        if (frame.find("\"frame\":\"progress\"") ==
                                std::string::npos &&
                            frame.find("\"frame\":\"result\"") ==
                                std::string::npos)
                            bytes += frame + "\n";
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                }
                EXPECT_NE(last.find("\"frame\":\"result\""),
                          std::string::npos)
                    << last;
                EXPECT_NE(last.find("\"state\":\"done\""),
                          std::string::npos)
                    << last;
                EXPECT_EQ(sub->dropped, 0u);
                streams[j][w] = bytes;
                manager.unsubscribe(sub);
            });
        }
    }

    manager.resumeDispatch();
    for (std::thread& t : watchers)
        t.join();
    manager.drain();

    for (std::size_t j = 0; j < kJobs; ++j) {
        ASSERT_FALSE(streams[j][0].empty()) << "job " << ids[j];
        for (std::size_t w = 1; w < kWatchersPerJob; ++w)
            EXPECT_EQ(streams[j][w], streams[j][0])
                << "watcher " << w << " of job " << ids[j]
                << " saw a different byte stream";
    }

    StatSet gauges;
    manager.publishStats(gauges);
    EXPECT_EQ(gauges.get("serve.subscriptions.opened"),
              double(kJobs * kWatchersPerJob));
    EXPECT_EQ(gauges.get("serve.subscriptions.active"), 0.0);
    EXPECT_EQ(gauges.get("serve.subscriptions.droppedFrames"), 0.0);
}

/** Dedup + cancel interplay under load: a cancelled job's key is
 *  released, so a later identical submission runs fresh. */
TEST(ServeLoad, CancelReleasesDedupKeys)
{
    ExperimentRunner runner(ExperimentOptions{},
                            &ThreadPool::global());
    serve::JobConfig config;
    config.queueCapacity = 64;
    config.numPriorities = kPriorities;
    serve::JobManager manager(runner, config);
    manager.pauseDispatch();

    auto first = manager.submit(specFor(0), 1);
    ASSERT_TRUE(first.ok);
    std::string error;
    ASSERT_TRUE(manager.cancel(first.id, error)) << error;

    auto second = manager.submit(specFor(0), 1);
    ASSERT_TRUE(second.ok);
    EXPECT_FALSE(second.deduped);
    EXPECT_NE(second.id, first.id);

    manager.resumeDispatch();
    manager.drain();
    auto status = manager.status(second.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, serve::JobState::Done);
}

} // namespace
