/**
 * @file
 * Schema-drift guard: the report/export CSV columns and JSON keys must
 * stay in lock-step with the metrics registry (metrics::toStatSet).
 * Both export paths declare their schema (csvSchema/jsonSchema) as
 * column -> registry-name mappings; this test runs one simulation and
 * cross-checks every mapped field's exported value against the
 * registry, so a metric added to one layer but not the other — or
 * renamed on one side only — fails here instead of silently diverging.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "metrics/exporters.hh"
#include "metrics/loader.hh"
#include "metrics/registry.hh"
#include "report/export.hh"
#include "sim/gpu.hh"

namespace wg {
namespace {

SimResult
smallRun()
{
    ExperimentOptions opts;
    opts.numSms = 2;
    Gpu gpu(makeConfig(Technique::WarpedGates, opts));
    BenchmarkProfile p = findBenchmark("hotspot");
    p.kernelLength = 400;
    p.residentWarps = 16;
    return gpu.run(p, nullptr);
}

/** Split one CSV line on commas (the exports never quote cells). */
std::vector<std::string>
splitCsv(const std::string& line)
{
    std::vector<std::string> cells;
    std::size_t pos = 0;
    while (true) {
        std::size_t comma = line.find(',', pos);
        if (comma == std::string::npos) {
            cells.push_back(line.substr(pos));
            return cells;
        }
        cells.push_back(line.substr(pos, comma - pos));
        pos = comma + 1;
    }
}

/** The exports print ~6 significant digits; compare accordingly. */
void
expectClose(double exported, double registry, const std::string& what)
{
    double scale = std::max(1.0, std::fabs(registry));
    EXPECT_NEAR(exported, registry, 1e-4 * scale) << what;
}

TEST(ExportSchema, CsvHeaderIsGeneratedFromSchema)
{
    std::string expected;
    for (const ExportField& f : csvSchema()) {
        if (!expected.empty())
            expected += ',';
        expected += f.column;
    }
    EXPECT_EQ(csvHeader(), expected);
}

TEST(ExportSchema, CsvRowMatchesRegistry)
{
    SimResult r = smallRun();
    StatSet registry = metrics::toStatSet(r);

    std::vector<std::string> cells = splitCsv(toCsvRow("hotspot", r));
    const std::vector<ExportField>& schema = csvSchema();
    // Every column is declared; a row/schema length mismatch means a
    // column was added to toCsvRow without declaring it (or vice
    // versa).
    ASSERT_EQ(cells.size(), schema.size());

    for (std::size_t i = 0; i < schema.size(); ++i) {
        if (schema[i].metric.empty())
            continue; // identification column (label, policy names)
        ASSERT_TRUE(registry.has(schema[i].metric))
            << "csv column '" << schema[i].column
            << "' maps to unknown registry name '" << schema[i].metric
            << "'";
        expectClose(std::strtod(cells[i].c_str(), nullptr),
                    registry.get(schema[i].metric),
                    schema[i].column + " vs " + schema[i].metric);
    }
}

TEST(ExportSchema, JsonKeysMatchRegistry)
{
    SimResult r = smallRun();
    StatSet registry = metrics::toStatSet(r);

    StatSet flat;
    std::string error;
    ASSERT_TRUE(metrics::flattenJson(toJson("hotspot", r), flat, error))
        << error;

    for (const ExportField& f : jsonSchema()) {
        ASSERT_TRUE(flat.has(f.column))
            << "json schema lists absent key '" << f.column << "'";
        ASSERT_TRUE(registry.has(f.metric))
            << "json key '" << f.column
            << "' maps to unknown registry name '" << f.metric << "'";
        expectClose(flat.get(f.column), registry.get(f.metric),
                    f.column + " vs " + f.metric);
    }
}

TEST(ExportSchema, EveryNumericJsonLeafIsDeclared)
{
    // The completeness direction: adding a numeric key to toJson
    // without giving it a registry twin must fail. Histogram bins are
    // the one sanctioned exception (the registry keeps scalars only).
    SimResult r = smallRun();
    StatSet flat;
    std::string error;
    ASSERT_TRUE(metrics::flattenJson(toJson("hotspot", r), flat, error))
        << error;

    std::vector<std::string> declared;
    for (const ExportField& f : jsonSchema())
        declared.push_back(f.column);

    for (const auto& [key, value] : flat.entries()) {
        (void)value;
        if (key.find("idle_histogram") != std::string::npos)
            continue;
        EXPECT_NE(std::find(declared.begin(), declared.end(), key),
                  declared.end())
            << "numeric JSON key '" << key
            << "' has no jsonSchema entry";
    }
}

TEST(ExportSchema, EveryRegistryMetricHasCataloguedHelp)
{
    // Every name a real simulation registers must resolve to a
    // catalogued # HELP string; a new metric family added without a
    // catalogue entry fails here instead of shipping the generic
    // "uncatalogued" text to scrape consumers.
    SimResult r = smallRun();
    StatSet registry = metrics::toStatSet(r);
    for (const auto& [name, value] : registry.entries()) {
        (void)value;
        EXPECT_TRUE(metrics::metricHelpKnown(name))
            << "metric '" << name << "' has no # HELP catalogue entry";
    }
}

TEST(ExportSchema, PromExpositionCarriesHelpAndTypePerMetric)
{
    SimResult r = smallRun();
    StatSet registry = metrics::toStatSet(r);
    std::ostringstream os;
    metrics::writeProm(os, registry);
    const std::string text = os.str();
    for (const auto& [name, value] : registry.entries()) {
        (void)value;
        const std::string pn = metrics::promName(name);
        EXPECT_NE(text.find("# HELP " + pn + " "), std::string::npos)
            << "no # HELP line for " << pn;
        EXPECT_NE(text.find("# TYPE " + pn + " gauge\n"),
                  std::string::npos)
            << "no # TYPE line for " << pn;
    }
    EXPECT_NE(text.find("# EOF\n"), std::string::npos);
}

TEST(ExportSchema, PromNameMappingStaysBijective)
{
    // The '.' -> '_' mapping is invertible only while registry names
    // keep '_' out (lint rule D4); a collision between two registered
    // names would corrupt scrape round-trips.
    SimResult r = smallRun();
    StatSet registry = metrics::toStatSet(r);
    std::vector<std::string> mapped;
    for (const auto& [name, value] : registry.entries()) {
        (void)value;
        EXPECT_EQ(name.find('_'), std::string::npos)
            << "registry name '" << name << "' contains '_'";
        mapped.push_back(metrics::promName(name));
    }
    std::sort(mapped.begin(), mapped.end());
    EXPECT_EQ(std::adjacent_find(mapped.begin(), mapped.end()),
              mapped.end())
        << "two registry names map to the same Prometheus name";
}

} // namespace
} // namespace wg
