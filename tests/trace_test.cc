/**
 * @file
 * Unit tests for the event-trace subsystem core: the per-SM ring
 * recorder, the whole-GPU collector, the three sinks, and the
 * zero-impact contract of the disabled (null-recorder) path.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/warped_gates.hh"
#include "sim/gpu.hh"
#include "trace/recorder.hh"
#include "trace/sink.hh"

namespace wg {
namespace {

using trace::Event;
using trace::EventKind;

TEST(Recorder, RecordsAndIteratesOldestFirst)
{
    trace::Recorder rec(3, 8);
    EXPECT_EQ(rec.sm(), 3u);
    EXPECT_EQ(rec.capacity(), 8u);
    for (Cycle c = 1; c <= 5; ++c)
        rec.record(c, EventKind::UnitIdle, 0, 0);
    EXPECT_EQ(rec.size(), 5u);
    EXPECT_EQ(rec.overwritten(), 0u);

    std::vector<Event> events = rec.events();
    ASSERT_EQ(events.size(), 5u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].cycle, i + 1) << "oldest-first order";
}

TEST(Recorder, RingWrapKeepsNewestAndCountsLost)
{
    trace::Recorder rec(0, 4);
    for (Cycle c = 0; c < 10; ++c)
        rec.record(c, EventKind::Issue, 0, 0, 0,
                   static_cast<std::uint32_t>(c));
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.overwritten(), 6u);

    std::vector<Event> events = rec.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].cycle, 6 + i) << "newest window retained";
        EXPECT_EQ(events[i].value, 6 + i);
    }

    // forEach must visit the identical sequence without copying.
    std::size_t i = 0;
    rec.forEach([&](const Event& e) {
        EXPECT_EQ(e.cycle, events[i].cycle);
        ++i;
    });
    EXPECT_EQ(i, 4u);
}

TEST(Recorder, EventPayloadRoundTrips)
{
    trace::Recorder rec(0, 4);
    rec.record(123, EventKind::Gate, 1, 0,
               static_cast<std::uint8_t>(trace::GateReason::CoordDrain),
               77);
    ASSERT_EQ(rec.size(), 1u);
    Event e = rec.events()[0];
    EXPECT_EQ(e.cycle, 123u);
    EXPECT_EQ(e.kind, EventKind::Gate);
    EXPECT_EQ(e.unit, 1);
    EXPECT_EQ(e.cluster, 0);
    EXPECT_EQ(e.arg,
              static_cast<std::uint8_t>(trace::GateReason::CoordDrain));
    EXPECT_EQ(e.value, 77u);
}

TEST(Collector, PrepareCreatesOneRecorderPerSm)
{
    trace::Collector collector;
    EXPECT_EQ(collector.numSms(), 0u);
    EXPECT_EQ(collector.recorder(0), nullptr);

    collector.prepare(3);
    EXPECT_EQ(collector.numSms(), 3u);
    for (SmId s = 0; s < 3; ++s) {
        ASSERT_NE(collector.recorder(s), nullptr);
        EXPECT_EQ(collector.recorder(s)->sm(), s);
    }
    EXPECT_EQ(collector.recorder(3), nullptr) << "out of range";

    collector.recorder(1)->record(9, EventKind::Issue);
    EXPECT_EQ(collector.totalEvents(), 1u);
    EXPECT_EQ(collector.totalOverwritten(), 0u);
}

TEST(Collector, SmFilterLeavesOtherSmsNull)
{
    trace::RecorderConfig cfg;
    cfg.smFilter = 2;
    trace::Collector collector(cfg);
    collector.prepare(4);
    EXPECT_EQ(collector.numSms(), 4u);
    EXPECT_EQ(collector.recorder(0), nullptr);
    EXPECT_EQ(collector.recorder(1), nullptr);
    ASSERT_NE(collector.recorder(2), nullptr);
    EXPECT_EQ(collector.recorder(3), nullptr);
}

// ---- recording a real SM run ----

BenchmarkProfile
smallProfile()
{
    BenchmarkProfile p = findBenchmark("hotspot");
    p.kernelLength = 400;
    p.residentWarps = 16;
    return p;
}

TEST(TraceSm, FullRunRecordsOrderedEvents)
{
    GpuConfig config = makeConfig(Technique::WarpedGates);
    ProgramGenerator gen(1);
    auto programs = gen.generateSm(smallProfile(), 0);

    trace::Recorder rec(0, std::size_t{1} << 20);
    Sm sm(config.sm, programs, 42, &rec);
    const SmStats& stats = sm.run();

    EXPECT_GT(rec.size(), 0u);
    EXPECT_EQ(rec.overwritten(), 0u) << "capacity sized for the run";

    std::uint64_t issues = 0, idles = 0, migrates = 0;
    Cycle prev = 0;
    rec.forEach([&](const Event& e) {
        EXPECT_GE(e.cycle, prev) << "events must be cycle-ordered";
        prev = e.cycle;
        switch (e.kind) {
          case EventKind::Issue: ++issues; break;
          case EventKind::UnitIdle: ++idles; break;
          case EventKind::WarpMigrate: ++migrates; break;
          default: break;
        }
    });
    EXPECT_EQ(issues, stats.issuedTotal)
        << "every issued instruction records exactly one Issue event";
    EXPECT_GT(idles, 0u);
    EXPECT_GT(migrates, 0u);
}

TEST(TraceSm, NullRecorderLeavesResultsUntouched)
{
    GpuConfig config = makeConfig(Technique::WarpedGates);
    ProgramGenerator gen(1);
    auto programs = gen.generateSm(smallProfile(), 0);

    Sm plain(config.sm, programs, 42, nullptr);
    const SmStats& a = plain.run();

    trace::Recorder rec(0, std::size_t{1} << 20);
    Sm traced(config.sm, programs, 42, &rec);
    const SmStats& b = traced.run();

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.issuedTotal, b.issuedTotal);
    for (std::size_t c = 0; c < kNumUnitClasses; ++c)
        EXPECT_EQ(a.issuedByClass[c], b.issuedByClass[c]);
}

// ---- sinks ----

/** A tiny collector with deterministic hand-placed events. */
trace::Collector
makeSampleCollector(std::size_t capacity = 64)
{
    trace::RecorderConfig cfg;
    cfg.capacity = capacity;
    trace::Collector collector(cfg);
    collector.prepare(2);
    collector.meta = makeTraceMeta(makeConfig(Technique::WarpedGates), 2);

    trace::Recorder* r0 = collector.recorder(0);
    r0->record(10, EventKind::UnitIdle, 0, 0);
    r0->record(15, EventKind::Gate, 0, 0,
               static_cast<std::uint8_t>(trace::GateReason::IdleDetect), 0);
    r0->record(29, EventKind::BetExpire, 0, 0, 0, 14);
    collector.recorder(1)->record(7, EventKind::Issue, 1, 0, 0, 3);
    return collector;
}

std::vector<std::string>
splitLines(const std::string& text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(Sink, JsonlEmitsMetaThenOneObjectPerEvent)
{
    trace::Collector collector = makeSampleCollector();
    std::ostringstream os;
    trace::writeJsonl(os, collector);

    std::vector<std::string> lines = splitLines(os.str());
    ASSERT_GE(lines.size(), 5u);
    EXPECT_NE(lines[0].find("\"policy\""), std::string::npos)
        << "meta must be the first line";
    EXPECT_NE(lines[0].find("\"breakEven\""), std::string::npos);
    std::size_t events = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        EXPECT_EQ(lines[i].front(), '{');
        EXPECT_EQ(lines[i].back(), '}');
        if (lines[i].find("\"kind\"") != std::string::npos)
            ++events;
    }
    EXPECT_EQ(events, collector.totalEvents());
}

TEST(Sink, JsonlFlagsTruncatedStreams)
{
    trace::Collector collector = makeSampleCollector(2);
    // Recorder 0 got 3 events into capacity 2: one was lost.
    EXPECT_EQ(collector.totalOverwritten(), 1u);
    std::ostringstream os;
    trace::writeJsonl(os, collector);
    EXPECT_NE(os.str().find("\"truncated\":1"), std::string::npos)
        << "a wrapped ring must be flagged, not silently shortened";
}

TEST(Sink, ChromeTraceIsOneJsonDocument)
{
    trace::Collector collector = makeSampleCollector();
    std::ostringstream os;
    trace::writeChromeTrace(os, collector);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '{');
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"pid\""), std::string::npos);
}

TEST(Sink, EpochCsvStartsWithHeader)
{
    trace::Collector collector = makeSampleCollector();
    std::ostringstream os;
    trace::writeEpochCsv(os, collector);
    std::vector<std::string> lines = splitLines(os.str());
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines[0].find("sm"), std::string::npos);
    EXPECT_NE(lines[0].find(','), std::string::npos);
}

TEST(Sink, FormatNamesRoundTrip)
{
    for (trace::SinkFormat f : {trace::SinkFormat::Chrome,
                                trace::SinkFormat::Jsonl,
                                trace::SinkFormat::Csv}) {
        trace::SinkFormat parsed;
        ASSERT_TRUE(trace::parseSinkFormat(trace::sinkFormatName(f),
                                           parsed));
        EXPECT_EQ(parsed, f);
    }
    trace::SinkFormat parsed;
    EXPECT_FALSE(trace::parseSinkFormat("protobuf", parsed));
}

TEST(Sink, EventToJsonCarriesIdentity)
{
    Event e;
    e.cycle = 1234;
    e.kind = EventKind::Gate;
    e.unit = 0;
    e.cluster = 1;
    e.arg = static_cast<std::uint8_t>(trace::GateReason::IdleDetect);
    e.value = 2;
    std::string json = trace::eventToJson(5, e);
    EXPECT_NE(json.find("\"sm\":5"), std::string::npos);
    EXPECT_NE(json.find("1234"), std::string::npos);
    EXPECT_NE(json.find(trace::eventKindName(EventKind::Gate)),
              std::string::npos);
}

TEST(Event, KindNamesRoundTrip)
{
    for (std::size_t k = 0; k < trace::kNumEventKinds; ++k) {
        auto kind = static_cast<EventKind>(k);
        trace::EventKind parsed;
        ASSERT_TRUE(
            trace::parseEventKind(trace::eventKindName(kind), parsed))
            << trace::eventKindName(kind);
        EXPECT_EQ(parsed, kind);
    }
    trace::EventKind parsed;
    EXPECT_FALSE(trace::parseEventKind("not-a-kind", parsed));
}

} // namespace
} // namespace wg
