/**
 * @file
 * Unit tests for the greedy-then-oldest scheduler (extra baseline).
 */

#include <gtest/gtest.h>

#include "sched/gto.hh"
#include "sim/sm.hh"
#include "workload/synthetic.hh"

namespace wg {
namespace {

TEST(Gto, OldestFirstByDefault)
{
    GtoScheduler sched;
    std::vector<WarpId> active = {5, 2, 9, 1};
    std::vector<UnitClass> types(4, UnitClass::Int);
    std::vector<std::size_t> out;
    sched.beginCycle(0, SchedView{});
    sched.order(active, types, out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(active[out[0]], 1u);
    EXPECT_EQ(active[out[1]], 2u);
    EXPECT_EQ(active[out[2]], 5u);
    EXPECT_EQ(active[out[3]], 9u);
}

TEST(Gto, GreedyWarpHoisted)
{
    GtoScheduler sched;
    std::vector<WarpId> active = {5, 2, 9, 1};
    std::vector<UnitClass> types(4, UnitClass::Int);
    std::vector<std::size_t> out;
    sched.notifyIssue(9, UnitClass::Int);
    sched.order(active, types, out);
    EXPECT_EQ(active[out[0]], 9u) << "last-issued warp goes first";
    EXPECT_EQ(active[out[1]], 1u);
    EXPECT_EQ(active[out[2]], 2u);
    EXPECT_EQ(active[out[3]], 5u);
}

TEST(Gto, GreedyWarpGoneFallsBackToOldest)
{
    GtoScheduler sched;
    sched.notifyIssue(77, UnitClass::Fp);
    std::vector<WarpId> active = {3, 0};
    std::vector<UnitClass> types(2, UnitClass::Int);
    std::vector<std::size_t> out;
    sched.order(active, types, out);
    EXPECT_EQ(active[out[0]], 0u);
}

TEST(Gto, SmRunsToCompletion)
{
    SmConfig cfg;
    cfg.scheduler = SchedulerPolicy::Gto;
    cfg.pg.policy = PgPolicy::Conventional;
    auto programs = uniformMixWarps(12, 300, 0.35, 0.25, 0.5);
    Sm sm(cfg, programs, 5);
    const SmStats& s = sm.run();
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.prioritySwitches, 0u);
}

TEST(Gto, SchedulerPolicyName)
{
    EXPECT_STREQ(schedulerPolicyName(SchedulerPolicy::Gto), "gto");
}

TEST(Gto, GreedyImprovesSameWarpLocality)
{
    // A single warp with a dependency chain interleaved with an
    // independent stream: GTO keeps returning to the same warp.
    GtoScheduler sched;
    std::vector<WarpId> active = {0, 1, 2};
    std::vector<UnitClass> types(3, UnitClass::Int);
    std::vector<std::size_t> out;
    sched.notifyIssue(1, UnitClass::Int);
    sched.order(active, types, out);
    EXPECT_EQ(active[out[0]], 1u);
    sched.notifyIssue(1, UnitClass::Int);
    sched.order(active, types, out);
    EXPECT_EQ(active[out[0]], 1u) << "stays greedy while warp 1 lives";
}

} // namespace
} // namespace wg
