/**
 * @file
 * Unit tests for the greedy-then-oldest scheduler (extra baseline).
 */

#include <gtest/gtest.h>

#include "sched/gto.hh"
#include "sim/sm.hh"
#include "workload/synthetic.hh"

namespace wg {
namespace {

/** A view whose INT ready mask covers exactly @p warps. */
SchedView
readyView(std::initializer_list<WarpId> warps)
{
    SchedView v;
    for (WarpId w : warps) {
        v.activeMask |= warpBit(w);
        v.readyMask[static_cast<std::size_t>(UnitClass::Int)] |=
            warpBit(w);
    }
    return v;
}

TEST(Gto, OldestFirstByDefault)
{
    GtoScheduler sched;
    std::vector<WarpId> out;
    sched.beginCycle(0, SchedView{});
    sched.order(readyView({5, 2, 9, 1}), out);
    EXPECT_EQ(out, (std::vector<WarpId>{1, 2, 5, 9}))
        << "oldest (lowest id) first";
}

TEST(Gto, GreedyWarpHoisted)
{
    GtoScheduler sched;
    std::vector<WarpId> out;
    sched.notifyIssue(9, UnitClass::Int);
    sched.order(readyView({5, 2, 9, 1}), out);
    EXPECT_EQ(out, (std::vector<WarpId>{9, 1, 2, 5}))
        << "last-issued warp goes first";
}

TEST(Gto, GreedyWarpGoneFallsBackToOldest)
{
    GtoScheduler sched;
    sched.notifyIssue(77, UnitClass::Fp); // beyond the 64-warp masks
    std::vector<WarpId> out;
    sched.order(readyView({3, 0}), out);
    EXPECT_EQ(out, (std::vector<WarpId>{0, 3}));
}

TEST(Gto, GreedyWarpNotReadyFallsBackToOldest)
{
    GtoScheduler sched;
    sched.notifyIssue(2, UnitClass::Int);
    std::vector<WarpId> out;
    sched.order(readyView({3, 0}), out);
    EXPECT_EQ(out, (std::vector<WarpId>{0, 3}))
        << "a stalled greedy warp must not block the rest";
}

TEST(Gto, SmRunsToCompletion)
{
    SmConfig cfg;
    cfg.scheduler = SchedulerPolicy::Gto;
    cfg.pg.policy = PgPolicy::Conventional;
    auto programs = uniformMixWarps(12, 300, 0.35, 0.25, 0.5);
    Sm sm(cfg, programs, 5);
    const SmStats& s = sm.run();
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.prioritySwitches, 0u);
}

TEST(Gto, SchedulerPolicyName)
{
    EXPECT_STREQ(schedulerPolicyName(SchedulerPolicy::Gto), "gto");
}

TEST(Gto, GreedyImprovesSameWarpLocality)
{
    // A single warp with a dependency chain interleaved with an
    // independent stream: GTO keeps returning to the same warp.
    GtoScheduler sched;
    std::vector<WarpId> out;
    sched.notifyIssue(1, UnitClass::Int);
    sched.order(readyView({0, 1, 2}), out);
    EXPECT_EQ(out[0], 1u);
    sched.notifyIssue(1, UnitClass::Int);
    sched.order(readyView({0, 1, 2}), out);
    EXPECT_EQ(out[0], 1u) << "stays greedy while warp 1 lives";
}

} // namespace
} // namespace wg
