/**
 * @file
 * Unit tests for the oracle power-gating upper bound.
 */

#include <gtest/gtest.h>

#include "power/oracle.hh"

namespace wg {
namespace {

TEST(Oracle, EmptyHistogramSavesNothing)
{
    Histogram h(64);
    EXPECT_EQ(oracleNetGatedCycles(h, 14), 0u);
    EXPECT_DOUBLE_EQ(oracleStaticSavings(h, 14, 1000), 0.0);
}

TEST(Oracle, ShortPeriodsAreSkipped)
{
    Histogram h(64);
    h.add(5, 100);
    h.add(13, 10);
    EXPECT_EQ(oracleNetGatedCycles(h, 14), 0u)
        << "gating any of these would net a loss; the oracle declines";
}

TEST(Oracle, ExactBreakEvenIsNeutral)
{
    Histogram h(64);
    h.add(14, 5);
    EXPECT_EQ(oracleNetGatedCycles(h, 14), 0u);
}

TEST(Oracle, LongPeriodsPayTheirOverhead)
{
    Histogram h(64);
    h.add(50, 2); // 2 x (50 - 14) = 72
    h.add(20, 1); // 6
    EXPECT_EQ(oracleNetGatedCycles(h, 14), 78u);
}

TEST(Oracle, OverflowHandledExactly)
{
    Histogram h(10);
    h.add(500);  // overflow: contributes 500 - 14
    h.add(1000); // overflow: contributes 1000 - 14
    EXPECT_EQ(oracleNetGatedCycles(h, 14), 500u + 1000u - 2u * 14u);
}

TEST(Oracle, MixedBinsAndOverflow)
{
    Histogram h(10);
    h.add(3);   // skipped
    h.add(8);   // 8 - 5 = 3 at bet 5
    h.add(100); // 100 - 5 = 95
    EXPECT_EQ(oracleNetGatedCycles(h, 5), 98u);
}

TEST(Oracle, SavingsRatioNormalises)
{
    Histogram h(64);
    h.add(34, 10); // 10 x 20 net
    EXPECT_DOUBLE_EQ(oracleStaticSavings(h, 14, 1000), 0.2);
    EXPECT_DOUBLE_EQ(oracleStaticSavings(h, 14, 0), 0.0);
}

TEST(Oracle, ZeroBetGatesAllIdleCycles)
{
    Histogram h(64);
    h.add(1, 7);
    h.add(30, 2);
    h.add(200); // overflow
    EXPECT_EQ(oracleNetGatedCycles(h, 0), 7u + 60u + 200u);
}

/** Property: oracle savings are monotonically non-increasing in BET. */
class OracleBet : public ::testing::TestWithParam<Cycle>
{
};

TEST_P(OracleBet, MonotoneInBet)
{
    Histogram h(64);
    for (std::uint64_t v = 1; v <= 300; v += 3)
        h.add(v % 120, 1 + v % 4);
    Cycle bet = GetParam();
    EXPECT_GE(oracleNetGatedCycles(h, bet),
              oracleNetGatedCycles(h, bet + 5));
}

INSTANTIATE_TEST_SUITE_P(Bets, OracleBet,
                         ::testing::Values(0, 5, 9, 14, 19, 24, 60));

} // namespace
} // namespace wg
