/**
 * @file
 * Unit tests for the SM-level power-gating controller.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pg/controller.hh"

namespace wg {
namespace {

PgParams
params(PgPolicy policy, Cycle idle_detect = 2, Cycle bet = 3,
       Cycle wakeup = 2)
{
    PgParams p;
    p.policy = policy;
    p.idleDetect = idle_detect;
    p.breakEven = bet;
    p.wakeupDelay = wakeup;
    return p;
}

/** Tick all domains idle for @p n cycles with the given view. */
Cycle
idleAll(PgController& pg, Cycle now, Cycle n, SchedView view = {})
{
    for (Cycle i = 0; i < n; ++i)
        pg.tick(now++, {false, false}, {false, false}, view);
    return now;
}

TEST(PgController, SfuAndLdstNeverGated)
{
    PgController pg(params(PgPolicy::Conventional));
    idleAll(pg, 0, 50);
    EXPECT_TRUE(pg.canExecute(UnitClass::Sfu, 0));
    EXPECT_TRUE(pg.canExecute(UnitClass::Ldst, 0));
    EXPECT_FALSE(pg.isGated(UnitClass::Sfu, 0));
    EXPECT_FALSE(pg.isGated(UnitClass::Ldst, 0));
    EXPECT_EQ(pg.pickWakeupTarget(UnitClass::Sfu), -1);
    EXPECT_EQ(pg.pickWakeupTarget(UnitClass::Ldst), -1);
}

TEST(PgController, AllAluDomainsGateWhenIdle)
{
    SchedView view;
    view.actv = {0, 0, 0, 0};
    PgController pg(params(PgPolicy::Conventional, 2));
    idleAll(pg, 0, 3, view);
    for (UnitClass uc : {UnitClass::Int, UnitClass::Fp}) {
        for (unsigned c = 0; c < kClustersPerType; ++c) {
            EXPECT_TRUE(pg.isGated(uc, c))
                << unitClassName(uc) << c;
            EXPECT_FALSE(pg.canExecute(uc, c));
        }
    }
}

TEST(PgController, BusyClusterStaysOn)
{
    PgController pg(params(PgPolicy::Conventional, 2));
    SchedView view;
    for (Cycle t = 0; t < 10; ++t)
        pg.tick(t, {true, false}, {false, false}, view);
    EXPECT_TRUE(pg.canExecute(UnitClass::Int, 0));
    EXPECT_FALSE(pg.canExecute(UnitClass::Int, 1));
    EXPECT_TRUE(pg.isGated(UnitClass::Int, 1));
}

TEST(PgController, PickWakeupPrefersWakeable)
{
    // Conventional: any gated cluster is wakeable; closest-first rules
    // only matter under blackout.
    PgController pg(params(PgPolicy::Conventional, 2, 10));
    idleAll(pg, 0, 3);
    int target = pg.pickWakeupTarget(UnitClass::Int);
    EXPECT_GE(target, 0);
    EXPECT_TRUE(pg.domain(UnitClass::Int,
                          static_cast<unsigned>(target)).wakeable());
}

TEST(PgController, PickWakeupClosestToCompensation)
{
    // Under blackout nothing is wakeable while uncompensated; the
    // target must be the cluster with the smaller BET remainder.
    PgController pg(params(PgPolicy::NaiveBlackout, 2, 10));
    // Keep cluster 1 busy for two cycles so cluster 0 gates first.
    SchedView view;
    pg.tick(0, {false, true}, {true, true}, view);
    pg.tick(1, {false, true}, {true, true}, view);
    pg.tick(2, {false, false}, {false, false}, view); // 0 gates here
    ASSERT_TRUE(pg.isGated(UnitClass::Int, 0));
    ASSERT_FALSE(pg.isGated(UnitClass::Int, 1));
    idleAll(pg, 3, 2); // cluster 1 gates two cycles later
    ASSERT_TRUE(pg.isGated(UnitClass::Int, 1));
    EXPECT_LT(pg.domain(UnitClass::Int, 0).betRemaining(),
              pg.domain(UnitClass::Int, 1).betRemaining());
    EXPECT_EQ(pg.pickWakeupTarget(UnitClass::Int), 0);
}

TEST(PgController, PickWakeupNoTargetWhenAllOn)
{
    PgController pg(params(PgPolicy::Conventional));
    EXPECT_EQ(pg.pickWakeupTarget(UnitClass::Int), -1);
}

TEST(PgController, RequestWakeupReachesDomain)
{
    PgController pg(params(PgPolicy::Conventional, 2, 5));
    idleAll(pg, 0, 3);
    ASSERT_TRUE(pg.isGated(UnitClass::Fp, 0));
    pg.requestWakeup(UnitClass::Fp, 0, 3);
    idleAll(pg, 3, 1);
    EXPECT_EQ(pg.domain(UnitClass::Fp, 0).state(), PgState::Wakeup);
    EXPECT_EQ(pg.domain(UnitClass::Fp, 1).state(),
              PgState::Uncompensated)
        << "the request must only wake the targeted cluster";
}

TEST(PgController, FillViewReportsBlackout)
{
    PgController pg(params(PgPolicy::NaiveBlackout, 2));
    SchedView view;
    pg.tick(0, {true, false}, {false, false}, view);
    idleAll(pg, 1, 1);
    SchedView out;
    pg.fillView(out);
    EXPECT_FALSE(out.intBlackout[0]) << "was busy at t0, gates later";
    EXPECT_TRUE(out.intBlackout[1]);
    EXPECT_TRUE(out.fpBlackout[0]);
    EXPECT_TRUE(out.fpBlackout[1]);
}

TEST(PgController, StaticIdleDetectValue)
{
    PgController pg(params(PgPolicy::Conventional, 7));
    EXPECT_EQ(pg.idleDetectValue(UnitClass::Int), 7u);
    EXPECT_EQ(pg.idleDetectValue(UnitClass::Fp), 7u);
}

TEST(PgController, AdaptiveEpochRollsOver)
{
    PgParams p = params(PgPolicy::CoordinatedBlackout, 5, 3, 1);
    p.adaptiveIdleDetect = true;
    p.epochLength = 50;
    p.criticalThreshold = 0; // any critical wakeup triggers an increment
    PgController pg(p);

    // Produce critical wakeups on INT cluster 0: go idle, gate, and
    // request every cycle so the BET-expiry request is critical.
    SchedView view;
    view.actv = {1, 0, 0, 0};
    for (Cycle t = 0; t < 50; ++t) {
        if (pg.isGated(UnitClass::Int, 0))
            pg.requestWakeup(UnitClass::Int, 0, t);
        pg.tick(t, {false, false}, {false, false}, view);
    }
    EXPECT_GT(pg.idleDetectValue(UnitClass::Int), 5u)
        << "critical wakeups in the epoch must raise idle-detect";
    EXPECT_GT(pg.adaptive(UnitClass::Int).increments(), 0u);
}

TEST(PgController, AdaptiveTypesAreIndependent)
{
    PgParams p = params(PgPolicy::CoordinatedBlackout, 5, 3, 1);
    p.adaptiveIdleDetect = true;
    p.epochLength = 50;
    p.criticalThreshold = 0;
    PgController pg(p);
    SchedView view;
    view.actv = {1, 0, 0, 0};
    for (Cycle t = 0; t < 50; ++t) {
        if (pg.isGated(UnitClass::Int, 0))
            pg.requestWakeup(UnitClass::Int, 0, t);
        // FP never receives requests: no FP critical wakeups.
        pg.tick(t, {false, false}, {true, true}, view);
    }
    EXPECT_GT(pg.idleDetectValue(UnitClass::Int), 5u);
    EXPECT_EQ(pg.idleDetectValue(UnitClass::Fp), 5u);
}

TEST(PgController, FinalizeFlushesHistograms)
{
    PgController pg(params(PgPolicy::None));
    idleAll(pg, 0, 10);
    pg.finalize(10);
    EXPECT_EQ(pg.domain(UnitClass::Int, 0).idleHistogram().total(), 1u);
    EXPECT_EQ(pg.domain(UnitClass::Fp, 1).idleHistogram().total(), 1u);
}

TEST(PgControllerDeath, DomainAccessForUngatedClassPanics)
{
    PgController pg(params(PgPolicy::Conventional));
    EXPECT_DEATH(pg.domain(UnitClass::Sfu, 0), "not gated");
}

/** Property: canExecute and isGated are never both true. */
class ControllerPolicy : public ::testing::TestWithParam<PgPolicy>
{
};

TEST_P(ControllerPolicy, ExecutableAndGatedAreExclusive)
{
    PgController pg(params(GetParam(), 2, 4, 2));
    SchedView view;
    view.actv = {1, 1, 0, 0};
    Rng rng(5);
    for (Cycle t = 0; t < 500; ++t) {
        std::array<bool, 2> ib = {
            pg.canExecute(UnitClass::Int, 0) && rng.nextBool(0.3),
            pg.canExecute(UnitClass::Int, 1) && rng.nextBool(0.3)};
        std::array<bool, 2> fb = {
            pg.canExecute(UnitClass::Fp, 0) && rng.nextBool(0.2),
            pg.canExecute(UnitClass::Fp, 1) && rng.nextBool(0.2)};
        if (rng.nextBool(0.1)) {
            int tgt = pg.pickWakeupTarget(UnitClass::Int);
            if (tgt >= 0)
                pg.requestWakeup(UnitClass::Int,
                                 static_cast<unsigned>(tgt), t);
        }
        pg.tick(t, ib, fb, view);
        for (UnitClass uc : {UnitClass::Int, UnitClass::Fp})
            for (unsigned c = 0; c < kClustersPerType; ++c)
                EXPECT_FALSE(pg.canExecute(uc, c) && pg.isGated(uc, c));
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, ControllerPolicy,
                         ::testing::Values(PgPolicy::None,
                                           PgPolicy::Conventional,
                                           PgPolicy::NaiveBlackout,
                                           PgPolicy::CoordinatedBlackout));

} // namespace
} // namespace wg
