/**
 * @file
 * Locks in the concurrency determinism guarantee: a multi-SM Gpu::run
 * produces a SimResult bit-identical to the single-threaded path,
 * under the shared pool, a pool of size 1, and across repeated runs.
 * The figure sweeps rely on this — pooling is purely a wall-clock
 * optimisation, never a result change.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/threadpool.hh"
#include "core/experiment.hh"
#include "core/presets.hh"
#include "metrics/exporters.hh"
#include "metrics/registry.hh"
#include "sim/gpu.hh"
#include "trace/sink.hh"

namespace wg {
namespace {

GpuConfig
config(unsigned sms)
{
    ExperimentOptions opts;
    opts.numSms = sms;
    return makeConfig(Technique::WarpedGates, opts);
}

BenchmarkProfile
profile()
{
    BenchmarkProfile p = findBenchmark("hotspot");
    p.kernelLength = 400;
    p.residentWarps = 16;
    return p;
}

void
expectHistogramsIdentical(const Histogram& a, const Histogram& b)
{
    ASSERT_EQ(a.maxBin(), b.maxBin());
    EXPECT_EQ(a.total(), b.total());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.overflow(), b.overflow());
    for (std::uint64_t bin = 0; bin <= a.maxBin(); ++bin)
        EXPECT_EQ(a.bin(bin), b.bin(bin)) << "bin " << bin;
}

void
expectEnergyIdentical(const UnitEnergy& a, const UnitEnergy& b)
{
    // Bit-identical, not nearly-equal: the pooled path must do the
    // exact same arithmetic in the exact same order.
    EXPECT_EQ(a.dynamicE, b.dynamicE);
    EXPECT_EQ(a.staticE, b.staticE);
    EXPECT_EQ(a.overheadE, b.overheadE);
    EXPECT_EQ(a.staticSaved, b.staticSaved);
    EXPECT_EQ(a.staticNoPg, b.staticNoPg);
}

void
expectResultsIdentical(const SimResult& a, const SimResult& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalSmCycles, b.totalSmCycles);
    ASSERT_EQ(a.smCycles.size(), b.smCycles.size());
    for (std::size_t s = 0; s < a.smCycles.size(); ++s)
        EXPECT_EQ(a.smCycles[s], b.smCycles[s]) << "SM " << s;

    EXPECT_EQ(a.aggregate.completed, b.aggregate.completed);
    EXPECT_EQ(a.aggregate.issuedTotal, b.aggregate.issuedTotal);
    for (std::size_t c = 0; c < kNumUnitClasses; ++c)
        EXPECT_EQ(a.aggregate.issuedByClass[c],
                  b.aggregate.issuedByClass[c]);
    for (unsigned t = 0; t < 2; ++t) {
        for (unsigned c = 0; c < 2; ++c) {
            const ClusterStats& ca = a.aggregate.clusters[t][c];
            const ClusterStats& cb = b.aggregate.clusters[t][c];
            EXPECT_EQ(ca.issues, cb.issues);
            EXPECT_EQ(ca.pg.busyCycles, cb.pg.busyCycles);
            EXPECT_EQ(ca.pg.idleOnCycles, cb.pg.idleOnCycles);
            EXPECT_EQ(ca.pg.uncompCycles, cb.pg.uncompCycles);
            EXPECT_EQ(ca.pg.compCycles, cb.pg.compCycles);
            EXPECT_EQ(ca.pg.wakeupCycles, cb.pg.wakeupCycles);
            EXPECT_EQ(ca.pg.gatingEvents, cb.pg.gatingEvents);
            EXPECT_EQ(ca.pg.wakeups, cb.pg.wakeups);
            EXPECT_EQ(ca.pg.criticalWakeups, cb.pg.criticalWakeups);
            expectHistogramsIdentical(ca.idleHist, cb.idleHist);
        }
    }
    EXPECT_EQ(a.aggregate.memHits, b.aggregate.memHits);
    EXPECT_EQ(a.aggregate.memMisses, b.aggregate.memMisses);
    EXPECT_EQ(a.aggregate.prioritySwitches, b.aggregate.prioritySwitches);

    expectEnergyIdentical(a.intEnergy, b.intEnergy);
    expectEnergyIdentical(a.fpEnergy, b.fpEnergy);
    expectEnergyIdentical(a.sfuEnergy, b.sfuEnergy);
    expectEnergyIdentical(a.ldstEnergy, b.ldstEnergy);
    expectHistogramsIdentical(a.intIdleHist, b.intIdleHist);
    expectHistogramsIdentical(a.fpIdleHist, b.fpIdleHist);
}

TEST(Determinism, PooledMatchesSerialBitIdentical)
{
    Gpu gpu(config(4));
    BenchmarkProfile p = profile();
    SimResult serial = gpu.run(p, nullptr);
    SimResult pooled = gpu.run(p, &ThreadPool::global());
    expectResultsIdentical(serial, pooled);
}

TEST(Determinism, PoolOfSizeOneMatchesSerial)
{
    ThreadPool one(1);
    Gpu gpu(config(4));
    BenchmarkProfile p = profile();
    SimResult serial = gpu.run(p, nullptr);
    SimResult pooled = gpu.run(p, &one);
    expectResultsIdentical(serial, pooled);
}

TEST(Determinism, StableAcrossRepeatedPooledRuns)
{
    Gpu gpu(config(6));
    BenchmarkProfile p = profile();
    SimResult first = gpu.run(p, &ThreadPool::global());
    for (int rep = 0; rep < 2; ++rep) {
        SimResult again = gpu.run(p, &ThreadPool::global());
        expectResultsIdentical(first, again);
    }
}

TEST(Determinism, TraceBitIdenticalSerialVsPooled)
{
    // Tracing inherits the determinism guarantee: the serialised JSONL
    // stream (meta line, every event, truncation markers) of a pooled
    // run must equal the serial run's byte for byte.
    Gpu gpu(config(4));
    BenchmarkProfile p = profile();

    trace::Collector serial_collector;
    SimResult serial = gpu.run(p, nullptr, &serial_collector);
    trace::Collector pooled_collector;
    SimResult pooled = gpu.run(p, &ThreadPool::global(),
                               &pooled_collector);
    expectResultsIdentical(serial, pooled);

    ASSERT_GT(serial_collector.totalEvents(), 0u);
    std::ostringstream serial_os, pooled_os;
    trace::writeJsonl(serial_os, serial_collector);
    trace::writeJsonl(pooled_os, pooled_collector);
    EXPECT_EQ(serial_os.str(), pooled_os.str());
}

TEST(Determinism, MetricsBitIdenticalSerialVsPooled)
{
    // The metrics files inherit the determinism guarantee: every
    // serialisation (epoch series + final registry) of a pooled run
    // must equal the serial run's byte for byte.
    Gpu gpu(config(4));
    BenchmarkProfile p = profile();

    metrics::Collector serial_metrics;
    SimResult serial = gpu.run(p, nullptr, nullptr, &serial_metrics);
    metrics::Collector pooled_metrics;
    SimResult pooled = gpu.run(p, &ThreadPool::global(), nullptr,
                               &pooled_metrics);
    expectResultsIdentical(serial, pooled);
    ASSERT_GT(serial_metrics.totalSamples(), 0u);

    StatSet serial_set = metrics::toStatSet(serial);
    StatSet pooled_set = metrics::toStatSet(pooled);
    for (metrics::MetricsFormat format :
         {metrics::MetricsFormat::Jsonl, metrics::MetricsFormat::Csv,
          metrics::MetricsFormat::Prom}) {
        std::ostringstream serial_os, pooled_os;
        metrics::writeMetrics(serial_os, &serial_metrics, serial_set,
                              format);
        metrics::writeMetrics(pooled_os, &pooled_metrics, pooled_set,
                              format);
        EXPECT_EQ(serial_os.str(), pooled_os.str())
            << metrics::metricsFormatName(format);
    }
}

TEST(Determinism, MeteredRunMatchesUnmeteredRun)
{
    // Attaching an epoch sampler must never perturb the simulation.
    Gpu gpu(config(4));
    BenchmarkProfile p = profile();
    SimResult plain = gpu.run(p, nullptr);
    metrics::Collector mets;
    SimResult metered = gpu.run(p, nullptr, nullptr, &mets);
    expectResultsIdentical(plain, metered);
}

TEST(Determinism, TracedRunMatchesUntracedRun)
{
    // Attaching a collector must never perturb the simulation itself.
    Gpu gpu(config(4));
    BenchmarkProfile p = profile();
    SimResult plain = gpu.run(p, nullptr);
    trace::Collector collector;
    SimResult traced = gpu.run(p, nullptr, &collector);
    expectResultsIdentical(plain, traced);
}

TEST(Determinism, BatchedSweepMatchesSerialSweep)
{
    // The ExperimentRunner layer on top of Gpu: one serial runner, one
    // pooled runner, same sweep — every result must agree exactly.
    ExperimentOptions opts;
    opts.numSms = 4;
    const std::vector<std::string> benches = {"hotspot", "bfs", "NN"};
    const std::vector<Technique> techs = {Technique::Baseline,
                                          Technique::WarpedGates};
    ExperimentRunner serial(opts, nullptr);
    ExperimentRunner pooled(opts, &ThreadPool::global());
    auto serial_results = serial.runAll({benches, techs});
    auto pooled_results = pooled.runAll({benches, techs});
    ASSERT_EQ(serial_results.size(), pooled_results.size());
    for (std::size_t i = 0; i < serial_results.size(); ++i)
        expectResultsIdentical(*serial_results[i], *pooled_results[i]);
}

} // namespace
} // namespace wg
