/**
 * @file
 * Unit tests for the warp bitmask primitives the scheduler hot path
 * is built on: single-bit extraction, rotation, and deterministic
 * ascending-id iteration.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sched/bitmask.hh"

namespace wg {
namespace {

TEST(Bitmask, WarpBitAndHasWarp)
{
    EXPECT_EQ(warpBit(0), 1u);
    EXPECT_EQ(warpBit(63), 0x8000000000000000u);
    const WarpMask m = warpBit(0) | warpBit(17) | warpBit(63);
    EXPECT_TRUE(hasWarp(m, 0));
    EXPECT_TRUE(hasWarp(m, 17));
    EXPECT_TRUE(hasWarp(m, 63));
    EXPECT_FALSE(hasWarp(m, 1));
    EXPECT_FALSE(hasWarp(m, 62));
}

TEST(Bitmask, FirstHotIsLowestBit)
{
    EXPECT_EQ(firstHot(warpBit(5) | warpBit(40)), warpBit(5));
    EXPECT_EQ(firstHot(warpBit(63)), warpBit(63));
    EXPECT_EQ(firstHot(0), 0u);
}

TEST(Bitmask, FirstHotIndexBoundaries)
{
    EXPECT_EQ(firstHotIndex(warpBit(0)), 0u);
    EXPECT_EQ(firstHotIndex(warpBit(63)), 63u);
    EXPECT_EQ(firstHotIndex(warpBit(31) | warpBit(32)), 31u);
    EXPECT_EQ(firstHotIndex(0), 64u) << "empty mask sentinel";
}

TEST(Bitmask, DropFirstHotPeelsInAscendingOrder)
{
    WarpMask m = warpBit(3) | warpBit(3) | warpBit(47) | warpBit(63);
    EXPECT_EQ(firstHotIndex(m), 3u);
    m = dropFirstHot(m);
    EXPECT_EQ(firstHotIndex(m), 47u);
    m = dropFirstHot(m);
    EXPECT_EQ(firstHotIndex(m), 63u);
    m = dropFirstHot(m);
    EXPECT_EQ(m, 0u);
}

TEST(Bitmask, PopcountMatchesBitsSet)
{
    EXPECT_EQ(popcount(0), 0u);
    EXPECT_EQ(popcount(~WarpMask{0}), 64u);
    EXPECT_EQ(popcount(warpBit(0) | warpBit(63)), 2u);
}

TEST(Bitmask, ForEachWarpVisitsAscending)
{
    const WarpMask m = warpBit(0) | warpBit(9) | warpBit(32) | warpBit(63);
    std::vector<WarpId> seen;
    forEachWarp(m, [&](WarpId w) { seen.push_back(w); });
    EXPECT_EQ(seen, (std::vector<WarpId>{0, 9, 32, 63}));
}

TEST(Bitmask, ForEachWarpEmptyMaskNoCalls)
{
    int calls = 0;
    forEachWarp(0, [&](WarpId) { ++calls; });
    EXPECT_EQ(calls, 0);
}

} // namespace
} // namespace wg
