/**
 * @file
 * Unit tests for the register scoreboard.
 */

#include <gtest/gtest.h>

#include "sched/scoreboard.hh"

namespace wg {
namespace {

TEST(Scoreboard, FreshBoardIsReady)
{
    Scoreboard sb(4);
    EXPECT_TRUE(sb.ready(0, makeInt(3, 1, 2)));
    EXPECT_TRUE(sb.clean(0));
}

TEST(Scoreboard, RawHazardBlocks)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeInt(3));
    EXPECT_FALSE(sb.ready(0, makeInt(5, 3)));
    EXPECT_FALSE(sb.ready(0, makeInt(5, 0, 3)));
    EXPECT_TRUE(sb.ready(0, makeInt(5, 1, 2)));
}

TEST(Scoreboard, WawHazardBlocks)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeInt(3));
    EXPECT_FALSE(sb.ready(0, makeInt(3, 1, 2)));
}

TEST(Scoreboard, CompleteClears)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeInt(3));
    sb.complete(0, 3);
    EXPECT_TRUE(sb.ready(0, makeInt(5, 3)));
    EXPECT_TRUE(sb.clean(0));
}

TEST(Scoreboard, WarpsAreIndependent)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeInt(3));
    EXPECT_TRUE(sb.ready(1, makeInt(5, 3)));
    EXPECT_FALSE(sb.ready(0, makeInt(5, 3)));
}

TEST(Scoreboard, BlockedOnLongOnlyForMissLoads)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeLoad(2, MemClass::Miss));
    sb.markIssued(0, makeInt(3));
    EXPECT_TRUE(sb.blockedOnLong(0, makeInt(5, 2)));
    EXPECT_FALSE(sb.blockedOnLong(0, makeInt(5, 3)))
        << "short-latency producers do not demote the warp";
    EXPECT_FALSE(sb.ready(0, makeInt(5, 3)));
}

TEST(Scoreboard, HitLoadIsNotLongLatency)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeLoad(2, MemClass::Hit));
    EXPECT_FALSE(sb.blockedOnLong(0, makeInt(5, 2)));
    EXPECT_FALSE(sb.ready(0, makeInt(5, 2)));
}

TEST(Scoreboard, LongBitClearedOnComplete)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeLoad(2, MemClass::Miss));
    sb.complete(0, 2);
    EXPECT_FALSE(sb.blockedOnLong(0, makeInt(5, 2)));
    EXPECT_TRUE(sb.ready(0, makeInt(5, 2)));
}

TEST(Scoreboard, StoresTrackSourcesOnly)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeInt(3));
    Instruction st = makeStore(MemClass::Hit, 3);
    EXPECT_FALSE(sb.ready(0, st));
    sb.complete(0, 3);
    EXPECT_TRUE(sb.ready(0, st));
    sb.markIssued(0, st); // no dest: must not mark anything
    EXPECT_TRUE(sb.clean(0));
}

TEST(Scoreboard, WawOnLongProducerAlsoBlocksLong)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeLoad(2, MemClass::Miss));
    // An instruction *writing* r2 is WAW-blocked by the miss.
    EXPECT_TRUE(sb.blockedOnLong(0, makeInt(2)));
}

TEST(Scoreboard, Reset)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeLoad(2, MemClass::Miss));
    sb.markIssued(1, makeInt(3));
    sb.reset();
    EXPECT_TRUE(sb.clean(0));
    EXPECT_TRUE(sb.clean(1));
    EXPECT_TRUE(sb.ready(0, makeInt(5, 2)));
}

TEST(ScoreboardDeath, DoubleWriterPanics)
{
    Scoreboard sb(4);
    sb.markIssued(0, makeInt(3));
    EXPECT_DEATH(sb.markIssued(0, makeInt(3)), "WAW violation");
}

/** Property: every register blocks exactly its own consumers. */
class ScoreboardRegs : public ::testing::TestWithParam<RegId>
{
};

TEST_P(ScoreboardRegs, PendingRegisterBlocksOnlyItself)
{
    const RegId reg = GetParam();
    Scoreboard sb(2);
    sb.markIssued(0, makeInt(reg));
    const RegId dest = static_cast<RegId>((reg + 1) % 16);
    for (RegId other = 0; other < 16; ++other) {
        bool expect_ready = other != reg;
        EXPECT_EQ(sb.ready(0, makeFp(dest, other)), expect_ready)
            << "src " << other << " vs pending " << reg;
    }
}

INSTANTIATE_TEST_SUITE_P(AllRegs, ScoreboardRegs,
                         ::testing::Range<RegId>(0, 16));

} // namespace
} // namespace wg
