/**
 * @file
 * Unit tests for the Section 7.5 hardware-overhead model.
 */

#include <gtest/gtest.h>

#include "power/area.hh"

namespace wg {
namespace {

TEST(AreaModel, InventoryCoversAllThreeMechanisms)
{
    AreaModel model;
    bool gates = false, blackout = false, adaptive = false;
    for (const auto& s : model.inventory()) {
        if (s.mechanism == "GATES")
            gates = true;
        if (s.mechanism == "Blackout")
            blackout = true;
        if (s.mechanism == "Adaptive")
            adaptive = true;
        EXPECT_GT(s.bits, 0u);
        EXPECT_GT(s.count, 0u);
        EXPECT_FALSE(s.name.empty());
    }
    EXPECT_TRUE(gates);
    EXPECT_TRUE(blackout);
    EXPECT_TRUE(adaptive);
}

TEST(AreaModel, GatesTypeBitsMatchActiveSet)
{
    // 2 bits per entry of the 32-entry active warps set (Section 6).
    AreaModel model;
    for (const auto& s : model.inventory()) {
        if (s.name.find("type bits") != std::string::npos) {
            EXPECT_EQ(s.bits, 2u);
            EXPECT_EQ(s.count, 32u);
        }
        if (s.name.find("BET countdown") != std::string::npos) {
            EXPECT_EQ(s.bits, 5u) << "5-bit counters hold BET <= 24";
            EXPECT_EQ(s.count, 4u) << "one per gateable cluster";
        }
        if (s.name.find("RDY") != std::string::npos) {
            EXPECT_EQ(s.bits, 5u) << "32 active warps need 5 bits";
            EXPECT_EQ(s.count, 4u);
        }
    }
}

TEST(AreaModel, TotalsMatchPublishedSynthesis)
{
    AreaModel model;
    HardwareOverhead hw = model.compute();
    EXPECT_NEAR(hw.areaUm2, 1210.8, 0.5);
    EXPECT_NEAR(hw.dynamicW, 1.55e-3, 1e-5);
    EXPECT_NEAR(hw.leakageW, 1.21e-5, 1e-7);
}

TEST(AreaModel, FractionsMatchPaper)
{
    AreaModel model;
    HardwareOverhead hw = model.compute();
    EXPECT_LT(hw.areaFraction, 0.00005) << "paper: ~0.003% area";
    EXPECT_NEAR(hw.dynamicFraction, 0.0008, 0.0002);
    EXPECT_NEAR(hw.leakageFraction, 7.5e-6, 2e-6);
}

TEST(AreaModel, BitTotalsConsistent)
{
    AreaModel model;
    HardwareOverhead hw = model.compute();
    unsigned bits = 0;
    for (const auto& s : model.inventory())
        bits += s.bits * s.count;
    EXPECT_EQ(hw.totalBits, bits);
    EXPECT_GT(bits, 100u);
}

} // namespace
} // namespace wg
