/**
 * @file
 * Unit tests for the energy model and its accounting identities.
 */

#include <gtest/gtest.h>

#include "power/energymodel.hh"

namespace wg {
namespace {

PgDomainStats
statsWith(std::uint64_t busy, std::uint64_t idle_on,
          std::uint64_t uncomp, std::uint64_t comp,
          std::uint64_t wakeup_cycles, std::uint64_t events)
{
    PgDomainStats s;
    s.busyCycles = busy;
    s.idleOnCycles = idle_on;
    s.uncompCycles = uncomp;
    s.compCycles = comp;
    s.wakeupCycles = wakeup_cycles;
    s.gatingEvents = events;
    s.wakeups = events;
    return s;
}

TEST(EnergyModel, StaticConservation)
{
    // staticE + staticSaved == totalCycles * P_static.
    EnergyModel model;
    const Cycle total = 1000;
    PgDomainStats s = statsWith(300, 200, 100, 350, 50, 10);
    UnitEnergy e = model.cluster(UnitClass::Int, s, 300, total, 14);
    double p = model.constants().staticPerCycle(UnitClass::Int);
    EXPECT_NEAR(e.staticE + e.staticSaved, total * p, 1e-18);
    EXPECT_NEAR(e.staticNoPg, total * p, 1e-18);
}

TEST(EnergyModel, OverheadIsBetTimesEvents)
{
    EnergyModel model;
    PgDomainStats s = statsWith(0, 0, 0, 1000, 0, 7);
    UnitEnergy e = model.cluster(UnitClass::Fp, s, 0, 1000, 14);
    double p = model.constants().staticPerCycle(UnitClass::Fp);
    EXPECT_NEAR(e.overheadE, 7.0 * 14.0 * p, 1e-18);
}

TEST(EnergyModel, DynamicScalesWithIssues)
{
    EnergyModel model;
    PgDomainStats s = statsWith(100, 0, 0, 0, 0, 0);
    UnitEnergy e1 = model.cluster(UnitClass::Int, s, 100, 100, 14);
    UnitEnergy e2 = model.cluster(UnitClass::Int, s, 200, 100, 14);
    EXPECT_NEAR(e2.dynamicE, 2.0 * e1.dynamicE, 1e-18);
}

TEST(EnergyModel, GatedExactlyBreakEvenIsEnergyNeutral)
{
    // A gating instance held exactly BET cycles recoups exactly its
    // overhead: net savings zero (the paper's break-even definition).
    EnergyModel model;
    PgDomainStats s = statsWith(0, 0, 14, 0, 0, 1);
    UnitEnergy e = model.cluster(UnitClass::Int, s, 0, 14, 14);
    EXPECT_NEAR(e.staticSaved - e.overheadE, 0.0, 1e-18);
    EXPECT_NEAR(e.staticSavingsRatio(), 0.0, 1e-12);
}

TEST(EnergyModel, EarlyWakeupNetsNegative)
{
    // Gated for less than BET: conventional gating loses energy.
    EnergyModel model;
    PgDomainStats s = statsWith(90, 0, 10, 0, 0, 1);
    UnitEnergy e = model.cluster(UnitClass::Int, s, 0, 100, 14);
    EXPECT_LT(e.staticSavingsRatio(), 0.0);
}

TEST(EnergyModel, LongGatingNetsPositive)
{
    EnergyModel model;
    PgDomainStats s = statsWith(0, 0, 14, 486, 0, 1);
    UnitEnergy e = model.cluster(UnitClass::Int, s, 0, 1000, 14);
    EXPECT_NEAR(e.staticSavingsRatio(), (500.0 - 14.0) / 1000.0, 1e-12);
}

TEST(EnergyModel, WakeupCyclesStillLeak)
{
    EnergyModel model;
    PgDomainStats gated = statsWith(0, 0, 0, 100, 0, 0);
    PgDomainStats waking = statsWith(0, 0, 0, 90, 10, 0);
    UnitEnergy a = model.cluster(UnitClass::Int, gated, 0, 100, 14);
    UnitEnergy b = model.cluster(UnitClass::Int, waking, 0, 100, 14);
    EXPECT_GT(b.staticE, a.staticE);
    EXPECT_LT(b.staticSaved, a.staticSaved);
}

TEST(EnergyModel, AlwaysOnLeaksEveryCycle)
{
    EnergyModel model;
    UnitEnergy e = model.alwaysOn(UnitClass::Sfu, 50, 1000);
    double p = model.constants().staticPerCycle(UnitClass::Sfu);
    EXPECT_NEAR(e.staticE, 1000.0 * p, 1e-18);
    EXPECT_NEAR(e.staticNoPg, e.staticE, 1e-18);
    EXPECT_DOUBLE_EQ(e.staticSavingsRatio(), 0.0);
    EXPECT_GT(e.dynamicE, 0.0);
}

TEST(EnergyModel, SavingsRatioZeroWhenNoBaseline)
{
    UnitEnergy e;
    EXPECT_DOUBLE_EQ(e.staticSavingsRatio(), 0.0);
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(EnergyModel, UnitEnergyAdd)
{
    UnitEnergy a, b;
    a.dynamicE = 1;
    a.staticE = 2;
    a.overheadE = 3;
    a.staticSaved = 4;
    a.staticNoPg = 5;
    b = a;
    a.add(b);
    EXPECT_DOUBLE_EQ(a.dynamicE, 2);
    EXPECT_DOUBLE_EQ(a.staticE, 4);
    EXPECT_DOUBLE_EQ(a.overheadE, 6);
    EXPECT_DOUBLE_EQ(a.staticSaved, 8);
    EXPECT_DOUBLE_EQ(a.staticNoPg, 10);
    EXPECT_DOUBLE_EQ(a.total(), 12);
}

TEST(PowerConstants, FpLeaksFarMoreThanInt)
{
    // GPUWattch: FP units 4.40 W vs INT units 0.00557 W chip-wide.
    PowerConstants pc;
    EXPECT_GT(pc.staticPerCycle(UnitClass::Fp),
              100.0 * pc.staticPerCycle(UnitClass::Int));
}

TEST(PowerConstants, ExecShareOfChipLeakage)
{
    // The paper derives 16.38% from these numbers.
    PowerConstants pc;
    double exec = (pc.intClusterStatic + pc.fpClusterStatic) * 2 *
                  pc.numSms;
    EXPECT_NEAR(exec / pc.chipLeakage, 0.1638, 0.002);
}

TEST(PowerConstants, AllClassesHavePositiveCosts)
{
    PowerConstants pc;
    for (UnitClass uc : {UnitClass::Int, UnitClass::Fp, UnitClass::Sfu,
                         UnitClass::Ldst}) {
        EXPECT_GT(pc.staticPerCycle(uc), 0.0);
        EXPECT_GT(pc.dynPerOp(uc), 0.0);
    }
}

} // namespace
} // namespace wg
