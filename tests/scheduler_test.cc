/**
 * @file
 * Unit tests for the two-level baseline and GATES schedulers.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sched/gates.hh"
#include "sched/twolevel.hh"

namespace wg {
namespace {

/**
 * Builds a SchedView from explicit (warp, head class) pairs listed in
 * least-recently-issued order; owns the lri/headClass storage the view
 * points into, so keep the builder alive while the view is in use.
 */
struct ViewBuilder
{
    std::vector<WarpId> lri;
    std::array<UnitClass, kMaxWarpsPerSm> head_class = {};
    SchedView view;

    ViewBuilder&
    add(WarpId w, UnitClass uc, bool ready = true)
    {
        lri.push_back(w);
        head_class[w] = uc;
        view.activeMask |= warpBit(w);
        view.actv[static_cast<std::size_t>(uc)] += 1;
        if (ready) {
            view.readyMask[static_cast<std::size_t>(uc)] |= warpBit(w);
            view.rdy[static_cast<std::size_t>(uc)] += 1;
        }
        return *this;
    }

    const SchedView&
    get()
    {
        view.lri = lri.data();
        view.numActive = lri.size();
        view.headClass = head_class.data();
        return view;
    }
};

TEST(TwoLevel, OrderIsLriOrder)
{
    TwoLevelScheduler sched;
    ViewBuilder b;
    b.add(3, UnitClass::Int)
        .add(0, UnitClass::Int)
        .add(4, UnitClass::Fp)
        .add(1, UnitClass::Ldst)
        .add(2, UnitClass::Sfu);
    std::vector<WarpId> out;
    sched.beginCycle(0, b.get());
    sched.order(b.get(), out);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out, (std::vector<WarpId>{3, 0, 4, 1, 2}))
        << "type-agnostic LRR order";
}

TEST(TwoLevel, NonReadyWarpsAreNotCandidates)
{
    TwoLevelScheduler sched;
    ViewBuilder b;
    b.add(3, UnitClass::Int)
        .add(0, UnitClass::Int, /*ready=*/false)
        .add(4, UnitClass::Fp);
    std::vector<WarpId> out;
    sched.order(b.get(), out);
    EXPECT_EQ(out, (std::vector<WarpId>{3, 4}));
}

TEST(TwoLevel, NoPrioritySwitches)
{
    TwoLevelScheduler sched;
    EXPECT_EQ(sched.prioritySwitches(), 0u);
}

SchedView
viewWith(std::uint32_t int_actv, std::uint32_t fp_actv)
{
    SchedView v;
    v.actv[static_cast<std::size_t>(UnitClass::Int)] = int_actv;
    v.actv[static_cast<std::size_t>(UnitClass::Fp)] = fp_actv;
    return v;
}

TEST(Gates, StartsWithIntPriority)
{
    GatesScheduler sched;
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
}

TEST(Gates, OrderGroupsByClassPriority)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(2, 2));
    ViewBuilder b;
    b.add(0, UnitClass::Fp)
        .add(1, UnitClass::Int)
        .add(2, UnitClass::Ldst)
        .add(3, UnitClass::Sfu)
        .add(4, UnitClass::Int)
        .add(5, UnitClass::Fp);
    std::vector<WarpId> out;
    sched.order(b.get(), out);
    // INT first (warps 1, 4 in LRI order), then LDST (2), SFU (3),
    // then FP (0, 5).
    EXPECT_EQ(out, (std::vector<WarpId>{1, 4, 2, 3, 0, 5}));
}

TEST(Gates, OrderSkipsNonReadyWithinEveryClass)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(2, 2));
    ViewBuilder b;
    b.add(0, UnitClass::Fp)
        .add(1, UnitClass::Int, /*ready=*/false)
        .add(2, UnitClass::Ldst)
        .add(3, UnitClass::Sfu, /*ready=*/false)
        .add(4, UnitClass::Int)
        .add(5, UnitClass::Fp, /*ready=*/false);
    std::vector<WarpId> out;
    sched.order(b.get(), out);
    EXPECT_EQ(out, (std::vector<WarpId>{4, 2, 0}));
}

TEST(Gates, OrderSingleReadyWarpFastPath)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(1, 1));
    ViewBuilder b;
    b.add(7, UnitClass::Int, /*ready=*/false).add(9, UnitClass::Fp);
    std::vector<WarpId> out;
    sched.order(b.get(), out);
    EXPECT_EQ(out, (std::vector<WarpId>{9}));
}

TEST(Gates, SwitchesWhenHighTypeDrains)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(3, 3));
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
    sched.beginCycle(1, viewWith(0, 3));
    EXPECT_EQ(sched.highestPriority(), UnitClass::Fp);
    EXPECT_EQ(sched.prioritySwitches(), 1u);
}

TEST(Gates, DoesNotSwitchWhenBothEmpty)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(0, 0));
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
    EXPECT_EQ(sched.prioritySwitches(), 0u);
}

TEST(Gates, SwitchesBackWhenFpDrains)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(0, 3)); // -> FP
    sched.beginCycle(1, viewWith(3, 0)); // -> INT
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
    EXPECT_EQ(sched.prioritySwitches(), 2u);
}

TEST(Gates, SwitchesWhenHighTypeFullyBlackedOut)
{
    GatesScheduler sched;
    SchedView v = viewWith(4, 4);
    v.intBlackout = {true, true};
    sched.beginCycle(0, v);
    EXPECT_EQ(sched.highestPriority(), UnitClass::Fp)
        << "both INT clusters gated: issuing INT is impossible";
}

TEST(Gates, PartialBlackoutDoesNotSwitch)
{
    GatesScheduler sched;
    SchedView v = viewWith(4, 4);
    v.intBlackout = {true, false};
    sched.beginCycle(0, v);
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
}

TEST(Gates, BlackoutSwitchCanBeDisabled)
{
    GatesConfig cfg;
    cfg.switchOnBlackout = false;
    GatesScheduler sched(cfg);
    SchedView v = viewWith(4, 4);
    v.intBlackout = {true, true};
    sched.beginCycle(0, v);
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
}

TEST(Gates, NoSwitchToEmptyLowType)
{
    GatesScheduler sched;
    SchedView v = viewWith(4, 0);
    v.intBlackout = {true, true};
    sched.beginCycle(0, v);
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int)
        << "switching to a type with no active warps is pointless";
}

TEST(Gates, MaxPriorityHoldForcesSwitch)
{
    GatesConfig cfg;
    cfg.maxPriorityHold = 10;
    GatesScheduler sched(cfg);
    for (Cycle t = 0; t < 10; ++t) {
        sched.beginCycle(t, viewWith(4, 4));
        EXPECT_EQ(sched.highestPriority(), UnitClass::Int) << t;
    }
    sched.beginCycle(10, viewWith(4, 4));
    EXPECT_EQ(sched.highestPriority(), UnitClass::Fp);
}

TEST(Gates, LdstOutranksSfu)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(1, 1));
    ViewBuilder b;
    b.add(0, UnitClass::Sfu).add(1, UnitClass::Ldst);
    std::vector<WarpId> out;
    sched.order(b.get(), out);
    EXPECT_EQ(out, (std::vector<WarpId>{1, 0}));
}

TEST(Gates, FpPriorityReversesIntAndFp)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(0, 2)); // switch to FP priority
    ViewBuilder b;
    b.add(0, UnitClass::Int).add(1, UnitClass::Fp);
    std::vector<WarpId> out;
    sched.order(b.get(), out);
    EXPECT_EQ(out[0], 1u) << "FP is now highest priority";
    EXPECT_EQ(out[1], 0u) << "INT is now lowest priority";
}

/**
 * beginCycle and nextEventCycle share one set of switch predicates;
 * this property test pins the contract that keeps them from drifting:
 * for a constant view, nextEventCycle(now) == now exactly when
 * beginCycle(now) would switch — except the blackout flip-flop regime
 * (both types fully gated, active warps on each side), where the swap
 * re-fires every cycle, fastForward replays it exactly, and
 * nextEventCycle deliberately reports no horizon event.
 */
TEST(Gates, SwitchPredicateConsistencyRandomized)
{
    Rng rng(0x5eedf00d);
    for (int iter = 0; iter < 5000; ++iter) {
        GatesConfig cfg;
        cfg.maxPriorityHold =
            rng.nextBool(0.5) ? 1 + rng.nextRange(8) : 0;
        cfg.switchOnBlackout = rng.nextBool(0.7);
        GatesScheduler sched(cfg);

        // Randomize internal state: maybe flip priority to FP, and
        // open a random gap since the last switch.
        Cycle now = 0;
        if (rng.nextBool(0.5)) {
            sched.beginCycle(now, viewWith(0, 3));
            ASSERT_EQ(sched.highestPriority(), UnitClass::Fp);
        }
        now += rng.nextRange(12);

        SchedView v = viewWith(rng.nextRange(4), rng.nextRange(4));
        v.intBlackout = {rng.nextBool(0.4), rng.nextBool(0.4)};
        v.fpBlackout = {rng.nextBool(0.4), rng.nextBool(0.4)};

        const bool would_switch = sched.drainSwitchFires(v) ||
                                  sched.blackoutSwitchFires(v) ||
                                  sched.fairnessSwitchFires(now, v);
        const Cycle next = sched.nextEventCycle(now, v);

        if (sched.blackoutFlipFlop(v)) {
            EXPECT_EQ(next, kNeverCycle) << "iter " << iter;
        } else {
            EXPECT_EQ(next == now, would_switch) << "iter " << iter;
        }

        // The predicates must agree with what beginCycle actually does.
        const std::uint64_t before = sched.prioritySwitches();
        sched.beginCycle(now, v);
        EXPECT_EQ(sched.prioritySwitches() == before + 1, would_switch)
            << "iter " << iter;
    }
}

/**
 * Cross-check the mask-based order() against a straightforward AoS
 * reference of the pre-bitmask selection: walk the LRI vector once per
 * priority class, picking ready warps of that class. The mask rotation
 * must reproduce that order exactly on random views.
 */
TEST(Gates, OrderMatchesAosReferenceRandomized)
{
    Rng rng(0xbadc0de5);
    for (int iter = 0; iter < 2000; ++iter) {
        GatesScheduler sched;
        if (rng.nextBool(0.5)) {
            sched.beginCycle(0, viewWith(0, 3)); // flip priority to FP
        }

        // Random active set in random LRI order with random classes.
        ViewBuilder b;
        std::vector<WarpId> ids;
        for (WarpId w = 0; w < kMaxWarpsPerSm; ++w)
            if (rng.nextBool(0.25))
                ids.push_back(w);
        for (std::size_t i = ids.size(); i > 1; --i)
            std::swap(ids[i - 1], ids[rng.nextRange(i)]);
        for (WarpId w : ids) {
            b.add(w, static_cast<UnitClass>(rng.nextRange(4)),
                  /*ready=*/rng.nextBool(0.6));
        }
        const SchedView& v = b.get();

        // AoS reference: one LRI pass per class, priority order.
        const UnitClass hi = sched.highestPriority();
        const UnitClass lo =
            hi == UnitClass::Int ? UnitClass::Fp : UnitClass::Int;
        const UnitClass prio[] = {hi, UnitClass::Ldst, UnitClass::Sfu,
                                  lo};
        std::vector<WarpId> expect;
        for (UnitClass uc : prio) {
            for (WarpId w : b.lri) {
                if (b.head_class[w] == uc &&
                    hasWarp(v.readyMask[static_cast<std::size_t>(uc)],
                            w)) {
                    expect.push_back(w);
                }
            }
        }

        std::vector<WarpId> out;
        sched.order(v, out);
        ASSERT_EQ(out, expect) << "iter " << iter;
    }
}

TEST(GatesDeath, ReadyOutsideActivePanics)
{
    GatesScheduler sched;
    SchedView v;
    // Two ready warps (to dodge the singleton fast path), one of them
    // outside the active set: the subset invariant is violated.
    v.readyMask[static_cast<std::size_t>(UnitClass::Int)] =
        warpBit(1) | warpBit(3);
    v.activeMask = warpBit(1);
    std::vector<WarpId> out;
    EXPECT_DEATH(sched.order(v, out), "not a subset");
}

} // namespace
} // namespace wg
