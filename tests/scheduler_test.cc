/**
 * @file
 * Unit tests for the two-level baseline and GATES schedulers.
 */

#include <gtest/gtest.h>

#include "sched/gates.hh"
#include "sched/twolevel.hh"

namespace wg {
namespace {

std::vector<WarpId>
warpIds(std::size_t n)
{
    std::vector<WarpId> ids;
    for (std::size_t i = 0; i < n; ++i)
        ids.push_back(static_cast<WarpId>(i));
    return ids;
}

TEST(TwoLevel, OrderIsIdentity)
{
    TwoLevelScheduler sched;
    auto active = warpIds(5);
    std::vector<UnitClass> types(5, UnitClass::Int);
    types[2] = UnitClass::Fp;
    std::vector<std::size_t> out;
    sched.beginCycle(0, SchedView{});
    sched.order(active, types, out);
    ASSERT_EQ(out.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(out[i], i) << "type-agnostic LRR order";
}

TEST(TwoLevel, NoPrioritySwitches)
{
    TwoLevelScheduler sched;
    EXPECT_EQ(sched.prioritySwitches(), 0u);
}

SchedView
viewWith(std::uint32_t int_actv, std::uint32_t fp_actv)
{
    SchedView v;
    v.actv[static_cast<std::size_t>(UnitClass::Int)] = int_actv;
    v.actv[static_cast<std::size_t>(UnitClass::Fp)] = fp_actv;
    return v;
}

TEST(Gates, StartsWithIntPriority)
{
    GatesScheduler sched;
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
}

TEST(Gates, OrderGroupsByClassPriority)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(2, 2));
    auto active = warpIds(6);
    std::vector<UnitClass> types = {UnitClass::Fp,  UnitClass::Int,
                                    UnitClass::Ldst, UnitClass::Sfu,
                                    UnitClass::Int, UnitClass::Fp};
    std::vector<std::size_t> out;
    sched.order(active, types, out);
    ASSERT_EQ(out.size(), 6u);
    // INT first (indices 1, 4 in list order), then LDST (2), SFU (3),
    // then FP (0, 5).
    EXPECT_EQ(out[0], 1u);
    EXPECT_EQ(out[1], 4u);
    EXPECT_EQ(out[2], 2u);
    EXPECT_EQ(out[3], 3u);
    EXPECT_EQ(out[4], 0u);
    EXPECT_EQ(out[5], 5u);
}

TEST(Gates, SwitchesWhenHighTypeDrains)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(3, 3));
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
    sched.beginCycle(1, viewWith(0, 3));
    EXPECT_EQ(sched.highestPriority(), UnitClass::Fp);
    EXPECT_EQ(sched.prioritySwitches(), 1u);
}

TEST(Gates, DoesNotSwitchWhenBothEmpty)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(0, 0));
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
    EXPECT_EQ(sched.prioritySwitches(), 0u);
}

TEST(Gates, SwitchesBackWhenFpDrains)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(0, 3)); // -> FP
    sched.beginCycle(1, viewWith(3, 0)); // -> INT
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
    EXPECT_EQ(sched.prioritySwitches(), 2u);
}

TEST(Gates, SwitchesWhenHighTypeFullyBlackedOut)
{
    GatesScheduler sched;
    SchedView v = viewWith(4, 4);
    v.intBlackout = {true, true};
    sched.beginCycle(0, v);
    EXPECT_EQ(sched.highestPriority(), UnitClass::Fp)
        << "both INT clusters gated: issuing INT is impossible";
}

TEST(Gates, PartialBlackoutDoesNotSwitch)
{
    GatesScheduler sched;
    SchedView v = viewWith(4, 4);
    v.intBlackout = {true, false};
    sched.beginCycle(0, v);
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
}

TEST(Gates, BlackoutSwitchCanBeDisabled)
{
    GatesConfig cfg;
    cfg.switchOnBlackout = false;
    GatesScheduler sched(cfg);
    SchedView v = viewWith(4, 4);
    v.intBlackout = {true, true};
    sched.beginCycle(0, v);
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int);
}

TEST(Gates, NoSwitchToEmptyLowType)
{
    GatesScheduler sched;
    SchedView v = viewWith(4, 0);
    v.intBlackout = {true, true};
    sched.beginCycle(0, v);
    EXPECT_EQ(sched.highestPriority(), UnitClass::Int)
        << "switching to a type with no active warps is pointless";
}

TEST(Gates, MaxPriorityHoldForcesSwitch)
{
    GatesConfig cfg;
    cfg.maxPriorityHold = 10;
    GatesScheduler sched(cfg);
    for (Cycle t = 0; t < 10; ++t) {
        sched.beginCycle(t, viewWith(4, 4));
        EXPECT_EQ(sched.highestPriority(), UnitClass::Int) << t;
    }
    sched.beginCycle(10, viewWith(4, 4));
    EXPECT_EQ(sched.highestPriority(), UnitClass::Fp);
}

TEST(Gates, LdstOutranksSfu)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(1, 1));
    std::vector<WarpId> active = {0, 1};
    std::vector<UnitClass> types = {UnitClass::Sfu, UnitClass::Ldst};
    std::vector<std::size_t> out;
    sched.order(active, types, out);
    EXPECT_EQ(out[0], 1u);
    EXPECT_EQ(out[1], 0u);
}

TEST(Gates, FpPriorityReversesIntAndFp)
{
    GatesScheduler sched;
    sched.beginCycle(0, viewWith(0, 2)); // switch to FP priority
    std::vector<WarpId> active = {0, 1};
    std::vector<UnitClass> types = {UnitClass::Int, UnitClass::Fp};
    std::vector<std::size_t> out;
    sched.order(active, types, out);
    EXPECT_EQ(out[0], 1u) << "FP is now highest priority";
    EXPECT_EQ(out[1], 0u) << "INT is now lowest priority";
}

TEST(GatesDeath, MismatchedArraysPanic)
{
    GatesScheduler sched;
    std::vector<WarpId> active = {0, 1};
    std::vector<UnitClass> types = {UnitClass::Int};
    std::vector<std::size_t> out;
    EXPECT_DEATH(sched.order(active, types, out), "size mismatch");
}

} // namespace
} // namespace wg
