/**
 * @file
 * Integration tests for the multi-SM GPU driver and result
 * aggregation.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "sim/gpu.hh"
#include "workload/synthetic.hh"

namespace wg {
namespace {

GpuConfig
smallConfig(unsigned sms, Technique t = Technique::ConvPG)
{
    ExperimentOptions opts;
    opts.numSms = sms;
    GpuConfig cfg = makeConfig(t, opts);
    return cfg;
}

BenchmarkProfile
tinyProfile()
{
    BenchmarkProfile p = findBenchmark("hotspot");
    p.kernelLength = 300;
    p.residentWarps = 16;
    return p;
}

TEST(Gpu, AggregatesAcrossSms)
{
    Gpu gpu(smallConfig(4));
    SimResult r = gpu.run(tinyProfile());
    ASSERT_EQ(r.smCycles.size(), 4u);
    Cycle max_cycles = 0;
    std::uint64_t sum = 0;
    for (Cycle c : r.smCycles) {
        max_cycles = std::max(max_cycles, c);
        sum += c;
    }
    EXPECT_EQ(r.cycles, max_cycles);
    EXPECT_EQ(r.totalSmCycles, sum);
    EXPECT_EQ(r.aggregate.cycles, sum);
    EXPECT_TRUE(r.aggregate.completed);
}

TEST(Gpu, InstructionTotalsScaleWithSms)
{
    BenchmarkProfile p = tinyProfile();
    Gpu one(smallConfig(1));
    Gpu four(smallConfig(4));
    SimResult r1 = one.run(p);
    SimResult r4 = four.run(p);
    // Different SMs get different programs but the same shape: totals
    // should scale roughly 4x.
    EXPECT_NEAR(static_cast<double>(r4.aggregate.issuedTotal),
                4.0 * static_cast<double>(r1.aggregate.issuedTotal),
                0.25 * static_cast<double>(r4.aggregate.issuedTotal));
}

TEST(Gpu, DeterministicDespiteThreads)
{
    Gpu gpu(smallConfig(6, Technique::WarpedGates));
    BenchmarkProfile p = tinyProfile();
    SimResult a = gpu.run(p);
    SimResult b = gpu.run(p);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalSmCycles, b.totalSmCycles);
    EXPECT_EQ(a.aggregate.issuedTotal, b.aggregate.issuedTotal);
    EXPECT_EQ(a.wakeups(UnitClass::Int), b.wakeups(UnitClass::Int));
    EXPECT_DOUBLE_EQ(a.intEnergy.total(), b.intEnergy.total());
}

TEST(Gpu, EnergyLedgersPopulated)
{
    Gpu gpu(smallConfig(2));
    SimResult r = gpu.run(tinyProfile());
    EXPECT_GT(r.intEnergy.staticNoPg, 0.0);
    EXPECT_GT(r.fpEnergy.staticNoPg, 0.0);
    EXPECT_GT(r.intEnergy.dynamicE, 0.0);
    EXPECT_GT(r.sfuEnergy.staticE, 0.0);
    EXPECT_GT(r.ldstEnergy.dynamicE, 0.0);
}

TEST(Gpu, EnergyConservationAggregated)
{
    Gpu gpu(smallConfig(3));
    SimResult r = gpu.run(tinyProfile());
    for (UnitClass uc : {UnitClass::Int, UnitClass::Fp}) {
        const UnitEnergy& e = r.energy(uc);
        EXPECT_NEAR(e.staticE + e.staticSaved, e.staticNoPg,
                    1e-9 * e.staticNoPg)
            << unitClassName(uc);
    }
}

TEST(Gpu, IdleHistogramsMergedPerType)
{
    Gpu gpu(smallConfig(2));
    SimResult r = gpu.run(tinyProfile());
    std::uint64_t per_cluster =
        r.aggregate.clusters[0][0].idleHist.total() +
        r.aggregate.clusters[0][1].idleHist.total();
    EXPECT_EQ(r.intIdleHist.total(), per_cluster);
    EXPECT_GT(r.intIdleHist.total(), 0u);
}

TEST(Gpu, RunProgramsOverridesSmCount)
{
    Gpu gpu(smallConfig(8));
    std::vector<std::vector<Program>> per_sm(2);
    per_sm[0] = {pureProgram(UnitClass::Int, 100)};
    per_sm[1] = {pureProgram(UnitClass::Fp, 100)};
    SimResult r = gpu.runPrograms(per_sm);
    EXPECT_EQ(r.smCycles.size(), 2u);
    EXPECT_EQ(
        r.aggregate.issuedByClass[static_cast<std::size_t>(UnitClass::Int)],
        100u);
    EXPECT_EQ(
        r.aggregate.issuedByClass[static_cast<std::size_t>(UnitClass::Fp)],
        100u);
}

TEST(Gpu, DerivedMetricsInRange)
{
    Gpu gpu(smallConfig(2));
    SimResult r = gpu.run(tinyProfile());
    for (UnitClass uc : {UnitClass::Int, UnitClass::Fp}) {
        EXPECT_GE(r.idleFraction(uc), 0.0);
        EXPECT_LE(r.idleFraction(uc), 1.0);
        auto regions = r.idleRegions(uc, 5, 14);
        EXPECT_NEAR(regions[0] + regions[1] + regions[2], 1.0, 1e-9);
    }
    EXPECT_GT(r.ipc(), 0.0);
}

TEST(GpuDeath, ZeroSmsIsFatal)
{
    GpuConfig cfg = smallConfig(1);
    cfg.numSms = 0;
    EXPECT_EXIT(Gpu{cfg}, ::testing::ExitedWithCode(1), "numSms");
}

TEST(GpuDeath, EmptyWorkloadIsFatal)
{
    Gpu gpu(smallConfig(1));
    EXPECT_EXIT(gpu.runPrograms({}), ::testing::ExitedWithCode(1),
                "no SM workloads");
}

} // namespace
} // namespace wg
