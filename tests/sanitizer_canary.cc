/**
 * @file
 * Seeded-UB fixture proving the sanitizer wiring detects findings.
 *
 * The signed-integer overflow below is computed from argc, so neither
 * the compiler nor the optimizer can fold it away. Under the
 * asan-ubsan preset (-fno-sanitize-recover=all) this program aborts
 * with a non-zero exit status; CI registers it as a WILL_FAIL test so
 * a sanitizer job that silently stops detecting UB fails the build.
 * It is never executed in non-sanitized builds.
 */

#include <climits>
#include <cstdio>

int
main(int argc, char**)
{
    int x = INT_MAX - 1;
    x += argc + 1; // argc >= 1: overflows INT_MAX, UBSan traps here
    std::printf("%d\n", x);
    return 0;
}
