/**
 * @file
 * Metrics pipeline tests: PgDomainStats::merge, the epoch sampler
 * (delta correctness, boundary alignment with the adaptive epoch
 * clock), the StatSet registry conversion, the three exporters
 * (golden files + load round-trips), the comparison engine behind
 * wgreport, and the self-profiling timers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "metrics/compare.hh"
#include "metrics/exporters.hh"
#include "metrics/loader.hh"
#include "metrics/phase_timer.hh"
#include "metrics/registry.hh"
#include "metrics/sampler.hh"
#include "sim/gpu.hh"
#include "trace/recorder.hh"

namespace wg {
namespace {

GpuConfig
config(unsigned sms)
{
    ExperimentOptions opts;
    opts.numSms = sms;
    return makeConfig(Technique::WarpedGates, opts);
}

BenchmarkProfile
profile()
{
    BenchmarkProfile p = findBenchmark("hotspot");
    p.kernelLength = 400;
    p.residentWarps = 16;
    return p;
}

// ---- PgDomainStats::merge ----

TEST(PgDomainStatsMerge, SumsEveryCounter)
{
    PgDomainStats a;
    a.busyCycles = 1;
    a.idleOnCycles = 2;
    a.uncompCycles = 3;
    a.compCycles = 4;
    a.wakeupCycles = 5;
    a.gatingEvents = 6;
    a.wakeups = 7;
    a.uncompWakeups = 8;
    a.criticalWakeups = 9;
    a.coordImmediateGates = 10;
    a.coordGateVetoes = 11;

    PgDomainStats b = a;
    b.merge(a);
    EXPECT_EQ(b.busyCycles, 2u);
    EXPECT_EQ(b.idleOnCycles, 4u);
    EXPECT_EQ(b.uncompCycles, 6u);
    EXPECT_EQ(b.compCycles, 8u);
    EXPECT_EQ(b.wakeupCycles, 10u);
    EXPECT_EQ(b.gatingEvents, 12u);
    EXPECT_EQ(b.wakeups, 14u);
    EXPECT_EQ(b.uncompWakeups, 16u);
    EXPECT_EQ(b.criticalWakeups, 18u);
    EXPECT_EQ(b.coordImmediateGates, 20u);
    EXPECT_EQ(b.coordGateVetoes, 22u);
    EXPECT_EQ(b.gatedCycles(), a.gatedCycles() * 2);
}

TEST(PgDomainStatsMerge, TypeStatsEqualsManualClusterSum)
{
    Gpu gpu(config(2));
    SimResult r = gpu.run(profile(), nullptr);
    for (UnitClass uc : {UnitClass::Int, UnitClass::Fp}) {
        unsigned t = uc == UnitClass::Int ? 0 : 1;
        PgDomainStats sum = r.typeStats(uc);
        const PgDomainStats& c0 = r.aggregate.clusters[t][0].pg;
        const PgDomainStats& c1 = r.aggregate.clusters[t][1].pg;
        EXPECT_EQ(sum.busyCycles, c0.busyCycles + c1.busyCycles);
        EXPECT_EQ(sum.wakeups, c0.wakeups + c1.wakeups);
        EXPECT_EQ(sum.gatingEvents,
                  c0.gatingEvents + c1.gatingEvents);
        EXPECT_EQ(sum.coordGateVetoes,
                  c0.coordGateVetoes + c1.coordGateVetoes);
    }
}

// ---- epoch sampler ----

TEST(EpochSampler, StoresDeltasAndGauges)
{
    metrics::EpochSampler sampler(0, 100);
    metrics::EpochCounters cum;
    cum.issued = 10;
    cum.intBusyCycles = 3;
    cum.intIdleDetect = 5;
    sampler.sample(100, cum);

    cum.issued = 25;
    cum.intBusyCycles = 3;
    cum.intIdleDetect = 8; // gauge: new value, not a delta
    sampler.sample(200, cum);

    ASSERT_EQ(sampler.samples().size(), 2u);
    const metrics::EpochSample& s0 = sampler.samples()[0];
    EXPECT_EQ(s0.epoch, 0u);
    EXPECT_EQ(s0.cycleEnd, 100u);
    EXPECT_EQ(s0.cycles, 100u);
    EXPECT_EQ(s0.delta.issued, 10u);
    EXPECT_EQ(s0.delta.intBusyCycles, 3u);
    EXPECT_EQ(s0.delta.intIdleDetect, 5u);

    const metrics::EpochSample& s1 = sampler.samples()[1];
    EXPECT_EQ(s1.epoch, 1u);
    EXPECT_EQ(s1.delta.issued, 15u);
    EXPECT_EQ(s1.delta.intBusyCycles, 0u);
    EXPECT_EQ(s1.delta.intIdleDetect, 8u);
}

TEST(EpochSampler, FinalizeFlushesPartialEpochOnce)
{
    metrics::EpochSampler sampler(0, 100);
    metrics::EpochCounters cum;
    cum.issued = 4;
    sampler.sample(100, cum);

    cum.issued = 9;
    sampler.finalize(142, cum);
    ASSERT_EQ(sampler.samples().size(), 2u);
    EXPECT_EQ(sampler.samples()[1].cycleEnd, 142u);
    EXPECT_EQ(sampler.samples()[1].cycles, 42u);
    EXPECT_EQ(sampler.samples()[1].delta.issued, 5u);

    // Idempotent: a second finalize at the same cycle adds nothing.
    sampler.finalize(142, cum);
    EXPECT_EQ(sampler.samples().size(), 2u);
}

TEST(EpochCollector, PrepareResolvesEpochLength)
{
    metrics::Collector by_config;
    by_config.prepare(2, 500);
    EXPECT_EQ(by_config.epochLength(), 500u);
    EXPECT_EQ(by_config.numSms(), 2u);
    ASSERT_NE(by_config.sampler(1), nullptr);
    EXPECT_EQ(by_config.sampler(2), nullptr);

    metrics::Collector overridden(250);
    overridden.prepare(1, 500);
    EXPECT_EQ(overridden.epochLength(), 250u);

    metrics::Collector fallback;
    fallback.prepare(1, 0);
    EXPECT_EQ(fallback.epochLength(), 1000u);
}

TEST(EpochSeries, DeltasSumToFinalAggregate)
{
    Gpu gpu(config(3));
    metrics::Collector mets;
    SimResult r = gpu.run(profile(), nullptr, nullptr, &mets);
    ASSERT_GT(mets.totalSamples(), 0u);
    ASSERT_EQ(mets.numSms(), 3u);

    std::uint64_t issued = 0, int_busy = 0, fp_busy = 0;
    std::uint64_t misses = 0, rejects = 0, wakeup_reqs = 0;
    std::uint64_t active_accum = 0, critical_int = 0;
    for (SmId sm = 0; sm < mets.numSms(); ++sm) {
        const metrics::EpochSampler* s = mets.sampler(sm);
        ASSERT_NE(s, nullptr);
        std::uint64_t sm_cycles = 0;
        for (const metrics::EpochSample& e : s->samples()) {
            issued += e.delta.issued;
            int_busy += e.delta.intBusyCycles;
            fp_busy += e.delta.fpBusyCycles;
            misses += e.delta.memMisses;
            rejects += e.delta.mshrRejects;
            wakeup_reqs += e.delta.wakeupRequests;
            active_accum += e.delta.activeAccum;
            critical_int += e.delta.intCriticalWakeups;
            sm_cycles += e.cycles;
        }
        // The series tiles the SM's run exactly: per-epoch cycle
        // counts sum to the SM's runtime and the last sample ends at
        // the final cycle.
        EXPECT_EQ(sm_cycles, r.smCycles[sm]) << "SM " << sm;
        EXPECT_EQ(s->samples().back().cycleEnd, r.smCycles[sm]);
    }

    EXPECT_EQ(issued, r.aggregate.issuedTotal);
    EXPECT_EQ(int_busy, r.typeStats(UnitClass::Int).busyCycles);
    EXPECT_EQ(fp_busy, r.typeStats(UnitClass::Fp).busyCycles);
    EXPECT_EQ(critical_int,
              r.typeStats(UnitClass::Int).criticalWakeups);
    EXPECT_EQ(misses, r.aggregate.memMisses);
    EXPECT_EQ(rejects, r.aggregate.mshrRejects);
    EXPECT_EQ(wakeup_reqs, r.aggregate.wakeupRequests);
    EXPECT_EQ(active_accum, r.aggregate.activeSizeAccum);
}

TEST(EpochSeries, BoundariesAlignWithAdaptiveEpochUpdates)
{
    // WarpedGates runs adaptive idle detect; its EpochUpdate trace
    // events fire on the same (now+1) % epochLength == 0 boundary the
    // sampler uses, so every adaptive update must land exactly on a
    // sample edge.
    GpuConfig cfg = config(2);
    ASSERT_TRUE(cfg.sm.pg.adaptiveIdleDetect);
    Gpu gpu(cfg);
    trace::Collector traces;
    metrics::Collector mets;
    SimResult r = gpu.run(profile(), nullptr, &traces, &mets);
    (void)r;

    const Cycle epoch = mets.epochLength();
    EXPECT_EQ(epoch, cfg.sm.pg.epochLength);
    std::size_t updates = 0;
    for (SmId sm = 0; sm < mets.numSms(); ++sm) {
        const metrics::EpochSampler* sampler = mets.sampler(sm);
        ASSERT_NE(sampler, nullptr);
        std::set<Cycle> edges;
        for (const metrics::EpochSample& s : sampler->samples()) {
            // Every edge except a trailing partial epoch sits on the
            // epoch grid.
            if (&s != &sampler->samples().back()) {
                EXPECT_EQ(s.cycleEnd % epoch, 0u);
                EXPECT_EQ(s.cycles, epoch);
            }
            edges.insert(s.cycleEnd);
        }
        const trace::Recorder* rec = traces.recorder(sm);
        ASSERT_NE(rec, nullptr);
        rec->forEach([&](const trace::Event& e) {
            if (e.kind != trace::EventKind::EpochUpdate)
                return;
            ++updates;
            EXPECT_EQ(edges.count(e.cycle + 1), 1u)
                << "EpochUpdate at cycle " << e.cycle
                << " has no matching sample edge on SM " << sm;
        });
    }
    EXPECT_GT(updates, 0u);
}

// ---- registry ----

TEST(Registry, MatchesSimResultAccessors)
{
    Gpu gpu(config(2));
    SimResult r = gpu.run(profile(), nullptr);
    StatSet set = metrics::toStatSet(r);

    EXPECT_EQ(set.get("gpu.cycles"), static_cast<double>(r.cycles));
    EXPECT_EQ(set.get("gpu.totalSmCycles"),
              static_cast<double>(r.totalSmCycles));
    EXPECT_EQ(set.get("gpu.ipc"), r.ipc());
    EXPECT_EQ(set.get("gpu.avgActiveWarps"),
              r.aggregate.avgActiveWarps());
    EXPECT_EQ(set.get("gpu.instructions"),
              static_cast<double>(r.aggregate.issuedTotal));
    EXPECT_EQ(set.get("gpu.numSms"),
              static_cast<double>(r.smCycles.size()));

    EXPECT_EQ(set.get("gpu.energy.int.totalJ"), r.intEnergy.total());
    EXPECT_EQ(set.get("gpu.energy.fp.totalJ"), r.fpEnergy.total());
    EXPECT_EQ(set.get("gpu.energy.int.savingsRatio"),
              r.intEnergy.staticSavingsRatio());

    PgDomainStats si = r.typeStats(UnitClass::Int);
    EXPECT_EQ(set.get("gpu.pg.int.busyCycles"),
              static_cast<double>(si.busyCycles));
    EXPECT_EQ(set.get("gpu.pg.int.criticalWakeups"),
              static_cast<double>(si.criticalWakeups));
    EXPECT_EQ(set.get("gpu.pg.int0.busyCycles") +
                  set.get("gpu.pg.int1.busyCycles"),
              set.get("gpu.pg.int.busyCycles"));

    for (std::size_t s = 0; s < r.smCycles.size(); ++s)
        EXPECT_EQ(set.get("sm" + std::to_string(s) + ".cycles"),
                  static_cast<double>(r.smCycles[s]));

    EXPECT_EQ(set.get("config.numSms"),
              static_cast<double>(r.config.numSms));
    EXPECT_EQ(set.get("config.epochLength"),
              static_cast<double>(r.config.sm.pg.epochLength));
}

TEST(Registry, NamesNeverContainUnderscores)
{
    // The Prometheus exposition maps '.' -> '_'; underscores in
    // registry names would make that mapping lossy.
    Gpu gpu(config(2));
    StatSet set = metrics::toStatSet(gpu.run(profile(), nullptr));
    for (const auto& [name, value] : set.entries()) {
        (void)value;
        EXPECT_EQ(name.find('_'), std::string::npos) << name;
    }
}

// ---- exporters ----

TEST(Exporters, FormatMetricValueIsLosslessAndCompact)
{
    EXPECT_EQ(metrics::formatMetricValue(3.0), "3");
    EXPECT_EQ(metrics::formatMetricValue(-17.0), "-17");
    EXPECT_EQ(metrics::formatMetricValue(0.0), "0");
    // Non-integral doubles round-trip exactly through strtod.
    for (double v : {0.1, 1.0 / 3.0, 2.5e-7, 123456.789}) {
        std::string s = metrics::formatMetricValue(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST(Exporters, PromNameMapping)
{
    EXPECT_EQ(metrics::promName("gpu.pg.int0.busyCycles"),
              "wg_gpu_pg_int0_busyCycles");
    EXPECT_EQ(metrics::promName("gpu.ipc"), "wg_gpu_ipc");
}

/** Tiny hand-built collector + registry shared by the golden tests. */
struct GoldenFixture
{
    metrics::Collector coll;
    StatSet set;

    GoldenFixture()
    {
        coll.prepare(1, 4);
        metrics::EpochSampler* s = coll.sampler(0);
        metrics::EpochCounters cum;
        cum.issued = 10;
        cum.intBusyCycles = 3;
        cum.intIdleDetect = 5;
        cum.fpIdleDetect = 5;
        cum.activeAccum = 7;
        s->sample(4, cum);
        cum.issued = 25;
        cum.intIdleDetect = 6;
        cum.activeAccum = 11;
        s->sample(8, cum);

        set.set("a.count", 3.0);
        set.set("gpu.ipc", 1.5);
    }
};

TEST(Exporters, GoldenJsonl)
{
    GoldenFixture fix;
    std::ostringstream os;
    metrics::writeMetricsJsonl(os, &fix.coll, fix.set);
    EXPECT_EQ(
        os.str(),
        "{\"type\":\"meta\",\"format\":\"wgmetrics\",\"version\":1,"
        "\"epochLength\":4,\"numSms\":1}\n"
        "{\"type\":\"epoch\",\"sm\":0,\"epoch\":0,\"cycleEnd\":4,"
        "\"cycles\":4,\"issued\":10,\"intBusyCycles\":3,"
        "\"intGatedCycles\":0,\"intCompCycles\":0,"
        "\"intGatingEvents\":0,\"intWakeups\":0,"
        "\"intCriticalWakeups\":0,\"intIdleDetect\":5,"
        "\"fpBusyCycles\":0,\"fpGatedCycles\":0,\"fpCompCycles\":0,"
        "\"fpGatingEvents\":0,\"fpWakeups\":0,"
        "\"fpCriticalWakeups\":0,\"fpIdleDetect\":5,\"memMisses\":0,"
        "\"mshrRejects\":0,\"wakeupRequests\":0,\"activeAccum\":7}\n"
        "{\"type\":\"epoch\",\"sm\":0,\"epoch\":1,\"cycleEnd\":8,"
        "\"cycles\":4,\"issued\":15,\"intBusyCycles\":0,"
        "\"intGatedCycles\":0,\"intCompCycles\":0,"
        "\"intGatingEvents\":0,\"intWakeups\":0,"
        "\"intCriticalWakeups\":0,\"intIdleDetect\":6,"
        "\"fpBusyCycles\":0,\"fpGatedCycles\":0,\"fpCompCycles\":0,"
        "\"fpGatingEvents\":0,\"fpWakeups\":0,"
        "\"fpCriticalWakeups\":0,\"fpIdleDetect\":5,\"memMisses\":0,"
        "\"mshrRejects\":0,\"wakeupRequests\":0,\"activeAccum\":4}\n"
        "{\"type\":\"final\",\"stats\":{\"a.count\":3,"
        "\"gpu.ipc\":1.5}}\n");
}

TEST(Exporters, GoldenCsv)
{
    GoldenFixture fix;
    std::ostringstream os;
    metrics::writeMetricsCsv(os, &fix.coll, fix.set);
    EXPECT_EQ(os.str(),
              "# wgmetrics v1 epochLength=4 numSms=1\n"
              "sm,epoch,cycleEnd,cycles,issued,intBusyCycles,"
              "intGatedCycles,intCompCycles,intGatingEvents,"
              "intWakeups,intCriticalWakeups,intIdleDetect,"
              "fpBusyCycles,fpGatedCycles,fpCompCycles,"
              "fpGatingEvents,fpWakeups,fpCriticalWakeups,"
              "fpIdleDetect,memMisses,mshrRejects,wakeupRequests,"
              "activeAccum\n"
              "0,0,4,4,10,3,0,0,0,0,0,5,0,0,0,0,0,0,5,0,0,0,7\n"
              "0,1,8,4,15,0,0,0,0,0,0,6,0,0,0,0,0,0,5,0,0,0,4\n"
              "# final\n"
              "name,value\n"
              "a.count,3\n"
              "gpu.ipc,1.5\n");
}

TEST(Exporters, GoldenProm)
{
    GoldenFixture fix;
    std::ostringstream os;
    metrics::writeProm(os, fix.set);
    EXPECT_EQ(os.str(),
              "# HELP wg_a_count uncatalogued simulator metric\n"
              "# TYPE wg_a_count gauge\n"
              "wg_a_count 3\n"
              "# HELP wg_gpu_ipc whole-GPU aggregate counters (cycles,"
              " IPC, warps)\n"
              "# TYPE wg_gpu_ipc gauge\n"
              "wg_gpu_ipc 1.5\n"
              "# EOF\n");
}

TEST(Exporters, PromHistogramFamilyShape)
{
    LatencyHistogram h({0.01, 0.1, 1.0});
    h.record(0.005);
    h.record(0.05);
    h.record(0.05);
    h.record(50.0);
    std::ostringstream os;
    metrics::writePromHistogram(os, "serve.latency.endToEnd.seconds",
                                "end-to-end job latency", h);
    EXPECT_EQ(os.str(),
              "# HELP wg_serve_latency_endToEnd_seconds end-to-end job"
              " latency\n"
              "# TYPE wg_serve_latency_endToEnd_seconds histogram\n"
              "wg_serve_latency_endToEnd_seconds_bucket{le=\"0.01\"} 1\n"
              "wg_serve_latency_endToEnd_seconds_bucket{le=\"0.1\"} 3\n"
              "wg_serve_latency_endToEnd_seconds_bucket{le=\"1\"} 3\n"
              "wg_serve_latency_endToEnd_seconds_bucket{le=\"+Inf\"} 4\n"
              "wg_serve_latency_endToEnd_seconds_sum "
              "50.104999999999997\n"
              "wg_serve_latency_endToEnd_seconds_count 4\n");
}

TEST(Exporters, JsonlLineBuildersMatchWholeFileWriter)
{
    GoldenFixture fix;
    std::ostringstream whole;
    metrics::writeMetricsJsonl(whole, &fix.coll, fix.set);

    std::ostringstream lines;
    lines << metrics::jsonlMetaLine(true, fix.coll.epochLength(),
                                    fix.coll.numSms())
          << '\n';
    for (SmId sm = 0; sm < fix.coll.numSms(); ++sm)
        for (const auto& s : fix.coll.sampler(sm)->samples())
            lines << metrics::jsonlEpochLine(sm, s) << '\n';
    lines << metrics::jsonlFinalLine(fix.set) << '\n';
    EXPECT_EQ(whole.str(), lines.str());
}

/** export -> parse -> exact equality, for every format. */
void
expectRoundTrip(const metrics::Collector* coll, const StatSet& set,
                metrics::MetricsFormat format)
{
    std::ostringstream os;
    metrics::writeMetrics(os, coll, set, format);
    StatSet loaded;
    std::string error;
    ASSERT_TRUE(metrics::parseStatSet(os.str(), loaded, error))
        << error;
    EXPECT_EQ(loaded.entries().size(), set.entries().size());
    for (const auto& [name, value] : set.entries()) {
        ASSERT_TRUE(loaded.has(name))
            << name << " lost in " << metrics::metricsFormatName(format);
        EXPECT_EQ(loaded.get(name), value) << name;
    }
}

TEST(Exporters, RegistryRoundTripsThroughEveryFormat)
{
    Gpu gpu(config(2));
    metrics::Collector mets;
    SimResult r = gpu.run(profile(), nullptr, nullptr, &mets);
    StatSet set = metrics::toStatSet(r);
    ASSERT_GT(set.entries().size(), 50u);
    for (metrics::MetricsFormat f :
         {metrics::MetricsFormat::Csv, metrics::MetricsFormat::Jsonl,
          metrics::MetricsFormat::Prom})
        expectRoundTrip(&mets, set, f);
}

// ---- loader ----

TEST(Loader, FlattensNestedJsonDocuments)
{
    StatSet set;
    std::string error;
    ASSERT_TRUE(metrics::flattenJson(
        "{\"a\": {\"b\": 2, \"c\": [1, 2.5]}, \"d\": true,"
        " \"skip\": \"text\", \"e\": -3e2}",
        set, error))
        << error;
    EXPECT_EQ(set.get("a.b"), 2.0);
    EXPECT_EQ(set.get("a.c.0"), 1.0);
    EXPECT_EQ(set.get("a.c.1"), 2.5);
    EXPECT_EQ(set.get("d"), 1.0);
    EXPECT_EQ(set.get("e"), -300.0);
    EXPECT_FALSE(set.has("skip"));
}

TEST(Loader, RejectsMalformedInput)
{
    StatSet set;
    std::string error;
    EXPECT_FALSE(metrics::flattenJson("{\"a\": ", set, error));
    EXPECT_FALSE(error.empty());
}

// ---- comparison engine ----

TEST(Compare, IdenticalSetsHaveNoRegressions)
{
    StatSet a;
    a.set("x", 1.0);
    a.set("y", 2.0);
    metrics::CompareReport rep = metrics::compareStatSets(a, a);
    EXPECT_EQ(rep.compared, 2u);
    EXPECT_EQ(rep.changed, 0u);
    EXPECT_EQ(rep.regressions, 0u);
}

TEST(Compare, ExactModeFlagsAnyDrift)
{
    StatSet base, test;
    base.set("x", 100.0);
    test.set("x", 100.001);
    metrics::CompareReport rep = metrics::compareStatSets(base, test);
    EXPECT_EQ(rep.regressions, 1u);
    EXPECT_TRUE(rep.deltas[0].beyondTolerance);
}

TEST(Compare, RelativeToleranceAbsorbsSmallDrift)
{
    StatSet base, test;
    base.set("x", 100.0);
    test.set("x", 100.001);
    metrics::CompareOptions opts;
    opts.relTol = 1e-4;
    metrics::CompareReport rep =
        metrics::compareStatSets(base, test, opts);
    EXPECT_EQ(rep.regressions, 0u);
    EXPECT_EQ(rep.changed, 1u);

    test.set("x", 120.0); // 20% — far past tolerance
    rep = metrics::compareStatSets(base, test, opts);
    EXPECT_EQ(rep.regressions, 1u);
}

TEST(Compare, MissingMetricsAreStructuralRegressions)
{
    StatSet base, test;
    base.set("gone", 1.0);
    test.set("fresh", 1.0);
    metrics::CompareOptions opts;
    opts.relTol = 1.0; // even a huge tolerance cannot excuse drift
    metrics::CompareReport rep =
        metrics::compareStatSets(base, test, opts);
    EXPECT_EQ(rep.regressions, 2u);
    ASSERT_EQ(rep.deltas.size(), 2u);
    // Base names are walked first, then test-only names.
    EXPECT_TRUE(rep.deltas[0].onlyInBase);  // "gone"
    EXPECT_TRUE(rep.deltas[1].onlyInTest);  // "fresh"
}

TEST(Compare, ProfileMetricsIgnoredByDefault)
{
    StatSet base, test;
    base.set("profile.phase.simLoop", 1.0);
    test.set("profile.phase.simLoop", 9.0);
    base.set("x", 1.0);
    test.set("x", 1.0);
    metrics::CompareReport rep = metrics::compareStatSets(base, test);
    EXPECT_EQ(rep.compared, 1u);
    EXPECT_EQ(rep.regressions, 0u);

    metrics::CompareOptions opts;
    opts.ignorePrefixes.clear();
    rep = metrics::compareStatSets(base, test, opts);
    EXPECT_EQ(rep.compared, 2u);
    EXPECT_EQ(rep.regressions, 1u);
}

TEST(Compare, PerMetricToleranceOverridesGlobal)
{
    StatSet base, test;
    base.set("noisy", 100.0);
    test.set("noisy", 105.0);
    base.set("strict", 100.0);
    test.set("strict", 105.0);
    metrics::CompareOptions opts;
    opts.perMetric["noisy"] = 0.10;
    metrics::CompareReport rep =
        metrics::compareStatSets(base, test, opts);
    EXPECT_EQ(rep.regressions, 1u);
    for (const metrics::MetricDelta& d : rep.deltas)
        EXPECT_EQ(d.beyondTolerance, d.name == "strict") << d.name;
}

TEST(Compare, AbsoluteFloorAbsorbsFpNoise)
{
    StatSet base, test;
    base.set("zeroish", 0.0);
    test.set("zeroish", 1e-15);
    metrics::CompareReport rep = metrics::compareStatSets(base, test);
    EXPECT_EQ(rep.regressions, 0u);

    test.set("zeroish", 1e-9); // a zero baseline that actually moved
    rep = metrics::compareStatSets(base, test);
    EXPECT_EQ(rep.regressions, 1u);
}

TEST(Compare, RenderListsChangedRowsOnly)
{
    StatSet base, test;
    base.set("same", 1.0);
    test.set("same", 1.0);
    base.set("moved", 1.0);
    test.set("moved", 2.0);
    metrics::CompareReport rep = metrics::compareStatSets(base, test);
    std::ostringstream brief_os;
    metrics::renderComparison(rep, "a", "b", false).print(brief_os);
    EXPECT_NE(brief_os.str().find("moved"), std::string::npos);
    EXPECT_EQ(brief_os.str().find("same"), std::string::npos);
    std::ostringstream full_os;
    metrics::renderComparison(rep, "a", "b", true).print(full_os);
    EXPECT_NE(full_os.str().find("same"), std::string::npos);
}

// ---- self-profiling ----

TEST(PhaseTimers, AccumulatesAndPublishes)
{
    metrics::PhaseTimers timers;
    timers.add("simLoop", 1.25);
    timers.add("simLoop", 0.25);
    timers.add("export", 0.5);
    EXPECT_EQ(timers.get("simLoop"), 1.5);
    EXPECT_EQ(timers.get("absent"), 0.0);

    StatSet set;
    timers.publish(set);
    EXPECT_EQ(set.get("profile.phase.simLoop"), 1.5);
    EXPECT_EQ(set.get("profile.phase.export"), 0.5);

    {
        metrics::PhaseTimers::Scope scope(&timers, "scoped");
    }
    EXPECT_GE(timers.get("scoped"), 0.0);
    // Null target: the scope must be a safe no-op.
    metrics::PhaseTimers::Scope off(nullptr, "ignored");
}

} // namespace
} // namespace wg
