/**
 * @file
 * Seeded thread-safety violation proving the clang analysis gate can
 * fail (the -Wthread-safety twin of sanitizer_canary.cc).
 *
 * The counter below is WG_GUARDED_BY its mutex but bumped without
 * taking it — exactly the bug class the annotation rollout exists to
 * catch. Under the clang-tsa preset (-Werror=thread-safety) this file
 * does not COMPILE; CI builds the target expecting failure, so an
 * analysis that silently stops firing (a broken macro expansion, a
 * compiler flag lost in a refactor) turns the job red. The target is
 * EXCLUDE_FROM_ALL and never built outside that check.
 */

#include <cstdio>

#include "common/thread_annotations.hh"

namespace {

class Canary
{
  public:
    // Seeded violation: writes counter_ without holding mu_. Under
    // -Wthread-safety this is a guaranteed diagnostic; -Werror makes
    // it fatal.
    void bumpUnlocked() { ++counter_; }

    long read()
    {
        wg::MutexLock lock(mu_);
        return counter_;
    }

  private:
    wg::Mutex mu_;
    long counter_ WG_GUARDED_BY(mu_) = 0;
};

} // namespace

int
main(int argc, char**)
{
    Canary canary;
    for (int i = 0; i < argc; ++i)
        canary.bumpUnlocked();
    std::printf("%ld\n", canary.read());
    return 0;
}
