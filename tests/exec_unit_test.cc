/**
 * @file
 * Unit tests for the pipelined execution-unit model.
 */

#include <gtest/gtest.h>

#include "exec/unit.hh"

namespace wg {
namespace {

TEST(ExecUnit, NameCombinesClassAndIndex)
{
    ExecUnit u(UnitClass::Int, 1, {4, 1, 0});
    EXPECT_EQ(u.name(), "INT1");
    EXPECT_EQ(u.unitClass(), UnitClass::Int);
    EXPECT_EQ(u.index(), 1u);
}

TEST(ExecUnit, FreshUnitAcceptsAndIsIdle)
{
    ExecUnit u(UnitClass::Fp, 0, {4, 1, 0});
    EXPECT_TRUE(u.canAccept(0));
    EXPECT_FALSE(u.busy());
    EXPECT_EQ(u.issueCount(), 0u);
}

TEST(ExecUnit, InitiationIntervalEnforced)
{
    ExecUnit u(UnitClass::Sfu, 0, {20, 8, 0});
    u.issue(10, 30, 0, 1, false);
    EXPECT_FALSE(u.canAccept(10));
    EXPECT_FALSE(u.canAccept(17));
    EXPECT_TRUE(u.canAccept(18));
}

TEST(ExecUnit, FullyPipelinedAtIiOne)
{
    ExecUnit u(UnitClass::Int, 0, {4, 1, 0});
    u.issue(0, 4, 0, 1, false);
    EXPECT_TRUE(u.canAccept(1));
    u.issue(1, 5, 1, 2, false);
    EXPECT_EQ(u.issueCount(), 2u);
}

TEST(ExecUnit, BusyWhileOccupied)
{
    ExecUnit u(UnitClass::Int, 0, {4, 1, 0});
    u.issue(0, 4, 0, 1, false);
    for (Cycle t = 0; t < 4; ++t) {
        u.tick(t);
        EXPECT_TRUE(u.busy()) << "cycle " << t;
    }
    u.tick(4);
    EXPECT_FALSE(u.busy());
}

TEST(ExecUnit, OccupancyShorterThanCompletion)
{
    // LD/ST style: the pipeline frees after `occupancy` cycles but the
    // result arrives much later.
    ExecUnit u(UnitClass::Ldst, 0, {4, 1, 4});
    u.issue(0, 300, 0, 1, true);
    u.tick(4);
    EXPECT_FALSE(u.busy()) << "AGU done, miss outstanding";
    std::vector<Completion> out;
    u.drainCompletions(4, out);
    EXPECT_TRUE(out.empty());
    u.drainCompletions(300, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].done, 300u);
    EXPECT_TRUE(out[0].longLatency);
}

TEST(ExecUnit, CompletionsDrainInOrder)
{
    ExecUnit u(UnitClass::Ldst, 0, {4, 1, 4});
    u.issue(0, 50, 0, 1, false);
    u.issue(1, 20, 1, 2, false);
    u.issue(2, 80, 2, 3, false);
    std::vector<Completion> out;
    u.drainCompletions(100, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].done, 20u);
    EXPECT_EQ(out[1].done, 50u);
    EXPECT_EQ(out[2].done, 80u);
}

TEST(ExecUnit, DrainRespectsNow)
{
    ExecUnit u(UnitClass::Int, 0, {4, 1, 0});
    u.issue(0, 4, 0, 1, false);
    u.issue(1, 5, 1, 2, false);
    std::vector<Completion> out;
    u.drainCompletions(4, out);
    EXPECT_EQ(out.size(), 1u);
    u.drainCompletions(5, out);
    EXPECT_EQ(out.size(), 2u);
}

TEST(ExecUnit, CompletionCarriesWarpAndDest)
{
    ExecUnit u(UnitClass::Fp, 1, {4, 1, 0});
    u.issue(3, 7, 42, 9, false);
    std::vector<Completion> out;
    u.drainCompletions(7, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].warp, 42u);
    EXPECT_EQ(out[0].dest, 9);
    EXPECT_FALSE(out[0].longLatency);
}

TEST(ExecUnit, OccupancyDefaultsToLatency)
{
    ExecUnit u(UnitClass::Int, 0, {6, 1, 0});
    u.issue(0, 6, 0, 1, false);
    u.tick(5);
    EXPECT_TRUE(u.busy());
    u.tick(6);
    EXPECT_FALSE(u.busy());
}

TEST(ExecUnitDeath, IssueWhilePortBusyPanics)
{
    ExecUnit u(UnitClass::Sfu, 0, {20, 8, 0});
    u.issue(0, 20, 0, 1, false);
    EXPECT_DEATH(u.issue(1, 21, 1, 2, false), "port busy");
}

TEST(ExecUnitDeath, ZeroLatencyIsFatal)
{
    EXPECT_EXIT(ExecUnit(UnitClass::Int, 0, ExecUnitConfig{0, 1, 0}),
                ::testing::ExitedWithCode(1), "zero latency");
}

TEST(ExecUnitDeath, ZeroIiIsFatal)
{
    EXPECT_EXIT(ExecUnit(UnitClass::Int, 0, ExecUnitConfig{4, 0, 0}),
                ::testing::ExitedWithCode(1), "zero initiation");
}

/** Property: at initiation interval N, issue slots are exactly N apart. */
class ExecUnitIi : public ::testing::TestWithParam<Cycle>
{
};

TEST_P(ExecUnitIi, SpacingMatchesInterval)
{
    const Cycle ii = GetParam();
    ExecUnit u(UnitClass::Sfu, 0, {30, ii, 0});
    Cycle now = 0;
    for (int k = 0; k < 5; ++k) {
        // Find the next acceptable cycle by scanning.
        while (!u.canAccept(now))
            ++now;
        if (k > 0) {
            EXPECT_EQ(now % ii, 0u);
        }
        u.issue(now, now + 30, 0, kNoReg, false);
    }
}

INSTANTIATE_TEST_SUITE_P(Intervals, ExecUnitIi,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
} // namespace wg
