/**
 * @file
 * Live-telemetry tests: job frame streams (subscribe/unsubscribe over
 * real loopback sockets), the streamed-equals-offline byte-identity
 * contract, slow-consumer backpressure, latency histograms, gauge
 * catalogue coverage, and the structured event log.
 */

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "metrics/exporters.hh"
#include "metrics/registry.hh"
#include "serve/client.hh"
#include "serve/eventlog.hh"
#include "serve/net.hh"
#include "serve/server.hh"
#include "sim/gpu.hh"

namespace {

using namespace wg;

ExperimentOptions
tinyOptions()
{
    ExperimentOptions opts;
    opts.numSms = 2;
    opts.seed = 3;
    return opts;
}

/**
 * The offline reference: the exact bytes `wgsim --metrics` writes for
 * the same (bench, technique, options) cell.
 */
std::string
offlineJsonl(const std::string& bench, Technique t)
{
    Gpu gpu(makeConfig(t, tinyOptions()));
    metrics::Collector collector;
    SimResult result =
        gpu.run(findBenchmark(bench), nullptr, nullptr, &collector);
    std::ostringstream os;
    metrics::writeMetricsJsonl(os, &collector,
                               metrics::toStatSet(result));
    return os.str();
}

/** A running server + connected client, torn down via drain. */
class ServeStreamTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        runner_ = std::make_unique<ExperimentRunner>(
            ExperimentOptions{}, &ThreadPool::global());
        serve::ServerConfig config;
        config.pollTickMs = 20;
        server_ = std::make_unique<serve::Server>(*runner_, config);
        std::string error;
        ASSERT_TRUE(server_->start(error)) << error;
        serve_thread_ = std::thread([this] {
            std::string serve_error;
            EXPECT_TRUE(server_->serve(-1, serve_error))
                << serve_error;
        });
        ASSERT_TRUE(client_.connect(server_->port(), 2000, error))
            << error;
    }

    void TearDown() override
    {
        std::string error;
        if (client_.connected()) {
            EXPECT_TRUE(client_.drain(60000, error)) << error;
        }
        serve_thread_.join();
    }

    /**
     * Read frames until the terminal result frame, concatenating the
     * data bytes of meta/epoch/final frames into a jsonl document.
     */
    void
    collectStream(serve::Client& client, std::string& jsonl,
                  serve::Frame& result)
    {
        jsonl.clear();
        serve::Frame frame;
        for (;;) {
            std::string error;
            ASSERT_TRUE(client.nextFrame(frame, 120000, error))
                << error;
            if (frame.kind == serve::FrameKind::Meta ||
                frame.kind == serve::FrameKind::Epoch ||
                frame.kind == serve::FrameKind::Final) {
                jsonl += frame.data;
                jsonl += '\n';
            }
            if (frame.kind == serve::FrameKind::Result) {
                result = frame;
                return;
            }
        }
    }

    std::unique_ptr<ExperimentRunner> runner_;
    std::unique_ptr<serve::Server> server_;
    std::thread serve_thread_;
    serve::Client client_;
};

TEST_F(ServeStreamTest, StreamedSeriesIsByteIdenticalToOfflineExport)
{
    // Subscribe while the job is still queued, so every frame flows
    // through the live path (no replay).
    server_->jobs().pauseDispatch();
    SweepSpec spec({"hotspot"}, {Technique::WarpedGates},
                   tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    ASSERT_TRUE(client_.subscribe(id, error)) << error;
    server_->jobs().resumeDispatch();

    std::string streamed;
    serve::Frame result;
    collectStream(client_, streamed, result);
    EXPECT_EQ(result.state, "done");
    EXPECT_EQ(result.droppedFrames, 0u);

    EXPECT_EQ(streamed, offlineJsonl("hotspot", Technique::WarpedGates));
}

TEST_F(ServeStreamTest, LateSubscriberReplaysTheIdenticalByteStream)
{
    SweepSpec spec({"hotspot"}, {Technique::Gates}, tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id, 20, 120000, status, error))
        << error;
    ASSERT_EQ(status.state, serve::JobState::Done);

    // The job is long finished; a fresh subscriber gets the whole
    // frame log replayed and an immediate terminal frame.
    ASSERT_TRUE(client_.subscribe(id, error)) << error;
    std::string replayed;
    serve::Frame result;
    collectStream(client_, replayed, result);
    EXPECT_EQ(result.state, "done");
    EXPECT_EQ(replayed, offlineJsonl("hotspot", Technique::Gates));
}

TEST_F(ServeStreamTest, StreamOrdersMetaEpochsFinalPerCell)
{
    server_->jobs().pauseDispatch();
    SweepSpec spec({"hotspot"},
                   {Technique::Baseline, Technique::WarpedGates},
                   tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    ASSERT_TRUE(client_.subscribe(id, error)) << error;
    server_->jobs().resumeDispatch();

    // Per cell: exactly one meta (carrying bench/technique), epoch
    // frames, then one final; progress frames interleave between
    // cells; one terminal result ends the stream.
    std::size_t metas = 0;
    std::size_t finals = 0;
    std::size_t lastCell = 0;
    bool sawResult = false;
    serve::Frame frame;
    while (!sawResult) {
        ASSERT_TRUE(client_.nextFrame(frame, 120000, error)) << error;
        switch (frame.kind) {
          case serve::FrameKind::Meta:
            EXPECT_EQ(frame.cell, metas);
            EXPECT_EQ(frame.bench, "hotspot");
            ++metas;
            break;
          case serve::FrameKind::Epoch:
            EXPECT_EQ(metas, frame.cell + 1)
                << "epoch frame outside its cell's meta/final bracket";
            break;
          case serve::FrameKind::Final:
            EXPECT_EQ(frame.cell, finals);
            ++finals;
            lastCell = frame.cell;
            break;
          case serve::FrameKind::Progress:
            EXPECT_EQ(frame.totalCells, 2u);
            break;
          case serve::FrameKind::Result:
            sawResult = true;
            break;
        }
    }
    EXPECT_EQ(metas, 2u);
    EXPECT_EQ(finals, 2u);
    EXPECT_EQ(lastCell, 1u);
    EXPECT_EQ(frame.state, "done");
}

TEST_F(ServeStreamTest, SubscribeUnknownJobIsCleanError)
{
    std::string error;
    EXPECT_FALSE(client_.subscribe("j999", error));
    EXPECT_NE(error.find("unknown job"), std::string::npos) << error;
    // The connection still works afterwards.
    std::map<std::string, double> stats;
    EXPECT_TRUE(client_.stats(stats, error)) << error;
}

TEST_F(ServeStreamTest, DoubleSubscribeAndBareUnsubscribeAreErrors)
{
    // Raw socket: exercise the server-side guards directly.
    std::string error;
    serve::Fd raw = serve::connectTcp(server_->port(), 2000, error);
    ASSERT_TRUE(raw.valid()) << error;
    serve::LineReader reader(raw.get());
    auto exchange = [&](const std::string& request) {
        EXPECT_TRUE(serve::sendAll(raw.get(), request + "\n", error))
            << error;
        // While subscribed, pushed frames interleave with responses;
        // skip them (the real client does the same on unsubscribe).
        std::string line;
        do {
            EXPECT_EQ(reader.readLine(line, 10000, error),
                      serve::LineReader::Status::Line)
                << error;
        } while (line.find("\"type\":\"frame\"") != std::string::npos);
        return line;
    };
    EXPECT_NE(exchange("{\"wire\":1,\"type\":\"unsubscribe\"}")
                  .find("no subscription"),
              std::string::npos);
    EXPECT_NE(exchange("{\"wire\":1,\"type\":\"subscribe\"}")
                  .find("non-empty string 'id'"),
              std::string::npos);

    server_->jobs().pauseDispatch();
    SweepSpec spec({"hotspot"}, {Technique::ConvPG}, tinyOptions());
    std::string id;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    const std::string sub = "{\"wire\":1,\"type\":\"subscribe\",\"id\":\"" +
                            id + "\"}";
    EXPECT_NE(exchange(sub).find("\"ok\":true"), std::string::npos);
    EXPECT_NE(exchange(sub).find("already subscribed"),
              std::string::npos);
    server_->jobs().resumeDispatch();
    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id, 20, 120000, status, error));
}

TEST_F(ServeStreamTest, UnsubscribeMidStreamLeavesConnectionUsable)
{
    server_->jobs().pauseDispatch();
    SweepSpec spec({"hotspot"},
                   {Technique::Baseline, Technique::NaiveBlackout},
                   tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    ASSERT_TRUE(client_.subscribe(id, error)) << error;
    server_->jobs().resumeDispatch();
    ASSERT_TRUE(client_.unsubscribe(error)) << error;
    EXPECT_FALSE(client_.subscribed());

    // The same connection keeps serving ordinary requests, and the
    // job runs to completion unaffected.
    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id, 20, 120000, status, error))
        << error;
    EXPECT_EQ(status.state, serve::JobState::Done);
    std::map<std::string, double> stats;
    ASSERT_TRUE(client_.stats(stats, error)) << error;
    EXPECT_GE(stats["serve.subscriptions.opened"], 1.0);
}

TEST_F(ServeStreamTest, StatsPublishSubscriptionAndPoolGauges)
{
    SweepSpec spec({"hotspot"}, {Technique::WarpedGates},
                   tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id, 20, 120000, status, error));

    std::map<std::string, double> stats;
    ASSERT_TRUE(client_.stats(stats, error)) << error;
    EXPECT_EQ(stats.count("serve.subscriptions.opened"), 1u);
    EXPECT_EQ(stats.count("serve.subscriptions.active"), 1u);
    EXPECT_EQ(stats.count("serve.subscriptions.droppedFrames"), 1u);
    EXPECT_EQ(stats.count("pool.threads"), 1u);
    EXPECT_EQ(stats.count("pool.queueDepth"), 1u);
    EXPECT_EQ(stats.count("pool.steals"), 1u);
    EXPECT_GE(stats["pool.tasksExecuted"], 1.0);
    // One finished job: every latency histogram saw one record.
    EXPECT_EQ(stats["serve.latency.admissionWait.count"], 1.0);
    EXPECT_EQ(stats["serve.latency.runDuration.count"], 1.0);
    EXPECT_EQ(stats["serve.latency.endToEnd.count"], 1.0);
    EXPECT_GE(stats["serve.latency.endToEnd.sumSeconds"],
              stats["serve.latency.runDuration.sumSeconds"]);
}

TEST_F(ServeStreamTest, MetricsEndpointExposesLatencyHistograms)
{
    SweepSpec spec({"hotspot"}, {Technique::Baseline}, tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id, 20, 120000, status, error));

    const std::string body = server_->promExposition();
    for (const char* family :
         {"wg_serve_latency_admissionWait_seconds",
          "wg_serve_latency_runDuration_seconds",
          "wg_serve_latency_endToEnd_seconds"}) {
        EXPECT_NE(body.find(std::string("# TYPE ") + family +
                            " histogram"),
                  std::string::npos)
            << family;
        EXPECT_NE(body.find(std::string(family) +
                            "_bucket{le=\"+Inf\"} 1"),
                  std::string::npos)
            << family;
        EXPECT_NE(body.find(std::string(family) + "_count 1"),
                  std::string::npos)
            << family;
    }
    // Gauges carry # HELP/# TYPE too, and the exposition terminates.
    EXPECT_NE(body.find("# HELP wg_serve_jobs_completed "),
              std::string::npos);
    EXPECT_NE(body.find("# EOF\n"), std::string::npos);
}

TEST_F(ServeStreamTest, EveryPublishedGaugeHasCataloguedHelp)
{
    SweepSpec spec({"hotspot"}, {Technique::WarpedGates},
                   tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id, 20, 120000, status, error));

    StatSet set;
    server_->jobs().publishStats(set);
    for (const auto& [name, value] : set.entries()) {
        (void)value;
        EXPECT_TRUE(metrics::metricHelpKnown(name))
            << "gauge '" << name << "' has no # HELP catalogue entry";
    }
}

// ---------------------------------------------------------------------
// Backpressure (manager-level, no sockets)
// ---------------------------------------------------------------------

TEST(ServeBackpressure, SlowConsumerDropsAreCountedTerminalDelivered)
{
    ExperimentRunner runner(tinyOptions(), &ThreadPool::global());
    serve::JobConfig config;
    config.subscriberQueueCap = 4; // far below one cell's frame count
    serve::JobManager jobs(runner, config);

    jobs.pauseDispatch();
    SweepSpec spec({"hotspot"}, {Technique::WarpedGates},
                   tinyOptions());
    auto outcome = jobs.submit(spec, 0);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    std::string error;
    std::shared_ptr<serve::Subscription> sub =
        jobs.subscribe(outcome.id, error);
    ASSERT_NE(sub, nullptr) << error;
    jobs.resumeDispatch();

    // Never drain the queue: the publisher must finish the job anyway
    // (it never blocks on a subscriber) and still deliver the forced
    // terminal frame past the cap.
    for (;;) {
        auto status = jobs.status(outcome.id);
        ASSERT_TRUE(status.has_value());
        if (status->state == serve::JobState::Done)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    std::vector<std::string> frames;
    std::string frame;
    while (jobs.nextFrame(*sub, frame))
        frames.push_back(frame);
    ASSERT_FALSE(frames.empty());
    ASSERT_LE(frames.size(), config.subscriberQueueCap + 1);
    EXPECT_NE(frames.back().find("\"frame\":\"result\""),
              std::string::npos)
        << frames.back();
    EXPECT_NE(frames.back().find("\"state\":\"done\""),
              std::string::npos);
    EXPECT_GT(sub->dropped, 0u);
    EXPECT_NE(frames.back().find("\"droppedFrames\":" +
                                 std::to_string(sub->dropped)),
              std::string::npos)
        << frames.back();

    StatSet set;
    jobs.publishStats(set);
    EXPECT_EQ(set.get("serve.subscriptions.droppedFrames"),
              static_cast<double>(sub->dropped));
    jobs.unsubscribe(sub);
}

// ---------------------------------------------------------------------
// Event log (injected clock)
// ---------------------------------------------------------------------

std::vector<std::string>
fileLines(const std::string& path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(EventLog, FiltersBelowThresholdAndCounts)
{
    const std::string path =
        ::testing::TempDir() + "/eventlog_filter.jsonl";
    std::remove(path.c_str());
    serve::EventLog log;
    serve::EventLog::Options opts;
    opts.level = serve::EventLog::Level::Warn;
    opts.clockMs = [] { return std::uint64_t(0); };
    std::string error;
    ASSERT_TRUE(log.open(path, opts, error)) << error;

    log.log(serve::EventLog::Level::Debug, "ignored");
    log.log(serve::EventLog::Level::Info, "ignored");
    log.log(serve::EventLog::Level::Warn, "kept");
    log.log(serve::EventLog::Level::Error, "kept");

    serve::EventLog::Counters c = log.counters();
    EXPECT_EQ(c.written, 2u);
    EXPECT_EQ(c.filtered, 2u);
    EXPECT_EQ(c.rateLimited, 0u);
    EXPECT_EQ(fileLines(path).size(), 2u);
}

TEST(EventLog, RateLimitsPerSecondWindow)
{
    const std::string path =
        ::testing::TempDir() + "/eventlog_rate.jsonl";
    std::remove(path.c_str());
    std::uint64_t now = 0;
    serve::EventLog log;
    serve::EventLog::Options opts;
    opts.maxPerSecond = 2;
    opts.clockMs = [&now] { return now; };
    std::string error;
    ASSERT_TRUE(log.open(path, opts, error)) << error;

    log.log(serve::EventLog::Level::Info, "a");
    log.log(serve::EventLog::Level::Info, "b");
    log.log(serve::EventLog::Level::Info, "overBudget");
    EXPECT_EQ(log.counters().rateLimited, 1u);

    now += 1000; // next window: the budget resets
    log.log(serve::EventLog::Level::Info, "c");
    serve::EventLog::Counters c = log.counters();
    EXPECT_EQ(c.written, 3u);
    EXPECT_EQ(c.rateLimited, 1u);
    EXPECT_EQ(fileLines(path).size(), 3u);
}

TEST(EventLog, WritesValidJsonlWithFieldsAndMonotonicTimestamps)
{
    const std::string path =
        ::testing::TempDir() + "/eventlog_jsonl.jsonl";
    std::remove(path.c_str());
    std::uint64_t now = 100;
    serve::EventLog log;
    serve::EventLog::Options opts;
    opts.clockMs = [&now] { return now; };
    std::string error;
    ASSERT_TRUE(log.open(path, opts, error)) << error;

    now = 142;
    log.log(serve::EventLog::Level::Info, "jobSubmitted",
            {{"id", "j1"}, {"priority", "2"}});
    now = 250;
    log.log(serve::EventLog::Level::Warn, "submitRejected",
            {{"reason", "queue \"full\""}}); // value needs escaping

    std::vector<std::string> lines = fileLines(path);
    ASSERT_EQ(lines.size(), 2u);
    std::uint64_t prev = 0;
    for (const std::string& line : lines) {
        serve::Json doc;
        ASSERT_TRUE(serve::Json::parse(line, doc, error))
            << error << ": " << line;
        const serve::Json* tMs = doc.find("tMs");
        ASSERT_NE(tMs, nullptr);
        ASSERT_TRUE(tMs->isNumber());
        EXPECT_GE(tMs->asU64(), prev);
        prev = tMs->asU64();
        ASSERT_NE(doc.find("level"), nullptr);
        ASSERT_NE(doc.find("event"), nullptr);
    }
    serve::Json doc;
    ASSERT_TRUE(serve::Json::parse(lines[0], doc, error));
    EXPECT_EQ(doc.find("tMs")->asU64(), 42u); // relative to open()
    EXPECT_EQ(doc.find("id")->asString(), "j1");
    ASSERT_TRUE(serve::Json::parse(lines[1], doc, error));
    EXPECT_EQ(doc.find("reason")->asString(), "queue \"full\"");
}

TEST(EventLog, ClosedLogIsANoOp)
{
    serve::EventLog log;
    EXPECT_FALSE(log.enabled());
    log.log(serve::EventLog::Level::Error, "dropped");
    serve::EventLog::Counters c = log.counters();
    EXPECT_EQ(c.written, 0u);
    EXPECT_EQ(c.filtered, 0u);
}

TEST(EventLog, OpenFailureReportsError)
{
    serve::EventLog log;
    serve::EventLog::Options opts;
    std::string error;
    EXPECT_FALSE(
        log.open("/nonexistent-dir/event.jsonl", opts, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(log.enabled());
}

TEST(EventLog, ManagerEmitsLifecycleEvents)
{
    const std::string path =
        ::testing::TempDir() + "/eventlog_manager.jsonl";
    std::remove(path.c_str());
    serve::EventLog log;
    serve::EventLog::Options opts;
    opts.level = serve::EventLog::Level::Debug;
    std::string error;
    ASSERT_TRUE(log.open(path, opts, error)) << error;

    {
        ExperimentRunner runner(tinyOptions(), &ThreadPool::global());
        serve::JobConfig config;
        config.events = &log;
        serve::JobManager jobs(runner, config);
        SweepSpec spec({"hotspot"}, {Technique::Baseline},
                       tinyOptions());
        auto outcome = jobs.submit(spec, 0);
        ASSERT_TRUE(outcome.ok) << outcome.error;
        jobs.drain(); // wait for the job, then tear the manager down
    }

    std::string all;
    for (const std::string& line : fileLines(path))
        all += line + "\n";
    EXPECT_NE(all.find("\"event\":\"jobSubmitted\""),
              std::string::npos)
        << all;
    EXPECT_NE(all.find("\"event\":\"jobStarted\""), std::string::npos)
        << all;
    EXPECT_NE(all.find("\"event\":\"jobFinished\""),
              std::string::npos)
        << all;
    EXPECT_NE(all.find("\"state\":\"done\""), std::string::npos)
        << all;
}

} // namespace
