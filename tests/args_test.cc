/**
 * @file
 * Unit tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "common/args.hh"

namespace wg {
namespace {

ArgParser
makeParser()
{
    ArgParser args("prog", "test program");
    args.addString("name", "default", "a string");
    args.addInt("count", 7, "an int");
    args.addDouble("ratio", 0.5, "a double");
    args.addBool("verbose", "a bool");
    return args;
}

bool
parse(ArgParser& args, std::initializer_list<const char*> argv_tail)
{
    std::vector<const char*> argv = {"prog"};
    argv.insert(argv.end(), argv_tail);
    return args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, DefaultsApply)
{
    ArgParser args = makeParser();
    ASSERT_TRUE(parse(args, {}));
    EXPECT_EQ(args.getString("name"), "default");
    EXPECT_EQ(args.getInt("count"), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("ratio"), 0.5);
    EXPECT_FALSE(args.getBool("verbose"));
    EXPECT_FALSE(args.given("name"));
}

TEST(Args, SpaceSeparatedValues)
{
    ArgParser args = makeParser();
    ASSERT_TRUE(parse(args, {"--name", "x", "--count", "42"}));
    EXPECT_EQ(args.getString("name"), "x");
    EXPECT_EQ(args.getInt("count"), 42);
    EXPECT_TRUE(args.given("name"));
    EXPECT_TRUE(args.given("count"));
}

TEST(Args, EqualsSyntax)
{
    ArgParser args = makeParser();
    ASSERT_TRUE(parse(args, {"--name=y", "--ratio=0.25"}));
    EXPECT_EQ(args.getString("name"), "y");
    EXPECT_DOUBLE_EQ(args.getDouble("ratio"), 0.25);
}

TEST(Args, BoolFlagPresence)
{
    ArgParser args = makeParser();
    ASSERT_TRUE(parse(args, {"--verbose"}));
    EXPECT_TRUE(args.getBool("verbose"));
}

TEST(Args, NegativeNumbers)
{
    ArgParser args = makeParser();
    ASSERT_TRUE(parse(args, {"--count", "-3", "--ratio", "-1.5"}));
    EXPECT_EQ(args.getInt("count"), -3);
    EXPECT_DOUBLE_EQ(args.getDouble("ratio"), -1.5);
}

TEST(Args, PositionalArguments)
{
    ArgParser args = makeParser();
    ASSERT_TRUE(parse(args, {"one", "--count", "2", "two"}));
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "one");
    EXPECT_EQ(args.positional()[1], "two");
}

TEST(Args, UnknownFlagFails)
{
    ArgParser args = makeParser();
    EXPECT_FALSE(parse(args, {"--nope", "1"}));
}

TEST(Args, MissingValueFails)
{
    ArgParser args = makeParser();
    EXPECT_FALSE(parse(args, {"--count"}));
}

TEST(Args, BadNumericValueFails)
{
    ArgParser args = makeParser();
    EXPECT_FALSE(parse(args, {"--count", "abc"}));
    ArgParser args2 = makeParser();
    EXPECT_FALSE(parse(args2, {"--ratio", "1.2.3"}));
}

TEST(Args, HelpReturnsFalse)
{
    ArgParser args = makeParser();
    EXPECT_FALSE(parse(args, {"--help"}));
    EXPECT_TRUE(args.helpRequested());
}

TEST(Args, BadFlagIsNotAHelpRequest)
{
    ArgParser args = makeParser();
    EXPECT_FALSE(parse(args, {"--no-such-flag"}));
    EXPECT_FALSE(args.helpRequested());
}

TEST(Args, UsageListsFlags)
{
    ArgParser args = makeParser();
    std::string usage = args.usage();
    EXPECT_NE(usage.find("--name"), std::string::npos);
    EXPECT_NE(usage.find("--count"), std::string::npos);
    EXPECT_NE(usage.find("a double"), std::string::npos);
    EXPECT_NE(usage.find("prog"), std::string::npos);
}

TEST(ArgsDeath, UndeclaredAccessPanics)
{
    ArgParser args = makeParser();
    EXPECT_DEATH(args.getString("ghost"), "never declared");
}

TEST(ArgsDeath, WrongTypeAccessPanics)
{
    ArgParser args = makeParser();
    EXPECT_DEATH(args.getInt("name"), "wrong type");
}

} // namespace
} // namespace wg
