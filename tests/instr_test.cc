/**
 * @file
 * Unit tests for the instruction representation.
 */

#include <gtest/gtest.h>

#include "arch/instr.hh"

namespace wg {
namespace {

TEST(Instr, UnitClassNames)
{
    EXPECT_STREQ(unitClassName(UnitClass::Int), "INT");
    EXPECT_STREQ(unitClassName(UnitClass::Fp), "FP");
    EXPECT_STREQ(unitClassName(UnitClass::Sfu), "SFU");
    EXPECT_STREQ(unitClassName(UnitClass::Ldst), "LDST");
}

TEST(Instr, MakeIntDefaults)
{
    Instruction i = makeInt(3);
    EXPECT_EQ(i.unit, UnitClass::Int);
    EXPECT_EQ(i.dest, 3);
    EXPECT_EQ(i.srcs[0], kNoReg);
    EXPECT_EQ(i.srcs[1], kNoReg);
    EXPECT_FALSE(i.isStore);
    EXPECT_EQ(i.mem, MemClass::None);
    EXPECT_TRUE(i.writesReg());
    EXPECT_FALSE(i.isLongLatency());
}

TEST(Instr, MakeFpWithSources)
{
    Instruction i = makeFp(5, 1, 2);
    EXPECT_EQ(i.unit, UnitClass::Fp);
    EXPECT_EQ(i.srcs[0], 1);
    EXPECT_EQ(i.srcs[1], 2);
}

TEST(Instr, MakeSfu)
{
    Instruction i = makeSfu(7, 6);
    EXPECT_EQ(i.unit, UnitClass::Sfu);
    EXPECT_EQ(i.dest, 7);
    EXPECT_EQ(i.srcs[0], 6);
}

TEST(Instr, LoadMissIsLongLatency)
{
    Instruction i = makeLoad(1, MemClass::Miss);
    EXPECT_TRUE(i.isLongLatency());
    EXPECT_TRUE(i.writesReg());
    EXPECT_FALSE(i.isStore);
}

TEST(Instr, LoadHitIsNotLongLatency)
{
    Instruction i = makeLoad(1, MemClass::Hit);
    EXPECT_FALSE(i.isLongLatency());
}

TEST(Instr, StoreHasNoDestAndIsNeverLongLatency)
{
    Instruction i = makeStore(MemClass::Miss, 4, 5);
    EXPECT_TRUE(i.isStore);
    EXPECT_FALSE(i.writesReg());
    EXPECT_FALSE(i.isLongLatency())
        << "stores retire through the write buffer";
    EXPECT_EQ(i.srcs[0], 4);
    EXPECT_EQ(i.srcs[1], 5);
}

TEST(Instr, NonMemClassesNeverLongLatency)
{
    EXPECT_FALSE(makeInt(0).isLongLatency());
    EXPECT_FALSE(makeFp(0).isLongLatency());
    EXPECT_FALSE(makeSfu(0).isLongLatency());
}

TEST(Instr, ToStringMentionsClassAndRegs)
{
    Instruction i = makeInt(3, 1, 2);
    std::string s = i.toString();
    EXPECT_NE(s.find("INT"), std::string::npos);
    EXPECT_NE(s.find("r3"), std::string::npos);
    EXPECT_NE(s.find("r1"), std::string::npos);
    EXPECT_NE(s.find("r2"), std::string::npos);
}

TEST(Instr, ToStringForLoads)
{
    std::string miss = makeLoad(1, MemClass::Miss).toString();
    EXPECT_NE(miss.find(".ld"), std::string::npos);
    EXPECT_NE(miss.find(".miss"), std::string::npos);
    std::string store = makeStore(MemClass::Hit, 2).toString();
    EXPECT_NE(store.find(".st"), std::string::npos);
    EXPECT_NE(store.find(".hit"), std::string::npos);
}

} // namespace
} // namespace wg
