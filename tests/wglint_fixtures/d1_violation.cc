// Fixture: D1 fires once per nondeterminism source below (rand,
// steady_clock, sleep_for).
#include <chrono>
#include <cstdlib>
#include <thread>

int
main()
{
    int seed = std::rand();
    auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    (void)t0;
    return seed;
}
