// Fixture: D1 fires once per nondeterminism source below (rand,
// steady_clock, sleep_for, and a keyword-preceded free call —
// `return time(...)` is a call, not a declaration).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <thread>

int
main()
{
    int seed = std::rand();
    auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    (void)t0;
    return seed;
}

long
stamp()
{
    return time(nullptr);
}
