// Fixture: every field reaches both its merge() and its registry
// function — D3 silent. idleHist is Histogram-typed, which exempts it
// from the registry side (StatSet holds scalars only) but not from
// merge(). cycles/stalls share one multi-declarator line: both
// declarators must be extracted and found registered.
#include <cstdint>

struct StatSet
{
    void set(const char*, double) {}
};

struct Histogram
{
    void merge(const Histogram&) {}
};

struct SmStats
{
    std::uint64_t cycles = 0, stalls = 0;
    Histogram idleHist;
};

void
mergeSmStats(SmStats& into, const SmStats& sm)
{
    into.cycles += sm.cycles;
    into.stalls += sm.stalls;
    into.idleHist.merge(sm.idleHist);
}

void
appendSmStats(StatSet& set, const SmStats& s)
{
    set.set("gpu.cycles", static_cast<double>(s.cycles));
    set.set("gpu.stalls", static_cast<double>(s.stalls));
}
