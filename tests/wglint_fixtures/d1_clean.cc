// Fixture: deterministic code; D1 must stay silent (splitmix64 is the
// project's sanctioned seed mixer).
#include <cstdint>

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    return x;
}

int
main()
{
    return static_cast<int>(mix(42) & 1);
}
