// Fixture: deterministic code; D1 must stay silent (splitmix64 is the
// project's sanctioned seed mixer).
#include <cstdint>

// Encoding-prefixed raw literals must lex as one string token: a
// lexer that missed the u8 prefix would stop the string at the inner
// quote and surface the time(nullptr) text below as a real call.
const char* kRawNote = u8R"(srand(7); " time(nullptr);)";

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 29;
    return x;
}

int
main()
{
    return static_cast<int>(mix(42) & 1);
}
