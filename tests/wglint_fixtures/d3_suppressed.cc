// Fixture: a field exempted from the registry contract with a
// field-level suppression — D3 silent.
#include <cstdint>

struct StatSet
{
    void set(const char*, double) {}
};

struct SmStats
{
    std::uint64_t cycles = 0;
    // wglint:allow(D3): scratch counter, intentionally unexported
    std::uint64_t stalls = 0;
};

void
mergeSmStats(SmStats& into, const SmStats& sm)
{
    into.cycles += sm.cycles;
}

void
appendSmStats(StatSet& set, const SmStats& s)
{
    set.set("gpu.cycles", static_cast<double>(s.cycles));
}
