// Fixture: camelCase embedded keys, '_' in values and in plain (non
// key) strings — D4 silent.
#include <string>

std::string
buildFrame(const std::string& id)
{
    std::string out = "{\"jobId\":\"";
    out += id;
    out += "\",\"droppedFrames\":0,\"state\":\"not_a_key\"}";
    out += "plain snake_case text without any embedded key";
    return out;
}
