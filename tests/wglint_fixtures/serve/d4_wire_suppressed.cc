// Fixture: an '_' wire key kept for a legacy consumer — D4 stays
// silent under suppression.
#include <string>

std::string
buildFrame()
{
    // wglint:allow(D4): legacy collector expects this spelling
    return "{\"job_id\":\"j1\"}";
}
