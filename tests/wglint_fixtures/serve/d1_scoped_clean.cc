// D1 scoped-exemption fixture: this file lives under a serve/
// directory, where the socket-timeout subset of nondeterminism
// sources is sanctioned without per-line suppressions. Everything
// here must lint clean.
#include <chrono>
#include <thread>

namespace wg::serve {

int
remainingMs(std::chrono::steady_clock::time_point deadline)
{
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline)
        return 0;
    return static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              now)
            .count());
}

void
backoff()
{
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

void
backoffUntil(std::chrono::steady_clock::time_point deadline)
{
    std::this_thread::sleep_until(deadline);
}

} // namespace wg::serve
