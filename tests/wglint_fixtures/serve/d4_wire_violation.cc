// Fixture: snake_case JSON keys embedded in hand-built wire/log
// lines leak '_' into the protocol — D4 fires on both literals.
#include <string>

std::string
buildFrame(const std::string& id)
{
    std::string out = "{\"job_id\":\"";
    out += id;
    out += "\",\"dropped_frames\":0}";
    return out;
}
