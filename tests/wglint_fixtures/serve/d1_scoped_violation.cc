// D1 scoped-exemption fixture: the serve/ exemption covers ONLY the
// socket-timeout subset. Wall clocks and entropy sources must still
// fire here exactly as they would anywhere else. Expected: 3 D1
// violations (system_clock, rand, random_device).
#include <chrono>
#include <cstdlib>
#include <random>

namespace wg::serve {

long
wallStamp()
{
    return std::chrono::system_clock::now().time_since_epoch().count();
}

int
jitter()
{
    return rand() % 100;
}

unsigned
entropy()
{
    std::random_device dev;
    return dev();
}

} // namespace wg::serve
