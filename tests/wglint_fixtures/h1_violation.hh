// Fixture: header without '#pragma once' and with a header-scope
// 'using namespace' — H1 fires twice.
#include <string>

using namespace std;

inline string
fixtureName()
{
    return "h1";
}
