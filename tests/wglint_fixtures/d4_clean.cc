// Fixture: dotted registry names plus an '_' in a non-name argument
// position (the value side is not checked) — D4 silent.
#include <string>

struct StatSet
{
    void set(const std::string&, double) {}
};

void
publish(StatSet& set, double busy_frac)
{
    set.set("gpu.pg.int.busyCycles", busy_frac);
    set.set(std::string("gpu.pg.fp.") + "wakeups", 1.0);
}
