// Same recovery contract for character literals: the unterminated
// glyph ends at end of line, and the banned call below is still seen.
static const char xfnBrokenGlyph = 'x;

long
xfnMalformedCharTail()
{
    return rand();
}
