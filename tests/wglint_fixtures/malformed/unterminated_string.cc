// Tokenizer-hardening fixture: the string literal below never closes.
// Recovery must terminate it at end of line so the banned call two
// statements later is still seen instead of being swallowed.
static const char* xfnBrokenBanner = "this banner never closes;

long
xfnMalformedStringTail()
{
    return rand();
}
