// A raw string with a delimiter that never reappears legitimately
// runs to end of file: everything below the opener is literal text,
// so the banned identifiers inside it must NOT be reported.
static const char* xfnRawTail = R"wg(
rand();
random_device entropySource;
the )wg closer above lacks the quote, so the literal never terminates
