// Fixture: a snapshotted struct whose codec covers every field in
// both directions — D5 silent.
#include <cstdint>
#include <string>

struct Json
{
    void set(const char*, std::uint64_t) {}
    std::uint64_t get(const char*) const { return 0; }
};

struct RngState
{
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
};

Json
rngStateToJson(const RngState& s)
{
    Json j;
    j.set("state", s.state);
    j.set("inc", s.inc);
    return j;
}

bool
rngStateFromJson(const Json& j, const std::string&, RngState& out,
                 std::string&)
{
    out.state = j.get("state");
    out.inc = j.get("inc");
    return true;
}
