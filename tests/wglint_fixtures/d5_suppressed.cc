// Fixture: a field exempted from the snapshot-codec contract with a
// field-level suppression (derived state restore() recomputes) — D5
// silent.
#include <cstdint>
#include <string>

struct Json
{
    void set(const char*, std::uint64_t) {}
    std::uint64_t get(const char*) const { return 0; }
};

struct SmSnapshot
{
    std::uint64_t now = 0;
    // wglint:allow(D5): derived from the warp slots on restore
    std::uint64_t liveWarps = 0;
};

Json
smSnapshotToJson(const SmSnapshot& s)
{
    Json j;
    j.set("now", s.now);
    return j;
}

bool
smSnapshotFromJson(const Json& j, const std::string&, SmSnapshot& out,
                   std::string&)
{
    out.now = j.get("now");
    return true;
}
