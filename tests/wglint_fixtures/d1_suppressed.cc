// Fixture: same sources as d1_violation.cc, each suppressed.
#include <chrono>
#include <cstdlib>
#include <thread>

int
main()
{
    int seed = std::rand(); // wglint:allow(D1): fixture
    // wglint:allow(D1): profiling wall clock only
    auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for( // wglint:allow(D1)
        std::chrono::milliseconds(1));
    (void)t0;
    return seed;
}
