// Raw lock()/unlock() on a mutex-typed member: an early return or an
// exception between the two calls leaks the lock, which is exactly
// what the RAII wrappers exist to prevent.
#include <mutex>

class C1RawLocker
{
  public:
    void bump()
    {
        c1v_mu_.lock();
        ++value_;
        c1v_mu_.unlock();
    }

  private:
    std::mutex c1v_mu_;
    long value_ = 0;
};
