// The caller-holds-the-lock contract: *Locked helpers may write the
// guarded field without taking the mutex themselves, because every
// caller already holds it.
#include <mutex>

class C2CleanGauge
{
  public:
    void set(long v)
    {
        std::lock_guard<std::mutex> hold(g2_mu_);
        g2_total_ = v;
    }
    void add(long v)
    {
        std::lock_guard<std::mutex> hold(g2_mu_);
        addLocked(v);
    }

  private:
    void addLocked(long v) { g2_total_ += v; }

    std::mutex g2_mu_;
    long g2_total_ = 0;
};
