// The drift: writes the field the other translation unit guards, with
// no RAII guard, no WG_REQUIRES contract, and no *Locked name. Linted
// alone this file is clean — the guarded sibling is out of view —
// which is the masking the cross-file index exists to defeat.
#include "c2_state.hh"

void
C2SharedCounter::bumpRacy()
{
    ++c2_hits_;
}
