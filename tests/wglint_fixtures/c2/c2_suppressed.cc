// An unlocked write in a reviewed single-threaded phase: the
// suppression records the claim that no concurrent reader exists yet.
#include <mutex>

class C2QuietCounter
{
  public:
    void bump()
    {
        std::lock_guard<std::mutex> hold(q2_mu_);
        ++q2_count_;
    }
    void warmupReset()
    {
        q2_count_ = 0; // wglint:allow(C2)
    }

  private:
    std::mutex q2_mu_;
    long q2_count_ = 0;
};
