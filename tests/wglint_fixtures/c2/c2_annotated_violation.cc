// A WG_GUARDED_BY annotation alone (no guarded write anywhere) is
// enough to make a field a candidate: the annotation is the contract,
// and the unlocked write in reset() breaks it.
#define WG_GUARDED_BY(x)

#include <mutex>

class C2AnnotatedRacy
{
  public:
    void reset() { ar_count_ = 0; }

  private:
    std::mutex ar_mu_;
    long ar_count_ WG_GUARDED_BY(ar_mu_) = 0;
};
