#pragma once

// Cross-TU lock-discipline fixture: the safe writer (c2_safe.cc)
// takes c2_mu_ before touching c2_hits_; the racy writer (c2_racy.cc)
// does not. Each translation unit is individually plausible — only a
// whole-tree lint that merges both definitions against this class can
// see the drift.
#include <mutex>

class C2SharedCounter
{
  public:
    void bumpSafely();
    void bumpRacy();
    long peek() const { return c2_hits_; }

  private:
    mutable std::mutex c2_mu_;
    long c2_hits_ = 0;
};
