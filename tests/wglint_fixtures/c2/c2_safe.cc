// The disciplined half: establishes that C2SharedCounter::c2_hits_ is
// a lock-guarded field by only ever writing it under the mutex.
#include <mutex>

#include "c2_state.hh"

void
C2SharedCounter::bumpSafely()
{
    std::lock_guard<std::mutex> hold(c2_mu_);
    ++c2_hits_;
}
