// The sanctioned shape: the mutex is only ever held through a RAII
// guard, so every exit path releases it.
#include <mutex>

class C1RaiiLocker
{
  public:
    void bump()
    {
        std::lock_guard<std::mutex> hold(c1c_mu_);
        ++count_;
    }

  private:
    std::mutex c1c_mu_;
    long count_ = 0;
};
