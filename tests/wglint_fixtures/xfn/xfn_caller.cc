// Cross-function nondeterminism chain, top half: this translation
// unit contains no banned identifier at all. A per-file (v1) scan is
// provably clean here; only the interprocedural taint pass can see
// that xfnResultPath's output depends on rand() two hops away in
// xfn_helper.cc.
long xfnMiddleHop();

long
xfnResultPath()
{
    return xfnMiddleHop() * 2;
}
