// Cross-function nondeterminism chain, bottom half. The direct source
// lives in xfnEntropyHelper; xfnMiddleHop is the hop other fixture
// files call, so taint has to cross a function boundary here and a
// translation-unit boundary to reach xfn_caller.cc.
#include <cstdlib>

long
xfnEntropyHelper()
{
    return rand();
}

long
xfnMiddleHop()
{
    return xfnEntropyHelper() + 1;
}
