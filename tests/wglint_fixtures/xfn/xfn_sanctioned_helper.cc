// The direct site itself carries the suppression, so the helper is
// sanctioned at the source: it never becomes a taint seed and callers
// in any translation unit inherit the reviewed claim.
#include <cstdlib>

long
xfnSanctionedTimer()
{
    return rand(); // wglint:allow(D1)
}
