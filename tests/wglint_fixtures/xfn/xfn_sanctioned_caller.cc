// Calls a helper whose direct nondeterminism site is suppressed:
// linted together with xfn_sanctioned_helper.cc this must stay clean.
long xfnSanctionedTimer();

long
xfnSanctionedUse()
{
    return xfnSanctionedTimer() + 1;
}
