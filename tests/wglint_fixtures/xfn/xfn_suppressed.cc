// A call-site suppression is a reviewed claim that the callee's
// nondeterminism does not affect results; it stops taint from
// propagating through this edge, so xfnSuppressedPath stays clean
// even when linted together with xfn_helper.cc.
long xfnMiddleHop();

long
xfnSuppressedPath()
{
    return xfnMiddleHop(); // wglint:allow(D1)
}
