// Fixture: unordered iteration suppressed at both sites.
#include <string>
#include <unordered_map>

double
sumAll(const std::unordered_map<std::string, double>& stats)
{
    double total = 0.0;
    // wglint:allow(D2): order-independent reduction
    for (const auto& kv : stats)
        total += kv.second;
    // wglint:allow(D2)
    auto it = stats.begin();
    (void)it;
    return total;
}
