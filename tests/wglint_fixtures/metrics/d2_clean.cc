// Fixture: ordered containers iterate deterministically — D2 silent.
#include <map>
#include <string>

double
sumAll(const std::map<std::string, double>& stats)
{
    double total = 0.0;
    for (const auto& kv : stats)
        total += kv.second;
    return total;
}
