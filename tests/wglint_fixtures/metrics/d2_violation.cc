// Fixture: hash-order iteration in a result-affecting path (this file
// lives under a metrics/ directory) — D2 must fire on both loops.
#include <string>
#include <unordered_map>
#include <unordered_set>

double
sumAll(const std::unordered_map<std::string, double>& stats)
{
    double total = 0.0;
    for (const auto& kv : stats)
        total += kv.second;
    return total;
}

std::size_t
walk(const std::unordered_set<std::string>& names)
{
    std::size_t n = 0;
    for (auto it = names.begin(); it != names.end(); ++it)
        ++n;
    return n;
}
