// Fixture: snapshot-field drift, both codec directions.
//   - RngState::inc is serialized in rngStateToJson() but missing
//     from rngStateFromJson() — a resumed run would reseed wrong;
//   - SmSnapshot::liveWarps is restored but never serialized — the
//     written snapshot silently loses it;
//   - SmSnapshot::done is the second declarator of a multi-declarator
//     field line and is missing from both halves — the extractor must
//     see every declarator, not just the first.
#include <cstdint>
#include <string>

struct Json
{
    void set(const char*, std::uint64_t) {}
    std::uint64_t get(const char*) const { return 0; }
};

struct RngState
{
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
};

Json
rngStateToJson(const RngState& s)
{
    Json j;
    j.set("state", s.state);
    j.set("inc", s.inc);
    return j;
}

bool
rngStateFromJson(const Json& j, const std::string&, RngState& out,
                 std::string&)
{
    out.state = j.get("state");
    return true;
}

struct SmSnapshot
{
    std::uint64_t now = 0;
    std::uint64_t liveWarps = 0;
    bool finishedStats = false, done = false;
};

Json
smSnapshotToJson(const SmSnapshot& s)
{
    Json j;
    j.set("now", s.now);
    j.set("finishedStats", s.finishedStats ? 1 : 0);
    return j;
}

bool
smSnapshotFromJson(const Json& j, const std::string&, SmSnapshot& out,
                   std::string&)
{
    out.now = j.get("now");
    out.liveWarps = j.get("liveWarps");
    out.finishedStats = j.get("finishedStats") != 0;
    return true;
}
