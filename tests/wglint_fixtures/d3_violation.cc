// Fixture: stats-registration drift, both catalogue paths.
//   - SmStats::stalls is merged but missing from appendSmStats()
//     (free-function registry path);
//   - SmStats::replays is the second declarator of a multi-declarator
//     field line and is missing from appendSmStats() — the extractor
//     must see every declarator, not just the first;
//   - PgDomainStats::wakeups is registered but missing from merge()
//     (member-merge path — the PR 3 drift-bug shape).
#include <cstdint>

struct StatSet
{
    void set(const char*, double) {}
};

struct PgDomainStats
{
    std::uint64_t busyCycles = 0;
    std::uint64_t wakeups = 0;

    void
    merge(const PgDomainStats& other)
    {
        busyCycles += other.busyCycles;
    }
};

void
appendPgDomainStats(StatSet& set, const PgDomainStats& s)
{
    set.set("pg.busyCycles", static_cast<double>(s.busyCycles));
    set.set("pg.wakeups", static_cast<double>(s.wakeups));
}

struct SmStats
{
    std::uint64_t cycles = 0;
    std::uint64_t stalls = 0;
    std::uint64_t issueSlots = 0, replays = 0;
};

void
mergeSmStats(SmStats& into, const SmStats& sm)
{
    into.cycles += sm.cycles;
    into.stalls += sm.stalls;
    into.issueSlots += sm.issueSlots;
    into.replays += sm.replays;
}

void
appendSmStats(StatSet& set, const SmStats& s)
{
    set.set("gpu.cycles", static_cast<double>(s.cycles));
    set.set("gpu.issueSlots", static_cast<double>(s.issueSlots));
}
