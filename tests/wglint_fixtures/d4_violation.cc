// Fixture: metric-name literals with '_' handed to StatSet accessors
// break the Prometheus '.' -> '_' bijection — D4 fires on both.
struct StatSet
{
    void set(const char*, double) {}
    double get(const char*) const { return 0.0; }
};

void
publish(StatSet& set)
{
    set.set("gpu.pg.int_busy", 1.0);
    (void)set.get("gpu.total_cycles");
}
