// Fixture: hygienic header — H1 silent.
#pragma once

#include <string>

inline std::string
fixtureName()
{
    return "h1";
}
