// Fixture: an '_' name sanctioned for a legacy consumer — D4 stays
// silent under suppression.
struct StatSet
{
    void set(const char*, double) {}
};

void
publish(StatSet& set)
{
    // wglint:allow(D4): legacy dashboard key, migration tracked
    set.set("gpu.legacy_key", 1.0);
}
