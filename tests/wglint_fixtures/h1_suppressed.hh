// wglint:allow(H1): fixture — generated header kept guard-free
#include <string>

// wglint:allow(H1): fixture exercises the using-namespace suppression
using namespace std;

inline string
fixtureSuppressedName()
{
    return "h1";
}
