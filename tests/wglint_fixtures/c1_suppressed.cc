// A reviewed exception: the lock is handed across the two halves of a
// split update, which no single-scope RAII guard can express.
#include <mutex>

class C1SuppressedLocker
{
  public:
    void beginUpdate()
    {
        c1s_mu_.lock(); // wglint:allow(C1)
    }
    void endUpdate()
    {
        c1s_mu_.unlock(); // wglint:allow(C1)
    }

  private:
    std::mutex c1s_mu_;
};
