/**
 * @file
 * Unit tests for the hand-built synthetic workloads.
 */

#include <gtest/gtest.h>

#include "workload/synthetic.hh"

namespace wg {
namespace {

TEST(Synthetic, PureProgram)
{
    Program p = pureProgram(UnitClass::Fp, 10);
    EXPECT_EQ(p.size(), 10u);
    EXPECT_EQ(p.countOf(UnitClass::Fp), 10u);
    EXPECT_EQ(p.countOf(UnitClass::Int), 0u);
}

TEST(Synthetic, PureLdstGetsHitClass)
{
    Program p = pureProgram(UnitClass::Ldst, 4);
    for (const auto& i : p.instructions())
        EXPECT_EQ(i.mem, MemClass::Hit);
}

TEST(Synthetic, AlternatingProgram)
{
    Program p = alternatingProgram(8);
    EXPECT_EQ(p.countOf(UnitClass::Int), 4u);
    EXPECT_EQ(p.countOf(UnitClass::Fp), 4u);
    for (std::size_t i = 0; i < p.size(); ++i) {
        EXPECT_EQ(p.at(i).unit,
                  i % 2 == 0 ? UnitClass::Int : UnitClass::Fp);
    }
}

TEST(Synthetic, ChainProgramIsFullySerialised)
{
    Program p = chainProgram(UnitClass::Int, 20);
    for (std::size_t i = 1; i < p.size(); ++i)
        EXPECT_EQ(p.at(i).srcs[0], p.at(i - 1).dest) << "at " << i;
}

TEST(Synthetic, Fig4WarpOrder)
{
    // INT1 INT2 FP1 INT3 FP2 INT4 INT5 INT6 INT7 FP3 FP4 INT8.
    auto warps = fig4Warps();
    ASSERT_EQ(warps.size(), 12u);
    const UnitClass expected[] = {
        UnitClass::Int, UnitClass::Int, UnitClass::Fp, UnitClass::Int,
        UnitClass::Fp, UnitClass::Int, UnitClass::Int, UnitClass::Int,
        UnitClass::Int, UnitClass::Fp, UnitClass::Fp, UnitClass::Int,
    };
    int ints = 0, fps = 0;
    for (std::size_t i = 0; i < warps.size(); ++i) {
        ASSERT_EQ(warps[i].size(), 1u);
        EXPECT_EQ(warps[i].at(0).unit, expected[i]) << "warp " << i;
        if (expected[i] == UnitClass::Int)
            ++ints;
        else
            ++fps;
    }
    EXPECT_EQ(ints, 8);
    EXPECT_EQ(fps, 4);
}

TEST(Synthetic, UniformMixDeterministic)
{
    auto a = uniformMixWarps(4, 100, 0.3, 0.2, 0.5, 9);
    auto b = uniformMixWarps(4, 100, 0.3, 0.2, 0.5, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t w = 0; w < a.size(); ++w) {
        ASSERT_EQ(a[w].size(), b[w].size());
        for (std::size_t i = 0; i < a[w].size(); ++i)
            EXPECT_EQ(a[w].at(i).unit, b[w].at(i).unit);
    }
}

TEST(Synthetic, UniformMixRoughShares)
{
    auto warps = uniformMixWarps(8, 2000, 0.4, 0.2, 0.5, 3);
    std::size_t fp = 0, ldst = 0, total = 0;
    for (const auto& p : warps) {
        fp += p.countOf(UnitClass::Fp);
        ldst += p.countOf(UnitClass::Ldst);
        total += p.size();
    }
    EXPECT_NEAR(static_cast<double>(fp) / total, 0.4, 0.05);
    EXPECT_NEAR(static_cast<double>(ldst) / total, 0.2, 0.05);
}

} // namespace
} // namespace wg
