/**
 * @file
 * Unit tests for Program.
 */

#include <gtest/gtest.h>

#include "arch/program.hh"

namespace wg {
namespace {

TEST(Program, EmptyByDefault)
{
    Program p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.size(), 0u);
    for (std::size_t c = 0; c < kNumUnitClasses; ++c)
        EXPECT_EQ(p.countOf(static_cast<UnitClass>(c)), 0u);
}

TEST(Program, CountsClasses)
{
    std::vector<Instruction> instrs = {
        makeInt(0), makeInt(1), makeFp(2), makeSfu(3),
        makeLoad(4, MemClass::Hit), makeStore(MemClass::Miss, 4),
    };
    Program p(std::move(instrs));
    EXPECT_EQ(p.size(), 6u);
    EXPECT_EQ(p.countOf(UnitClass::Int), 2u);
    EXPECT_EQ(p.countOf(UnitClass::Fp), 1u);
    EXPECT_EQ(p.countOf(UnitClass::Sfu), 1u);
    EXPECT_EQ(p.countOf(UnitClass::Ldst), 2u);
}

TEST(Program, AtPreservesOrder)
{
    Program p({makeInt(0), makeFp(1)});
    EXPECT_EQ(p.at(0).unit, UnitClass::Int);
    EXPECT_EQ(p.at(1).unit, UnitClass::Fp);
    EXPECT_EQ(p.instructions().size(), 2u);
}

} // namespace
} // namespace wg
