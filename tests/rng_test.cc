/**
 * @file
 * Unit tests for the deterministic PCG32 generator.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace wg {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.nextU32() == b.nextU32())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, DifferentStreamsDiverge)
{
    Rng a(7, 1), b(7, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.nextU32() == b.nextU32())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, RangeBounds)
{
    Rng rng(3);
    for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1u << 20}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextRange(bound), bound);
    }
}

TEST(Rng, RangeOneAlwaysZero)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextRange(1), 0u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(5);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 5000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(123);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.nextDouble();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BoolEdgeCases)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
        EXPECT_FALSE(rng.nextBool(-1.0));
        EXPECT_TRUE(rng.nextBool(2.0));
    }
}

TEST(Rng, BoolProbabilityApprox)
{
    Rng rng(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.nextBool(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricEdgeCases)
{
    Rng rng(19);
    EXPECT_EQ(rng.nextGeometric(1.0), 0u);
    EXPECT_EQ(rng.nextGeometric(2.0), 0u);
    EXPECT_EQ(rng.nextGeometric(0.0), 0xffffffffu);
}

TEST(Rng, GeometricMeanApprox)
{
    // E[failures before success] = (1-p)/p.
    Rng rng(23);
    const double p = 0.25;
    double acc = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        acc += rng.nextGeometric(p);
    EXPECT_NEAR(acc / n, (1.0 - p) / p, 0.1);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng root(99);
    Rng a = root.fork(5);
    Rng root2(99);
    Rng b = root2.fork(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, ForksWithDifferentSaltsDiverge)
{
    Rng root(99);
    Rng a = root.fork(1);
    Rng b = root.fork(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.nextU32() == b.nextU32())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, NearbySaltsUncorrelated)
{
    // SplitMix mixing should decorrelate salt k and k+1.
    Rng root(7);
    std::vector<double> means;
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
        Rng r = root.fork(salt);
        double acc = 0.0;
        for (int i = 0; i < 2000; ++i)
            acc += r.nextDouble();
        means.push_back(acc / 2000);
    }
    for (double m : means)
        EXPECT_NEAR(m, 0.5, 0.05);
}

/** Chi-square-ish uniformity check across 16 buckets. */
TEST(Rng, RoughUniformity)
{
    Rng rng(2024);
    std::vector<int> buckets(16, 0);
    const int n = 160000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.nextRange(16)];
    for (int count : buckets)
        EXPECT_NEAR(count, n / 16, n / 16 / 10);
}

TEST(SplitMix64, MatchesReferenceVectors)
{
    // Reference outputs of the canonical splitmix64 (Vigna) seeded
    // with 0: successive next() calls, i.e. splitmix64(k * golden).
    EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitmix64(0x9e3779b97f4a7c15ULL), 0x6e789e6aa1b965f4ULL);
}

TEST(SplitMix64, AvalanchesOnSingleBitFlips)
{
    // Flipping any one input bit should flip roughly half the output
    // bits — the property the old linear a*seed + b*sm mix lacked.
    for (int bit = 0; bit < 64; ++bit) {
        std::uint64_t a = splitmix64(42);
        std::uint64_t b = splitmix64(42ULL ^ (1ULL << bit));
        int flipped = __builtin_popcountll(a ^ b);
        EXPECT_GE(flipped, 16) << "bit " << bit;
        EXPECT_LE(flipped, 48) << "bit " << bit;
    }
}

TEST(StreamSeed, DistinctSeedSmPairsGiveDistinctStreams)
{
    // Regression for the per-SM seed derivation: every (seed, sm) pair
    // in a dense grid must map to a unique stream seed, including the
    // cross-pair aliases a linear mix admits.
    std::set<std::uint64_t> seen;
    for (std::uint64_t seed = 0; seed < 64; ++seed)
        for (std::uint64_t sm = 0; sm < 32; ++sm)
            seen.insert(streamSeed(seed, sm));
    EXPECT_EQ(seen.size(), 64u * 32u);
}

TEST(StreamSeed, NearbySeedsDecorrelated)
{
    // Under the old mix, streams for seed and seed+1 (same SM) sat at
    // a constant additive offset. Require avalanche instead.
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        for (unsigned sm = 0; sm < 4; ++sm) {
            std::uint64_t a = streamSeed(seed, sm);
            std::uint64_t b = streamSeed(seed + 1, sm);
            int flipped = __builtin_popcountll(a ^ b);
            EXPECT_GE(flipped, 16) << "seed " << seed << " sm " << sm;
            std::uint64_t c = streamSeed(seed, sm + 1);
            EXPECT_GE(__builtin_popcountll(a ^ c), 16)
                << "seed " << seed << " sm " << sm;
        }
    }
}

TEST(StreamSeed, FirstDrawsOfDerivedRngsAreDistinct)
{
    // End-to-end: the actual per-SM generators (as Gpu seeds them)
    // must not replay each other's sequences.
    std::set<std::uint64_t> first_draws;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        for (unsigned sm = 0; sm < 8; ++sm) {
            Rng rng(streamSeed(seed, sm));
            std::uint64_t sig = (static_cast<std::uint64_t>(rng.nextU32())
                                 << 32) |
                                rng.nextU32();
            first_draws.insert(sig);
        }
    }
    EXPECT_EQ(first_draws.size(), 64u);
}

} // namespace
} // namespace wg
