/**
 * @file
 * Unit tests for the deterministic PCG32 generator.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace wg {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.nextU32() == b.nextU32())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, DifferentStreamsDiverge)
{
    Rng a(7, 1), b(7, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.nextU32() == b.nextU32())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, RangeBounds)
{
    Rng rng(3);
    for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1u << 20}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextRange(bound), bound);
    }
}

TEST(Rng, RangeOneAlwaysZero)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextRange(1), 0u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(5);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 5000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(123);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.nextDouble();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BoolEdgeCases)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
        EXPECT_FALSE(rng.nextBool(-1.0));
        EXPECT_TRUE(rng.nextBool(2.0));
    }
}

TEST(Rng, BoolProbabilityApprox)
{
    Rng rng(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.nextBool(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricEdgeCases)
{
    Rng rng(19);
    EXPECT_EQ(rng.nextGeometric(1.0), 0u);
    EXPECT_EQ(rng.nextGeometric(2.0), 0u);
    EXPECT_EQ(rng.nextGeometric(0.0), 0xffffffffu);
}

TEST(Rng, GeometricMeanApprox)
{
    // E[failures before success] = (1-p)/p.
    Rng rng(23);
    const double p = 0.25;
    double acc = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        acc += rng.nextGeometric(p);
    EXPECT_NEAR(acc / n, (1.0 - p) / p, 0.1);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng root(99);
    Rng a = root.fork(5);
    Rng root2(99);
    Rng b = root2.fork(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, ForksWithDifferentSaltsDiverge)
{
    Rng root(99);
    Rng a = root.fork(1);
    Rng b = root.fork(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.nextU32() == b.nextU32())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, NearbySaltsUncorrelated)
{
    // SplitMix mixing should decorrelate salt k and k+1.
    Rng root(7);
    std::vector<double> means;
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
        Rng r = root.fork(salt);
        double acc = 0.0;
        for (int i = 0; i < 2000; ++i)
            acc += r.nextDouble();
        means.push_back(acc / 2000);
    }
    for (double m : means)
        EXPECT_NEAR(m, 0.5, 0.05);
}

/** Chi-square-ish uniformity check across 16 buckets. */
TEST(Rng, RoughUniformity)
{
    Rng rng(2024);
    std::vector<int> buckets(16, 0);
    const int n = 160000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.nextRange(16)];
    for (int count : buckets)
        EXPECT_NEAR(count, n / 16, n / 16 / 10);
}

} // namespace
} // namespace wg
