/**
 * @file
 * Unit tests for the power-gating state machine (paper Fig. 2c plus the
 * Blackout and Coordinated Blackout modifications).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "pg/domain.hh"

namespace wg {
namespace {

PgParams
params(PgPolicy policy, Cycle idle_detect = 2, Cycle bet = 3,
       Cycle wakeup = 2)
{
    PgParams p;
    p.policy = policy;
    p.idleDetect = idle_detect;
    p.breakEven = bet;
    p.wakeupDelay = wakeup;
    return p;
}

/** Drive @p n idle (not busy) cycles starting at @p now. */
Cycle
idleFor(PgDomain& d, Cycle now, Cycle n, Cycle idle_detect = 2,
        bool peer = false, std::uint32_t actv = 1)
{
    for (Cycle i = 0; i < n; ++i)
        d.tick(now++, false, idle_detect, peer, actv);
    return now;
}

TEST(PgDomain, StartsOnAndExecutable)
{
    PgDomain d(params(PgPolicy::Conventional));
    EXPECT_EQ(d.state(), PgState::On);
    EXPECT_TRUE(d.canExecute());
    EXPECT_FALSE(d.isGated());
    EXPECT_FALSE(d.wakeable());
}

TEST(PgDomain, PolicyNoneNeverGates)
{
    PgDomain d(params(PgPolicy::None));
    idleFor(d, 0, 100);
    EXPECT_EQ(d.state(), PgState::On);
    EXPECT_EQ(d.stats().gatingEvents, 0u);
    EXPECT_EQ(d.stats().idleOnCycles, 100u);
}

TEST(PgDomain, GatesAfterIdleDetect)
{
    PgDomain d(params(PgPolicy::Conventional, 2));
    d.tick(0, true, 2, false, 1);
    d.tick(1, false, 2, false, 1);
    EXPECT_EQ(d.state(), PgState::On) << "one idle cycle is not enough";
    d.tick(2, false, 2, false, 1);
    EXPECT_EQ(d.state(), PgState::Uncompensated);
    EXPECT_EQ(d.stats().gatingEvents, 1u);
    EXPECT_EQ(d.stats().idleOnCycles, 2u);
}

TEST(PgDomain, BusyResetsIdleDetect)
{
    PgDomain d(params(PgPolicy::Conventional, 3));
    for (int k = 0; k < 10; ++k) {
        d.tick(2 * k, false, 3, false, 1);
        d.tick(2 * k + 1, true, 3, false, 1);
    }
    EXPECT_EQ(d.state(), PgState::On)
        << "interleaved busy cycles must keep resetting the counter";
    EXPECT_EQ(d.stats().gatingEvents, 0u);
}

TEST(PgDomain, CompensatesAfterBreakEven)
{
    PgDomain d(params(PgPolicy::Conventional, 2, 3));
    Cycle now = idleFor(d, 0, 2); // gates at cycle 1
    now = idleFor(d, now, 2);
    EXPECT_EQ(d.state(), PgState::Uncompensated);
    idleFor(d, now, 1);
    EXPECT_EQ(d.state(), PgState::Compensated);
    EXPECT_EQ(d.stats().uncompCycles, 3u);
}

TEST(PgDomain, ConventionalWakesFromUncompensated)
{
    PgDomain d(params(PgPolicy::Conventional, 2, 5));
    Cycle now = idleFor(d, 0, 3);
    ASSERT_EQ(d.state(), PgState::Uncompensated);
    EXPECT_TRUE(d.wakeable());
    d.requestWakeup(now);
    d.tick(now, false, 2, false, 1);
    EXPECT_EQ(d.state(), PgState::Wakeup);
    EXPECT_EQ(d.stats().uncompWakeups, 1u);
    EXPECT_EQ(d.stats().wakeups, 1u);
    EXPECT_EQ(d.stats().criticalWakeups, 0u);
}

TEST(PgDomain, BlackoutIgnoresEarlyWakeup)
{
    for (PgPolicy policy :
         {PgPolicy::NaiveBlackout, PgPolicy::CoordinatedBlackout}) {
        PgDomain d(params(policy, 2, 5));
        Cycle now = idleFor(d, 0, 3);
        ASSERT_EQ(d.state(), PgState::Uncompensated);
        EXPECT_FALSE(d.wakeable());
        d.requestWakeup(now);
        d.tick(now, false, 2, false, 1);
        EXPECT_NE(d.state(), PgState::Wakeup)
            << pgPolicyName(policy)
            << ": no wakeup before the break-even time";
        EXPECT_EQ(d.stats().uncompWakeups, 0u);
    }
}

TEST(PgDomain, CriticalWakeupAtBlackoutEnd)
{
    PgDomain d(params(PgPolicy::NaiveBlackout, 2, 3));
    Cycle now = idleFor(d, 0, 2); // gated after cycle 1
    // Keep requesting every cycle, as a blocked instruction would.
    for (int i = 0; i < 3; ++i) {
        d.requestWakeup(now);
        d.tick(now++, false, 2, false, 1);
    }
    EXPECT_EQ(d.state(), PgState::Wakeup)
        << "wakeup granted the moment BET expires";
    EXPECT_EQ(d.stats().criticalWakeups, 1u);
    EXPECT_EQ(d.stats().uncompWakeups, 0u);
}

TEST(PgDomain, LateWakeupIsNotCritical)
{
    PgDomain d(params(PgPolicy::NaiveBlackout, 2, 3));
    Cycle now = idleFor(d, 0, 2 + 3); // gate + full BET
    now = idleFor(d, now, 5);         // linger compensated
    ASSERT_EQ(d.state(), PgState::Compensated);
    d.requestWakeup(now);
    d.tick(now, false, 2, false, 1);
    EXPECT_EQ(d.state(), PgState::Wakeup);
    EXPECT_EQ(d.stats().criticalWakeups, 0u);
}

TEST(PgDomain, WakeupDelayCounted)
{
    PgDomain d(params(PgPolicy::Conventional, 2, 3, 4));
    Cycle now = idleFor(d, 0, 2 + 3);
    ASSERT_EQ(d.state(), PgState::Compensated);
    d.requestWakeup(now);
    now = idleFor(d, now, 1);
    ASSERT_EQ(d.state(), PgState::Wakeup);
    now = idleFor(d, now, 3);
    EXPECT_EQ(d.state(), PgState::Wakeup);
    idleFor(d, now, 1);
    EXPECT_EQ(d.state(), PgState::On);
    EXPECT_EQ(d.stats().wakeupCycles, 4u);
}

TEST(PgDomain, ZeroWakeupDelayGoesStraightOn)
{
    PgDomain d(params(PgPolicy::Conventional, 2, 3, 0));
    Cycle now = idleFor(d, 0, 2 + 3);
    d.requestWakeup(now);
    d.tick(now, false, 2, false, 1);
    EXPECT_EQ(d.state(), PgState::On);
}

TEST(PgDomain, ZeroBetGatesStraightToCompensated)
{
    PgDomain d(params(PgPolicy::Conventional, 2, 0));
    idleFor(d, 0, 2);
    EXPECT_EQ(d.state(), PgState::Compensated);
}

TEST(PgDomain, BetRemainingAccessor)
{
    PgDomain d(params(PgPolicy::NaiveBlackout, 2, 5));
    EXPECT_EQ(d.betRemaining(), 0u);
    Cycle now = idleFor(d, 0, 2);
    EXPECT_EQ(d.betRemaining(), 5u);
    idleFor(d, now, 2);
    EXPECT_EQ(d.betRemaining(), 3u);
}

TEST(PgDomain, CoordinatedImmediateGateWhenNothingWaits)
{
    PgDomain d(params(PgPolicy::CoordinatedBlackout, 5));
    d.tick(0, true, 5, true, 0);
    d.tick(1, false, 5, /*peer_gated=*/true, /*actv=*/0);
    EXPECT_EQ(d.state(), PgState::Uncompensated)
        << "second cluster gates on the first idle cycle";
    EXPECT_EQ(d.stats().coordImmediateGates, 1u);
}

TEST(PgDomain, CoordinatedVetoWhenWarpWaits)
{
    PgDomain d(params(PgPolicy::CoordinatedBlackout, 2));
    idleFor(d, 0, 20, 2, /*peer=*/true, /*actv=*/3);
    EXPECT_EQ(d.state(), PgState::On)
        << "one cluster stays powered while warps of the type wait";
    EXPECT_GT(d.stats().coordGateVetoes, 0u);
}

TEST(PgDomain, CoordinatedNormalPathWithoutPeer)
{
    PgDomain d(params(PgPolicy::CoordinatedBlackout, 2));
    idleFor(d, 0, 2, 2, /*peer=*/false, /*actv=*/0);
    EXPECT_EQ(d.state(), PgState::Uncompensated)
        << "without a gated peer the normal idle-detect applies";
    EXPECT_EQ(d.stats().coordImmediateGates, 0u);
}

TEST(PgDomain, NaiveIgnoresPeerState)
{
    PgDomain d(params(PgPolicy::NaiveBlackout, 3));
    d.tick(0, false, 3, true, 0);
    EXPECT_EQ(d.state(), PgState::On)
        << "naive blackout has no immediate-gate path";
}

TEST(PgDomain, IdleHistogramRecordsRuns)
{
    PgDomain d(params(PgPolicy::None));
    d.tick(0, true, 2, false, 1);
    idleFor(d, 1, 4);
    d.tick(5, true, 2, false, 1);
    idleFor(d, 6, 2);
    d.tick(8, true, 2, false, 1);
    const Histogram& h = d.idleHistogram();
    EXPECT_EQ(h.total(), 2u);
    EXPECT_EQ(h.bin(4), 1u);
    EXPECT_EQ(h.bin(2), 1u);
}

TEST(PgDomain, IdleRunSpansGatedCycles)
{
    PgDomain d(params(PgPolicy::Conventional, 2, 3, 1));
    d.tick(0, true, 2, false, 1);
    Cycle now = idleFor(d, 1, 2 + 3); // gate + compensate
    d.requestWakeup(now);
    now = idleFor(d, now, 1); // wakeup state entered
    now = idleFor(d, now, 1); // wakeup delay
    d.tick(now, true, 2, false, 1);
    const Histogram& h = d.idleHistogram();
    EXPECT_EQ(h.total(), 1u);
    EXPECT_EQ(h.bin(7), 1u)
        << "gated and waking cycles are part of one idle period";
}

TEST(PgDomain, FinalizeFlushesOpenRun)
{
    PgDomain d(params(PgPolicy::None));
    idleFor(d, 0, 5);
    EXPECT_EQ(d.idleHistogram().total(), 0u);
    d.finalize(5);
    EXPECT_EQ(d.idleHistogram().total(), 1u);
    EXPECT_EQ(d.idleHistogram().bin(5), 1u);
}

TEST(PgDomain, EpochCriticalCounterResets)
{
    PgDomain d(params(PgPolicy::NaiveBlackout, 2, 3));
    Cycle now = idleFor(d, 0, 2);
    for (int i = 0; i < 3; ++i) {
        d.requestWakeup(now);
        d.tick(now++, false, 2, false, 1);
    }
    EXPECT_EQ(d.epochCriticalWakeups(), 1u);
    d.resetEpochCriticalWakeups();
    EXPECT_EQ(d.epochCriticalWakeups(), 0u);
    EXPECT_EQ(d.stats().criticalWakeups, 1u)
        << "the lifetime counter is unaffected by epoch resets";
}

TEST(PgDomain, StateCycleAccountingIsExhaustive)
{
    // Every tick must land in exactly one bucket.
    PgDomain d(params(PgPolicy::Conventional, 2, 3, 2));
    Cycle now = 0;
    Rng rng(77);
    for (; now < 2000; ++now) {
        bool busy = d.canExecute() && rng.nextBool(0.4);
        if (rng.nextBool(0.2))
            d.requestWakeup(now);
        d.tick(now, busy, 2, false, 1);
    }
    const PgDomainStats& s = d.stats();
    EXPECT_EQ(s.busyCycles + s.idleOnCycles + s.uncompCycles +
                  s.compCycles + s.wakeupCycles,
              2000u);
}

TEST(PgDomainDeath, BusyWhileGatedPanics)
{
    PgDomain d(params(PgPolicy::Conventional, 1, 3));
    idleFor(d, 0, 1, /*idle_detect=*/1);
    ASSERT_TRUE(d.isGated());
    EXPECT_DEATH(d.tick(10, true, 1, false, 1), "busy while");
}

TEST(PgDomain, StateNames)
{
    EXPECT_STREQ(pgStateName(PgState::On), "on");
    EXPECT_STREQ(pgStateName(PgState::Uncompensated), "uncompensated");
    EXPECT_STREQ(pgStateName(PgState::Compensated), "compensated");
    EXPECT_STREQ(pgStateName(PgState::Wakeup), "wakeup");
}

TEST(PgDomain, PolicyNames)
{
    EXPECT_STREQ(pgPolicyName(PgPolicy::None), "none");
    EXPECT_STREQ(pgPolicyName(PgPolicy::Conventional), "conventional");
    EXPECT_STREQ(pgPolicyName(PgPolicy::NaiveBlackout), "naive-blackout");
    EXPECT_STREQ(pgPolicyName(PgPolicy::CoordinatedBlackout),
                 "coordinated-blackout");
}

/** Property: under blackout, a gated stretch lasts at least BET cycles
 *  regardless of when requests arrive. */
class BlackoutBet : public ::testing::TestWithParam<Cycle>
{
};

TEST_P(BlackoutBet, GatedAtLeastBreakEven)
{
    const Cycle bet = GetParam();
    PgParams p = params(PgPolicy::NaiveBlackout, 2, bet, 1);
    PgDomain d(p);
    Cycle now = 0;
    // Go idle until gated.
    while (!d.isGated())
        d.tick(now++, false, 2, false, 1);
    Cycle gated_at = now;
    // Hammer wakeup requests each cycle.
    while (d.isGated()) {
        d.requestWakeup(now);
        d.tick(now++, false, 2, false, 1);
    }
    EXPECT_GE(now - gated_at, bet);
    EXPECT_EQ(d.stats().uncompWakeups, 0u);
}

INSTANTIATE_TEST_SUITE_P(Bets, BlackoutBet,
                         ::testing::Values(1, 3, 9, 14, 19, 24));

} // namespace
} // namespace wg
