/**
 * @file
 * Tests for the experiment runner (caching, filtering, normalisation).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hh"

namespace wg {
namespace {

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.numSms = 1;
    return opts;
}

TEST(Experiment, CachesResults)
{
    ExperimentRunner runner(fastOpts());
    const SimResult& a = runner.run("NN", Technique::Baseline);
    const SimResult& b = runner.run("NN", Technique::Baseline);
    EXPECT_EQ(&a, &b) << "same key must return the cached object";
}

TEST(Experiment, DistinctKeysDistinctResults)
{
    ExperimentRunner runner(fastOpts());
    const SimResult& a = runner.run("NN", Technique::Baseline);
    const SimResult& b = runner.run("NN", Technique::ConvPG);
    EXPECT_NE(&a, &b);
    ExperimentOptions opts = fastOpts();
    opts.idleDetect = 9;
    const SimResult& c = runner.run("NN", Technique::ConvPG, opts);
    EXPECT_NE(&b, &c) << "different parameters are different keys";
}

TEST(Experiment, FpBenchmarksExcludeIntegerOnly)
{
    auto fp = ExperimentRunner::fpBenchmarks();
    EXPECT_EQ(std::find(fp.begin(), fp.end(), "lavaMD"), fp.end());
    EXPECT_NE(std::find(fp.begin(), fp.end(), "hotspot"), fp.end());
    EXPECT_NE(std::find(fp.begin(), fp.end(), "bfs"), fp.end())
        << "a sliver of FP activity keeps a benchmark in the FP charts";
    EXPECT_EQ(fp.size(), 17u);
}

TEST(Experiment, NormalizedRuntime)
{
    SimResult a, b;
    a.cycles = 110;
    b.cycles = 100;
    EXPECT_DOUBLE_EQ(normalizedRuntime(a, b), 1.1);
    EXPECT_DOUBLE_EQ(normalizedRuntime(b, b), 1.0);
    SimResult zero;
    EXPECT_DOUBLE_EQ(normalizedRuntime(a, zero), 0.0);
}

TEST(Experiment, ResultsCarryTheirConfig)
{
    ExperimentRunner runner(fastOpts());
    const SimResult& r = runner.run("NN", Technique::WarpedGates);
    EXPECT_EQ(r.config.sm.pg.policy, PgPolicy::CoordinatedBlackout);
    EXPECT_TRUE(r.config.sm.pg.adaptiveIdleDetect);
    EXPECT_EQ(r.config.numSms, 1u);
}

} // namespace
} // namespace wg
