/**
 * @file
 * Tests for the experiment runner (caching, filtering, normalisation).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/experiment.hh"

namespace wg {
namespace {

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.numSms = 1;
    return opts;
}

TEST(Experiment, CachesResults)
{
    ExperimentRunner runner(fastOpts());
    const SimResult& a = runner.run("NN", Technique::Baseline);
    const SimResult& b = runner.run("NN", Technique::Baseline);
    EXPECT_EQ(&a, &b) << "same key must return the cached object";
}

TEST(Experiment, DistinctKeysDistinctResults)
{
    ExperimentRunner runner(fastOpts());
    const SimResult& a = runner.run("NN", Technique::Baseline);
    const SimResult& b = runner.run("NN", Technique::ConvPG);
    EXPECT_NE(&a, &b);
    ExperimentOptions opts = fastOpts();
    opts.idleDetect = 9;
    const SimResult& c =
        runner.run("NN", Technique::ConvPG, std::optional(opts));
    EXPECT_NE(&b, &c) << "different parameters are different keys";
}

TEST(Experiment, FpBenchmarksExcludeIntegerOnly)
{
    auto fp = ExperimentRunner::fpBenchmarks();
    EXPECT_EQ(std::find(fp.begin(), fp.end(), "lavaMD"), fp.end());
    EXPECT_NE(std::find(fp.begin(), fp.end(), "hotspot"), fp.end());
    EXPECT_NE(std::find(fp.begin(), fp.end(), "bfs"), fp.end())
        << "a sliver of FP activity keeps a benchmark in the FP charts";
    EXPECT_EQ(fp.size(), 17u);
}

TEST(Experiment, RunAllSharesTheCacheWithRun)
{
    ExperimentRunner runner(fastOpts());
    const std::vector<std::string> benches = {"NN", "bfs"};
    const std::vector<Technique> techs = {Technique::Baseline,
                                          Technique::ConvPG};
    auto grid = runner.runAll({benches, techs});
    ASSERT_EQ(grid.size(), 4u);
    // bench-major order, and later run() calls hit the same entries
    for (std::size_t b = 0; b < benches.size(); ++b)
        for (std::size_t t = 0; t < techs.size(); ++t)
            EXPECT_EQ(grid[b * techs.size() + t],
                      &runner.run(benches[b], techs[t]));
}

TEST(Experiment, PrefetchWarmsTheCache)
{
    ExperimentRunner runner(fastOpts());
    runner.prefetch({{"NN"}, {Technique::Baseline}});
    const SimResult& a = runner.run("NN", Technique::Baseline);
    const SimResult& b = runner.run("NN", Technique::Baseline);
    EXPECT_EQ(&a, &b);
    EXPECT_GT(a.cycles, 0u);
}

TEST(Experiment, SerialRunnerMatchesPooledRunner)
{
    ExperimentRunner serial(fastOpts(), nullptr);
    ExperimentRunner pooled(fastOpts(), &ThreadPool::global());
    const SimResult& a = serial.run("NN", Technique::WarpedGates);
    const SimResult& b = pooled.run("NN", Technique::WarpedGates);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.aggregate.issuedTotal, b.aggregate.issuedTotal);
    EXPECT_EQ(a.intEnergy.total(), b.intEnergy.total());
}

TEST(Experiment, ConcurrentSameKeyIsSingleFlight)
{
    // Many threads racing on one key must all observe the same cached
    // object (the simulation ran once; everyone else waited).
    ExperimentRunner runner(fastOpts());
    constexpr int kThreads = 8;
    std::vector<const SimResult*> seen(kThreads, nullptr);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&runner, &seen, i] {
            seen[i] = &runner.run("bfs", Technique::ConvPG);
        });
    for (auto& t : threads)
        t.join();
    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(seen[i], seen[0]);
}

TEST(Experiment, ConcurrentDistinctKeysAllComplete)
{
    ExperimentRunner runner(fastOpts());
    auto grid = runner.runAll(
        {{"NN", "bfs", "hotspot"},
         {Technique::Baseline, Technique::ConvPG,
          Technique::WarpedGates}});
    ASSERT_EQ(grid.size(), 9u);
    for (const SimResult* r : grid) {
        ASSERT_NE(r, nullptr);
        EXPECT_GT(r->cycles, 0u);
    }
}

TEST(Experiment, NormalizedRuntime)
{
    SimResult a, b;
    a.cycles = 110;
    b.cycles = 100;
    EXPECT_DOUBLE_EQ(normalizedRuntime(a, b), 1.1);
    EXPECT_DOUBLE_EQ(normalizedRuntime(b, b), 1.0);
    SimResult zero;
    EXPECT_DOUBLE_EQ(normalizedRuntime(a, zero), 0.0);
}

TEST(Experiment, ResultsCarryTheirConfig)
{
    ExperimentRunner runner(fastOpts());
    const SimResult& r = runner.run("NN", Technique::WarpedGates);
    EXPECT_EQ(r.config.sm.pg.policy, PgPolicy::CoordinatedBlackout);
    EXPECT_TRUE(r.config.sm.pg.adaptiveIdleDetect);
    EXPECT_EQ(r.config.numSms, 1u);
}

TEST(Experiment, SweepSpecOptionsSelectDistinctKeys)
{
    // A sweep carrying explicit options must land in different cache
    // entries than the runner-default sweep, and the same entries a
    // later run() with those options reads.
    ExperimentRunner runner(fastOpts());
    ExperimentOptions opts = fastOpts();
    opts.breakEven = 20;
    auto with = runner.runAll({{"NN"}, {Technique::ConvPG}, opts});
    auto without = runner.runAll({{"NN"}, {Technique::ConvPG}});
    ASSERT_EQ(with.size(), 1u);
    ASSERT_EQ(without.size(), 1u);
    EXPECT_NE(with[0], without[0]);
    EXPECT_EQ(with[0],
              &runner.run("NN", Technique::ConvPG, std::optional(opts)));
    EXPECT_EQ(without[0], &runner.run("NN", Technique::ConvPG));
}

ExperimentOptions
seedOpts(std::uint64_t seed)
{
    ExperimentOptions opts = fastOpts();
    opts.seed = seed;
    return opts;
}

TEST(Experiment, LruEvictionRespectsEntryCap)
{
    ExperimentRunner runner(fastOpts(), nullptr);
    CacheLimits limits;
    limits.maxEntries = 2;
    runner.setCacheLimits(limits);

    auto a = runner.runShared("NN", Technique::Baseline, seedOpts(1));
    auto b = runner.runShared("NN", Technique::Baseline, seedOpts(2));
    CacheStats stats = runner.cacheStats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_GT(stats.bytes, 0u);

    // Touch seed-1, making seed-2 the LRU victim for the next insert.
    runner.runShared("NN", Technique::Baseline, seedOpts(1));
    EXPECT_EQ(runner.cacheStats().hits, 1u);
    auto c = runner.runShared("NN", Technique::Baseline, seedOpts(3));
    stats = runner.cacheStats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_GT(stats.evictedBytes, 0u);

    // Seed-2 really is gone (recomputed, not served from cache)...
    runner.runShared("NN", Technique::Baseline, seedOpts(2));
    stats = runner.cacheStats();
    EXPECT_EQ(stats.misses, 4u);
    // ...and that insert evicted seed-1, the LRU of {1, 3}; the MRU
    // seed-3 entry survived and still serves hits.
    runner.runShared("NN", Technique::Baseline, seedOpts(3));
    stats = runner.cacheStats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.entries, 2u);
}

TEST(Experiment, ByteCapTriggersEviction)
{
    ExperimentRunner runner(fastOpts(), nullptr);
    CacheLimits limits;
    limits.maxBytes = 1; // every real result exceeds this
    runner.setCacheLimits(limits);
    auto a = runner.runShared("NN", Technique::Baseline, seedOpts(1));
    ASSERT_NE(a, nullptr);
    EXPECT_GT(a->cycles, 0u) << "evicted result stays readable";
    CacheStats stats = runner.cacheStats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytes, 0u);
    EXPECT_GT(stats.evictedBytes, 0u);
}

TEST(Experiment, PinnedRunReferencesAreNeverEvicted)
{
    // run() hands out plain references, so its entries are pinned for
    // the runner's lifetime; eviction pressure lands on runShared()
    // entries instead and the old reference contract holds.
    ExperimentRunner runner(fastOpts(), nullptr);
    const SimResult& pinned =
        runner.run("NN", Technique::Baseline, seedOpts(1));
    CacheLimits limits;
    limits.maxEntries = 1;
    runner.setCacheLimits(limits);

    auto b = runner.runShared("NN", Technique::Baseline, seedOpts(2));
    auto c = runner.runShared("NN", Technique::Baseline, seedOpts(3));
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_GT(b->cycles, 0u);
    CacheStats stats = runner.cacheStats();
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 1u) << "only the pinned entry remains";

    const SimResult& again =
        runner.run("NN", Technique::Baseline, seedOpts(1));
    EXPECT_EQ(&again, &pinned) << "pinned entry survived the pressure";
    EXPECT_EQ(runner.cacheStats().hits, 1u);
}

TEST(Experiment, SharedResultsOutliveEviction)
{
    ExperimentRunner runner(fastOpts(), nullptr);
    CacheLimits limits;
    limits.maxEntries = 1;
    runner.setCacheLimits(limits);

    auto a = runner.runShared("NN", Technique::Baseline, seedOpts(1));
    ASSERT_NE(a, nullptr);
    const std::uint64_t cycles = a->cycles;
    auto b = runner.runShared("NN", Technique::Baseline, seedOpts(2));
    EXPECT_EQ(runner.cacheStats().evictions, 1u);
    EXPECT_EQ(a->cycles, cycles) << "shared owner keeps data alive";

    // A fresh request recomputes into a new object; determinism makes
    // it agree with the evicted one to the cycle.
    auto a2 = runner.runShared("NN", Technique::Baseline, seedOpts(1));
    EXPECT_NE(a.get(), a2.get());
    EXPECT_EQ(a2->cycles, cycles);
    EXPECT_EQ(runner.cacheStats().misses, 3u);
}

TEST(Experiment, EvictionNeverRacesInFlightCompute)
{
    // A one-entry cache under 8 threads hammering 4 keys: eviction
    // must skip in-flight and waited-on entries, so every caller gets
    // a valid result (ASan/TSan make this test bite).
    ExperimentRunner runner(fastOpts(), &ThreadPool::global());
    CacheLimits limits;
    limits.maxEntries = 1;
    runner.setCacheLimits(limits);

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const SimResult>> seen(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&runner, &seen, i] {
            seen[i] = runner.runShared("NN", Technique::Baseline,
                                       seedOpts(1 + i % 4));
        });
    for (auto& t : threads)
        t.join();

    for (int i = 0; i < kThreads; ++i) {
        ASSERT_NE(seen[i], nullptr) << "thread " << i;
        EXPECT_GT(seen[i]->cycles, 0u);
        // Same key, same deterministic result — whether the second
        // caller piggybacked on the flight or recomputed post-eviction.
        EXPECT_EQ(seen[i]->cycles, seen[i % 4]->cycles);
    }
    CacheStats stats = runner.cacheStats();
    EXPECT_EQ(stats.inFlight, 0u);
    EXPECT_GE(stats.misses, 4u);
    EXPECT_EQ(stats.hits + stats.misses, std::uint64_t(kThreads));
    EXPECT_LE(stats.entries, 4u);
}

TEST(Experiment, PlainOptionsConvertToSweepApi)
{
    // With the deprecated pre-SweepSpec wrappers gone, passing a bare
    // ExperimentOptions must keep compiling via the implicit
    // std::optional conversion and hit the same cache slots.
    ExperimentRunner runner(fastOpts());
    ExperimentOptions opts = fastOpts();
    opts.idleDetect = 7;
    auto with = runner.runAll({{"NN"}, {Technique::ConvPG}, opts});
    ASSERT_EQ(with.size(), 1u);
    EXPECT_EQ(with[0], &runner.run("NN", Technique::ConvPG, opts));
    EXPECT_NE(with[0], &runner.run("NN", Technique::ConvPG));
}

} // namespace
} // namespace wg
