/**
 * @file
 * Tests for the gating-invariant checker: hand-seeded violations must
 * be caught with the right cycle and unit, hand-built clean streams
 * must pass, and every real preset's trace must replay violation-free.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/warped_gates.hh"
#include "sim/gpu.hh"
#include "trace/check.hh"

namespace wg {
namespace {

using trace::Event;
using trace::EventKind;
using trace::GateReason;
using trace::InvariantChecker;
using trace::WakeReason;

constexpr std::uint8_t kInt = 0;
constexpr std::uint8_t kFp = 1;

/** Paper-default blackout metadata (§7.1 parameters). */
trace::Meta
blackoutMeta(const char* policy = "naive-blackout")
{
    trace::Meta m;
    m.policy = policy;
    m.scheduler = "gates";
    m.numSms = 1;
    m.idleDetect = 5;
    m.breakEven = 14;
    m.wakeupDelay = 3;
    m.adaptive = true;
    m.idleDetectMin = 5;
    m.idleDetectMax = 10;
    m.epochLength = 1000;
    m.criticalThreshold = 5;
    m.decrementEpochs = 4;
    return m;
}

Event
ev(Cycle cycle, EventKind kind, std::uint8_t unit, std::uint8_t cluster,
   std::uint8_t arg = 0, std::uint32_t value = 0)
{
    Event e;
    e.cycle = cycle;
    e.kind = kind;
    e.unit = unit;
    e.cluster = cluster;
    e.arg = arg;
    e.value = value;
    return e;
}

TEST(Checker, CleanGateCyclePasses)
{
    InvariantChecker checker(blackoutMeta());
    checker.feed(0, ev(90, EventKind::UnitIdle, kInt, 0));
    checker.feed(0, ev(100, EventKind::Gate, kInt, 0,
                       static_cast<std::uint8_t>(GateReason::IdleDetect)));
    checker.feed(0, ev(114, EventKind::BetExpire, kInt, 0, 0, 14));
    checker.feed(0, ev(130, EventKind::Wakeup, kInt, 0,
                       static_cast<std::uint8_t>(WakeReason::Demand)));
    checker.feed(0, ev(133, EventKind::WakeupDone, kInt, 0));
    checker.feed(0, ev(134, EventKind::Issue, kInt, 0, 0, 7));
    EXPECT_TRUE(checker.violations().empty());
    EXPECT_EQ(checker.eventCount(), 6u);
    EXPECT_EQ(checker.eventCount(EventKind::Gate), 1u);
}

TEST(Checker, SeededBetViolationReportsCycleAndUnit)
{
    // The deliberately-broken stream: gate at 100, wake at 105 — only
    // 5 cycles held against a break-even of 14.
    InvariantChecker checker(blackoutMeta());
    checker.feed(2, ev(100, EventKind::Gate, kInt, 1,
                       static_cast<std::uint8_t>(GateReason::IdleDetect)));
    checker.feed(2, ev(105, EventKind::Wakeup, kInt, 1,
                       static_cast<std::uint8_t>(WakeReason::Demand)));

    ASSERT_EQ(checker.violations().size(), 1u);
    const trace::Violation& v = checker.violations()[0];
    EXPECT_EQ(v.sm, 2u);
    EXPECT_EQ(v.cycle, 105u);
    EXPECT_EQ(v.unit, "INT1");
    EXPECT_NE(v.message.find("blackout violated"), std::string::npos);
    // The report must let a human find the offence: cycle and unit.
    EXPECT_NE(v.toString().find("cycle 105"), std::string::npos);
    EXPECT_NE(v.toString().find("INT1"), std::string::npos);
}

TEST(Checker, GatedUnitMustNotIssue)
{
    InvariantChecker checker(blackoutMeta());
    checker.feed(0, ev(100, EventKind::Gate, kFp, 0,
                       static_cast<std::uint8_t>(GateReason::IdleDetect)));
    checker.feed(0, ev(101, EventKind::Issue, kFp, 0, 0, 9));
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].unit, "FP0");
    EXPECT_NE(checker.violations()[0].message.find("issued warp 9"),
              std::string::npos);
}

TEST(Checker, IssueDuringWakeupDelayIsViolation)
{
    InvariantChecker checker(blackoutMeta());
    checker.feed(0, ev(100, EventKind::Gate, kInt, 0,
                       static_cast<std::uint8_t>(GateReason::IdleDetect)));
    checker.feed(0, ev(114, EventKind::Wakeup, kInt, 0,
                       static_cast<std::uint8_t>(WakeReason::Critical)));
    // Still waking (delay 3): issuing now is illegal...
    checker.feed(0, ev(115, EventKind::Issue, kInt, 0, 0, 4));
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_NE(checker.violations()[0].message.find("waking"),
              std::string::npos);
    // ...but fine once the wakeup completes.
    checker.feed(0, ev(117, EventKind::WakeupDone, kInt, 0));
    checker.feed(0, ev(118, EventKind::Issue, kInt, 0, 0, 4));
    EXPECT_EQ(checker.violations().size(), 1u);
}

TEST(Checker, UncompensatedWakeIllegalUnderBlackout)
{
    InvariantChecker checker(blackoutMeta());
    checker.feed(0, ev(100, EventKind::Gate, kInt, 0,
                       static_cast<std::uint8_t>(GateReason::IdleDetect)));
    checker.feed(0, ev(120, EventKind::Wakeup, kInt, 0,
                       static_cast<std::uint8_t>(
                           WakeReason::Uncompensated)));
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_NE(checker.violations()[0].message.find("uncompensated"),
              std::string::npos);
}

TEST(Checker, ConventionalPolicyAllowsEarlyWake)
{
    // Under conventional gating an early (uncompensated) wake is the
    // modelled energy-loss case, not an invariant violation.
    trace::Meta meta = blackoutMeta("conventional");
    InvariantChecker checker(meta);
    checker.feed(0, ev(100, EventKind::Gate, kInt, 0,
                       static_cast<std::uint8_t>(GateReason::IdleDetect)));
    checker.feed(0, ev(105, EventKind::Wakeup, kInt, 0,
                       static_cast<std::uint8_t>(
                           WakeReason::Uncompensated)));
    EXPECT_TRUE(checker.violations().empty());
}

TEST(Checker, BetExpiryAtWrongCycleIsViolation)
{
    InvariantChecker checker(blackoutMeta());
    checker.feed(0, ev(100, EventKind::Gate, kInt, 0,
                       static_cast<std::uint8_t>(GateReason::IdleDetect)));
    checker.feed(0, ev(113, EventKind::BetExpire, kInt, 0, 0, 13));
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_NE(checker.violations()[0].message.find("expected 114"),
              std::string::npos);
}

TEST(Checker, CoordDrainGateWithWaitingWarpsIsViolation)
{
    InvariantChecker checker(blackoutMeta("coordinated-blackout"));
    checker.feed(0, ev(100, EventKind::Gate, kInt, 0,
                       static_cast<std::uint8_t>(GateReason::CoordDrain),
                       3));
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_NE(checker.violations()[0].message.find("ACTV=3"),
              std::string::npos);
}

TEST(Checker, SecondClusterGateWithActvIsViolation)
{
    InvariantChecker checker(blackoutMeta("coordinated-blackout"));
    checker.feed(0, ev(100, EventKind::Gate, kInt, 0,
                       static_cast<std::uint8_t>(GateReason::IdleDetect),
                       0));
    // Peer cluster gated strictly later while 2 INT warps wait: the
    // coordinated rule says the type must keep one cluster awake.
    checker.feed(0, ev(150, EventKind::Gate, kInt, 1,
                       static_cast<std::uint8_t>(GateReason::IdleDetect),
                       2));
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].unit, "INT1");
    EXPECT_NE(checker.violations()[0].message.find("second INT"),
              std::string::npos);
}

TEST(Checker, SameCycleClusterGatesAreLegal)
{
    // The controller ticks both clusters against one pre-tick snapshot,
    // so two gates of one type can land on the same cycle legally.
    InvariantChecker checker(blackoutMeta("coordinated-blackout"));
    checker.feed(0, ev(200, EventKind::Gate, kFp, 0,
                       static_cast<std::uint8_t>(GateReason::IdleDetect),
                       0));
    checker.feed(0, ev(200, EventKind::Gate, kFp, 1,
                       static_cast<std::uint8_t>(GateReason::IdleDetect),
                       2));
    EXPECT_TRUE(checker.violations().empty());
}

TEST(Checker, AdaptiveWindowOutOfBoundsFlagged)
{
    InvariantChecker checker(blackoutMeta());
    checker.feed(0, ev(1000, EventKind::EpochUpdate, kInt,
                       trace::kNoCluster, 0, 11));
    ASSERT_GE(checker.violations().size(), 1u);
    EXPECT_NE(checker.violations()[0].message.find("outside [5, 10]"),
              std::string::npos);
}

TEST(Checker, AdaptiveScheduleReplicaTracksFastUpSlowDown)
{
    InvariantChecker checker(blackoutMeta());
    // Hot epoch (6 criticals > threshold 5): window 5 -> 6 immediately.
    checker.feed(0, ev(1000, EventKind::EpochUpdate, kInt,
                       trace::kNoCluster, 6, 6));
    // Three quiet epochs: window must hold at 6 (decrement needs 4).
    for (int i = 1; i <= 3; ++i)
        checker.feed(0, ev(1000 + 1000 * i, EventKind::EpochUpdate, kInt,
                           trace::kNoCluster, 0, 6));
    // Fourth consecutive quiet epoch: slow decrease back to 5.
    checker.feed(0, ev(5000, EventKind::EpochUpdate, kInt,
                       trace::kNoCluster, 0, 5));
    EXPECT_TRUE(checker.violations().empty());

    // A window that jumps against the schedule is flagged.
    checker.feed(0, ev(6000, EventKind::EpochUpdate, kInt,
                       trace::kNoCluster, 0, 8));
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_NE(checker.violations()[0].message.find("diverged"),
              std::string::npos);
}

TEST(Checker, TruncatedSmIsSuppressedWithWarning)
{
    InvariantChecker checker(blackoutMeta());
    checker.noteTruncated(0, 42);
    // A stream that would otherwise trip two violations.
    checker.feed(0, ev(100, EventKind::Gate, kInt, 0,
                       static_cast<std::uint8_t>(GateReason::IdleDetect)));
    checker.feed(0, ev(101, EventKind::Issue, kInt, 0, 0, 1));
    checker.feed(0, ev(105, EventKind::Wakeup, kInt, 0,
                       static_cast<std::uint8_t>(WakeReason::Demand)));
    EXPECT_TRUE(checker.violations().empty());
    ASSERT_EQ(checker.warnings().size(), 1u);
    EXPECT_NE(checker.warnings()[0].find("42"), std::string::npos);
    // Other SMs keep full checking.
    checker.feed(1, ev(100, EventKind::Gate, kInt, 0,
                       static_cast<std::uint8_t>(GateReason::IdleDetect)));
    checker.feed(1, ev(101, EventKind::Issue, kInt, 0, 0, 1));
    EXPECT_EQ(checker.violations().size(), 1u);
}

// ---- whole-preset replay: every technique's real trace is clean ----

BenchmarkProfile
smallProfile()
{
    BenchmarkProfile p = findBenchmark("hotspot");
    p.kernelLength = 400;
    p.residentWarps = 16;
    return p;
}

std::vector<trace::Violation>
runAndCheck(GpuConfig config)
{
    Gpu gpu(config);
    trace::Collector collector;
    gpu.run(smallProfile(), nullptr, &collector);
    EXPECT_GT(collector.totalEvents(), 0u);
    return trace::checkCollector(collector);
}

TEST(CheckerPresets, AllTechniqueTracesReplayClean)
{
    ExperimentOptions opts;
    opts.numSms = 2;
    for (Technique t : {Technique::Baseline, Technique::ConvPG,
                        Technique::Gates, Technique::NaiveBlackout,
                        Technique::CoordinatedBlackout,
                        Technique::WarpedGates}) {
        auto violations = runAndCheck(makeConfig(t, opts));
        EXPECT_TRUE(violations.empty())
            << techniqueName(t) << ": " << violations.size()
            << " violations, first: " << violations[0].toString();
    }
}

TEST(CheckerPresets, GtoSchedulerTraceReplaysClean)
{
    ExperimentOptions opts;
    opts.numSms = 2;
    GpuConfig config = makeConfig(Technique::WarpedGates, opts);
    config.sm.scheduler = SchedulerPolicy::Gto;
    auto violations = runAndCheck(config);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violations under GTO, first: "
        << violations[0].toString();
}

} // namespace
} // namespace wg
