/**
 * @file
 * Wire-format tests: golden-pinned document shapes, lossless
 * round-trips, schema-version rejection, and a malformed-input corpus
 * that must produce clean errors (never aborts).
 *
 * Golden files live in tests/golden/. To regenerate after an
 * intentional schema change (bump wire::kSchemaVersion!):
 *   WG_REGEN_GOLDEN=1 ./wire_test
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "metrics/registry.hh"
#include "report/export.hh"
#include "serve/json.hh"
#include "serve/snapshot.hh"
#include "serve/wire.hh"

namespace {

using namespace wg;
using serve::Json;

std::string
goldenPath(const std::string& name)
{
    return std::string(WG_GOLDEN_DIR) + "/" + name;
}

/** Read the golden, or (re)write it when WG_REGEN_GOLDEN is set. */
std::string
golden(const std::string& name, const std::string& actual)
{
    const std::string path = goldenPath(name);
    if (std::getenv("WG_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        out << actual;
        return actual;
    }
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing golden file " << path
                           << " (run with WG_REGEN_GOLDEN=1)";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

ExperimentOptions
distinctiveOptions()
{
    ExperimentOptions opts;
    opts.numSms = 2;
    opts.seed = 7;
    opts.idleDetect = 9;
    opts.breakEven = 21;
    opts.wakeupDelay = 4;
    return opts;
}

/** One shared tiny simulation (serial; bit-identical to pooled). */
const SimResult&
tinyResult()
{
    static ExperimentRunner runner(distinctiveOptions(), nullptr);
    return runner.run("hotspot", Technique::WarpedGates);
}

TEST(WireGolden, OptionsDocIsPinned)
{
    Json doc = serve::wire::optionsDoc(distinctiveOptions());
    EXPECT_EQ(doc.dump(), golden("wire_options_v2.json", doc.dump()));
}

TEST(WireGolden, SweepDocIsPinned)
{
    SweepSpec spec({"hotspot", "sgemm"},
                   {Technique::Baseline, Technique::WarpedGates},
                   distinctiveOptions());
    Json doc = serve::wire::sweepDoc(spec);
    EXPECT_EQ(doc.dump(), golden("wire_sweep_v2.json", doc.dump()));
}

TEST(WireGolden, ResultDocIsPinned)
{
    Json doc = serve::wire::resultDoc(
        "hotspot", Technique::WarpedGates, distinctiveOptions(),
        tinyResult());
    EXPECT_EQ(doc.dump(),
              golden("wire_result_hotspot_v2.json", doc.dump()));
}

TEST(WireGolden, JobSnapshotDocIsPinned)
{
    SweepSpec spec({"hotspot"}, {Technique::WarpedGates},
                   distinctiveOptions());
    std::vector<Json> cells;
    cells.push_back(serve::wire::resultDoc("hotspot",
                                           Technique::WarpedGates,
                                           distinctiveOptions(),
                                           tinyResult()));
    Json doc = serve::wire::jobSnapshotDoc("j1", spec, cells);
    EXPECT_EQ(doc.dump(),
              golden("wire_job_snapshot_v2.json", doc.dump()));
}

/**
 * The committed v1 goldens stay as back-compat fixtures: a build that
 * emits schema 2 must keep parsing every version-1 document.
 */
TEST(WireBackCompat, V1DocumentsStillParse)
{
    struct Case
    {
        const char* file;
        const char* type;
    };
    const Case kCases[] = {
        {"wire_options_v1.json", "options"},
        {"wire_sweep_v1.json", "sweep"},
        {"wire_result_hotspot_v1.json", "result"},
    };
    for (const Case& c : kCases) {
        std::ifstream in(goldenPath(c.file));
        ASSERT_TRUE(in.good()) << c.file;
        std::ostringstream os;
        os << in.rdbuf();
        Json doc;
        std::string error;
        ASSERT_TRUE(Json::parse(os.str(), doc, error))
            << c.file << ": " << error;
        EXPECT_EQ(doc.find("wire")->asU64(), 1u) << c.file;
        if (std::string(c.type) == "options") {
            ExperimentOptions out;
            EXPECT_TRUE(serve::wire::parseOptionsDoc(doc, out, error))
                << error;
            EXPECT_EQ(out.seed, distinctiveOptions().seed);
        } else if (std::string(c.type) == "sweep") {
            SweepSpec out({}, {});
            EXPECT_TRUE(serve::wire::parseSweepDoc(doc, out, error))
                << error;
            EXPECT_EQ(out.benches.size(), 2u);
        } else {
            serve::wire::ResultCell cell;
            EXPECT_TRUE(serve::wire::parseResultDoc(doc, cell, error))
                << error;
            StatSet original = metrics::toStatSet(tinyResult());
            StatSet rebuilt = metrics::toStatSet(cell.result);
            EXPECT_EQ(original.entries(), rebuilt.entries());
        }
    }
}

TEST(WireRoundTrip, JobSnapshotSurvivesExactly)
{
    SweepSpec spec({"hotspot"}, {Technique::WarpedGates},
                   distinctiveOptions());
    std::vector<Json> cells;
    cells.push_back(serve::wire::resultDoc("hotspot",
                                           Technique::WarpedGates,
                                           distinctiveOptions(),
                                           tinyResult()));
    Json doc = serve::wire::jobSnapshotDoc("j1", spec, cells);
    const std::string bytes = doc.dump();

    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(bytes, reparsed, error)) << error;
    std::string id;
    SweepSpec back({}, {});
    std::vector<serve::wire::ResultCell> parsed;
    ASSERT_TRUE(serve::wire::parseJobSnapshotDoc(reparsed, id, back,
                                                 parsed, error))
        << error;
    EXPECT_EQ(id, "j1");
    EXPECT_EQ(back.benches, spec.benches);
    EXPECT_EQ(back.techniques, spec.techniques);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].bench, "hotspot");
    StatSet original = metrics::toStatSet(tinyResult());
    StatSet rebuilt = metrics::toStatSet(parsed[0].result);
    EXPECT_EQ(original.entries(), rebuilt.entries());

    // Re-serializing the reparsed snapshot reproduces the bytes.
    std::vector<Json> cellsAgain;
    for (const Json& cell : reparsed.find("cells")->items())
        cellsAgain.push_back(Json(cell));
    EXPECT_EQ(
        serve::wire::jobSnapshotDoc(id, back, cellsAgain).dump(),
        bytes);
}

TEST(WireRoundTrip, OptionsSurviveExactly)
{
    ExperimentOptions opts = distinctiveOptions();
    Json doc = serve::wire::optionsDoc(opts);
    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(doc.dump(), reparsed, error)) << error;
    ExperimentOptions back;
    ASSERT_TRUE(serve::wire::parseOptionsDoc(reparsed, back, error))
        << error;
    EXPECT_EQ(back.numSms, opts.numSms);
    EXPECT_EQ(back.seed, opts.seed);
    EXPECT_EQ(back.idleDetect, opts.idleDetect);
    EXPECT_EQ(back.breakEven, opts.breakEven);
    EXPECT_EQ(back.wakeupDelay, opts.wakeupDelay);
    // Serializing the reparsed document reproduces the bytes.
    EXPECT_EQ(reparsed.dump(), doc.dump());
}

TEST(WireRoundTrip, SweepSurvivesExactly)
{
    SweepSpec spec({"hotspot", "bfs"},
                   {Technique::Gates, Technique::ConvPG},
                   distinctiveOptions());
    Json doc = serve::wire::sweepDoc(spec);
    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(doc.dump(), reparsed, error)) << error;
    SweepSpec back({}, {});
    ASSERT_TRUE(serve::wire::parseSweepDoc(reparsed, back, error))
        << error;
    EXPECT_EQ(back.benches, spec.benches);
    EXPECT_EQ(back.techniques, spec.techniques);
    ASSERT_TRUE(back.options.has_value());
    EXPECT_EQ(back.options->seed, spec.options->seed);
    EXPECT_EQ(serve::wire::sweepDoc(back).dump(), doc.dump());
}

TEST(WireRoundTrip, SweepWithoutOptionsOmitsThem)
{
    SweepSpec spec({"hotspot"}, {Technique::Baseline});
    Json doc = serve::wire::sweepDoc(spec);
    EXPECT_EQ(doc.dump().find("options"), std::string::npos);
    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(doc.dump(), reparsed, error)) << error;
    SweepSpec back({}, {});
    ASSERT_TRUE(serve::wire::parseSweepDoc(reparsed, back, error));
    EXPECT_FALSE(back.options.has_value());
}

TEST(WireRoundTrip, ResultSurvivesToTheLastBit)
{
    const SimResult& r = tinyResult();
    Json doc = serve::wire::resultDoc(
        "hotspot", Technique::WarpedGates, distinctiveOptions(), r);
    const std::string bytes = doc.dump();

    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(bytes, reparsed, error)) << error;
    serve::wire::ResultCell cell;
    ASSERT_TRUE(serve::wire::parseResultDoc(reparsed, cell, error))
        << error;
    EXPECT_EQ(cell.bench, "hotspot");
    EXPECT_EQ(cell.technique, Technique::WarpedGates);

    // The strongest equality the project has: the full metric registry
    // of the reconstructed result matches the original exactly (the
    // same check `wgreport --tol 0` performs on exported files).
    StatSet original = metrics::toStatSet(r);
    StatSet rebuilt = metrics::toStatSet(cell.result);
    EXPECT_EQ(original.entries(), rebuilt.entries());

    // Derived exports are byte-identical too.
    EXPECT_EQ(toCsvRow("hotspot", cell.result), toCsvRow("hotspot", r));
    EXPECT_EQ(toJson("hotspot", cell.result), toJson("hotspot", r));

    // And re-serializing reproduces the wire bytes.
    Json again = serve::wire::resultDoc(
        cell.bench, cell.technique, cell.options, cell.result);
    EXPECT_EQ(again.dump(), bytes);
}

TEST(WireVersion, MismatchIsRejectedCleanly)
{
    ExperimentOptions opts;
    Json doc = serve::wire::optionsDoc(opts);
    doc.set("wire", Json::number(std::uint64_t(3)));
    std::string error;
    ExperimentOptions out;
    EXPECT_FALSE(serve::wire::parseOptionsDoc(doc, out, error));
    EXPECT_NE(error.find("unsupported schema version 3"),
              std::string::npos)
        << error;
}

TEST(WireVersion, WrongTypeIsRejected)
{
    Json doc = serve::wire::optionsDoc(ExperimentOptions{});
    std::string error;
    SweepSpec out({}, {});
    EXPECT_FALSE(serve::wire::parseSweepDoc(doc, out, error));
    EXPECT_NE(error.find("expected 'sweep'"), std::string::npos)
        << error;
}

/** Raw text that must fail Json::parse with a clean error. */
TEST(WireMalformed, ParserRejectsBadText)
{
    const char* kBad[] = {
        "",
        "{",
        "{\"a\":",
        "{\"a\":1,}",
        "[1,2",
        "\"unterminated",
        "{\"a\" 1}",
        "nul",
        "truely",
        "01",
        "1.",
        ".5",
        "+1",
        "0x10",
        "1e",
        "NaN",
        "Infinity",
        "{\"a\":1}{\"b\":2}",
        "{\"dup\":1,\"dup\":2}",
        "\"bad escape \\q\"",
        "\"half surrogate \\ud800\"",
        "\xff\xfe",
    };
    for (const char* text : kBad) {
        Json out;
        std::string error;
        EXPECT_FALSE(Json::parse(text, out, error))
            << "accepted: " << text;
        EXPECT_FALSE(error.empty());
    }
}

TEST(WireMalformed, LimitsAreEnforced)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    Json out;
    std::string error;
    EXPECT_FALSE(Json::parse(deep, out, error));
    EXPECT_NE(error.find("depth"), std::string::npos) << error;

    std::string big_string =
        "\"" + std::string((1 << 16) + 1, 'x') + "\"";
    EXPECT_FALSE(Json::parse(big_string, out, error));

    std::ostringstream many;
    many << "[";
    for (int i = 0; i <= (1 << 16); ++i)
        many << (i != 0 ? ",1" : "1");
    many << "]";
    EXPECT_FALSE(Json::parse(many.str(), out, error));
}

/** Structurally valid JSON that must fail document parsing. */
TEST(WireMalformed, DocumentsRejectWrongShapes)
{
    struct Case
    {
        const char* text;
        const char* needle; ///< must appear in the error
    };
    const Case kCases[] = {
        {"[]", "expected an object"},
        {"{\"type\":\"sweep\"}", "missing schema version"},
        {"{\"wire\":1}", "missing member 'type'"},
        {"{\"wire\":1,\"type\":\"sweep\"}", "missing member 'sweep'"},
        {"{\"wire\":1,\"type\":\"sweep\",\"sweep\":{\"benches\":[],"
         "\"techniques\":[\"Baseline\"]}}",
         "must not be empty"},
        {"{\"wire\":1,\"type\":\"sweep\",\"sweep\":{\"benches\":"
         "[\"hotspot\"],\"techniques\":[\"NoSuchThing\"]}}",
         "unknown technique"},
        {"{\"wire\":1,\"type\":\"sweep\",\"sweep\":{\"benches\":[42],"
         "\"techniques\":[\"Baseline\"]}}",
         "expected a string"},
        {"{\"wire\":1,\"type\":\"sweep\",\"sweep\":{\"benches\":"
         "[\"hotspot\"],\"techniques\":[\"Baseline\"],\"options\":"
         "{\"numSms\":0,\"seed\":1,\"idleDetect\":5,\"breakEven\":14,"
         "\"wakeupDelay\":3}}}",
         "must be in [1, 4096]"},
        {"{\"wire\":1,\"type\":\"sweep\",\"sweep\":{\"benches\":"
         "[\"hotspot\"],\"techniques\":[\"Baseline\"],\"options\":"
         "{\"numSms\":-3,\"seed\":1,\"idleDetect\":5,\"breakEven\":14,"
         "\"wakeupDelay\":3}}}",
         "non-negative"},
    };
    for (const Case& c : kCases) {
        Json doc;
        std::string error;
        ASSERT_TRUE(Json::parse(c.text, doc, error)) << c.text;
        SweepSpec out({}, {});
        EXPECT_FALSE(serve::wire::parseSweepDoc(doc, out, error))
            << "accepted: " << c.text;
        EXPECT_NE(error.find(c.needle), std::string::npos)
            << "error was: " << error << "\nfor: " << c.text;
    }
}

TEST(WireMalformed, ResultDocRejectsCorruption)
{
    Json doc = serve::wire::resultDoc(
        "hotspot", Technique::WarpedGates, distinctiveOptions(),
        tinyResult());
    const std::string bytes = doc.dump();

    // Truncations at many byte offsets: parse or doc-check must fail
    // cleanly (this also covers mid-token and mid-string cuts).
    for (std::size_t cut = 1; cut + 1 < bytes.size();
         cut += bytes.size() / 97 + 1) {
        Json out;
        std::string error;
        if (Json::parse(bytes.substr(0, cut), out, error)) {
            serve::wire::ResultCell cell;
            EXPECT_FALSE(
                serve::wire::parseResultDoc(out, cell, error));
        }
        EXPECT_FALSE(error.empty());
    }

    // Field-level corruption.
    auto corrupt = [&](const std::string& from, const std::string& to,
                       const char* needle) {
        std::string mutated = bytes;
        std::size_t at = mutated.find(from);
        ASSERT_NE(at, std::string::npos) << from;
        mutated.replace(at, from.size(), to);
        Json out;
        std::string error;
        ASSERT_TRUE(Json::parse(mutated, out, error)) << error;
        serve::wire::ResultCell cell;
        EXPECT_FALSE(serve::wire::parseResultDoc(out, cell, error))
            << "accepted corruption of " << from;
        EXPECT_NE(error.find(needle), std::string::npos)
            << "error was: " << error;
    };
    corrupt("\"technique\":\"WarpedGates\"",
            "\"technique\":\"Warped\"", "unknown technique");
    corrupt("\"cycles\":", "\"cycles\":true,\"was\":", "expected a "
                                                       "non-negative");
    corrupt("\"completed\":", "\"completed\":1,\"was\":",
            "expected a boolean");
    // Histogram whose total disagrees with its bins.
    {
        std::string mutated = bytes;
        std::size_t at = mutated.find("\"total\":");
        ASSERT_NE(at, std::string::npos);
        mutated.replace(at, 8, "\"total\":999999999,\"x\":");
        Json out;
        std::string error;
        ASSERT_TRUE(Json::parse(mutated, out, error)) << error;
        serve::wire::ResultCell cell;
        EXPECT_FALSE(serve::wire::parseResultDoc(out, cell, error));
        EXPECT_NE(error.find("total does not equal"),
                  std::string::npos)
            << error;
    }
}

TEST(WireNumbers, LexemesSurviveRoundTrip)
{
    const char* kNumbers[] = {
        "0",  "-1", "18446744073709551615", "9007199254740993",
        "1e3", "0.5", "-0.25", "1.7976931348623157e308",
    };
    for (const char* n : kNumbers) {
        Json out;
        std::string error;
        ASSERT_TRUE(Json::parse(n, out, error)) << n << ": " << error;
        EXPECT_EQ(out.dump(), n);
    }
    // 2^64-1 survives exactly through asU64 (doubles would round).
    Json big;
    std::string error;
    ASSERT_TRUE(Json::parse("18446744073709551615", big, error));
    EXPECT_EQ(big.asU64(), 18446744073709551615ull);
}

TEST(WireCanonicalKey, DistinguishesSpecs)
{
    SweepSpec a({"hotspot"}, {Technique::Baseline});
    SweepSpec b({"hotspot"}, {Technique::Baseline});
    SweepSpec c({"hotspot"}, {Technique::WarpedGates});
    SweepSpec d({"hotspot"}, {Technique::Baseline},
                ExperimentOptions{});
    EXPECT_EQ(serve::wire::canonicalKey(a),
              serve::wire::canonicalKey(b));
    EXPECT_NE(serve::wire::canonicalKey(a),
              serve::wire::canonicalKey(c));
    EXPECT_NE(serve::wire::canonicalKey(a),
              serve::wire::canonicalKey(d));
}

} // namespace
