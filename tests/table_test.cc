/**
 * @file
 * Unit tests for the ASCII table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace wg {
namespace {

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 3), "1.235");
    EXPECT_EQ(Table::num(1.0, 0), "1");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, PctFormatting)
{
    EXPECT_EQ(Table::pct(0.316), "31.6%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
    EXPECT_EQ(Table::pct(-0.021), "-2.1%");
}

TEST(Table, PrintsTitleHeaderAndRows)
{
    Table t("my title");
    t.header({"col1", "col2"});
    t.row({"a", "b"});
    t.row({"longer-cell", "c"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("== my title =="), std::string::npos);
    EXPECT_NE(out.find("col1"), std::string::npos);
    EXPECT_NE(out.find("longer-cell"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, ColumnsAligned)
{
    Table t("align");
    t.header({"h", "second"});
    t.row({"aaaa", "x"});
    std::ostringstream os;
    t.print(os);
    // Find the column position of "second" in the header line and "x"
    // in the body line: they must match.
    std::istringstream is(os.str());
    std::string title, header, rule, body;
    std::getline(is, title);
    std::getline(is, header);
    std::getline(is, rule);
    std::getline(is, body);
    EXPECT_EQ(header.find("second"), body.find("x"));
}

TEST(Table, RaggedRowsTolerated)
{
    Table t("ragged");
    t.header({"a", "b", "c"});
    t.row({"1"});
    t.row({"1", "2", "3", "4"});
    std::ostringstream os;
    EXPECT_NO_THROW(t.print(os));
    EXPECT_NE(os.str().find("4"), std::string::npos);
}

TEST(Table, EmptyTableStillPrintsTitle)
{
    Table t("empty");
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("== empty =="), std::string::npos);
}

} // namespace
} // namespace wg
