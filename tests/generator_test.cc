/**
 * @file
 * Unit and property tests for the synthetic program generator.
 */

#include <gtest/gtest.h>

#include "workload/generator.hh"
#include "workload/profile.hh"

namespace wg {
namespace {

bool
sameProgram(const Program& a, const Program& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Instruction& x = a.at(i);
        const Instruction& y = b.at(i);
        if (x.unit != y.unit || x.mem != y.mem || x.dest != y.dest ||
            x.srcs != y.srcs || x.isStore != y.isStore)
            return false;
    }
    return true;
}

TEST(Generator, DeterministicForSameSeedAndSalt)
{
    ProgramGenerator a(42), b(42);
    const auto& profile = findBenchmark("hotspot");
    EXPECT_TRUE(sameProgram(a.generate(profile, 7), b.generate(profile, 7)));
}

TEST(Generator, DifferentSaltsGiveDifferentPrograms)
{
    ProgramGenerator gen(42);
    const auto& profile = findBenchmark("hotspot");
    EXPECT_FALSE(
        sameProgram(gen.generate(profile, 1), gen.generate(profile, 2)));
}

TEST(Generator, DifferentSeedsGiveDifferentPrograms)
{
    ProgramGenerator a(1), b(2);
    const auto& profile = findBenchmark("hotspot");
    EXPECT_FALSE(
        sameProgram(a.generate(profile, 3), b.generate(profile, 3)));
}

TEST(Generator, RespectsKernelLength)
{
    ProgramGenerator gen(5);
    BenchmarkProfile p = findBenchmark("srad");
    p.kernelLength = 321;
    EXPECT_EQ(gen.generate(p, 0).size(), 321u);
}

TEST(GeneratorDeath, NonPositiveLengthIsFatal)
{
    ProgramGenerator gen(5);
    BenchmarkProfile p = findBenchmark("srad");
    p.kernelLength = 0;
    EXPECT_EXIT(gen.generate(p, 0), ::testing::ExitedWithCode(1),
                "non-positive kernel length");
}

TEST(Generator, CtaWarpsSharePrograms)
{
    ProgramGenerator gen(11);
    BenchmarkProfile p = findBenchmark("hotspot");
    p.residentWarps = 48;
    p.ctaWarps = 16;
    auto programs = gen.generateSm(p, 0);
    ASSERT_EQ(programs.size(), 48u);
    EXPECT_TRUE(sameProgram(programs[0], programs[15]));
    EXPECT_TRUE(sameProgram(programs[16], programs[31]));
    EXPECT_FALSE(sameProgram(programs[0], programs[16]))
        << "different CTAs run different generated sequences";
}

TEST(Generator, DifferentSmsGetDifferentPrograms)
{
    ProgramGenerator gen(11);
    const auto& p = findBenchmark("hotspot");
    auto sm0 = gen.generateSm(p, 0);
    auto sm1 = gen.generateSm(p, 1);
    EXPECT_FALSE(sameProgram(sm0[0], sm1[0]));
}

TEST(Generator, PureIntegerProfileHasNoFp)
{
    ProgramGenerator gen(3);
    const auto& p = findBenchmark("lavaMD");
    Program prog = gen.generate(p, 0);
    EXPECT_EQ(prog.countOf(UnitClass::Fp), 0u);
}

/** Property tests over every suite benchmark. */
class GeneratedProgram : public ::testing::TestWithParam<std::string>
{
  protected:
    Program
    make()
    {
        ProgramGenerator gen(1234);
        return gen.generate(findBenchmark(GetParam()), 99);
    }
};

TEST_P(GeneratedProgram, MixTracksProfile)
{
    const auto& p = findBenchmark(GetParam());
    Program prog = make();
    double n = static_cast<double>(prog.size());
    // LDST share is set by construction; tolerance covers burst
    // quantisation. ALU classes split the remainder by profile weight.
    EXPECT_NEAR(prog.countOf(UnitClass::Ldst) / n, p.fracLdst, 0.08)
        << p.name;
    double alu = p.fracInt + p.fracFp + p.fracSfu;
    if (alu > 0) {
        double int_expected =
            (1.0 - prog.countOf(UnitClass::Ldst) / n) * p.fracInt / alu;
        EXPECT_NEAR(prog.countOf(UnitClass::Int) / n, int_expected, 0.08)
            << p.name;
    }
}

TEST_P(GeneratedProgram, RegistersAreInWindow)
{
    Program prog = make();
    for (const Instruction& i : prog.instructions()) {
        if (i.dest != kNoReg) {
            EXPECT_LT(i.dest, 16);
        }
        for (RegId s : i.srcs) {
            if (s != kNoReg) {
                EXPECT_LT(s, 16);
            }
        }
    }
}

TEST_P(GeneratedProgram, StoresNeverWriteRegisters)
{
    Program prog = make();
    for (const Instruction& i : prog.instructions()) {
        if (i.isStore) {
            EXPECT_EQ(i.dest, kNoReg);
        }
    }
}

TEST_P(GeneratedProgram, MemoryBurstsShareMissClass)
{
    // Within a run of consecutive LDST instructions, all entries carry
    // the same hit/miss class (one tile, one locality outcome).
    Program prog = make();
    for (std::size_t i = 1; i < prog.size(); ++i) {
        const Instruction& prev = prog.at(i - 1);
        const Instruction& cur = prog.at(i);
        if (prev.unit == UnitClass::Ldst && cur.unit == UnitClass::Ldst) {
            EXPECT_EQ(prev.mem, cur.mem) << "at " << i;
        }
    }
}

TEST_P(GeneratedProgram, SourcesReferenceEarlierProducers)
{
    // Every source register must have been written earlier in program
    // order (the generator only wires dataflow backwards).
    Program prog = make();
    std::array<bool, 16> written = {};
    for (const Instruction& i : prog.instructions()) {
        for (RegId s : i.srcs) {
            if (s != kNoReg) {
                EXPECT_TRUE(written[s]) << i.toString();
            }
        }
        if (i.dest != kNoReg)
            written[i.dest] = true;
    }
}

TEST_P(GeneratedProgram, MissLoadsAreConsumed)
{
    // loadConsumeProb of miss-load results must be read by a later
    // instruction; check the aggregate rate is at least half of it
    // (conservative: some consumers are overwritten by the rotating
    // register window).
    const auto& p = findBenchmark(GetParam());
    Program prog = make();
    std::size_t miss_loads = 0, consumed = 0;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        const Instruction& load = prog.at(i);
        if (load.unit != UnitClass::Ldst || load.isStore ||
            load.mem != MemClass::Miss)
            continue;
        ++miss_loads;
        for (std::size_t j = i + 1;
             j < std::min(prog.size(), i + 40); ++j) {
            const Instruction& later = prog.at(j);
            if (later.dest == load.dest)
                break; // overwritten before use
            if (later.srcs[0] == load.dest ||
                later.srcs[1] == load.dest) {
                ++consumed;
                break;
            }
        }
    }
    if (miss_loads > 20) {
        EXPECT_GT(static_cast<double>(consumed) / miss_loads,
                  p.loadConsumeProb * 0.5)
            << p.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, GeneratedProgram,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto& info) { return info.param; });

} // namespace
} // namespace wg
