/**
 * @file
 * Unit tests for the memory-system latency/MSHR/bandwidth model.
 */

#include <gtest/gtest.h>

#include "mem/memsys.hh"

namespace wg {
namespace {

MemConfig
smallConfig()
{
    MemConfig c;
    c.hitLatency = 10;
    c.missLatencyMin = 100;
    c.missLatencyMax = 200;
    c.storeLatency = 4;
    c.mshrLimit = 4;
    c.serviceBatchPeriod = 32;
    c.serviceBatchSize = 2;
    return c;
}

TEST(MemSys, HitLatencyIsExact)
{
    MemorySystem mem(smallConfig(), Rng(1));
    EXPECT_EQ(mem.access(100, MemClass::Hit, false), 110u);
    EXPECT_EQ(mem.hits(), 1u);
}

TEST(MemSys, StoreLatencyIsExactRegardlessOfClass)
{
    MemorySystem mem(smallConfig(), Rng(1));
    EXPECT_EQ(mem.access(50, MemClass::Miss, true), 54u);
    EXPECT_EQ(mem.access(50, MemClass::Hit, true), 54u);
    EXPECT_EQ(mem.stores(), 2u);
    EXPECT_EQ(mem.outstanding(), 0u)
        << "stores do not occupy MSHRs in this model";
}

TEST(MemSys, MissLatencyWithinBoundsPlusBatchWait)
{
    MemConfig cfg = smallConfig();
    MemorySystem mem(cfg, Rng(7));
    for (int i = 0; i < 2; ++i) {
        Cycle done = mem.access(0, MemClass::Miss, false);
        // First batch boundary at cycle 0; latency in [100, 200].
        EXPECT_GE(done, cfg.missLatencyMin);
        EXPECT_LE(done, cfg.missLatencyMax);
        mem.tick(done);
    }
}

TEST(MemSys, BatchCapacityPushesLaterMissesOut)
{
    MemConfig cfg = smallConfig(); // 2 misses per 32-cycle batch
    MemorySystem mem(cfg, Rng(7));
    Cycle d1 = mem.access(0, MemClass::Miss, false);
    Cycle d2 = mem.access(0, MemClass::Miss, false);
    Cycle d3 = mem.access(0, MemClass::Miss, false);
    EXPECT_EQ(d1, d2) << "misses in one batch complete together";
    // The third miss lands in the next batch: its service starts one
    // period later (its latency is drawn independently).
    EXPECT_GE(d3, cfg.serviceBatchPeriod + cfg.missLatencyMin);
}

TEST(MemSys, BandwidthBoundOverManyMisses)
{
    MemConfig cfg = smallConfig();
    MemorySystem mem(cfg, Rng(7));
    // 20 misses at cycle 0: 2 per 32-cycle batch -> last batch at
    // >= 9*32 = 288 cycles.
    Cycle last = 0;
    for (int i = 0; i < 20; ++i) {
        Cycle d = mem.access(0, MemClass::Miss, false);
        if (d > last)
            last = d;
        mem.tick(d); // keep MSHRs free for this bandwidth-only check
    }
    EXPECT_GE(last, 9 * 32 + cfg.missLatencyMin);
}

TEST(MemSys, MshrLimitBlocksMisses)
{
    MemorySystem mem(smallConfig(), Rng(3));
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(mem.canAccept(MemClass::Miss));
        mem.access(0, MemClass::Miss, false);
    }
    EXPECT_FALSE(mem.canAccept(MemClass::Miss));
    EXPECT_TRUE(mem.canAccept(MemClass::Hit))
        << "hits are never MSHR-limited";
    EXPECT_EQ(mem.outstanding(), 4u);
}

TEST(MemSys, TickRetiresCompletedMisses)
{
    MemorySystem mem(smallConfig(), Rng(3));
    Cycle done = mem.access(0, MemClass::Miss, false);
    mem.tick(done - 1);
    EXPECT_EQ(mem.outstanding(), 1u);
    mem.tick(done);
    EXPECT_EQ(mem.outstanding(), 0u);
    EXPECT_TRUE(mem.canAccept(MemClass::Miss));
}

TEST(MemSys, RejectCounter)
{
    MemorySystem mem(smallConfig(), Rng(3));
    EXPECT_EQ(mem.mshrRejects(), 0u);
    mem.noteReject();
    mem.noteReject();
    EXPECT_EQ(mem.mshrRejects(), 2u);
}

TEST(MemSys, DeterministicAcrossInstances)
{
    MemorySystem a(smallConfig(), Rng(9));
    MemorySystem b(smallConfig(), Rng(9));
    for (int i = 0; i < 50; ++i) {
        Cycle now = static_cast<Cycle>(i * 40);
        a.tick(now);
        b.tick(now);
        EXPECT_EQ(a.access(now, MemClass::Miss, false),
                  b.access(now, MemClass::Miss, false));
    }
}

TEST(MemSys, CountersTrackClasses)
{
    MemorySystem mem(smallConfig(), Rng(5));
    mem.access(0, MemClass::Hit, false);
    mem.access(0, MemClass::Hit, false);
    mem.access(0, MemClass::Miss, false);
    mem.access(0, MemClass::Hit, true);
    EXPECT_EQ(mem.hits(), 2u);
    EXPECT_EQ(mem.misses(), 1u);
    EXPECT_EQ(mem.stores(), 1u);
}

TEST(MemSys, BatchLargerThanOutstandingMisses)
{
    // serviceBatchSize above the MSHR limit: the batch can never fill,
    // every concurrently-outstanding miss lands in the open batch, and
    // they all complete together.
    MemConfig cfg = smallConfig();
    cfg.serviceBatchSize = 16; // > mshrLimit (4)
    MemorySystem mem(cfg, Rng(11));
    Cycle first = mem.access(0, MemClass::Miss, false);
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(mem.access(0, MemClass::Miss, false), first)
            << "an underfilled batch must absorb every pending miss";
    EXPECT_EQ(mem.outstanding(), 4u);
    EXPECT_FALSE(mem.canAccept(MemClass::Miss));
}

TEST(MemSys, ExactlyFullMshrPoolDrainsAndRefills)
{
    // Fill the pool to exactly mshrLimit, drain one completion, and
    // verify acceptance flips at exactly the boundary both ways.
    MemConfig cfg = smallConfig();
    MemorySystem mem(cfg, Rng(13));
    Cycle last = 0;
    for (unsigned i = 0; i < cfg.mshrLimit; ++i) {
        ASSERT_TRUE(mem.canAccept(MemClass::Miss));
        Cycle d = mem.access(0, MemClass::Miss, false);
        if (d > last)
            last = d;
    }
    ASSERT_EQ(mem.outstanding(), cfg.mshrLimit);
    ASSERT_FALSE(mem.canAccept(MemClass::Miss));

    // The two batches complete at different cycles; retiring the first
    // batch frees exactly those MSHRs.
    mem.tick(last - 1);
    EXPECT_GT(mem.outstanding(), 0u);
    EXPECT_LT(mem.outstanding(), cfg.mshrLimit);
    EXPECT_TRUE(mem.canAccept(MemClass::Miss));

    // Refill to exactly full again from the partially-drained state.
    while (mem.canAccept(MemClass::Miss))
        mem.access(last, MemClass::Miss, false);
    EXPECT_EQ(mem.outstanding(), cfg.mshrLimit);

    mem.tick(kNeverCycle - 1);
    EXPECT_EQ(mem.outstanding(), 0u);
}

TEST(MemSys, StoresBypassFullMshrPool)
{
    // Store vs miss ordering: stores retire through the write buffer
    // with fixed latency even while the MSHR pool is saturated, and
    // never perturb the miss stream's completion times.
    MemConfig cfg = smallConfig();
    MemorySystem with_stores(cfg, Rng(17));
    MemorySystem without(cfg, Rng(17));

    std::vector<Cycle> a, b;
    for (unsigned i = 0; i < cfg.mshrLimit; ++i) {
        a.push_back(with_stores.access(5, MemClass::Miss, false));
        b.push_back(without.access(5, MemClass::Miss, false));
        // Interleave a store between every miss on one instance only.
        EXPECT_EQ(with_stores.access(5, MemClass::Miss, true),
                  5 + cfg.storeLatency);
    }
    EXPECT_FALSE(with_stores.canAccept(MemClass::Miss));
    EXPECT_TRUE(with_stores.canAccept(MemClass::Hit));
    EXPECT_EQ(with_stores.access(6, MemClass::Hit, true),
              6 + cfg.storeLatency)
        << "stores are accepted while the pool is full";
    EXPECT_EQ(a, b) << "stores must not shift miss batching or latency";
    EXPECT_EQ(with_stores.stores(), cfg.mshrLimit + 1);
}

TEST(MemSysDeath, AccessWithNoneClassPanics)
{
    MemorySystem mem(smallConfig(), Rng(5));
    EXPECT_DEATH(mem.access(0, MemClass::None, false), "MemClass::None");
}

TEST(MemSysDeath, BadLatencyConfigIsFatal)
{
    MemConfig cfg = smallConfig();
    cfg.missLatencyMax = cfg.missLatencyMin - 1;
    EXPECT_EXIT(MemorySystem(cfg, Rng(1)), ::testing::ExitedWithCode(1),
                "missLatencyMax");
}

TEST(MemSysDeath, ZeroMshrIsFatal)
{
    MemConfig cfg = smallConfig();
    cfg.mshrLimit = 0;
    EXPECT_EXIT(MemorySystem(cfg, Rng(1)), ::testing::ExitedWithCode(1),
                "mshrLimit");
}

} // namespace
} // namespace wg
