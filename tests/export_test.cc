/**
 * @file
 * Unit tests for the CSV/JSON result export.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/presets.hh"
#include "report/export.hh"
#include "sim/gpu.hh"

namespace wg {
namespace {

SimResult
smallResult()
{
    ExperimentOptions opts;
    opts.numSms = 1;
    GpuConfig cfg = makeConfig(Technique::WarpedGates, opts);
    BenchmarkProfile p = findBenchmark("hotspot");
    p.kernelLength = 200;
    p.residentWarps = 8;
    Gpu gpu(cfg);
    return gpu.run(p);
}

std::size_t
countChar(const std::string& s, char c)
{
    std::size_t n = 0;
    for (char x : s)
        if (x == c)
            ++n;
    return n;
}

TEST(Export, CsvRowMatchesHeaderArity)
{
    SimResult r = smallResult();
    std::string header = csvHeader();
    std::string row = toCsvRow("hotspot", r);
    EXPECT_EQ(countChar(header, ','), countChar(row, ','));
    EXPECT_EQ(row.rfind("hotspot,", 0), 0u);
}

TEST(Export, CsvRowCarriesConfig)
{
    SimResult r = smallResult();
    std::string row = toCsvRow("x", r);
    EXPECT_NE(row.find("gates"), std::string::npos);
    EXPECT_NE(row.find("coordinated-blackout"), std::string::npos);
}

TEST(Export, JsonIsStructurallySound)
{
    SimResult r = smallResult();
    std::string json = toJson("hotspot", r);
    // Balanced braces/brackets and the expected top-level keys.
    EXPECT_EQ(countChar(json, '{'), countChar(json, '}'));
    EXPECT_EQ(countChar(json, '['), countChar(json, ']'));
    for (const char* key :
         {"\"label\"", "\"config\"", "\"cycles\"", "\"int\"", "\"fp\"",
          "\"energy\"", "\"idle_histogram\"", "\"savings_ratio\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

TEST(Export, JsonEscapesLabel)
{
    SimResult r = smallResult();
    std::string json = toJson("we\"ird\\label", r);
    EXPECT_NE(json.find("we\\\"ird\\\\label"), std::string::npos);
}

TEST(Export, WriteFileRoundTrip)
{
    std::string path = ::testing::TempDir() + "/wg_export_test.csv";
    writeFile(path, "a,b\n1,2\n");
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "a,b\n1,2\n");
    std::remove(path.c_str());
}

TEST(ExportDeath, UnwritablePathIsFatal)
{
    EXPECT_EXIT(writeFile("/nonexistent-dir/foo.csv", "x"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace wg
