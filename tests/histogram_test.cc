/**
 * @file
 * Unit tests for the fixed-bin histogram.
 */

#include <gtest/gtest.h>

#include "common/histogram.hh"

namespace wg {
namespace {

TEST(Histogram, StartsEmpty)
{
    Histogram h(10);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, AddAndBin)
{
    Histogram h(10);
    h.add(3);
    h.add(3);
    h.add(7);
    EXPECT_EQ(h.bin(3), 2u);
    EXPECT_EQ(h.bin(7), 1u);
    EXPECT_EQ(h.bin(0), 0u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.sum(), 13u);
}

TEST(Histogram, AddWithCount)
{
    Histogram h(10);
    h.add(4, 5);
    EXPECT_EQ(h.bin(4), 5u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.sum(), 20u);
}

TEST(Histogram, OverflowBin)
{
    Histogram h(10);
    h.add(11);
    h.add(1000);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 2u);
    EXPECT_EQ(h.sum(), 1011u);
}

TEST(Histogram, BoundarySampleIsNotOverflow)
{
    Histogram h(10);
    h.add(10);
    EXPECT_EQ(h.bin(10), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, Mean)
{
    Histogram h(100);
    h.add(2);
    h.add(4);
    h.add(6);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, MeanIncludesOverflow)
{
    Histogram h(10);
    h.add(5);
    h.add(15); // overflow, but its value still counts in the mean
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Histogram, FractionBetween)
{
    Histogram h(20);
    for (std::uint64_t v = 1; v <= 10; ++v)
        h.add(v);
    EXPECT_DOUBLE_EQ(h.fractionBetween(1, 5), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionBetween(6, 10), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionBetween(1, 10), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionBetween(11, 20), 0.0);
}

TEST(Histogram, FractionBetweenIncludesOverflowWhenHiAboveMax)
{
    Histogram h(10);
    h.add(5);
    h.add(50);
    EXPECT_DOUBLE_EQ(h.fractionBetween(0, 11), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionBetween(0, 10), 0.5);
}

TEST(Histogram, FractionAbove)
{
    Histogram h(10);
    h.add(3);
    h.add(8);
    h.add(30);
    EXPECT_NEAR(h.fractionAbove(5), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(h.fractionAbove(10), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(h.fractionAbove(100), 1.0 / 3.0, 1e-12)
        << "everything above maxBin lives in the overflow bin";
}

TEST(Histogram, FractionAboveSaturatesAtMaxBin)
{
    // Contract: bounds beyond maxBin clamp to maxBin. Overflow samples
    // lose their values, so fractionAbove cannot resolve finer than
    // "the whole overflow mass" up there.
    Histogram h(10);
    h.add(3);
    h.add(30);
    h.add(200);
    double at_max = h.fractionAbove(10);
    EXPECT_NEAR(at_max, 2.0 / 3.0, 1e-12);
    for (std::uint64_t bound : {11ull, 31ull, 199ull, 1ull << 40}) {
        EXPECT_DOUBLE_EQ(h.fractionAbove(bound), at_max)
            << "bound " << bound << " must saturate at maxBin";
    }
}

TEST(Histogram, FractionAboveClampConsistentWithFractionBetween)
{
    // The saturated value equals the overflow share reported by
    // fractionBetween's above-max tail.
    Histogram h(8);
    for (std::uint64_t v = 0; v < 20; ++v)
        h.add(v);
    EXPECT_DOUBLE_EQ(h.fractionAbove(100),
                     h.fractionBetween(9, 1000));
}

TEST(Histogram, FractionsOnEmpty)
{
    Histogram h(10);
    EXPECT_DOUBLE_EQ(h.fractionBetween(0, 10), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAbove(3), 0.0);
}

TEST(Histogram, InvertedRangeIsZero)
{
    Histogram h(10);
    h.add(5);
    EXPECT_DOUBLE_EQ(h.fractionBetween(7, 3), 0.0);
}

TEST(Histogram, Merge)
{
    Histogram a(10), b(10);
    a.add(2);
    a.add(12);
    b.add(2, 3);
    b.add(9);
    a.merge(b);
    EXPECT_EQ(a.bin(2), 4u);
    EXPECT_EQ(a.bin(9), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.total(), 6u);
}

TEST(Histogram, Reset)
{
    Histogram h(10);
    h.add(5);
    h.add(500);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.bin(5), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

TEST(HistogramDeath, MergeMismatchedBinsPanics)
{
    Histogram a(10), b(20);
    EXPECT_DEATH(a.merge(b), "bin count mismatch");
}

TEST(HistogramDeath, BinOutOfRangePanics)
{
    Histogram h(10);
    EXPECT_DEATH(h.bin(11), "out of range");
}

/** Property: fractions over a partition always sum to 1. */
class HistogramPartition : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HistogramPartition, RegionsSumToOne)
{
    const std::uint64_t split = GetParam();
    Histogram h(64);
    for (std::uint64_t v = 1; v <= 200; ++v)
        h.add(v % 97);
    double left = h.fractionBetween(0, split);
    double right = h.fractionAbove(split);
    EXPECT_NEAR(left + right, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Splits, HistogramPartition,
                         ::testing::Values(0, 1, 5, 14, 19, 63, 64));

TEST(LatencyHistogram, RecordsIntoCorrectBuckets)
{
    LatencyHistogram h({0.01, 0.1, 1.0});
    h.record(0.005); // <= 0.01
    h.record(0.01);  // boundary lands in its own bucket (le semantics)
    h.record(0.05);  // <= 0.1
    h.record(5.0);   // +Inf
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u); // +Inf bucket
    EXPECT_EQ(h.total(), 4u);
    EXPECT_NEAR(h.sum(), 5.065, 1e-12);
}

TEST(LatencyHistogram, CumulativeCountsAreMonotone)
{
    LatencyHistogram h({0.01, 0.1, 1.0});
    h.record(0.005);
    h.record(0.05);
    h.record(5.0);
    EXPECT_EQ(h.cumulative(0), 1u);
    EXPECT_EQ(h.cumulative(1), 2u);
    EXPECT_EQ(h.cumulative(2), 2u);
    EXPECT_EQ(h.cumulative(3), 3u); // == total()
}

TEST(LatencyHistogram, NegativeDurationsClampToZero)
{
    // A clock hiccup must never crash or skew the sum negative.
    LatencyHistogram h({0.01});
    h.record(-1.0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.sum(), 0.0);
}

TEST(LatencyHistogram, DefaultBoundsAscendAndCoverSubMsToMinutes)
{
    LatencyHistogram h;
    ASSERT_FALSE(h.bounds().empty());
    for (std::size_t i = 1; i < h.bounds().size(); ++i)
        EXPECT_LT(h.bounds()[i - 1], h.bounds()[i]);
    EXPECT_LE(h.bounds().front(), 0.001);
    EXPECT_GE(h.bounds().back(), 60.0);
}

TEST(LatencyHistogramDeath, UnsortedBoundsPanic)
{
    EXPECT_DEATH(LatencyHistogram({0.1, 0.1}), "ascending");
}

TEST(LatencyHistogramDeath, BucketOutOfRangePanics)
{
    LatencyHistogram h({0.01});
    EXPECT_DEATH(h.bucket(2), "out of range");
}

} // namespace
} // namespace wg
