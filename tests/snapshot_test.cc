/**
 * @file
 * Checkpoint/resume tests (DESIGN.md §17): splitting a run at any
 * epoch boundary (and off-boundary cycles) and resuming — through the
 * JSON codec — must reproduce the uninterrupted run exactly: the same
 * SimResult, the same metrics exports, the same trace bytes, with
 * fast-forward on or off on either side of the split. Also pins the
 * snapshot document bytes (golden), and locks the rejection paths:
 * corrupt/truncated documents fail parsing cleanly and semantically
 * impossible snapshots fail SimSession::restore with actionable
 * errors.
 *
 * Golden files live in tests/golden/; regenerate after an intentional
 * schema change with WG_REGEN_GOLDEN=1.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "metrics/exporters.hh"
#include "metrics/registry.hh"
#include "report/export.hh"
#include "serve/snapshot.hh"
#include "sim/session.hh"
#include "trace/sink.hh"

namespace wg {
namespace {

using serve::Json;

std::string
goldenPath(const std::string& name)
{
    return std::string(WG_GOLDEN_DIR) + "/" + name;
}

/** Read the golden, or (re)write it when WG_REGEN_GOLDEN is set. */
std::string
golden(const std::string& name, const std::string& actual)
{
    const std::string path = goldenPath(name);
    if (std::getenv("WG_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        out << actual;
        return actual;
    }
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing golden file " << path
                           << " (run with WG_REGEN_GOLDEN=1)";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Small config with a short epoch so runs cross many boundaries. */
GpuConfig
config(bool fast_forward = true)
{
    ExperimentOptions opts;
    opts.numSms = 2;
    opts.seed = 11;
    GpuConfig cfg = makeConfig(Technique::WarpedGates, opts);
    cfg.sm.pg.epochLength = 256;
    cfg.sm.fastForward = fast_forward;
    return cfg;
}

BenchmarkProfile
profile(const std::string& bench)
{
    BenchmarkProfile p = findBenchmark(bench);
    p.kernelLength = 400;
    p.residentWarps = 16;
    return p;
}

/**
 * The strongest equality the project has: the full metric registry
 * (every counter, histogram bin, and energy term under its dotted
 * name) plus the derived CSV export must match exactly — the same
 * check `wgreport --tol 0` performs.
 */
void
expectResultsIdentical(const SimResult& a, const SimResult& b,
                       const std::string& what)
{
    EXPECT_EQ(metrics::toStatSet(a).entries(),
              metrics::toStatSet(b).entries())
        << what;
    EXPECT_EQ(toCsvRow("x", a), toCsvRow("x", b)) << what;
}

/**
 * Run to completion with a split at @p cut: capture there, serialize
 * through the JSON codec, parse the bytes back, restore, and finish.
 * Exercises the full persistence path, not just in-memory state.
 */
SimResult
splitRun(const std::string& bench, Cycle cut, const GpuConfig& capture,
         const GpuConfig& resume)
{
    SimSession first =
        SimSession::open(profile(bench), capture, nullptr);
    first.runUntil(cut);
    const GpuSnapshot snap = first.snapshot();

    const std::string bytes =
        serve::wire::gpuSnapshotToJson(snap).dump();
    Json doc;
    std::string error;
    EXPECT_TRUE(Json::parse(bytes, doc, error,
                            serve::wire::snapshotJsonLimits()))
        << error;
    GpuSnapshot reloaded;
    EXPECT_TRUE(serve::wire::gpuSnapshotFromJson(doc, "$", reloaded,
                                                 error))
        << error;

    auto second = SimSession::restore(reloaded, profile(bench), resume,
                                      nullptr, nullptr, nullptr,
                                      &error);
    EXPECT_NE(second, nullptr) << error;
    return second->result();
}

TEST(SnapshotSplit, EveryEpochBoundaryMatchesUnsplit)
{
    for (const char* bench : {"hotspot", "bfs"}) {
        SimSession whole =
            SimSession::open(profile(bench), config(), nullptr);
        const SimResult unsplit = whole.result();
        const Cycle epoch = config().sm.pg.epochLength;
        ASSERT_GT(unsplit.cycles, 2 * epoch) << bench;

        for (Cycle cut = epoch; cut < unsplit.cycles; cut += epoch) {
            SimResult resumed =
                splitRun(bench, cut, config(), config());
            expectResultsIdentical(unsplit, resumed,
                                   std::string(bench) + " cut at " +
                                       std::to_string(cut));
        }
    }
}

TEST(SnapshotSplit, OffBoundaryCutIsStillExact)
{
    // The contract promises epoch boundaries, but the implementation
    // is exact at any cycle — pin that stronger property.
    SimSession whole =
        SimSession::open(profile("hotspot"), config(), nullptr);
    const SimResult unsplit = whole.result();
    for (Cycle cut : {Cycle(1), Cycle(333), Cycle(777)}) {
        ASSERT_LT(cut, unsplit.cycles);
        SimResult resumed = splitRun("hotspot", cut, config(), config());
        expectResultsIdentical(unsplit, resumed,
                               "cut at " + std::to_string(cut));
    }
}

TEST(SnapshotSplit, FastForwardPermutationsAllMatch)
{
    // FF is not part of the snapshot identity: a capture taken with it
    // on may be resumed with it off and vice versa, and every
    // combination equals the uninterrupted FF-on run.
    SimSession whole =
        SimSession::open(profile("hotspot"), config(true), nullptr);
    const SimResult unsplit = whole.result();
    const Cycle cut = 2 * config().sm.pg.epochLength;
    for (bool capture_ff : {true, false}) {
        for (bool resume_ff : {true, false}) {
            SimResult resumed = splitRun("hotspot", cut,
                                         config(capture_ff),
                                         config(resume_ff));
            expectResultsIdentical(
                unsplit, resumed,
                std::string("capture ff=") + (capture_ff ? "1" : "0") +
                    " resume ff=" + (resume_ff ? "1" : "0"));
        }
    }
}

TEST(SnapshotSplit, TraceAndMetricsBytesSurviveTheSplit)
{
    // The observer outputs inherit the guarantee: the serialized trace
    // JSONL and every metrics format of a split run must equal the
    // uninterrupted run's byte for byte.
    trace::Collector whole_trace;
    metrics::Collector whole_metrics;
    SimSession whole = SimSession::open(profile("hotspot"), config(),
                                        nullptr, &whole_trace,
                                        &whole_metrics);
    const SimResult unsplit = whole.result();
    ASSERT_GT(whole_trace.totalEvents(), 0u);
    ASSERT_GT(whole_metrics.totalSamples(), 0u);

    trace::Collector first_trace;
    metrics::Collector first_metrics;
    SimSession first = SimSession::open(profile("hotspot"), config(),
                                        nullptr, &first_trace,
                                        &first_metrics);
    const Cycle cut = 3 * config().sm.pg.epochLength;
    first.runUntil(cut);
    const GpuSnapshot snap = first.snapshot();

    trace::Collector second_trace;
    metrics::Collector second_metrics;
    std::string error;
    auto second = SimSession::restore(snap, profile("hotspot"),
                                      config(), nullptr, &second_trace,
                                      &second_metrics, &error);
    ASSERT_NE(second, nullptr) << error;
    const SimResult resumed = second->result();
    expectResultsIdentical(unsplit, resumed, "observed split");

    std::ostringstream whole_os, split_os;
    trace::writeJsonl(whole_os, whole_trace);
    trace::writeJsonl(split_os, second_trace);
    EXPECT_EQ(whole_os.str(), split_os.str());

    StatSet whole_set = metrics::toStatSet(unsplit);
    StatSet split_set = metrics::toStatSet(resumed);
    for (metrics::MetricsFormat format :
         {metrics::MetricsFormat::Jsonl, metrics::MetricsFormat::Csv,
          metrics::MetricsFormat::Prom}) {
        std::ostringstream a, b;
        metrics::writeMetrics(a, &whole_metrics, whole_set, format);
        metrics::writeMetrics(b, &second_metrics, split_set, format);
        EXPECT_EQ(a.str(), b.str())
            << metrics::metricsFormatName(format);
    }
}

/** A deterministic mid-run snapshot document for the codec tests. */
Json
sampleDoc(serve::wire::SnapshotIdentity& id_out)
{
    serve::wire::SnapshotIdentity id;
    id.bench = "hotspot";
    id.technique = Technique::WarpedGates;
    id.options.numSms = 2;
    id.options.seed = 7;
    GpuConfig cfg;
    std::string error;
    EXPECT_TRUE(serve::wire::snapshotConfig(id, cfg, error)) << error;
    SimSession session =
        SimSession::open(findBenchmark(id.bench), cfg, nullptr);
    session.runUntil(1000);
    id_out = id;
    return serve::wire::snapshotDoc(id, session.snapshot());
}

TEST(SnapshotDoc, RoundTripsByteIdentically)
{
    serve::wire::SnapshotIdentity id;
    Json doc = sampleDoc(id);
    const std::string bytes = doc.dump();

    Json reparsed;
    std::string error;
    ASSERT_TRUE(Json::parse(bytes, reparsed, error,
                            serve::wire::snapshotJsonLimits()))
        << error;
    serve::wire::SnapshotIdentity back;
    GpuSnapshot snap;
    ASSERT_TRUE(serve::wire::parseSnapshotDoc(reparsed, back, snap,
                                              error))
        << error;
    EXPECT_EQ(back.bench, id.bench);
    EXPECT_EQ(back.technique, id.technique);
    EXPECT_EQ(back.options.seed, id.options.seed);
    EXPECT_EQ(snap.cycle, 1000u);
    ASSERT_EQ(snap.sms.size(), 2u);

    // Re-serializing the parsed state reproduces the bytes exactly.
    EXPECT_EQ(serve::wire::snapshotDoc(back, snap).dump(), bytes);
}

TEST(SnapshotDoc, IsGoldenPinned)
{
    serve::wire::SnapshotIdentity id;
    const std::string bytes = sampleDoc(id).dump();
    EXPECT_EQ(bytes, golden("snapshot_gpu_v2.json", bytes));
}

TEST(SnapshotDoc, CorruptionIsRejectedCleanly)
{
    serve::wire::SnapshotIdentity id;
    const std::string bytes = sampleDoc(id).dump();

    // Truncations at many byte offsets: parse or doc-check must fail
    // cleanly (never abort) with a non-empty error.
    for (std::size_t cut = 1; cut + 1 < bytes.size();
         cut += bytes.size() / 97 + 1) {
        Json out;
        std::string error;
        if (Json::parse(bytes.substr(0, cut), out, error,
                        serve::wire::snapshotJsonLimits())) {
            serve::wire::SnapshotIdentity pid;
            GpuSnapshot snap;
            EXPECT_FALSE(serve::wire::parseSnapshotDoc(out, pid, snap,
                                                       error));
        }
        EXPECT_FALSE(error.empty());
    }

    // Field-level corruption keeps the document well-formed JSON but
    // must still be rejected with an actionable error.
    auto corrupt = [&](const std::string& from, const std::string& to,
                       const char* needle) {
        std::string mutated = bytes;
        std::size_t at = mutated.find(from);
        ASSERT_NE(at, std::string::npos) << from;
        mutated.replace(at, from.size(), to);
        Json out;
        std::string error;
        ASSERT_TRUE(Json::parse(mutated, out, error,
                                serve::wire::snapshotJsonLimits()))
            << error;
        serve::wire::SnapshotIdentity pid;
        GpuSnapshot snap;
        EXPECT_FALSE(serve::wire::parseSnapshotDoc(out, pid, snap,
                                                   error))
            << "accepted corruption of " << from;
        EXPECT_NE(error.find(needle), std::string::npos)
            << "error was: " << error;
    };
    corrupt("\"wire\":2", "\"wire\":9", "unsupported schema version 9");
    corrupt("\"type\":\"snapshot\"", "\"type\":\"snapshit\"",
            "expected 'snapshot'");
    corrupt("\"technique\":\"WarpedGates\"",
            "\"technique\":\"WarpedGoats\"", "unknown technique");
    corrupt("\"cycle\":1000", "\"cycle\":true,\"was\":1000",
            "expected a non-negative");
}

TEST(SnapshotRestore, RejectsImpossibleSnapshots)
{
    SimSession first =
        SimSession::open(profile("hotspot"), config(), nullptr);
    first.runUntil(512);
    const GpuSnapshot snap = first.snapshot();
    std::string error;

    // SM count mismatch.
    GpuConfig three_sms = config();
    three_sms.numSms = 3;
    EXPECT_EQ(SimSession::restore(snap, profile("hotspot"), three_sms,
                                  nullptr, nullptr, nullptr, &error),
              nullptr);
    EXPECT_NE(error.find("SM count"), std::string::npos) << error;

    // Warp count mismatch (different workload shape).
    BenchmarkProfile fatter = profile("hotspot");
    fatter.residentWarps = 32;
    EXPECT_EQ(SimSession::restore(snap, fatter, config(), nullptr,
                                  nullptr, nullptr, &error),
              nullptr);
    EXPECT_NE(error.find("warp count"), std::string::npos) << error;

    // Observer mismatch: unobserved capture, observed resume.
    trace::Collector tracer;
    EXPECT_EQ(SimSession::restore(snap, profile("hotspot"), config(),
                                  nullptr, &tracer, nullptr, &error),
              nullptr);
    EXPECT_NE(error.find("no trace section"), std::string::npos)
        << error;
    metrics::Collector mets;
    EXPECT_EQ(SimSession::restore(snap, profile("hotspot"), config(),
                                  nullptr, nullptr, &mets, &error),
              nullptr);
    EXPECT_NE(error.find("no metrics section"), std::string::npos)
        << error;

    // Empty snapshot.
    EXPECT_EQ(SimSession::restore(GpuSnapshot{}, profile("hotspot"),
                                  config(), nullptr, nullptr, nullptr,
                                  &error),
              nullptr);
    EXPECT_NE(error.find("no SM sections"), std::string::npos)
        << error;
}

TEST(SnapshotRestore, RejectsObservedCaptureWithoutObservers)
{
    trace::Collector tracer;
    metrics::Collector mets;
    SimSession first = SimSession::open(profile("hotspot"), config(),
                                        nullptr, &tracer, &mets);
    first.runUntil(512);
    const GpuSnapshot snap = first.snapshot();
    std::string error;
    EXPECT_EQ(SimSession::restore(snap, profile("hotspot"), config(),
                                  nullptr, nullptr, nullptr, &error),
              nullptr);
    EXPECT_NE(error.find("trace section"), std::string::npos) << error;
}

TEST(SnapshotRestore, RejectsTraceOverflowingTheRing)
{
    trace::Collector big;
    SimSession first = SimSession::open(profile("hotspot"), config(),
                                        nullptr, &big);
    first.runUntil(512);
    const GpuSnapshot snap = first.snapshot();
    ASSERT_GT(snap.sms[0].traceEvents.size(), 2u);

    trace::RecorderConfig tiny_ring;
    tiny_ring.capacity = 2;
    trace::Collector tiny(tiny_ring);
    std::string error;
    EXPECT_EQ(SimSession::restore(snap, profile("hotspot"), config(),
                                  nullptr, &tiny, nullptr, &error),
              nullptr);
    EXPECT_NE(error.find("exceeds the ring capacity"),
              std::string::npos)
        << error;
}

TEST(SnapshotRestore, SnapshotOfRestoredSessionIsIdentical)
{
    // snapshot(restore(snapshot(s))) == snapshot(s): restoring loses
    // nothing, so checkpoint chains are stable.
    SimSession first =
        SimSession::open(profile("bfs"), config(), nullptr);
    first.runUntil(768);
    const GpuSnapshot snap = first.snapshot();
    std::string error;
    auto second = SimSession::restore(snap, profile("bfs"), config(),
                                      nullptr, nullptr, nullptr,
                                      &error);
    ASSERT_NE(second, nullptr) << error;
    EXPECT_EQ(serve::wire::gpuSnapshotToJson(second->snapshot()).dump(),
              serve::wire::gpuSnapshotToJson(snap).dump());
}

TEST(SnapshotDeath, OpenWithZeroSmsAborts)
{
    GpuConfig cfg = config();
    cfg.numSms = 0;
    EXPECT_DEATH(
        SimSession::open(profile("hotspot"), cfg, nullptr),
        "numSms must be positive");
}

} // namespace
} // namespace wg
