/**
 * @file
 * Unit tests for SimResult's derived metrics, using hand-built
 * statistics (no simulation) so every formula is checked exactly.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "sim/result.hh"

namespace wg {
namespace {

SimResult
handBuilt()
{
    SimResult r;
    r.config = makeConfig(Technique::ConvPG);
    r.cycles = 1000;
    r.totalSmCycles = 1000; // one SM
    r.aggregate.cycles = 1000;
    r.aggregate.issuedTotal = 1500;

    // INT cluster 0: 600 busy; cluster 1: 200 busy.
    r.aggregate.clusters[0][0].pg.busyCycles = 600;
    r.aggregate.clusters[0][0].pg.idleOnCycles = 400;
    r.aggregate.clusters[0][1].pg.busyCycles = 200;
    r.aggregate.clusters[0][1].pg.idleOnCycles = 300;
    r.aggregate.clusters[0][1].pg.compCycles = 400;
    r.aggregate.clusters[0][1].pg.uncompCycles = 100;
    r.aggregate.clusters[0][1].pg.wakeups = 7;
    r.aggregate.clusters[0][0].pg.wakeups = 3;
    r.aggregate.clusters[0][0].pg.criticalWakeups = 2;
    r.aggregate.clusters[0][1].pg.criticalWakeups = 3;

    Histogram h(64);
    h.add(2, 10);  // <= idle-detect
    h.add(10, 5);  // middle
    h.add(40, 5);  // long
    r.intIdleHist = h;
    return r;
}

TEST(Result, TypeStatsSumsClusters)
{
    SimResult r = handBuilt();
    PgDomainStats s = r.typeStats(UnitClass::Int);
    EXPECT_EQ(s.busyCycles, 800u);
    EXPECT_EQ(s.idleOnCycles, 700u);
    EXPECT_EQ(s.wakeups, 10u);
    EXPECT_EQ(s.criticalWakeups, 5u);
    EXPECT_EQ(s.compCycles, 400u);
    EXPECT_EQ(s.uncompCycles, 100u);
}

TEST(Result, IdleFraction)
{
    SimResult r = handBuilt();
    // 2 clusters x 1000 cycles; 800 busy -> idle 1200/2000.
    EXPECT_DOUBLE_EQ(r.idleFraction(UnitClass::Int), 0.6);
}

TEST(Result, CompensatedNetFraction)
{
    SimResult r = handBuilt();
    // (400 - 100) / 2000.
    EXPECT_DOUBLE_EQ(r.compensatedNetFraction(UnitClass::Int), 0.15);
}

TEST(Result, Wakeups)
{
    SimResult r = handBuilt();
    EXPECT_EQ(r.wakeups(UnitClass::Int), 10u);
}

TEST(Result, CriticalWakeupsPer1k)
{
    SimResult r = handBuilt();
    EXPECT_DOUBLE_EQ(r.criticalWakeupsPer1k(UnitClass::Int), 5.0);
}

TEST(Result, IdleRegionsPartition)
{
    SimResult r = handBuilt();
    auto regions = r.idleRegions(UnitClass::Int, 5, 14);
    EXPECT_DOUBLE_EQ(regions[0], 0.5);  // 10 of 20 periods
    EXPECT_DOUBLE_EQ(regions[1], 0.25); // 5 of 20
    EXPECT_DOUBLE_EQ(regions[2], 0.25); // 5 of 20
}

TEST(Result, Ipc)
{
    SimResult r = handBuilt();
    EXPECT_DOUBLE_EQ(r.ipc(), 1.5);
    SimResult zero;
    EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);
}

TEST(Result, EmptyResultDerivedMetricsAreZero)
{
    SimResult r;
    EXPECT_DOUBLE_EQ(r.idleFraction(UnitClass::Int), 0.0);
    EXPECT_DOUBLE_EQ(r.compensatedNetFraction(UnitClass::Fp), 0.0);
    EXPECT_DOUBLE_EQ(r.criticalWakeupsPer1k(UnitClass::Int), 0.0);
}

TEST(Result, ComputeEnergyUsesAggregates)
{
    SimResult r = handBuilt();
    r.aggregate.clusters[0][0].issues = 600;
    computeEnergy(r);
    EXPECT_GT(r.intEnergy.dynamicE, 0.0);
    EXPECT_NEAR(r.intEnergy.staticE + r.intEnergy.staticSaved,
                r.intEnergy.staticNoPg, 1e-20);
    // 500 gated cycles of 2000 cluster-cycles and no gating events
    // charged: savings ratio = 500/2000.
    EXPECT_DOUBLE_EQ(r.intEnergy.staticSavingsRatio(), 0.25);
}

TEST(ResultDeath, IdleHistForLdstPanics)
{
    SimResult r = handBuilt();
    EXPECT_DEATH(r.idleHist(UnitClass::Ldst), "only INT/FP");
}

} // namespace
} // namespace wg
