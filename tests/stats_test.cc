/**
 * @file
 * Unit tests for the named-statistics registry.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace wg {
namespace {

TEST(StatSet, GetMissingIsZero)
{
    StatSet s;
    EXPECT_DOUBLE_EQ(s.get("nope"), 0.0);
    EXPECT_FALSE(s.has("nope"));
}

TEST(StatSet, IncrCreatesAndAccumulates)
{
    StatSet s;
    s.incr("a.b");
    s.incr("a.b", 2.5);
    EXPECT_TRUE(s.has("a.b"));
    EXPECT_DOUBLE_EQ(s.get("a.b"), 3.5);
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.incr("x", 10);
    s.set("x", 2);
    EXPECT_DOUBLE_EQ(s.get("x"), 2.0);
}

TEST(StatSet, SumPrefix)
{
    StatSet s;
    s.set("sm0.pg.wakeups", 3);
    s.set("sm0.pg.gates", 4);
    s.set("sm1.pg.wakeups", 5);
    s.set("other", 100);
    EXPECT_DOUBLE_EQ(s.sumPrefix("sm0."), 7.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("sm"), 12.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix(""), 112.0);
    EXPECT_DOUBLE_EQ(s.sumPrefix("zz"), 0.0);
}

TEST(StatSet, SumPrefixDoesNotMatchSiblings)
{
    StatSet s;
    s.set("ab", 1);
    s.set("abc", 2);
    s.set("abd", 4);
    s.set("ac", 8);
    EXPECT_DOUBLE_EQ(s.sumPrefix("ab"), 7.0);
}

TEST(StatSet, MergeSumsDuplicates)
{
    StatSet a, b;
    a.set("x", 1);
    a.set("y", 2);
    b.set("x", 10);
    b.set("z", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 11.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 2.0);
    EXPECT_DOUBLE_EQ(a.get("z"), 3.0);
}

TEST(StatSet, MergePrefixed)
{
    StatSet gpu, sm;
    sm.set("pg.wakeups", 4);
    gpu.mergePrefixed("sm3", sm);
    EXPECT_DOUBLE_EQ(gpu.get("sm3.pg.wakeups"), 4.0);
}

TEST(StatSet, ClearRemovesEverything)
{
    StatSet s;
    s.set("a", 1);
    s.clear();
    EXPECT_FALSE(s.has("a"));
    EXPECT_TRUE(s.entries().empty());
}

TEST(StatSet, EntriesAreSorted)
{
    StatSet s;
    s.set("b", 1);
    s.set("a", 2);
    s.set("c", 3);
    std::string prev;
    for (const auto& [name, value] : s.entries()) {
        EXPECT_LT(prev, name);
        prev = name;
    }
}

} // namespace
} // namespace wg
