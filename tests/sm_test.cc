/**
 * @file
 * Integration tests for the SM model: issue, dataflow, two-level
 * residency, gating interaction, and the paper's Fig. 4 illustration.
 */

#include <gtest/gtest.h>

#include "sim/sm.hh"
#include "workload/synthetic.hh"

namespace wg {
namespace {

SmConfig
baseConfig()
{
    SmConfig cfg;
    cfg.pg.policy = PgPolicy::None;
    return cfg;
}

std::uint64_t
totalInstructions(const std::vector<Program>& programs)
{
    std::uint64_t n = 0;
    for (const auto& p : programs)
        n += p.size();
    return n;
}

TEST(Sm, DrainsSingleWarp)
{
    Sm sm(baseConfig(), {pureProgram(UnitClass::Int, 10)}, 1);
    const SmStats& s = sm.run();
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.issuedTotal, 10u);
    EXPECT_EQ(s.issuedByClass[static_cast<std::size_t>(UnitClass::Int)],
              10u);
    // 10 independent instructions, one warp, one per cycle, then the
    // 4-cycle latency drains.
    EXPECT_GE(s.cycles, 14u);
    EXPECT_LE(s.cycles, 20u);
}

TEST(Sm, ConservationOfInstructions)
{
    auto programs = uniformMixWarps(8, 300, 0.3, 0.2, 0.4);
    std::uint64_t expected = totalInstructions(programs);
    Sm sm(baseConfig(), programs, 2);
    const SmStats& s = sm.run();
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.issuedTotal, expected);
    std::uint64_t by_class = 0;
    for (auto c : s.issuedByClass)
        by_class += c;
    EXPECT_EQ(by_class, expected);
}

TEST(Sm, PureIntNeverTouchesFp)
{
    std::vector<Program> programs(4, pureProgram(UnitClass::Int, 50));
    Sm sm(baseConfig(), programs, 1);
    const SmStats& s = sm.run();
    EXPECT_EQ(s.clusters[1][0].pg.busyCycles, 0u);
    EXPECT_EQ(s.clusters[1][1].pg.busyCycles, 0u);
    EXPECT_GT(s.clusters[0][0].pg.busyCycles, 0u);
    EXPECT_GT(s.clusters[0][1].pg.busyCycles, 0u)
        << "round-robin selection must spread over both clusters";
}

TEST(Sm, ChainProgramSerialises)
{
    // Every instruction depends on the previous one: at 4-cycle ALU
    // latency, 50 instructions need >= ~200 cycles.
    Sm sm(baseConfig(), {chainProgram(UnitClass::Int, 50)}, 1);
    const SmStats& s = sm.run();
    EXPECT_GE(s.cycles, 4u * 49u);
}

TEST(Sm, IpcNeverExceedsIssueWidth)
{
    auto programs = uniformMixWarps(16, 400, 0.4, 0.1, 0.2);
    Sm sm(baseConfig(), programs, 3);
    const SmStats& s = sm.run();
    double ipc = static_cast<double>(s.issuedTotal) /
                 static_cast<double>(s.cycles);
    EXPECT_LE(ipc, 2.0);
    EXPECT_GT(ipc, 0.1);
}

TEST(Sm, ActiveSetCapacityRespected)
{
    SmConfig cfg = baseConfig();
    cfg.activeSetCapacity = 8;
    std::vector<Program> programs(32, pureProgram(UnitClass::Int, 50));
    Sm sm(cfg, programs, 1);
    const SmStats& s = sm.run();
    EXPECT_LE(s.activeSizeMax, 8u);
    EXPECT_TRUE(s.completed);
}

TEST(Sm, MissLoadsDemoteWarpsToPending)
{
    // All loads miss: the active set must shrink below the warp count
    // while data is outstanding.
    auto programs = uniformMixWarps(16, 200, 0.2, 0.4, 1.0);
    Sm sm(baseConfig(), programs, 4);
    const SmStats& s = sm.run();
    EXPECT_GT(s.memMisses, 0u);
    EXPECT_LT(s.avgActiveWarps(), 15.0)
        << "pending demotion must depress the average active count";
    EXPECT_TRUE(s.completed);
}

TEST(Sm, DeterministicAcrossRuns)
{
    auto programs = uniformMixWarps(8, 300, 0.3, 0.25, 0.5);
    SmConfig cfg = baseConfig();
    cfg.pg.policy = PgPolicy::CoordinatedBlackout;
    cfg.scheduler = SchedulerPolicy::Gates;
    Sm a(cfg, programs, 7);
    Sm b(cfg, programs, 7);
    const SmStats& sa = a.run();
    const SmStats& sb = b.run();
    EXPECT_EQ(sa.cycles, sb.cycles);
    EXPECT_EQ(sa.issuedTotal, sb.issuedTotal);
    EXPECT_EQ(sa.clusters[0][0].pg.gatingEvents,
              sb.clusters[0][0].pg.gatingEvents);
    EXPECT_EQ(sa.clusters[1][1].pg.wakeups,
              sb.clusters[1][1].pg.wakeups);
}

TEST(Sm, MaxCyclesStopsRunaway)
{
    SmConfig cfg = baseConfig();
    cfg.maxCycles = 50;
    std::vector<Program> programs(4, pureProgram(UnitClass::Int, 10000));
    Sm sm(cfg, programs, 1);
    const SmStats& s = sm.run();
    EXPECT_FALSE(s.completed);
    EXPECT_EQ(s.cycles, 50u);
}

TEST(Sm, AllWarpsFinishedAfterRun)
{
    auto programs = uniformMixWarps(6, 100, 0.3, 0.2, 0.5);
    Sm sm(baseConfig(), programs, 9);
    sm.run();
    for (WarpId w = 0; w < sm.numWarps(); ++w)
        EXPECT_EQ(sm.warpLoc(w), WarpLoc::Finished) << "warp " << w;
}

TEST(Sm, BlackoutNeverWakesUncompensated)
{
    auto programs = uniformMixWarps(16, 500, 0.35, 0.2, 0.5);
    for (PgPolicy policy :
         {PgPolicy::NaiveBlackout, PgPolicy::CoordinatedBlackout}) {
        SmConfig cfg = baseConfig();
        cfg.scheduler = SchedulerPolicy::Gates;
        cfg.pg.policy = policy;
        Sm sm(cfg, programs, 5);
        const SmStats& s = sm.run();
        std::uint64_t gating = 0;
        for (unsigned t = 0; t < 2; ++t) {
            for (unsigned c = 0; c < 2; ++c) {
                EXPECT_EQ(s.clusters[t][c].pg.uncompWakeups, 0u)
                    << pgPolicyName(policy);
                gating += s.clusters[t][c].pg.gatingEvents;
            }
        }
        EXPECT_GT(gating, 0u) << "the workload must actually gate";
    }
}

TEST(Sm, ConventionalDoesWakeUncompensated)
{
    auto programs = uniformMixWarps(16, 500, 0.35, 0.2, 0.5);
    SmConfig cfg = baseConfig();
    cfg.pg.policy = PgPolicy::Conventional;
    Sm sm(cfg, programs, 5);
    const SmStats& s = sm.run();
    std::uint64_t uncomp = 0;
    for (unsigned t = 0; t < 2; ++t)
        for (unsigned c = 0; c < 2; ++c)
            uncomp += s.clusters[t][c].pg.uncompWakeups;
    EXPECT_GT(uncomp, 0u)
        << "interleaved types make early wakeups inevitable";
}

TEST(Sm, GatedCyclesRequireGatingPolicy)
{
    auto programs = uniformMixWarps(8, 300, 0.3, 0.2, 0.5);
    Sm sm(baseConfig(), programs, 5);
    const SmStats& s = sm.run();
    for (unsigned t = 0; t < 2; ++t)
        for (unsigned c = 0; c < 2; ++c)
            EXPECT_EQ(s.clusters[t][c].pg.gatedCycles(), 0u);
}

TEST(Sm, CycleAccountingPerCluster)
{
    auto programs = uniformMixWarps(8, 300, 0.3, 0.2, 0.5);
    SmConfig cfg = baseConfig();
    cfg.pg.policy = PgPolicy::Conventional;
    Sm sm(cfg, programs, 5);
    const SmStats& s = sm.run();
    for (unsigned t = 0; t < 2; ++t) {
        for (unsigned c = 0; c < 2; ++c) {
            const PgDomainStats& pg = s.clusters[t][c].pg;
            EXPECT_EQ(pg.busyCycles + pg.idleOnCycles + pg.uncompCycles +
                          pg.compCycles + pg.wakeupCycles,
                      s.cycles)
                << "type " << t << " cluster " << c;
        }
    }
}

/**
 * The paper's Fig. 4: twelve single-instruction warps (8 INT, 4 FP) in
 * the order INT INT FP INT FP INT INT INT INT FP FP INT, issue width 1.
 * The two-level scheduler interleaves the types; GATES issues all INT
 * instructions first, giving the FP pipeline one long leading idle
 * period instead of scattered bubbles.
 */
Cycle
firstFpBusyCycle(SchedulerPolicy policy)
{
    SmConfig cfg;
    cfg.pg.policy = PgPolicy::None;
    cfg.scheduler = policy;
    cfg.issueWidth = 1;
    Sm sm(cfg, fig4Warps(), 1);
    Cycle first_busy = kNeverCycle;
    while (!sm.done()) {
        sm.step();
        if (first_busy == kNeverCycle &&
            (sm.fpCluster(0).busy() || sm.fpCluster(1).busy()))
            first_busy = sm.now() - 1;
    }
    return first_busy;
}

TEST(Sm, Fig4GatesCoalescesInstructionTypes)
{
    Cycle twolevel = firstFpBusyCycle(SchedulerPolicy::TwoLevel);
    Cycle gates = firstFpBusyCycle(SchedulerPolicy::Gates);
    EXPECT_LE(twolevel, 3u)
        << "two-level issues the first FP within the first few cycles";
    EXPECT_GE(gates, 8u)
        << "GATES must issue all eight INT instructions first";
}

TEST(Sm, Fig4FewerFpIdlePeriodsUnderGates)
{
    auto run = [](SchedulerPolicy policy) {
        SmConfig cfg;
        cfg.pg.policy = PgPolicy::None;
        cfg.scheduler = policy;
        cfg.issueWidth = 1;
        Sm sm(cfg, fig4Warps(), 1);
        sm.run();
        return sm.stats().clusters[1][0].idleHist.total() +
               sm.stats().clusters[1][1].idleHist.total();
    };
    EXPECT_LT(run(SchedulerPolicy::Gates),
              run(SchedulerPolicy::TwoLevel))
        << "coalescing removes isolated pipeline bubbles";
}

TEST(Sm, PrioritySwitchesHappenUnderGates)
{
    auto programs = uniformMixWarps(16, 400, 0.4, 0.2, 0.4);
    SmConfig cfg = baseConfig();
    cfg.scheduler = SchedulerPolicy::Gates;
    Sm sm(cfg, programs, 3);
    const SmStats& s = sm.run();
    EXPECT_GT(s.prioritySwitches, 0u);
}

TEST(Sm, TwoLevelNeverSwitchesPriority)
{
    auto programs = uniformMixWarps(16, 400, 0.4, 0.2, 0.4);
    Sm sm(baseConfig(), programs, 3);
    const SmStats& s = sm.run();
    EXPECT_EQ(s.prioritySwitches, 0u);
}

TEST(Sm, DepthOneIbufferIssuesEveryInstruction)
{
    // Depth-1 buffers make every issue empty the ring: the regression
    // shape for the commitIssue head-aliasing bug, where post-issue
    // bookkeeping read the popped slot. Classes must still be counted
    // against the instruction that actually issued.
    SmConfig cfg = baseConfig();
    cfg.ibufferDepth = 1;
    cfg.scheduler = SchedulerPolicy::Gates;
    Sm sm(cfg, {alternatingProgram(40), alternatingProgram(40)}, 3);
    const SmStats& s = sm.run();
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.issuedTotal, 80u);
    EXPECT_EQ(s.issuedByClass[static_cast<std::size_t>(UnitClass::Int)],
              40u);
    EXPECT_EQ(s.issuedByClass[static_cast<std::size_t>(UnitClass::Fp)],
              40u);
}

/** Warp counts at mask boundaries: 1, half-word, 48, full 64-bit word. */
class SmWarpCount : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SmWarpCount, BoundaryWarpCountsDrain)
{
    const std::size_t warps = GetParam();
    SmConfig cfg = baseConfig();
    cfg.scheduler = SchedulerPolicy::Gates;
    cfg.pg.policy = PgPolicy::CoordinatedBlackout;
    auto programs = uniformMixWarps(warps, 60, 0.3, 0.2, 0.4);
    Sm sm(cfg, programs, 13);
    const SmStats& s = sm.run();
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.issuedTotal, totalInstructions(programs));
    for (WarpId w = 0; w < warps; ++w)
        EXPECT_EQ(sm.warpLoc(w), WarpLoc::Finished) << "warp " << w;
}

INSTANTIATE_TEST_SUITE_P(MaskBoundaries, SmWarpCount,
                         ::testing::Values(1u, 32u, 48u, 64u));

TEST(SmDeath, NoWarpsIsFatal)
{
    EXPECT_EXIT(Sm(baseConfig(), {}, 1), ::testing::ExitedWithCode(1),
                "no warps");
}

TEST(SmDeath, ZeroIssueWidthIsFatal)
{
    SmConfig cfg = baseConfig();
    cfg.issueWidth = 0;
    EXPECT_EXIT(Sm(cfg, {pureProgram(UnitClass::Int, 1)}, 1),
                ::testing::ExitedWithCode(1), "issue width");
}

TEST(SmDeath, TooManyWarpsIsFatal)
{
    std::vector<Program> programs(kMaxWarpsPerSm + 1,
                                  pureProgram(UnitClass::Int, 1));
    EXPECT_EXIT(Sm(baseConfig(), programs, 1),
                ::testing::ExitedWithCode(1), "bitmask capacity");
}

TEST(SmDeath, ZeroIbufferDepthIsFatal)
{
    SmConfig cfg = baseConfig();
    cfg.ibufferDepth = 0;
    EXPECT_EXIT(Sm(cfg, {pureProgram(UnitClass::Int, 1)}, 1),
                ::testing::ExitedWithCode(1), "i-buffer depth");
}

/** Property: every policy/scheduler combination drains every workload. */
class SmMatrix
    : public ::testing::TestWithParam<std::pair<SchedulerPolicy, PgPolicy>>
{
};

TEST_P(SmMatrix, WorkloadAlwaysDrains)
{
    auto [sched, pg] = GetParam();
    SmConfig cfg;
    cfg.scheduler = sched;
    cfg.pg.policy = pg;
    cfg.pg.adaptiveIdleDetect = pg == PgPolicy::CoordinatedBlackout;
    auto programs = uniformMixWarps(12, 300, 0.35, 0.25, 0.6);
    Sm sm(cfg, programs, 11);
    const SmStats& s = sm.run();
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.issuedTotal, totalInstructions(programs));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SmMatrix,
    ::testing::Values(
        std::make_pair(SchedulerPolicy::TwoLevel, PgPolicy::None),
        std::make_pair(SchedulerPolicy::TwoLevel, PgPolicy::Conventional),
        std::make_pair(SchedulerPolicy::Gates, PgPolicy::Conventional),
        std::make_pair(SchedulerPolicy::Gates, PgPolicy::NaiveBlackout),
        std::make_pair(SchedulerPolicy::Gates,
                       PgPolicy::CoordinatedBlackout),
        std::make_pair(SchedulerPolicy::TwoLevel,
                       PgPolicy::NaiveBlackout)));

} // namespace
} // namespace wg
