/**
 * @file
 * Unit and property tests for the benchmark-suite profiles.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/profile.hh"

namespace wg {
namespace {

TEST(Profiles, SuiteHasEighteenBenchmarks)
{
    EXPECT_EQ(benchmarkSuite().size(), 18u);
}

TEST(Profiles, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto& p : benchmarkSuite())
        EXPECT_TRUE(names.insert(p.name).second)
            << "duplicate benchmark " << p.name;
}

TEST(Profiles, PaperSuitePresent)
{
    // The 18 benchmarks of Section 7.1.
    const char* expected[] = {
        "backprop", "bfs", "btree", "cutcp", "gaussian", "heartwall",
        "hotspot", "kmeans", "lavaMD", "lbm", "LIB", "mri", "MUM",
        "NN", "nw", "sgemm", "srad", "WP"};
    for (const char* name : expected)
        EXPECT_NO_FATAL_FAILURE(findBenchmark(name)) << name;
}

TEST(Profiles, BenchmarkNamesMatchesSuite)
{
    auto names = benchmarkNames();
    EXPECT_EQ(names.size(), benchmarkSuite().size());
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(names[i], benchmarkSuite()[i].name);
}

TEST(ProfilesDeath, UnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(findBenchmark("not-a-benchmark"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Profiles, LavaMdIsIntegerOnly)
{
    EXPECT_TRUE(findBenchmark("lavaMD").isIntegerOnly());
}

TEST(Profiles, LowFpBenchmarksAreNotIntegerOnly)
{
    // The paper only excludes benchmarks with *no* FP activity from the
    // FP charts; bfs/MUM/nw have a sliver of FP and stay in.
    EXPECT_FALSE(findBenchmark("bfs").isIntegerOnly());
    EXPECT_FALSE(findBenchmark("MUM").isIntegerOnly());
    EXPECT_FALSE(findBenchmark("nw").isIntegerOnly());
    EXPECT_FALSE(findBenchmark("hotspot").isIntegerOnly());
}

/** Property checks over every suite profile. */
class SuiteProfile : public ::testing::TestWithParam<std::string>
{
  protected:
    const BenchmarkProfile& profile() { return findBenchmark(GetParam()); }
};

TEST_P(SuiteProfile, MixIsNormalised)
{
    const auto& p = profile();
    double sum = p.fracInt + p.fracFp + p.fracSfu + p.fracLdst;
    EXPECT_NEAR(sum, 1.0, 0.02) << p.name;
    EXPECT_GE(p.fracInt, 0.0);
    EXPECT_GE(p.fracFp, 0.0);
    EXPECT_GE(p.fracSfu, 0.0);
    EXPECT_GT(p.fracLdst, 0.0) << "every kernel touches memory";
}

TEST_P(SuiteProfile, WarpCountsAreFermiLegal)
{
    const auto& p = profile();
    EXPECT_GE(p.residentWarps, 1);
    EXPECT_LE(p.residentWarps, 48) << "Fermi supports 48 warps/SM";
    EXPECT_GE(p.ctaWarps, 1);
}

TEST_P(SuiteProfile, ProbabilitiesInRange)
{
    const auto& p = profile();
    EXPECT_GE(p.memMissRatio, 0.0);
    EXPECT_LE(p.memMissRatio, 1.0);
    EXPECT_GE(p.depProb, 0.0);
    EXPECT_LE(p.depProb, 1.0);
    EXPECT_GE(p.storeFrac, 0.0);
    EXPECT_LE(p.storeFrac, 1.0);
    EXPECT_GE(p.loadConsumeProb, 0.0);
    EXPECT_LE(p.loadConsumeProb, 1.0);
}

TEST_P(SuiteProfile, StructuralKnobsPositive)
{
    const auto& p = profile();
    EXPECT_GT(p.kernelLength, 0);
    EXPECT_GT(p.loadBurstMax, 0);
    EXPECT_GE(p.depWindow, 1);
    EXPECT_GE(p.phaseLen, 0);
    if (p.phaseLen > 0) {
        EXPECT_GT(p.phaseBias, 1.0) << "a phase must actually bias";
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteProfile,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto& info) { return info.param; });

} // namespace
} // namespace wg
