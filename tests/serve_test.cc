/**
 * @file
 * End-to-end serving tests, in-process over real loopback sockets:
 * submit/status/result/cancel/stats/drain, the OpenMetrics endpoint,
 * protocol robustness against garbage, and the served-equals-offline
 * byte-identity contract.
 */

#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "metrics/registry.hh"
#include "report/export.hh"
#include "serve/client.hh"
#include "serve/net.hh"
#include "serve/server.hh"

namespace {

using namespace wg;

ExperimentOptions
tinyOptions()
{
    ExperimentOptions opts;
    opts.numSms = 2;
    opts.seed = 3;
    return opts;
}

/** A running server + connected client, torn down via drain. */
class ServeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        runner_ = std::make_unique<ExperimentRunner>(
            ExperimentOptions{}, &ThreadPool::global());
        serve::ServerConfig config;
        config.pollTickMs = 20;
        config.jobs.queueCapacity = 8;
        server_ =
            std::make_unique<serve::Server>(*runner_, config);
        std::string error;
        ASSERT_TRUE(server_->start(error)) << error;
        serve_thread_ = std::thread([this] {
            std::string serve_error;
            EXPECT_TRUE(server_->serve(-1, serve_error))
                << serve_error;
        });
        ASSERT_TRUE(client_.connect(server_->port(), 2000, error))
            << error;
    }

    void TearDown() override
    {
        std::string error;
        if (client_.connected()) {
            EXPECT_TRUE(client_.drain(60000, error)) << error;
        }
        serve_thread_.join();
    }

    std::unique_ptr<ExperimentRunner> runner_;
    std::unique_ptr<serve::Server> server_;
    std::thread serve_thread_;
    serve::Client client_;
};

TEST_F(ServeTest, SubmitRunsAndResultsMatchOfflineExactly)
{
    SweepSpec spec({"hotspot"}, {Technique::WarpedGates},
                   tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    EXPECT_FALSE(deduped);

    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id, 20, 120000, status, error))
        << error;
    ASSERT_EQ(status.state, serve::JobState::Done);
    EXPECT_EQ(status.completedCells, 1u);
    EXPECT_EQ(status.totalCells, 1u);

    std::vector<serve::wire::ResultCell> cells;
    ASSERT_TRUE(client_.results(id, cells, error)) << error;
    ASSERT_EQ(cells.size(), 1u);

    // Served result == offline result, to the last bit: registry,
    // CSV row, JSON export, and the human summary.
    ExperimentRunner offline(tinyOptions(), nullptr);
    const SimResult& direct =
        offline.run("hotspot", Technique::WarpedGates);
    EXPECT_EQ(metrics::toStatSet(cells[0].result).entries(),
              metrics::toStatSet(direct).entries());
    EXPECT_EQ(toCsvRow("hotspot", cells[0].result),
              toCsvRow("hotspot", direct));
    EXPECT_EQ(toJson("hotspot", cells[0].result),
              toJson("hotspot", direct));
    std::ostringstream served_summary;
    std::ostringstream offline_summary;
    printSummary(served_summary, "hotspot", cells[0].result);
    printSummary(offline_summary, "hotspot", direct);
    EXPECT_EQ(served_summary.str(), offline_summary.str());
}

TEST_F(ServeTest, DuplicateSubmissionsFoldIntoOneJob)
{
    SweepSpec spec({"hotspot"}, {Technique::Baseline}, tinyOptions());
    std::string id1;
    std::string id2;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id1, deduped, error)) << error;
    EXPECT_FALSE(deduped);
    ASSERT_TRUE(client_.submit(spec, 0, id2, deduped, error)) << error;
    EXPECT_TRUE(deduped);
    EXPECT_EQ(id1, id2);

    std::map<std::string, double> stats;
    ASSERT_TRUE(client_.stats(stats, error)) << error;
    EXPECT_EQ(stats["serve.jobs.deduped"], 1.0);
    EXPECT_EQ(stats["serve.jobs.submitted"], 1.0);

    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id1, 20, 120000, status, error));
}

TEST_F(ServeTest, InvalidSubmissionsAreRejectedNotFatal)
{
    std::string id;
    std::string error;
    bool deduped = false;
    SweepSpec unknown_bench({"no-such-bench"}, {Technique::Baseline},
                            tinyOptions());
    EXPECT_FALSE(
        client_.submit(unknown_bench, 0, id, deduped, error));
    EXPECT_NE(error.find("unknown benchmark"), std::string::npos)
        << error;

    SweepSpec bad_priority({"hotspot"}, {Technique::Baseline},
                           tinyOptions());
    EXPECT_FALSE(
        client_.submit(bad_priority, 99, id, deduped, error));
    EXPECT_NE(error.find("priority"), std::string::npos) << error;

    // The daemon is still healthy afterwards.
    ASSERT_TRUE(client_.submit(bad_priority, 0, id, deduped, error))
        << error;
    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id, 20, 120000, status, error));
    EXPECT_EQ(status.state, serve::JobState::Done);
}

TEST_F(ServeTest, ProtocolSurvivesGarbageLines)
{
    serve::Fd raw;
    std::string error;
    raw = serve::connectTcp(server_->port(), 2000, error);
    ASSERT_TRUE(raw.valid()) << error;
    serve::LineReader reader(raw.get());

    auto exchange = [&](const std::string& request) {
        EXPECT_TRUE(serve::sendAll(raw.get(), request + "\n", error))
            << error;
        std::string line;
        EXPECT_EQ(reader.readLine(line, 10000, error),
                  serve::LineReader::Status::Line)
            << error;
        return line;
    };

    EXPECT_NE(exchange("this is not json").find("\"ok\":false"),
              std::string::npos);
    EXPECT_NE(exchange("{\"wire\":1}").find("missing string 'type'"),
              std::string::npos);
    EXPECT_NE(exchange("{\"wire\":99,\"type\":\"stats\"}")
                  .find("unsupported wire version 99"),
              std::string::npos);
    EXPECT_NE(exchange("{\"wire\":1,\"type\":\"frobnicate\"}")
                  .find("unknown request type"),
              std::string::npos);
    EXPECT_NE(exchange("{\"wire\":1,\"type\":\"cancel\",\"id\":\"j9\"}")
                  .find("unknown job"),
              std::string::npos);
    // After all that abuse the same connection still serves real
    // requests.
    EXPECT_NE(exchange("{\"wire\":1,\"type\":\"stats\"}")
                  .find("\"ok\":true"),
              std::string::npos);
}

TEST_F(ServeTest, ResultsForUnfinishedJobAreAnError)
{
    server_->jobs().pauseDispatch();
    SweepSpec spec({"hotspot"}, {Technique::ConvPG}, tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    std::vector<serve::wire::ResultCell> cells;
    EXPECT_FALSE(client_.results(id, cells, error));
    EXPECT_NE(error.find("results require state done"),
              std::string::npos)
        << error;
    server_->jobs().resumeDispatch();
    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id, 20, 120000, status, error));
}

TEST_F(ServeTest, QueuedJobCancelsImmediately)
{
    server_->jobs().pauseDispatch();
    SweepSpec spec({"hotspot"}, {Technique::NaiveBlackout},
                   tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    ASSERT_TRUE(client_.cancel(id, error)) << error;
    serve::JobStatus status;
    ASSERT_TRUE(client_.status(id, status, error)) << error;
    EXPECT_EQ(status.state, serve::JobState::Cancelled);
    // Cancelling a finished job is a clean error.
    EXPECT_FALSE(client_.cancel(id, error));
    EXPECT_NE(error.find("already finished"), std::string::npos);
    // A resubmission after cancellation gets a fresh job, not the
    // cancelled one.
    server_->jobs().resumeDispatch();
    std::string id2;
    ASSERT_TRUE(client_.submit(spec, 0, id2, deduped, error)) << error;
    EXPECT_FALSE(deduped);
    EXPECT_NE(id2, id);
    ASSERT_TRUE(client_.waitForJob(id2, 20, 120000, status, error));
    EXPECT_EQ(status.state, serve::JobState::Done);
}

TEST_F(ServeTest, MetricsEndpointSpeaksOpenMetrics)
{
    // Prime one job so the gauges are nonzero.
    SweepSpec spec({"hotspot"}, {Technique::Baseline}, tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    serve::JobStatus status;
    ASSERT_TRUE(client_.waitForJob(id, 20, 120000, status, error));

    serve::Fd raw = serve::connectTcp(server_->port(), 2000, error);
    ASSERT_TRUE(raw.valid()) << error;
    ASSERT_TRUE(serve::sendAll(
        raw.get(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", error));
    serve::LineReader reader(raw.get());
    std::string body;
    std::string line;
    for (;;) {
        serve::LineReader::Status st =
            reader.readLine(line, 10000, error);
        if (st != serve::LineReader::Status::Line)
            break;
        body += line + "\n";
    }
    EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(body.find("application/openmetrics-text"),
              std::string::npos);
    EXPECT_NE(body.find("wg_serve_jobs_completed 1"),
              std::string::npos)
        << body;
    EXPECT_NE(body.find("# EOF"), std::string::npos);
}

TEST_F(ServeTest, HttpForUnknownPathIs404)
{
    std::string error;
    serve::Fd raw = serve::connectTcp(server_->port(), 2000, error);
    ASSERT_TRUE(raw.valid()) << error;
    ASSERT_TRUE(serve::sendAll(
        raw.get(), "GET /nope HTTP/1.1\r\n\r\n", error));
    serve::LineReader reader(raw.get());
    std::string line;
    ASSERT_EQ(reader.readLine(line, 10000, error),
              serve::LineReader::Status::Line)
        << error;
    EXPECT_NE(line.find("404"), std::string::npos);
}

TEST_F(ServeTest, DrainFinishesQueuedWorkThenRejects)
{
    SweepSpec spec({"hotspot"},
                   {Technique::Baseline, Technique::WarpedGates},
                   tinyOptions());
    std::string id;
    std::string error;
    bool deduped = false;
    ASSERT_TRUE(client_.submit(spec, 0, id, deduped, error)) << error;
    ASSERT_TRUE(client_.drain(120000, error)) << error;
    serve_thread_.join();
    serve_thread_ = std::thread([] {}); // TearDown joins once more

    // Drain completed the job before shutting down.
    EXPECT_TRUE(server_->jobs().draining());
    std::vector<serve::JobCell> cells;
    ExperimentOptions opts_used;
    ASSERT_TRUE(server_->jobs().results(id, cells, opts_used, error))
        << error;
    EXPECT_EQ(cells.size(), 2u);

    // Post-drain submissions are rejected, not queued.
    auto outcome = server_->jobs().submit(spec, 0);
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("draining"), std::string::npos);
    client_ = serve::Client(); // connection is gone; skip TearDown drain
}

} // namespace
