/**
 * @file
 * Unit tests for the technique presets.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"

namespace wg {
namespace {

TEST(Presets, NamesMatchPaper)
{
    EXPECT_STREQ(techniqueName(Technique::Baseline), "Baseline");
    EXPECT_STREQ(techniqueName(Technique::ConvPG), "ConvPG");
    EXPECT_STREQ(techniqueName(Technique::Gates), "GATES");
    EXPECT_STREQ(techniqueName(Technique::NaiveBlackout),
                 "NaiveBlackout");
    EXPECT_STREQ(techniqueName(Technique::CoordinatedBlackout),
                 "CoordBlackout");
    EXPECT_STREQ(techniqueName(Technique::WarpedGates), "WarpedGates");
}

TEST(Presets, AllTechniquesInPresentationOrder)
{
    const auto& all = allTechniques();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all.front(), Technique::Baseline);
    EXPECT_EQ(all.back(), Technique::WarpedGates);
}

TEST(Presets, BaselineHasNoGating)
{
    GpuConfig cfg = makeConfig(Technique::Baseline);
    EXPECT_EQ(cfg.sm.scheduler, SchedulerPolicy::TwoLevel);
    EXPECT_EQ(cfg.sm.pg.policy, PgPolicy::None);
    EXPECT_FALSE(cfg.sm.pg.adaptiveIdleDetect);
}

TEST(Presets, ConvPgUsesTwoLevel)
{
    GpuConfig cfg = makeConfig(Technique::ConvPG);
    EXPECT_EQ(cfg.sm.scheduler, SchedulerPolicy::TwoLevel);
    EXPECT_EQ(cfg.sm.pg.policy, PgPolicy::Conventional);
}

TEST(Presets, GatesKeepsConventionalGating)
{
    GpuConfig cfg = makeConfig(Technique::Gates);
    EXPECT_EQ(cfg.sm.scheduler, SchedulerPolicy::Gates);
    EXPECT_EQ(cfg.sm.pg.policy, PgPolicy::Conventional);
}

TEST(Presets, BlackoutVariantsBuildOnGates)
{
    for (Technique t : {Technique::NaiveBlackout,
                        Technique::CoordinatedBlackout,
                        Technique::WarpedGates}) {
        GpuConfig cfg = makeConfig(t);
        EXPECT_EQ(cfg.sm.scheduler, SchedulerPolicy::Gates)
            << techniqueName(t);
    }
    EXPECT_EQ(makeConfig(Technique::NaiveBlackout).sm.pg.policy,
              PgPolicy::NaiveBlackout);
    EXPECT_EQ(makeConfig(Technique::CoordinatedBlackout).sm.pg.policy,
              PgPolicy::CoordinatedBlackout);
}

TEST(Presets, WarpedGatesIsCoordinatedPlusAdaptive)
{
    GpuConfig cfg = makeConfig(Technique::WarpedGates);
    EXPECT_EQ(cfg.sm.pg.policy, PgPolicy::CoordinatedBlackout);
    EXPECT_TRUE(cfg.sm.pg.adaptiveIdleDetect);
}

TEST(Presets, OptionsPropagate)
{
    ExperimentOptions opts;
    opts.numSms = 3;
    opts.seed = 99;
    opts.idleDetect = 8;
    opts.breakEven = 19;
    opts.wakeupDelay = 6;
    GpuConfig cfg = makeConfig(Technique::WarpedGates, opts);
    EXPECT_EQ(cfg.numSms, 3u);
    EXPECT_EQ(cfg.seed, 99u);
    EXPECT_EQ(cfg.sm.pg.idleDetect, 8u);
    EXPECT_EQ(cfg.sm.pg.breakEven, 19u);
    EXPECT_EQ(cfg.sm.pg.wakeupDelay, 6u);
}

TEST(Presets, PaperDefaultParameters)
{
    // Section 7.1: idle-detect 5, BET 14, wakeup 3.
    ExperimentOptions opts;
    EXPECT_EQ(opts.idleDetect, 5u);
    EXPECT_EQ(opts.breakEven, 14u);
    EXPECT_EQ(opts.wakeupDelay, 3u);
    GpuConfig cfg = makeConfig(Technique::ConvPG);
    EXPECT_EQ(cfg.sm.issueWidth, 2u);
    EXPECT_EQ(cfg.sm.activeSetCapacity, 32u);
    EXPECT_EQ(cfg.sm.alu.latency, 4u);
    EXPECT_EQ(cfg.sm.alu.initiationInterval, 1u);
}

TEST(Presets, SchedulerPolicyNames)
{
    EXPECT_STREQ(schedulerPolicyName(SchedulerPolicy::TwoLevel),
                 "two-level");
    EXPECT_STREQ(schedulerPolicyName(SchedulerPolicy::Gates), "gates");
}

} // namespace
} // namespace wg
