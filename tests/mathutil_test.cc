/**
 * @file
 * Unit tests for the statistical helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.hh"

namespace wg {
namespace {

TEST(Pearson, PerfectPositiveCorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeCorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, AffineInvariance)
{
    std::vector<double> xs = {1, 3, 2, 5, 4};
    std::vector<double> ys = {2, 8, 3, 9, 7};
    double base = pearson(xs, ys);
    std::vector<double> scaled;
    for (double y : ys)
        scaled.push_back(3.0 * y + 11.0);
    EXPECT_NEAR(pearson(xs, scaled), base, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero)
{
    std::vector<double> xs = {1, 1, 1};
    std::vector<double> ys = {1, 2, 3};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
    EXPECT_DOUBLE_EQ(pearson(ys, xs), 0.0);
}

TEST(Pearson, TooFewPointsGivesZero)
{
    EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({1.0}, {2.0}), 0.0);
}

TEST(Pearson, KnownValue)
{
    // Hand-computed: sxy=6, sxx=5, syy=8 -> r = 6/sqrt(40).
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {1, 3, 3, 5};
    EXPECT_NEAR(pearson(xs, ys), 0.948683, 1e-5);
}

TEST(Pearson, BoundedByOne)
{
    std::vector<double> xs = {0.3, 9.1, 4.4, 2.2, 7.7, 5.0};
    std::vector<double> ys = {1.1, 0.2, 8.8, 3.3, 6.6, 2.0};
    double r = pearson(xs, ys);
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
}

TEST(PearsonDeath, SizeMismatchPanics)
{
    std::vector<double> xs = {1, 2};
    std::vector<double> ys = {1};
    EXPECT_DEATH(pearson(xs, ys), "size mismatch");
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({4.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, ClampsNonPositive)
{
    // A zero must not wipe the result to 0 exactly, but it drags it
    // toward the epsilon floor.
    double g = geomean({0.0, 100.0});
    EXPECT_GT(g, 0.0);
    EXPECT_LT(g, 1.0);
}

TEST(Geomean, LeqArithmeticMean)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 10.0};
    EXPECT_LE(geomean(xs), mean(xs));
}

TEST(Mean, Basics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Clamp, Basics)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(11.0, 0.0, 10.0), 10.0);
    EXPECT_DOUBLE_EQ(clamp(3.0, 3.0, 3.0), 3.0);
}

} // namespace
} // namespace wg
