/**
 * @file
 * Unit tests for the shared work-stealing thread pool: result
 * delivery, exception propagation, nested fan-out (the Gpu-inside-
 * ExperimentRunner shape), and deadlock-freedom at pool size 1.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/threadpool.hh"

namespace wg {
namespace {

TEST(ThreadPool, GlobalPoolSizedToHardware)
{
    ThreadPool& pool = ThreadPool::global();
    EXPECT_GE(pool.size(), 1u);
    unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) {
        EXPECT_EQ(pool.size(), hw);
    }
    EXPECT_EQ(&pool, &ThreadPool::global()) << "one shared instance";
}

TEST(ThreadPool, SubmitReturnsResults)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(pool.wait(f), 42);
}

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(3);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futs;
    for (int i = 1; i <= 100; ++i)
        futs.push_back(pool.submit([&sum, i] { sum += i; }));
    for (auto& f : futs)
        pool.wait(f);
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, WaitAllPreservesOrder)
{
    ThreadPool pool(2);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 20; ++i)
        futs.push_back(pool.submit([i] { return i * i; }));
    std::vector<int> out = pool.waitAll(futs);
    ASSERT_EQ(out.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(1);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(f), std::runtime_error);
}

TEST(ThreadPool, NestedFanOutDoesNotDeadlockAtSizeOne)
{
    // The critical shape: a pool task fans sub-tasks into the same
    // pool and blocks on them. With one worker this can only complete
    // if wait() helps execute queued work.
    ThreadPool pool(1);
    auto outer = pool.submit([&pool] {
        std::vector<std::future<int>> inner;
        for (int i = 0; i < 8; ++i)
            inner.push_back(pool.submit([i] { return i; }));
        int sum = 0;
        for (auto& f : inner)
            sum += pool.wait(f);
        return sum;
    });
    EXPECT_EQ(pool.wait(outer), 28);
}

TEST(ThreadPool, TwoLevelNestingDrains)
{
    // Sweep shape: simulations fan per-SM jobs, several simulations in
    // flight at once, pool smaller than the task count.
    ThreadPool pool(2);
    std::vector<std::future<int>> sims;
    for (int s = 0; s < 6; ++s) {
        sims.push_back(pool.submit([&pool, s] {
            std::vector<std::future<int>> sm_jobs;
            for (int k = 0; k < 4; ++k)
                sm_jobs.push_back(
                    pool.submit([s, k] { return s * 10 + k; }));
            int total = 0;
            for (auto& f : sm_jobs)
                total += pool.wait(f);
            return total;
        }));
    }
    int grand = 0;
    for (auto& f : sims)
        grand += pool.wait(f);
    // sum over s of (40s + 6)
    EXPECT_EQ(grand, 40 * 15 + 6 * 6);
}

TEST(ThreadPool, TryRunOneFromOutsideHelps)
{
    ThreadPool pool(1);
    std::atomic<bool> block{true};
    // Occupy the single worker...
    auto hog = pool.submit([&block] {
        while (block.load())
            std::this_thread::yield();
    });
    // ...then drain a queued task from the caller thread.
    std::atomic<bool> ran{false};
    auto f = pool.submit([&ran] { ran = true; });
    while (!ran.load()) {
        if (!pool.tryRunOne())
            std::this_thread::yield();
    }
    EXPECT_TRUE(ran.load());
    block = false;
    pool.wait(hog);
    pool.wait(f);
}

TEST(ThreadPool, DestructionDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ran++; });
    }
    EXPECT_EQ(ran.load(), 50) << "destructor joins after draining";
}

TEST(ThreadPool, DrainWaitsForQueuedAndRunning)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::atomic<bool> gate{false};
    for (int i = 0; i < 32; ++i)
        pool.submit([&ran, &gate] {
            while (!gate.load())
                std::this_thread::yield();
            ran++;
        });
    EXPECT_FALSE(pool.draining());
    gate = true;
    pool.drain();
    EXPECT_EQ(ran.load(), 32)
        << "drain must return only after every queued task ran";
    EXPECT_TRUE(pool.draining());
}

TEST(ThreadPool, DrainRejectsExternalSubmits)
{
    ThreadPool pool(2);
    pool.drain();
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
    // The rejection is permanent (drain is terminal) and repeatable.
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
    pool.drain(); // idempotent
}

TEST(ThreadPool, DrainAcceptsNestedFanOutFromRunningTasks)
{
    // The SIGTERM shape: a simulation is mid-flight when the drain
    // begins, and it must still be able to fan its per-SM jobs into
    // the pool — rejecting those would deadlock the drain.
    ThreadPool pool(2);
    std::atomic<bool> started{false};
    std::atomic<bool> go{false};
    std::atomic<int> nested_ran{0};
    std::atomic<bool> nested_threw{false};
    auto outer = pool.submit([&] {
        started = true;
        while (!go.load())
            std::this_thread::yield();
        try {
            std::vector<std::future<void>> inner;
            for (int i = 0; i < 8; ++i)
                inner.push_back(
                    pool.submit([&nested_ran] { nested_ran++; }));
            for (auto& f : inner)
                pool.wait(f);
        } catch (const std::runtime_error&) {
            nested_threw = true;
        }
    });
    while (!started.load())
        std::this_thread::yield();
    std::thread drainer([&pool] { pool.drain(); });
    while (!pool.draining())
        std::this_thread::yield();
    go = true; // outer now fans out against a draining pool
    drainer.join();
    EXPECT_FALSE(nested_threw.load())
        << "nested submissions must be accepted during drain";
    EXPECT_EQ(nested_ran.load(), 8);
    pool.wait(outer);
}

TEST(ThreadPool, DrainWithEmptyPoolReturnsImmediately)
{
    ThreadPool pool(1);
    pool.drain();
    EXPECT_TRUE(pool.draining());
}

TEST(ThreadPool, StatsReportThreadsTasksAndIdleState)
{
    ThreadPool pool(3);
    PoolStats before = pool.stats();
    EXPECT_EQ(before.threads, 3u);
    EXPECT_EQ(before.tasksExecuted, 0u);
    EXPECT_FALSE(before.draining);

    std::vector<std::future<int>> futs;
    for (int i = 0; i < 32; ++i)
        futs.push_back(pool.submit([i] { return i; }));
    pool.waitAll(futs);

    PoolStats after = pool.stats();
    EXPECT_EQ(after.tasksExecuted, 32u);
    EXPECT_GE(after.busySeconds, 0.0);
    // All tasks joined: nothing queued, nothing executing.
    EXPECT_EQ(after.queueDepth, 0u);
    EXPECT_EQ(after.active, 0u);
    // Steals are timing-dependent; the counter only ever grows.
    EXPECT_GE(after.steals, before.steals);
}

TEST(ThreadPool, StatsSeeDrainState)
{
    ThreadPool pool(2);
    pool.drain();
    EXPECT_TRUE(pool.stats().draining);
}

} // namespace
} // namespace wg
