/**
 * @file
 * Unit tests for the SoA warp set (ring i-buffer, residency /
 * fetchable / drained masks, per-class buffer counts).
 */

#include <gtest/gtest.h>

#include "sched/warp.hh"
#include "workload/synthetic.hh"

namespace wg {
namespace {

TEST(WarpSet, InitResetsState)
{
    std::vector<Program> progs = {pureProgram(UnitClass::Int, 5)};
    WarpSet ws;
    ws.init(progs, 2);
    EXPECT_EQ(ws.size(), 1u);
    EXPECT_EQ(ws.depth(), 2u);
    EXPECT_EQ(ws.loc(0), WarpLoc::Waiting);
    EXPECT_EQ(ws.locMask(WarpLoc::Waiting), warpBit(0));
    EXPECT_EQ(ws.locMask(WarpLoc::Active), 0u);
    EXPECT_FALSE(ws.hasHead(0));
    EXPECT_EQ(ws.pc(0), 0u);
    EXPECT_EQ(ws.outstanding(0), 0u);
    EXPECT_FALSE(ws.drained(0)) << "five instructions still to fetch";
    EXPECT_EQ(ws.fetchable(), warpBit(0));
}

TEST(WarpSet, FetchFillsToDepth)
{
    std::vector<Program> progs = {pureProgram(UnitClass::Int, 5)};
    WarpSet ws;
    ws.init(progs, 2);
    EXPECT_EQ(ws.fetch(0), 2u);
    EXPECT_TRUE(ws.hasHead(0));
    EXPECT_EQ(ws.bufSize(0), 2u);
    EXPECT_EQ(ws.pc(0), 2u);
    EXPECT_TRUE(ws.fetchDone(0)) << "buffer full";
    EXPECT_EQ(ws.fetch(0), 0u) << "already full";
}

TEST(WarpSet, PopHeadAdvancesRing)
{
    std::vector<Program> progs = {alternatingProgram(4)};
    WarpSet ws;
    ws.init(progs, 2);
    ws.fetch(0);
    EXPECT_EQ(ws.head(0).unit, UnitClass::Int);
    EXPECT_EQ(ws.headClass(0), UnitClass::Int) << "cached head class";
    ws.popHead(0);
    EXPECT_EQ(ws.head(0).unit, UnitClass::Fp);
    EXPECT_EQ(ws.headClass(0), UnitClass::Fp);
    EXPECT_FALSE(ws.fetchDone(0)) << "popHead opened a slot";
    ws.fetch(0);
    EXPECT_EQ(ws.bufSize(0), 2u);
    EXPECT_EQ(ws.pc(0), 3u);
}

TEST(WarpSet, RingWrapsAtDepthOne)
{
    // Depth-1 ring: every pop empties the buffer and every fetch
    // refills slot 0 — the regression shape for the commitIssue
    // head-aliasing bug (the head must be fully consumed before pop).
    std::vector<Program> progs = {alternatingProgram(6)};
    WarpSet ws;
    ws.init(progs, 1);
    UnitClass expect[] = {UnitClass::Int, UnitClass::Fp};
    for (int i = 0; i < 6; ++i) {
        ASSERT_EQ(ws.fetch(0), 1u) << i;
        ASSERT_TRUE(ws.hasHead(0));
        EXPECT_EQ(ws.headClass(0), expect[i % 2]) << i;
        EXPECT_EQ(ws.head(0).regMask(), ws.headRegMask(0)) << i;
        ws.popHead(0);
        EXPECT_FALSE(ws.hasHead(0));
    }
    EXPECT_EQ(ws.fetch(0), 0u) << "program exhausted";
    EXPECT_TRUE(ws.drained(0));
}

TEST(WarpSet, FetchStopsAtProgramEnd)
{
    std::vector<Program> progs = {pureProgram(UnitClass::Fp, 3)};
    WarpSet ws;
    ws.init(progs, 8);
    ws.fetch(0);
    EXPECT_EQ(ws.bufSize(0), 3u);
    EXPECT_EQ(ws.pc(0), 3u);
    EXPECT_TRUE(ws.fetchDone(0)) << "program exhausted";
    ws.popHead(0);
    ws.popHead(0);
    ws.popHead(0);
    EXPECT_EQ(ws.fetch(0), 0u);
    EXPECT_FALSE(ws.hasHead(0));
}

TEST(WarpSet, DrainedRequiresEverything)
{
    std::vector<Program> progs = {pureProgram(UnitClass::Int, 1)};
    WarpSet ws;
    ws.init(progs, 2);
    ws.fetch(0);
    EXPECT_FALSE(ws.drained(0)) << "instruction in the buffer";
    ws.noteIssue(0);
    ws.popHead(0);
    EXPECT_FALSE(ws.drained(0)) << "instruction in flight";
    EXPECT_EQ(ws.drainedMask(), 0u);
    ws.noteComplete(0);
    EXPECT_TRUE(ws.drained(0));
    EXPECT_EQ(ws.drainedMask(), warpBit(0));
}

TEST(WarpSet, OutstandingCountsNest)
{
    std::vector<Program> progs = {Program{}};
    WarpSet ws;
    ws.init(progs, 2);
    EXPECT_TRUE(ws.drained(0)) << "empty program drains immediately";
    ws.noteIssue(0);
    ws.noteIssue(0);
    EXPECT_EQ(ws.outstanding(0), 2u);
    EXPECT_FALSE(ws.drained(0));
    ws.noteComplete(0);
    EXPECT_EQ(ws.outstanding(0), 1u);
    ws.noteComplete(0);
    EXPECT_TRUE(ws.drained(0));
}

TEST(WarpSet, LocTransitionsMaintainMasks)
{
    std::vector<Program> progs = {Program{}, Program{}, Program{}};
    WarpSet ws;
    ws.init(progs, 2);
    EXPECT_EQ(ws.locMask(WarpLoc::Waiting), 0b111u);
    ws.setLoc(1, WarpLoc::Active);
    EXPECT_EQ(ws.loc(1), WarpLoc::Active);
    EXPECT_EQ(ws.locMask(WarpLoc::Active), warpBit(1));
    EXPECT_EQ(ws.locMask(WarpLoc::Waiting), warpBit(0) | warpBit(2));
    ws.setLoc(1, WarpLoc::Pending);
    EXPECT_EQ(ws.locMask(WarpLoc::Active), 0u);
    EXPECT_EQ(ws.locMask(WarpLoc::Pending), warpBit(1));
    ws.setLoc(1, WarpLoc::Finished);
    EXPECT_EQ(ws.locMask(WarpLoc::Finished), warpBit(1));
}

TEST(WarpSet, PerClassBufferCountsTrackFetchAndPop)
{
    std::vector<Program> progs = {alternatingProgram(4)};
    WarpSet ws;
    ws.init(progs, 4);
    ws.fetch(0);
    EXPECT_EQ(ws.bufCount(0, UnitClass::Int), 2u);
    EXPECT_EQ(ws.bufCount(0, UnitClass::Fp), 2u);
    ws.popHead(0); // INT head leaves
    EXPECT_EQ(ws.bufCount(0, UnitClass::Int), 1u);
    EXPECT_EQ(ws.bufCount(0, UnitClass::Fp), 2u);
}

TEST(WarpSet, FetchAccumulatesActvCounters)
{
    std::vector<Program> progs = {alternatingProgram(4)};
    WarpSet ws;
    ws.init(progs, 4);
    std::uint32_t actv[kNumUnitClasses] = {};
    ws.fetch(0, actv);
    EXPECT_EQ(actv[static_cast<std::size_t>(UnitClass::Int)], 2u);
    EXPECT_EQ(actv[static_cast<std::size_t>(UnitClass::Fp)], 2u);
    EXPECT_EQ(actv[static_cast<std::size_t>(UnitClass::Ldst)], 0u);
}

TEST(WarpSet, BufferedIteratesInIssueOrder)
{
    std::vector<Program> progs = {alternatingProgram(5)};
    WarpSet ws;
    ws.init(progs, 3);
    ws.fetch(0);
    ws.popHead(0); // ring head is now slot 1 of 3
    ws.fetch(0);   // wraps: slot 0 holds the newest entry
    ASSERT_EQ(ws.bufSize(0), 3u);
    // Program order: Int Fp Int Fp Int; entries 1..3 remain.
    EXPECT_EQ(ws.buffered(0, 0).unit, UnitClass::Fp);
    EXPECT_EQ(ws.buffered(0, 1).unit, UnitClass::Int);
    EXPECT_EQ(ws.buffered(0, 2).unit, UnitClass::Fp);
}

} // namespace
} // namespace wg
