/**
 * @file
 * Unit tests for the warp execution context.
 */

#include <gtest/gtest.h>

#include "sched/warp.hh"
#include "workload/synthetic.hh"

namespace wg {
namespace {

TEST(Warp, InitResetsState)
{
    Program prog = pureProgram(UnitClass::Int, 5);
    WarpContext w;
    w.init(3, &prog);
    EXPECT_EQ(w.id(), 3u);
    EXPECT_EQ(w.loc(), WarpLoc::Waiting);
    EXPECT_FALSE(w.hasHead());
    EXPECT_EQ(w.pc(), 0u);
    EXPECT_EQ(w.outstanding(), 0u);
    EXPECT_FALSE(w.drained()) << "five instructions still to fetch";
}

TEST(Warp, FetchFillsToDepth)
{
    Program prog = pureProgram(UnitClass::Int, 5);
    WarpContext w;
    w.init(0, &prog);
    w.fetch(2);
    EXPECT_TRUE(w.hasHead());
    EXPECT_EQ(w.ibuffer().size(), 2u);
    EXPECT_EQ(w.pc(), 2u);
    w.fetch(2);
    EXPECT_EQ(w.ibuffer().size(), 2u) << "already full";
}

TEST(Warp, PopHeadAdvances)
{
    Program prog = alternatingProgram(4);
    WarpContext w;
    w.init(0, &prog);
    w.fetch(2);
    EXPECT_EQ(w.head().unit, UnitClass::Int);
    w.popHead();
    EXPECT_EQ(w.head().unit, UnitClass::Fp);
    w.fetch(2);
    EXPECT_EQ(w.ibuffer().size(), 2u);
    EXPECT_EQ(w.pc(), 3u);
}

TEST(Warp, FetchStopsAtProgramEnd)
{
    Program prog = pureProgram(UnitClass::Fp, 3);
    WarpContext w;
    w.init(0, &prog);
    w.fetch(8);
    EXPECT_EQ(w.ibuffer().size(), 3u);
    EXPECT_EQ(w.pc(), 3u);
    w.popHead();
    w.popHead();
    w.popHead();
    w.fetch(8);
    EXPECT_FALSE(w.hasHead());
}

TEST(Warp, DrainedRequiresEverything)
{
    Program prog = pureProgram(UnitClass::Int, 1);
    WarpContext w;
    w.init(0, &prog);
    w.fetch(2);
    EXPECT_FALSE(w.drained()) << "instruction in the buffer";
    w.noteIssue();
    w.popHead();
    EXPECT_FALSE(w.drained()) << "instruction in flight";
    w.noteComplete();
    EXPECT_TRUE(w.drained());
}

TEST(Warp, OutstandingCountsNest)
{
    WarpContext w;
    w.init(0, nullptr);
    w.noteIssue();
    w.noteIssue();
    EXPECT_EQ(w.outstanding(), 2u);
    w.noteComplete();
    EXPECT_EQ(w.outstanding(), 1u);
    w.noteComplete();
    EXPECT_TRUE(w.drained());
}

TEST(Warp, LocTransitions)
{
    WarpContext w;
    w.init(0, nullptr);
    w.setLoc(WarpLoc::Active);
    EXPECT_EQ(w.loc(), WarpLoc::Active);
    w.setLoc(WarpLoc::Pending);
    EXPECT_EQ(w.loc(), WarpLoc::Pending);
    w.setLoc(WarpLoc::Finished);
    EXPECT_EQ(w.loc(), WarpLoc::Finished);
}

} // namespace
} // namespace wg
