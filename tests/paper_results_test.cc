/**
 * @file
 * End-to-end tests asserting the paper's headline qualitative claims.
 * These run real (small: 2-SM) simulations of the hotspot workload —
 * the paper's own running example — and check that every mechanism
 * produces the effect the paper reports.
 */

#include <gtest/gtest.h>

#include "core/warped_gates.hh"

namespace wg {
namespace {

class PaperResults : public ::testing::Test
{
  protected:
    static ExperimentRunner&
    runner()
    {
        static ExperimentRunner instance([] {
            ExperimentOptions opts;
            opts.numSms = 2;
            return opts;
        }());
        return instance;
    }

    static const SimResult& run(Technique t)
    {
        return runner().run("hotspot", t);
    }
};

TEST_F(PaperResults, BaselineIdlePeriodsAreMostlyShort)
{
    // Fig. 3a: the bulk of idle periods fall inside the idle-detect
    // window under the two-level scheduler.
    const SimResult& r = run(Technique::ConvPG);
    auto regions = r.idleRegions(UnitClass::Int, 5, 14);
    EXPECT_GT(regions[0], 0.4);
    EXPECT_GT(regions[0], regions[2]);
}

TEST_F(PaperResults, BlackoutEliminatesTheNetLossRegion)
{
    // Fig. 3c: with blackout, no idle period can end inside
    // (idle-detect, idle-detect + BET] — gated units stay gated.
    const SimResult& r = run(Technique::NaiveBlackout);
    auto regions = r.idleRegions(UnitClass::Int, 5, 14);
    // Only end-of-simulation idle runs truncated by the drain can land
    // in the mid region; blackout forbids everything else.
    EXPECT_LT(regions[1], 0.005);
    EXPECT_GT(regions[2], 0.2);
}

TEST_F(PaperResults, ConventionalGatingSavesStaticEnergy)
{
    const SimResult& r = run(Technique::ConvPG);
    EXPECT_GT(r.intEnergy.staticSavingsRatio(), 0.05);
    EXPECT_GT(r.fpEnergy.staticSavingsRatio(), 0.05);
}

TEST_F(PaperResults, WarpedGatesBeatsConventionalGating)
{
    // The headline: ~1.5x the savings of conventional gating.
    const SimResult& conv = run(Technique::ConvPG);
    const SimResult& warped = run(Technique::WarpedGates);
    EXPECT_GT(warped.intEnergy.staticSavingsRatio(),
              conv.intEnergy.staticSavingsRatio());
    EXPECT_GT(warped.fpEnergy.staticSavingsRatio(),
              conv.fpEnergy.staticSavingsRatio());
}

TEST_F(PaperResults, CoordinatedBeatsNaivePerformance)
{
    const SimResult& base = run(Technique::Baseline);
    const SimResult& naive = run(Technique::NaiveBlackout);
    const SimResult& coord = run(Technique::CoordinatedBlackout);
    EXPECT_LE(normalizedRuntime(coord, base),
              normalizedRuntime(naive, base) + 0.005)
        << "the second-cluster veto avoids naive blackout's stalls";
}

TEST_F(PaperResults, PerformanceLossIsSmall)
{
    // Fig. 10: every technique stays within a few percent of baseline;
    // Warped Gates is virtually free.
    const SimResult& base = run(Technique::Baseline);
    for (Technique t : {Technique::ConvPG, Technique::Gates,
                        Technique::CoordinatedBlackout,
                        Technique::WarpedGates}) {
        EXPECT_LT(normalizedRuntime(run(t), base), 1.04)
            << techniqueName(t);
    }
    EXPECT_LT(normalizedRuntime(run(Technique::WarpedGates), base), 1.02);
}

TEST_F(PaperResults, WarpedGatesReducesWakeups)
{
    // Fig. 8c: Warped Gates roughly halves the wakeup count.
    const SimResult& conv = run(Technique::ConvPG);
    const SimResult& warped = run(Technique::WarpedGates);
    EXPECT_LT(warped.wakeups(UnitClass::Int),
              conv.wakeups(UnitClass::Int));
    EXPECT_LT(warped.wakeups(UnitClass::Fp),
              conv.wakeups(UnitClass::Fp));
}

TEST_F(PaperResults, BlackoutNeverWakesUncompensated)
{
    for (Technique t : {Technique::NaiveBlackout,
                        Technique::CoordinatedBlackout,
                        Technique::WarpedGates}) {
        const SimResult& r = run(t);
        EXPECT_EQ(r.typeStats(UnitClass::Int).uncompWakeups, 0u)
            << techniqueName(t);
        EXPECT_EQ(r.typeStats(UnitClass::Fp).uncompWakeups, 0u)
            << techniqueName(t);
    }
}

TEST_F(PaperResults, ConventionalWakesUncompensatedOften)
{
    // Fig. 1b's "overhead" bar exists because conventional gating pays
    // for gatings it cannot recoup.
    const SimResult& conv = run(Technique::ConvPG);
    PgDomainStats s = conv.typeStats(UnitClass::Int);
    EXPECT_GT(s.uncompWakeups, s.wakeups / 4);
}

TEST_F(PaperResults, BaselineFpIsStaticDominated)
{
    // Fig. 1b: static energy is ~90% of FP-unit energy and ~half of
    // INT-unit energy (suite averages; hotspot is close).
    const SimResult& base = run(Technique::Baseline);
    double fp_static =
        base.fpEnergy.staticE / base.fpEnergy.total();
    double int_static =
        base.intEnergy.staticE / base.intEnergy.total();
    EXPECT_GT(fp_static, 0.7);
    EXPECT_GT(int_static, 0.3);
    EXPECT_LT(int_static, 0.8);
}

TEST_F(PaperResults, AdaptiveIdleDetectStaysBounded)
{
    const SimResult& warped = run(Technique::WarpedGates);
    for (unsigned t = 0; t < 2; ++t) {
        EXPECT_GE(warped.aggregate.finalIdleDetect[t], 5u);
        EXPECT_LE(warped.aggregate.finalIdleDetect[t], 10u);
    }
}

TEST_F(PaperResults, AdaptiveReactsOnHotspot)
{
    const SimResult& warped = run(Technique::WarpedGates);
    std::uint64_t adaptions = warped.aggregate.adaptIncrements[0] +
                              warped.aggregate.adaptIncrements[1] +
                              warped.aggregate.adaptDecrements[0] +
                              warped.aggregate.adaptDecrements[1];
    EXPECT_GT(adaptions, 0u)
        << "the regulator must actually adjust the window";
}

TEST_F(PaperResults, GatesPrioritySwitchingActive)
{
    const SimResult& gates = run(Technique::Gates);
    EXPECT_GT(gates.aggregate.prioritySwitches, 0u);
    const SimResult& conv = run(Technique::ConvPG);
    EXPECT_EQ(conv.aggregate.prioritySwitches, 0u);
}

TEST_F(PaperResults, CoordinatedMechanismsFire)
{
    const SimResult& coord = run(Technique::CoordinatedBlackout);
    PgDomainStats s = coord.typeStats(UnitClass::Fp);
    EXPECT_GT(s.coordImmediateGates + s.coordGateVetoes, 0u)
        << "the cluster-aware rules must trigger on a real workload";
}

TEST_F(PaperResults, CriticalWakeupsOnlyUnderBlackout)
{
    EXPECT_EQ(run(Technique::ConvPG)
                  .typeStats(UnitClass::Int)
                  .criticalWakeups,
              0u);
    EXPECT_GT(run(Technique::NaiveBlackout)
                  .typeStats(UnitClass::Int)
                  .criticalWakeups,
              0u);
}

TEST_F(PaperResults, WorkDoneIsTechniqueInvariant)
{
    // Power gating must not change how much work is executed, only
    // when (the paper relies on this for its dynamic-energy argument).
    const SimResult& base = run(Technique::Baseline);
    for (Technique t : {Technique::ConvPG, Technique::WarpedGates}) {
        EXPECT_EQ(run(t).aggregate.issuedTotal,
                  base.aggregate.issuedTotal)
            << techniqueName(t);
    }
}

} // namespace
} // namespace wg
