/**
 * @file
 * Tests for the SFU power-gating extension (paper Section 3 argues
 * conventional gating suffices for the rarely-used SFUs; this is the
 * opt-in implementation of that suggestion).
 */

#include <gtest/gtest.h>

#include "pg/controller.hh"
#include "core/presets.hh"
#include "sim/gpu.hh"
#include "sim/sm.hh"
#include "workload/synthetic.hh"

namespace wg {
namespace {

PgParams
params(bool gate_sfu)
{
    PgParams p;
    p.policy = PgPolicy::CoordinatedBlackout;
    p.idleDetect = 2;
    p.breakEven = 3;
    p.wakeupDelay = 2;
    p.gateSfu = gate_sfu;
    return p;
}

TEST(SfuGating, DisabledByDefault)
{
    PgParams p;
    EXPECT_FALSE(p.gateSfu);
}

TEST(SfuGating, SfuStaysOnWhenDisabled)
{
    PgController pg(params(false));
    SchedView view;
    for (Cycle t = 0; t < 50; ++t)
        pg.tick(t, {false, false}, {false, false}, view, false);
    EXPECT_TRUE(pg.canExecute(UnitClass::Sfu, 0));
    EXPECT_FALSE(pg.isGated(UnitClass::Sfu, 0));
    EXPECT_EQ(pg.sfuDomain().stats().gatingEvents, 0u);
}

TEST(SfuGating, SfuGatesWhenEnabled)
{
    PgController pg(params(true));
    SchedView view;
    for (Cycle t = 0; t < 10; ++t)
        pg.tick(t, {false, false}, {false, false}, view, false);
    EXPECT_TRUE(pg.isGated(UnitClass::Sfu, 0));
    EXPECT_FALSE(pg.canExecute(UnitClass::Sfu, 0));
    EXPECT_EQ(pg.pickWakeupTarget(UnitClass::Sfu), 0);
}

TEST(SfuGating, SfuUsesConventionalPolicy)
{
    // Even under a blackout main policy, the SFU domain wakes from the
    // uncompensated state (conventional semantics).
    PgController pg(params(true));
    SchedView view;
    pg.tick(0, {false, false}, {false, false}, view, false);
    pg.tick(1, {false, false}, {false, false}, view, false);
    ASSERT_EQ(pg.sfuDomain().state(), PgState::Uncompensated);
    pg.requestWakeup(UnitClass::Sfu, 0, 2);
    pg.tick(2, {false, false}, {false, false}, view, false);
    EXPECT_EQ(pg.sfuDomain().state(), PgState::Wakeup)
        << "conventional gating wakes before the break-even time";
}

TEST(SfuGating, BusySfuDoesNotGate)
{
    PgController pg(params(true));
    SchedView view;
    for (Cycle t = 0; t < 20; ++t)
        pg.tick(t, {false, false}, {false, false}, view, true);
    EXPECT_FALSE(pg.isGated(UnitClass::Sfu, 0));
    EXPECT_EQ(pg.sfuDomain().stats().busyCycles, 20u);
}

TEST(SfuGating, WorkloadWithSfuDrains)
{
    SmConfig cfg;
    cfg.scheduler = SchedulerPolicy::Gates;
    cfg.pg.policy = PgPolicy::CoordinatedBlackout;
    cfg.pg.gateSfu = true;
    std::vector<Program> programs;
    for (int w = 0; w < 8; ++w)
        programs.push_back(pureProgram(UnitClass::Sfu, 60));
    Sm sm(cfg, programs, 3);
    const SmStats& s = sm.run();
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.sfuIssues, 8u * 60u);
}

TEST(SfuGating, SparseSfuUseGetsGatedAndWoken)
{
    // INT-heavy workload with occasional SFU bursts: the SFU block must
    // gate between bursts and wake on demand.
    SmConfig cfg;
    cfg.pg.policy = PgPolicy::Conventional;
    cfg.pg.gateSfu = true;
    std::vector<Instruction> instrs;
    for (int k = 0; k < 400; ++k) {
        if (k % 100 == 99)
            instrs.push_back(makeSfu(static_cast<RegId>(k % 16)));
        else
            instrs.push_back(makeInt(static_cast<RegId>(k % 16)));
    }
    std::vector<Program> programs(4, Program(instrs));
    Sm sm(cfg, programs, 9);
    const SmStats& s = sm.run();
    EXPECT_TRUE(s.completed);
    EXPECT_GT(s.sfuCluster.pg.gatingEvents, 0u);
    EXPECT_GT(s.sfuCluster.pg.wakeups, 0u);
    EXPECT_EQ(s.sfuCluster.issues, 4u * 4u);
}

TEST(SfuGating, EnergyLedgerSwitchesToClusterModel)
{
    ExperimentOptions opts;
    opts.numSms = 1;
    GpuConfig cfg = makeConfig(Technique::WarpedGates, opts);
    cfg.sm.pg.gateSfu = true;
    BenchmarkProfile p = findBenchmark("cutcp"); // has SFU activity
    p.kernelLength = 400;
    Gpu gpu(cfg);
    SimResult r = gpu.run(p);
    EXPECT_GT(r.sfuEnergy.staticSaved, 0.0)
        << "gating the rarely-used SFU must save leakage";
    EXPECT_GT(r.sfuEnergy.staticSavingsRatio(), 0.0);

    GpuConfig off = makeConfig(Technique::WarpedGates, opts);
    Gpu gpu_off(off);
    SimResult r_off = gpu_off.run(p);
    EXPECT_DOUBLE_EQ(r_off.sfuEnergy.staticSaved, 0.0);
}

} // namespace
} // namespace wg
