/**
 * @file
 * Unit tests for the logging/error-exit helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"

namespace wg {
namespace {

TEST(Logging, QuietFlagRoundTrip)
{
    bool was = isQuiet();
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
    setQuiet(was);
}

TEST(Logging, InformAndWarnDoNotTerminate)
{
    inform("an informative message ", 42);
    warn("a warning about ", 3.14);
    SUCCEED();
}

TEST(Logging, QuietSuppressesInformOnly)
{
    // inform() under quiet must not crash and must not print; warn()
    // still goes through. We can only assert behaviourally here.
    setQuiet(true);
    inform("suppressed");
    warn("still shown");
    setQuiet(false);
    SUCCEED();
}

/**
 * Capture stderr into a temp file for the duration of one scope (the
 * logger writes with fprintf(stderr, ...), so rerouting the fd is the
 * only way to observe it).
 */
class StderrCapture
{
  public:
    StderrCapture()
    {
        std::fflush(stderr);
        saved_ = dup(fileno(stderr));
        std::snprintf(path_, sizeof(path_), "wg_log_capture_%d.tmp",
                      getpid());
        int fd = open(path_, O_CREAT | O_TRUNC | O_WRONLY, 0600);
        dup2(fd, fileno(stderr));
        close(fd);
    }

    ~StderrCapture()
    {
        release();
        std::remove(path_);
    }

    std::string
    release()
    {
        if (saved_ < 0)
            return text_;
        std::fflush(stderr);
        dup2(saved_, fileno(stderr));
        close(saved_);
        saved_ = -1;
        std::ifstream in(path_);
        std::ostringstream os;
        os << in.rdbuf();
        text_ = os.str();
        return text_;
    }

  private:
    int saved_ = -1;
    char path_[64];
    std::string text_;
};

TEST(Logging, ConcurrentWritersEmitIntactLines)
{
    // Hammer the logger from several threads; every emitted line must
    // be one complete message — no interleaved fragments.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 200;

    StderrCapture capture;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                warn("thread=", t, " msg=", i, " tail");
        });
    }
    for (auto& th : threads)
        th.join();
    std::string out = capture.release();

    std::istringstream lines(out);
    std::string line;
    int seen = 0;
    std::vector<int> per_thread(kThreads, 0);
    while (std::getline(lines, line)) {
        if (line.rfind("warn: thread=", 0) != 0)
            continue; // other tests' stderr noise, not ours
        ++seen;
        // An intact line matches "warn: thread=T msg=N tail" exactly.
        int t = -1, n = -1;
        ASSERT_EQ(
            2, std::sscanf(line.c_str(), "warn: thread=%d msg=%d tail",
                           &t, &n))
            << "interleaved or torn log line: " << line;
        ASSERT_GE(t, 0);
        ASSERT_LT(t, kThreads);
        EXPECT_EQ(line, "warn: thread=" + std::to_string(t) +
                            " msg=" + std::to_string(n) + " tail");
        ++per_thread[t];
    }
    EXPECT_EQ(seen, kThreads * kPerThread);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(per_thread[t], kPerThread) << "thread " << t;
}

TEST(Logging, ConcurrentQuietTogglingIsSafe)
{
    // setQuiet from one thread while others inform(): must not crash
    // or tear (quiet is atomic; the data race would be flagged by the
    // TSan CI job otherwise).
    StderrCapture capture;
    bool was = isQuiet();
    std::thread toggler([] {
        for (int i = 0; i < 500; ++i)
            setQuiet(i & 1);
    });
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([] {
            for (int i = 0; i < 250; ++i)
                inform("racing message ", i);
        });
    }
    toggler.join();
    for (auto& th : writers)
        th.join();
    setQuiet(was);
    capture.release();
    SUCCEED();
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config: ", "x"), ::testing::ExitedWithCode(1),
                "bad config: x");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant ", 7, " violated"),
                 "invariant 7 violated");
}

TEST(LoggingDeath, MessagesCarryAllArguments)
{
    EXPECT_DEATH(panic("a=", 1, " b=", 2.5, " c=", "three"),
                 "a=1 b=2.5 c=three");
}

TEST(LoggingDeath, FatalPrefixedAsFatal)
{
    EXPECT_EXIT(fatal("boom"), ::testing::ExitedWithCode(1), "fatal:");
}

TEST(LoggingDeath, PanicPrefixedAsPanic)
{
    EXPECT_DEATH(panic("boom"), "panic:");
}

} // namespace
} // namespace wg
