/**
 * @file
 * Unit tests for the logging/error-exit helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace wg {
namespace {

TEST(Logging, QuietFlagRoundTrip)
{
    bool was = isQuiet();
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
    setQuiet(was);
}

TEST(Logging, InformAndWarnDoNotTerminate)
{
    inform("an informative message ", 42);
    warn("a warning about ", 3.14);
    SUCCEED();
}

TEST(Logging, QuietSuppressesInformOnly)
{
    // inform() under quiet must not crash and must not print; warn()
    // still goes through. We can only assert behaviourally here.
    setQuiet(true);
    inform("suppressed");
    warn("still shown");
    setQuiet(false);
    SUCCEED();
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config: ", "x"), ::testing::ExitedWithCode(1),
                "bad config: x");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant ", 7, " violated"),
                 "invariant 7 violated");
}

TEST(LoggingDeath, MessagesCarryAllArguments)
{
    EXPECT_DEATH(panic("a=", 1, " b=", 2.5, " c=", "three"),
                 "a=1 b=2.5 c=three");
}

TEST(LoggingDeath, FatalPrefixedAsFatal)
{
    EXPECT_EXIT(fatal("boom"), ::testing::ExitedWithCode(1), "fatal:");
}

TEST(LoggingDeath, PanicPrefixedAsPanic)
{
    EXPECT_DEATH(panic("boom"), "panic:");
}

} // namespace
} // namespace wg
