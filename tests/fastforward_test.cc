/**
 * @file
 * Locks in the event-horizon fast-forward guarantee: running with
 * SmConfig::fastForward on must produce a SimResult, metrics files and
 * event-trace stream byte-identical to the cycle-by-cycle path — for
 * every technique, across serial and pooled execution, on randomized
 * configurations, and on truncated (maxCycles) runs. Fast-forward is
 * purely a wall-clock optimisation, never a result change.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "common/threadpool.hh"
#include "core/presets.hh"
#include "metrics/exporters.hh"
#include "metrics/registry.hh"
#include "sim/gpu.hh"
#include "trace/sink.hh"
#include "workload/generator.hh"

namespace wg {
namespace {

GpuConfig
ffConfig(Technique t, bool fast_forward, unsigned sms = 2)
{
    ExperimentOptions opts;
    opts.numSms = sms;
    GpuConfig config = makeConfig(t, opts);
    config.sm.fastForward = fast_forward;
    return config;
}

BenchmarkProfile
profile(const char* name, int kernel_length = 400, int warps = 16)
{
    BenchmarkProfile p = findBenchmark(name);
    p.kernelLength = kernel_length;
    p.residentWarps = warps;
    return p;
}

/**
 * Run @p profile twice — fast-forward off (reference) and on — and
 * require every observable output to match byte for byte: the core
 * result fields, all three metrics serialisations (with their epoch
 * series), and the JSONL event trace.
 */
void
expectFastForwardIdentical(const GpuConfig& reference_config,
                           const BenchmarkProfile& p,
                           ThreadPool* pool = nullptr)
{
    GpuConfig ff_config = reference_config;
    ff_config.sm.fastForward = true;
    GpuConfig ref_config = reference_config;
    ref_config.sm.fastForward = false;

    trace::Collector ref_trace, ff_trace;
    metrics::Collector ref_metrics, ff_metrics;
    SimResult ref =
        Gpu(ref_config).run(p, pool, &ref_trace, &ref_metrics);
    SimResult ff = Gpu(ff_config).run(p, pool, &ff_trace, &ff_metrics);

    EXPECT_EQ(ref.cycles, ff.cycles);
    EXPECT_EQ(ref.totalSmCycles, ff.totalSmCycles);
    EXPECT_EQ(ref.aggregate.issuedTotal, ff.aggregate.issuedTotal);
    EXPECT_EQ(ref.aggregate.completed, ff.aggregate.completed);

    StatSet ref_set = metrics::toStatSet(ref);
    StatSet ff_set = metrics::toStatSet(ff);
    for (metrics::MetricsFormat format :
         {metrics::MetricsFormat::Jsonl, metrics::MetricsFormat::Csv,
          metrics::MetricsFormat::Prom}) {
        std::ostringstream ref_os, ff_os;
        metrics::writeMetrics(ref_os, &ref_metrics, ref_set, format);
        metrics::writeMetrics(ff_os, &ff_metrics, ff_set, format);
        EXPECT_EQ(ref_os.str(), ff_os.str())
            << metrics::metricsFormatName(format);
    }

    std::ostringstream ref_os, ff_os;
    trace::writeJsonl(ref_os, ref_trace);
    trace::writeJsonl(ff_os, ff_trace);
    EXPECT_EQ(ref_os.str(), ff_os.str());
}

TEST(FastForward, AllTechniquesBitIdenticalHotspot)
{
    for (Technique t : allTechniques()) {
        SCOPED_TRACE(techniqueName(t));
        expectFastForwardIdentical(ffConfig(t, true), profile("hotspot"));
    }
}

TEST(FastForward, AllTechniquesBitIdenticalMemoryHeavy)
{
    // nw is the suite's most memory-bound profile (miss ratio 0.70,
    // dependence probability 0.65): long MSHR-limited stall spans are
    // exactly where the horizon jumps are biggest.
    for (Technique t : allTechniques()) {
        SCOPED_TRACE(techniqueName(t));
        expectFastForwardIdentical(ffConfig(t, true), profile("nw"));
    }
}

TEST(FastForward, PooledMatchesSerialAndReference)
{
    // The pooled path must keep both guarantees at once: pooled+FF ==
    // serial+FF == serial reference.
    GpuConfig config = ffConfig(Technique::WarpedGates, true, 4);
    BenchmarkProfile p = profile("nw");
    expectFastForwardIdentical(config, p, &ThreadPool::global());

    SimResult serial = Gpu(config).run(p, nullptr);
    SimResult pooled = Gpu(config).run(p, &ThreadPool::global());
    EXPECT_EQ(serial.cycles, pooled.cycles);
    EXPECT_EQ(serial.aggregate.issuedTotal, pooled.aggregate.issuedTotal);
}

TEST(FastForward, RandomizedConfigsBitIdentical)
{
    // Deterministic fuzz: random PG windows, technique, SM count and
    // workload shape. Any divergence between the analytic replay and
    // the stepped path shows up as a byte diff here.
    Rng rng(0x57a71c5eedULL);
    const char* benches[] = {"hotspot", "nw", "bfs", "NN"};
    for (int trial = 0; trial < 6; ++trial) {
        SCOPED_TRACE(trial);
        const auto& techs = allTechniques();
        Technique t = techs[rng.nextRange(techs.size())];
        ExperimentOptions opts;
        opts.numSms = 1 + static_cast<unsigned>(rng.nextRange(2));
        opts.seed = 100 + static_cast<std::uint64_t>(trial);
        opts.idleDetect = 1 + rng.nextRange(12);
        opts.breakEven = 1 + rng.nextRange(30);
        opts.wakeupDelay = 1 + rng.nextRange(6);
        GpuConfig config = makeConfig(t, opts);

        BenchmarkProfile p =
            profile(benches[rng.nextRange(4)],
                    200 + static_cast<int>(rng.nextRange(400)),
                    4 + static_cast<int>(rng.nextRange(24)));
        expectFastForwardIdentical(config, p);
    }
}

TEST(FastForward, TruncatedRunBitIdentical)
{
    // A horizon clamped by maxCycles must stop on exactly the same
    // cycle, with exactly the same partial counters, as the stepped
    // path hitting the safety stop.
    GpuConfig config = ffConfig(Technique::WarpedGates, true);
    config.sm.maxCycles = 3000;
    expectFastForwardIdentical(config, profile("nw", 4000, 8));
}

TEST(FastForward, EngagesOnMemoryBoundWorkload)
{
    // The optimisation must actually fire where it matters; otherwise
    // the identity tests above would pass vacuously.
    GpuConfig config = ffConfig(Technique::WarpedGates, true, 1);
    ProgramGenerator gen(config.seed);
    Sm sm(config.sm, gen.generateSm(profile("nw"), 0),
          Gpu::smSeed(config.seed, 0));
    sm.run();
    EXPECT_GT(sm.ffSkippedCycles(), 0u);
    EXPECT_GT(sm.ffSpans(), 0u);
    EXPECT_GE(sm.ffSkippedCycles(), sm.ffSpans());
}

TEST(FastForward, DisabledNeverSkips)
{
    GpuConfig config = ffConfig(Technique::WarpedGates, false, 1);
    ProgramGenerator gen(config.seed);
    Sm sm(config.sm, gen.generateSm(profile("nw"), 0),
          Gpu::smSeed(config.seed, 0));
    sm.run();
    EXPECT_EQ(sm.ffSkippedCycles(), 0u);
    EXPECT_EQ(sm.ffSpans(), 0u);
}

} // namespace
} // namespace wg
