/**
 * @file
 * Suite-wide smoke test: every benchmark of the paper's suite must
 * drain under the full Warped Gates configuration (1 SM, parameterised
 * over the suite), with basic result sanity.
 */

#include <gtest/gtest.h>

#include "core/warped_gates.hh"

namespace wg {
namespace {

class SuiteSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteSmoke, WarpedGatesDrainsAndSavesOrBreaksEven)
{
    ExperimentOptions opts;
    opts.numSms = 1;
    Gpu gpu(makeConfig(Technique::WarpedGates, opts));
    SimResult r = gpu.run(findBenchmark(GetParam()));

    EXPECT_TRUE(r.aggregate.completed);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.aggregate.issuedTotal, 0u);
    EXPECT_LE(r.ipc(), 2.0);

    // Energy sanity: conservation and no catastrophic losses.
    for (UnitClass uc : {UnitClass::Int, UnitClass::Fp}) {
        const UnitEnergy& e = r.energy(uc);
        EXPECT_NEAR(e.staticE + e.staticSaved, e.staticNoPg,
                    1e-9 * e.staticNoPg + 1e-20);
        EXPECT_GT(e.staticSavingsRatio(), -0.1)
            << unitClassName(uc)
            << ": Warped Gates must never lose much energy";
    }

    // Blackout invariant holds everywhere.
    EXPECT_EQ(r.typeStats(UnitClass::Int).uncompWakeups, 0u);
    EXPECT_EQ(r.typeStats(UnitClass::Fp).uncompWakeups, 0u);

    // Adaptive idle detect stays within its configured bounds.
    for (unsigned t = 0; t < 2; ++t) {
        EXPECT_GE(r.aggregate.finalIdleDetect[t], 5u);
        EXPECT_LE(r.aggregate.finalIdleDetect[t], 10u);
    }

    // The instruction mix respects the profile's headline property.
    const BenchmarkProfile& p = findBenchmark(GetParam());
    auto fp_issued =
        r.aggregate.issuedByClass[static_cast<std::size_t>(UnitClass::Fp)];
    if (p.isIntegerOnly()) {
        EXPECT_EQ(fp_issued, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteSmoke,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto& info) { return info.param; });

} // namespace
} // namespace wg
