#include "check.hh"

#include <sstream>

#include "common/logging.hh"

namespace wg::trace {

namespace {

constexpr const char* kLaneNames[] = {"INT0", "INT1", "FP0", "FP1", "SFU"};

// UnitClass values (kept numeric so trace/ stays below arch/ users).
constexpr std::uint8_t kUnitInt = 0;
constexpr std::uint8_t kUnitFp = 1;
constexpr std::uint8_t kUnitSfu = 2;

} // namespace

std::string
Violation::toString() const
{
    std::ostringstream os;
    os << "sm " << sm << " cycle " << cycle << " " << unit << ": "
       << message;
    return os.str();
}

InvariantChecker::InvariantChecker(const Meta& meta) : meta_(meta)
{
    blackout_ = meta_.policy == "naive-blackout" ||
                meta_.policy == "coordinated-blackout";
    coordinated_ = meta_.policy == "coordinated-blackout";
}

int
InvariantChecker::laneIndex(std::uint8_t unit, std::uint8_t cluster)
{
    switch (unit) {
      case kUnitInt: return cluster < 2 ? static_cast<int>(cluster) : -1;
      case kUnitFp: return cluster < 2 ? 2 + static_cast<int>(cluster) : -1;
      case kUnitSfu: return 4;
      default: return -1;
    }
}

std::string
InvariantChecker::laneName(std::size_t lane)
{
    return lane < kLanesPerSm ? kLaneNames[lane] : "?";
}

InvariantChecker::Lane&
InvariantChecker::lane(SmId sm, std::size_t lane_idx)
{
    if (sm >= lanes_.size())
        lanes_.resize(sm + 1);
    return lanes_[sm][lane_idx];
}

InvariantChecker::Regulator&
InvariantChecker::regulator(SmId sm, std::size_t type)
{
    if (sm >= regulators_.size()) {
        std::size_t old = regulators_.size();
        regulators_.resize(sm + 1);
        Cycle init = meta_.idleDetect;
        if (init < meta_.idleDetectMin)
            init = meta_.idleDetectMin;
        if (init > meta_.idleDetectMax)
            init = meta_.idleDetectMax;
        for (std::size_t s = old; s < regulators_.size(); ++s)
            for (auto& r : regulators_[s])
                r.value = init;
    }
    return regulators_[sm][type];
}

bool
InvariantChecker::truncated(SmId sm) const
{
    return sm < truncated_.size() && truncated_[sm];
}

void
InvariantChecker::noteTruncated(SmId sm, std::uint64_t lost)
{
    if (sm >= truncated_.size())
        truncated_.resize(sm + 1, false);
    truncated_[sm] = true;
    std::ostringstream os;
    os << "sm " << sm << ": ring wrapped, " << lost
       << " events lost; invariant checks suppressed for this SM";
    warnings_.push_back(os.str());
}

void
InvariantChecker::addViolation(SmId sm, Cycle cycle,
                               const std::string& unit,
                               std::string message)
{
    violations_.push_back({sm, cycle, unit, std::move(message)});
}

void
InvariantChecker::feed(SmId sm, const Event& e)
{
    ++events_;
    ++by_kind_[static_cast<std::size_t>(e.kind)];
    if (truncated(sm))
        return;

    switch (e.kind) {
      case EventKind::Issue: checkIssue(sm, e); break;
      case EventKind::Gate: checkGate(sm, e); break;
      case EventKind::BetExpire: checkBetExpire(sm, e); break;
      case EventKind::Wakeup: checkWakeup(sm, e); break;
      case EventKind::WakeupDone: checkWakeupDone(sm, e); break;
      case EventKind::EpochUpdate: checkEpochUpdate(sm, e); break;
      default:
        break;
    }
}

void
InvariantChecker::checkIssue(SmId sm, const Event& e)
{
    int li = laneIndex(e.unit, e.cluster);
    if (li < 0)
        return; // LD/ST and control events are never gated
    Lane& l = lane(sm, static_cast<std::size_t>(li));
    if (l.gated || l.waking) {
        std::ostringstream os;
        os << "issued warp " << e.value << " while "
           << (l.gated ? "gated" : "still waking") << " (gated at cycle "
           << l.gateCycle << ")";
        addViolation(sm, e.cycle, laneName(li), os.str());
    }
}

void
InvariantChecker::checkGate(SmId sm, const Event& e)
{
    int li = laneIndex(e.unit, e.cluster);
    if (li < 0) {
        addViolation(sm, e.cycle, "?", "gate event on a non-gateable unit");
        return;
    }
    auto lane_idx = static_cast<std::size_t>(li);
    Lane& l = lane(sm, lane_idx);
    const bool sfu = lane_idx == 4;
    const auto reason = static_cast<GateReason>(e.arg);

    if (l.gated || l.waking)
        addViolation(sm, e.cycle, laneName(lane_idx),
                     "gate while already gated or waking");
    if (sfu && !meta_.gateSfu)
        addViolation(sm, e.cycle, laneName(lane_idx),
                     "SFU gated but gateSfu is off");
    if (!sfu && meta_.policy == "none")
        addViolation(sm, e.cycle, laneName(lane_idx),
                     "gate under policy 'none'");

    if (!sfu) {
        if (reason == GateReason::CoordDrain) {
            if (!coordinated_)
                addViolation(sm, e.cycle, laneName(lane_idx),
                             "coord-drain gate under a non-coordinated "
                             "policy");
            if (e.value > 0) {
                std::ostringstream os;
                os << "coordinated drain gate with ACTV=" << e.value
                   << " warps of this type waiting";
                addViolation(sm, e.cycle, laneName(lane_idx), os.str());
            }
        }
        if (coordinated_) {
            // Peer cluster of the same type: lanes {0,1} and {2,3}.
            // Same-cycle gates are legal: the controller ticks both
            // clusters against a consistent pre-tick snapshot, so two
            // first-cluster gates can land on one cycle.
            std::size_t peer_idx = lane_idx ^ 1u;
            const Lane& peer = lane(sm, peer_idx);
            if (peer.gated && peer.gateCycle < e.cycle && e.value > 0) {
                std::ostringstream os;
                os << "gated the second " << (lane_idx < 2 ? "INT" : "FP")
                   << " cluster while ACTV=" << e.value
                   << " warps of the type wait in the active subset";
                addViolation(sm, e.cycle, laneName(lane_idx), os.str());
            }
        }
    }

    l.gated = true;
    l.waking = false;
    l.everGated = true;
    l.gateCycle = e.cycle;
}

void
InvariantChecker::checkBetExpire(SmId sm, const Event& e)
{
    int li = laneIndex(e.unit, e.cluster);
    if (li < 0)
        return;
    Lane& l = lane(sm, static_cast<std::size_t>(li));
    if (!l.gated) {
        addViolation(sm, e.cycle, laneName(li),
                     "break-even expiry on a cluster that is not gated");
        return;
    }
    Cycle expected = l.gateCycle + meta_.breakEven;
    if (e.cycle != expected) {
        std::ostringstream os;
        os << "break-even expired at the wrong cycle (gated at "
           << l.gateCycle << ", BET " << meta_.breakEven << ", expected "
           << expected << ")";
        addViolation(sm, e.cycle, laneName(li), os.str());
    }
}

void
InvariantChecker::checkWakeup(SmId sm, const Event& e)
{
    int li = laneIndex(e.unit, e.cluster);
    if (li < 0)
        return;
    auto lane_idx = static_cast<std::size_t>(li);
    Lane& l = lane(sm, lane_idx);
    const bool sfu = lane_idx == 4;
    const auto reason = static_cast<WakeReason>(e.arg);

    if (!l.gated) {
        addViolation(sm, e.cycle, laneName(lane_idx),
                     "wakeup on a cluster that is not gated");
        return;
    }

    const Cycle held = e.cycle - l.gateCycle;
    // SFU always runs the conventional machine; early wakeups are its
    // uncompensated-loss case, not a blackout violation.
    if (!sfu && blackout_) {
        if (held < meta_.breakEven) {
            std::ostringstream os;
            os << "blackout violated: woke after " << held
               << " cycles, break-even is " << meta_.breakEven
               << " (gated at cycle " << l.gateCycle << ")";
            addViolation(sm, e.cycle, laneName(lane_idx), os.str());
        }
        if (reason == WakeReason::Uncompensated)
            addViolation(sm, e.cycle, laneName(lane_idx),
                         "uncompensated wakeup recorded under a blackout "
                         "policy");
        if (reason == WakeReason::Critical && held != meta_.breakEven) {
            std::ostringstream os;
            os << "critical wakeup " << held
               << " cycles after gating; criticals fire exactly at "
                  "break-even ("
               << meta_.breakEven << ")";
            addViolation(sm, e.cycle, laneName(lane_idx), os.str());
        }
    }

    l.gated = false;
    l.waking = true;
}

void
InvariantChecker::checkWakeupDone(SmId sm, const Event& e)
{
    int li = laneIndex(e.unit, e.cluster);
    if (li < 0)
        return;
    Lane& l = lane(sm, static_cast<std::size_t>(li));
    if (!l.waking) {
        addViolation(sm, e.cycle, laneName(li),
                     "wakeup-done without a preceding wakeup");
        return;
    }
    l.waking = false;
}

void
InvariantChecker::checkEpochUpdate(SmId sm, const Event& e)
{
    if (!meta_.adaptive) {
        addViolation(sm, e.cycle, "?",
                     "epoch-update with adaptive idle detect disabled");
        return;
    }
    std::size_t type;
    if (e.unit == kUnitInt)
        type = 0;
    else if (e.unit == kUnitFp)
        type = 1;
    else {
        addViolation(sm, e.cycle, "?",
                     "epoch-update for a non-adaptive unit class");
        return;
    }

    if (e.value < meta_.idleDetectMin || e.value > meta_.idleDetectMax) {
        std::ostringstream os;
        os << "adaptive window " << e.value << " outside ["
           << meta_.idleDetectMin << ", " << meta_.idleDetectMax << "]";
        addViolation(sm, e.cycle, type == 0 ? "INT" : "FP", os.str());
    }

    // Replica regulator: fast increase on a hot epoch, decrement only
    // after `decrementEpochs` consecutive quiet epochs.
    Regulator& r = regulator(sm, type);
    if (e.arg > meta_.criticalThreshold) {
        if (r.value < meta_.idleDetectMax)
            ++r.value;
        r.goodEpochs = 0;
    } else {
        ++r.goodEpochs;
        if (r.goodEpochs >= meta_.decrementEpochs) {
            if (r.value > meta_.idleDetectMin)
                --r.value;
            r.goodEpochs = 0;
        }
    }
    if (e.value != r.value) {
        std::ostringstream os;
        os << "adaptive window diverged from the fast-increase/"
              "slow-decrease schedule (trace says "
           << e.value << ", replica expects " << r.value << " after "
           << static_cast<unsigned>(e.arg) << " criticals)";
        addViolation(sm, e.cycle, type == 0 ? "INT" : "FP", os.str());
        r.value = e.value; // resynchronise to avoid cascading reports
    }
}

std::vector<Violation>
checkCollector(const Collector& collector)
{
    InvariantChecker checker(collector.meta);
    for (SmId s = 0; s < collector.numSms(); ++s) {
        const Recorder* r = collector.recorder(s);
        if (!r)
            continue;
        if (r->overwritten() > 0)
            checker.noteTruncated(s, r->overwritten());
        r->forEach([&checker, s](const Event& e) { checker.feed(s, e); });
    }
    return checker.violations();
}

} // namespace wg::trace
