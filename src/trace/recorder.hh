/**
 * @file
 * Per-SM ring-buffer event recorder and the whole-GPU collector.
 *
 * Instrumentation sites hold a `Recorder*` that is null when tracing is
 * off, so the disabled path is a single predictable branch — no event
 * is ever allocated. One Recorder belongs to exactly one SM and is only
 * touched from that SM's simulation thread; the Collector pre-creates
 * all recorders before any worker starts, so pooled runs never share or
 * race on trace state and serial/pooled traces are bit-identical.
 *
 * The buffer is a true ring: when capacity is exceeded the oldest
 * events are overwritten (the most recent window is what post-mortem
 * debugging wants) and `overwritten()` reports how many were lost so
 * sinks and the invariant checker can flag truncated streams.
 */

#pragma once

#include <memory>
#include <vector>

#include "common/types.hh"
#include "trace/event.hh"

namespace wg::trace {

/** Recording limits and filters. */
struct RecorderConfig
{
    /** Events retained per SM before the ring wraps. */
    std::size_t capacity = 1u << 20;
    /** Record only this SM id; -1 records every SM. */
    std::int64_t smFilter = -1;
};

/** Event ring of one SM. */
class Recorder
{
  public:
    Recorder(SmId sm, std::size_t capacity);

    /** Append one event (overwrites the oldest when full). */
    void
    record(Cycle cycle, EventKind kind, std::uint8_t unit = kNoUnit,
           std::uint8_t cluster = kNoCluster, std::uint8_t arg = 0,
           std::uint32_t value = 0)
    {
        Event& e = ring_[next_];
        e.cycle = cycle;
        e.kind = kind;
        e.unit = unit;
        e.cluster = cluster;
        e.arg = arg;
        e.value = value;
        next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
        if (size_ < ring_.size())
            ++size_;
        else
            ++overwritten_;
    }

    SmId sm() const { return sm_; }

    /** Events currently retained. */
    std::size_t size() const { return size_; }

    /** Events lost to ring wrap-around. */
    std::uint64_t overwritten() const { return overwritten_; }

    std::size_t capacity() const { return ring_.size(); }

    /** Retained events, oldest first. */
    std::vector<Event> events() const;

    /**
     * Rebuild the ring from a checkpoint: re-record @p events (oldest
     * first) into an empty ring and carry over the pre-checkpoint
     * wrap-around loss, so a resumed trace serializes byte-identically
     * to the uninterrupted one.
     */
    void
    restore(const std::vector<Event>& events, std::uint64_t overwritten)
    {
        next_ = 0;
        size_ = 0;
        overwritten_ = overwritten;
        for (const Event& e : events)
            record(e.cycle, e.kind, e.unit, e.cluster, e.arg, e.value);
    }

    /** Visit retained events oldest-first without copying. */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        std::size_t start = size_ == ring_.size() ? next_ : 0;
        for (std::size_t i = 0; i < size_; ++i)
            fn(ring_[(start + i) % ring_.size()]);
    }

  private:
    SmId sm_;
    std::vector<Event> ring_;
    std::size_t next_ = 0;
    std::size_t size_ = 0;
    std::uint64_t overwritten_ = 0;
};

/**
 * Owns the per-SM recorders of one traced simulation. The driver
 * (Gpu::runPrograms) calls prepare() before dispatching SM jobs and
 * each job fetches its own recorder with recorder(sm) — null when the
 * SM is filtered out.
 */
class Collector
{
  public:
    explicit Collector(const RecorderConfig& config = {});

    /** Create (or re-create) one recorder per SM. Not thread-safe. */
    void prepare(std::uint32_t num_sms);

    /** Recorder of @p sm, or null when filtered / not prepared. */
    Recorder* recorder(SmId sm);
    const Recorder* recorder(SmId sm) const;

    /** Number of prepared SM slots (filtered slots included). */
    std::uint32_t numSms() const
    {
        return static_cast<std::uint32_t>(recorders_.size());
    }

    /** Events retained across all SMs. */
    std::size_t totalEvents() const;

    /** Events lost to wrap-around across all SMs. */
    std::uint64_t totalOverwritten() const;

    const RecorderConfig& config() const { return config_; }

    /** Run metadata; filled by the driver, consumed by sinks. */
    Meta meta;

  private:
    RecorderConfig config_;
    std::vector<std::unique_ptr<Recorder>> recorders_;
};

} // namespace wg::trace

