/**
 * @file
 * Typed cycle-level trace events.
 *
 * Every observable transition the Warped Gates claims rest on — idle
 * windows opening, gate/ungate decisions, break-even countdowns,
 * critical wakeups, adaptive-window updates, warp migrations, MSHR
 * occupancy — is recorded as one fixed-size Event. Events are plain
 * values; the 16-byte layout keeps a full ring of them cache-friendly
 * and cheap to copy into sinks.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace wg::trace {

/** Kinds of recorded transitions. */
enum class EventKind : std::uint8_t {
    Issue,          ///< instruction issued; unit/cluster, value = warp
    UnitIdle,       ///< pipeline went empty (idle-window start)
    UnitBusy,       ///< pipeline occupied again; value = idle-run length
    Gate,           ///< sleep transistor off; arg = GateReason,
                    ///< value = ACTV count of the type at the decision
    BetExpire,      ///< blackout compensated; value = held cycles
    WakeupDenied,   ///< request arrived during blackout hold
    Wakeup,         ///< sleep transistor on; arg = WakeReason
    WakeupDone,     ///< unit operational again (end of wakeup delay)
    EpochUpdate,    ///< adaptive window closed an epoch; unit = type,
                    ///< arg = critical wakeups (saturated at 255),
                    ///< value = new idle-detect window
    PrioritySwitch, ///< GATES HI/LO flip; unit = new HI class
    GreedySwitch,   ///< GTO switched its greedy warp; value = new warp
    WarpMigrate,    ///< warp moved sets; arg = new WarpLoc, value = warp
    MshrFill,       ///< miss allocated an MSHR; value = outstanding now
    MshrDrain,      ///< miss retired its MSHR; value = outstanding now
    MshrReject,     ///< LD/ST issue refused: MSHR pool full
};

/** Number of distinct EventKind values. */
inline constexpr std::size_t kNumEventKinds = 15;

/** Why a cluster was gated. */
enum class GateReason : std::uint8_t {
    IdleDetect, ///< idle-detect counter reached the window
    CoordDrain, ///< coordinated blackout: peer gated and ACTV == 0
};

/** Why a cluster was woken. */
enum class WakeReason : std::uint8_t {
    Demand,        ///< issue-blocked wakeup request, past break-even
    Critical,      ///< request was pending the cycle blackout ended
    Uncompensated, ///< conventional gating woke before break-even
};

/** Sentinel for events with no unit/cluster association. */
inline constexpr std::uint8_t kNoUnit = 0xff;
inline constexpr std::uint8_t kNoCluster = 0xff;

/** One recorded transition. */
struct Event
{
    Cycle cycle = 0;               ///< core-clock cycle of the event
    EventKind kind = EventKind::Issue;
    std::uint8_t unit = kNoUnit;   ///< UnitClass value, or kNoUnit
    std::uint8_t cluster = kNoCluster; ///< cluster index, or kNoCluster
    std::uint8_t arg = 0;          ///< kind-specific small payload
    std::uint32_t value = 0;       ///< kind-specific payload
};

/** Printable names (stable identifiers used by every sink). */
const char* eventKindName(EventKind kind);
const char* gateReasonName(GateReason reason);
const char* wakeReasonName(WakeReason reason);

/**
 * Parse a kind/reason name back into its enum (sink round-trip for the
 * offline checker). @return false when @p name is unknown.
 */
bool parseEventKind(const char* name, EventKind& out);
bool parseGateReason(const char* name, GateReason& out);
bool parseWakeReason(const char* name, WakeReason& out);

/**
 * Trace-wide metadata every sink emits ahead of the event stream and
 * the invariant checker needs to replay a run: the gating policy and
 * its parameters. Plain strings/integers so the trace subsystem stays
 * below sim/ and pg/ in the dependency order.
 */
struct Meta
{
    std::uint32_t version = 1;  ///< schema version
    std::string policy;         ///< pgPolicyName of the INT/FP domains
    std::string scheduler;      ///< schedulerPolicyName
    std::uint32_t numSms = 0;
    Cycle idleDetect = 0;       ///< initial idle-detect window
    Cycle breakEven = 0;        ///< BET (cycles)
    Cycle wakeupDelay = 0;      ///< wakeup latency (cycles)
    bool adaptive = false;      ///< adaptive idle detect enabled
    Cycle idleDetectMin = 0;
    Cycle idleDetectMax = 0;
    Cycle epochLength = 0;
    std::uint32_t criticalThreshold = 0;
    std::uint32_t decrementEpochs = 0;
    bool gateSfu = false;       ///< SFU runs conventional gating
};

} // namespace wg::trace

