/**
 * @file
 * Gating-invariant checker: replays an event trace and verifies the
 * properties the paper's claims rest on.
 *
 * Checked invariants:
 *   1. A gated (or still-waking) cluster never issues an instruction.
 *   2. Blackout holds: under Naive/Coordinated Blackout a cluster stays
 *      gated for at least the break-even time, and no uncompensated
 *      wakeup is ever recorded.
 *   3. Coordinated Blackout never gates the second cluster of a type
 *      while warps of that type wait in the active subset (ACTV > 0).
 *   4. The adaptive idle-detect window stays inside
 *      [idleDetectMin, idleDetectMax] and follows the fast-increase /
 *      slow-decrease schedule exactly (the checker runs a replica
 *      regulator from the per-epoch critical-wakeup counts).
 *
 * Plus stream-consistency checks (gate while gated, wakeup without a
 * gate, break-even expiry at the wrong cycle) that catch corrupted or
 * reordered traces. The checker is sink-agnostic: it consumes decoded
 * Events, either straight from a Collector or parsed back from a JSONL
 * file by tools/wgtrace.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/recorder.hh"

namespace wg::trace {

/** One detected invariant violation. */
struct Violation
{
    SmId sm = 0;
    Cycle cycle = 0;
    std::string unit;    ///< e.g. "INT0", "FP1", "SFU"
    std::string message; ///< human-readable description

    /** "sm 3 cycle 1234 INT0: …" rendering for reports. */
    std::string toString() const;
};

/** Replays one trace; feed events per SM in chronological order. */
class InvariantChecker
{
  public:
    explicit InvariantChecker(const Meta& meta);

    /**
     * Mark @p sm's stream as truncated (ring wrapped): its per-lane
     * state may start mid-period, so checks for that SM are suppressed
     * and a warning is recorded instead.
     */
    void noteTruncated(SmId sm, std::uint64_t lost);

    /** Consume one event. Events of one SM must arrive in order. */
    void feed(SmId sm, const Event& event);

    const std::vector<Violation>& violations() const
    {
        return violations_;
    }

    /** Non-fatal observations (e.g. truncated streams). */
    const std::vector<std::string>& warnings() const { return warnings_; }

    /** Events consumed, total and per kind. */
    std::uint64_t eventCount() const { return events_; }
    std::uint64_t eventCount(EventKind kind) const
    {
        return by_kind_[static_cast<std::size_t>(kind)];
    }

    const Meta& meta() const { return meta_; }

  private:
    /** Gating state of one gateable pipeline. */
    struct Lane
    {
        bool gated = false;     ///< between Gate and Wakeup
        bool waking = false;    ///< between Wakeup and WakeupDone
        bool everGated = false;
        Cycle gateCycle = 0;
    };

    /** Replica of one adaptive idle-detect regulator. */
    struct Regulator
    {
        Cycle value = 0;
        std::uint32_t goodEpochs = 0;
    };

    static constexpr std::size_t kLanesPerSm = 5; // INT0/1, FP0/1, SFU

    /** Lane index of a (unit, cluster), or -1 for non-gateable units. */
    static int laneIndex(std::uint8_t unit, std::uint8_t cluster);
    static std::string laneName(std::size_t lane);

    Lane& lane(SmId sm, std::size_t lane_idx);
    Regulator& regulator(SmId sm, std::size_t type);
    bool truncated(SmId sm) const;

    void addViolation(SmId sm, Cycle cycle, const std::string& unit,
                      std::string message);

    void checkIssue(SmId sm, const Event& e);
    void checkGate(SmId sm, const Event& e);
    void checkBetExpire(SmId sm, const Event& e);
    void checkWakeup(SmId sm, const Event& e);
    void checkWakeupDone(SmId sm, const Event& e);
    void checkEpochUpdate(SmId sm, const Event& e);

    Meta meta_;
    bool blackout_ = false;     ///< policy forbids pre-BET wakeups
    bool coordinated_ = false;  ///< coordinated cluster rules apply

    std::vector<std::array<Lane, kLanesPerSm>> lanes_;      // per SM
    std::vector<std::array<Regulator, 2>> regulators_;      // per SM
    std::vector<bool> truncated_;                           // per SM

    std::vector<Violation> violations_;
    std::vector<std::string> warnings_;
    std::uint64_t events_ = 0;
    std::array<std::uint64_t, kNumEventKinds> by_kind_ = {};
};

/**
 * Convenience: replay every recorder of @p collector (flagging wrapped
 * rings) and return the violations.
 */
std::vector<Violation> checkCollector(const Collector& collector);

} // namespace wg::trace

