#include "sink.hh"

#include <array>
#include <fstream>
#include <ostream>
#include <sstream>

#include "arch/instr.hh"
#include "common/logging.hh"

namespace wg::trace {

namespace {

/** WarpLoc spellings (values match wg::WarpLoc; see sched/warp.hh). */
constexpr std::array<const char*, 4> kLocNames = {"active", "pending",
                                                 "waiting", "finished"};

const char*
locName(std::uint8_t loc)
{
    return loc < kLocNames.size() ? kLocNames[loc] : "?";
}

const char*
unitName(std::uint8_t unit)
{
    if (unit == kNoUnit)
        return nullptr;
    return unitClassName(static_cast<UnitClass>(unit));
}

/** Append `,"key":value` pairs specific to the event kind. */
void
appendArgs(std::ostream& os, const Event& e)
{
    switch (e.kind) {
      case EventKind::Issue:
      case EventKind::GreedySwitch:
        os << ",\"warp\":" << e.value;
        break;
      case EventKind::UnitBusy:
        os << ",\"idleRun\":" << e.value;
        break;
      case EventKind::Gate:
        os << ",\"reason\":\""
           << gateReasonName(static_cast<GateReason>(e.arg))
           << "\",\"actv\":" << e.value;
        break;
      case EventKind::BetExpire:
        os << ",\"held\":" << e.value;
        break;
      case EventKind::Wakeup:
        os << ",\"reason\":\""
           << wakeReasonName(static_cast<WakeReason>(e.arg)) << "\"";
        break;
      case EventKind::EpochUpdate:
        os << ",\"criticals\":" << static_cast<unsigned>(e.arg)
           << ",\"window\":" << e.value;
        break;
      case EventKind::WarpMigrate:
        os << ",\"loc\":\"" << locName(e.arg) << "\",\"warp\":" << e.value;
        break;
      case EventKind::MshrFill:
      case EventKind::MshrDrain:
        os << ",\"outstanding\":" << e.value;
        break;
      case EventKind::UnitIdle:
      case EventKind::WakeupDenied:
      case EventKind::WakeupDone:
      case EventKind::PrioritySwitch:
      case EventKind::MshrReject:
        break;
    }
}

void
appendMeta(std::ostream& os, const Meta& m)
{
    os << "{\"meta\":{\"version\":" << m.version << ",\"policy\":\""
       << m.policy << "\",\"scheduler\":\"" << m.scheduler
       << "\",\"sms\":" << m.numSms << ",\"idleDetect\":" << m.idleDetect
       << ",\"breakEven\":" << m.breakEven
       << ",\"wakeupDelay\":" << m.wakeupDelay
       << ",\"adaptive\":" << (m.adaptive ? "true" : "false")
       << ",\"idleDetectMin\":" << m.idleDetectMin
       << ",\"idleDetectMax\":" << m.idleDetectMax
       << ",\"epochLength\":" << m.epochLength
       << ",\"criticalThreshold\":" << m.criticalThreshold
       << ",\"decrementEpochs\":" << m.decrementEpochs
       << ",\"gateSfu\":" << (m.gateSfu ? "true" : "false") << "}}";
}

/** chrome://tracing tid for an event (one lane per pipeline). */
unsigned
chromeTid(const Event& e)
{
    if (e.unit == kNoUnit)
        return 8; // control lane: scheduler / warps / MSHRs
    auto uc = static_cast<UnitClass>(e.unit);
    unsigned cluster = e.cluster == kNoCluster ? 0 : e.cluster;
    switch (uc) {
      case UnitClass::Int: return 0 + cluster;
      case UnitClass::Fp: return 2 + cluster;
      case UnitClass::Sfu: return 4;
      case UnitClass::Ldst: return 5;
    }
    return 8;
}

const char*
chromeTidName(unsigned tid)
{
    switch (tid) {
      case 0: return "INT0";
      case 1: return "INT1";
      case 2: return "FP0";
      case 3: return "FP1";
      case 4: return "SFU";
      case 5: return "LDST";
      case 8: return "control";
    }
    return "?";
}

} // namespace

const char*
sinkFormatName(SinkFormat format)
{
    switch (format) {
      case SinkFormat::Chrome: return "chrome";
      case SinkFormat::Jsonl: return "jsonl";
      case SinkFormat::Csv: return "csv";
    }
    return "?";
}

bool
parseSinkFormat(const std::string& name, SinkFormat& out)
{
    for (SinkFormat f :
         {SinkFormat::Chrome, SinkFormat::Jsonl, SinkFormat::Csv}) {
        if (name == sinkFormatName(f)) {
            out = f;
            return true;
        }
    }
    return false;
}

std::string
eventToJson(SmId sm, const Event& e)
{
    std::ostringstream os;
    os << "{\"sm\":" << sm << ",\"cycle\":" << e.cycle << ",\"kind\":\""
       << eventKindName(e.kind) << "\"";
    if (const char* u = unitName(e.unit)) {
        os << ",\"unit\":\"" << u << "\"";
        if (e.cluster != kNoCluster)
            os << ",\"cluster\":" << static_cast<unsigned>(e.cluster);
    }
    appendArgs(os, e);
    os << "}";
    return os.str();
}

void
writeJsonl(std::ostream& os, const Collector& collector)
{
    appendMeta(os, collector.meta);
    os << "\n";
    for (SmId s = 0; s < collector.numSms(); ++s) {
        const Recorder* r = collector.recorder(s);
        if (!r)
            continue;
        if (r->overwritten() > 0)
            os << "{\"sm\":" << s << ",\"truncated\":" << r->overwritten()
               << "}\n";
        r->forEach([&os, s](const Event& e) {
            os << eventToJson(s, e) << "\n";
        });
    }
}

void
writeChromeTrace(std::ostream& os, const Collector& collector)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&os, &first](const std::string& obj) {
        if (!first)
            os << ",\n";
        first = false;
        os << obj;
    };

    for (SmId s = 0; s < collector.numSms(); ++s) {
        const Recorder* r = collector.recorder(s);
        if (!r)
            continue;
        {
            std::ostringstream m;
            m << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << s
              << ",\"args\":{\"name\":\"SM " << s << "\"}}";
            emit(m.str());
        }
        for (unsigned tid : {0u, 1u, 2u, 3u, 4u, 5u, 8u}) {
            std::ostringstream m;
            m << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << s
              << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
              << chromeTidName(tid) << "\"}}";
            emit(m.str());
        }
        r->forEach([&](const Event& e) {
            std::ostringstream ev;
            ev << "{\"name\":\"" << eventKindName(e.kind)
               << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.cycle
               << ",\"pid\":" << s << ",\"tid\":" << chromeTid(e)
               << ",\"args\":{\"detail\":" << eventToJson(s, e) << "}}";
            emit(ev.str());
        });
    }
    os << "],\"displayTimeUnit\":\"ns\"}\n";
}

void
writeEpochCsv(std::ostream& os, const Collector& collector)
{
    const Cycle epoch_len =
        collector.meta.epochLength > 0 ? collector.meta.epochLength : 1000;

    os << "sm,epoch,start_cycle,issues_int,issues_fp,issues_sfu,"
          "issues_ldst,gates,bet_expiries,wakeups,critical_wakeups,"
          "wakeups_denied,mshr_fills,mshr_rejects,window_int,window_fp\n";

    struct EpochRow
    {
        std::array<std::uint64_t, kNumUnitClasses> issues = {};
        std::uint64_t gates = 0, betExpiries = 0, wakeups = 0;
        std::uint64_t criticals = 0, denied = 0;
        std::uint64_t mshrFills = 0, mshrRejects = 0;
        std::int64_t windowInt = -1, windowFp = -1;
    };

    for (SmId s = 0; s < collector.numSms(); ++s) {
        const Recorder* r = collector.recorder(s);
        if (!r)
            continue;
        EpochRow row;
        std::int64_t epoch = -1;
        auto flush = [&]() {
            if (epoch < 0)
                return;
            os << s << "," << epoch << ","
               << static_cast<Cycle>(epoch) * epoch_len;
            for (std::uint64_t v : row.issues)
                os << "," << v;
            os << "," << row.gates << "," << row.betExpiries << ","
               << row.wakeups << "," << row.criticals << "," << row.denied
               << "," << row.mshrFills << "," << row.mshrRejects << ",";
            if (row.windowInt >= 0)
                os << row.windowInt;
            os << ",";
            if (row.windowFp >= 0)
                os << row.windowFp;
            os << "\n";
        };
        r->forEach([&](const Event& e) {
            auto ep = static_cast<std::int64_t>(e.cycle / epoch_len);
            if (ep != epoch) {
                flush();
                epoch = ep;
                row = EpochRow();
            }
            switch (e.kind) {
              case EventKind::Issue:
                if (e.unit < kNumUnitClasses)
                    ++row.issues[e.unit];
                break;
              case EventKind::Gate: ++row.gates; break;
              case EventKind::BetExpire: ++row.betExpiries; break;
              case EventKind::Wakeup:
                ++row.wakeups;
                if (static_cast<WakeReason>(e.arg) == WakeReason::Critical)
                    ++row.criticals;
                break;
              case EventKind::WakeupDenied: ++row.denied; break;
              case EventKind::MshrFill: ++row.mshrFills; break;
              case EventKind::MshrReject: ++row.mshrRejects; break;
              case EventKind::EpochUpdate:
                if (e.unit == static_cast<std::uint8_t>(UnitClass::Int))
                    row.windowInt = e.value;
                else if (e.unit ==
                         static_cast<std::uint8_t>(UnitClass::Fp))
                    row.windowFp = e.value;
                break;
              default:
                break;
            }
        });
        flush();
    }
}

void
writeTrace(std::ostream& os, const Collector& collector, SinkFormat format)
{
    switch (format) {
      case SinkFormat::Chrome: writeChromeTrace(os, collector); return;
      case SinkFormat::Jsonl: writeJsonl(os, collector); return;
      case SinkFormat::Csv: writeEpochCsv(os, collector); return;
    }
    panic("writeTrace: unknown sink format");
}

void
writeTraceFile(const std::string& path, const Collector& collector,
               SinkFormat format)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file '", path, "' for writing");
    writeTrace(out, collector, format);
    out.flush();
    if (!out)
        fatal("short write to trace file '", path, "'");
}

} // namespace wg::trace
