/**
 * @file
 * Trace sinks: serialise a Collector's per-SM event rings.
 *
 * Three formats:
 *   - Chrome  — a `chrome://tracing` / Perfetto-loadable JSON document
 *               (pid = SM, tid = unit pipeline, instant events)
 *   - JSONL   — one flat JSON object per line; the lossless machine
 *               format the offline checker (wgtrace) replays
 *   - CSV     — per-epoch per-SM activity timeseries for spreadsheets
 *               and plotting scripts
 *
 * All sinks drain recorders in ascending SM order and events in record
 * order, so output depends only on the simulated work — never on the
 * thread pool's scheduling. A wrapped ring is flagged (`truncated`)
 * rather than silently shortened.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "trace/recorder.hh"

namespace wg::trace {

/** Serialisation formats. */
enum class SinkFormat : std::uint8_t { Chrome, Jsonl, Csv };

/** Printable format name (the --trace-format spelling). */
const char* sinkFormatName(SinkFormat format);

/** Parse a --trace-format value. @return false when unknown. */
bool parseSinkFormat(const std::string& name, SinkFormat& out);

/** Serialise @p collector to @p os in the given format. */
void writeTrace(std::ostream& os, const Collector& collector,
                SinkFormat format);

/** Chrome about://tracing JSON document. */
void writeChromeTrace(std::ostream& os, const Collector& collector);

/** JSONL: meta line, then one event object per line. */
void writeJsonl(std::ostream& os, const Collector& collector);

/** Per-epoch CSV timeseries (epoch length from the meta; 1000 if 0). */
void writeEpochCsv(std::ostream& os, const Collector& collector);

/** Serialise to @p path; fatal() on I/O failure. */
void writeTraceFile(const std::string& path, const Collector& collector,
                    SinkFormat format);

/** Serialise one event as the JSONL object (no trailing newline). */
std::string eventToJson(SmId sm, const Event& event);

} // namespace wg::trace

