#include "recorder.hh"

#include "common/logging.hh"

namespace wg::trace {

const char*
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Issue: return "issue";
      case EventKind::UnitIdle: return "unit-idle";
      case EventKind::UnitBusy: return "unit-busy";
      case EventKind::Gate: return "gate";
      case EventKind::BetExpire: return "bet-expire";
      case EventKind::WakeupDenied: return "wakeup-denied";
      case EventKind::Wakeup: return "wakeup";
      case EventKind::WakeupDone: return "wakeup-done";
      case EventKind::EpochUpdate: return "epoch-update";
      case EventKind::PrioritySwitch: return "priority-switch";
      case EventKind::GreedySwitch: return "greedy-switch";
      case EventKind::WarpMigrate: return "warp-migrate";
      case EventKind::MshrFill: return "mshr-fill";
      case EventKind::MshrDrain: return "mshr-drain";
      case EventKind::MshrReject: return "mshr-reject";
    }
    return "?";
}

const char*
gateReasonName(GateReason reason)
{
    switch (reason) {
      case GateReason::IdleDetect: return "idle-detect";
      case GateReason::CoordDrain: return "coord-drain";
    }
    return "?";
}

const char*
wakeReasonName(WakeReason reason)
{
    switch (reason) {
      case WakeReason::Demand: return "demand";
      case WakeReason::Critical: return "critical";
      case WakeReason::Uncompensated: return "uncompensated";
    }
    return "?";
}

namespace {

template <typename E>
bool
parseByName(const char* name, E& out, std::size_t count,
            const char* (*to_name)(E))
{
    for (std::size_t i = 0; i < count; ++i) {
        E candidate = static_cast<E>(i);
        if (std::string(name) == to_name(candidate)) {
            out = candidate;
            return true;
        }
    }
    return false;
}

} // namespace

bool
parseEventKind(const char* name, EventKind& out)
{
    return parseByName(name, out, kNumEventKinds, eventKindName);
}

bool
parseGateReason(const char* name, GateReason& out)
{
    return parseByName(name, out, 2, gateReasonName);
}

bool
parseWakeReason(const char* name, WakeReason& out)
{
    return parseByName(name, out, 3, wakeReasonName);
}

Recorder::Recorder(SmId sm, std::size_t capacity) : sm_(sm)
{
    if (capacity == 0)
        fatal("trace::Recorder: capacity must be positive");
    ring_.resize(capacity);
}

std::vector<Event>
Recorder::events() const
{
    std::vector<Event> out;
    out.reserve(size_);
    forEach([&out](const Event& e) { out.push_back(e); });
    return out;
}

Collector::Collector(const RecorderConfig& config) : config_(config)
{
}

void
Collector::prepare(std::uint32_t num_sms)
{
    recorders_.clear();
    recorders_.resize(num_sms);
    for (std::uint32_t s = 0; s < num_sms; ++s) {
        if (config_.smFilter >= 0 &&
            static_cast<std::int64_t>(s) != config_.smFilter)
            continue;
        recorders_[s] = std::make_unique<Recorder>(s, config_.capacity);
    }
}

Recorder*
Collector::recorder(SmId sm)
{
    if (sm >= recorders_.size())
        return nullptr;
    return recorders_[sm].get();
}

const Recorder*
Collector::recorder(SmId sm) const
{
    if (sm >= recorders_.size())
        return nullptr;
    return recorders_[sm].get();
}

std::size_t
Collector::totalEvents() const
{
    std::size_t n = 0;
    for (const auto& r : recorders_)
        if (r)
            n += r->size();
    return n;
}

std::uint64_t
Collector::totalOverwritten() const
{
    std::uint64_t n = 0;
    for (const auto& r : recorders_)
        if (r)
            n += r->overwritten();
    return n;
}

} // namespace wg::trace
