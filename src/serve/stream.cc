#include "stream.hh"

#include "metrics/exporters.hh"
#include "serve/json.hh"
#include "serve/wire.hh"

namespace wg::serve::stream {

namespace {

/** The shared envelope head, up to (not including) the kind fields. */
std::string
framePrefix(const char* kind, const std::string& id)
{
    std::string out = "{\"wire\":";
    out += std::to_string(wire::kSchemaVersion);
    out += ",\"type\":\"frame\",\"frame\":\"";
    out += kind;
    out += "\",\"id\":\"";
    out += jsonEscape(id);
    out += '"';
    return out;
}

} // namespace

std::string
metaFrame(const std::string& id, std::size_t cell,
          const std::string& bench, const std::string& technique,
          const metrics::EpochSeries* series)
{
    std::string out = framePrefix("meta", id);
    out += ",\"cell\":";
    out += std::to_string(cell);
    out += ",\"bench\":\"";
    out += jsonEscape(bench);
    out += "\",\"technique\":\"";
    out += jsonEscape(technique);
    out += "\",\"data\":";
    out += metrics::jsonlMetaLine(series != nullptr,
                                  series ? series->epochLength : 0,
                                  series ? series->numSms() : 0);
    out += '}';
    return out;
}

std::string
epochFrame(const std::string& id, std::size_t cell, SmId sm,
           const metrics::EpochSample& s)
{
    std::string out = framePrefix("epoch", id);
    out += ",\"cell\":";
    out += std::to_string(cell);
    out += ",\"data\":";
    out += metrics::jsonlEpochLine(sm, s);
    out += '}';
    return out;
}

std::string
finalFrame(const std::string& id, std::size_t cell,
           const StatSet& registry)
{
    std::string out = framePrefix("final", id);
    out += ",\"cell\":";
    out += std::to_string(cell);
    out += ",\"data\":";
    out += metrics::jsonlFinalLine(registry);
    out += '}';
    return out;
}

std::string
progressFrame(const std::string& id, std::size_t completedCells,
              std::size_t totalCells, double etaMs)
{
    std::string out = framePrefix("progress", id);
    out += ",\"completedCells\":";
    out += std::to_string(completedCells);
    out += ",\"totalCells\":";
    out += std::to_string(totalCells);
    if (etaMs >= 0.0) {
        out += ",\"etaMs\":";
        out += metrics::formatMetricValue(etaMs);
    }
    out += '}';
    return out;
}

std::string
resultFrame(const std::string& id, const char* state,
            const std::string& error, std::uint64_t droppedFrames)
{
    std::string out = framePrefix("result", id);
    out += ",\"state\":\"";
    out += state;
    out += '"';
    if (!error.empty()) {
        out += ",\"error\":\"";
        out += jsonEscape(error);
        out += '"';
    }
    out += ",\"droppedFrames\":";
    out += std::to_string(droppedFrames);
    out += '}';
    return out;
}

std::vector<std::string>
cellFrames(const std::string& id, std::size_t cell,
           const std::string& bench, const std::string& technique,
           const metrics::EpochSeries* series, const StatSet& registry)
{
    std::vector<std::string> out;
    out.reserve(2 + (series ? series->totalSamples() : 0));
    out.push_back(metaFrame(id, cell, bench, technique, series));
    if (series != nullptr) {
        for (SmId sm = 0; sm < series->numSms(); ++sm)
            for (const metrics::EpochSample& s : series->perSm[sm])
                out.push_back(epochFrame(id, cell, sm, s));
    }
    out.push_back(finalFrame(id, cell, registry));
    return out;
}

} // namespace wg::serve::stream
