#include "net.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

namespace wg::serve {

namespace {

std::string
errnoString(const char* what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/**
 * Wait for @p events on @p fd within @p timeoutMs.
 * @return 1 ready, 0 timeout, -1 error.
 */
int
waitFd(int fd, short events, int timeoutMs)
{
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    for (;;) {
        int rc = ::poll(&p, 1, timeoutMs);
        if (rc < 0 && errno == EINTR)
            continue;
        return rc < 0 ? -1 : (rc == 0 ? 0 : 1);
    }
}

/** Milliseconds left until @p deadline (clamped at 0). */
int
remainingMs(std::chrono::steady_clock::time_point deadline)
{
    // Wire timeouts only — never feeds simulation state.
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline)
        return 0;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - now)
                  .count();
    return ms > 1000 * 3600 ? 1000 * 3600 : static_cast<int>(ms);
}

sockaddr_in
loopbackAddr(std::uint16_t port)
{
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

} // namespace

void
Fd::reset()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

Fd
listenTcp(std::uint16_t port, std::uint16_t& boundPort,
          std::string& error)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoString("socket");
        return Fd();
    }
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopbackAddr(port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        error = errnoString("bind");
        return Fd();
    }
    if (::listen(fd.get(), 64) != 0) {
        error = errnoString("listen");
        return Fd();
    }
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
        error = errnoString("getsockname");
        return Fd();
    }
    boundPort = ntohs(bound.sin_port);
    error.clear();
    return fd;
}

Fd
acceptConn(int listenFd, int timeoutMs, std::string& error)
{
    error.clear();
    int rc = waitFd(listenFd, POLLIN, timeoutMs);
    if (rc < 0) {
        error = errnoString("poll");
        return Fd();
    }
    if (rc == 0)
        return Fd(); // timeout: error stays empty
    Fd conn(::accept(listenFd, nullptr, nullptr));
    if (!conn.valid()) {
        // A peer that vanished between poll and accept is not an
        // error worth surfacing; the caller just polls again.
        if (errno != ECONNABORTED && errno != EAGAIN &&
            errno != EWOULDBLOCK)
            error = errnoString("accept");
        return Fd();
    }
    return conn;
}

Fd
connectTcp(std::uint16_t port, int timeoutMs, std::string& error)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoString("socket");
        return Fd();
    }
    sockaddr_in addr = loopbackAddr(port);
    // Loopback connects either succeed immediately or fail fast
    // (ECONNREFUSED); a blocking connect with a poll-checked retry
    // window keeps the client code simple.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs);
    for (;;) {
        if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            error.clear();
            return fd;
        }
        if (errno != ECONNREFUSED || remainingMs(deadline) == 0) {
            error = errnoString("connect");
            return Fd();
        }
        // Daemon not listening yet (startup race): back off briefly.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        fd = Fd(::socket(AF_INET, SOCK_STREAM, 0));
        if (!fd.valid()) {
            error = errnoString("socket");
            return Fd();
        }
    }
}

bool
sendAll(int fd, const std::string& data, std::string& error)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = errnoString("send");
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    error.clear();
    return true;
}

LineReader::Status
LineReader::readLine(std::string& out, int timeoutMs, std::string& error)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs < 0 ? 0
                                                            : timeoutMs);
    for (;;) {
        std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out.assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            if (!out.empty() && out.back() == '\r')
                out.pop_back();
            return Status::Line;
        }
        if (buf_.size() > max_line_) {
            error = "line exceeds " + std::to_string(max_line_) +
                    " bytes";
            return Status::Error;
        }
        if (eof_) {
            if (buf_.empty())
                return Status::Eof;
            // Final unterminated line: accept it (e.g. printf | nc).
            out = std::move(buf_);
            buf_.clear();
            return Status::Line;
        }
        int wait = timeoutMs < 0 ? -1 : remainingMs(deadline);
        int rc = waitFd(fd_, POLLIN, wait);
        if (rc < 0) {
            error = errnoString("poll");
            return Status::Error;
        }
        if (rc == 0)
            return Status::Timeout;
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = errnoString("recv");
            return Status::Error;
        }
        if (n == 0)
            eof_ = true;
        else
            buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace wg::serve
