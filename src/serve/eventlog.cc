#include "eventlog.hh"

#include <chrono>

#include "serve/json.hh"

namespace wg::serve {

namespace {

std::uint64_t
steadyMs()
{
    // Daemon self-observability only; never feeds simulation results.
    // wglint:allow(D1)
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

const char*
EventLog::levelName(Level level)
{
    switch (level) {
      case Level::Debug: return "debug";
      case Level::Info: return "info";
      case Level::Warn: return "warn";
      case Level::Error: return "error";
    }
    return "?";
}

bool
EventLog::parseLevel(const std::string& name, Level& out)
{
    for (Level l : {Level::Debug, Level::Info, Level::Warn,
                    Level::Error}) {
        if (name == levelName(l)) {
            out = l;
            return true;
        }
    }
    return false;
}

bool
EventLog::open(const std::string& path, const Options& opts,
               std::string& error)
{
    MutexLock lock(mu_);
    out_.open(path, std::ios::app);
    if (!out_) {
        error = "cannot open event log '" + path + "' for appending";
        return false;
    }
    opts_ = opts;
    if (!opts_.clockMs)
        opts_.clockMs = steadyMs;
    open_ms_ = opts_.clockMs();
    window_sec_ = 0;
    window_count_ = 0;
    enabled_ = true;
    return true;
}

bool
EventLog::enabled() const
{
    MutexLock lock(mu_);
    return enabled_;
}

void
EventLog::log(Level level, const std::string& event,
              std::initializer_list<std::pair<const char*, std::string>>
                  fields)
{
    MutexLock lock(mu_);
    if (!enabled_)
        return;
    if (level < opts_.level) {
        ++counters_.filtered;
        return;
    }
    const std::uint64_t now = opts_.clockMs();
    const std::uint64_t t_ms = now - open_ms_;
    if (opts_.maxPerSecond != 0) {
        const std::uint64_t sec = t_ms / 1000;
        if (sec != window_sec_) {
            window_sec_ = sec;
            window_count_ = 0;
        }
        if (window_count_ >= opts_.maxPerSecond) {
            ++counters_.rateLimited;
            return;
        }
        ++window_count_;
    }
    std::string line = "{\"tMs\":";
    line += std::to_string(t_ms);
    line += ",\"level\":\"";
    line += levelName(level);
    line += "\",\"event\":\"";
    line += jsonEscape(event);
    line += '"';
    for (const auto& [key, value] : fields) {
        line += ",\"";
        line += key;
        line += "\":\"";
        line += jsonEscape(value);
        line += '"';
    }
    line += "}\n";
    out_ << line;
    out_.flush();
    ++counters_.written;
}

EventLog::Counters
EventLog::counters() const
{
    MutexLock lock(mu_);
    return counters_;
}

} // namespace wg::serve
