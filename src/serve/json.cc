#include "json.hh"

#include <cmath>
#include <cstdlib>

#include "metrics/exporters.hh"

namespace wg::serve {

namespace {

/** Append a Unicode code point as UTF-8. */
void
appendUtf8(std::string& out, std::uint32_t cp)
{
    if (cp < 0x80) {
        out += static_cast<char>(cp);
    } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
        out += static_cast<char>(0xF0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
    }
}

} // namespace

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* kHex = "0123456789abcdef";
                out += "\\u00";
                out += kHex[(c >> 4) & 0xF];
                out += kHex[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    return out;
}

Json
Json::null()
{
    return Json();
}

Json
Json::boolean(bool v)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.bool_ = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.kind_ = Kind::Number;
    j.num_ = v;
    j.lexeme_ = metrics::formatMetricValue(v);
    return j;
}

Json
Json::number(std::uint64_t v)
{
    Json j;
    j.kind_ = Kind::Number;
    j.num_ = static_cast<double>(v);
    j.lexeme_ = std::to_string(v);
    return j;
}

Json
Json::string(std::string v)
{
    Json j;
    j.kind_ = Kind::String;
    j.str_ = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

std::uint64_t
Json::asU64() const
{
    if (num_ < 0.0)
        return 0;
    // Counters we serialize are emitted via the exact-integer path, so
    // the lexeme is authoritative when present (cycles can sit above
    // 2^53 in principle; doubles round there).
    if (!lexeme_.empty() && lexeme_.find_first_of(".eE-") ==
                                std::string::npos) {
        char* end = nullptr;
        std::uint64_t v = std::strtoull(lexeme_.c_str(), &end, 10);
        if (end && *end == '\0')
            return v;
    }
    return static_cast<std::uint64_t>(num_);
}

void
Json::append(Json v)
{
    items_.push_back(std::move(v));
}

void
Json::set(const std::string& key, Json v)
{
    for (auto& [k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const Json*
Json::find(const std::string& key) const
{
    for (const auto& [k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

void
Json::dumpTo(std::string& out) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        out += lexeme_.empty() ? metrics::formatMetricValue(num_)
                               : lexeme_;
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(str_);
        out += '"';
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json& v : items_) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto& [k, v] : members_) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(k);
            out += "\":";
            v.dumpTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

/**
 * Recursive-descent parser with explicit limits. Structured like the
 * metrics loader's flattener, but building the tree and keeping number
 * lexemes.
 */
class JsonParser
{
  public:
    JsonParser(const std::string& text, const JsonLimits& limits)
        : text_(text), limits_(limits)
    {
    }

    bool
    run(Json& out, std::string& error)
    {
        if (!value(out, 0)) {
            error = error_.empty() ? "malformed JSON" : error_;
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing content after JSON document";
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    fail(const std::string& what)
    {
        if (error_.empty())
            error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    parseHex4(std::uint32_t& out)
    {
        if (pos_ + 4 > text_.size())
            return fail("bad \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return fail("bad \\u escape");
        }
        return true;
    }

    bool
    parseString(std::string& out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            if (out.size() > limits_.maxStringBytes)
                return fail("string exceeds size limit");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("bad escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                std::uint32_t cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // Surrogate pair: require the low half.
                    if (pos_ + 2 > text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        return fail("lone high surrogate");
                    pos_ += 2;
                    std::uint32_t lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("lone low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(Json& out)
    {
        // Validate the JSON number grammar by hand; strtod alone would
        // accept hex, inf and nan, which must be wire errors.
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        std::size_t digits = 0;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
            ++pos_;
            ++digits;
        }
        if (digits == 0)
            return fail("expected a value");
        if (digits > 1 && text_[start] == '0')
            return fail("leading zero in number");
        if (digits > 1 && text_[start] == '-' && text_[start + 1] == '0')
            return fail("leading zero in number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            std::size_t frac = 0;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                ++frac;
            }
            if (frac == 0)
                return fail("bad fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            std::size_t exp = 0;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                ++exp;
            }
            if (exp == 0)
                return fail("bad exponent");
        }
        out.kind_ = Json::Kind::Number;
        out.lexeme_ = text_.substr(start, pos_ - start);
        out.num_ = std::strtod(out.lexeme_.c_str(), nullptr);
        return true;
    }

    bool
    value(Json& out, std::size_t depth)
    {
        if (depth > limits_.maxDepth)
            return fail("nesting exceeds depth limit");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return object(out, depth);
        if (c == '[')
            return array(out, depth);
        if (c == '"') {
            out.kind_ = Json::Kind::String;
            return parseString(out.str_);
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            out = Json::boolean(true);
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            out = Json::boolean(false);
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            out = Json::null();
            return true;
        }
        return number(out);
    }

    bool
    object(Json& out, std::size_t depth)
    {
        if (!consume('{'))
            return false;
        out.kind_ = Json::Kind::Object;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            if (out.members_.size() >= limits_.maxContainerItems)
                return fail("object exceeds member limit");
            std::string name;
            skipWs();
            if (!parseString(name))
                return false;
            if (!consume(':'))
                return false;
            Json member;
            if (!value(member, depth + 1))
                return false;
            // Duplicate keys are a wire error: silently keeping either
            // value would make dedup hashes input-order dependent.
            if (out.find(name) != nullptr)
                return fail("duplicate object key '" + name + "'");
            out.members_.emplace_back(std::move(name),
                                      std::move(member));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume('}');
        }
    }

    bool
    array(Json& out, std::size_t depth)
    {
        if (!consume('['))
            return false;
        out.kind_ = Json::Kind::Array;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            if (out.items_.size() >= limits_.maxContainerItems)
                return fail("array exceeds item limit");
            Json item;
            if (!value(item, depth + 1))
                return false;
            out.items_.push_back(std::move(item));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume(']');
        }
    }

    const std::string& text_;
    const JsonLimits& limits_;
    std::size_t pos_ = 0;
    std::string error_;
};

bool
Json::parse(const std::string& text, Json& out, std::string& error,
            const JsonLimits& limits)
{
    out = Json();
    return JsonParser(text, limits).run(out, error);
}

} // namespace wg::serve
