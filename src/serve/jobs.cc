#include "jobs.hh"

#include <algorithm>
#include <set>

#include "serve/wire.hh"
#include "workload/profile.hh"

namespace wg::serve {

const char*
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Cancelled: return "cancelled";
      case JobState::Failed: return "failed";
    }
    return "?";
}

JobManager::JobManager(ExperimentRunner& runner, JobConfig config)
    : runner_(runner), config_(config)
{
    if (config_.numPriorities == 0)
        config_.numPriorities = 1;
    if (config_.maxConcurrentJobs == 0)
        config_.maxConcurrentJobs = 1;
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

JobManager::~JobManager()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
        draining_ = true;
        // Queued jobs are abandoned (Cancelled); running jobs must
        // finish — their pool tasks reference manager state.
        for (auto& job : order_) {
            if (job->state == JobState::Queued) {
                job->state = JobState::Cancelled;
                --queued_;
                ++cancelled_;
            }
        }
        dispatch_cv_.notify_all();
        idle_cv_.wait(lock, [this] { return running_ == 0; });
    }
    dispatcher_.join();
}

bool
JobManager::validateSpec(const SweepSpec& spec,
                         std::string& error) const
{
    if (spec.benches.empty() || spec.techniques.empty()) {
        error = "sweep must name at least one benchmark and technique";
        return false;
    }
    const std::vector<std::string> known = benchmarkNames();
    std::set<std::string> seen_benches;
    for (const std::string& b : spec.benches) {
        if (std::find(known.begin(), known.end(), b) == known.end()) {
            error = "unknown benchmark '" + b + "'";
            return false;
        }
        if (!seen_benches.insert(b).second) {
            error = "duplicate benchmark '" + b + "' in sweep";
            return false;
        }
    }
    std::set<Technique> seen_techniques;
    for (Technique t : spec.techniques) {
        if (!seen_techniques.insert(t).second) {
            error = std::string("duplicate technique '") +
                    techniqueName(t) + "' in sweep";
            return false;
        }
        // The runner would fatal() on an invalid derived config;
        // admission must reject instead so a bad request can never
        // take the daemon down.
        const ExperimentOptions& opts =
            spec.options ? *spec.options : runner_.options();
        std::vector<std::string> problems =
            makeConfig(t, opts).validate();
        if (!problems.empty()) {
            error = std::string("invalid configuration for ") +
                    techniqueName(t) + ": " + problems.front();
            return false;
        }
    }
    return true;
}

JobManager::SubmitOutcome
JobManager::submit(const SweepSpec& spec, unsigned priority)
{
    SubmitOutcome out;
    std::string error;
    if (!validateSpec(spec, error)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++rejected_;
        out.error = error;
        return out;
    }
    const std::string key = wire::canonicalKey(spec);

    std::lock_guard<std::mutex> lock(mu_);
    if (priority >= config_.numPriorities) {
        ++rejected_;
        out.error = "priority must be in [0, " +
                    std::to_string(config_.numPriorities) + ")";
        return out;
    }
    if (draining_) {
        ++rejected_;
        out.error = "daemon is draining; not accepting new jobs";
        return out;
    }

    // Whole-job dedup in front of the runner cache: an equivalent live
    // job absorbs the submission (and may be promoted).
    auto dup = dedup_.find(key);
    if (dup != dedup_.end()) {
        auto it = jobs_.find(dup->second);
        if (it != jobs_.end() &&
            it->second->state != JobState::Cancelled &&
            it->second->state != JobState::Failed) {
            Job& job = *it->second;
            job.deduped = true;
            if (job.state == JobState::Queued &&
                priority > job.priority) {
                job.priority = priority;
                dispatch_cv_.notify_all();
            }
            ++dedupHits_;
            out.ok = true;
            out.id = job.id;
            out.deduped = true;
            return out;
        }
        dedup_.erase(dup); // stale mapping (cancelled/failed): retry
    }

    if (queued_ >= config_.queueCapacity) {
        ++rejected_;
        out.error = "admission queue full (" +
                    std::to_string(config_.queueCapacity) +
                    " queued jobs)";
        return out;
    }

    auto job = std::make_shared<Job>();
    job->id = "j" + std::to_string(next_id_++);
    job->spec = spec;
    job->priority = priority;
    job->submitSeq = ++submit_tick_;
    jobs_[job->id] = job;
    order_.push_back(job);
    dedup_[key] = job->id;
    ++queued_;
    ++submitted_;
    dispatch_cv_.notify_all();
    out.ok = true;
    out.id = job->id;
    return out;
}

JobStatus
JobManager::snapshotLocked(const Job& job) const
{
    JobStatus s;
    s.id = job.id;
    s.state = job.state;
    s.priority = job.priority;
    s.totalCells = job.spec.benches.size() * job.spec.techniques.size();
    s.completedCells = job.completedCells;
    s.deduped = job.deduped;
    s.submitSeq = job.submitSeq;
    s.startSeq = job.startSeq;
    s.error = job.error;
    return s;
}

std::optional<JobStatus>
JobManager::status(const std::string& id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return snapshotLocked(*it->second);
}

std::vector<JobStatus>
JobManager::listJobs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<JobStatus> out;
    out.reserve(order_.size());
    for (const auto& job : order_)
        out.push_back(snapshotLocked(*job));
    return out;
}

bool
JobManager::results(const std::string& id, std::vector<JobCell>& out,
                    ExperimentOptions& optsUsed,
                    std::string& error) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        error = "unknown job '" + id + "'";
        return false;
    }
    const Job& job = *it->second;
    if (job.state != JobState::Done) {
        error = "job '" + id + "' is " + jobStateName(job.state) +
                ", results require state done";
        return false;
    }
    out = job.cells;
    optsUsed = job.spec.options ? *job.spec.options : runner_.options();
    return true;
}

bool
JobManager::cancel(const std::string& id, std::string& error)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        error = "unknown job '" + id + "'";
        return false;
    }
    Job& job = *it->second;
    switch (job.state) {
      case JobState::Queued:
        job.state = JobState::Cancelled;
        --queued_;
        ++cancelled_;
        idle_cv_.notify_all();
        return true;
      case JobState::Running:
        // Takes effect at the job's next cell boundary.
        job.cancelRequested = true;
        return true;
      case JobState::Done:
      case JobState::Cancelled:
      case JobState::Failed:
        error = "job '" + id + "' already finished (" +
                jobStateName(job.state) + ")";
        return false;
    }
    return false;
}

void
JobManager::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    idle_cv_.wait(lock,
                  [this] { return queued_ == 0 && running_ == 0; });
}

bool
JobManager::draining() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return draining_;
}

void
JobManager::pauseDispatch()
{
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
}

void
JobManager::resumeDispatch()
{
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
    dispatch_cv_.notify_all();
}

void
JobManager::publishStats(StatSet& set) const
{
    CacheStats cache = runner_.cacheStats();
    std::lock_guard<std::mutex> lock(mu_);
    set.set("serve.jobs.submitted", static_cast<double>(submitted_));
    set.set("serve.jobs.deduped", static_cast<double>(dedupHits_));
    set.set("serve.jobs.rejected", static_cast<double>(rejected_));
    set.set("serve.jobs.completed", static_cast<double>(completed_));
    set.set("serve.jobs.cancelled", static_cast<double>(cancelled_));
    set.set("serve.jobs.failed", static_cast<double>(failed_));
    set.set("serve.jobs.queued", static_cast<double>(queued_));
    set.set("serve.jobs.running", static_cast<double>(running_));
    set.set("serve.queue.capacity",
            static_cast<double>(config_.queueCapacity));
    std::vector<std::size_t> depth(config_.numPriorities, 0);
    for (const auto& job : order_)
        if (job->state == JobState::Queued)
            ++depth[job->priority];
    for (unsigned p = 0; p < config_.numPriorities; ++p)
        set.set("serve.queue.priority" + std::to_string(p) + ".depth",
                static_cast<double>(depth[p]));
    set.set("serve.cells.completed",
            static_cast<double>(cellsCompleted_));
    set.set("serve.cache.hits", static_cast<double>(cache.hits));
    set.set("serve.cache.misses", static_cast<double>(cache.misses));
    set.set("serve.cache.evictions",
            static_cast<double>(cache.evictions));
    set.set("serve.cache.evictedBytes",
            static_cast<double>(cache.evictedBytes));
    set.set("serve.cache.entries", static_cast<double>(cache.entries));
    set.set("serve.cache.bytes", static_cast<double>(cache.bytes));
    set.set("serve.cache.inFlight",
            static_cast<double>(cache.inFlight));
}

void
JobManager::dispatcherLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            auto nextQueued = [this]() -> std::shared_ptr<Job> {
                std::shared_ptr<Job> best;
                for (const auto& j : order_) {
                    if (j->state != JobState::Queued)
                        continue;
                    if (!best || j->priority > best->priority ||
                        (j->priority == best->priority &&
                         j->submitSeq < best->submitSeq))
                        best = j;
                }
                return best;
            };
            dispatch_cv_.wait(lock, [&] {
                if (stopping_)
                    return true;
                return !paused_ &&
                       running_ < config_.maxConcurrentJobs &&
                       nextQueued() != nullptr;
            });
            if (stopping_)
                return;
            job = nextQueued();
            job->state = JobState::Running;
            job->startSeq = ++start_tick_;
            --queued_;
            ++running_;
        }
        ThreadPool* pool = runner_.pool();
        if (pool == nullptr) {
            runJob(job);
            continue;
        }
        try {
            pool->submit([this, job] { runJob(job); });
        } catch (const std::exception& e) {
            // Pool already draining (shutdown race): fail the job
            // instead of losing it silently.
            std::lock_guard<std::mutex> lock(mu_);
            job->state = JobState::Failed;
            job->error = e.what();
            ++failed_;
            --running_;
            idle_cv_.notify_all();
        }
    }
}

void
JobManager::runJob(std::shared_ptr<Job> job)
{
    std::string failure;
    bool cancelled = false;
    try {
        for (const std::string& bench : job->spec.benches) {
            for (Technique t : job->spec.techniques) {
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    if (job->cancelRequested) {
                        cancelled = true;
                        break;
                    }
                }
                std::shared_ptr<const SimResult> r =
                    runner_.runShared(bench, t, job->spec.options);
                std::lock_guard<std::mutex> lock(mu_);
                job->cells.push_back(JobCell{bench, t, std::move(r)});
                ++job->completedCells;
                ++cellsCompleted_;
            }
            if (cancelled)
                break;
        }
    } catch (const std::exception& e) {
        failure = e.what();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!failure.empty()) {
        job->state = JobState::Failed;
        job->error = failure;
        ++failed_;
    } else if (cancelled || job->cancelRequested) {
        job->state = JobState::Cancelled;
        ++cancelled_;
    } else {
        job->state = JobState::Done;
        ++completed_;
    }
    --running_;
    dispatch_cv_.notify_all();
    idle_cv_.notify_all();
}

} // namespace wg::serve
