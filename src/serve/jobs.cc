#include "jobs.hh"

#include <algorithm>
#include <chrono>
#include <set>

#include "metrics/registry.hh"
#include "serve/stream.hh"
#include "serve/wire.hh"
#include "workload/profile.hh"

namespace wg::serve {

namespace {

/** Elapsed seconds between two monotonic samples (serve-side only). */
double
elapsedSeconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace

const char*
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Cancelled: return "cancelled";
      case JobState::Failed: return "failed";
    }
    return "?";
}

JobManager::JobManager(ExperimentRunner& runner, JobConfig config)
    : runner_(runner), config_(config)
{
    if (config_.numPriorities == 0)
        config_.numPriorities = 1;
    if (config_.maxConcurrentJobs == 0)
        config_.maxConcurrentJobs = 1;
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

JobManager::~JobManager()
{
    {
        MutexLock lock(mu_);
        stopping_ = true;
        draining_ = true;
        // Queued jobs are abandoned (Cancelled); running jobs must
        // finish — their pool tasks reference manager state.
        for (auto& job : order_) {
            if (job->state == JobState::Queued) {
                job->state = JobState::Cancelled;
                --queued_;
                ++cancelled_;
                finishSubscribersLocked(*job);
            }
        }
        dispatch_cv_.notifyAll();
        while (running_ != 0)
            idle_cv_.wait(lock);
    }
    dispatcher_.join();
}

bool
JobManager::validateSpec(const SweepSpec& spec,
                         std::string& error) const
{
    if (spec.benches.empty() || spec.techniques.empty()) {
        error = "sweep must name at least one benchmark and technique";
        return false;
    }
    const std::vector<std::string> known = benchmarkNames();
    std::set<std::string> seen_benches;
    for (const std::string& b : spec.benches) {
        if (std::find(known.begin(), known.end(), b) == known.end()) {
            error = "unknown benchmark '" + b + "'";
            return false;
        }
        if (!seen_benches.insert(b).second) {
            error = "duplicate benchmark '" + b + "' in sweep";
            return false;
        }
    }
    std::set<Technique> seen_techniques;
    for (Technique t : spec.techniques) {
        if (!seen_techniques.insert(t).second) {
            error = std::string("duplicate technique '") +
                    techniqueName(t) + "' in sweep";
            return false;
        }
        // The runner would fatal() on an invalid derived config;
        // admission must reject instead so a bad request can never
        // take the daemon down.
        const ExperimentOptions& opts =
            spec.options ? *spec.options : runner_.options();
        std::vector<std::string> problems =
            makeConfig(t, opts).validate();
        if (!problems.empty()) {
            error = std::string("invalid configuration for ") +
                    techniqueName(t) + ": " + problems.front();
            return false;
        }
    }
    return true;
}

JobManager::SubmitOutcome
JobManager::submit(const SweepSpec& spec, unsigned priority)
{
    SubmitOutcome out;
    std::string error;
    if (!validateSpec(spec, error)) {
        MutexLock lock(mu_);
        ++rejected_;
        out.error = error;
        logEvent(EventLog::Level::Warn, "submitRejected",
                 {{"reason", error}});
        return out;
    }
    const std::string key = wire::canonicalKey(spec);

    MutexLock lock(mu_);
    if (priority >= config_.numPriorities) {
        ++rejected_;
        out.error = "priority must be in [0, " +
                    std::to_string(config_.numPriorities) + ")";
        logEvent(EventLog::Level::Warn, "submitRejected",
                 {{"reason", out.error}});
        return out;
    }
    if (draining_) {
        ++rejected_;
        out.error = "daemon is draining; not accepting new jobs";
        logEvent(EventLog::Level::Warn, "submitRejected",
                 {{"reason", out.error}});
        return out;
    }

    // Whole-job dedup in front of the runner cache: an equivalent live
    // job absorbs the submission (and may be promoted).
    auto dup = dedup_.find(key);
    if (dup != dedup_.end()) {
        auto it = jobs_.find(dup->second);
        if (it != jobs_.end() &&
            it->second->state != JobState::Cancelled &&
            it->second->state != JobState::Failed) {
            Job& job = *it->second;
            job.deduped = true;
            if (job.state == JobState::Queued &&
                priority > job.priority) {
                job.priority = priority;
                dispatch_cv_.notifyAll();
            }
            ++dedupHits_;
            out.ok = true;
            out.id = job.id;
            out.deduped = true;
            logEvent(EventLog::Level::Debug, "submitDeduped",
                     {{"id", job.id}});
            return out;
        }
        dedup_.erase(dup); // stale mapping (cancelled/failed): retry
    }

    if (queued_ >= config_.queueCapacity) {
        ++rejected_;
        out.error = "admission queue full (" +
                    std::to_string(config_.queueCapacity) +
                    " queued jobs)";
        logEvent(EventLog::Level::Warn, "submitRejected",
                 {{"reason", out.error}});
        return out;
    }

    auto job = std::make_shared<Job>();
    job->id = "j" + std::to_string(next_id_++);
    job->spec = spec;
    job->priority = priority;
    job->submitSeq = ++submit_tick_;
    job->submitTime = std::chrono::steady_clock::now();
    jobs_[job->id] = job;
    order_.push_back(job);
    dedup_[key] = job->id;
    ++queued_;
    ++submitted_;
    dispatch_cv_.notifyAll();
    out.ok = true;
    out.id = job->id;
    logEvent(EventLog::Level::Info, "jobSubmitted",
             {{"id", job->id},
              {"priority", std::to_string(priority)}});
    return out;
}

JobStatus
JobManager::snapshotLocked(const Job& job) const
{
    JobStatus s;
    s.id = job.id;
    s.state = job.state;
    s.priority = job.priority;
    s.totalCells = job.spec.benches.size() * job.spec.techniques.size();
    s.completedCells = job.completedCells;
    s.deduped = job.deduped;
    s.submitSeq = job.submitSeq;
    s.startSeq = job.startSeq;
    s.error = job.error;
    return s;
}

std::optional<JobStatus>
JobManager::status(const std::string& id) const
{
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return snapshotLocked(*it->second);
}

std::vector<JobStatus>
JobManager::listJobs() const
{
    MutexLock lock(mu_);
    std::vector<JobStatus> out;
    out.reserve(order_.size());
    for (const auto& job : order_)
        out.push_back(snapshotLocked(*job));
    return out;
}

bool
JobManager::results(const std::string& id, std::vector<JobCell>& out,
                    ExperimentOptions& optsUsed,
                    std::string& error) const
{
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        error = "unknown job '" + id + "'";
        return false;
    }
    const Job& job = *it->second;
    if (job.state != JobState::Done) {
        error = "job '" + id + "' is " + jobStateName(job.state) +
                ", results require state done";
        return false;
    }
    out = job.cells;
    optsUsed = job.spec.options ? *job.spec.options : runner_.options();
    return true;
}

bool
JobManager::checkpoint(const std::string& id, SweepSpec& spec,
                       std::vector<JobCell>& cells,
                       std::string& error) const
{
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        error = "unknown job '" + id + "'";
        return false;
    }
    const Job& job = *it->second;
    // Pin the effective options into the spec so the snapshot's cell
    // keys stay addressable on a daemon with different defaults.
    spec = job.spec;
    if (!spec.options)
        spec.options = runner_.options();
    cells = job.cells;
    return true;
}

std::size_t
JobManager::seedCells(const std::vector<wire::ResultCell>& cells)
{
    std::size_t seeded = 0;
    for (const wire::ResultCell& cell : cells) {
        bool known = false;
        for (const std::string& b : benchmarkNames())
            known = known || b == cell.bench;
        if (!known)
            continue; // never poison the cache with unknown keys
        if (runner_.seedCache(cell.bench, cell.technique, cell.options,
                              cell.result))
            ++seeded;
    }
    if (seeded != 0)
        logEvent(EventLog::Level::Info, "cellsSeeded",
                 {{"count", std::to_string(seeded)}});
    return seeded;
}

bool
JobManager::cancel(const std::string& id, std::string& error)
{
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        error = "unknown job '" + id + "'";
        return false;
    }
    Job& job = *it->second;
    switch (job.state) {
      case JobState::Queued:
        job.state = JobState::Cancelled;
        --queued_;
        ++cancelled_;
        recordLatenciesLocked(job);
        finishSubscribersLocked(job);
        logEvent(EventLog::Level::Info, "jobCancelled", {{"id", id}});
        idle_cv_.notifyAll();
        return true;
      case JobState::Running:
        // Takes effect at the job's next cell boundary.
        job.cancelRequested = true;
        logEvent(EventLog::Level::Info, "cancelRequested",
                 {{"id", id}});
        return true;
      case JobState::Done:
      case JobState::Cancelled:
      case JobState::Failed:
        error = "job '" + id + "' already finished (" +
                jobStateName(job.state) + ")";
        return false;
    }
    return false;
}

void
JobManager::drain()
{
    MutexLock lock(mu_);
    draining_ = true;
    while (queued_ != 0 || running_ != 0)
        idle_cv_.wait(lock);
}

bool
JobManager::draining() const
{
    MutexLock lock(mu_);
    return draining_;
}

void
JobManager::pauseDispatch()
{
    MutexLock lock(mu_);
    paused_ = true;
}

void
JobManager::resumeDispatch()
{
    MutexLock lock(mu_);
    paused_ = false;
    dispatch_cv_.notifyAll();
}

void
JobManager::publishStats(StatSet& set) const
{
    CacheStats cache = runner_.cacheStats();
    // Pool stats take the pool's own lock; gather before mu_ so the
    // lock order stays acyclic.
    PoolStats pool{};
    const bool havePool = runner_.pool() != nullptr;
    if (havePool)
        pool = runner_.pool()->stats();
    MutexLock lock(mu_);
    set.set("serve.jobs.submitted", static_cast<double>(submitted_));
    set.set("serve.jobs.deduped", static_cast<double>(dedupHits_));
    set.set("serve.jobs.rejected", static_cast<double>(rejected_));
    set.set("serve.jobs.completed", static_cast<double>(completed_));
    set.set("serve.jobs.cancelled", static_cast<double>(cancelled_));
    set.set("serve.jobs.failed", static_cast<double>(failed_));
    set.set("serve.jobs.queued", static_cast<double>(queued_));
    set.set("serve.jobs.running", static_cast<double>(running_));
    set.set("serve.queue.capacity",
            static_cast<double>(config_.queueCapacity));
    std::vector<std::size_t> depth(config_.numPriorities, 0);
    for (const auto& job : order_)
        if (job->state == JobState::Queued)
            ++depth[job->priority];
    for (unsigned p = 0; p < config_.numPriorities; ++p)
        set.set("serve.queue.priority" + std::to_string(p) + ".depth",
                static_cast<double>(depth[p]));
    set.set("serve.cells.completed",
            static_cast<double>(cellsCompleted_));
    set.set("serve.cache.hits", static_cast<double>(cache.hits));
    set.set("serve.cache.misses", static_cast<double>(cache.misses));
    set.set("serve.cache.evictions",
            static_cast<double>(cache.evictions));
    set.set("serve.cache.evictedBytes",
            static_cast<double>(cache.evictedBytes));
    set.set("serve.cache.entries", static_cast<double>(cache.entries));
    set.set("serve.cache.bytes", static_cast<double>(cache.bytes));
    set.set("serve.cache.inFlight",
            static_cast<double>(cache.inFlight));
    set.set("serve.subscriptions.opened",
            static_cast<double>(subsOpened_));
    set.set("serve.subscriptions.active",
            static_cast<double>(subsOpened_ - subsClosed_));
    set.set("serve.subscriptions.droppedFrames",
            static_cast<double>(droppedFramesTotal_));
    // Scalar latency summaries; the OpenMetrics exposition carries the
    // full histograms via latencySnapshot().
    set.set("serve.latency.admissionWait.count",
            static_cast<double>(admissionWait_.total()));
    set.set("serve.latency.admissionWait.sumSeconds",
            admissionWait_.sum());
    set.set("serve.latency.runDuration.count",
            static_cast<double>(runDuration_.total()));
    set.set("serve.latency.runDuration.sumSeconds",
            runDuration_.sum());
    set.set("serve.latency.endToEnd.count",
            static_cast<double>(endToEnd_.total()));
    set.set("serve.latency.endToEnd.sumSeconds", endToEnd_.sum());
    if (havePool) {
        set.set("pool.threads", static_cast<double>(pool.threads));
        set.set("pool.tasksExecuted",
                static_cast<double>(pool.tasksExecuted));
        set.set("pool.busySeconds", pool.busySeconds);
        set.set("pool.steals", static_cast<double>(pool.steals));
        set.set("pool.queueDepth",
                static_cast<double>(pool.queueDepth));
        set.set("pool.active", static_cast<double>(pool.active));
        set.set("pool.draining", pool.draining ? 1.0 : 0.0);
    }
}

std::shared_ptr<JobManager::Job>
JobManager::nextQueuedLocked() const
{
    // Highest priority wins; FIFO (submit order) within a priority.
    std::shared_ptr<Job> best;
    for (const auto& j : order_) {
        if (j->state != JobState::Queued)
            continue;
        if (!best || j->priority > best->priority ||
            (j->priority == best->priority &&
             j->submitSeq < best->submitSeq))
            best = j;
    }
    return best;
}

void
JobManager::dispatcherLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            MutexLock lock(mu_);
            // Explicit wait loop (not a predicate lambda): clang's
            // thread-safety analysis cannot see mu_ held inside a
            // lambda body, so the guarded reads stay inline here.
            for (;;) {
                if (stopping_)
                    return;
                if (!paused_ &&
                    running_ < config_.maxConcurrentJobs) {
                    job = nextQueuedLocked();
                    if (job != nullptr)
                        break;
                }
                dispatch_cv_.wait(lock);
            }
            job->state = JobState::Running;
            job->startSeq = ++start_tick_;
            job->startTime = std::chrono::steady_clock::now();
            admissionWait_.record(
                elapsedSeconds(job->submitTime, job->startTime));
            --queued_;
            ++running_;
            logEvent(EventLog::Level::Debug, "jobStarted",
                     {{"id", job->id}});
        }
        ThreadPool* pool = runner_.pool();
        if (pool == nullptr) {
            runJob(job);
            continue;
        }
        try {
            pool->submit([this, job] { runJob(job); });
        } catch (const std::exception& e) {
            // Pool already draining (shutdown race): fail the job
            // instead of losing it silently.
            MutexLock lock(mu_);
            job->state = JobState::Failed;
            job->error = e.what();
            ++failed_;
            --running_;
            idle_cv_.notifyAll();
        }
    }
}

void
JobManager::runJob(std::shared_ptr<Job> job)
{
    std::string failure;
    bool cancelled = false;
    std::size_t cellIndex = 0;
    try {
        for (const std::string& bench : job->spec.benches) {
            for (Technique t : job->spec.techniques) {
                {
                    MutexLock lock(mu_);
                    if (job->cancelRequested) {
                        cancelled = true;
                        break;
                    }
                }
                MeteredResult r = runner_.runMetered(
                    bench, t, job->spec.options);
                // Frame bytes are built outside the lock; only the
                // publication (log append + fan-out) is serialised.
                StatSet registry = metrics::toStatSet(*r.result);
                std::vector<std::string> frames = stream::cellFrames(
                    job->id, cellIndex, bench, techniqueName(t),
                    r.series.get(), registry);
                MutexLock lock(mu_);
                job->cells.push_back(JobCell{bench, t, r.result});
                ++job->completedCells;
                ++cellsCompleted_;
                publishFramesLocked(*job, frames);
                publishProgressLocked(*job);
                ++cellIndex;
            }
            if (cancelled)
                break;
        }
    } catch (const std::exception& e) {
        failure = e.what();
    }
    MutexLock lock(mu_);
    if (!failure.empty()) {
        job->state = JobState::Failed;
        job->error = failure;
        ++failed_;
    } else if (cancelled || job->cancelRequested) {
        job->state = JobState::Cancelled;
        ++cancelled_;
    } else {
        job->state = JobState::Done;
        ++completed_;
    }
    recordLatenciesLocked(*job);
    finishSubscribersLocked(*job);
    logEvent(EventLog::Level::Info, "jobFinished",
             {{"id", job->id},
              {"state", jobStateName(job->state)},
              {"cells", std::to_string(job->completedCells)}});
    --running_;
    dispatch_cv_.notifyAll();
    idle_cv_.notifyAll();
}

std::shared_ptr<Subscription>
JobManager::subscribe(const std::string& id, std::string& error)
{
    MutexLock lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        error = "unknown job '" + id + "'";
        return nullptr;
    }
    Job& job = *it->second;
    auto sub = std::make_shared<Subscription>();
    sub->jobId = id;
    ++subsOpened_;
    // Replay the published log so a late subscriber sees the identical
    // byte stream a prompt one did.
    for (const std::string& frame : job.frameLog)
        enqueueFrameLocked(*sub, frame, /*force=*/false);
    const std::size_t total =
        job.spec.benches.size() * job.spec.techniques.size();
    enqueueFrameLocked(*sub,
                       stream::progressFrame(job.id, job.completedCells,
                                             total, etaMsLocked(job)),
                       /*force=*/false);
    if (job.state == JobState::Done ||
        job.state == JobState::Cancelled ||
        job.state == JobState::Failed) {
        enqueueFrameLocked(*sub,
                           stream::resultFrame(job.id,
                                               jobStateName(job.state),
                                               job.error, sub->dropped),
                           /*force=*/true);
        sub->terminal = true;
    } else {
        job.subscribers.push_back(sub);
    }
    logEvent(EventLog::Level::Debug, "subscribed", {{"id", id}});
    return sub;
}

void
JobManager::unsubscribe(const std::shared_ptr<Subscription>& sub)
{
    if (sub == nullptr)
        return;
    MutexLock lock(mu_);
    if (sub->closed)
        return;
    sub->closed = true;
    ++subsClosed_;
    auto it = jobs_.find(sub->jobId);
    if (it != jobs_.end()) {
        auto& subs = it->second->subscribers;
        subs.erase(std::remove(subs.begin(), subs.end(), sub),
                   subs.end());
    }
    logEvent(EventLog::Level::Debug, "unsubscribed",
             {{"id", sub->jobId}});
}

bool
JobManager::nextFrame(Subscription& sub, std::string& out)
{
    MutexLock lock(mu_);
    if (sub.queue.empty())
        return false;
    out = std::move(sub.queue.front());
    sub.queue.pop_front();
    return true;
}

bool
JobManager::subscriptionDone(const Subscription& sub) const
{
    MutexLock lock(mu_);
    return sub.terminal && sub.queue.empty();
}

LatencySnapshot
JobManager::latencySnapshot() const
{
    MutexLock lock(mu_);
    LatencySnapshot snap;
    snap.admissionWait = admissionWait_;
    snap.runDuration = runDuration_;
    snap.endToEnd = endToEnd_;
    return snap;
}

void
JobManager::enqueueFrameLocked(Subscription& sub,
                               const std::string& frame, bool force)
{
    if (sub.closed)
        return;
    if (!force && sub.queue.size() >= config_.subscriberQueueCap) {
        ++sub.dropped;
        ++droppedFramesTotal_;
        return;
    }
    sub.queue.push_back(frame);
}

void
JobManager::publishFramesLocked(Job& job,
                                const std::vector<std::string>& frames)
{
    for (const std::string& frame : frames)
        job.frameLog.push_back(frame);
    for (const auto& sub : job.subscribers)
        for (const std::string& frame : frames)
            enqueueFrameLocked(*sub, frame, /*force=*/false);
}

void
JobManager::publishProgressLocked(Job& job)
{
    if (job.subscribers.empty())
        return;
    const std::size_t total =
        job.spec.benches.size() * job.spec.techniques.size();
    const std::string frame = stream::progressFrame(
        job.id, job.completedCells, total, etaMsLocked(job));
    for (const auto& sub : job.subscribers)
        enqueueFrameLocked(*sub, frame, /*force=*/false);
}

void
JobManager::finishSubscribersLocked(Job& job)
{
    for (const auto& sub : job.subscribers) {
        enqueueFrameLocked(*sub,
                           stream::resultFrame(job.id,
                                               jobStateName(job.state),
                                               job.error, sub->dropped),
                           /*force=*/true);
        sub->terminal = true;
    }
    job.subscribers.clear();
}

double
JobManager::etaMsLocked(const Job& job) const
{
    if (job.state != JobState::Running || job.completedCells == 0)
        return -1.0;
    const std::size_t total =
        job.spec.benches.size() * job.spec.techniques.size();
    if (job.completedCells >= total)
        return 0.0;
    const double perCell =
        elapsedSeconds(job.startTime,
                       std::chrono::steady_clock::now()) /
        static_cast<double>(job.completedCells);
    return perCell * static_cast<double>(total - job.completedCells) *
           1000.0;
}

void
JobManager::recordLatenciesLocked(Job& job)
{
    const auto now = std::chrono::steady_clock::now();
    if (job.startSeq != 0)
        runDuration_.record(elapsedSeconds(job.startTime, now));
    endToEnd_.record(elapsedSeconds(job.submitTime, now));
}

void
JobManager::logEvent(
    EventLog::Level level, const std::string& event,
    std::initializer_list<std::pair<const char*, std::string>> fields)
    const
{
    if (config_.events != nullptr)
        config_.events->log(level, event, fields);
}

} // namespace wg::serve
