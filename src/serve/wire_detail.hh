/**
 * @file
 * Shared building blocks of the wire codecs (wire.cc, snapshot.cc):
 * typed field readers whose error strings carry the dotted path to the
 * offending member, and the leaf struct (de)serializers both document
 * families use. Everything here follows the wire conventions —
 * camelCase member names, deterministic number formatting, and
 * deserialization that returns false with an actionable error instead
 * of aborting.
 *
 * This is an internal header: tools and tests should speak through
 * wire.hh / snapshot.hh. It exists so the snapshot codec can reuse the
 * exact helpers (and so the wglint D5 snapshot-drift rule can index the
 * codec functions by name).
 */

#pragma once

#include <string>

#include "serve/json.hh"
#include "sim/result.hh"
#include "sim/smstats.hh"

namespace wg::serve::wire::detail {

// ----- typed field readers (error strings carry the dotted path) -----

/** Set @p error to "<path>: <what>"; always returns false. */
bool failAt(std::string& error, const std::string& path,
            const std::string& what);

/** Fetch member @p key of object @p obj into @p out. */
bool getMember(const Json& obj, const std::string& path, const char* key,
               const Json*& out, std::string& error);

bool getU64(const Json& obj, const std::string& path, const char* key,
            std::uint64_t& out, std::string& error);

bool getDouble(const Json& obj, const std::string& path, const char* key,
               double& out, std::string& error);

bool getBool(const Json& obj, const std::string& path, const char* key,
             bool& out, std::string& error);

bool getString(const Json& obj, const std::string& path, const char* key,
               std::string& out, std::string& error);

/**
 * Fetch array member @p key; when @p size is non-zero the array must
 * have exactly that many elements.
 */
bool getArray(const Json& obj, const std::string& path, const char* key,
              std::size_t size, const Json*& out, std::string& error);

/** Element @p i of array @p arr as a non-negative integer. */
bool u64Item(const Json& arr, const std::string& path, std::size_t i,
             std::uint64_t& out, std::string& error);

// ----- leaf struct (de)serializers -----

Json histogramToJson(const Histogram& h);
bool histogramFromJson(const Json& j, const std::string& path,
                       Histogram& out, std::string& error);

Json pgStatsToJson(const PgDomainStats& s);
bool pgStatsFromJson(const Json& j, const std::string& path,
                     PgDomainStats& out, std::string& error);

Json clusterToJson(const ClusterStats& c);
bool clusterFromJson(const Json& j, const std::string& path,
                     ClusterStats& out, std::string& error);

Json energyToJson(const UnitEnergy& e);
bool energyFromJson(const Json& j, const std::string& path,
                    UnitEnergy& out, std::string& error);

Json u64ArrayToJson(const std::uint64_t* values, std::size_t n);
bool u64ArrayFromJson(const Json& obj, const std::string& path,
                      const char* key, std::uint64_t* out, std::size_t n,
                      std::string& error);

Json smStatsToJson(const SmStats& s);
bool smStatsFromJson(const Json& j, const std::string& path, SmStats& out,
                     std::string& error);

/** {"wire":kSchemaVersion,"type":<type>} document skeleton. */
Json makeEnvelope(const char* type);

} // namespace wg::serve::wire::detail
