#include "wire.hh"

#include "serve/wire_detail.hh"
#include "workload/profile.hh"

namespace wg::serve::wire {

namespace detail {

// ----- typed field readers (error strings carry the dotted path) -----

bool
failAt(std::string& error, const std::string& path,
       const std::string& what)
{
    error = path + ": " + what;
    return false;
}

bool
getMember(const Json& obj, const std::string& path, const char* key,
          const Json*& out, std::string& error)
{
    if (!obj.isObject())
        return failAt(error, path, "expected an object");
    out = obj.find(key);
    if (out == nullptr)
        return failAt(error, path, std::string("missing member '") +
                                       key + "'");
    return true;
}

bool
getU64(const Json& obj, const std::string& path, const char* key,
       std::uint64_t& out, std::string& error)
{
    const Json* m = nullptr;
    if (!getMember(obj, path, key, m, error))
        return false;
    if (!m->isNumber() || m->asDouble() < 0)
        return failAt(error, path + "." + key,
                      "expected a non-negative number");
    out = m->asU64();
    return true;
}

bool
getDouble(const Json& obj, const std::string& path, const char* key,
          double& out, std::string& error)
{
    const Json* m = nullptr;
    if (!getMember(obj, path, key, m, error))
        return false;
    if (!m->isNumber())
        return failAt(error, path + "." + key, "expected a number");
    out = m->asDouble();
    return true;
}

bool
getBool(const Json& obj, const std::string& path, const char* key,
        bool& out, std::string& error)
{
    const Json* m = nullptr;
    if (!getMember(obj, path, key, m, error))
        return false;
    if (!m->isBool())
        return failAt(error, path + "." + key, "expected a boolean");
    out = m->asBool();
    return true;
}

bool
getString(const Json& obj, const std::string& path, const char* key,
          std::string& out, std::string& error)
{
    const Json* m = nullptr;
    if (!getMember(obj, path, key, m, error))
        return false;
    if (!m->isString())
        return failAt(error, path + "." + key, "expected a string");
    out = m->asString();
    return true;
}

bool
getArray(const Json& obj, const std::string& path, const char* key,
         std::size_t size, const Json*& out, std::string& error)
{
    if (!getMember(obj, path, key, out, error))
        return false;
    if (!out->isArray())
        return failAt(error, path + "." + key, "expected an array");
    if (size != 0 && out->items().size() != size)
        return failAt(error, path + "." + key,
                      "expected exactly " + std::to_string(size) +
                          " elements, got " +
                          std::to_string(out->items().size()));
    return true;
}

bool
u64Item(const Json& arr, const std::string& path, std::size_t i,
        std::uint64_t& out, std::string& error)
{
    const Json& v = arr.items()[i];
    if (!v.isNumber() || v.asDouble() < 0)
        return failAt(error, path + "." + std::to_string(i),
                      "expected a non-negative number");
    out = v.asU64();
    return true;
}

// ----- leaf struct (de)serializers -----

Json
histogramToJson(const Histogram& h)
{
    Json j = Json::object();
    j.set("maxBin", Json::number(h.maxBin()));
    Json bins = Json::array();
    for (std::uint64_t b = 0; b <= h.maxBin(); ++b)
        bins.append(Json::number(h.bin(b)));
    j.set("bins", std::move(bins));
    j.set("overflow", Json::number(h.overflow()));
    j.set("total", Json::number(h.total()));
    j.set("sum", Json::number(h.sum()));
    return j;
}

bool
histogramFromJson(const Json& j, const std::string& path, Histogram& out,
                  std::string& error)
{
    std::uint64_t max_bin = 0;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    if (!getU64(j, path, "maxBin", max_bin, error) ||
        !getU64(j, path, "overflow", overflow, error) ||
        !getU64(j, path, "total", total, error) ||
        !getU64(j, path, "sum", sum, error))
        return false;
    if (max_bin > 1 << 20)
        return failAt(error, path + ".maxBin", "implausibly large");
    const Json* bins_j = nullptr;
    if (!getArray(j, path, "bins", max_bin + 1, bins_j, error))
        return false;
    std::vector<std::uint64_t> bins(max_bin + 1, 0);
    std::uint64_t binned = 0;
    for (std::size_t i = 0; i <= max_bin; ++i) {
        if (!u64Item(*bins_j, path + ".bins", i, bins[i], error))
            return false;
        binned += bins[i];
    }
    if (binned + overflow != total)
        return failAt(error, path,
                      "total does not equal sum(bins) + overflow");
    out = Histogram::fromRaw(max_bin, std::move(bins), overflow, total,
                             sum);
    return true;
}

Json
pgStatsToJson(const PgDomainStats& s)
{
    Json j = Json::object();
    j.set("busyCycles", Json::number(s.busyCycles));
    j.set("idleOnCycles", Json::number(s.idleOnCycles));
    j.set("uncompCycles", Json::number(s.uncompCycles));
    j.set("compCycles", Json::number(s.compCycles));
    j.set("wakeupCycles", Json::number(s.wakeupCycles));
    j.set("gatingEvents", Json::number(s.gatingEvents));
    j.set("wakeups", Json::number(s.wakeups));
    j.set("uncompWakeups", Json::number(s.uncompWakeups));
    j.set("criticalWakeups", Json::number(s.criticalWakeups));
    j.set("coordImmediateGates", Json::number(s.coordImmediateGates));
    j.set("coordGateVetoes", Json::number(s.coordGateVetoes));
    return j;
}

bool
pgStatsFromJson(const Json& j, const std::string& path,
                PgDomainStats& out, std::string& error)
{
    return getU64(j, path, "busyCycles", out.busyCycles, error) &&
           getU64(j, path, "idleOnCycles", out.idleOnCycles, error) &&
           getU64(j, path, "uncompCycles", out.uncompCycles, error) &&
           getU64(j, path, "compCycles", out.compCycles, error) &&
           getU64(j, path, "wakeupCycles", out.wakeupCycles, error) &&
           getU64(j, path, "gatingEvents", out.gatingEvents, error) &&
           getU64(j, path, "wakeups", out.wakeups, error) &&
           getU64(j, path, "uncompWakeups", out.uncompWakeups, error) &&
           getU64(j, path, "criticalWakeups", out.criticalWakeups,
                  error) &&
           getU64(j, path, "coordImmediateGates",
                  out.coordImmediateGates, error) &&
           getU64(j, path, "coordGateVetoes", out.coordGateVetoes,
                  error);
}

Json
clusterToJson(const ClusterStats& c)
{
    Json j = Json::object();
    j.set("pg", pgStatsToJson(c.pg));
    j.set("issues", Json::number(c.issues));
    j.set("idleHist", histogramToJson(c.idleHist));
    return j;
}

bool
clusterFromJson(const Json& j, const std::string& path, ClusterStats& out,
                std::string& error)
{
    const Json* pg_j = nullptr;
    const Json* hist_j = nullptr;
    if (!getMember(j, path, "pg", pg_j, error) ||
        !pgStatsFromJson(*pg_j, path + ".pg", out.pg, error) ||
        !getU64(j, path, "issues", out.issues, error) ||
        !getMember(j, path, "idleHist", hist_j, error) ||
        !histogramFromJson(*hist_j, path + ".idleHist", out.idleHist,
                           error))
        return false;
    return true;
}

Json
energyToJson(const UnitEnergy& e)
{
    Json j = Json::object();
    j.set("dynamicJ", Json::number(e.dynamicE));
    j.set("staticJ", Json::number(e.staticE));
    j.set("overheadJ", Json::number(e.overheadE));
    j.set("staticSavedJ", Json::number(e.staticSaved));
    j.set("staticNoPgJ", Json::number(e.staticNoPg));
    return j;
}

bool
energyFromJson(const Json& j, const std::string& path, UnitEnergy& out,
               std::string& error)
{
    return getDouble(j, path, "dynamicJ", out.dynamicE, error) &&
           getDouble(j, path, "staticJ", out.staticE, error) &&
           getDouble(j, path, "overheadJ", out.overheadE, error) &&
           getDouble(j, path, "staticSavedJ", out.staticSaved, error) &&
           getDouble(j, path, "staticNoPgJ", out.staticNoPg, error);
}

Json
u64ArrayToJson(const std::uint64_t* values, std::size_t n)
{
    Json arr = Json::array();
    for (std::size_t i = 0; i < n; ++i)
        arr.append(Json::number(values[i]));
    return arr;
}

bool
u64ArrayFromJson(const Json& obj, const std::string& path,
                 const char* key, std::uint64_t* out, std::size_t n,
                 std::string& error)
{
    const Json* arr = nullptr;
    if (!getArray(obj, path, key, n, arr, error))
        return false;
    for (std::size_t i = 0; i < n; ++i)
        if (!u64Item(*arr, path + "." + key, i, out[i], error))
            return false;
    return true;
}

Json
smStatsToJson(const SmStats& s)
{
    Json j = Json::object();
    j.set("cycles", Json::number(s.cycles));
    j.set("completed", Json::boolean(s.completed));
    j.set("issuedByClass",
          u64ArrayToJson(s.issuedByClass.data(), kNumUnitClasses));
    j.set("issuedTotal", Json::number(s.issuedTotal));
    Json clusters = Json::object();
    const char* kTypeNames[2] = {"int", "fp"};
    for (std::size_t type = 0; type < 2; ++type) {
        Json pair = Json::array();
        for (std::size_t c = 0; c < 2; ++c)
            pair.append(clusterToJson(s.clusters[type][c]));
        clusters.set(kTypeNames[type], std::move(pair));
    }
    j.set("clusters", std::move(clusters));
    j.set("sfuCluster", clusterToJson(s.sfuCluster));
    j.set("sfuIssues", Json::number(s.sfuIssues));
    j.set("ldstIssues", Json::number(s.ldstIssues));
    j.set("sfuBusyCycles", Json::number(s.sfuBusyCycles));
    j.set("ldstBusyCycles", Json::number(s.ldstBusyCycles));
    j.set("activeSizeAccum", Json::number(s.activeSizeAccum));
    j.set("activeSizeMax",
          Json::number(static_cast<std::uint64_t>(s.activeSizeMax)));
    j.set("prioritySwitches", Json::number(s.prioritySwitches));
    j.set("wakeupRequests", Json::number(s.wakeupRequests));
    j.set("memHits", Json::number(s.memHits));
    j.set("memMisses", Json::number(s.memMisses));
    j.set("memStores", Json::number(s.memStores));
    j.set("mshrRejects", Json::number(s.mshrRejects));
    j.set("finalIdleDetect",
          u64ArrayToJson(s.finalIdleDetect.data(), 2));
    j.set("adaptIncrements",
          u64ArrayToJson(s.adaptIncrements.data(), 2));
    j.set("adaptDecrements",
          u64ArrayToJson(s.adaptDecrements.data(), 2));
    return j;
}

bool
smStatsFromJson(const Json& j, const std::string& path, SmStats& out,
                std::string& error)
{
    if (!getU64(j, path, "cycles", out.cycles, error) ||
        !getBool(j, path, "completed", out.completed, error) ||
        !u64ArrayFromJson(j, path, "issuedByClass",
                          out.issuedByClass.data(), kNumUnitClasses,
                          error) ||
        !getU64(j, path, "issuedTotal", out.issuedTotal, error))
        return false;
    const Json* clusters = nullptr;
    if (!getMember(j, path, "clusters", clusters, error))
        return false;
    const char* kTypeNames[2] = {"int", "fp"};
    for (std::size_t type = 0; type < 2; ++type) {
        const Json* pair = nullptr;
        const std::string cpath = path + ".clusters";
        if (!getArray(*clusters, cpath, kTypeNames[type], 2, pair,
                      error))
            return false;
        for (std::size_t c = 0; c < 2; ++c) {
            const std::string ipath = cpath + "." + kTypeNames[type] +
                                      "." + std::to_string(c);
            if (!pair->items()[c].isObject())
                return failAt(error, ipath, "expected an object");
            if (!clusterFromJson(pair->items()[c], ipath,
                                 out.clusters[type][c], error))
                return false;
        }
    }
    const Json* sfu = nullptr;
    if (!getMember(j, path, "sfuCluster", sfu, error) ||
        !clusterFromJson(*sfu, path + ".sfuCluster", out.sfuCluster,
                         error))
        return false;
    std::uint64_t active_max = 0;
    if (!getU64(j, path, "sfuIssues", out.sfuIssues, error) ||
        !getU64(j, path, "ldstIssues", out.ldstIssues, error) ||
        !getU64(j, path, "sfuBusyCycles", out.sfuBusyCycles, error) ||
        !getU64(j, path, "ldstBusyCycles", out.ldstBusyCycles, error) ||
        !getU64(j, path, "activeSizeAccum", out.activeSizeAccum,
                error) ||
        !getU64(j, path, "activeSizeMax", active_max, error) ||
        !getU64(j, path, "prioritySwitches", out.prioritySwitches,
                error) ||
        !getU64(j, path, "wakeupRequests", out.wakeupRequests, error) ||
        !getU64(j, path, "memHits", out.memHits, error) ||
        !getU64(j, path, "memMisses", out.memMisses, error) ||
        !getU64(j, path, "memStores", out.memStores, error) ||
        !getU64(j, path, "mshrRejects", out.mshrRejects, error))
        return false;
    if (active_max > UINT32_MAX)
        return failAt(error, path + ".activeSizeMax", "out of range");
    out.activeSizeMax = static_cast<std::uint32_t>(active_max);
    if (!u64ArrayFromJson(j, path, "finalIdleDetect",
                          out.finalIdleDetect.data(), 2, error) ||
        !u64ArrayFromJson(j, path, "adaptIncrements",
                          out.adaptIncrements.data(), 2, error) ||
        !u64ArrayFromJson(j, path, "adaptDecrements",
                          out.adaptDecrements.data(), 2, error))
        return false;
    return true;
}

Json
makeEnvelope(const char* type)
{
    Json doc = Json::object();
    doc.set("wire", Json::number(kSchemaVersion));
    doc.set("type", Json::string(type));
    return doc;
}

} // namespace detail

using namespace detail;

bool
checkEnvelope(const Json& doc, const std::string& type,
              std::string& error)
{
    if (!doc.isObject())
        return failAt(error, "$", "expected an object document");
    const Json* v = doc.find("wire");
    if (v == nullptr || !v->isNumber())
        return failAt(error, "$.wire", "missing schema version");
    if (v->asU64() < kMinSchemaVersion || v->asU64() > kSchemaVersion) {
        error = "$.wire: unsupported schema version " +
                std::to_string(v->asU64()) + " (this build speaks " +
                std::to_string(kMinSchemaVersion) + ".." +
                std::to_string(kSchemaVersion) + ")";
        return false;
    }
    std::string t;
    if (!getString(doc, "$", "type", t, error))
        return false;
    if (t != type)
        return failAt(error, "$.type",
                      "expected '" + type + "', got '" + t + "'");
    return true;
}

bool
parseTechnique(const std::string& name, Technique& out)
{
    for (Technique t : allTechniques()) {
        if (name == techniqueName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

Json
toJson(const ExperimentOptions& opts)
{
    Json j = Json::object();
    j.set("numSms",
          Json::number(static_cast<std::uint64_t>(opts.numSms)));
    j.set("seed", Json::number(opts.seed));
    j.set("idleDetect", Json::number(opts.idleDetect));
    j.set("breakEven", Json::number(opts.breakEven));
    j.set("wakeupDelay", Json::number(opts.wakeupDelay));
    return j;
}

bool
fromJson(const Json& j, ExperimentOptions& out, std::string& error)
{
    std::uint64_t num_sms = 0;
    if (!getU64(j, "options", "numSms", num_sms, error) ||
        !getU64(j, "options", "seed", out.seed, error) ||
        !getU64(j, "options", "idleDetect", out.idleDetect, error) ||
        !getU64(j, "options", "breakEven", out.breakEven, error) ||
        !getU64(j, "options", "wakeupDelay", out.wakeupDelay, error))
        return false;
    if (num_sms == 0 || num_sms > 4096)
        return failAt(error, "options.numSms",
                      "must be in [1, 4096]");
    out.numSms = static_cast<unsigned>(num_sms);
    return true;
}

Json
toJson(const SweepSpec& spec)
{
    Json j = Json::object();
    Json benches = Json::array();
    for (const std::string& b : spec.benches)
        benches.append(Json::string(b));
    j.set("benches", std::move(benches));
    Json techniques = Json::array();
    for (Technique t : spec.techniques)
        techniques.append(Json::string(techniqueName(t)));
    j.set("techniques", std::move(techniques));
    if (spec.options)
        j.set("options", toJson(*spec.options));
    return j;
}

bool
fromJson(const Json& j, SweepSpec& out, std::string& error)
{
    const Json* benches = nullptr;
    if (!getArray(j, "sweep", "benches", 0, benches, error))
        return false;
    if (benches->items().empty())
        return failAt(error, "sweep.benches", "must not be empty");
    std::vector<std::string> bench_names;
    for (std::size_t i = 0; i < benches->items().size(); ++i) {
        const Json& b = benches->items()[i];
        if (!b.isString())
            return failAt(error,
                          "sweep.benches." + std::to_string(i),
                          "expected a string");
        bench_names.push_back(b.asString());
    }
    const Json* techniques = nullptr;
    if (!getArray(j, "sweep", "techniques", 0, techniques, error))
        return false;
    if (techniques->items().empty())
        return failAt(error, "sweep.techniques", "must not be empty");
    std::vector<Technique> techs;
    for (std::size_t i = 0; i < techniques->items().size(); ++i) {
        const Json& t = techniques->items()[i];
        Technique parsed = Technique::Baseline;
        if (!t.isString() || !parseTechnique(t.asString(), parsed))
            return failAt(error,
                          "sweep.techniques." + std::to_string(i),
                          "unknown technique");
        techs.push_back(parsed);
    }
    std::optional<ExperimentOptions> options;
    if (const Json* o = j.find("options")) {
        ExperimentOptions parsed;
        if (!fromJson(*o, parsed, error))
            return false;
        options = parsed;
    }
    out = SweepSpec(std::move(bench_names), std::move(techs),
                    std::move(options));
    return true;
}

Json
optionsDoc(const ExperimentOptions& opts)
{
    Json doc = makeEnvelope("options");
    doc.set("options", toJson(opts));
    return doc;
}

bool
parseOptionsDoc(const Json& doc, ExperimentOptions& out,
                std::string& error)
{
    if (!checkEnvelope(doc, "options", error))
        return false;
    const Json* body = nullptr;
    if (!getMember(doc, "$", "options", body, error))
        return false;
    return fromJson(*body, out, error);
}

Json
sweepDoc(const SweepSpec& spec)
{
    Json doc = makeEnvelope("sweep");
    doc.set("sweep", toJson(spec));
    return doc;
}

bool
parseSweepDoc(const Json& doc, SweepSpec& out, std::string& error)
{
    if (!checkEnvelope(doc, "sweep", error))
        return false;
    const Json* body = nullptr;
    if (!getMember(doc, "$", "sweep", body, error))
        return false;
    return fromJson(*body, out, error);
}

Json
resultDoc(const std::string& bench, Technique technique,
          const ExperimentOptions& opts, const SimResult& result)
{
    Json doc = makeEnvelope("result");
    doc.set("bench", Json::string(bench));
    doc.set("technique", Json::string(techniqueName(technique)));
    doc.set("options", toJson(opts));
    Json body = Json::object();
    body.set("cycles", Json::number(result.cycles));
    body.set("totalSmCycles", Json::number(result.totalSmCycles));
    Json sm_cycles = Json::array();
    for (Cycle c : result.smCycles)
        sm_cycles.append(Json::number(c));
    body.set("smCycles", std::move(sm_cycles));
    body.set("aggregate", smStatsToJson(result.aggregate));
    Json energy = Json::object();
    energy.set("int", energyToJson(result.intEnergy));
    energy.set("fp", energyToJson(result.fpEnergy));
    energy.set("sfu", energyToJson(result.sfuEnergy));
    energy.set("ldst", energyToJson(result.ldstEnergy));
    body.set("energy", std::move(energy));
    doc.set("result", std::move(body));
    return doc;
}

bool
parseResultDoc(const Json& doc, ResultCell& out, std::string& error)
{
    if (!checkEnvelope(doc, "result", error))
        return false;
    std::string technique_name;
    if (!getString(doc, "$", "bench", out.bench, error) ||
        !getString(doc, "$", "technique", technique_name, error))
        return false;
    if (!parseTechnique(technique_name, out.technique))
        return failAt(error, "$.technique",
                      "unknown technique '" + technique_name + "'");
    const Json* options = nullptr;
    if (!getMember(doc, "$", "options", options, error) ||
        !fromJson(*options, out.options, error))
        return false;

    // Rebuild the full configuration the same way the runner derives
    // it; reject (never abort on) configs this build finds invalid.
    SimResult fresh;
    out.result = std::move(fresh);
    out.result.config = makeConfig(out.technique, out.options);
    {
        std::vector<std::string> problems = out.result.config.validate();
        if (!problems.empty())
            return failAt(error, "$.options",
                          "invalid configuration: " + problems.front());
    }

    const Json* body = nullptr;
    if (!getMember(doc, "$", "result", body, error))
        return false;
    const std::string path = "result";
    if (!getU64(*body, path, "cycles", out.result.cycles, error) ||
        !getU64(*body, path, "totalSmCycles", out.result.totalSmCycles,
                error))
        return false;
    const Json* sm_cycles = nullptr;
    if (!getArray(*body, path, "smCycles", 0, sm_cycles, error))
        return false;
    if (sm_cycles->items().size() != out.options.numSms)
        return failAt(error, path + ".smCycles",
                      "length does not match options.numSms");
    out.result.smCycles.resize(sm_cycles->items().size());
    for (std::size_t i = 0; i < out.result.smCycles.size(); ++i)
        if (!u64Item(*sm_cycles, path + ".smCycles", i,
                     out.result.smCycles[i], error))
            return false;
    const Json* aggregate = nullptr;
    if (!getMember(*body, path, "aggregate", aggregate, error) ||
        !smStatsFromJson(*aggregate, path + ".aggregate",
                         out.result.aggregate, error))
        return false;
    const Json* energy = nullptr;
    if (!getMember(*body, path, "energy", energy, error))
        return false;
    const Json* e = nullptr;
    if (!getMember(*energy, path + ".energy", "int", e, error) ||
        !energyFromJson(*e, path + ".energy.int", out.result.intEnergy,
                        error) ||
        !getMember(*energy, path + ".energy", "fp", e, error) ||
        !energyFromJson(*e, path + ".energy.fp", out.result.fpEnergy,
                        error) ||
        !getMember(*energy, path + ".energy", "sfu", e, error) ||
        !energyFromJson(*e, path + ".energy.sfu", out.result.sfuEnergy,
                        error) ||
        !getMember(*energy, path + ".energy", "ldst", e, error) ||
        !energyFromJson(*e, path + ".energy.ldst",
                        out.result.ldstEnergy, error))
        return false;

    // The per-type idle histograms are pure aggregations (Gpu::run
    // builds them the same way); rebuilding keeps the wire format
    // non-redundant and the two views impossible to disagree.
    const auto& cl = out.result.aggregate.clusters;
    for (std::size_t type = 0; type < 2; ++type) {
        if (cl[type][0].idleHist.maxBin() !=
            cl[type][1].idleHist.maxBin())
            return failAt(error, path + ".aggregate.clusters",
                          "cluster idleHist maxBin mismatch");
    }
    out.result.intIdleHist = cl[0][0].idleHist;
    out.result.intIdleHist.merge(cl[0][1].idleHist);
    out.result.fpIdleHist = cl[1][0].idleHist;
    out.result.fpIdleHist.merge(cl[1][1].idleHist);
    return true;
}

std::string
canonicalKey(const SweepSpec& spec)
{
    return toJson(spec).dump();
}

} // namespace wg::serve::wire
