/**
 * @file
 * Client side of the serving protocol: one connection, synchronous
 * request/response, typed wrappers over the wire documents. This is
 * the whole of what wgctl (and the e2e tests) talk through.
 *
 * Every call returns false with an error string on failure — protocol
 * errors, malformed responses, timeouts — and never aborts, so a tool
 * can print the error and exit nonzero.
 */

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/jobs.hh"
#include "serve/net.hh"
#include "serve/wire.hh"

namespace wg::serve {

/** Kinds of pushed stream frames (see stream.hh for the grammar). */
enum class FrameKind : std::uint8_t {
    Meta,
    Epoch,
    Final,
    Progress,
    Result,
};

/** One parsed stream frame. */
struct Frame
{
    FrameKind kind = FrameKind::Progress;
    std::string jobId;

    /**
     * Exact bytes of the embedded wgmetrics jsonl line (meta / epoch /
     * final frames) — number lexemes preserved, so concatenating these
     * reproduces the offline `wgsim --metrics` export byte for byte.
     */
    std::string data;
    std::size_t cell = 0;  ///< meta/epoch/final
    std::string bench;     ///< meta
    std::string technique; ///< meta

    std::size_t completedCells = 0; ///< progress
    std::size_t totalCells = 0;     ///< progress
    double etaMs = -1.0;            ///< progress; < 0 = unknown

    std::string state;                ///< result
    std::string error;                ///< result (failed jobs)
    std::uint64_t droppedFrames = 0;  ///< result
};

class Client
{
  public:
    Client() = default;

    /** Connect to the daemon on loopback:@p port. */
    bool connect(std::uint16_t port, int timeoutMs, std::string& error);

    bool connected() const { return fd_.valid(); }

    /** Submit a sweep; @p id receives the (possibly deduped) job id. */
    bool submit(const SweepSpec& spec, unsigned priority,
                std::string& id, bool& deduped, std::string& error);

    /**
     * Resubmit a job snapshot (see wire::jobSnapshotDoc): the
     * snapshot's sweep is submitted and its completed cells ride along
     * to seed the daemon's result cache, so only unfinished cells are
     * recomputed. @p seeded receives how many cells the daemon
     * actually seeded (already-cached cells are skipped).
     */
    bool submitSnapshot(const Json& snapshotDoc, unsigned priority,
                        std::string& id, bool& deduped,
                        std::uint64_t& seeded, std::string& error);

    /**
     * Fetch a checkpoint of job @p id in any state: its sweep plus
     * every completed cell, as a jobSnapshot document suitable for
     * submitSnapshot() on this or another daemon.
     */
    bool checkpoint(const std::string& id, Json& snapshotDoc,
                    std::string& error);

    bool status(const std::string& id, JobStatus& out,
                std::string& error);

    bool listJobs(std::vector<JobStatus>& out, std::string& error);

    /**
     * Poll status() every @p pollMs until the job reaches a terminal
     * state (Done/Cancelled/Failed) or @p timeoutMs expires.
     */
    bool waitForJob(const std::string& id, int pollMs, int timeoutMs,
                    JobStatus& out, std::string& error);

    /** Fetch a Done job's cells (deserialized results). */
    bool results(const std::string& id,
                 std::vector<wire::ResultCell>& out, std::string& error);

    bool cancel(const std::string& id, std::string& error);

    /** The daemon's `serve.*` gauges, by dotted registry name. */
    bool stats(std::map<std::string, double>& out, std::string& error);

    /**
     * Ask the daemon to drain: finish all queued and running jobs,
     * then shut down. Returns once the drain completed (@p timeoutMs
     * bounds the wait).
     */
    bool drain(int timeoutMs, std::string& error);

    /**
     * Open the live frame stream of job @p id. While subscribed, the
     * daemon interleaves pushed frame lines with responses, so the
     * only safe calls are nextFrame() and unsubscribe().
     */
    bool subscribe(const std::string& id, std::string& error);

    /**
     * Close the stream; discards any frames still in flight until the
     * daemon's unsubscribe response arrives.
     */
    bool unsubscribe(std::string& error);

    bool subscribed() const { return subscribed_; }

    /**
     * Read the next pushed frame (blocking up to @p timeoutMs).
     * @return false on timeout, EOF, or malformed frame. After a
     * Result frame the daemon pushes nothing further; the caller
     * should stop reading (the subscription is over).
     */
    bool nextFrame(Frame& out, int timeoutMs, std::string& error);

    /** Per-request response deadline (default 10 minutes). */
    void setRequestTimeout(int timeoutMs) { timeout_ms_ = timeoutMs; }

  private:
    bool roundTrip(const Json& request, const std::string& expect,
                   int timeoutMs, Json& response, std::string& error);

    Fd fd_;
    std::unique_ptr<LineReader> reader_;
    int timeout_ms_ = 600000;
    bool subscribed_ = false;
};

} // namespace wg::serve
