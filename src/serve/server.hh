/**
 * @file
 * The daemon's TCP front end: accept loop, per-connection protocol
 * threads, and the same-port OpenMetrics scrape endpoint.
 *
 * One listening socket serves both protocols. A connection whose first
 * line starts with "GET " is treated as an HTTP/1.x metrics scrape:
 * the server answers one OpenMetrics exposition (the JobManager's
 * `serve.*` gauges via writeProm) and closes. Anything else is the
 * line-delimited JSON protocol (protocol.hh), one request per line,
 * one response line per request, until the peer closes.
 *
 * Shutdown paths (both graceful, DESIGN.md §15):
 *   - a `drain` request: the manager stops admitting, finishes every
 *     queued and running job, the response is sent, then serve()
 *     returns;
 *   - @p wakeFd (the SIGTERM self-pipe) becoming readable: same drain,
 *     without a response to send.
 * The process-wide ThreadPool is NOT drained here — that is the
 * daemon main's last step — so in-process tests can run many servers
 * against the shared pool.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "core/experiment.hh"
#include "serve/jobs.hh"
#include "serve/net.hh"

namespace wg::serve {

/** Front-end tunables. */
struct ServerConfig
{
    std::uint16_t port = 0;  ///< 0 = pick a free loopback port
    JobConfig jobs;
    /** Idle poll tick for connection reads (also the shutdown-notice
     *  latency bound for idle connections). */
    int pollTickMs = 200;
};

class Server
{
  public:
    Server(ExperimentRunner& runner, ServerConfig config = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Bind and listen. @return false with @p error on failure. */
    bool start(std::string& error);

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    JobManager& jobs() { return jobs_; }

    /**
     * Serve until drained (via protocol or @p wakeFd; -1 = protocol
     * only). Blocks; joins every connection thread before returning.
     * @return false with @p error only on listener failure.
     */
    bool serve(int wakeFd, std::string& error);

    /** The OpenMetrics exposition served on "GET " connections. */
    std::string promExposition() const;

  private:
    void connectionLoop(int fd);
    void handleHttp(int fd, const std::string& requestLine);
    void requestStop();

    ExperimentRunner& runner_;
    ServerConfig config_;
    JobManager jobs_;

    Fd listen_fd_;
    std::uint16_t port_ = 0;
    Fd stop_rd_; ///< internal wake pipe (protocol-drain -> accept loop)
    Fd stop_wr_;
    std::atomic<bool> stopping_{false};

    Mutex conn_mu_;
    std::vector<std::thread> connections_ WG_GUARDED_BY(conn_mu_);
};

} // namespace wg::serve
