#include "server.hh"

#include <cerrno>
#include <poll.h>
#include <sstream>
#include <unistd.h>

#include "common/logging.hh"
#include "common/stats.hh"
#include "metrics/exporters.hh"
#include "serve/protocol.hh"

namespace wg::serve {

Server::Server(ExperimentRunner& runner, ServerConfig config)
    : runner_(runner), config_(config), jobs_(runner, config.jobs)
{
}

Server::~Server()
{
    // serve() joins its connections before returning; anything left
    // here means serve() was never called (start()-only tests).
    MutexLock lock(conn_mu_);
    stopping_.store(true);
    for (std::thread& t : connections_)
        t.join();
}

bool
Server::start(std::string& error)
{
    listen_fd_ = listenTcp(config_.port, port_, error);
    if (!listen_fd_.valid())
        return false;
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        error = "pipe failed";
        return false;
    }
    stop_rd_ = Fd(pipefd[0]);
    stop_wr_ = Fd(pipefd[1]);
    return true;
}

void
Server::requestStop()
{
    stopping_.store(true);
    char byte = 's';
    // Best-effort wake; the accept loop also polls stopping_ via the
    // pipe only, so a failed write would be a lost wakeup — but a
    // pipe write of one byte fails only if the server is gone.
    (void)!::write(stop_wr_.get(), &byte, 1);
}

std::string
Server::promExposition() const
{
    StatSet set;
    jobs_.publishStats(set);
    std::ostringstream os;
    metrics::writePromGauges(os, set);
    const LatencySnapshot lat = jobs_.latencySnapshot();
    metrics::writePromHistogram(
        os, "serve.latency.admissionWait.seconds",
        "job latency from admission to dispatch", lat.admissionWait);
    metrics::writePromHistogram(
        os, "serve.latency.runDuration.seconds",
        "job latency from dispatch to terminal state",
        lat.runDuration);
    metrics::writePromHistogram(
        os, "serve.latency.endToEnd.seconds",
        "job latency from admission to terminal state", lat.endToEnd);
    os << "# EOF\n";
    return os.str();
}

void
Server::handleHttp(int fd, const std::string& requestLine)
{
    // Consume the rest of the header block; scrape clients send a
    // well-formed request, and anything else just ends at our timeout.
    LineReader reader(fd);
    std::string line;
    std::string error;
    for (int i = 0; i < 100; ++i) { // header-count cap
        LineReader::Status st =
            reader.readLine(line, config_.pollTickMs, error);
        if (st != LineReader::Status::Line || line.empty())
            break;
    }
    const bool isMetrics =
        requestLine.rfind("GET /metrics", 0) == 0 ||
        requestLine.rfind("GET / ", 0) == 0;
    std::string body;
    std::string head;
    if (isMetrics) {
        body = promExposition();
        head = "HTTP/1.1 200 OK\r\n"
               "Content-Type: application/openmetrics-text; "
               "version=1.0.0; charset=utf-8\r\n";
    } else {
        body = "only /metrics is served here\n";
        head = "HTTP/1.1 404 Not Found\r\n"
               "Content-Type: text/plain; charset=utf-8\r\n";
    }
    head += "Content-Length: " + std::to_string(body.size()) +
            "\r\nConnection: close\r\n\r\n";
    (void)sendAll(fd, head + body, error);
}

void
Server::connectionLoop(int fd)
{
    Fd conn(fd);
    LineReader reader(conn.get());
    ConnState state;
    std::string line;
    std::string error;
    bool first = true;
    // Drop the subscription on every exit path so the manager stops
    // fanning frames into a dead queue.
    auto cleanup = [&] { jobs_.unsubscribe(state.sub); };
    while (!stopping_.load()) {
        // Pump the live stream before (and between) requests. The cap
        // bounds one iteration so a chatty stream cannot starve the
        // request reader.
        if (state.sub != nullptr) {
            std::string frame;
            for (int i = 0; i < 256; ++i) {
                if (!jobs_.nextFrame(*state.sub, frame))
                    break;
                if (!sendAll(conn.get(), frame + "\n", error)) {
                    warn("wgservd: stream send failed: ", error);
                    cleanup();
                    return;
                }
            }
            if (jobs_.subscriptionDone(*state.sub)) {
                jobs_.unsubscribe(state.sub);
                state.sub.reset();
            }
        }
        LineReader::Status st =
            reader.readLine(line, config_.pollTickMs, error);
        if (st == LineReader::Status::Timeout)
            continue; // idle tick; pumps the stream + sees stopping_
        if (st == LineReader::Status::Eof) {
            cleanup();
            return;
        }
        if (st == LineReader::Status::Error) {
            warn("wgservd: dropping connection: ", error);
            cleanup();
            return;
        }
        if (first && line.rfind("GET ", 0) == 0) {
            handleHttp(conn.get(), line);
            return; // HTTP is one-shot (Connection: close)
        }
        first = false;
        if (line.empty())
            continue;
        ProtocolResult result = handleRequestLine(jobs_, state, line);
        if (!sendAll(conn.get(), result.response + "\n", error)) {
            warn("wgservd: send failed: ", error);
            cleanup();
            return;
        }
        if (result.drained) {
            requestStop();
            cleanup();
            return;
        }
    }
    cleanup();
}

bool
Server::serve(int wakeFd, std::string& error)
{
    if (!listen_fd_.valid()) {
        error = "serve() before start()";
        return false;
    }
    bool external_wake = false;
    while (!stopping_.load()) {
        struct pollfd fds[3];
        nfds_t n = 0;
        fds[n++] = {listen_fd_.get(), POLLIN, 0};
        fds[n++] = {stop_rd_.get(), POLLIN, 0};
        if (wakeFd >= 0)
            fds[n++] = {wakeFd, POLLIN, 0};
        int rc = ::poll(fds, n, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            error = "poll failed on listener";
            return false;
        }
        if (wakeFd >= 0 && (fds[2].revents & POLLIN) != 0) {
            external_wake = true;
            break;
        }
        if ((fds[1].revents & POLLIN) != 0)
            break; // protocol drain already ran; just shut down
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        std::string acceptError;
        Fd conn = acceptConn(listen_fd_.get(), 0, acceptError);
        if (!conn.valid()) {
            if (!acceptError.empty())
                warn("wgservd: ", acceptError);
            continue;
        }
        MutexLock lock(conn_mu_);
        int raw = conn.release();
        connections_.emplace_back(
            [this, raw] { connectionLoop(raw); });
    }
    if (external_wake)
        jobs_.drain(); // SIGTERM path: finish queued + running work
    stopping_.store(true);
    // New connections stop being accepted the moment the loop exits;
    // existing ones notice stopping_ within a poll tick.
    std::vector<std::thread> conns;
    {
        MutexLock lock(conn_mu_);
        conns.swap(connections_);
    }
    for (std::thread& t : conns)
        t.join();
    error.clear();
    return true;
}

} // namespace wg::serve
