/**
 * @file
 * Leveled, rate-limited, structured jsonl event log for wgservd.
 *
 * Each event is one JSON line: `{"tMs":...,"level":...,"event":...}`
 * plus caller-supplied string fields. Timestamps are milliseconds of
 * monotonic clock since open() — the daemon's self-observability never
 * needs (and the determinism lint bans) wall-clock time.
 *
 * Two guards keep the log from hurting the daemon it watches:
 *   - a level threshold (debug < info < warn < error) filters noise;
 *   - a per-second event budget drops (and counts) excess lines, so a
 *     misbehaving client cannot turn the log into an I/O flood.
 *
 * The clock is injectable so tests drive the rate limiter
 * deterministically. A default-constructed EventLog is closed and
 * every call is a cheap no-op, which lets callers hold an optional
 * pointer without null checks at each site.
 */

#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <string>
#include <utility>

#include "common/thread_annotations.hh"

namespace wg::serve {

class EventLog
{
  public:
    /** Severity; the threshold keeps events >= the configured level. */
    enum class Level : std::uint8_t { Debug, Info, Warn, Error };

    /** Protocol spelling of @p level. */
    static const char* levelName(Level level);

    /** Parse a --log-level value. @return false when unknown. */
    static bool parseLevel(const std::string& name, Level& out);

    struct Options
    {
        Level level = Level::Info;
        std::uint64_t maxPerSecond = 200; ///< 0 = unlimited
        /** Monotonic milliseconds; null uses steady_clock. */
        std::function<std::uint64_t()> clockMs;
    };

    /** Drop counters (sampled under the log lock). */
    struct Counters
    {
        std::uint64_t written = 0;     ///< lines emitted
        std::uint64_t filtered = 0;    ///< below the level threshold
        std::uint64_t rateLimited = 0; ///< over the per-second budget
    };

    EventLog() = default;

    /** Open @p path for appending. @return false with @p error set. */
    bool open(const std::string& path, const Options& opts,
              std::string& error);

    /** True when open() succeeded (log() writes somewhere). */
    bool enabled() const;

    /**
     * Emit one event line. @p fields are (camelCase key, value) pairs
     * appended after the envelope; values are JSON-escaped strings.
     * No-op when closed, below the threshold, or over budget.
     */
    void log(Level level, const std::string& event,
             std::initializer_list<std::pair<const char*, std::string>>
                 fields = {});

    Counters counters() const;

  private:
    mutable Mutex mu_;
    std::ofstream out_ WG_GUARDED_BY(mu_);
    Options opts_ WG_GUARDED_BY(mu_);
    bool enabled_ WG_GUARDED_BY(mu_) = false;
    std::uint64_t open_ms_ WG_GUARDED_BY(mu_) =
        0; ///< clock at open(); tMs baseline
    std::uint64_t window_sec_ WG_GUARDED_BY(mu_) =
        0; ///< rate-limit window index
    std::uint64_t window_count_ WG_GUARDED_BY(mu_) = 0;
    Counters counters_ WG_GUARDED_BY(mu_);
};

} // namespace wg::serve
