#include "client.hh"

#include <chrono>
#include <thread>

#include "serve/protocol.hh"
#include "serve/snapshot.hh"

namespace wg::serve {

namespace {

Json
requestEnvelope(const std::string& type)
{
    Json doc = Json::object();
    doc.set("wire", Json::number(wire::kSchemaVersion));
    doc.set("type", Json::string(type));
    return doc;
}

} // namespace

bool
Client::connect(std::uint16_t port, int timeoutMs, std::string& error)
{
    fd_ = connectTcp(port, timeoutMs, error);
    if (!fd_.valid())
        return false;
    reader_ = std::make_unique<LineReader>(fd_.get());
    return true;
}

bool
Client::roundTrip(const Json& request, const std::string& expect,
                  int timeoutMs, Json& response, std::string& error)
{
    if (!fd_.valid()) {
        error = "not connected";
        return false;
    }
    if (!sendAll(fd_.get(), request.dump() + "\n", error))
        return false;
    std::string line;
    LineReader::Status st = reader_->readLine(line, timeoutMs, error);
    if (st == LineReader::Status::Timeout) {
        error = "timed out waiting for the daemon's response";
        return false;
    }
    if (st == LineReader::Status::Eof) {
        error = "daemon closed the connection";
        return false;
    }
    if (st == LineReader::Status::Error)
        return false;
    if (!Json::parse(line, response, error)) {
        error = "malformed response: " + error;
        return false;
    }
    const Json* wire_v = response.find("wire");
    const Json* type = response.find("type");
    const Json* req = response.find("request");
    if (wire_v == nullptr || !wire_v->isNumber() ||
        wire_v->asU64() < wire::kMinSchemaVersion ||
        wire_v->asU64() > wire::kSchemaVersion || type == nullptr ||
        !type->isString() || type->asString() != "response") {
        error = "response missing a valid wire envelope";
        return false;
    }
    if (req == nullptr || !req->isString() ||
        req->asString() != expect) {
        error = "response for the wrong request type";
        return false;
    }
    const Json* ok = response.find("ok");
    if (ok == nullptr || !ok->isBool()) {
        error = "response missing boolean 'ok'";
        return false;
    }
    if (!ok->asBool()) {
        const Json* err = response.find("error");
        error = (err != nullptr && err->isString())
                    ? err->asString()
                    : "daemon reported an unspecified error";
        return false;
    }
    return true;
}

bool
Client::submit(const SweepSpec& spec, unsigned priority,
               std::string& id, bool& deduped, std::string& error)
{
    Json req = requestEnvelope("submit");
    req.set("priority", Json::number(std::uint64_t(priority)));
    req.set("sweep", wire::toJson(spec));
    Json resp;
    if (!roundTrip(req, "submit", timeout_ms_, resp, error))
        return false;
    const Json* jid = resp.find("id");
    const Json* jdeduped = resp.find("deduped");
    if (jid == nullptr || !jid->isString()) {
        error = "submit response missing 'id'";
        return false;
    }
    id = jid->asString();
    deduped = jdeduped != nullptr && jdeduped->isBool() &&
              jdeduped->asBool();
    return true;
}

bool
Client::submitSnapshot(const Json& snapshotDoc, unsigned priority,
                       std::string& id, bool& deduped,
                       std::uint64_t& seeded, std::string& error)
{
    // Validate client-side so a corrupt file fails with a sharp error
    // before anything hits the daemon; the original sweep/cells JSON
    // is then passed through verbatim (lexemes preserved).
    std::string snapId;
    SweepSpec spec({}, {});
    std::vector<wire::ResultCell> cells;
    if (!wire::parseJobSnapshotDoc(snapshotDoc, snapId, spec, cells,
                                   error))
        return false;
    Json req = requestEnvelope("submit");
    req.set("priority", Json::number(std::uint64_t(priority)));
    req.set("sweep", Json(*snapshotDoc.find("sweep")));
    req.set("cells", Json(*snapshotDoc.find("cells")));
    Json resp;
    if (!roundTrip(req, "submit", timeout_ms_, resp, error))
        return false;
    const Json* jid = resp.find("id");
    const Json* jdeduped = resp.find("deduped");
    const Json* jseeded = resp.find("seeded");
    if (jid == nullptr || !jid->isString()) {
        error = "submit response missing 'id'";
        return false;
    }
    id = jid->asString();
    deduped = jdeduped != nullptr && jdeduped->isBool() &&
              jdeduped->asBool();
    seeded = (jseeded != nullptr && jseeded->isNumber())
                 ? jseeded->asU64()
                 : 0;
    return true;
}

bool
Client::checkpoint(const std::string& id, Json& snapshotDoc,
                   std::string& error)
{
    Json req = requestEnvelope("checkpoint");
    req.set("id", Json::string(id));
    Json resp;
    if (!roundTrip(req, "checkpoint", timeout_ms_, resp, error))
        return false;
    const Json* snap = resp.find("snapshot");
    if (snap == nullptr || !snap->isObject()) {
        error = "checkpoint response missing 'snapshot'";
        return false;
    }
    snapshotDoc = Json(*snap);
    return true;
}

bool
Client::status(const std::string& id, JobStatus& out,
               std::string& error)
{
    Json req = requestEnvelope("status");
    req.set("id", Json::string(id));
    Json resp;
    if (!roundTrip(req, "status", timeout_ms_, resp, error))
        return false;
    const Json* job = resp.find("job");
    if (job == nullptr) {
        error = "status response missing 'job'";
        return false;
    }
    return parseStatusJson(*job, out, error);
}

bool
Client::listJobs(std::vector<JobStatus>& out, std::string& error)
{
    Json resp;
    if (!roundTrip(requestEnvelope("status"), "status", timeout_ms_,
                   resp, error))
        return false;
    const Json* jobs = resp.find("jobs");
    if (jobs == nullptr || !jobs->isArray()) {
        error = "status response missing 'jobs'";
        return false;
    }
    out.clear();
    for (const Json& j : jobs->items()) {
        JobStatus s;
        if (!parseStatusJson(j, s, error))
            return false;
        out.push_back(std::move(s));
    }
    return true;
}

bool
Client::waitForJob(const std::string& id, int pollMs, int timeoutMs,
                   JobStatus& out, std::string& error)
{
    // Client-side pacing only; the daemon's results are independent of
    // when we ask.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs);
    for (;;) {
        if (!status(id, out, error))
            return false;
        if (out.state == JobState::Done ||
            out.state == JobState::Cancelled ||
            out.state == JobState::Failed)
            return true;
        if (std::chrono::steady_clock::now() >= deadline) {
            error = "timed out waiting for job '" + id + "' (" +
                    jobStateName(out.state) + ", " +
                    std::to_string(out.completedCells) + "/" +
                    std::to_string(out.totalCells) + " cells)";
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(pollMs));
    }
}

bool
Client::results(const std::string& id,
                std::vector<wire::ResultCell>& out, std::string& error)
{
    Json req = requestEnvelope("result");
    req.set("id", Json::string(id));
    Json resp;
    if (!roundTrip(req, "result", timeout_ms_, resp, error))
        return false;
    const Json* cells = resp.find("cells");
    if (cells == nullptr || !cells->isArray()) {
        error = "result response missing 'cells'";
        return false;
    }
    out.clear();
    for (const Json& doc : cells->items()) {
        wire::ResultCell cell;
        if (!wire::parseResultDoc(doc, cell, error))
            return false;
        out.push_back(std::move(cell));
    }
    return true;
}

bool
Client::cancel(const std::string& id, std::string& error)
{
    Json req = requestEnvelope("cancel");
    req.set("id", Json::string(id));
    Json resp;
    return roundTrip(req, "cancel", timeout_ms_, resp, error);
}

bool
Client::stats(std::map<std::string, double>& out, std::string& error)
{
    Json resp;
    if (!roundTrip(requestEnvelope("stats"), "stats", timeout_ms_,
                   resp, error))
        return false;
    const Json* stats = resp.find("stats");
    if (stats == nullptr || !stats->isObject()) {
        error = "stats response missing 'stats'";
        return false;
    }
    out.clear();
    for (const auto& [name, value] : stats->members()) {
        if (!value.isNumber()) {
            error = "stat '" + name + "' is not a number";
            return false;
        }
        out[name] = value.asDouble();
    }
    return true;
}

bool
Client::drain(int timeoutMs, std::string& error)
{
    Json resp;
    return roundTrip(requestEnvelope("drain"), "drain", timeoutMs,
                     resp, error);
}

namespace {

bool
parseFrameLine(const Json& doc, Frame& out, std::string& error)
{
    const Json* kind = doc.find("frame");
    const Json* id = doc.find("id");
    if (kind == nullptr || !kind->isString() || id == nullptr ||
        !id->isString()) {
        error = "frame missing 'frame'/'id'";
        return false;
    }
    out = Frame{};
    out.jobId = id->asString();
    const std::string& k = kind->asString();
    auto getU64 = [&](const char* key, std::uint64_t& dst) {
        const Json* m = doc.find(key);
        if (m == nullptr || !m->isNumber()) {
            error = std::string("frame missing numeric '") + key + "'";
            return false;
        }
        dst = m->asU64();
        return true;
    };
    if (k == "meta" || k == "epoch" || k == "final") {
        out.kind = k == "meta" ? FrameKind::Meta
                   : k == "epoch" ? FrameKind::Epoch
                                  : FrameKind::Final;
        std::uint64_t cell = 0;
        if (!getU64("cell", cell))
            return false;
        out.cell = static_cast<std::size_t>(cell);
        const Json* data = doc.find("data");
        if (data == nullptr || !data->isObject()) {
            error = "frame missing object 'data'";
            return false;
        }
        // dump() re-emits preserved number lexemes, so these are the
        // exact bytes the daemon embedded (the offline jsonl line).
        out.data = data->dump();
        if (out.kind == FrameKind::Meta) {
            if (const Json* b = doc.find("bench"))
                if (b->isString())
                    out.bench = b->asString();
            if (const Json* t = doc.find("technique"))
                if (t->isString())
                    out.technique = t->asString();
        }
        return true;
    }
    if (k == "progress") {
        out.kind = FrameKind::Progress;
        std::uint64_t completed = 0;
        std::uint64_t total = 0;
        if (!getU64("completedCells", completed) ||
            !getU64("totalCells", total))
            return false;
        out.completedCells = static_cast<std::size_t>(completed);
        out.totalCells = static_cast<std::size_t>(total);
        const Json* eta = doc.find("etaMs");
        out.etaMs =
            (eta != nullptr && eta->isNumber()) ? eta->asDouble() : -1.0;
        return true;
    }
    if (k == "result") {
        out.kind = FrameKind::Result;
        const Json* state = doc.find("state");
        if (state == nullptr || !state->isString()) {
            error = "result frame missing 'state'";
            return false;
        }
        out.state = state->asString();
        if (const Json* err = doc.find("error"))
            if (err->isString())
                out.error = err->asString();
        return getU64("droppedFrames", out.droppedFrames);
    }
    error = "unknown frame kind '" + k + "'";
    return false;
}

} // namespace

bool
Client::subscribe(const std::string& id, std::string& error)
{
    if (subscribed_) {
        error = "already subscribed";
        return false;
    }
    Json req = requestEnvelope("subscribe");
    req.set("id", Json::string(id));
    Json resp;
    if (!roundTrip(req, "subscribe", timeout_ms_, resp, error))
        return false;
    subscribed_ = true;
    return true;
}

bool
Client::unsubscribe(std::string& error)
{
    if (!subscribed_) {
        error = "not subscribed";
        return false;
    }
    if (!sendAll(fd_.get(), requestEnvelope("unsubscribe").dump() + "\n",
                 error))
        return false;
    // Frames already in flight interleave ahead of the response;
    // discard them until the unsubscribe response line arrives.
    std::string line;
    for (;;) {
        LineReader::Status st =
            reader_->readLine(line, timeout_ms_, error);
        if (st == LineReader::Status::Timeout) {
            error = "timed out waiting for the unsubscribe response";
            return false;
        }
        if (st == LineReader::Status::Eof) {
            error = "daemon closed the connection";
            return false;
        }
        if (st == LineReader::Status::Error)
            return false;
        Json doc;
        if (!Json::parse(line, doc, error)) {
            error = "malformed line during unsubscribe: " + error;
            return false;
        }
        const Json* type = doc.find("type");
        if (type != nullptr && type->isString() &&
            type->asString() == "frame")
            continue;
        const Json* req = doc.find("request");
        if (req == nullptr || !req->isString() ||
            req->asString() != "unsubscribe") {
            error = "unexpected response during unsubscribe";
            return false;
        }
        subscribed_ = false;
        const Json* ok = doc.find("ok");
        if (ok == nullptr || !ok->isBool() || !ok->asBool()) {
            const Json* err = doc.find("error");
            error = (err != nullptr && err->isString())
                        ? err->asString()
                        : "daemon rejected the unsubscribe";
            return false;
        }
        return true;
    }
}

bool
Client::nextFrame(Frame& out, int timeoutMs, std::string& error)
{
    if (!subscribed_) {
        error = "not subscribed";
        return false;
    }
    std::string line;
    LineReader::Status st = reader_->readLine(line, timeoutMs, error);
    if (st == LineReader::Status::Timeout) {
        error = "timed out waiting for a frame";
        return false;
    }
    if (st == LineReader::Status::Eof) {
        error = "daemon closed the connection";
        return false;
    }
    if (st == LineReader::Status::Error)
        return false;
    Json doc;
    if (!Json::parse(line, doc, error)) {
        error = "malformed frame: " + error;
        return false;
    }
    const Json* type = doc.find("type");
    if (type == nullptr || !type->isString() ||
        type->asString() != "frame") {
        error = "expected a frame line, got something else";
        return false;
    }
    if (!parseFrameLine(doc, out, error))
        return false;
    if (out.kind == FrameKind::Result)
        subscribed_ = false; // stream is over; daemon pushes no more
    return true;
}

} // namespace wg::serve
