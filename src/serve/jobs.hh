/**
 * @file
 * Job manager: the daemon's admission queue in front of the shared
 * ExperimentRunner.
 *
 * A job is one SweepSpec (benches x techniques x options). Jobs enter
 * a bounded queue with a priority in [0, numPriorities); a single
 * dispatcher thread starts the highest-priority, oldest job whenever a
 * slot is free, so start order is exactly FIFO-within-priority. Each
 * started job runs as one pool task that walks its cells in bench-major
 * order through ExperimentRunner::runShared — the single-flight cache
 * dedupes identical cells across concurrent jobs, and whole-job
 * duplicates are folded at admission by the canonical-spec key before
 * they ever reach the runner.
 *
 * Life cycle:   Queued -> Running -> Done | Failed
 *                  \---------\--> Cancelled
 * A queued job cancels immediately; a running job stops at the next
 * cell boundary (cells already computed stay cached).
 *
 * drain() rejects new submissions and returns once every queued and
 * running job has finished — the daemon's SIGTERM path.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.hh"
#include "common/thread_annotations.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "serve/eventlog.hh"
#include "serve/wire.hh"

namespace wg::serve {

/** Job life-cycle states. */
enum class JobState : std::uint8_t {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
};

/** Printable state name (protocol spelling). */
const char* jobStateName(JobState state);

/** Manager tunables. */
struct JobConfig
{
    std::size_t queueCapacity = 256; ///< max *queued* jobs (admission)
    unsigned maxConcurrentJobs = 2;  ///< jobs dispatched at once
    unsigned numPriorities = 4;      ///< valid priorities: [0, n)

    /**
     * Per-subscriber frame-queue bound (slow-consumer policy): a
     * subscriber whose connection cannot keep up accumulates at most
     * this many undelivered frames; further frames are dropped and
     * counted, and the terminal result frame is always delivered.
     * The publisher never blocks on a subscriber.
     */
    std::size_t subscriberQueueCap = 65536;

    /** Structured event sink; null disables event logging. */
    EventLog* events = nullptr;
};

/** One completed (bench, technique) cell of a job. */
struct JobCell
{
    std::string bench;
    Technique technique = Technique::Baseline;
    std::shared_ptr<const SimResult> result;
};

/** Snapshot of one job's externally visible state. */
struct JobStatus
{
    std::string id;
    JobState state = JobState::Queued;
    unsigned priority = 0;
    std::size_t totalCells = 0;
    std::size_t completedCells = 0;
    bool deduped = false;       ///< id was returned for a duplicate too
    std::uint64_t submitSeq = 0; ///< admission order (1-based)
    std::uint64_t startSeq = 0; ///< dispatch order (0 = not started)
    std::string error;          ///< set when state == Failed
};

/**
 * One live frame stream. All state is guarded by the owning manager's
 * lock; the consumer (a connection thread) pulls with
 * JobManager::nextFrame() and the publisher (runJob) pushes without
 * ever blocking — a full queue drops the frame and counts it.
 */
struct Subscription
{
    std::string jobId;
    std::deque<std::string> queue; ///< frames awaiting delivery
    std::uint64_t dropped = 0;     ///< frames lost to the queue cap
    bool terminal = false; ///< result frame enqueued; stream is ending
    bool closed = false;   ///< unsubscribed; publisher skips it
};

/** Copies of the manager's latency histograms (for /metrics). */
struct LatencySnapshot
{
    LatencyHistogram admissionWait; ///< submit -> dispatch
    LatencyHistogram runDuration;   ///< dispatch -> terminal
    LatencyHistogram endToEnd;      ///< submit -> terminal
};

class JobManager
{
  public:
    /**
     * @param runner shared runner (cache + validation); must outlive
     *        the manager.
     */
    JobManager(ExperimentRunner& runner, JobConfig config = {});

    /** Cancels queued jobs, waits for running ones, stops dispatch. */
    ~JobManager();

    JobManager(const JobManager&) = delete;
    JobManager& operator=(const JobManager&) = delete;

    /** submit() outcome. */
    struct SubmitOutcome
    {
        bool ok = false;
        std::string id;       ///< valid when ok
        bool deduped = false; ///< an equivalent job already existed
        std::string error;    ///< valid when !ok
    };

    /**
     * Admit a sweep. Validates the spec (benchmark names, technique
     * config) and rejects — never aborts — on invalid input, a full
     * queue, or a draining manager. A spec whose canonical key matches
     * a live (non-cancelled, non-failed) job returns that job's id
     * with deduped=true; if the duplicate asks for a higher priority
     * and the job is still queued, the job is promoted.
     */
    SubmitOutcome submit(const SweepSpec& spec, unsigned priority);

    /** @return the job's status, or nullopt for an unknown id. */
    std::optional<JobStatus> status(const std::string& id) const;

    /** All jobs, in submission order. */
    std::vector<JobStatus> listJobs() const;

    /**
     * Fetch a finished job's per-cell results. @p optsUsed receives
     * the effective options the cells were computed under (the spec's,
     * or the runner's defaults) — what a result document must embed.
     * @return false with @p error when unknown or not Done.
     */
    bool results(const std::string& id, std::vector<JobCell>& out,
                 ExperimentOptions& optsUsed, std::string& error) const;

    /**
     * Capture a job checkpoint in any state: the sweep spec with its
     * effective options pinned explicitly (so a resume on a daemon
     * with different defaults still addresses the same cells) plus
     * every cell completed so far. Queued jobs checkpoint with zero
     * cells; running jobs with whatever the last cell boundary
     * published. @return false only for an unknown id.
     */
    bool checkpoint(const std::string& id, SweepSpec& spec,
                    std::vector<JobCell>& cells,
                    std::string& error) const;

    /**
     * Seed the runner's result cache with already-computed cells (the
     * resume half of checkpoint/resume). Cells naming an unknown
     * benchmark and cells whose key is already cached are skipped.
     * @return the number of cells actually seeded.
     */
    std::size_t seedCells(const std::vector<wire::ResultCell>& cells);

    /**
     * Cancel a job. Queued: immediate. Running: takes effect at the
     * next cell boundary. @return false when unknown or already
     * finished.
     */
    bool cancel(const std::string& id, std::string& error);

    /**
     * Reject new submissions and block until every queued and running
     * job has finished (the graceful SIGTERM path). Idempotent.
     */
    void drain();

    /** True once drain() has begun (or the destructor has run). */
    bool draining() const;

    /**
     * Publish queue/job/cache gauges into @p set under `serve.` using
     * the registry's dotted-no-underscore naming, so the OpenMetrics
     * mapping stays bijective.
     */
    void publishStats(StatSet& set) const;

    /**
     * Open a live frame stream on @p id. Frames already published
     * (completed cells of a running job, or the whole log of a
     * finished one) are replayed into the queue first, so a late
     * subscriber sees the identical byte stream; a finished job's
     * stream ends immediately with its terminal result frame.
     * @return null with @p error set for an unknown id.
     */
    std::shared_ptr<Subscription> subscribe(const std::string& id,
                                            std::string& error);

    /** Close a subscription (idempotent; null is a no-op). */
    void unsubscribe(const std::shared_ptr<Subscription>& sub);

    /** Pop the next undelivered frame. @return false when empty. */
    bool nextFrame(Subscription& sub, std::string& out);

    /** True once the terminal frame has been delivered (queue empty). */
    bool subscriptionDone(const Subscription& sub) const;

    /** Latency histograms for the OpenMetrics exposition. */
    LatencySnapshot latencySnapshot() const;

    /**
     * Test hook: hold back the dispatcher so a batch of submissions
     * can be enqueued, then released atomically — the load test uses
     * this to assert strict FIFO-within-priority dispatch order.
     */
    void pauseDispatch();
    void resumeDispatch();

    const JobConfig& config() const { return config_; }

  private:
    struct Job
    {
        std::string id;
        SweepSpec spec{{}, {}};
        unsigned priority = 0;
        JobState state = JobState::Queued;
        bool deduped = false;
        bool cancelRequested = false;
        std::uint64_t submitSeq = 0;
        std::uint64_t startSeq = 0;
        std::size_t completedCells = 0;
        std::vector<JobCell> cells;
        std::string error;

        /**
         * Replayable stream frames (meta/epoch/final per completed
         * cell, in publication order) so late subscribers get the
         * identical bytes; progress/result frames are per-subscriber
         * and never logged.
         */
        std::vector<std::string> frameLog;
        std::vector<std::shared_ptr<Subscription>> subscribers;

        // Latency instrumentation (daemon self-observability only;
        // steady_clock in serve/ is lint-exempt by design).
        std::chrono::steady_clock::time_point submitTime{};
        std::chrono::steady_clock::time_point startTime{};
    };

    JobStatus snapshotLocked(const Job& job) const WG_REQUIRES(mu_);
    /** Highest-priority, oldest queued job; null when none. */
    std::shared_ptr<Job> nextQueuedLocked() const WG_REQUIRES(mu_);
    void dispatcherLoop();
    void runJob(std::shared_ptr<Job> job);
    bool validateSpec(const SweepSpec& spec, std::string& error) const;

    /** Push one frame into @p sub; @p force bypasses the queue cap. */
    void enqueueFrameLocked(Subscription& sub, const std::string& frame,
                            bool force) WG_REQUIRES(mu_);
    /** Append @p frames to the job's log and fan out to subscribers. */
    void publishFramesLocked(Job& job,
                             const std::vector<std::string>& frames)
        WG_REQUIRES(mu_);
    /** Fan a progress frame out to the job's subscribers. */
    void publishProgressLocked(Job& job) WG_REQUIRES(mu_);
    /** Enqueue the terminal result frame on every live subscriber. */
    void finishSubscribersLocked(Job& job) WG_REQUIRES(mu_);
    /** Throughput-derived ETA in ms; < 0 when unknowable. */
    double etaMsLocked(const Job& job) const WG_REQUIRES(mu_);
    /** Record terminal-transition latencies for @p job. */
    void recordLatenciesLocked(Job& job) WG_REQUIRES(mu_);
    void logEvent(EventLog::Level level, const std::string& event,
                  std::initializer_list<
                      std::pair<const char*, std::string>>
                      fields) const;

    ExperimentRunner& runner_;
    JobConfig config_;

    mutable Mutex mu_;
    CondVar dispatch_cv_; ///< dispatcher wakeups
    CondVar idle_cv_;     ///< drain/destructor waits

    std::map<std::string, std::shared_ptr<Job>> jobs_
        WG_GUARDED_BY(mu_); ///< by id
    std::vector<std::shared_ptr<Job>> order_
        WG_GUARDED_BY(mu_); ///< submission order
    std::map<std::string, std::string> dedup_
        WG_GUARDED_BY(mu_); ///< canonical key -> id

    std::uint64_t next_id_ WG_GUARDED_BY(mu_) = 1;
    std::uint64_t submit_tick_ WG_GUARDED_BY(mu_) = 0;
    std::uint64_t start_tick_ WG_GUARDED_BY(mu_) = 0;
    std::size_t queued_ WG_GUARDED_BY(mu_) = 0;
    std::size_t running_ WG_GUARDED_BY(mu_) = 0;
    bool draining_ WG_GUARDED_BY(mu_) = false;
    bool stopping_ WG_GUARDED_BY(mu_) = false;
    bool paused_ WG_GUARDED_BY(mu_) = false;

    // Lifetime counters for publishStats.
    std::uint64_t submitted_ WG_GUARDED_BY(mu_) = 0;
    std::uint64_t dedupHits_ WG_GUARDED_BY(mu_) = 0;
    std::uint64_t rejected_ WG_GUARDED_BY(mu_) = 0;
    std::uint64_t completed_ WG_GUARDED_BY(mu_) = 0;
    std::uint64_t cancelled_ WG_GUARDED_BY(mu_) = 0;
    std::uint64_t failed_ WG_GUARDED_BY(mu_) = 0;
    std::uint64_t cellsCompleted_ WG_GUARDED_BY(mu_) = 0;

    // Subscription accounting.
    std::uint64_t subsOpened_ WG_GUARDED_BY(mu_) = 0;
    std::uint64_t subsClosed_ WG_GUARDED_BY(mu_) = 0;
    std::uint64_t droppedFramesTotal_ WG_GUARDED_BY(mu_) = 0;

    // Latency histograms (seconds).
    LatencyHistogram admissionWait_ WG_GUARDED_BY(mu_);
    LatencyHistogram runDuration_ WG_GUARDED_BY(mu_);
    LatencyHistogram endToEnd_ WG_GUARDED_BY(mu_);

    std::thread dispatcher_;
};

} // namespace wg::serve
