/**
 * @file
 * Job manager: the daemon's admission queue in front of the shared
 * ExperimentRunner.
 *
 * A job is one SweepSpec (benches x techniques x options). Jobs enter
 * a bounded queue with a priority in [0, numPriorities); a single
 * dispatcher thread starts the highest-priority, oldest job whenever a
 * slot is free, so start order is exactly FIFO-within-priority. Each
 * started job runs as one pool task that walks its cells in bench-major
 * order through ExperimentRunner::runShared — the single-flight cache
 * dedupes identical cells across concurrent jobs, and whole-job
 * duplicates are folded at admission by the canonical-spec key before
 * they ever reach the runner.
 *
 * Life cycle:   Queued -> Running -> Done | Failed
 *                  \---------\--> Cancelled
 * A queued job cancels immediately; a running job stops at the next
 * cell boundary (cells already computed stay cached).
 *
 * drain() rejects new submissions and returns once every queued and
 * running job has finished — the daemon's SIGTERM path.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "core/experiment.hh"

namespace wg::serve {

/** Job life-cycle states. */
enum class JobState : std::uint8_t {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
};

/** Printable state name (protocol spelling). */
const char* jobStateName(JobState state);

/** Manager tunables. */
struct JobConfig
{
    std::size_t queueCapacity = 256; ///< max *queued* jobs (admission)
    unsigned maxConcurrentJobs = 2;  ///< jobs dispatched at once
    unsigned numPriorities = 4;      ///< valid priorities: [0, n)
};

/** One completed (bench, technique) cell of a job. */
struct JobCell
{
    std::string bench;
    Technique technique = Technique::Baseline;
    std::shared_ptr<const SimResult> result;
};

/** Snapshot of one job's externally visible state. */
struct JobStatus
{
    std::string id;
    JobState state = JobState::Queued;
    unsigned priority = 0;
    std::size_t totalCells = 0;
    std::size_t completedCells = 0;
    bool deduped = false;       ///< id was returned for a duplicate too
    std::uint64_t submitSeq = 0; ///< admission order (1-based)
    std::uint64_t startSeq = 0; ///< dispatch order (0 = not started)
    std::string error;          ///< set when state == Failed
};

class JobManager
{
  public:
    /**
     * @param runner shared runner (cache + validation); must outlive
     *        the manager.
     */
    JobManager(ExperimentRunner& runner, JobConfig config = {});

    /** Cancels queued jobs, waits for running ones, stops dispatch. */
    ~JobManager();

    JobManager(const JobManager&) = delete;
    JobManager& operator=(const JobManager&) = delete;

    /** submit() outcome. */
    struct SubmitOutcome
    {
        bool ok = false;
        std::string id;       ///< valid when ok
        bool deduped = false; ///< an equivalent job already existed
        std::string error;    ///< valid when !ok
    };

    /**
     * Admit a sweep. Validates the spec (benchmark names, technique
     * config) and rejects — never aborts — on invalid input, a full
     * queue, or a draining manager. A spec whose canonical key matches
     * a live (non-cancelled, non-failed) job returns that job's id
     * with deduped=true; if the duplicate asks for a higher priority
     * and the job is still queued, the job is promoted.
     */
    SubmitOutcome submit(const SweepSpec& spec, unsigned priority);

    /** @return the job's status, or nullopt for an unknown id. */
    std::optional<JobStatus> status(const std::string& id) const;

    /** All jobs, in submission order. */
    std::vector<JobStatus> listJobs() const;

    /**
     * Fetch a finished job's per-cell results. @p optsUsed receives
     * the effective options the cells were computed under (the spec's,
     * or the runner's defaults) — what a result document must embed.
     * @return false with @p error when unknown or not Done.
     */
    bool results(const std::string& id, std::vector<JobCell>& out,
                 ExperimentOptions& optsUsed, std::string& error) const;

    /**
     * Cancel a job. Queued: immediate. Running: takes effect at the
     * next cell boundary. @return false when unknown or already
     * finished.
     */
    bool cancel(const std::string& id, std::string& error);

    /**
     * Reject new submissions and block until every queued and running
     * job has finished (the graceful SIGTERM path). Idempotent.
     */
    void drain();

    /** True once drain() has begun (or the destructor has run). */
    bool draining() const;

    /**
     * Publish queue/job/cache gauges into @p set under `serve.` using
     * the registry's dotted-no-underscore naming, so the OpenMetrics
     * mapping stays bijective.
     */
    void publishStats(StatSet& set) const;

    /**
     * Test hook: hold back the dispatcher so a batch of submissions
     * can be enqueued, then released atomically — the load test uses
     * this to assert strict FIFO-within-priority dispatch order.
     */
    void pauseDispatch();
    void resumeDispatch();

    const JobConfig& config() const { return config_; }

  private:
    struct Job
    {
        std::string id;
        SweepSpec spec{{}, {}};
        unsigned priority = 0;
        JobState state = JobState::Queued;
        bool deduped = false;
        bool cancelRequested = false;
        std::uint64_t submitSeq = 0;
        std::uint64_t startSeq = 0;
        std::size_t completedCells = 0;
        std::vector<JobCell> cells;
        std::string error;
    };

    JobStatus snapshotLocked(const Job& job) const;
    void dispatcherLoop();
    void runJob(std::shared_ptr<Job> job);
    bool validateSpec(const SweepSpec& spec, std::string& error) const;

    ExperimentRunner& runner_;
    JobConfig config_;

    mutable std::mutex mu_;
    std::condition_variable dispatch_cv_; ///< dispatcher wakeups
    std::condition_variable idle_cv_;     ///< drain/destructor waits

    std::map<std::string, std::shared_ptr<Job>> jobs_; ///< by id
    std::vector<std::shared_ptr<Job>> order_;          ///< submission order
    std::map<std::string, std::string> dedup_;  ///< canonical key -> id

    std::uint64_t next_id_ = 1;
    std::uint64_t submit_tick_ = 0;
    std::uint64_t start_tick_ = 0;
    std::size_t queued_ = 0;
    std::size_t running_ = 0;
    bool draining_ = false;
    bool stopping_ = false;
    bool paused_ = false;

    // Lifetime counters for publishStats (guarded by mu_).
    std::uint64_t submitted_ = 0;
    std::uint64_t dedupHits_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t cellsCompleted_ = 0;

    std::thread dispatcher_;
};

} // namespace wg::serve
