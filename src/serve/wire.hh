/**
 * @file
 * Versioned JSON wire format for the serving subsystem (and, later,
 * checkpoint sharding): a stable round-trip for ExperimentOptions,
 * SweepSpec and SimResult.
 *
 * Document shapes (schema version 2, golden-pinned by wire_test;
 * version-1 documents — the same shapes under "wire":1 — still parse):
 *
 *   options  {"wire":2,"type":"options","options":{...}}
 *   sweep    {"wire":2,"type":"sweep","sweep":{"benches":[...],
 *             "techniques":[...],"options":{...}?}}
 *   result   {"wire":2,"type":"result","bench":"...",
 *             "technique":"...","options":{...},"result":{...}}
 *
 * Checkpoint snapshot documents are the fourth family; their codec
 * lives in serve/snapshot.hh.
 *
 * Conventions:
 *   - Member names are camelCase and never contain '_', the same rule
 *     the metrics registry enforces, so flattened dotted paths map
 *     bijectively onto the Prometheus exposition.
 *   - All numbers are formatted deterministically (integers exactly),
 *     so serialize(parse(doc)) == doc and two serializations of equal
 *     structs are byte-identical. wgreport can diff two result
 *     documents directly (every numeric leaf flattens to a dotted key).
 *   - Deserialization NEVER aborts: malformed input (truncated JSON,
 *     wrong types, oversized fields, unknown enum names, schema-version
 *     mismatch) returns false with an actionable error string.
 *
 * A deserialized result reconstructs its full GpuConfig through
 * makeConfig(technique, options) — the daemon only produces
 * technique-preset results, so (technique, options) is the complete
 * configuration key, exactly as in ExperimentRunner's cache.
 */

#pragma once

#include <string>

#include "core/experiment.hh"
#include "serve/json.hh"

namespace wg::serve::wire {

/**
 * Wire schema version this build emits; bumped on any shape change.
 * Version 2 added the checkpoint snapshot document (snapshot.hh) and
 * the checkpoint/resume protocol verbs.
 */
inline constexpr std::uint64_t kSchemaVersion = 2;

/**
 * Oldest schema version this build still accepts. Version-1 documents
 * contain a strict subset of the version-2 shapes, so every v1 parser
 * path still works; checkEnvelope accepts the whole range.
 */
inline constexpr std::uint64_t kMinSchemaVersion = 1;

// ----- bare bodies (no envelope) -----

/** ExperimentOptions -> {"numSms":...,"seed":...,...}. */
Json toJson(const ExperimentOptions& opts);
bool fromJson(const Json& j, ExperimentOptions& out,
              std::string& error);

/** SweepSpec -> {"benches":[...],"techniques":[...],"options":{...}?}. */
Json toJson(const SweepSpec& spec);
bool fromJson(const Json& j, SweepSpec& out, std::string& error);

// ----- enveloped documents -----

Json optionsDoc(const ExperimentOptions& opts);
bool parseOptionsDoc(const Json& doc, ExperimentOptions& out,
                     std::string& error);

Json sweepDoc(const SweepSpec& spec);
bool parseSweepDoc(const Json& doc, SweepSpec& out, std::string& error);

/**
 * Serialize one (bench, technique, options) cell's result. @p opts must
 * be the options the result was computed under (they rebuild the config
 * on the way in).
 */
Json resultDoc(const std::string& bench, Technique technique,
               const ExperimentOptions& opts, const SimResult& result);

/** Parsed result cell: identity plus the reconstructed SimResult. */
struct ResultCell
{
    std::string bench;
    Technique technique = Technique::Baseline;
    ExperimentOptions options;
    SimResult result;
};

bool parseResultDoc(const Json& doc, ResultCell& out,
                    std::string& error);

// ----- helpers shared with the protocol layer -----

/**
 * Canonical dedup key of a sweep: the compact serialization of its
 * bare body. Two submissions with the same key are the same job.
 */
std::string canonicalKey(const SweepSpec& spec);

/** Resolve a technique by its paper spelling. @return false if unknown. */
bool parseTechnique(const std::string& name, Technique& out);

/**
 * Check the {"wire":N,"type":T} envelope. @return false (with error)
 * when the version or type does not match.
 */
bool checkEnvelope(const Json& doc, const std::string& type,
                   std::string& error);

} // namespace wg::serve::wire
