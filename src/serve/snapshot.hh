/**
 * @file
 * JSON codec for deterministic checkpoint snapshots (DESIGN.md §17).
 *
 * A snapshot document pins a mid-run simulation so a later process can
 * resume it bit-identically:
 *
 *   {"wire":2,"type":"snapshot",
 *    "bench":"...","technique":"...","options":{...},
 *    "overrides":{"scheduler":"","pg":"","adaptive":false,
 *                 "gateSfu":false},
 *    "snapshot":{"cycle":N,"sms":[{...SmSnapshot...},...]}}
 *
 * The identity block ((bench, technique, options) plus the wgsim-style
 * config overrides) is everything needed to rebuild the GpuConfig and
 * regenerate the per-SM programs — the workload itself is pure function
 * of (profile, seed) and is deliberately not serialized. Fast-forward
 * is NOT part of the identity: it is unobservable in results, so a
 * snapshot taken with it on may be resumed with it off and vice versa.
 *
 * Wire conventions apply: camelCase member names, deterministic number
 * formatting (serialize(parse(doc)) == doc, equal states serialize
 * byte-identically), and parsing that never aborts — malformed or
 * version-mismatched documents come back as error strings.
 *
 * Every snapshotted struct has a (toJson, fromJson) free-function pair
 * below; the wglint D5 rule cross-checks that each struct field
 * reaches its codec functions, so adding a field without serializing
 * it fails the lint gate.
 */

#pragma once

#include <string>

#include "serve/wire.hh"
#include "sim/snapshot.hh"

namespace wg::serve::wire {

/**
 * The run a snapshot belongs to: the (bench, technique, options) cell
 * key plus the wgsim config overrides in effect when it was taken.
 * String overrides are policy names ("" = no override).
 */
struct SnapshotIdentity
{
    std::string bench;
    Technique technique = Technique::Baseline;
    ExperimentOptions options;
    std::string schedulerOverride; ///< schedulerPolicyName, or ""
    std::string pgOverride;        ///< pgPolicyName, or ""
    bool adaptiveOverride = false; ///< --adaptive was forced on
    bool gateSfuOverride = false;  ///< --gate-sfu was forced on
};

/**
 * Rebuild the GpuConfig a snapshot's run used: makeConfig(technique,
 * options) plus the recorded overrides, exactly as wgsim derives it.
 * @return false (with @p error) on an unknown override name or an
 * invalid resulting configuration.
 */
bool snapshotConfig(const SnapshotIdentity& id, GpuConfig& out,
                    std::string& error);

/**
 * Parse limits sized for snapshot documents: per-SM trace rings hold
 * up to 2^20 events, far past the default container cap.
 */
JsonLimits snapshotJsonLimits();

/** Serialize a checkpoint (enveloped, schema kSchemaVersion). */
Json snapshotDoc(const SnapshotIdentity& id, const GpuSnapshot& snap);

/**
 * Parse a snapshot document. Structural and range validation only —
 * semantic consistency against the rebuilt config (warp counts,
 * residency tiling, observer sections) is Sm::restore's job.
 * @return false with an actionable @p error; never aborts.
 */
bool parseSnapshotDoc(const Json& doc, SnapshotIdentity& id,
                      GpuSnapshot& snap, std::string& error);

// ----- job snapshots (daemon-side checkpoint/resume) -----

/**
 * Serialize a daemon job checkpoint: the sweep (with its effective
 * options pinned) plus one resultDoc per completed cell:
 *
 *   {"wire":2,"type":"jobSnapshot","id":"j1",
 *    "sweep":{...bare sweep body...},"cells":[{...resultDoc...},...]}
 *
 * A resumed submission replays the sweep and seeds the cells into the
 * runner's cache, so only the unfinished cells are recomputed.
 */
Json jobSnapshotDoc(const std::string& id, const SweepSpec& spec,
                    const std::vector<Json>& cellDocs);

bool parseJobSnapshotDoc(const Json& doc, std::string& id,
                         SweepSpec& spec, std::vector<ResultCell>& cells,
                         std::string& error);

// ----- per-struct codecs (indexed by the wglint D5 rule) -----
//
// Each fromJson mirrors its toJson; @p path prefixes error messages
// with the dotted location of the offending member.

Json rngStateToJson(const RngState& s);
bool rngStateFromJson(const Json& j, const std::string& path,
                      RngState& out, std::string& error);

Json warpSlotStateToJson(const WarpSlotState& s);
bool warpSlotStateFromJson(const Json& j, const std::string& path,
                           WarpSlotState& out, std::string& error);

Json schedulerStateToJson(const SchedulerState& s);
bool schedulerStateFromJson(const Json& j, const std::string& path,
                            SchedulerState& out, std::string& error);

Json completionToJson(const Completion& c);
bool completionFromJson(const Json& j, const std::string& path,
                        Completion& out, std::string& error);

Json execUnitStateToJson(const ExecUnitState& s);
bool execUnitStateFromJson(const Json& j, const std::string& path,
                           ExecUnitState& out, std::string& error);

Json memSystemStateToJson(const MemSystemState& s);
bool memSystemStateFromJson(const Json& j, const std::string& path,
                            MemSystemState& out, std::string& error);

Json pgDomainStateToJson(const PgDomainState& s);
bool pgDomainStateFromJson(const Json& j, const std::string& path,
                           PgDomainState& out, std::string& error);

Json adaptiveStateToJson(const AdaptiveState& s);
bool adaptiveStateFromJson(const Json& j, const std::string& path,
                           AdaptiveState& out, std::string& error);

Json pgControllerStateToJson(const PgControllerState& s);
bool pgControllerStateFromJson(const Json& j, const std::string& path,
                               PgControllerState& out,
                               std::string& error);

Json epochCountersToJson(const metrics::EpochCounters& c);
bool epochCountersFromJson(const Json& j, const std::string& path,
                           metrics::EpochCounters& out,
                           std::string& error);

Json epochSampleToJson(const metrics::EpochSample& s);
bool epochSampleFromJson(const Json& j, const std::string& path,
                         metrics::EpochSample& out, std::string& error);

Json samplerStateToJson(const metrics::SamplerState& s);
bool samplerStateFromJson(const Json& j, const std::string& path,
                          metrics::SamplerState& out,
                          std::string& error);

Json traceEventToJson(const trace::Event& e);
bool traceEventFromJson(const Json& j, const std::string& path,
                        trace::Event& out, std::string& error);

Json smSnapshotToJson(const SmSnapshot& s);
bool smSnapshotFromJson(const Json& j, const std::string& path,
                        SmSnapshot& out, std::string& error);

Json gpuSnapshotToJson(const GpuSnapshot& s);
bool gpuSnapshotFromJson(const Json& j, const std::string& path,
                         GpuSnapshot& out, std::string& error);

Json snapshotIdentityToJson(const SnapshotIdentity& id);
bool snapshotIdentityFromJson(const Json& j, const std::string& path,
                              SnapshotIdentity& out, std::string& error);

} // namespace wg::serve::wire
