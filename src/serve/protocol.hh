/**
 * @file
 * Request/response layer of the line-delimited JSON protocol.
 *
 * Every request and response is exactly one line of compact JSON with
 * a {"wire":1,"type":...} envelope. Requests (grammar in DESIGN.md
 * §15):
 *
 *   submit      {"wire":1,"type":"submit","priority":P?,"sweep":{...}}
 *   status      {"wire":1,"type":"status","id":"jN"?}
 *   result      {"wire":1,"type":"result","id":"jN"}
 *   cancel      {"wire":1,"type":"cancel","id":"jN"}
 *   stats       {"wire":1,"type":"stats"}
 *   drain       {"wire":1,"type":"drain"}
 *   subscribe   {"wire":1,"type":"subscribe","id":"jN"}
 *   unsubscribe {"wire":1,"type":"unsubscribe"}
 *
 * Responses are {"wire":1,"type":"response","request":R,"ok":B,...}
 * with request-specific payload members on success and "error" on
 * failure. Malformed input of any kind produces an error response,
 * never an abort and never a dropped connection.
 *
 * subscribe attaches the connection to a job's live frame stream
 * (grammar in stream.hh): after the ok response the server interleaves
 * pushed {"type":"frame",...} lines with any further responses, until
 * the stream's terminal result frame or an unsubscribe. At most one
 * subscription per connection.
 */

#pragma once

#include <memory>
#include <string>

#include "serve/jobs.hh"
#include "serve/json.hh"

namespace wg::serve {

/** Per-connection protocol state (one subscription at most). */
struct ConnState
{
    std::shared_ptr<Subscription> sub; ///< live stream, or null
};

/** handleRequestLine() outcome. */
struct ProtocolResult
{
    std::string response; ///< one line of JSON (no trailing newline)
    bool drained = false; ///< request was a completed `drain`
};

/**
 * Execute one request line against @p jobs and build the response
 * line, updating @p conn for subscribe/unsubscribe. A `drain` request
 * blocks until the manager is idle, then reports drained=true so the
 * server can shut down.
 */
ProtocolResult handleRequestLine(JobManager& jobs, ConnState& conn,
                                 const std::string& line);

/** JobStatus -> JSON object (protocol member spellings). */
Json statusJson(const JobStatus& status);

/** Parse a status JSON object back (client side). */
bool parseStatusJson(const Json& j, JobStatus& out, std::string& error);

} // namespace wg::serve
