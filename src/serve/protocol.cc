#include "protocol.hh"

#include "common/stats.hh"
#include "serve/snapshot.hh"
#include "serve/wire.hh"

namespace wg::serve {

namespace {

Json
responseEnvelope(const std::string& request)
{
    Json doc = Json::object();
    doc.set("wire", Json::number(wire::kSchemaVersion));
    doc.set("type", Json::string("response"));
    doc.set("request", Json::string(request));
    return doc;
}

ProtocolResult
errorResponse(const std::string& request, const std::string& error)
{
    Json doc = responseEnvelope(request);
    doc.set("ok", Json::boolean(false));
    doc.set("error", Json::string(error));
    return ProtocolResult{doc.dump(), false};
}

ProtocolResult
okResponse(Json doc)
{
    return ProtocolResult{doc.dump(), false};
}

/** Extract the "id" member; empty + error set when missing/invalid. */
bool
requestId(const Json& doc, std::string& id, std::string& error)
{
    const Json* j = doc.find("id");
    if (j == nullptr || !j->isString() || j->asString().empty()) {
        error = "request requires a non-empty string 'id'";
        return false;
    }
    id = j->asString();
    return true;
}

ProtocolResult
handleSubmit(JobManager& jobs, const Json& doc)
{
    const Json* sweep = doc.find("sweep");
    if (sweep == nullptr)
        return errorResponse("submit", "submit requires 'sweep'");
    SweepSpec spec({}, {});
    std::string error;
    if (!wire::fromJson(*sweep, spec, error))
        return errorResponse("submit", error);
    std::uint64_t priority = 0;
    if (const Json* p = doc.find("priority")) {
        if (!p->isNumber() || p->asDouble() < 0)
            return errorResponse(
                "submit", "'priority' must be a non-negative integer");
        priority = p->asU64();
        if (priority > 1u << 16)
            return errorResponse("submit", "'priority' out of range");
    }
    // A resumed submission carries the checkpoint's completed cells;
    // they seed the runner's cache before the job is admitted so the
    // job only recomputes the unfinished remainder.
    std::size_t seeded = 0;
    if (const Json* arr = doc.find("cells")) {
        if (!arr->isArray())
            return errorResponse("submit", "'cells' must be an array");
        std::vector<wire::ResultCell> cells;
        for (const Json& cell : arr->items()) {
            wire::ResultCell parsed;
            if (!wire::parseResultDoc(cell, parsed, error))
                return errorResponse("submit", error);
            cells.push_back(std::move(parsed));
        }
        seeded = jobs.seedCells(cells);
    }
    JobManager::SubmitOutcome out =
        jobs.submit(spec, static_cast<unsigned>(priority));
    if (!out.ok)
        return errorResponse("submit", out.error);
    Json resp = responseEnvelope("submit");
    resp.set("ok", Json::boolean(true));
    resp.set("id", Json::string(out.id));
    resp.set("deduped", Json::boolean(out.deduped));
    if (doc.find("cells") != nullptr)
        resp.set("seeded", Json::number(std::uint64_t(seeded)));
    return okResponse(std::move(resp));
}

ProtocolResult
handleCheckpoint(JobManager& jobs, const Json& doc)
{
    std::string id;
    std::string error;
    if (!requestId(doc, id, error))
        return errorResponse("checkpoint", error);
    SweepSpec spec({}, {});
    std::vector<JobCell> cells;
    if (!jobs.checkpoint(id, spec, cells, error))
        return errorResponse("checkpoint", error);
    // checkpoint() pinned the effective options into the spec, so
    // every cell was computed under exactly *spec.options.
    std::vector<Json> cellDocs;
    cellDocs.reserve(cells.size());
    for (const JobCell& cell : cells)
        cellDocs.push_back(wire::resultDoc(cell.bench, cell.technique,
                                           *spec.options, *cell.result));
    Json resp = responseEnvelope("checkpoint");
    resp.set("ok", Json::boolean(true));
    resp.set("id", Json::string(id));
    resp.set("snapshot", wire::jobSnapshotDoc(id, spec, cellDocs));
    return okResponse(std::move(resp));
}

ProtocolResult
handleStatus(JobManager& jobs, const Json& doc)
{
    Json resp = responseEnvelope("status");
    if (doc.find("id") != nullptr) {
        std::string id;
        std::string error;
        if (!requestId(doc, id, error))
            return errorResponse("status", error);
        std::optional<JobStatus> status = jobs.status(id);
        if (!status)
            return errorResponse("status", "unknown job '" + id + "'");
        resp.set("ok", Json::boolean(true));
        resp.set("job", statusJson(*status));
        return okResponse(std::move(resp));
    }
    Json list = Json::array();
    for (const JobStatus& s : jobs.listJobs())
        list.append(statusJson(s));
    resp.set("ok", Json::boolean(true));
    resp.set("jobs", std::move(list));
    return okResponse(std::move(resp));
}

ProtocolResult
handleResult(JobManager& jobs, const Json& doc)
{
    std::string id;
    std::string error;
    if (!requestId(doc, id, error))
        return errorResponse("result", error);
    std::vector<JobCell> cells;
    ExperimentOptions optsUsed;
    if (!jobs.results(id, cells, optsUsed, error))
        return errorResponse("result", error);
    Json resp = responseEnvelope("result");
    resp.set("ok", Json::boolean(true));
    resp.set("id", Json::string(id));
    Json arr = Json::array();
    for (const JobCell& cell : cells)
        arr.append(wire::resultDoc(cell.bench, cell.technique, optsUsed,
                                   *cell.result));
    resp.set("cells", std::move(arr));
    return okResponse(std::move(resp));
}

ProtocolResult
handleCancel(JobManager& jobs, const Json& doc)
{
    std::string id;
    std::string error;
    if (!requestId(doc, id, error))
        return errorResponse("cancel", error);
    if (!jobs.cancel(id, error))
        return errorResponse("cancel", error);
    Json resp = responseEnvelope("cancel");
    resp.set("ok", Json::boolean(true));
    resp.set("id", Json::string(id));
    return okResponse(std::move(resp));
}

ProtocolResult
handleStats(JobManager& jobs)
{
    StatSet set;
    jobs.publishStats(set);
    Json stats = Json::object();
    for (const auto& [name, value] : set.entries())
        stats.set(name, Json::number(value));
    Json resp = responseEnvelope("stats");
    resp.set("ok", Json::boolean(true));
    resp.set("stats", std::move(stats));
    return okResponse(std::move(resp));
}

ProtocolResult
handleDrain(JobManager& jobs)
{
    jobs.drain();
    Json resp = responseEnvelope("drain");
    resp.set("ok", Json::boolean(true));
    ProtocolResult out = okResponse(std::move(resp));
    out.drained = true;
    return out;
}

ProtocolResult
handleSubscribe(JobManager& jobs, ConnState& conn, const Json& doc)
{
    std::string id;
    std::string error;
    if (!requestId(doc, id, error))
        return errorResponse("subscribe", error);
    if (conn.sub != nullptr)
        return errorResponse("subscribe",
                             "connection already subscribed to job '" +
                                 conn.sub->jobId + "'");
    std::shared_ptr<Subscription> sub = jobs.subscribe(id, error);
    if (sub == nullptr)
        return errorResponse("subscribe", error);
    conn.sub = std::move(sub);
    Json resp = responseEnvelope("subscribe");
    resp.set("ok", Json::boolean(true));
    resp.set("id", Json::string(id));
    return okResponse(std::move(resp));
}

ProtocolResult
handleUnsubscribe(JobManager& jobs, ConnState& conn)
{
    if (conn.sub == nullptr)
        return errorResponse("unsubscribe",
                             "connection has no subscription");
    const std::string id = conn.sub->jobId;
    jobs.unsubscribe(conn.sub);
    conn.sub.reset();
    Json resp = responseEnvelope("unsubscribe");
    resp.set("ok", Json::boolean(true));
    resp.set("id", Json::string(id));
    return okResponse(std::move(resp));
}

} // namespace

ProtocolResult
handleRequestLine(JobManager& jobs, ConnState& conn,
                  const std::string& line)
{
    Json doc;
    std::string error;
    if (!Json::parse(line, doc, error))
        return errorResponse("?", "malformed request: " + error);
    if (!doc.isObject())
        return errorResponse("?", "request must be a JSON object");
    const Json* wire_v = doc.find("wire");
    if (wire_v == nullptr || !wire_v->isNumber())
        return errorResponse("?", "request missing numeric 'wire'");
    if (wire_v->asU64() < wire::kMinSchemaVersion ||
        wire_v->asU64() > wire::kSchemaVersion)
        return errorResponse(
            "?", "unsupported wire version " +
                     std::to_string(wire_v->asU64()) + " (expected " +
                     std::to_string(wire::kMinSchemaVersion) + ".." +
                     std::to_string(wire::kSchemaVersion) + ")");
    const Json* type = doc.find("type");
    if (type == nullptr || !type->isString())
        return errorResponse("?", "request missing string 'type'");
    const std::string& t = type->asString();
    if (t == "submit")
        return handleSubmit(jobs, doc);
    if (t == "status")
        return handleStatus(jobs, doc);
    if (t == "result")
        return handleResult(jobs, doc);
    if (t == "cancel")
        return handleCancel(jobs, doc);
    if (t == "checkpoint")
        return handleCheckpoint(jobs, doc);
    if (t == "stats")
        return handleStats(jobs);
    if (t == "drain")
        return handleDrain(jobs);
    if (t == "subscribe")
        return handleSubscribe(jobs, conn, doc);
    if (t == "unsubscribe")
        return handleUnsubscribe(jobs, conn);
    return errorResponse(t, "unknown request type '" + t + "'");
}

Json
statusJson(const JobStatus& status)
{
    Json j = Json::object();
    j.set("id", Json::string(status.id));
    j.set("state", Json::string(jobStateName(status.state)));
    j.set("priority", Json::number(std::uint64_t(status.priority)));
    j.set("totalCells", Json::number(std::uint64_t(status.totalCells)));
    j.set("completedCells",
          Json::number(std::uint64_t(status.completedCells)));
    j.set("deduped", Json::boolean(status.deduped));
    j.set("submitSeq", Json::number(status.submitSeq));
    j.set("startSeq", Json::number(status.startSeq));
    if (!status.error.empty())
        j.set("error", Json::string(status.error));
    return j;
}

bool
parseStatusJson(const Json& j, JobStatus& out, std::string& error)
{
    if (!j.isObject()) {
        error = "job status must be an object";
        return false;
    }
    auto getString = [&](const char* key, std::string& dst,
                         bool required) {
        const Json* m = j.find(key);
        if (m == nullptr) {
            if (required)
                error = std::string("job status missing '") + key + "'";
            return !required;
        }
        if (!m->isString()) {
            error = std::string("job status '") + key +
                    "' must be a string";
            return false;
        }
        dst = m->asString();
        return true;
    };
    auto getU64 = [&](const char* key, std::uint64_t& dst) {
        const Json* m = j.find(key);
        if (m == nullptr || !m->isNumber()) {
            error = std::string("job status missing numeric '") + key +
                    "'";
            return false;
        }
        dst = m->asU64();
        return true;
    };
    std::string state;
    if (!getString("id", out.id, true) ||
        !getString("state", state, true) ||
        !getString("error", out.error, false))
        return false;
    bool known = false;
    for (JobState s :
         {JobState::Queued, JobState::Running, JobState::Done,
          JobState::Cancelled, JobState::Failed}) {
        if (state == jobStateName(s)) {
            out.state = s;
            known = true;
            break;
        }
    }
    if (!known) {
        error = "unknown job state '" + state + "'";
        return false;
    }
    std::uint64_t priority = 0;
    std::uint64_t total = 0;
    std::uint64_t completed = 0;
    if (!getU64("priority", priority) || !getU64("totalCells", total) ||
        !getU64("completedCells", completed) ||
        !getU64("submitSeq", out.submitSeq) ||
        !getU64("startSeq", out.startSeq))
        return false;
    out.priority = static_cast<unsigned>(priority);
    out.totalCells = static_cast<std::size_t>(total);
    out.completedCells = static_cast<std::size_t>(completed);
    const Json* deduped = j.find("deduped");
    if (deduped == nullptr || !deduped->isBool()) {
        error = "job status missing boolean 'deduped'";
        return false;
    }
    out.deduped = deduped->asBool();
    return true;
}

} // namespace wg::serve
