/**
 * @file
 * Minimal POSIX TCP helpers for the serving daemon: loopback-only
 * listeners, poll-based timeouts, and a buffered line reader for the
 * line-delimited JSON protocol.
 *
 * Everything here reports failures by return value + error string —
 * a network peer must never be able to abort the daemon. This module
 * (and only this module inside the project) may use wall-clock
 * timeouts; see the serving determinism contract in DESIGN.md §15:
 * timeouts bound how long we *wait*, never what a simulation
 * *computes*.
 */

#pragma once

#include <cstdint>
#include <string>

namespace wg::serve {

/** RAII file descriptor (closes on destruction; movable). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd& operator=(Fd&& other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void reset();
    /** Release ownership without closing. */
    int release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

  private:
    int fd_ = -1;
};

/**
 * Listen on loopback (127.0.0.1) at @p port; 0 picks a free port.
 * @param boundPort receives the actual port.
 * @return invalid Fd with @p error set on failure.
 */
Fd listenTcp(std::uint16_t port, std::uint16_t& boundPort,
             std::string& error);

/**
 * Accept one connection, waiting at most @p timeoutMs (-1 = forever).
 * @return invalid Fd on timeout (error empty) or failure (error set).
 */
Fd acceptConn(int listenFd, int timeoutMs, std::string& error);

/** Connect to loopback:@p port within @p timeoutMs. */
Fd connectTcp(std::uint16_t port, int timeoutMs, std::string& error);

/**
 * Write all of @p data (handles partial writes; SIGPIPE-safe).
 * @return false with @p error on a closed or broken peer.
 */
bool sendAll(int fd, const std::string& data, std::string& error);

/**
 * Buffered '\n'-delimited reader with a per-line deadline and a hard
 * line-length cap (an unframed peer cannot buffer-bloat the daemon).
 */
class LineReader
{
  public:
    explicit LineReader(int fd, std::size_t maxLineBytes = 64u << 20)
        : fd_(fd), max_line_(maxLineBytes)
    {
    }

    enum class Status : std::uint8_t {
        Line,    ///< a complete line is in @p out
        Eof,     ///< peer closed cleanly before any byte of a new line
        Timeout, ///< deadline expired mid-line
        Error,   ///< socket error or line over the cap (@p error set)
    };

    /**
     * Read one line (without the trailing '\n'; a trailing '\r' is
     * stripped) within @p timeoutMs (-1 = no deadline).
     */
    Status readLine(std::string& out, int timeoutMs, std::string& error);

  private:
    int fd_;
    std::size_t max_line_;
    std::string buf_;
    bool eof_ = false;
};

} // namespace wg::serve
