#include "snapshot.hh"

#include "serve/wire_detail.hh"

namespace wg::serve::wire {

using namespace detail;

namespace {

// ----- narrow-integer readers (range-checked on the way in) -----

bool
getU32(const Json& j, const std::string& path, const char* key,
       std::uint32_t& out, std::string& error)
{
    std::uint64_t v = 0;
    if (!getU64(j, path, key, v, error))
        return false;
    if (v > UINT32_MAX)
        return failAt(error, path + "." + key, "out of range");
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
getU16(const Json& j, const std::string& path, const char* key,
       std::uint16_t& out, std::string& error)
{
    std::uint64_t v = 0;
    if (!getU64(j, path, key, v, error))
        return false;
    if (v > UINT16_MAX)
        return failAt(error, path + "." + key, "out of range");
    out = static_cast<std::uint16_t>(v);
    return true;
}

bool
getU8(const Json& j, const std::string& path, const char* key,
      std::uint8_t& out, std::string& error)
{
    std::uint64_t v = 0;
    if (!getU64(j, path, key, v, error))
        return false;
    if (v > UINT8_MAX)
        return failAt(error, path + "." + key, "out of range");
    out = static_cast<std::uint8_t>(v);
    return true;
}

Json
u32VectorToJson(const std::vector<std::uint32_t>& values)
{
    Json arr = Json::array();
    for (std::uint32_t v : values)
        arr.append(Json::number(static_cast<std::uint64_t>(v)));
    return arr;
}

bool
u32VectorFromJson(const Json& obj, const std::string& path,
                  const char* key, std::vector<std::uint32_t>& out,
                  std::string& error)
{
    const Json* arr = nullptr;
    if (!getArray(obj, path, key, 0, arr, error))
        return false;
    out.clear();
    out.reserve(arr->items().size());
    for (std::size_t i = 0; i < arr->items().size(); ++i) {
        std::uint64_t v = 0;
        if (!u64Item(*arr, path + "." + key, i, v, error))
            return false;
        if (v > UINT32_MAX)
            return failAt(error,
                          path + "." + key + "." + std::to_string(i),
                          "out of range");
        out.push_back(static_cast<std::uint32_t>(v));
    }
    return true;
}

Json
cycleVectorToJson(const std::vector<Cycle>& values)
{
    Json arr = Json::array();
    for (Cycle v : values)
        arr.append(Json::number(v));
    return arr;
}

bool
cycleVectorFromJson(const Json& obj, const std::string& path,
                    const char* key, std::vector<Cycle>& out,
                    std::string& error)
{
    const Json* arr = nullptr;
    if (!getArray(obj, path, key, 0, arr, error))
        return false;
    out.clear();
    out.reserve(arr->items().size());
    for (std::size_t i = 0; i < arr->items().size(); ++i) {
        Cycle v = 0;
        if (!u64Item(*arr, path + "." + key, i, v, error))
            return false;
        out.push_back(v);
    }
    return true;
}

bool
parseSchedulerName(const std::string& name, SchedulerPolicy& out)
{
    for (SchedulerPolicy p : {SchedulerPolicy::TwoLevel,
                              SchedulerPolicy::Gates,
                              SchedulerPolicy::Gto}) {
        if (name == schedulerPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

bool
parsePgPolicyName(const std::string& name, PgPolicy& out)
{
    for (PgPolicy p : {PgPolicy::None, PgPolicy::Conventional,
                       PgPolicy::NaiveBlackout,
                       PgPolicy::CoordinatedBlackout}) {
        if (name == pgPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

} // namespace

Json
rngStateToJson(const RngState& s)
{
    Json j = Json::object();
    j.set("state", Json::number(s.state));
    j.set("inc", Json::number(s.inc));
    return j;
}

bool
rngStateFromJson(const Json& j, const std::string& path, RngState& out,
                 std::string& error)
{
    return getU64(j, path, "state", out.state, error) &&
           getU64(j, path, "inc", out.inc, error);
}

Json
warpSlotStateToJson(const WarpSlotState& s)
{
    Json j = Json::object();
    j.set("pc", Json::number(static_cast<std::uint64_t>(s.pc)));
    j.set("bufSize",
          Json::number(static_cast<std::uint64_t>(s.bufSize)));
    j.set("outstanding",
          Json::number(static_cast<std::uint64_t>(s.outstanding)));
    j.set("loc", Json::number(static_cast<std::uint64_t>(s.loc)));
    return j;
}

bool
warpSlotStateFromJson(const Json& j, const std::string& path,
                      WarpSlotState& out, std::string& error)
{
    return getU32(j, path, "pc", out.pc, error) &&
           getU32(j, path, "bufSize", out.bufSize, error) &&
           getU32(j, path, "outstanding", out.outstanding, error) &&
           getU8(j, path, "loc", out.loc, error);
}

Json
schedulerStateToJson(const SchedulerState& s)
{
    Json j = Json::object();
    j.set("hiClass", Json::number(static_cast<std::uint64_t>(s.hiClass)));
    j.set("lastSwitch", Json::number(s.lastSwitch));
    j.set("switches", Json::number(s.switches));
    j.set("greedyWarp",
          Json::number(static_cast<std::uint64_t>(s.greedyWarp)));
    j.set("now", Json::number(s.now));
    return j;
}

bool
schedulerStateFromJson(const Json& j, const std::string& path,
                       SchedulerState& out, std::string& error)
{
    return getU8(j, path, "hiClass", out.hiClass, error) &&
           getU64(j, path, "lastSwitch", out.lastSwitch, error) &&
           getU64(j, path, "switches", out.switches, error) &&
           getU32(j, path, "greedyWarp", out.greedyWarp, error) &&
           getU64(j, path, "now", out.now, error);
}

Json
completionToJson(const Completion& c)
{
    Json j = Json::object();
    j.set("done", Json::number(c.done));
    j.set("warp", Json::number(static_cast<std::uint64_t>(c.warp)));
    j.set("dest", Json::number(static_cast<std::uint64_t>(c.dest)));
    j.set("longLatency", Json::boolean(c.longLatency));
    return j;
}

bool
completionFromJson(const Json& j, const std::string& path,
                   Completion& out, std::string& error)
{
    return getU64(j, path, "done", out.done, error) &&
           getU32(j, path, "warp", out.warp, error) &&
           getU16(j, path, "dest", out.dest, error) &&
           getBool(j, path, "longLatency", out.longLatency, error);
}

Json
execUnitStateToJson(const ExecUnitState& s)
{
    Json j = Json::object();
    j.set("lastIssue", Json::number(s.lastIssue));
    j.set("issues", Json::number(s.issues));
    j.set("occupancy", cycleVectorToJson(s.occupancy));
    Json completions = Json::array();
    for (const Completion& c : s.completions)
        completions.append(completionToJson(c));
    j.set("completions", std::move(completions));
    return j;
}

bool
execUnitStateFromJson(const Json& j, const std::string& path,
                      ExecUnitState& out, std::string& error)
{
    if (!getU64(j, path, "lastIssue", out.lastIssue, error) ||
        !getU64(j, path, "issues", out.issues, error) ||
        !cycleVectorFromJson(j, path, "occupancy", out.occupancy, error))
        return false;
    const Json* completions = nullptr;
    if (!getArray(j, path, "completions", 0, completions, error))
        return false;
    out.completions.clear();
    out.completions.reserve(completions->items().size());
    for (std::size_t i = 0; i < completions->items().size(); ++i) {
        const std::string ipath =
            path + ".completions." + std::to_string(i);
        Completion c{};
        if (!completionFromJson(completions->items()[i], ipath, c,
                                error))
            return false;
        out.completions.push_back(c);
    }
    return true;
}

Json
memSystemStateToJson(const MemSystemState& s)
{
    Json j = Json::object();
    j.set("rng", rngStateToJson(s.rng));
    j.set("batchTime", Json::number(s.batchTime));
    j.set("batchUsed",
          Json::number(static_cast<std::uint64_t>(s.batchUsed)));
    j.set("batchLatency", Json::number(s.batchLatency));
    j.set("batchValid", Json::boolean(s.batchValid));
    j.set("inflight", cycleVectorToJson(s.inflight));
    j.set("hits", Json::number(s.hits));
    j.set("misses", Json::number(s.misses));
    j.set("stores", Json::number(s.stores));
    j.set("mshrRejects", Json::number(s.mshrRejects));
    return j;
}

bool
memSystemStateFromJson(const Json& j, const std::string& path,
                       MemSystemState& out, std::string& error)
{
    const Json* rng = nullptr;
    return getMember(j, path, "rng", rng, error) &&
           rngStateFromJson(*rng, path + ".rng", out.rng, error) &&
           getU64(j, path, "batchTime", out.batchTime, error) &&
           getU32(j, path, "batchUsed", out.batchUsed, error) &&
           getU64(j, path, "batchLatency", out.batchLatency, error) &&
           getBool(j, path, "batchValid", out.batchValid, error) &&
           cycleVectorFromJson(j, path, "inflight", out.inflight,
                               error) &&
           getU64(j, path, "hits", out.hits, error) &&
           getU64(j, path, "misses", out.misses, error) &&
           getU64(j, path, "stores", out.stores, error) &&
           getU64(j, path, "mshrRejects", out.mshrRejects, error);
}

Json
pgDomainStateToJson(const PgDomainState& s)
{
    Json j = Json::object();
    j.set("state", Json::number(static_cast<std::uint64_t>(s.state)));
    j.set("idleCount", Json::number(s.idleCount));
    j.set("betRemaining", Json::number(s.betRemaining));
    j.set("wakeupRemaining", Json::number(s.wakeupRemaining));
    j.set("compensatedAt", Json::number(s.compensatedAt));
    j.set("wakeupRequested", Json::boolean(s.wakeupRequested));
    j.set("idleRun", Json::number(s.idleRun));
    j.set("epochCritical",
          Json::number(static_cast<std::uint64_t>(s.epochCritical)));
    j.set("stats", pgStatsToJson(s.stats));
    j.set("idleHist", histogramToJson(s.idleHist));
    return j;
}

bool
pgDomainStateFromJson(const Json& j, const std::string& path,
                      PgDomainState& out, std::string& error)
{
    const Json* stats = nullptr;
    const Json* hist = nullptr;
    return getU8(j, path, "state", out.state, error) &&
           getU64(j, path, "idleCount", out.idleCount, error) &&
           getU64(j, path, "betRemaining", out.betRemaining, error) &&
           getU64(j, path, "wakeupRemaining", out.wakeupRemaining,
                  error) &&
           getU64(j, path, "compensatedAt", out.compensatedAt, error) &&
           getBool(j, path, "wakeupRequested", out.wakeupRequested,
                   error) &&
           getU64(j, path, "idleRun", out.idleRun, error) &&
           getU32(j, path, "epochCritical", out.epochCritical, error) &&
           getMember(j, path, "stats", stats, error) &&
           pgStatsFromJson(*stats, path + ".stats", out.stats, error) &&
           getMember(j, path, "idleHist", hist, error) &&
           histogramFromJson(*hist, path + ".idleHist", out.idleHist,
                             error);
}

Json
adaptiveStateToJson(const AdaptiveState& s)
{
    Json j = Json::object();
    j.set("value", Json::number(s.value));
    j.set("goodEpochs",
          Json::number(static_cast<std::uint64_t>(s.goodEpochs)));
    j.set("increments", Json::number(s.increments));
    j.set("decrements", Json::number(s.decrements));
    return j;
}

bool
adaptiveStateFromJson(const Json& j, const std::string& path,
                      AdaptiveState& out, std::string& error)
{
    return getU64(j, path, "value", out.value, error) &&
           getU32(j, path, "goodEpochs", out.goodEpochs, error) &&
           getU64(j, path, "increments", out.increments, error) &&
           getU64(j, path, "decrements", out.decrements, error);
}

Json
pgControllerStateToJson(const PgControllerState& s)
{
    Json j = Json::object();
    Json domains = Json::object();
    const char* kTypeNames[2] = {"int", "fp"};
    for (std::size_t type = 0; type < 2; ++type) {
        Json pair = Json::array();
        for (std::size_t c = 0; c < kClustersPerType; ++c)
            pair.append(pgDomainStateToJson(s.domains[type][c]));
        domains.set(kTypeNames[type], std::move(pair));
    }
    j.set("domains", std::move(domains));
    j.set("sfuDomain", pgDomainStateToJson(s.sfuDomain));
    Json adaptive = Json::array();
    for (std::size_t type = 0; type < 2; ++type)
        adaptive.append(adaptiveStateToJson(s.adaptive[type]));
    j.set("adaptive", std::move(adaptive));
    j.set("epochStart", Json::number(s.epochStart));
    return j;
}

bool
pgControllerStateFromJson(const Json& j, const std::string& path,
                          PgControllerState& out, std::string& error)
{
    const Json* domains = nullptr;
    if (!getMember(j, path, "domains", domains, error))
        return false;
    const char* kTypeNames[2] = {"int", "fp"};
    for (std::size_t type = 0; type < 2; ++type) {
        const Json* pair = nullptr;
        const std::string dpath = path + ".domains";
        if (!getArray(*domains, dpath, kTypeNames[type],
                      kClustersPerType, pair, error))
            return false;
        for (std::size_t c = 0; c < kClustersPerType; ++c) {
            const std::string ipath = dpath + "." + kTypeNames[type] +
                                      "." + std::to_string(c);
            if (!pair->items()[c].isObject())
                return failAt(error, ipath, "expected an object");
            if (!pgDomainStateFromJson(pair->items()[c], ipath,
                                       out.domains[type][c], error))
                return false;
        }
    }
    const Json* sfu = nullptr;
    if (!getMember(j, path, "sfuDomain", sfu, error) ||
        !pgDomainStateFromJson(*sfu, path + ".sfuDomain", out.sfuDomain,
                               error))
        return false;
    const Json* adaptive = nullptr;
    if (!getArray(j, path, "adaptive", 2, adaptive, error))
        return false;
    for (std::size_t type = 0; type < 2; ++type) {
        const std::string apath =
            path + ".adaptive." + std::to_string(type);
        if (!adaptive->items()[type].isObject())
            return failAt(error, apath, "expected an object");
        if (!adaptiveStateFromJson(adaptive->items()[type], apath,
                                   out.adaptive[type], error))
            return false;
    }
    return getU64(j, path, "epochStart", out.epochStart, error);
}

Json
epochCountersToJson(const metrics::EpochCounters& c)
{
    Json j = Json::object();
    j.set("issued", Json::number(c.issued));
    j.set("intBusyCycles", Json::number(c.intBusyCycles));
    j.set("intGatedCycles", Json::number(c.intGatedCycles));
    j.set("intCompCycles", Json::number(c.intCompCycles));
    j.set("intGatingEvents", Json::number(c.intGatingEvents));
    j.set("intWakeups", Json::number(c.intWakeups));
    j.set("intCriticalWakeups", Json::number(c.intCriticalWakeups));
    j.set("fpBusyCycles", Json::number(c.fpBusyCycles));
    j.set("fpGatedCycles", Json::number(c.fpGatedCycles));
    j.set("fpCompCycles", Json::number(c.fpCompCycles));
    j.set("fpGatingEvents", Json::number(c.fpGatingEvents));
    j.set("fpWakeups", Json::number(c.fpWakeups));
    j.set("fpCriticalWakeups", Json::number(c.fpCriticalWakeups));
    j.set("memMisses", Json::number(c.memMisses));
    j.set("mshrRejects", Json::number(c.mshrRejects));
    j.set("wakeupRequests", Json::number(c.wakeupRequests));
    j.set("activeAccum", Json::number(c.activeAccum));
    j.set("intIdleDetect", Json::number(c.intIdleDetect));
    j.set("fpIdleDetect", Json::number(c.fpIdleDetect));
    return j;
}

bool
epochCountersFromJson(const Json& j, const std::string& path,
                      metrics::EpochCounters& out, std::string& error)
{
    return getU64(j, path, "issued", out.issued, error) &&
           getU64(j, path, "intBusyCycles", out.intBusyCycles, error) &&
           getU64(j, path, "intGatedCycles", out.intGatedCycles,
                  error) &&
           getU64(j, path, "intCompCycles", out.intCompCycles, error) &&
           getU64(j, path, "intGatingEvents", out.intGatingEvents,
                  error) &&
           getU64(j, path, "intWakeups", out.intWakeups, error) &&
           getU64(j, path, "intCriticalWakeups", out.intCriticalWakeups,
                  error) &&
           getU64(j, path, "fpBusyCycles", out.fpBusyCycles, error) &&
           getU64(j, path, "fpGatedCycles", out.fpGatedCycles, error) &&
           getU64(j, path, "fpCompCycles", out.fpCompCycles, error) &&
           getU64(j, path, "fpGatingEvents", out.fpGatingEvents,
                  error) &&
           getU64(j, path, "fpWakeups", out.fpWakeups, error) &&
           getU64(j, path, "fpCriticalWakeups", out.fpCriticalWakeups,
                  error) &&
           getU64(j, path, "memMisses", out.memMisses, error) &&
           getU64(j, path, "mshrRejects", out.mshrRejects, error) &&
           getU64(j, path, "wakeupRequests", out.wakeupRequests,
                  error) &&
           getU64(j, path, "activeAccum", out.activeAccum, error) &&
           getU64(j, path, "intIdleDetect", out.intIdleDetect, error) &&
           getU64(j, path, "fpIdleDetect", out.fpIdleDetect, error);
}

Json
epochSampleToJson(const metrics::EpochSample& s)
{
    Json j = Json::object();
    j.set("epoch", Json::number(static_cast<std::uint64_t>(s.epoch)));
    j.set("cycleEnd", Json::number(s.cycleEnd));
    j.set("cycles", Json::number(s.cycles));
    j.set("delta", epochCountersToJson(s.delta));
    return j;
}

bool
epochSampleFromJson(const Json& j, const std::string& path,
                    metrics::EpochSample& out, std::string& error)
{
    const Json* delta = nullptr;
    return getU32(j, path, "epoch", out.epoch, error) &&
           getU64(j, path, "cycleEnd", out.cycleEnd, error) &&
           getU64(j, path, "cycles", out.cycles, error) &&
           getMember(j, path, "delta", delta, error) &&
           epochCountersFromJson(*delta, path + ".delta", out.delta,
                                 error);
}

Json
samplerStateToJson(const metrics::SamplerState& s)
{
    Json j = Json::object();
    j.set("epochLength", Json::number(s.epochLength));
    j.set("lastCycle", Json::number(s.lastCycle));
    j.set("prev", epochCountersToJson(s.prev));
    Json samples = Json::array();
    for (const metrics::EpochSample& e : s.samples)
        samples.append(epochSampleToJson(e));
    j.set("samples", std::move(samples));
    return j;
}

bool
samplerStateFromJson(const Json& j, const std::string& path,
                     metrics::SamplerState& out, std::string& error)
{
    const Json* prev = nullptr;
    if (!getU64(j, path, "epochLength", out.epochLength, error) ||
        !getU64(j, path, "lastCycle", out.lastCycle, error) ||
        !getMember(j, path, "prev", prev, error) ||
        !epochCountersFromJson(*prev, path + ".prev", out.prev, error))
        return false;
    const Json* samples = nullptr;
    if (!getArray(j, path, "samples", 0, samples, error))
        return false;
    out.samples.clear();
    out.samples.reserve(samples->items().size());
    for (std::size_t i = 0; i < samples->items().size(); ++i) {
        const std::string ipath =
            path + ".samples." + std::to_string(i);
        metrics::EpochSample s;
        if (!epochSampleFromJson(samples->items()[i], ipath, s, error))
            return false;
        out.samples.push_back(s);
    }
    return true;
}

Json
traceEventToJson(const trace::Event& e)
{
    Json j = Json::object();
    j.set("cycle", Json::number(e.cycle));
    j.set("kind", Json::number(
                      static_cast<std::uint64_t>(
                          static_cast<std::uint8_t>(e.kind))));
    j.set("unit", Json::number(static_cast<std::uint64_t>(e.unit)));
    j.set("cluster",
          Json::number(static_cast<std::uint64_t>(e.cluster)));
    j.set("arg", Json::number(static_cast<std::uint64_t>(e.arg)));
    j.set("value", Json::number(static_cast<std::uint64_t>(e.value)));
    return j;
}

bool
traceEventFromJson(const Json& j, const std::string& path,
                   trace::Event& out, std::string& error)
{
    std::uint8_t kind = 0;
    if (!getU64(j, path, "cycle", out.cycle, error) ||
        !getU8(j, path, "kind", kind, error))
        return false;
    if (kind >= trace::kNumEventKinds)
        return failAt(error, path + ".kind", "unknown event kind");
    out.kind = static_cast<trace::EventKind>(kind);
    return getU8(j, path, "unit", out.unit, error) &&
           getU8(j, path, "cluster", out.cluster, error) &&
           getU8(j, path, "arg", out.arg, error) &&
           getU32(j, path, "value", out.value, error);
}

Json
smSnapshotToJson(const SmSnapshot& s)
{
    Json j = Json::object();
    j.set("now", Json::number(s.now));
    j.set("done", Json::boolean(s.done));
    j.set("finishedStats", Json::boolean(s.finishedStats));
    j.set("liveWarps", Json::number(s.liveWarps));
    j.set("ldstIdleRun", Json::number(s.ldstIdleRun));
    Json rr = Json::array();
    for (std::uint32_t v : s.rrCluster)
        rr.append(Json::number(static_cast<std::uint64_t>(v)));
    j.set("rrCluster", std::move(rr));
    j.set("active", u32VectorToJson(s.active));
    j.set("waiting", u32VectorToJson(s.waiting));
    j.set("pending", u32VectorToJson(s.pending));
    Json warps = Json::array();
    for (const WarpSlotState& w : s.warps)
        warps.append(warpSlotStateToJson(w));
    j.set("warps", std::move(warps));
    j.set("scoreboard", u32VectorToJson(s.scoreboard));
    j.set("scoreboardLong", u32VectorToJson(s.scoreboardLong));
    j.set("scheduler", schedulerStateToJson(s.scheduler));
    Json int_units = Json::array();
    Json fp_units = Json::array();
    for (std::size_t c = 0; c < 2; ++c) {
        int_units.append(execUnitStateToJson(s.intUnits[c]));
        fp_units.append(execUnitStateToJson(s.fpUnits[c]));
    }
    j.set("intUnits", std::move(int_units));
    j.set("fpUnits", std::move(fp_units));
    j.set("sfu", execUnitStateToJson(s.sfu));
    j.set("ldst", execUnitStateToJson(s.ldst));
    j.set("mem", memSystemStateToJson(s.mem));
    j.set("pg", pgControllerStateToJson(s.pg));
    j.set("stats", smStatsToJson(s.stats));
    j.set("hasTrace", Json::boolean(s.hasTrace));
    if (s.hasTrace) {
        Json events = Json::array();
        for (const trace::Event& e : s.traceEvents)
            events.append(traceEventToJson(e));
        j.set("traceEvents", std::move(events));
        j.set("traceOverwritten", Json::number(s.traceOverwritten));
    }
    j.set("hasSampler", Json::boolean(s.hasSampler));
    if (s.hasSampler)
        j.set("sampler", samplerStateToJson(s.sampler));
    return j;
}

bool
smSnapshotFromJson(const Json& j, const std::string& path,
                   SmSnapshot& out, std::string& error)
{
    if (!getU64(j, path, "now", out.now, error) ||
        !getBool(j, path, "done", out.done, error) ||
        !getBool(j, path, "finishedStats", out.finishedStats, error) ||
        !getU64(j, path, "liveWarps", out.liveWarps, error) ||
        !getU64(j, path, "ldstIdleRun", out.ldstIdleRun, error))
        return false;
    const Json* rr = nullptr;
    if (!getArray(j, path, "rrCluster", 2, rr, error))
        return false;
    for (std::size_t i = 0; i < 2; ++i) {
        std::uint64_t v = 0;
        if (!u64Item(*rr, path + ".rrCluster", i, v, error))
            return false;
        if (v > UINT32_MAX)
            return failAt(error,
                          path + ".rrCluster." + std::to_string(i),
                          "out of range");
        out.rrCluster[i] = static_cast<std::uint32_t>(v);
    }
    if (!u32VectorFromJson(j, path, "active", out.active, error) ||
        !u32VectorFromJson(j, path, "waiting", out.waiting, error) ||
        !u32VectorFromJson(j, path, "pending", out.pending, error))
        return false;
    const Json* warps = nullptr;
    if (!getArray(j, path, "warps", 0, warps, error))
        return false;
    out.warps.clear();
    out.warps.reserve(warps->items().size());
    for (std::size_t i = 0; i < warps->items().size(); ++i) {
        const std::string ipath = path + ".warps." + std::to_string(i);
        WarpSlotState w;
        if (!warpSlotStateFromJson(warps->items()[i], ipath, w, error))
            return false;
        out.warps.push_back(w);
    }
    const Json* scheduler = nullptr;
    if (!u32VectorFromJson(j, path, "scoreboard", out.scoreboard,
                           error) ||
        !u32VectorFromJson(j, path, "scoreboardLong",
                           out.scoreboardLong, error) ||
        !getMember(j, path, "scheduler", scheduler, error) ||
        !schedulerStateFromJson(*scheduler, path + ".scheduler",
                                out.scheduler, error))
        return false;
    const Json* int_units = nullptr;
    const Json* fp_units = nullptr;
    if (!getArray(j, path, "intUnits", 2, int_units, error) ||
        !getArray(j, path, "fpUnits", 2, fp_units, error))
        return false;
    for (std::size_t c = 0; c < 2; ++c) {
        const std::string ipath =
            path + ".intUnits." + std::to_string(c);
        const std::string fpath =
            path + ".fpUnits." + std::to_string(c);
        if (!int_units->items()[c].isObject())
            return failAt(error, ipath, "expected an object");
        if (!fp_units->items()[c].isObject())
            return failAt(error, fpath, "expected an object");
        if (!execUnitStateFromJson(int_units->items()[c], ipath,
                                   out.intUnits[c], error) ||
            !execUnitStateFromJson(fp_units->items()[c], fpath,
                                   out.fpUnits[c], error))
            return false;
    }
    const Json* sfu = nullptr;
    const Json* ldst = nullptr;
    const Json* mem = nullptr;
    const Json* pg = nullptr;
    const Json* stats = nullptr;
    if (!getMember(j, path, "sfu", sfu, error) ||
        !execUnitStateFromJson(*sfu, path + ".sfu", out.sfu, error) ||
        !getMember(j, path, "ldst", ldst, error) ||
        !execUnitStateFromJson(*ldst, path + ".ldst", out.ldst,
                               error) ||
        !getMember(j, path, "mem", mem, error) ||
        !memSystemStateFromJson(*mem, path + ".mem", out.mem, error) ||
        !getMember(j, path, "pg", pg, error) ||
        !pgControllerStateFromJson(*pg, path + ".pg", out.pg, error) ||
        !getMember(j, path, "stats", stats, error) ||
        !smStatsFromJson(*stats, path + ".stats", out.stats, error))
        return false;
    if (!getBool(j, path, "hasTrace", out.hasTrace, error))
        return false;
    out.traceEvents.clear();
    out.traceOverwritten = 0;
    if (out.hasTrace) {
        const Json* events = nullptr;
        if (!getArray(j, path, "traceEvents", 0, events, error) ||
            !getU64(j, path, "traceOverwritten", out.traceOverwritten,
                    error))
            return false;
        out.traceEvents.reserve(events->items().size());
        for (std::size_t i = 0; i < events->items().size(); ++i) {
            const std::string ipath =
                path + ".traceEvents." + std::to_string(i);
            trace::Event e;
            if (!traceEventFromJson(events->items()[i], ipath, e,
                                    error))
                return false;
            out.traceEvents.push_back(e);
        }
    }
    if (!getBool(j, path, "hasSampler", out.hasSampler, error))
        return false;
    out.sampler = metrics::SamplerState{};
    if (out.hasSampler) {
        const Json* sampler = nullptr;
        if (!getMember(j, path, "sampler", sampler, error) ||
            !samplerStateFromJson(*sampler, path + ".sampler",
                                  out.sampler, error))
            return false;
    }
    return true;
}

Json
gpuSnapshotToJson(const GpuSnapshot& s)
{
    Json j = Json::object();
    j.set("cycle", Json::number(s.cycle));
    Json sms = Json::array();
    for (const SmSnapshot& sm : s.sms)
        sms.append(smSnapshotToJson(sm));
    j.set("sms", std::move(sms));
    return j;
}

bool
gpuSnapshotFromJson(const Json& j, const std::string& path,
                    GpuSnapshot& out, std::string& error)
{
    if (!getU64(j, path, "cycle", out.cycle, error))
        return false;
    const Json* sms = nullptr;
    if (!getArray(j, path, "sms", 0, sms, error))
        return false;
    if (sms->items().empty())
        return failAt(error, path + ".sms", "must not be empty");
    out.sms.clear();
    out.sms.reserve(sms->items().size());
    for (std::size_t i = 0; i < sms->items().size(); ++i) {
        const std::string ipath = path + ".sms." + std::to_string(i);
        if (!sms->items()[i].isObject())
            return failAt(error, ipath, "expected an object");
        SmSnapshot sm;
        if (!smSnapshotFromJson(sms->items()[i], ipath, sm, error))
            return false;
        out.sms.push_back(std::move(sm));
    }
    return true;
}

Json
snapshotIdentityToJson(const SnapshotIdentity& id)
{
    Json j = Json::object();
    j.set("bench", Json::string(id.bench));
    j.set("technique", Json::string(techniqueName(id.technique)));
    j.set("options", toJson(id.options));
    Json overrides = Json::object();
    overrides.set("scheduler", Json::string(id.schedulerOverride));
    overrides.set("pg", Json::string(id.pgOverride));
    overrides.set("adaptive", Json::boolean(id.adaptiveOverride));
    overrides.set("gateSfu", Json::boolean(id.gateSfuOverride));
    j.set("overrides", std::move(overrides));
    return j;
}

bool
snapshotIdentityFromJson(const Json& j, const std::string& path,
                         SnapshotIdentity& out, std::string& error)
{
    std::string technique_name;
    if (!getString(j, path, "bench", out.bench, error) ||
        !getString(j, path, "technique", technique_name, error))
        return false;
    if (!parseTechnique(technique_name, out.technique))
        return failAt(error, path + ".technique",
                      "unknown technique '" + technique_name + "'");
    const Json* options = nullptr;
    if (!getMember(j, path, "options", options, error) ||
        !fromJson(*options, out.options, error))
        return false;
    const Json* overrides = nullptr;
    if (!getMember(j, path, "overrides", overrides, error))
        return false;
    const std::string opath = path + ".overrides";
    return getString(*overrides, opath, "scheduler",
                     out.schedulerOverride, error) &&
           getString(*overrides, opath, "pg", out.pgOverride, error) &&
           getBool(*overrides, opath, "adaptive", out.adaptiveOverride,
                   error) &&
           getBool(*overrides, opath, "gateSfu", out.gateSfuOverride,
                   error);
}

bool
snapshotConfig(const SnapshotIdentity& id, GpuConfig& out,
               std::string& error)
{
    out = makeConfig(id.technique, id.options);
    if (!id.schedulerOverride.empty() &&
        !parseSchedulerName(id.schedulerOverride, out.sm.scheduler)) {
        error = "unknown scheduler override '" + id.schedulerOverride +
                "'";
        return false;
    }
    if (!id.pgOverride.empty() &&
        !parsePgPolicyName(id.pgOverride, out.sm.pg.policy)) {
        error = "unknown pg override '" + id.pgOverride + "'";
        return false;
    }
    if (id.adaptiveOverride)
        out.sm.pg.adaptiveIdleDetect = true;
    if (id.gateSfuOverride)
        out.sm.pg.gateSfu = true;
    const std::vector<std::string> problems = out.validate();
    if (!problems.empty()) {
        error = "invalid snapshot configuration: " + problems.front();
        return false;
    }
    return true;
}

JsonLimits
snapshotJsonLimits()
{
    JsonLimits limits;
    // One trace ring holds up to 2^20 events; leave headroom above it.
    limits.maxContainerItems = std::size_t(1) << 21;
    return limits;
}

Json
snapshotDoc(const SnapshotIdentity& id, const GpuSnapshot& snap)
{
    Json doc = makeEnvelope("snapshot");
    // The identity members are spliced into the document root so the
    // doc reads like a resultDoc header. Keep the temporary alive for
    // the whole splice: members() views into it.
    const Json identity = snapshotIdentityToJson(id);
    for (const auto& [key, value] : identity.members())
        doc.set(key, Json(value));
    doc.set("snapshot", gpuSnapshotToJson(snap));
    return doc;
}

Json
jobSnapshotDoc(const std::string& id, const SweepSpec& spec,
               const std::vector<Json>& cellDocs)
{
    Json doc = makeEnvelope("jobSnapshot");
    doc.set("id", Json::string(id));
    doc.set("sweep", toJson(spec));
    Json cells = Json::array();
    for (const Json& cell : cellDocs)
        cells.append(Json(cell));
    doc.set("cells", std::move(cells));
    return doc;
}

bool
parseJobSnapshotDoc(const Json& doc, std::string& id, SweepSpec& spec,
                    std::vector<ResultCell>& cells, std::string& error)
{
    if (!checkEnvelope(doc, "jobSnapshot", error))
        return false;
    std::string jid;
    if (!getString(doc, "$", "id", jid, error))
        return false;
    const Json* sweep = nullptr;
    if (!getMember(doc, "$", "sweep", sweep, error))
        return false;
    if (!fromJson(*sweep, spec, error))
        return false;
    const Json* arr = nullptr;
    if (!getArray(doc, "$", "cells", 0, arr, error))
        return false;
    cells.clear();
    for (const Json& cell : arr->items()) {
        ResultCell out;
        if (!parseResultDoc(cell, out, error))
            return false;
        cells.push_back(std::move(out));
    }
    id = std::move(jid);
    return true;
}

bool
parseSnapshotDoc(const Json& doc, SnapshotIdentity& id,
                 GpuSnapshot& snap, std::string& error)
{
    if (!checkEnvelope(doc, "snapshot", error))
        return false;
    if (!snapshotIdentityFromJson(doc, "$", id, error))
        return false;
    const Json* body = nullptr;
    if (!getMember(doc, "$", "snapshot", body, error))
        return false;
    if (snap.sms.size() != 0)
        snap = GpuSnapshot{};
    if (!gpuSnapshotFromJson(*body, "snapshot", snap, error))
        return false;
    if (snap.sms.size() != id.options.numSms)
        return failAt(error, "snapshot.sms",
                      "SM count does not match options.numSms");
    return true;
}

} // namespace wg::serve::wire
