/**
 * @file
 * Live-telemetry frame builders: the line-JSON frames a subscribed
 * connection receives while a job runs.
 *
 * Frame kinds (all share the versioned envelope
 * `{"wire":1,"type":"frame","frame":...,"id":...}`):
 *
 *   - meta     — opens one cell's epoch series; carries the cell index,
 *                bench/technique, and the exact wgmetrics meta line.
 *   - epoch    — one SM-epoch sample; `data` is the exact jsonl line
 *                the offline `wgsim --metrics` export writes.
 *   - final    — closes one cell; `data` is the exact final-registry
 *                jsonl line.
 *   - progress — cells done/total plus a throughput-derived ETA.
 *   - result   — terminal; job state, error (failed only), and the
 *                subscriber's counted dropped frames.
 *
 * The determinism contract: concatenating the `data` members of one
 * cell's meta/epoch/final frames reproduces the offline
 * `wgsim --metrics` jsonl export byte-for-byte, because both sides are
 * built from the same metrics::jsonl*Line() builders.
 *
 * Thread safety: every builder here is a pure function of its
 * arguments — no shared mutable state, no capabilities to annotate
 * (see common/thread_annotations.hh). JobManager calls them from
 * worker threads outside its lock precisely because of this; keep new
 * builders stateless or they move under the manager's mu_.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "metrics/sampler.hh"

namespace wg::serve::stream {

/** Opens cell @p cell's series; @p series may be null (bare meta). */
std::string metaFrame(const std::string& id, std::size_t cell,
                      const std::string& bench,
                      const std::string& technique,
                      const metrics::EpochSeries* series);

/** One epoch sample of cell @p cell. */
std::string epochFrame(const std::string& id, std::size_t cell,
                       SmId sm, const metrics::EpochSample& s);

/** Closes cell @p cell with its final registry. */
std::string finalFrame(const std::string& id, std::size_t cell,
                       const StatSet& registry);

/** Cells done/total; @p etaMs < 0 means unknown (omitted). */
std::string progressFrame(const std::string& id,
                          std::size_t completedCells,
                          std::size_t totalCells, double etaMs);

/** Terminal frame; @p error is embedded only when non-empty. */
std::string resultFrame(const std::string& id, const char* state,
                        const std::string& error,
                        std::uint64_t droppedFrames);

/**
 * The replayable frames of one completed cell, in stream order:
 * meta, every epoch sample SM-major, final.
 */
std::vector<std::string> cellFrames(const std::string& id,
                                    std::size_t cell,
                                    const std::string& bench,
                                    const std::string& technique,
                                    const metrics::EpochSeries* series,
                                    const StatSet& registry);

} // namespace wg::serve::stream
