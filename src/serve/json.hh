/**
 * @file
 * Minimal JSON document model for the serving wire format.
 *
 * The metrics loader only needs to *flatten* numeric leaves; the wire
 * format needs the full tree back (schema version checks, nested
 * result blocks, request routing), so this module keeps a real DOM.
 *
 * Determinism contract: numbers remember their source lexeme, so
 * parse -> serialize reproduces the input bytes for any number the
 * simulator emits, and programmatically-built numbers are formatted
 * with metrics::formatMetricValue (integers exactly, doubles with
 * round-trip precision). Object members keep insertion order; two
 * builds of the same document therefore serialize byte-identically.
 *
 * Parsing never aborts: every malformed input — truncated documents,
 * wrong types, oversized fields — comes back as an error string, which
 * the protocol layer turns into a clean error response.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace wg::serve {

/** Hard input limits; exceeding any of them is a parse error. */
struct JsonLimits
{
    std::size_t maxDepth = 64;          ///< nesting depth
    std::size_t maxStringBytes = 1 << 16; ///< one string literal
    std::size_t maxContainerItems = 1 << 16; ///< members per container
};

/** One JSON value (tree node). */
class Json
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;

    static Json null();
    static Json boolean(bool v);
    /** Number formatted deterministically (formatMetricValue). */
    static Json number(double v);
    /** Unsigned counter; always formatted as an exact integer. */
    static Json number(std::uint64_t v);
    static Json string(std::string v);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asDouble() const { return num_; }
    /** Value as an unsigned counter (truncates; caller range-checks). */
    std::uint64_t asU64() const;
    const std::string& asString() const { return str_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<Json>& items() const { return items_; }
    void append(Json v);

    /** Object members in insertion order (empty unless isObject()). */
    const std::vector<std::pair<std::string, Json>>& members() const
    {
        return members_;
    }

    /** Add/replace a member (replacing keeps the original position). */
    void set(const std::string& key, Json v);

    /** @return the member, or nullptr when absent. */
    const Json* find(const std::string& key) const;

    /** Serialize compactly (no whitespace). */
    std::string dump() const;

    /**
     * Parse @p text into @p out.
     * @return false with @p error set on malformed or oversized input;
     *         never aborts.
     */
    static bool parse(const std::string& text, Json& out,
                      std::string& error,
                      const JsonLimits& limits = {});

  private:
    void dumpTo(std::string& out) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string lexeme_; ///< number source text (exact re-emission)
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;

    friend class JsonParser;
};

/** Escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(const std::string& s);

} // namespace wg::serve
