/**
 * @file
 * Per-benchmark workload characterisations.
 *
 * The paper evaluates 18 CUDA benchmarks from Rodinia, Parboil and the
 * ISPASS GPGPU-Sim suite on GPGPU-Sim. Those binaries (and an NVIDIA
 * toolchain) are unavailable here, so each benchmark is characterised by
 * the properties the paper itself reports (instruction mix from Fig. 5a,
 * active-warp availability from Fig. 5b) plus memory intensity and
 * dependency density chosen to reproduce the reported active-warp
 * averages. The synthetic generator (generator.hh) expands a profile
 * into per-warp instruction traces.
 */

#pragma once

#include <string>
#include <vector>

namespace wg {

/**
 * Statistical description of one benchmark kernel. All mix fractions
 * are normalised to sum to 1 by the generator.
 */
struct BenchmarkProfile
{
    std::string name;       ///< benchmark name as used in the paper

    // --- Instruction mix (Fig. 5a) ---
    double fracInt = 0.5;   ///< integer-unit instructions
    double fracFp = 0.3;    ///< floating-point-unit instructions
    double fracSfu = 0.0;   ///< special-function-unit instructions
    double fracLdst = 0.2;  ///< load/store instructions

    // --- Warp availability (Fig. 5b) ---
    int residentWarps = 48; ///< warps launched per SM (<= 48)

    // --- Dynamic behaviour knobs ---
    double memMissRatio = 0.3;  ///< fraction of loads that go long-latency
    double depProb = 0.35;      ///< P(instruction reads a recent result)
    int depWindow = 6;          ///< max producer lookback distance
    double storeFrac = 0.25;    ///< fraction of LDST that are stores

    /**
     * Probability that a load's value is consumed by a nearby later
     * instruction (compilers schedule the consumer a few instructions
     * after the load). Consumption of a missing load is what demotes a
     * warp to the two-level pending set, so this knob — together with
     * memMissRatio — controls the average active-warp count (Fig. 5b).
     */
    double loadConsumeProb = 0.85;

    /** Maximum LDST instructions per memory burst (tile size proxy). */
    int loadBurstMax = 4;

    /**
     * Phase behaviour: 0 = well-mixed stream; otherwise the generator
     * alternates INT-biased and FP-biased phases of this many
     * instructions, modelling kernels with distinct compute phases.
     */
    int phaseLen = 0;
    double phaseBias = 3.0;     ///< weight multiplier inside a phase

    int kernelLength = 1500;    ///< instructions per warp

    /**
     * Warps per CTA (thread block). All warps of a CTA execute the
     * same instruction sequence (SIMT kernels are one program), which
     * gives the phase-correlated stalls real kernels exhibit; different
     * CTAs get independently generated sequences.
     */
    int ctaWarps = 16;

    /** @return true when the benchmark has (almost) no FP activity. */
    bool
    isIntegerOnly() const
    {
        return fracFp < 0.005;
    }
};

/** The 18-benchmark suite used throughout the paper's evaluation. */
const std::vector<BenchmarkProfile>& benchmarkSuite();

/** Look up a benchmark by name; fatal() when unknown. */
const BenchmarkProfile& findBenchmark(const std::string& name);

/** Names of all suite benchmarks, in the paper's (alphabetical) order. */
std::vector<std::string> benchmarkNames();

} // namespace wg

