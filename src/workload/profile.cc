#include "profile.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wg {

namespace {

/**
 * Suite characterisations. Instruction mixes follow Fig. 5a; resident
 * warps follow the Fig. 5b maxima; memory-miss ratios and dependency
 * densities are tuned so the simulated average active-warp counts track
 * the Fig. 5b averages (high memory pressure and tight dependences both
 * shrink the active set).
 *
 * Fields: name, int, fp, sfu, ldst, resident, missRatio, depProb,
 * depWindow, storeFrac, phaseLen, phaseBias, kernelLength.
 */
std::vector<BenchmarkProfile>
buildSuite()
{
    auto mk = [](const char* name, double fi, double ff, double fs,
                 double fl, int warps, double miss, double dep, int depw,
                 double store, int phase, double bias, int len) {
        BenchmarkProfile p;
        p.name = name;
        p.fracInt = fi;
        p.fracFp = ff;
        p.fracSfu = fs;
        p.fracLdst = fl;
        p.residentWarps = warps;
        p.memMissRatio = miss;
        p.depProb = dep;
        p.depWindow = depw;
        p.storeFrac = store;
        p.phaseLen = phase;
        p.phaseBias = bias;
        p.kernelLength = len;
        return p;
    };

    std::vector<BenchmarkProfile> suite;
    // Fig. 5b: avg active warps ~26; FP/INT balanced compute kernel.
    suite.push_back(mk("backprop", .40, .40, .02, .18, 48, .09, .30, 6,
                       .30, 120, 3.0, 1500));
    // Graph traversal, almost pure INT, memory bound; avg ~22.
    suite.push_back(mk("bfs", .68, .01, .00, .31, 48, .55, .35, 5,
                       .20, 0, 1.0, 1500));
    // Pointer chasing, INT + many loads; max 24, avg ~14.
    suite.push_back(mk("btree", .62, .06, .00, .32, 24, .30, .40, 5,
                       .15, 0, 1.0, 1500));
    // Parboil cutcp: FP-dominated with SFU (rsqrt); avg ~16.
    suite.push_back(mk("cutcp", .22, .58, .10, .10, 32, .25, .45, 4,
                       .10, 120, 2.5, 1500));
    // Tiny grids, few concurrent warps; avg ~4.
    suite.push_back(mk("gaussian", .45, .38, .00, .17, 16, .55, .55, 3,
                       .30, 100, 2.5, 1500));
    // heartwall: INT-leaning imaging kernel; avg ~12.
    suite.push_back(mk("heartwall", .55, .28, .02, .15, 32, .35, .45, 4,
                       .25, 200, 2.0, 1500));
    // hotspot: the paper's running example; avg ~20.
    suite.push_back(mk("hotspot", .48, .35, .00, .17, 48, .60, .35, 5,
                       .25, 0, 1.0, 1500));
    // kmeans: avg ~10, moderate mix.
    suite.push_back(mk("kmeans", .55, .28, .00, .17, 16, .25, .40, 5,
                       .20, 120, 2.5, 1500));
    // lavaMD: the paper calls it a pure-integer workload; avg ~18.
    suite.push_back(mk("lavaMD", .93, .00, .00, .07, 32, .20, .35, 6,
                       .20, 0, 1.0, 1500));
    // lbm: FP-heavy stencil, high occupancy; avg ~27.
    suite.push_back(mk("lbm", .25, .55, .00, .20, 48, .35, .30, 6,
                       .35, 150, 3.0, 1500));
    // LIB (ISPASS): FP Monte-Carlo, few warps; avg ~6.
    suite.push_back(mk("LIB", .30, .45, .05, .20, 16, .35, .50, 4,
                       .20, 100, 2.5, 1500));
    // mri-q: FP+SFU compute bound, high occupancy; avg ~25.
    suite.push_back(mk("mri", .28, .55, .10, .07, 48, .15, .30, 6,
                       .10, 150, 2.5, 1500));
    // MUM: INT string matching, memory heavy; avg ~24.
    suite.push_back(mk("MUM", .72, .01, .00, .27, 48, .45, .25, 6,
                       .10, 0, 1.0, 1500));
    // NN (ISPASS): only a handful of warps; avg ~5.
    suite.push_back(mk("NN", .50, .33, .02, .15, 8, .12, .35, 4,
                       .25, 100, 2.5, 1500));
    // nw: wavefront dependences serialise warps; avg ~3.
    suite.push_back(mk("nw", .84, .01, .00, .15, 32, .70, .65, 2,
                       .30, 0, 1.0, 1500));
    // sgemm: FP-dominated dense kernel; avg ~17.
    suite.push_back(mk("sgemm", .25, .55, .00, .20, 32, .15, .40, 5,
                       .30, 150, 3.0, 1500));
    // srad: highest average occupancy in the suite (~28).
    suite.push_back(mk("srad", .42, .40, .03, .15, 48, .20, .28, 6,
                       .25, 120, 2.5, 1500));
    // WP (ISPASS weather prediction): FP-leaning, avg ~8.
    suite.push_back(mk("WP", .35, .42, .05, .18, 24, .35, .50, 4,
                       .25, 180, 2.0, 1500));
    return suite;
}

} // namespace

const std::vector<BenchmarkProfile>&
benchmarkSuite()
{
    static const std::vector<BenchmarkProfile> suite = buildSuite();
    return suite;
}

const BenchmarkProfile&
findBenchmark(const std::string& name)
{
    for (const auto& p : benchmarkSuite())
        if (p.name == name)
            return p;
    fatal("unknown benchmark '", name, "'");
}

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    names.reserve(benchmarkSuite().size());
    for (const auto& p : benchmarkSuite())
        names.push_back(p.name);
    return names;
}

} // namespace wg
