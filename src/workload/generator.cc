#include "generator.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"

namespace wg {

namespace {

/** Number of architectural registers in the synthetic register window. */
constexpr RegId kRegWindow = 16;

/** Pick a unit class from (possibly phase-biased) mix weights. */
UnitClass
sampleClass(Rng& rng, const std::array<double, kNumUnitClasses>& weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        return UnitClass::Int;
    double u = rng.nextDouble() * total;
    for (std::size_t c = 0; c < kNumUnitClasses; ++c) {
        if (u < weights[c])
            return static_cast<UnitClass>(c);
        u -= weights[c];
    }
    return UnitClass::Int;
}

} // namespace

ProgramGenerator::ProgramGenerator(std::uint64_t seed)
    : root_(seed, 0x5851f42d4c957f2dULL)
{
}

/*
 * Kernels are generated as an alternation of *memory bursts* and
 * *compute blocks*, which is how real SIMT kernels behave (load a tile,
 * then compute on it):
 *
 *   - a memory burst is 1..loadBurstMax LDST instructions back to back;
 *     the whole burst shares one hit/miss outcome (a tile either streams
 *     from DRAM or lives in shared memory/L1), sampled with
 *     memMissRatio;
 *   - a compute block of INT/FP/SFU instructions follows, sized so the
 *     overall LDST share matches fracLdst; its first instruction
 *     consumes the burst's last load (with probability
 *     loadConsumeProb), which is what stalls the warp until the tile
 *     arrives.
 *
 * This burst structure is what gives the bimodal idle-period
 * distribution the paper reports: dense sub-idle-detect bubbles inside
 * compute phases, plus long SM-wide droughts when all CTAs sit in a
 * memory burst.
 */
Program
ProgramGenerator::generate(const BenchmarkProfile& profile,
                           std::uint64_t salt)
{
    if (profile.kernelLength <= 0)
        fatal("profile '", profile.name, "': non-positive kernel length");

    Rng rng = root_.fork(salt);
    std::vector<Instruction> instrs;
    instrs.reserve(static_cast<std::size_t>(profile.kernelLength));

    // Recent destinations, newest first, for dependency synthesis.
    std::vector<RegId> recent;
    RegId next_reg = 0;

    auto alloc_dest = [&]() {
        RegId r = next_reg;
        next_reg = static_cast<RegId>((next_reg + 1) % kRegWindow);
        return r;
    };

    auto note_dest = [&](RegId r) {
        recent.insert(recent.begin(), r);
        if (recent.size() > 2 * kRegWindow)
            recent.resize(kRegWindow);
    };

    auto pick_src = [&](bool force) -> RegId {
        if (recent.empty())
            return kNoReg;
        if (!force && !rng.nextBool(profile.depProb))
            return kNoReg;
        std::uint32_t dist = rng.nextGeometric(0.5);
        std::uint32_t limit = static_cast<std::uint32_t>(
            std::min<std::size_t>(recent.size(),
                                  std::max(profile.depWindow, 1)));
        if (dist >= limit)
            dist = limit - 1;
        return recent[dist];
    };

    const double frac_ldst = std::max(profile.fracLdst, 1e-6);
    const double compute_per_mem = (1.0 - frac_ldst) / frac_ldst;

    const int len = profile.kernelLength;
    int k = 0;
    while (k < len) {
        // ---- memory burst ----
        int burst_max = std::max(profile.loadBurstMax, 1);
        int burst = 1 + static_cast<int>(rng.nextRange(
                            static_cast<std::uint32_t>(burst_max)));
        bool burst_misses = rng.nextBool(profile.memMissRatio);
        RegId last_load = kNoReg;
        for (int b = 0; b < burst && k < len; ++b, ++k) {
            Instruction instr;
            instr.unit = UnitClass::Ldst;
            instr.mem = burst_misses ? MemClass::Miss : MemClass::Hit;
            if (rng.nextBool(profile.storeFrac)) {
                instr.isStore = true;
                instr.srcs = {pick_src(true), pick_src(false)};
            } else {
                instr.dest = alloc_dest();
                instr.srcs = {pick_src(false), kNoReg};
                last_load = instr.dest;
                note_dest(instr.dest);
            }
            instrs.push_back(instr);
        }

        // ---- compute block ----
        double jitter = 0.5 + rng.nextDouble(); // 0.5x .. 1.5x
        int compute = static_cast<int>(
            static_cast<double>(burst) * compute_per_mem * jitter + 0.5);
        compute = std::max(compute, 1);
        bool consume_pending = last_load != kNoReg &&
                               rng.nextBool(profile.loadConsumeProb);
        for (int c = 0; c < compute && k < len; ++c, ++k) {
            std::array<double, kNumUnitClasses> weights = {
                profile.fracInt, profile.fracFp, profile.fracSfu, 0.0};
            if (profile.phaseLen > 0) {
                bool int_phase = (k / profile.phaseLen) % 2 == 0;
                if (int_phase)
                    weights[0] *= profile.phaseBias;
                else
                    weights[1] *= profile.phaseBias;
            }
            UnitClass uc = sampleClass(rng, weights);
            Instruction instr;
            instr.unit = uc;
            instr.dest = alloc_dest();
            instr.srcs = {pick_src(false),
                          uc == UnitClass::Sfu ? kNoReg
                                               : pick_src(false)};
            if (consume_pending) {
                // The tile arrives: first compute instruction reads the
                // burst's last load.
                instr.srcs[0] = last_load;
                consume_pending = false;
            }
            if (instr.dest == instr.srcs[0] ||
                instr.dest == instr.srcs[1]) {
                // Avoid self-dependence through the rotating window.
                instr.dest = alloc_dest();
            }
            note_dest(instr.dest);
            instrs.push_back(instr);
        }
    }

    return Program(std::move(instrs));
}

std::vector<Program>
ProgramGenerator::generateSm(const BenchmarkProfile& profile,
                             std::uint64_t sm_salt)
{
    std::vector<Program> programs;
    programs.reserve(static_cast<std::size_t>(profile.residentWarps));
    const int cta = std::max(profile.ctaWarps, 1);
    for (int w = 0; w < profile.residentWarps; ++w) {
        // Warps of one CTA share their instruction sequence.
        std::uint64_t salt = sm_salt * 1000003ULL +
                             static_cast<std::uint64_t>(w / cta);
        if (w % cta == 0)
            programs.push_back(generate(profile, salt));
        else
            programs.push_back(programs.back());
    }
    return programs;
}

} // namespace wg
