/**
 * @file
 * Hand-built workloads for tests, examples and the Fig. 4 illustration.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "arch/program.hh"

namespace wg {

/** @return a program of @p n independent instructions of class @p uc. */
Program pureProgram(UnitClass uc, std::size_t n);

/**
 * @return a program alternating INT and FP instructions (@p n total,
 * independent). Worst case for type-agnostic schedulers.
 */
Program alternatingProgram(std::size_t n);

/**
 * @return a fully serialised dependency chain: each instruction reads
 * the previous one's destination.
 */
Program chainProgram(UnitClass uc, std::size_t n);

/**
 * The paper's Fig. 4 illustration: an active-warps set holding, in
 * order, INT1 INT2 FP1 INT3 FP2 INT4 INT5 INT6 INT7 FP3 FP4 INT8 —
 * twelve single-instruction warps (each a 4-cycle add). Returned as
 * twelve one-instruction programs in that order.
 */
std::vector<Program> fig4Warps();

/**
 * @return @p warps copies of a program mixing INT/FP/LDST with the
 * given memory-miss ratio; deterministic, used by integration tests.
 */
std::vector<Program> uniformMixWarps(std::size_t warps, std::size_t len,
                                     double frac_fp, double frac_ldst,
                                     double miss_ratio,
                                     std::uint64_t seed = 7);

} // namespace wg

