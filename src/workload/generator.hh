/**
 * @file
 * Synthetic program generation from benchmark profiles.
 */

#pragma once

#include <vector>

#include "arch/program.hh"
#include "common/rng.hh"
#include "workload/profile.hh"

namespace wg {

/**
 * Expands a BenchmarkProfile into per-warp instruction traces.
 *
 * The generator is deterministic: the same (profile, seed, warp count)
 * always yields the same programs, which keeps every experiment
 * reproducible. Register dataflow is synthesised over a 16-register
 * window with configurable producer-consumer density so the scoreboard
 * and the two-level pending/active machinery see realistic hazards.
 */
class ProgramGenerator
{
  public:
    /** @param seed experiment-level seed (per-SM seeds are forked). */
    explicit ProgramGenerator(std::uint64_t seed = 1);

    /** Generate one warp's program from @p profile. */
    Program generate(const BenchmarkProfile& profile, std::uint64_t salt);

    /**
     * Generate programs for all resident warps of one SM.
     * @param sm_salt distinguishes SMs so they do not run in lock-step.
     */
    std::vector<Program> generateSm(const BenchmarkProfile& profile,
                                    std::uint64_t sm_salt);

  private:
    Rng root_;
};

} // namespace wg

