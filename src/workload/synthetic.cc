#include "synthetic.hh"

#include "common/rng.hh"

namespace wg {

Program
pureProgram(UnitClass uc, std::size_t n)
{
    std::vector<Instruction> instrs;
    instrs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Instruction instr;
        instr.unit = uc;
        instr.dest = static_cast<RegId>(i % 16);
        if (uc == UnitClass::Ldst)
            instr.mem = MemClass::Hit;
        instrs.push_back(instr);
    }
    return Program(std::move(instrs));
}

Program
alternatingProgram(std::size_t n)
{
    std::vector<Instruction> instrs;
    instrs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        instrs.push_back(i % 2 == 0
                             ? makeInt(static_cast<RegId>(i % 16))
                             : makeFp(static_cast<RegId>(i % 16)));
    }
    return Program(std::move(instrs));
}

Program
chainProgram(UnitClass uc, std::size_t n)
{
    std::vector<Instruction> instrs;
    instrs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Instruction instr;
        instr.unit = uc;
        instr.dest = static_cast<RegId>(i % 16);
        if (i > 0)
            instr.srcs[0] = static_cast<RegId>((i - 1) % 16);
        if (uc == UnitClass::Ldst)
            instr.mem = MemClass::Hit;
        instrs.push_back(instr);
    }
    return Program(std::move(instrs));
}

std::vector<Program>
fig4Warps()
{
    // Order from the paper's Fig. 4 (top row).
    const UnitClass order[] = {
        UnitClass::Int, UnitClass::Int, UnitClass::Fp, UnitClass::Int,
        UnitClass::Fp, UnitClass::Int, UnitClass::Int, UnitClass::Int,
        UnitClass::Int, UnitClass::Fp, UnitClass::Fp, UnitClass::Int,
    };
    std::vector<Program> warps;
    for (UnitClass uc : order)
        warps.push_back(pureProgram(uc, 1));
    return warps;
}

std::vector<Program>
uniformMixWarps(std::size_t warps, std::size_t len, double frac_fp,
                double frac_ldst, double miss_ratio, std::uint64_t seed)
{
    Rng root(seed);
    std::vector<Program> programs;
    programs.reserve(warps);
    for (std::size_t w = 0; w < warps; ++w) {
        Rng rng = root.fork(w);
        std::vector<Instruction> instrs;
        instrs.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
            double u = rng.nextDouble();
            Instruction instr;
            if (u < frac_ldst) {
                instr = makeLoad(static_cast<RegId>(i % 16),
                                 rng.nextBool(miss_ratio) ? MemClass::Miss
                                                          : MemClass::Hit);
            } else if (u < frac_ldst + frac_fp) {
                instr = makeFp(static_cast<RegId>(i % 16));
            } else {
                instr = makeInt(static_cast<RegId>(i % 16));
            }
            // Light dependency: read the previous destination sometimes.
            if (i > 0 && rng.nextBool(0.3))
                instr.srcs[1] = static_cast<RegId>((i - 1) % 16);
            instrs.push_back(instr);
        }
        programs.push_back(Program(std::move(instrs)));
    }
    return programs;
}

} // namespace wg
