#include "unit.hh"

#include "common/logging.hh"

namespace wg {

ExecUnit::ExecUnit(UnitClass cls, unsigned index,
                   const ExecUnitConfig& config)
    : class_(cls), index_(index), config_(config)
{
    if (config_.latency == 0)
        fatal("ExecUnitConfig: zero latency");
    if (config_.initiationInterval == 0)
        fatal("ExecUnitConfig: zero initiation interval");
    if (config_.occupancy == 0)
        config_.occupancy = config_.latency;
    name_ = std::string(unitClassName(cls)) + std::to_string(index);
}

bool
ExecUnit::canAccept(Cycle now) const
{
    if (last_issue_ == kNeverCycle)
        return true;
    return now >= last_issue_ + config_.initiationInterval;
}

void
ExecUnit::issue(Cycle now, Cycle complete, WarpId warp, RegId dest,
                bool long_latency)
{
    if (!canAccept(now))
        panic(name_, ": issue() while port busy at cycle ", now);
    last_issue_ = now;
    ++issues_;
    occupancy_.push(now + config_.occupancy);
    completions_.push(Completion{complete, warp, dest, long_latency});
}

} // namespace wg
