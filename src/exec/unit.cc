#include "unit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace wg {

ExecUnit::ExecUnit(UnitClass cls, unsigned index,
                   const ExecUnitConfig& config)
    : class_(cls), index_(index), config_(config)
{
    if (config_.latency == 0)
        fatal("ExecUnitConfig: zero latency");
    if (config_.initiationInterval == 0)
        fatal("ExecUnitConfig: zero initiation interval");
    if (config_.occupancy == 0)
        config_.occupancy = config_.latency;
    name_ = std::string(unitClassName(cls)) + std::to_string(index);
}

bool
ExecUnit::canAccept(Cycle now) const
{
    if (last_issue_ == kNeverCycle)
        return true;
    return now >= last_issue_ + config_.initiationInterval;
}

void
ExecUnit::issue(Cycle now, Cycle complete, WarpId warp, RegId dest,
                bool long_latency)
{
    if (!canAccept(now))
        panic(name_, ": issue() while port busy at cycle ", now);
    last_issue_ = now;
    ++issues_;
    occupancy_.push(now + config_.occupancy);
    completions_.push(Completion{complete, warp, dest, long_latency});
}

ExecUnitState
ExecUnit::saveState() const
{
    ExecUnitState s;
    s.lastIssue = last_issue_;
    s.issues = issues_;
    auto occ = occupancy_;
    while (!occ.empty()) {
        s.occupancy.push_back(occ.top());
        occ.pop();
    }
    auto comp = completions_;
    while (!comp.empty()) {
        s.completions.push_back(comp.top());
        comp.pop();
    }
    // The heaps pop in done order but ties pop in layout-history order;
    // impose the full canonical order so equal states give equal bytes.
    std::sort(s.completions.begin(), s.completions.end(),
              [](const Completion& a, const Completion& b) {
                  if (a.done != b.done)
                      return a.done < b.done;
                  if (a.warp != b.warp)
                      return a.warp < b.warp;
                  if (a.dest != b.dest)
                      return a.dest < b.dest;
                  return a.longLatency < b.longLatency;
              });
    return s;
}

void
ExecUnit::restoreState(const ExecUnitState& s)
{
    last_issue_ = s.lastIssue;
    issues_ = s.issues;
    occupancy_ = {};
    for (Cycle c : s.occupancy)
        occupancy_.push(c);
    completions_ = {};
    for (const Completion& c : s.completions)
        completions_.push(c);
}

} // namespace wg
